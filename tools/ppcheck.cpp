//===- tools/ppcheck.cpp - Static analysis driver -----------------------------===//
//
// Static checks for the PUSH/PULL model, no scheduler in the loop:
//
//   ppcheck --all-engines             criterion-obligation audit for every
//                                     scenario engine (grouped by effective
//                                     rule surface), the fault-injection
//                                     negative battery, and the
//                                     independence-relation audit
//   ppcheck --engine NAME             criterion audit for one engine
//   ppcheck --battery                 negative battery only: every
//                                     injectable criterion must be
//                                     convicted with a minimal witness
//   ppcheck --independence            independence-relation audit only
//   ppcheck --inject "NAME"           audit with that criterion disabled
//                                     (prints the conviction witness)
//   ppcheck --lint PATH...            semantic lint of .pp scenario files
//                                     (directories are searched for *.pp)
//   ppcheck --movers                  certified mover/commutativity table
//                                     for the audit specs (Lipton classes,
//                                     argument predicates, certificates)
//   ppcheck --prove PATH...           whole-program conflict-serializability
//                                     prover over .pp scenario files: PROVED
//                                     (with certified pair count), CONFLICT
//                                     (with the minimal conflicting pair and
//                                     its counterexample witness), or
//                                     UNPROVED (out of scope)
//   ppcheck --list-criteria           print the injectable criterion names
//
// Scope knobs (audits): --threads N --max-local N --max-local-other N
//   --max-global N --max-alphabet N --max-shapes N --spec register|counter
//
// Verbosity: --witnesses prints every conviction witness; audits always
// print a per-item PASS/FAIL summary.
//
// Exit status: 0 all checks clean, 1 findings, 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "analysis/IndependenceAudit.h"
#include "analysis/Lint.h"
#include "analysis/MoverTable.h"
#include "analysis/Obligations.h"
#include "sim/Scenario.h"
#include "spec/CounterSpec.h"
#include "spec/RegisterSpec.h"
#include "tm/Engine.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace pushpull;

namespace {

struct SpecCase {
  std::string Kind;
  std::string SpecLine;
  std::shared_ptr<const SequentialSpec> Spec;
};

std::vector<SpecCase> specLadder(const std::string &Only) {
  std::vector<SpecCase> Out;
  if (Only.empty() || Only == "register")
    Out.push_back({"register", "spec register name=mem regs=1 vals=2",
                   std::make_shared<RegisterSpec>("mem", 1, 2)});
  if (Only.empty() || Only == "counter")
    Out.push_back({"counter", "spec counter name=c counters=1 mod=2",
                   std::make_shared<CounterSpec>("c", 1, 2)});
  return Out;
}

/// The effective rule surface of one scenario engine, read off a real
/// engine instance so the audit covers what actually ships.
struct EngineSurface {
  std::string Name;
  uint32_t RuleMask = 0;
  bool PullsUncommitted = false;
};

std::vector<EngineSurface> engineSurfaces() {
  std::vector<EngineSurface> Out;
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  for (const std::string &Name : allEngineNames()) {
    PushPullMachine M(Spec, Movers);
    M.addThread({call("mem", "read", {Value(0)})});
    std::string Error;
    std::unique_ptr<TMEngine> E = makeEngine(Name, {}, M, Error);
    if (!E) {
      std::fprintf(stderr, "ppcheck: cannot instantiate engine %s: %s\n",
                   Name.c_str(), Error.c_str());
      continue;
    }
    Out.push_back({Name, E->ruleMask(), E->pullsUncommitted()});
  }
  return Out;
}

struct Options {
  ShapeScope Scope;
  std::string SpecOnly;
  uint64_t MaxShapes = 0;
  bool Witnesses = false;
};

int auditEngineGroup(const Options &Opt, const std::string &Label,
                     uint32_t RuleMask, bool PullsUncommitted) {
  int Bad = 0;
  for (const SpecCase &SC : specLadder(Opt.SpecOnly)) {
    CriterionAuditConfig C;
    C.Scope = Opt.Scope;
    C.Spec = SC.Spec.get();
    C.SpecLine = SC.SpecLine;
    C.EngineName = Label;
    C.RuleMask = RuleMask;
    C.PullsUncommitted = PullsUncommitted;
    C.MaxShapes = Opt.MaxShapes;
    CriterionAuditReport R = auditCriteria(C);
    bool Clean = R.clean();
    std::printf("criteria  %-32s %-8s %-4s  shapes=%llu probes=%llu%s\n",
                Label.c_str(), SC.Kind.c_str(), Clean ? "PASS" : "FAIL",
                static_cast<unsigned long long>(R.ShapesAudited),
                static_cast<unsigned long long>(R.ProbesRun),
                Clean ? ""
                      : (" unsound=" + std::to_string(R.Unsound.size()) +
                         " incomplete=" + std::to_string(R.Incomplete.size()))
                            .c_str());
    if (!Clean) {
      ++Bad;
      for (const Divergence &D : R.Unsound) {
        std::printf("  %s\n", D.describe(R.Alphabet).c_str());
        if (Opt.Witnesses)
          std::printf("%s", D.Witness.c_str());
      }
      for (const Divergence &D : R.Incomplete)
        std::printf("  %s\n", D.describe(R.Alphabet).c_str());
    }
  }
  return Bad;
}

int runEngineAudits(const Options &Opt, const std::string &OnlyEngine) {
  // Group engines by effective surface: the machine under audit is
  // engine-independent, so identical surfaces yield identical verdicts.
  std::map<std::pair<uint32_t, bool>, std::vector<std::string>> Groups;
  for (const EngineSurface &S : engineSurfaces()) {
    if (!OnlyEngine.empty() && S.Name != OnlyEngine)
      continue;
    Groups[{S.RuleMask, S.PullsUncommitted}].push_back(S.Name);
  }
  if (Groups.empty()) {
    std::fprintf(stderr, "ppcheck: unknown engine '%s'\n",
                 OnlyEngine.c_str());
    return 2;
  }
  int Bad = 0;
  for (const auto &[Surface, Names] : Groups) {
    std::string Label = Names.front();
    for (size_t I = 1; I < Names.size(); ++I)
      Label += "," + Names[I];
    Bad += auditEngineGroup(Opt, Label, Surface.first, Surface.second);
  }
  return Bad ? 1 : 0;
}

int runBattery(const Options &Opt) {
  int Bad = 0;
  for (const ConvictionResult &R : runNegativeBattery(Opt.Scope)) {
    std::printf("battery   %-32s %-8s %-4s  shapes=%llu probes=%llu%s\n",
                R.Criterion.c_str(),
                R.Convicted ? R.SpecKind.c_str() : "-",
                R.Convicted ? "PASS" : "FAIL",
                static_cast<unsigned long long>(R.ShapesAudited),
                static_cast<unsigned long long>(R.ProbesRun),
                R.EnforcedGray ? "" : "  (gray criteria off)");
    if (!R.Convicted) {
      ++Bad;
      std::printf("  injected '%s' was NOT convicted: the audit cannot "
                  "distinguish the buggy machine\n",
                  R.Criterion.c_str());
    } else if (Opt.Witnesses) {
      std::printf("%s", R.Witness.Witness.c_str());
    }
  }
  return Bad ? 1 : 0;
}

int runInject(const Options &Opt, const std::string &Criterion) {
  bool Gray = Criterion != "UNPUSH criterion (ii)";
  int Bad = 1;
  for (const SpecCase &SC : specLadder(Opt.SpecOnly)) {
    CriterionAuditConfig C;
    C.Scope = Opt.Scope;
    C.Spec = SC.Spec.get();
    C.SpecLine = SC.SpecLine;
    C.EnforceGray = Gray;
    C.DisabledCriterion = Criterion;
    C.StopAtFirstDivergence = true;
    C.MaxShapes = Opt.MaxShapes;
    CriterionAuditReport R = auditCriteria(C);
    if (!R.Unsound.empty()) {
      const Divergence &D = R.Unsound.front();
      std::printf("inject    %-32s %-8s CONVICTED\n  %s\n%s",
                  Criterion.c_str(), SC.Kind.c_str(),
                  D.describe(R.Alphabet).c_str(), D.Witness.c_str());
      Bad = 0;
      break;
    }
    std::printf("inject    %-32s %-8s no conviction (shapes=%llu)\n",
                Criterion.c_str(), SC.Kind.c_str(),
                static_cast<unsigned long long>(R.ShapesAudited));
  }
  return Bad;
}

int runIndependence(const Options &Opt) {
  int Bad = 0;
  for (const SpecCase &SC : specLadder(Opt.SpecOnly)) {
    IndependenceAuditConfig C;
    C.Scope = Opt.Scope;
    C.Spec = SC.Spec.get();
    C.MaxShapes = Opt.MaxShapes;
    IndependenceAuditReport R = auditIndependence(C);
    std::printf("independ  %-32s %-8s %-4s  shapes=%llu pairs=%llu\n",
                "explorer relation", SC.Kind.c_str(),
                R.clean() ? "PASS" : "FAIL",
                static_cast<unsigned long long>(R.ShapesAudited),
                static_cast<unsigned long long>(R.PairsChecked));
    if (!R.clean()) {
      ++Bad;
      for (const IndependenceViolation &V : R.Violations)
        std::printf("  %s\n  at %s\n", V.Reason.c_str(),
                    V.Shape.describe(R.Alphabet).c_str());
    }
  }
  return Bad ? 1 : 0;
}

std::vector<std::string> collectPpFiles(const std::vector<std::string> &Paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> Files;
  for (const std::string &P : Paths) {
    std::error_code EC;
    if (fs::is_directory(P, EC)) {
      for (const auto &Entry : fs::recursive_directory_iterator(P, EC))
        if (Entry.is_regular_file() && Entry.path().extension() == ".pp")
          Files.push_back(Entry.path().string());
    } else {
      Files.push_back(P);
    }
  }
  std::sort(Files.begin(), Files.end());
  return Files;
}

int runLint(const std::vector<std::string> &Paths) {
  std::vector<std::string> Files = collectPpFiles(Paths);
  size_t Errors = 0, Warnings = 0;
  for (const std::string &F : Files) {
    LintReport R = lintScenarioFile(F);
    Errors += R.errors();
    Warnings += R.warnings();
    std::printf("%s", R.render().c_str());
  }
  std::printf("lint: %zu file(s), %zu error(s), %zu warning(s)\n",
              Files.size(), Errors, Warnings);
  return (Errors || Warnings) ? 1 : 0;
}

int runMovers(const Options &Opt) {
  // Informational: render the certified table; FAIL only if a certificate
  // fails its independent re-verification (certChecks counts replays, and
  // every Strong verdict survived one by construction — so a FAIL here
  // means the analysis and its checker disagree, which build() resolves
  // toward the checker).
  for (const SpecCase &SC : specLadder(Opt.SpecOnly)) {
    MoverChecker Movers(*SC.Spec);
    MoverTable T = MoverTable::build(*SC.Spec, Movers);
    std::printf("movers    %-32s %-8s %s", SC.Spec->name().c_str(),
                SC.Kind.c_str(), T.familyExact() ? "PASS\n" : "PART\n");
    std::printf("%s", T.toString().c_str());
  }
  return 0;
}

int runProve(const std::vector<std::string> &Paths, bool Witnesses) {
  std::vector<std::string> Files = collectPpFiles(Paths);
  int Rc = 0;
  size_t Proved = 0, Conflicts = 0, Unproved = 0;
  uint64_t CertChecks = 0;
  for (const std::string &F : Files) {
    std::ifstream In(F);
    if (!In) {
      std::fprintf(stderr, "ppcheck: cannot open '%s'\n", F.c_str());
      Rc = 1;
      continue;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    ScenarioParseResult PR = parseScenario(Buf.str());
    if (!PR.ok()) {
      std::fprintf(stderr, "%s:%zu: error: %s\n", F.c_str(), PR.ErrorLine,
                   PR.Error.c_str());
      Rc = 1;
      continue;
    }
    const Scenario &S = *PR.Parsed;
    CommutativityDB DB(*S.Spec, S.Movers.MaxReachableSets);
    ProveResult R = proveSerializable(S, DB);
    CertChecks += DB.certChecks();
    switch (R.V) {
    case ProveResult::Verdict::Proved:
      ++Proved;
      break;
    case ProveResult::Verdict::Conflict:
      ++Conflicts;
      break;
    case ProveResult::Verdict::Unproved:
      ++Unproved;
      break;
    }
    std::printf("prove     %-32s %-8s %-9s pairs=%zu\n",
                std::filesystem::path(F).filename().string().c_str(),
                S.Engine.c_str(), toString(R.V).c_str(), R.PairsChecked);
    if (R.V != ProveResult::Verdict::Proved || Witnesses)
      std::printf("  %s\n", R.Detail.c_str());
  }
  std::printf("prove: %zu file(s), %zu proved, %zu conflict(s), %zu "
              "unproved, cert-checks=%llu\n",
              Files.size(), Proved, Conflicts, Unproved,
              static_cast<unsigned long long>(CertChecks));
  // All three verdicts are analysis results, not findings: only I/O and
  // parse errors fail the run.
  return Rc;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: ppcheck [--all-engines | --engine NAME | --battery |\n"
      "                --independence | --inject NAME | --lint PATH... |\n"
      "                --movers | --prove PATH... | --list-criteria]\n"
      "               [--threads N] [--max-local N] [--max-local-other N]\n"
      "               [--max-global N] [--max-alphabet N] [--max-shapes N]\n"
      "               [--spec register|counter] [--witnesses]\n");
}

} // namespace

int main(int argc, char **argv) {
  Options Opt;
  bool AllEngines = false, Battery = false, Independence = false;
  std::string OnlyEngine, Inject;
  std::vector<std::string> LintPaths, ProvePaths;
  bool Lint = false, Movers = false, Prove = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto NextArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "ppcheck: %s needs an argument\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    if (A == "--all-engines") {
      AllEngines = true;
    } else if (A == "--engine") {
      const char *V = NextArg("--engine");
      if (!V)
        return 2;
      OnlyEngine = V;
    } else if (A == "--battery") {
      Battery = true;
    } else if (A == "--independence") {
      Independence = true;
    } else if (A == "--inject") {
      const char *V = NextArg("--inject");
      if (!V)
        return 2;
      Inject = V;
    } else if (A == "--lint") {
      Lint = true;
      while (I + 1 < argc && argv[I + 1][0] != '-')
        LintPaths.push_back(argv[++I]);
    } else if (A == "--movers") {
      Movers = true;
    } else if (A == "--prove") {
      Prove = true;
      while (I + 1 < argc && argv[I + 1][0] != '-')
        ProvePaths.push_back(argv[++I]);
    } else if (A == "--list-criteria") {
      for (const std::string &N : injectableCriteria())
        std::printf("%s\n", N.c_str());
      return 0;
    } else if (A == "--threads") {
      const char *V = NextArg(A.c_str());
      if (!V)
        return 2;
      Opt.Scope.Threads = static_cast<unsigned>(std::atol(V));
    } else if (A == "--max-local") {
      const char *V = NextArg(A.c_str());
      if (!V)
        return 2;
      Opt.Scope.MaxLocalSubject = static_cast<unsigned>(std::atol(V));
    } else if (A == "--max-local-other") {
      const char *V = NextArg(A.c_str());
      if (!V)
        return 2;
      Opt.Scope.MaxLocalOther = static_cast<unsigned>(std::atol(V));
    } else if (A == "--max-global") {
      const char *V = NextArg(A.c_str());
      if (!V)
        return 2;
      Opt.Scope.MaxGlobal = static_cast<unsigned>(std::atol(V));
    } else if (A == "--max-alphabet") {
      const char *V = NextArg(A.c_str());
      if (!V)
        return 2;
      Opt.Scope.MaxAlphabet = static_cast<unsigned>(std::atol(V));
    } else if (A == "--max-shapes") {
      const char *V = NextArg(A.c_str());
      if (!V)
        return 2;
      Opt.MaxShapes = static_cast<uint64_t>(std::atoll(V));
    } else if (A == "--spec") {
      const char *V = NextArg(A.c_str());
      if (!V)
        return 2;
      Opt.SpecOnly = V;
      if (specLadder(Opt.SpecOnly).empty()) {
        std::fprintf(stderr, "ppcheck: --spec must be register or counter\n");
        return 2;
      }
    } else if (A == "--witnesses") {
      Opt.Witnesses = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "ppcheck: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    }
  }

  int Rc = 0;
  bool Ran = false;
  if (!Inject.empty()) {
    Ran = true;
    Rc = std::max(Rc, runInject(Opt, Inject));
  }
  if (AllEngines || !OnlyEngine.empty()) {
    Ran = true;
    Rc = std::max(Rc, runEngineAudits(Opt, OnlyEngine));
  }
  if (Battery || AllEngines) {
    Ran = true;
    Rc = std::max(Rc, runBattery(Opt));
  }
  if (Independence || AllEngines) {
    Ran = true;
    Rc = std::max(Rc, runIndependence(Opt));
  }
  if (Lint) {
    Ran = true;
    if (LintPaths.empty()) {
      std::fprintf(stderr, "ppcheck: --lint needs at least one path\n");
      return 2;
    }
    Rc = std::max(Rc, runLint(LintPaths));
  }
  if (Movers) {
    Ran = true;
    Rc = std::max(Rc, runMovers(Opt));
  }
  if (Prove) {
    Ran = true;
    if (ProvePaths.empty()) {
      std::fprintf(stderr, "ppcheck: --prove needs at least one path\n");
      return 2;
    }
    Rc = std::max(Rc, runProve(ProvePaths, Opt.Witnesses));
  }
  if (!Ran) {
    usage();
    return 2;
  }
  return Rc;
}
