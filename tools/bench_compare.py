#!/usr/bin/env python3
"""Smoke-benchmark harness: run bench_explorer / bench_mover, compare
against the recorded pre-interning seed baselines, capture cache
effectiveness from `pprun --stats`, measure the partial-order-reduction
ratio (full enumeration vs persistent+symmetry on a symmetric scope),
and write the result as JSON (BENCH_PR3.json at the repo root, via the
`bench-smoke` CMake target).

Only the Python standard library is used.  Times are medians of
`--repeats` runs of each binary (the benches themselves already average
over many iterations; the outer repeats damp scheduler noise on small
containers).
"""

import argparse
import json
import os
import re
import statistics
import subprocess
import sys
import tempfile

# Pre-interning seed medians (ns), recorded on the same 1-CPU container
# this harness targets.  The seed explorer also reported its throughput
# counter directly.
SEED_NS = {
    "bench_explorer": {
        "BM_ExploreTwoThreads": 883308.0,
    },
    "bench_mover": {
        "BM_LeftMoverSemanticCold": 64371.0,
        "BM_PrecongruenceRefutation": 8052.0,
        "BM_PrecongruenceDiagonal": 615.0,
        "BM_AllowedDenotation/8": 550.0,
        "BM_AllowedDenotation/64": 3966.0,
        "BM_AllowedDenotation/512": 31532.0,
        "BM_ValidationOverhead/1": 22106.0,
    },
}
SEED_EXPLORER_CONFIGS_PER_SEC = 110527.0

STATS_SCENARIO = """# bench_compare smoke scenario: map transactions + exploration.
spec map name=map keys=4 vals=3
engine boosting seed=42
schedule random seed=7 maxsteps=100000
thread tx { a := map.put(1, 2) }; tx { b := map.get(1) }
thread tx { c := map.put(1, 1) }
check serializability
check explore
"""


def run_bench(binary, repeats):
    """Run one google-benchmark binary; return {name: {"ns": median,
    "counters": {...}}} over the filtered benchmarks."""
    by_name = {}
    for _ in range(repeats):
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            out_path = tmp.name
        try:
            subprocess.run(
                [binary, "--benchmark_out=" + out_path,
                 "--benchmark_out_format=json"],
                check=True, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            with open(out_path) as f:
                report = json.load(f)
        finally:
            os.unlink(out_path)
        for b in report.get("benchmarks", []):
            name = b["name"]
            entry = by_name.setdefault(name, {"ns": [], "counters": {}})
            entry["ns"].append(float(b["real_time"]))
            for key, val in b.items():
                if isinstance(val, (int, float)) and key not in (
                        "real_time", "cpu_time", "iterations",
                        "repetition_index", "family_index",
                        "per_family_instance_index", "threads"):
                    entry["counters"].setdefault(key, []).append(float(val))
    return {
        name: {
            "ns": statistics.median(e["ns"]),
            "counters": {k: statistics.median(v)
                         for k, v in e["counters"].items()},
        }
        for name, e in by_name.items()
    }


REDUCTION_SCENARIO = """# bench_compare reduction scenario: 3 identical threads.
spec counter name=c counters=1 mod=3
engine boosting seed=42
schedule random seed=7 maxsteps=100000
thread tx { c.inc(0) }
thread tx { c.inc(0) }
thread tx { c.inc(0) }
check explore
"""


def run_reduction_scenario(pprun):
    """Run `check explore` with and without reduction; return the config
    counts, the pruning counters, and the reduction ratio."""
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".pp", delete=False) as tmp:
        tmp.write(REDUCTION_SCENARIO)
        path = tmp.name
    out = {}
    try:
        for mode, key in (("none", "full"), ("persistent+symmetry",
                                             "reduced")):
            proc = subprocess.run(
                [pprun, "--stats", "--reduction=" + mode, path],
                capture_output=True, text=True)
            m = re.search(r"explore: (\d+) configs, (\d+) terminals, "
                          r"(\d+) non-serializable", proc.stdout)
            if not m:
                return {}
            out[key + "_configs"] = int(m.group(1))
            out[key + "_terminals"] = int(m.group(2))
            out[key + "_non_serializable"] = int(m.group(3))
            if key == "reduced":
                for stat, pat in (
                        ("firings_pruned", r"firings pruned:\s+(\d+)"),
                        ("persistent_cuts", r"persistent cuts:\s+(\d+)"),
                        ("symmetry_hits", r"symmetry hits:\s+(\d+)")):
                    sm = re.search(pat, proc.stdout)
                    if sm:
                        out[stat] = int(sm.group(1))
    finally:
        os.unlink(path)
    if out.get("full_configs"):
        out["config_ratio"] = round(
            out["reduced_configs"] / out["full_configs"], 3)
    return out


def run_stats_scenario(pprun):
    """Run pprun --stats on the smoke scenario; parse the cache block."""
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".pp", delete=False) as tmp:
        tmp.write(STATS_SCENARIO)
        path = tmp.name
    try:
        proc = subprocess.run([pprun, "--stats", path],
                              capture_output=True, text=True)
    finally:
        os.unlink(path)
    text = proc.stdout
    stats = {}
    patterns = {
        "states_interned": r"states interned:\s+(\d+)",
        "state_sets_interned": r"state sets interned:\s+(\d+)",
        "op_keys_interned": r"op keys interned:\s+(\d+)",
        "transition_memo_hits": r"transition memo:\s+(\d+) hits",
        "transition_memo_misses": r"transition memo:\s+\d+ hits / (\d+)",
        "mover_memo_hits": r"mover memo:\s+(\d+) hits",
        "mover_memo_misses": r"mover memo:\s+\d+ hits / (\d+)",
        "precongruence_pairs": r"precongruence pairs:\s+(\d+)",
        "reachable_state_sets": r"reachable state sets:\s+(\d+)",
    }
    for key, pat in patterns.items():
        m = re.search(pat, text)
        if m:
            stats[key] = int(m.group(1))
    hits = stats.get("transition_memo_hits", 0)
    misses = stats.get("transition_memo_misses", 0)
    if hits + misses:
        stats["transition_memo_hit_rate"] = hits / (hits + misses)
    return stats


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out", default="BENCH_PR3.json")
    ap.add_argument("--repeats", type=int, default=3)
    args = ap.parse_args()

    result = {"repeats": args.repeats, "benchmarks": {}, "explorer": {},
              "cache_stats": {}, "reduction": {}}
    worst = None

    for bench, baselines in SEED_NS.items():
        binary = os.path.join(args.build_dir, "bench", bench)
        if not os.path.exists(binary):
            print(f"error: {binary} not built", file=sys.stderr)
            return 1
        measured = run_bench(binary, args.repeats)
        for name, seed_ns in baselines.items():
            if name not in measured:
                print(f"warning: {bench}/{name} missing from output",
                      file=sys.stderr)
                continue
            cur = measured[name]["ns"]
            speedup = seed_ns / cur if cur else 0.0
            result["benchmarks"][f"{bench}/{name}"] = {
                "seed_ns": seed_ns,
                "current_ns": round(cur, 1),
                "seed_queries_per_sec": round(1e9 / seed_ns, 0),
                "current_queries_per_sec": round(1e9 / cur, 0) if cur else 0.0,
                "speedup": round(speedup, 2),
            }
            if worst is None or speedup < worst[1]:
                worst = (f"{bench}/{name}", speedup)
        if bench == "bench_explorer" and "BM_ExploreTwoThreads" in measured:
            counters = measured["BM_ExploreTwoThreads"]["counters"]
            cps = counters.get("configs", 0.0)
            result["explorer"] = {
                "seed_configs_per_sec": SEED_EXPLORER_CONFIGS_PER_SEC,
                "current_configs_per_sec": round(cps, 0),
                "speedup": round(cps / SEED_EXPLORER_CONFIGS_PER_SEC, 2)
                if cps else 0.0,
            }

    pprun = os.path.join(args.build_dir, "tools", "pprun")
    if os.path.exists(pprun):
        result["cache_stats"] = run_stats_scenario(pprun)
        result["reduction"] = run_reduction_scenario(pprun)

    with open(args.out, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")

    width = max(len(n) for n in result["benchmarks"])
    print(f"{'benchmark':<{width}}  {'seed ns':>10}  {'now ns':>10}  speedup")
    for name, row in sorted(result["benchmarks"].items()):
        print(f"{name:<{width}}  {row['seed_ns']:>10.0f}  "
              f"{row['current_ns']:>10.0f}  {row['speedup']:>6.2f}x")
    if result["explorer"]:
        ex = result["explorer"]
        print(f"explorer throughput: {ex['current_configs_per_sec']:.0f} "
              f"configs/s vs seed {ex['seed_configs_per_sec']:.0f} "
              f"({ex['speedup']:.2f}x)")
    if "transition_memo_hit_rate" in result["cache_stats"]:
        print("transition memo hit rate: "
              f"{result['cache_stats']['transition_memo_hit_rate']:.1%}")
    if "config_ratio" in result["reduction"]:
        red = result["reduction"]
        print(f"reduction: {red['reduced_configs']} of "
              f"{red['full_configs']} configs "
              f"({red['config_ratio']:.1%}) under persistent+symmetry")
    if worst:
        print(f"slowest speedup: {worst[0]} at {worst[1]:.2f}x")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
