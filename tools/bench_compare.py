#!/usr/bin/env python3
"""Smoke-benchmark harness: run bench_explorer / bench_mover, the E12
reduction-scope explorer benchmarks, the E14 certified-commutativity POR
scope (pprun with and without --commut-db on a distinct-key map scenario,
gated on a >=1.2x config reduction), a fixed-seed ppfuzz campaign, and a
ppstress throughput sweep (commits/s at 1 and 8 workers, so the JSON
records the real-thread scaling ratio of the E13 experiment); compare
against the recorded seed and PR 3 baselines; capture cache and
snapshot/copy-traffic counters from `pprun --stats`; and write the result
as JSON (BENCH_PR10.json at the repo root, via the `bench-smoke` CMake
target).

Exit status is non-zero when any tracked metric regresses more than
--tolerance (default 10%) against its stored baseline, so CI can gate on
performance.  Pass --no-gate to record numbers without failing.

Only the Python standard library is used.  Times are medians of
`--repeats` runs of each binary (the benches themselves already average
over many iterations; the outer repeats damp scheduler noise on small
containers).
"""

import argparse
import json
import os
import re
import statistics
import subprocess
import sys
import tempfile
import time

# Pre-interning seed medians (ns), recorded on the same 1-CPU container
# this harness targets.  The seed explorer also reported its throughput
# counter directly.  Kept for the long-running "vs seed" history.
SEED_NS = {
    "bench_explorer": {
        "BM_ExploreTwoThreads": 883308.0,
    },
    "bench_mover": {
        "BM_LeftMoverSemanticCold": 64371.0,
        "BM_PrecongruenceRefutation": 8052.0,
        "BM_PrecongruenceDiagonal": 615.0,
        "BM_AllowedDenotation/8": 550.0,
        "BM_AllowedDenotation/64": 3966.0,
        "BM_AllowedDenotation/512": 31532.0,
        "BM_ValidationOverhead/1": 22106.0,
    },
}
SEED_EXPLORER_CONFIGS_PER_SEC = 110527.0

# PR 3 baselines: medians measured by this same harness on a pristine
# pre-CoW checkout (interleaved with the current build on one container,
# so both sides see the same machine state).  The E12 reduction scope is
# BM_ExploreReduced: three identical counter-increment transactions
# explored under each reduction mode; configs/s is the explorer's visited
# configurations per second.  ppfuzz execs/s is a fixed-seed campaign
# (--seed 11) of generated differential-fuzzing cases.
PR3_EXPLORER_CONFIGS_PER_SEC = {
    "none": 144265.0,
    "sleep": 156662.0,
    "persistent": 141462.0,
    "persistent+symmetry": 70793.0,
    "two_threads": 203164.0,
}
PR3_PPFUZZ_EXECS_PER_SEC = 284.0

# Stored baselines for the regression gate: floors/ceilings set ~10% past
# the medians recorded when this harness was last re-baselined (PR 6), so
# the gate has headroom for container noise on top of --tolerance.  "rate"
# metrics must not drop more than the tolerance below baseline; "ns"
# metrics must not rise more than the tolerance above it.
TRACKED = {
    "explorer_configs_per_sec/none": ("rate", 210000.0),
    "explorer_configs_per_sec/sleep": ("rate", 195000.0),
    "explorer_configs_per_sec/persistent": ("rate", 170000.0),
    "explorer_configs_per_sec/persistent+symmetry": ("rate", 130000.0),
    "explorer_configs_per_sec/two_threads": ("rate", 275000.0),
    "ppfuzz_execs_per_sec": ("rate", 400.0),
    # Re-baselined at PR 10: the PR 6 ceiling (26000) was ~10% under the
    # medians the harness itself recorded at PR 6 and PR 8 (~28.5k ns),
    # so the gate sat <1% from tripping on noise for two PRs.
    "bench_mover/BM_LeftMoverSemanticCold": ("ns", 29000.0),
    "bench_mover/BM_PrecongruenceRefutation": ("ns", 5200.0),
    "bench_mover/BM_AllowedDenotation/64": ("ns", 2100.0),
    # Snapshot traffic per visited config on the unreduced E12 scope: a
    # rise means successor expansion started deep-copying again.  These
    # are deterministic counters, not timings.
    "explorer_snapshot_bytes_per_config": ("ns", 5500.0),
    "explorer_deep_copies_per_config": ("ns", 2.1),
    # ppstress floors, re-baselined from the recorded PR 8 sweep
    # (BENCH_PR8.json: w1=1488.9 commits/s, w8=12487.0 commits/s,
    # scaling 8.39x) with the usual ~10% headroom.  The think-time-bound
    # workload makes the scaling ratio stable even on small containers.
    "ppstress_commits_per_sec/boosting_w1": ("rate", 1340.0),
    "ppstress_commits_per_sec/boosting_w8": ("rate", 11200.0),
    "ppstress_scaling_1_to_8/boosting": ("rate", 7.5),
    # E14: full-enumeration configs / commut-db configs on the
    # distinct-key map scope.  Deterministic counter ratio, not a timing;
    # the PR 10 acceptance floor is 1.2x, measured ~2.3x, so the baseline
    # leaves the gate comfortably above the floor even with tolerance.
    "commut_config_reduction": ("rate", 1.4),
}

# The ppstress scaling sweep (experiment E13): think-time per commit makes
# the workload latency-bound, so commits/s scales with worker count even
# on a single-core container — what degrades the ratio is lock convoying
# in the arbiter or the spec's shared intern tables, which is exactly what
# the metric watches.
PPSTRESS_ENGINE = "boosting"
PPSTRESS_SPEC = "counter"
PPSTRESS_THINK_US = 500
PPSTRESS_DURATION_MS = 1200
PPSTRESS_WORKER_POINTS = [1, 8]

STATS_SCENARIO = """# bench_compare smoke scenario: map transactions + exploration.
spec map name=map keys=4 vals=3
engine boosting seed=42
schedule random seed=7 maxsteps=100000
thread tx { a := map.put(1, 2) }; tx { b := map.get(1) }
thread tx { c := map.put(1, 1) }
check serializability
check explore
"""

REDUCTION_SCENARIO = """# bench_compare reduction scenario: 3 identical threads.
spec counter name=c counters=1 mod=3
engine boosting seed=42
schedule random seed=7 maxsteps=100000
thread tx { c.inc(0) }
thread tx { c.inc(0) }
thread tx { c.inc(0) }
check explore
"""

COMMUT_SCENARIO = """# bench_compare commut scenario: distinct-key puts (E14).
spec map name=map keys=2 vals=2
engine boosting seed=42
thread tx { a := map.put(0, 0) }; tx { b := map.put(0, 1) }
thread tx { c := map.put(1, 0) }; tx { d := map.put(1, 1) }
check explore
"""

# BM_ExploreReduced/<arg> argument order (matches enum Reduction).
REDUCED_MODES = ["none", "sleep", "persistent", "persistent+symmetry"]


def run_bench(binary, repeats, bench_filter=None):
    """Run one google-benchmark binary; return {name: {"ns": median,
    "counters": {...}}} over the filtered benchmarks."""
    by_name = {}
    for _ in range(repeats):
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            out_path = tmp.name
        try:
            cmd = [binary, "--benchmark_out=" + out_path,
                   "--benchmark_out_format=json"]
            if bench_filter:
                cmd.append("--benchmark_filter=" + bench_filter)
            subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL,
                           stderr=subprocess.DEVNULL)
            with open(out_path) as f:
                report = json.load(f)
        finally:
            os.unlink(out_path)
        for b in report.get("benchmarks", []):
            name = b["name"]
            entry = by_name.setdefault(name, {"ns": [], "counters": {}})
            entry["ns"].append(float(b["real_time"]))
            for key, val in b.items():
                if isinstance(val, (int, float)) and key not in (
                        "real_time", "cpu_time", "iterations",
                        "repetition_index", "family_index",
                        "per_family_instance_index", "threads"):
                    entry["counters"].setdefault(key, []).append(float(val))
    return {
        name: {
            "ns": statistics.median(e["ns"]),
            "counters": {k: statistics.median(v)
                         for k, v in e["counters"].items()},
        }
        for name, e in by_name.items()
    }


def run_ppfuzz(binary, repeats, seed=11, runs=300):
    """Run a fixed-seed ppfuzz campaign; return median execs/s measured by
    wall clock around the whole process (works for builds that do not
    print their own throughput line)."""
    rates = []
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as repro:
            t0 = time.perf_counter()
            proc = subprocess.run(
                [binary, "--seed", str(seed), "--runs", str(runs),
                 "--quiet", "--repro-dir", repro],
                capture_output=True, text=True)
            secs = time.perf_counter() - t0
        if proc.returncode != 0:
            return None
        rates.append(runs / secs if secs > 0 else 0.0)
    return statistics.median(rates)


def run_ppstress(binary, workers, repeats, engine=PPSTRESS_ENGINE,
                 spec=PPSTRESS_SPEC, think_us=PPSTRESS_THINK_US,
                 duration_ms=PPSTRESS_DURATION_MS, seed=1):
    """Run one ppstress --bench configuration; return the median
    {commits, commits_per_sec, aborts, windows} over --repeats runs, or
    None when the binary fails (e.g. a window-check failure)."""
    rows = []
    for _ in range(repeats):
        proc = subprocess.run(
            [binary, "--engine", engine, "--spec", spec,
             "--workers", str(workers), "--think-us", str(think_us),
             "--duration-ms", str(duration_ms), "--seed", str(seed),
             "--no-check", "--bench"],
            capture_output=True, text=True)
        if proc.returncode != 0:
            return None
        m = re.search(
            r"commits=(\d+) commits_per_sec=([0-9.]+) aborts=(\d+) "
            r"windows=(\d+)", proc.stdout)
        if not m:
            return None
        rows.append({"commits": int(m.group(1)),
                     "commits_per_sec": float(m.group(2)),
                     "aborts": int(m.group(3))})
    return {
        "commits": statistics.median(r["commits"] for r in rows),
        "commits_per_sec": statistics.median(
            r["commits_per_sec"] for r in rows),
        "aborts": statistics.median(r["aborts"] for r in rows),
    }


def run_reduction_scenario(pprun):
    """Run `check explore` with and without reduction; return the config
    counts, the pruning counters, and the reduction ratio."""
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".pp", delete=False) as tmp:
        tmp.write(REDUCTION_SCENARIO)
        path = tmp.name
    out = {}
    try:
        for mode, key in (("none", "full"), ("persistent+symmetry",
                                             "reduced")):
            proc = subprocess.run(
                [pprun, "--stats", "--reduction=" + mode, path],
                capture_output=True, text=True)
            m = re.search(r"explore: (\d+) configs, (\d+) terminals, "
                          r"(\d+) non-serializable", proc.stdout)
            if not m:
                return {}
            out[key + "_configs"] = int(m.group(1))
            out[key + "_terminals"] = int(m.group(2))
            out[key + "_non_serializable"] = int(m.group(3))
            if key == "reduced":
                for stat, pat in (
                        ("firings_pruned", r"firings pruned:\s+(\d+)"),
                        ("persistent_cuts", r"persistent cuts:\s+(\d+)"),
                        ("symmetry_hits", r"symmetry hits:\s+(\d+)")):
                    sm = re.search(pat, proc.stdout)
                    if sm:
                        out[stat] = int(sm.group(1))
    finally:
        os.unlink(path)
    if out.get("full_configs"):
        out["config_ratio"] = round(
            out["reduced_configs"] / out["full_configs"], 3)
    return out


def run_commut_scenario(pprun):
    """Run the distinct-key map scope under persistent+symmetry with and
    without the certified commutativity table (--commut-db), plus the
    whole-program prover (--static-prove) on the DB side; return config
    counts, the table/certificate counters, the prove verdict, and the
    config reduction ratio (full configs / DB configs)."""
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".pp", delete=False) as tmp:
        tmp.write(COMMUT_SCENARIO)
        path = tmp.name
    out = {}
    try:
        for flags, key in (([], "full"),
                           (["--commut-db", "--static-prove"], "db")):
            proc = subprocess.run(
                [pprun, "--stats", "--reduction=persistent+symmetry"]
                + flags + [path],
                capture_output=True, text=True)
            m = re.search(r"explore: (\d+) configs, (\d+) terminals, "
                          r"(\d+) non-serializable", proc.stdout)
            if proc.returncode != 0 or not m:
                return {}
            out[key + "_configs"] = int(m.group(1))
            out[key + "_terminals"] = int(m.group(2))
            out[key + "_non_serializable"] = int(m.group(3))
            if key != "db":
                continue
            for stat, pat in (
                    ("commut_hits", r"commut table:\s+(\d+) hits"),
                    ("commut_misses", r"commut table:\s+\d+ hits / (\d+)"),
                    ("cert_checks", r"cert checks:\s+(\d+)"),
                    ("proved_programs", r"proved programs:\s+(\d+)"),
                    ("oracle_skips", r"oracle skips:\s+(\d+)")):
                sm = re.search(pat, proc.stdout)
                if sm:
                    out[stat] = int(sm.group(1))
            pm = re.search(r"prove:\s+(\w+)", proc.stdout)
            if pm:
                out["prove_verdict"] = pm.group(1)
    finally:
        os.unlink(path)
    if out.get("db_configs"):
        out["config_reduction"] = round(
            out["full_configs"] / out["db_configs"], 3)
    return out


def run_stats_scenario(pprun):
    """Run pprun --stats on the smoke scenario; parse the cache block."""
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".pp", delete=False) as tmp:
        tmp.write(STATS_SCENARIO)
        path = tmp.name
    try:
        proc = subprocess.run([pprun, "--stats", path],
                              capture_output=True, text=True)
    finally:
        os.unlink(path)
    text = proc.stdout
    stats = {}
    patterns = {
        "states_interned": r"states interned:\s+(\d+)",
        "state_sets_interned": r"state sets interned:\s+(\d+)",
        "op_keys_interned": r"op keys interned:\s+(\d+)",
        "transition_memo_hits": r"transition memo:\s+(\d+) hits",
        "transition_memo_misses": r"transition memo:\s+\d+ hits / (\d+)",
        "mover_memo_hits": r"mover memo:\s+(\d+) hits",
        "mover_memo_misses": r"mover memo:\s+\d+ hits / (\d+)",
        "precongruence_pairs": r"precongruence pairs:\s+(\d+)",
        "reachable_state_sets": r"reachable state sets:\s+(\d+)",
        "machine_copies": r"machine copies:\s+(\d+)",
        "chunk_shares": r"log chunk copies:\s+(\d+) shared",
        "deep_chunk_copies": r"log chunk copies:\s+\d+ shared / (\d+)",
        "snapshot_bytes": r"snapshot bytes:\s+(\d+)",
        "arena_bytes": r"arena bytes:\s+(\d+)",
    }
    for key, pat in patterns.items():
        m = re.search(pat, text)
        if m:
            stats[key] = int(m.group(1))
    hits = stats.get("transition_memo_hits", 0)
    misses = stats.get("transition_memo_misses", 0)
    if hits + misses:
        stats["transition_memo_hit_rate"] = hits / (hits + misses)
    shares = stats.get("chunk_shares", 0)
    clones = stats.get("deep_chunk_copies", 0)
    if shares + clones:
        stats["chunk_share_rate"] = shares / (shares + clones)
    return stats


def geomean(values):
    return statistics.geometric_mean(values) if values else 0.0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out", default="BENCH_PR10.json")
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--fuzz-runs", type=int, default=300)
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional regression vs stored baseline")
    ap.add_argument("--no-gate", action="store_true",
                    help="record numbers but always exit 0")
    args = ap.parse_args()

    result = {"repeats": args.repeats, "benchmarks": {}, "explorer": {},
              "explorer_e12": {}, "ppfuzz": {}, "ppstress": {},
              "cache_stats": {}, "reduction": {}, "commut": {},
              "vs_pr3": {}}
    measured_tracked = {}

    for bench, baselines in SEED_NS.items():
        binary = os.path.join(args.build_dir, "bench", bench)
        if not os.path.exists(binary):
            print(f"error: {binary} not built", file=sys.stderr)
            return 1
        measured = run_bench(binary, args.repeats)
        for name, seed_ns in baselines.items():
            if name not in measured:
                print(f"warning: {bench}/{name} missing from output",
                      file=sys.stderr)
                continue
            cur = measured[name]["ns"]
            speedup = seed_ns / cur if cur else 0.0
            result["benchmarks"][f"{bench}/{name}"] = {
                "seed_ns": seed_ns,
                "current_ns": round(cur, 1),
                "seed_queries_per_sec": round(1e9 / seed_ns, 0),
                "current_queries_per_sec": round(1e9 / cur, 0) if cur else 0.0,
                "speedup": round(speedup, 2),
            }
            measured_tracked[f"{bench}/{name}"] = cur
        if bench != "bench_explorer":
            continue

        # Seed comparison on the two-thread scope (historic metric).
        if "BM_ExploreTwoThreads" in measured:
            counters = measured["BM_ExploreTwoThreads"]["counters"]
            cps = counters.get("configs", 0.0)
            result["explorer"] = {
                "seed_configs_per_sec": SEED_EXPLORER_CONFIGS_PER_SEC,
                "current_configs_per_sec": round(cps, 0),
                "speedup": round(cps / SEED_EXPLORER_CONFIGS_PER_SEC, 2)
                if cps else 0.0,
            }
            measured_tracked["explorer_configs_per_sec/two_threads"] = cps

        # The E12 reduction scope: configs/s per reduction mode, plus the
        # per-config snapshot-traffic counters.
        for idx, mode in enumerate(REDUCED_MODES):
            name = f"BM_ExploreReduced/{idx}"
            if name not in measured:
                continue
            counters = measured[name]["counters"]
            cps = counters.get("configs", 0.0)
            entry = {
                "configs_per_sec": round(cps, 0),
                "pr3_configs_per_sec": PR3_EXPLORER_CONFIGS_PER_SEC[mode],
                "speedup_vs_pr3": round(
                    cps / PR3_EXPLORER_CONFIGS_PER_SEC[mode], 2)
                if cps else 0.0,
            }
            if "snapshotB/cfg" in counters:
                entry["snapshot_bytes_per_config"] = round(
                    counters["snapshotB/cfg"], 1)
            if "deepcopy/cfg" in counters:
                entry["deep_copies_per_config"] = round(
                    counters["deepcopy/cfg"], 3)
            result["explorer_e12"][mode] = entry
            measured_tracked[f"explorer_configs_per_sec/{mode}"] = cps
            if mode == "none":
                if "snapshotB/cfg" in counters:
                    measured_tracked["explorer_snapshot_bytes_per_config"] = \
                        counters["snapshotB/cfg"]
                if "deepcopy/cfg" in counters:
                    measured_tracked["explorer_deep_copies_per_config"] = \
                        counters["deepcopy/cfg"]

    ppfuzz = os.path.join(args.build_dir, "tools", "ppfuzz")
    if os.path.exists(ppfuzz):
        execs = run_ppfuzz(ppfuzz, args.repeats, runs=args.fuzz_runs)
        if execs is not None:
            result["ppfuzz"] = {
                "execs_per_sec": round(execs, 1),
                "pr3_execs_per_sec": PR3_PPFUZZ_EXECS_PER_SEC,
                "speedup_vs_pr3": round(execs / PR3_PPFUZZ_EXECS_PER_SEC, 2),
            }
            measured_tracked["ppfuzz_execs_per_sec"] = execs

    ppstress = os.path.join(args.build_dir, "tools", "ppstress")
    if os.path.exists(ppstress):
        sweep = {}
        for w in PPSTRESS_WORKER_POINTS:
            row = run_ppstress(ppstress, w, args.repeats)
            if row is None:
                sweep = {}
                break
            sweep[f"w{w}"] = row
            measured_tracked[
                f"ppstress_commits_per_sec/{PPSTRESS_ENGINE}_w{w}"] = \
                row["commits_per_sec"]
        if sweep:
            lo = sweep[f"w{PPSTRESS_WORKER_POINTS[0]}"]["commits_per_sec"]
            hi = sweep[f"w{PPSTRESS_WORKER_POINTS[-1]}"]["commits_per_sec"]
            scaling = round(hi / lo, 2) if lo else 0.0
            result["ppstress"] = {
                "engine": PPSTRESS_ENGINE,
                "spec": PPSTRESS_SPEC,
                "think_us": PPSTRESS_THINK_US,
                "duration_ms": PPSTRESS_DURATION_MS,
                "workers": sweep,
                "scaling_1_to_8": scaling,
            }
            measured_tracked[
                f"ppstress_scaling_1_to_8/{PPSTRESS_ENGINE}"] = scaling

    pprun = os.path.join(args.build_dir, "tools", "pprun")
    if os.path.exists(pprun):
        result["cache_stats"] = run_stats_scenario(pprun)
        result["reduction"] = run_reduction_scenario(pprun)
        result["commut"] = run_commut_scenario(pprun)
        if "config_reduction" in result["commut"]:
            measured_tracked["commut_config_reduction"] = \
                result["commut"]["config_reduction"]

    # Headline vs-PR3 summary: geometric mean of the E12 reduction-scope
    # speedups plus the fuzzer's throughput gain.
    e12 = [e["speedup_vs_pr3"] for e in result["explorer_e12"].values()
           if e["speedup_vs_pr3"] > 0]
    result["vs_pr3"] = {
        "explorer_e12_speedup_geomean": round(geomean(e12), 2) if e12 else 0.0,
        "ppfuzz_speedup": result["ppfuzz"].get("speedup_vs_pr3", 0.0),
    }

    # Regression gate: any tracked metric >tolerance worse than its stored
    # baseline fails the run.
    regressions = []
    for metric, (kind, baseline) in TRACKED.items():
        cur = measured_tracked.get(metric)
        if cur is None or not baseline:
            continue
        if kind == "rate":
            ratio = cur / baseline
            bad = ratio < 1.0 - args.tolerance
        else:
            ratio = baseline / cur if cur else 0.0
            bad = cur > baseline * (1.0 + args.tolerance)
        if bad:
            regressions.append((metric, baseline, cur, ratio))
    result["regressions"] = [
        {"metric": m, "baseline": b, "current": round(c, 1),
         "ratio": round(r, 3)}
        for m, b, c, r in regressions]

    with open(args.out, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")

    width = max(len(n) for n in result["benchmarks"])
    print(f"{'benchmark':<{width}}  {'seed ns':>10}  {'now ns':>10}  speedup")
    for name, row in sorted(result["benchmarks"].items()):
        print(f"{name:<{width}}  {row['seed_ns']:>10.0f}  "
              f"{row['current_ns']:>10.0f}  {row['speedup']:>6.2f}x")
    if result["explorer"]:
        ex = result["explorer"]
        print(f"explorer throughput: {ex['current_configs_per_sec']:.0f} "
              f"configs/s vs seed {ex['seed_configs_per_sec']:.0f} "
              f"({ex['speedup']:.2f}x)")
    for mode, e in result["explorer_e12"].items():
        extra = ""
        if "snapshot_bytes_per_config" in e:
            extra = (f"  [{e['snapshot_bytes_per_config']:.0f} snapshot B/cfg,"
                     f" {e['deep_copies_per_config']:.2f} deep copies/cfg]")
        print(f"explore E12 {mode:<20} {e['configs_per_sec']:>9.0f} configs/s "
              f"vs PR3 {e['pr3_configs_per_sec']:>9.0f} "
              f"({e['speedup_vs_pr3']:.2f}x){extra}")
    if result["ppfuzz"]:
        pf = result["ppfuzz"]
        print(f"ppfuzz: {pf['execs_per_sec']:.1f} execs/s vs PR3 "
              f"{pf['pr3_execs_per_sec']:.1f} ({pf['speedup_vs_pr3']:.2f}x)")
    if result["ppstress"]:
        ps = result["ppstress"]
        per_w = "  ".join(
            f"{w}: {row['commits_per_sec']:.0f} commits/s"
            for w, row in sorted(ps["workers"].items()))
        print(f"ppstress {ps['engine']}/{ps['spec']} "
              f"(think {ps['think_us']}us): {per_w}  "
              f"-> {ps['scaling_1_to_8']:.2f}x scaling 1->8 workers")
    if result["vs_pr3"]:
        print(f"vs PR3: explorer E12 geomean "
              f"{result['vs_pr3']['explorer_e12_speedup_geomean']:.2f}x, "
              f"ppfuzz {result['vs_pr3']['ppfuzz_speedup']:.2f}x")
    if "transition_memo_hit_rate" in result["cache_stats"]:
        print("transition memo hit rate: "
              f"{result['cache_stats']['transition_memo_hit_rate']:.1%}")
    if "chunk_share_rate" in result["cache_stats"]:
        print("log chunk share rate: "
              f"{result['cache_stats']['chunk_share_rate']:.1%}")
    if "config_ratio" in result["reduction"]:
        red = result["reduction"]
        print(f"reduction: {red['reduced_configs']} of "
              f"{red['full_configs']} configs "
              f"({red['config_ratio']:.1%}) under persistent+symmetry")
    if "config_reduction" in result["commut"]:
        cm = result["commut"]
        print(f"commut POR: {cm['db_configs']} of {cm['full_configs']} "
              f"configs ({cm['config_reduction']:.2f}x reduction) with the "
              f"certified table; prove={cm.get('prove_verdict', '?')}, "
              f"oracle skips={cm.get('oracle_skips', 0)}")
    print(f"wrote {args.out}")

    if regressions:
        for metric, baseline, cur, ratio in regressions:
            print(f"REGRESSION: {metric} at {cur:.1f} vs baseline "
                  f"{baseline:.1f} ({ratio:.2f}x)", file=sys.stderr)
        if not args.no_gate:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
