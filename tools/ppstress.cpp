//===- tools/ppstress.cpp - Real-concurrency stress runner --------------------===//
//
// Drives N OS worker threads, each running a TM engine instance over a
// shared spec, through the sharded commit arbiter.  Every engine step is
// recorded into per-worker lock-free rings; a checker thread
// shadow-replays each captured window through the single-threaded
// machine and validates it against the atomic oracle (Theorem 5.17) and
// the Section 6.1 opaque fragment.  Failing windows dump `.ppsched`
// reproducers that --replay re-executes deterministically.
//
//   ppstress --engine boosting --spec counter --workers 8
//   ppstress --all-engines --workers 4
//   ppstress --replay failure.ppsched
//
// Options:
//   --engine NAME          TM engine (default boosting)
//   --spec KIND            spec kind (default counter)
//   --workers N            OS worker threads (default 4)
//   --threads-per-worker N logical machine threads per worker (default 2)
//   --rounds N             workload rounds per worker (default 6)
//   --duration-ms N        run rounds until the wall clock expires
//                          (overrides --rounds)
//   --think-us N           client think time after each commit (the E13
//                          latency-bound scaling mode)
//   --tx N / --ops N       transactions per thread / ops per transaction
//   --seed N               master seed (default 1)
//   --stripes N            arbiter lock stripes (default 8)
//   --window N             commits per arbiter window (default 16)
//   --inject NAME          fault injection: skip the named Figure 5
//                          criterion in every machine (the checker must
//                          then convict the run)
//   --expect-failure       exit 0 iff the run DID fail (for harnesses
//                          demonstrating fault injection end to end)
//   --dump-dir DIR         where failing windows write .ppsched files
//                          (default: current directory)
//   --no-check             disable window checking (pure throughput)
//   --all-engines          run every engine over the chosen spec
//   --bench                one-line machine-readable summary per run
//   --replay FILE          re-execute a .ppsched reproducer through the
//                          differential battery
//
// Exit status: 0 clean, 1 failure detected (inverted by
// --expect-failure), 2 usage/build error.  --replay: 0 clean, 1
// discrepancy, 2 error.
//
//===----------------------------------------------------------------------===//

#include "fuzz/DiffRunner.h"
#include "sim/Scenario.h"
#include "stress/StressRunner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace pushpull;

static int replay(const char *Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path);
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  ScenarioParseResult PR = parseScenario(Buf.str());
  if (!PR.ok()) {
    std::fprintf(stderr, "%s:%zu: error: %s\n", Path, PR.ErrorLine,
                 PR.Error.c_str());
    return 2;
  }
  BuiltCase Case = fromScenario(*PR.Parsed);
  DiffReport R = DiffRunner().run(Case);
  std::printf("replay: %s (engine %s, %zu threads, %zu picks%s)\n%s", Path,
              Case.Engine.c_str(), Case.Threads.size(),
              Case.ReplayPicks.size(),
              Case.DisabledCriterion.empty()
                  ? ""
                  : (", inject " + Case.DisabledCriterion).c_str(),
              R.toString().c_str());
  if (!R.Built)
    return 2;
  std::printf("%s\n", R.discrepancy() ? "DISCREPANCY" : "OK");
  return R.discrepancy() ? 1 : 0;
}

static int runOne(const StressConfig &C, bool Bench) {
  StressOutcome O = StressRunner(C).run();
  if (Bench) {
    std::printf("BENCH engine=%s spec=%s workers=%u commits=%llu "
                "commits_per_sec=%.1f aborts=%llu windows=%llu "
                "elapsed_sec=%.3f\n",
                C.Engine.c_str(), C.SpecKind.c_str(), C.Workers,
                static_cast<unsigned long long>(O.Stats.Commits),
                O.Stats.commitsPerSec(),
                static_cast<unsigned long long>(O.Stats.Aborts),
                static_cast<unsigned long long>(O.Stats.Windows),
                O.Stats.ElapsedSec);
  } else {
    std::printf("%-14s %s\n", C.Engine.c_str(), O.Stats.toString().c_str());
  }
  for (const std::string &F : O.Failures)
    std::printf("  FAILURE: %s\n", F.c_str());
  for (const std::string &P : O.DumpFiles)
    std::printf("  reproducer: %s\n", P.c_str());
  return O.ok() ? 0 : 1;
}

int main(int argc, char **argv) {
  StressConfig C;
  C.DumpDir = ".";
  bool AllEngines = false, Bench = false, ExpectFailure = false;
  const char *ReplayPath = nullptr;

  auto NumArg = [&](int &I, const char *Flag, long &Out) {
    if (std::strcmp(argv[I], Flag) != 0)
      return false;
    if (I + 1 >= argc || (Out = std::strtol(argv[++I], nullptr, 10)) < 0) {
      std::fprintf(stderr, "error: %s needs a non-negative integer\n", Flag);
      std::exit(2);
    }
    return true;
  };
  auto StrArg = [&](int &I, const char *Flag, const char *&Out) {
    if (std::strcmp(argv[I], Flag) != 0)
      return false;
    if (I + 1 >= argc) {
      std::fprintf(stderr, "error: %s needs an argument\n", Flag);
      std::exit(2);
    }
    Out = argv[++I];
    return true;
  };

  for (int I = 1; I < argc; ++I) {
    long N = 0;
    const char *S = nullptr;
    if (StrArg(I, "--replay", S)) {
      ReplayPath = S;
      continue;
    }
    if (StrArg(I, "--engine", S)) {
      C.Engine = S;
      continue;
    }
    if (StrArg(I, "--spec", S)) {
      C.SpecKind = S;
      continue;
    }
    if (StrArg(I, "--inject", S)) {
      C.DisabledCriterion = S;
      continue;
    }
    if (StrArg(I, "--dump-dir", S)) {
      C.DumpDir = S;
      continue;
    }
    if (NumArg(I, "--workers", N)) {
      C.Workers = static_cast<unsigned>(N);
      continue;
    }
    if (NumArg(I, "--threads-per-worker", N)) {
      C.ThreadsPerWorker = static_cast<unsigned>(N);
      continue;
    }
    if (NumArg(I, "--rounds", N)) {
      C.Rounds = static_cast<unsigned>(N);
      continue;
    }
    if (NumArg(I, "--duration-ms", N)) {
      C.DurationMs = static_cast<uint64_t>(N);
      continue;
    }
    if (NumArg(I, "--think-us", N)) {
      C.ThinkUs = static_cast<unsigned>(N);
      continue;
    }
    if (NumArg(I, "--tx", N)) {
      C.TxPerThread = static_cast<unsigned>(N);
      continue;
    }
    if (NumArg(I, "--ops", N)) {
      C.OpsPerTx = static_cast<unsigned>(N);
      continue;
    }
    if (NumArg(I, "--seed", N)) {
      C.Seed = static_cast<uint64_t>(N);
      continue;
    }
    if (NumArg(I, "--stripes", N)) {
      C.Stripes = static_cast<unsigned>(N);
      continue;
    }
    if (NumArg(I, "--window", N)) {
      C.WindowCommits = static_cast<uint64_t>(N);
      continue;
    }
    if (std::strcmp(argv[I], "--no-check") == 0) {
      C.CheckWindows = false;
      continue;
    }
    if (std::strcmp(argv[I], "--all-engines") == 0) {
      AllEngines = true;
      continue;
    }
    if (std::strcmp(argv[I], "--bench") == 0) {
      Bench = true;
      continue;
    }
    if (std::strcmp(argv[I], "--expect-failure") == 0) {
      ExpectFailure = true;
      continue;
    }
    std::fprintf(
        stderr,
        "usage: ppstress [--engine NAME] [--spec KIND] [--workers N]\n"
        "                [--threads-per-worker N] [--rounds N]\n"
        "                [--duration-ms N] [--think-us N] [--tx N] [--ops N]\n"
        "                [--seed N] [--stripes N] [--window N]\n"
        "                [--inject NAME] [--expect-failure] [--dump-dir D]\n"
        "                [--no-check] [--all-engines] [--bench]\n"
        "       ppstress --replay <file.ppsched>\n");
    return 2;
  }

  if (ReplayPath)
    return replay(ReplayPath);

  int Rc = 0;
  if (AllEngines) {
    for (const std::string &E : allEngineNames()) {
      StressConfig EC = C;
      EC.Engine = E;
      Rc |= runOne(EC, Bench);
    }
  } else {
    Rc = runOne(C, Bench);
  }
  if (ExpectFailure)
    Rc = Rc ? 0 : 1;
  return Rc;
}
