//===- tools/pprun.cpp - Scenario runner --------------------------------------===//
//
// Run a PUSH/PULL scenario file: build the declared specification and
// engine, execute the thread programs to quiescence, print the rule
// trace, the committed shared log, the statistics, and the verdicts of
// the requested checks.
//
//   pprun <scenario-file>             run a scenario
//   pprun --example                   print a sample scenario and exit
//   pprun --trace <scenario-file>     also print the full rule trace
//   pprun --criteria <scenario-file>  also print the criteria audit (every
//                                     applied rule with each Figure 5
//                                     criterion's verdict)
//
// Exit status 0 iff the run finished and every check passed.
//
//===----------------------------------------------------------------------===//

#include "sim/Scenario.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace pushpull;

static const char *ExampleScenario = R"(# Figure 2 of the paper, as a scenario.
spec map name=map keys=8 vals=4
engine boosting seed=42
schedule random seed=7 maxsteps=100000
thread tx { a := map.put(1, 2) }; tx { b := map.get(1) }
thread tx { c := map.put(1, 3) }
thread tx { d := map.put(3, 1); e := map.get(1) }
check serializability
check opacity
check invariants
)";

int main(int argc, char **argv) {
  bool ShowTrace = false;
  bool ShowCriteria = false;
  const char *Path = nullptr;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--example") == 0) {
      std::fputs(ExampleScenario, stdout);
      return 0;
    }
    if (std::strcmp(argv[I], "--trace") == 0) {
      ShowTrace = true;
      continue;
    }
    if (std::strcmp(argv[I], "--criteria") == 0) {
      ShowCriteria = true;
      continue;
    }
    Path = argv[I];
  }
  if (!Path) {
    std::fprintf(stderr,
                 "usage: pprun [--trace] <scenario-file>\n"
                 "       pprun --example   (print a sample scenario)\n");
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path);
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  ScenarioParseResult PR = parseScenario(Buf.str());
  if (!PR.ok()) {
    std::fprintf(stderr, "%s:%zu: error: %s\n", Path, PR.ErrorLine,
                 PR.Error.c_str());
    return 2;
  }

  const Scenario &S = *PR.Parsed;
  std::printf("spec:     %s\n", S.Spec->name().c_str());
  std::printf("engine:   %s\n", S.Engine.c_str());
  std::printf("threads:  %zu\n", S.Threads.size());

  ScenarioOutcome O = runScenario(S);
  std::printf("run:      %s\n", O.Stats.toString().c_str());
  if (ShowTrace)
    std::printf("\nrule trace:\n%s", O.Trace.c_str());
  if (ShowCriteria)
    std::printf("\ncriteria audit:\n%s", O.Audit.c_str());
  std::printf("\ncommitted log: %s\n", O.CommittedLog.c_str());
  for (const std::string &R : O.CheckResults)
    std::printf("%s\n", R.c_str());
  std::printf("\n%s\n", O.Ok ? "OK" : "FAILED");
  return O.Ok ? 0 : 1;
}
