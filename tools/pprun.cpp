//===- tools/pprun.cpp - Scenario runner --------------------------------------===//
//
// Run a PUSH/PULL scenario file: build the declared specification and
// engine, execute the thread programs to quiescence, print the rule
// trace, the committed shared log, the statistics, and the verdicts of
// the requested checks.
//
//   pprun <scenario-file>             run a scenario
//   pprun --example                   print a sample scenario and exit
//   pprun --trace <scenario-file>     also print the full rule trace
//   pprun --criteria <scenario-file>  also print the criteria audit (every
//                                     applied rule with each Figure 5
//                                     criterion's verdict)
//   pprun --stats <scenario-file>     also print interning/memoization
//                                     effectiveness counters
//   pprun --threads N ...             worker threads for `check explore`
//   pprun --reduction MODE ...        partial-order reduction for `check
//                                     explore`: none | sleep | persistent |
//                                     persistent+symmetry (also =MODE form)
//   pprun --max-pairs N ...           precongruence pair budget per query
//   pprun --max-reachable N ...       reachable-state-set enumeration bound
//   pprun --commut-db ...             enable the certified commutativity
//                                     table for `check explore`: PUSH x PUSH
//                                     independence refinement plus the
//                                     G-order quotient key.  Refused when
//                                     the program's calls do not all map
//                                     into the spec's probe alphabet.
//   pprun --static-prove ...          run the whole-program serializability
//                                     prover first; when it returns PROVED,
//                                     `check explore` skips the per-terminal
//                                     serializability oracle replay
//
// Exit status 0 iff the run finished and every check passed.
//
//===----------------------------------------------------------------------===//

#include "analysis/MoverTable.h"
#include "sim/Scenario.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

using namespace pushpull;

static const char *ExampleScenario = R"(# Figure 2 of the paper, as a scenario.
spec map name=map keys=8 vals=4
engine boosting seed=42
schedule random seed=7 maxsteps=100000
thread tx { a := map.put(1, 2) }; tx { b := map.get(1) }
thread tx { c := map.put(1, 3) }
thread tx { d := map.put(3, 1); e := map.get(1) }
check serializability
check opacity
check invariants
)";

int main(int argc, char **argv) {
  bool ShowTrace = false;
  bool ShowCriteria = false;
  bool ShowStats = false;
  long Threads = -1, MaxPairs = -1, MaxReachable = -1;
  Reduction Reduce = Reduction::None;
  bool HaveReduce = false;
  bool UseCommutDB = false, StaticProve = false;
  const char *Path = nullptr;

  auto ParseReduction = [&](const char *Mode) {
    if (!reductionFromString(Mode, Reduce)) {
      std::fprintf(stderr,
                   "error: --reduction wants none | sleep | persistent |"
                   " persistent+symmetry, got '%s'\n",
                   Mode);
      std::exit(2);
    }
    HaveReduce = true;
  };

  auto NumArg = [&](int &I, const char *Flag, long &Out) {
    if (std::strcmp(argv[I], Flag) != 0)
      return false;
    if (I + 1 >= argc || (Out = std::strtol(argv[++I], nullptr, 10)) <= 0) {
      std::fprintf(stderr, "error: %s needs a positive integer\n", Flag);
      std::exit(2);
    }
    return true;
  };

  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--example") == 0) {
      std::fputs(ExampleScenario, stdout);
      return 0;
    }
    if (std::strcmp(argv[I], "--trace") == 0) {
      ShowTrace = true;
      continue;
    }
    if (std::strcmp(argv[I], "--criteria") == 0) {
      ShowCriteria = true;
      continue;
    }
    if (std::strcmp(argv[I], "--stats") == 0) {
      ShowStats = true;
      continue;
    }
    if (std::strcmp(argv[I], "--commut-db") == 0) {
      UseCommutDB = true;
      continue;
    }
    if (std::strcmp(argv[I], "--static-prove") == 0) {
      StaticProve = true;
      continue;
    }
    if (std::strcmp(argv[I], "--reduction") == 0) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: --reduction needs a mode\n");
        return 2;
      }
      ParseReduction(argv[++I]);
      continue;
    }
    if (std::strncmp(argv[I], "--reduction=", 12) == 0) {
      ParseReduction(argv[I] + 12);
      continue;
    }
    if (NumArg(I, "--threads", Threads) || NumArg(I, "--max-pairs", MaxPairs) ||
        NumArg(I, "--max-reachable", MaxReachable))
      continue;
    Path = argv[I];
  }
  if (!Path) {
    std::fprintf(stderr,
                 "usage: pprun [--trace] [--criteria] [--stats]\n"
                 "             [--threads N] [--reduction MODE]"
                 " [--max-pairs N]"
                 " [--max-reachable N]\n"
                 "             [--commut-db] [--static-prove]"
                 " <scenario-file>\n"
                 "       pprun --example   (print a sample scenario)\n");
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path);
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  ScenarioParseResult PR = parseScenario(Buf.str());
  if (!PR.ok()) {
    std::fprintf(stderr, "%s:%zu: error: %s\n", Path, PR.ErrorLine,
                 PR.Error.c_str());
    return 2;
  }

  Scenario &S = *PR.Parsed;
  if (Threads > 0)
    S.ExplorerThreads = static_cast<unsigned>(Threads);
  if (HaveReduce)
    S.ExplorerReduction = Reduce;
  if (MaxPairs > 0)
    S.Pre.MaxPairs = static_cast<size_t>(MaxPairs);
  if (MaxReachable > 0)
    S.Movers.MaxReachableSets = static_cast<size_t>(MaxReachable);
  std::printf("spec:     %s\n", S.Spec->name().c_str());
  std::printf("engine:   %s\n", S.Engine.c_str());
  std::printf("threads:  %zu\n", S.Threads.size());

  std::unique_ptr<CommutativityDB> DB;
  if (UseCommutDB || StaticProve)
    DB = std::make_unique<CommutativityDB>(*S.Spec,
                                           S.Movers.MaxReachableSets);
  if (UseCommutDB) {
    std::string Why;
    if (!DB->coversProgram(S.Threads, &Why)) {
      // Not merely ineffective: the certificates only cover runs whose
      // every operation is a probe instance, so enabling the quotient
      // here would be unsound.
      std::fprintf(stderr, "error: --commut-db: %s\n", Why.c_str());
      return 2;
    }
    S.CommutDB = DB.get();
  }
  bool Proved = false;
  if (StaticProve) {
    ProveResult R = proveSerializable(S, *DB);
    std::printf("prove:    %s (%s)\n", toString(R.V).c_str(),
                R.Detail.c_str());
    if (R.V == ProveResult::Verdict::Proved) {
      Proved = true;
      S.SkipOracleReplay = true;
    }
  }

  ScenarioOutcome O = runScenario(S);
  if (Proved)
    ++O.Caches.ProvedPrograms;
  std::printf("run:      %s\n", O.Stats.toString().c_str());
  if (ShowTrace)
    std::printf("\nrule trace:\n%s", O.Trace.c_str());
  if (ShowCriteria)
    std::printf("\ncriteria audit:\n%s", O.Audit.c_str());
  std::printf("\ncommitted log: %s\n", O.CommittedLog.c_str());
  for (const std::string &R : O.CheckResults)
    std::printf("%s\n", R.c_str());
  if (ShowStats)
    std::printf("\ncache stats:\n%s", O.Caches.toString().c_str());
  std::printf("\n%s\n", O.Ok ? "OK" : "FAILED");
  return O.Ok ? 0 : 1;
}
