//===- tools/ppfuzz.cpp - Differential fuzzer ---------------------------------===//
//
// Differential fuzzing of the TM engines against the PUSH/PULL model.
// Each generated case runs one engine over a random program and is
// cross-checked three ways: atomic-oracle replay (Theorem 5.17),
// opaque-fragment classification (Section 6.1), and the Section 5.3
// invariants after every rule firing.  Discrepancies are delta-debugged
// to a 1-minimal reproducer written as a replayable scenario file.
//
//   ppfuzz --seed 1 --runs 500                    run a campaign
//   ppfuzz --replay scenarios/regress/foo.pp      re-run one reproducer
//
// Options:
//   --seed N             campaign seed (default 1)
//   --runs N             cases to run (default 500)
//   --max-seconds S      wall-clock budget (default unlimited)
//   --engines a,b,...    restrict to these engines (default: all ten)
//   --specs a,b,...      restrict to these spec kinds (default: all six
//                        primitives plus "composite" two-part mixes)
//   --mutant-pct N       share of runs mutating a past case (default 30)
//   --repro-dir DIR      where reproducers go (default scenarios/regress)
//   --no-shrink          report discrepancies unshrunk
//   --disable-criterion "PUSH criterion (ii)"
//                        fault injection: skip the named Figure 5
//                        criterion (demonstrates the harness catches and
//                        minimizes a planted bug)
//   --quiet              suppress per-run progress lines
//
// Exit status 0 iff the campaign found no discrepancy and every engine
// exercised its whole expected rule set (replay: no discrepancy).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace pushpull;

static std::vector<std::string> splitList(const char *Arg) {
  std::vector<std::string> Out;
  std::string Cur;
  for (const char *P = Arg;; ++P) {
    if (*P == ',' || *P == '\0') {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
      if (*P == '\0')
        break;
    } else {
      Cur += *P;
    }
  }
  return Out;
}

static int replay(const char *Path, const DiffConfig &Diff) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path);
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  ScenarioParseResult PR = parseScenario(Buf.str());
  if (!PR.ok()) {
    std::fprintf(stderr, "%s:%zu: error: %s\n", Path, PR.ErrorLine,
                 PR.Error.c_str());
    return 2;
  }
  BuiltCase Case = fromScenario(*PR.Parsed);
  DiffReport R = DiffRunner(Diff).run(Case);
  std::printf("replay: %s (engine %s, %zu threads)\n%s", Path,
              Case.Engine.c_str(), Case.Threads.size(), R.toString().c_str());
  if (!R.Built) {
    return 2;
  }
  std::printf("%s\n", R.discrepancy()      ? "DISCREPANCY"
                      : R.inconclusive()   ? "INCONCLUSIVE"
                                           : "OK");
  return R.discrepancy() ? 1 : 0;
}

int main(int argc, char **argv) {
  CampaignConfig C;
  C.ReproDir = "scenarios/regress";
  C.Verbose = true;

  auto NumArg = [&](int &I, const char *Flag, long &Out) {
    if (std::strcmp(argv[I], Flag) != 0)
      return false;
    if (I + 1 >= argc || (Out = std::strtol(argv[++I], nullptr, 10)) < 0) {
      std::fprintf(stderr, "error: %s needs a non-negative integer\n", Flag);
      std::exit(2);
    }
    return true;
  };

  const char *ReplayPath = nullptr;
  for (int I = 1; I < argc; ++I) {
    long N = 0;
    if (std::strcmp(argv[I], "--replay") == 0) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: --replay needs a scenario file\n");
        return 2;
      }
      ReplayPath = argv[++I];
      continue;
    }
    if (NumArg(I, "--seed", N)) {
      C.Gen.Seed = static_cast<uint64_t>(N);
      continue;
    }
    if (NumArg(I, "--runs", N)) {
      C.Runs = static_cast<uint64_t>(N);
      continue;
    }
    if (NumArg(I, "--max-seconds", N)) {
      C.MaxSeconds = static_cast<double>(N);
      continue;
    }
    if (NumArg(I, "--mutant-pct", N)) {
      C.MutantPct = static_cast<unsigned>(N);
      continue;
    }
    if (std::strcmp(argv[I], "--engines") == 0 && I + 1 < argc) {
      C.Gen.Engines = splitList(argv[++I]);
      continue;
    }
    if (std::strcmp(argv[I], "--specs") == 0 && I + 1 < argc) {
      C.Gen.SpecKinds = splitList(argv[++I]);
      continue;
    }
    if (std::strcmp(argv[I], "--repro-dir") == 0 && I + 1 < argc) {
      C.ReproDir = argv[++I];
      continue;
    }
    if (std::strcmp(argv[I], "--disable-criterion") == 0 && I + 1 < argc) {
      C.Diff.DisabledCriterion = argv[++I];
      continue;
    }
    if (std::strcmp(argv[I], "--no-shrink") == 0) {
      C.ShrinkFailures = false;
      continue;
    }
    if (std::strcmp(argv[I], "--quiet") == 0) {
      C.Verbose = false;
      continue;
    }
    std::fprintf(
        stderr,
        "usage: ppfuzz [--seed N] [--runs N] [--max-seconds S]\n"
        "              [--engines a,b,...] [--specs a,b,...]\n"
        "              [--mutant-pct N] [--repro-dir DIR] [--no-shrink]\n"
        "              [--disable-criterion NAME] [--quiet]\n"
        "       ppfuzz --replay <scenario-file>\n");
    return 2;
  }

  if (ReplayPath)
    return replay(ReplayPath, C.Diff);

  auto T0 = std::chrono::steady_clock::now();
  CampaignReport R = Campaign(C).run();
  double Secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
                    .count();
  std::printf("%s", R.toString().c_str());
  std::printf("throughput: %.1f execs/s (%llu runs in %.2fs)\n",
              Secs > 0 ? static_cast<double>(R.RunsDone) / Secs : 0.0,
              static_cast<unsigned long long>(R.RunsDone), Secs);
  return R.ok() ? 0 : 1;
}
