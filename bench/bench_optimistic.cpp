//===- bench/bench_optimistic.cpp - E4: Section 6.2 ----------------------------===//
//
// Experiment E4: optimistic (TL2/TinySTM-style) transactions.  The
// Section 6.2 signatures, regenerated: transactions PULL everything at
// begin, APP locally, PUSH-all + CMT at an uninterleaved moment; PUSH
// criterion (iii) acts as read-set validation; aborts use UNAPP/UNPULL
// only (never UNPUSH); abort rate rises with contention.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "sim/Workload.h"
#include "spec/RegisterSpec.h"
#include "tm/CheckpointTM.h"
#include "tm/OptimisticTM.h"

#include <benchmark/benchmark.h>

using namespace pushpull;
using namespace pushpull::benchutil;

namespace {

void qualitative() {
  banner("E4 (Section 6.2)", "optimistic software TM");

  section("contention sweep: abort ratio vs shared-register count");
  std::printf("%8s %8s %8s %8s %12s %8s %12s\n", "regs", "commits", "aborts",
              "unpush", "abort-ratio", "pulls", "ops/step");
  for (unsigned Regs : {1u, 2u, 4u, 8u}) {
    RegisterSpec Spec("mem", Regs, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 4;
    WC.TxPerThread = 4;
    WC.OpsPerTx = 2;
    WC.KeyRange = Regs;
    WC.ReadPct = 50;
    WC.Seed = 100 + Regs;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    OptimisticTM E(M);
    RunStats St = runCertified(E, Spec, 100 + Regs);
    std::printf("%8u %8llu %8llu %8llu %12.3f %8llu %12.3f\n", Regs,
                (unsigned long long)St.Commits,
                (unsigned long long)St.Aborts,
                (unsigned long long)St.ruleCount(RuleKind::UnPush),
                St.abortRatio(),
                (unsigned long long)St.ruleCount(RuleKind::Pull),
                St.committedOpsPerStep());
  }
  std::printf("shape: fewer registers = more conflicts = higher abort "
              "ratio;\nUNPUSH stays 0 (optimistic aborts are local).\n");

  section("read-mostly vs write-mostly (4 threads, 2 registers)");
  std::printf("%10s %8s %8s %12s\n", "read%", "commits", "aborts",
              "abort-ratio");
  for (unsigned ReadPct : {10u, 50u, 90u}) {
    RegisterSpec Spec("mem", 2, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 4;
    WC.TxPerThread = 4;
    WC.OpsPerTx = 2;
    WC.KeyRange = 2;
    WC.ReadPct = ReadPct;
    WC.Seed = 200 + ReadPct;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    OptimisticTM E(M);
    RunStats St = runCertified(E, Spec, 200 + ReadPct);
    std::printf("%10u %8llu %8llu %12.3f\n", ReadPct,
                (unsigned long long)St.Commits,
                (unsigned long long)St.Aborts, St.abortRatio());
  }
  std::printf("shape: the balanced mix conflicts least on this small\n"
              "workload; both skewed mixes collide more (reads validate\n"
              "against writes and vice versa).  The classic monotone\n"
              "write-share effect needs larger read sets to emerge.\n");

  section("checkpoints (Sec. 6.2, closed nesting): partial vs full aborts");
  std::printf("%28s %8s %8s %10s %10s %8s\n", "engine", "commits", "aborts",
              "partial", "full", "unapps");
  for (int Which = 0; Which < 2; ++Which) {
    RegisterSpec Spec("mem", 2, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 4;
    WC.TxPerThread = 3;
    WC.OpsPerTx = 4;
    WC.KeyRange = 2;
    WC.ReadPct = 50;
    WC.Seed = 321;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    RunStats St;
    std::string Name;
    uint64_t Partial = 0, Full = 0;
    if (Which == 0) {
      OptimisticTM E(M);
      Name = E.name();
      St = runCertified(E, Spec, 321);
      Full = St.Aborts;
    } else {
      CheckpointConfig CC;
      CC.CheckpointEvery = 2;
      CheckpointTM E(M, CC);
      Name = E.name();
      St = runCertified(E, Spec, 321);
      Partial = E.partialAborts();
      Full = E.fullAborts();
    }
    std::printf("%28s %8llu %8llu %10llu %10llu %8llu\n", Name.c_str(),
                (unsigned long long)St.Commits,
                (unsigned long long)St.Aborts,
                (unsigned long long)Partial, (unsigned long long)Full,
                (unsigned long long)St.ruleCount(RuleKind::UnApp));
  }
  std::printf("shape: placemarkers convert some full aborts into partial\n"
              "rewinds, reducing re-executed (UNAPPed) work.\n");
}

/// Commit-time validation cost (the dry-run push-all) vs transaction size.
void BM_OptimisticValidation(benchmark::State &State) {
  unsigned Ops = static_cast<unsigned>(State.range(0));
  RegisterSpec Spec("mem", 8, 2);
  MoverChecker Movers(Spec);
  for (auto _ : State) {
    State.PauseTiming();
    PushPullMachine M(Spec, Movers);
    std::vector<CodePtr> Body;
    for (unsigned I = 0; I < Ops; ++I)
      Body.push_back(call("mem", "write", {Value(I % 8), Value(1)}));
    TxId T = M.addThread({tx(seqAll(Body))});
    M.beginTx(T);
    for (unsigned I = 0; I < Ops; ++I)
      M.app(T, 0, 0);
    State.ResumeTiming();
    PushPullMachine Probe = M;
    for (size_t I : M.thread(T).L.indicesOf(LocalKind::NotPushed))
      Probe.push(T, I);
    benchmark::DoNotOptimize(Probe.global().size());
  }
}
BENCHMARK(BM_OptimisticValidation)->Arg(2)->Arg(4)->Arg(8);

/// Full engine throughput at two contention levels.
void BM_OptimisticEngineRun(benchmark::State &State) {
  unsigned Regs = static_cast<unsigned>(State.range(0));
  RegisterSpec Spec("mem", Regs, 2);
  uint64_t Commits = 0;
  for (auto _ : State) {
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 4;
    WC.TxPerThread = 2;
    WC.OpsPerTx = 2;
    WC.KeyRange = Regs;
    WC.Seed = 11;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    OptimisticTM E(M);
    Scheduler Sched({SchedulePolicy::RandomUniform, 11, 500000});
    Commits += Sched.run(E).Commits;
  }
  State.counters["commits"] = benchmark::Counter(
      static_cast<double>(Commits), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OptimisticEngineRun)->Arg(2)->Arg(8);

} // namespace

int main(int argc, char **argv) {
  qualitative();
  std::printf("\n-- microbenchmarks --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
