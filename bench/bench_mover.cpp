//===- bench/bench_mover.cpp - E8: Definitions 3.1 / 4.1 costs -----------------===//
//
// Experiment E8: the machinery everything else stands on.  Measures the
// executable coinduction: precongruence pair-graph sizes vs state-space
// size, the algebraic-hint vs semantic-decision ablation (the cost the
// abstract-lock/commutativity reasoning of boosting saves), and the
// composite-spec growth the Section 7 mixture pays.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/Machine.h"
#include "core/Mover.h"
#include "core/Precongruence.h"
#include "spec/CompositeSpec.h"
#include "spec/CounterSpec.h"
#include "spec/MapSpec.h"
#include "spec/RegisterSpec.h"
#include "spec/SetSpec.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace pushpull;
using namespace pushpull::benchutil;

namespace {

Operation mk(const std::string &Obj, const std::string &Mth,
             std::vector<Value> Args, std::optional<Value> R) {
  Operation O;
  O.Call = {Obj, Mth, std::move(Args)};
  O.Result = R;
  O.Id = 1;
  return O;
}

void qualitative() {
  banner("E8 (Definitions 3.1/4.1)", "cost of the executable coinduction");

  section("reachable denotations & probe alphabet vs spec size");
  std::printf("%24s %12s %14s %10s\n", "spec", "probe-ops",
              "reachable-sets", "exact?");
  std::vector<std::shared_ptr<SequentialSpec>> Specs;
  Specs.push_back(std::make_shared<RegisterSpec>("mem", 1, 2));
  Specs.push_back(std::make_shared<RegisterSpec>("mem", 2, 3));
  Specs.push_back(std::make_shared<SetSpec>("set", 4));
  Specs.push_back(std::make_shared<SetSpec>("set", 8));
  Specs.push_back(std::make_shared<MapSpec>("map", 3, 3));
  Specs.push_back(std::make_shared<CounterSpec>("c", 2, 4));
  {
    auto Comp = std::make_shared<CompositeSpec>();
    Comp->add("s", std::make_shared<SetSpec>("s", 2));
    Comp->add("c", std::make_shared<CounterSpec>("c", 1, 4));
    Specs.push_back(Comp);
  }
  for (const auto &S : Specs) {
    MoverChecker Movers(*S);
    std::printf("%24s %12zu %14zu %10s\n", S->name().c_str(),
                S->probeOps().size(), Movers.reachableCount(),
                yesNo(Movers.reachableExact()));
  }
  std::printf("shape: composite state spaces multiply — the cost the\n"
              "paper's uniform treatment of mixed systems pays.\n");

  section("hint vs semantic decision (same-key map puts)");
  {
    MapSpec Spec("map", 4, 3);
    Operation A = mk("map", "put", {0, 1}, MapSpec::Absent);
    Operation B = mk("map", "put", {0, 2}, 1);
    MoverChecker WithHints(Spec);
    Tri H = WithHints.leftMover(A, B);
    Tri Sem = WithHints.leftMoverSemantic(A, B);
    std::printf("leftMover(put0a, put0b): hint=%s semantic=%s agree=%s\n",
                toString(H).c_str(), toString(Sem).c_str(),
                yesNo(H == Sem));
    std::printf("semantic path explored %zu reachable sets and %llu "
                "precongruence pairs\n",
                WithHints.reachableCount(),
                (unsigned long long)WithHints.precongruence().pairsVisited());
  }

  section("precongruence pair-graph effort vs register-bank size");
  std::printf("%10s %10s %16s\n", "regs", "vals", "pairs-visited");
  for (auto [R, V] : {std::pair<unsigned, unsigned>{1, 2}, {2, 2}, {2, 3}}) {
    RegisterSpec Spec("mem", R, V);
    PrecongruenceChecker Pre(Spec);
    // A genuinely-distinct pair: write(0,1) vs empty.
    Operation W = mk("mem", "write", {0, 1}, 1);
    Pre.checkLogs({W}, {});
    std::printf("%10u %10u %16llu\n", R, V,
                (unsigned long long)Pre.pairsVisited());
  }
}

void BM_LeftMoverHinted(benchmark::State &State) {
  MapSpec Spec("map", 64, 4);
  MoverChecker Movers(Spec);
  Operation A = mk("map", "put", {1, 1}, MapSpec::Absent);
  Operation B = mk("map", "put", {2, 1}, MapSpec::Absent);
  for (auto _ : State)
    benchmark::DoNotOptimize(Movers.leftMover(A, B));
}
BENCHMARK(BM_LeftMoverHinted);

void BM_LeftMoverSemanticMemoized(benchmark::State &State) {
  MapSpec Spec("map", 2, 2);
  MoverChecker Movers(Spec);
  Operation A = mk("map", "put", {0, 1}, MapSpec::Absent);
  Operation B = mk("map", "put", {1, 1}, MapSpec::Absent);
  Movers.leftMoverSemantic(A, B); // Warm the memo.
  for (auto _ : State)
    benchmark::DoNotOptimize(Movers.leftMoverSemantic(A, B));
}
BENCHMARK(BM_LeftMoverSemanticMemoized);

void BM_LeftMoverSemanticCold(benchmark::State &State) {
  MapSpec Spec("map", 2, 2);
  Operation A = mk("map", "put", {0, 1}, MapSpec::Absent);
  Operation B = mk("map", "put", {1, 1}, MapSpec::Absent);
  for (auto _ : State) {
    MoverChecker Movers(Spec); // Fresh caches each time.
    benchmark::DoNotOptimize(Movers.leftMoverSemantic(A, B));
  }
}
BENCHMARK(BM_LeftMoverSemanticCold);

void BM_PrecongruenceDiagonal(benchmark::State &State) {
  // The subset shortcut: equal denotations answer without exploration.
  SetSpec Spec("set", 16);
  PrecongruenceChecker Pre(Spec);
  Operation A = mk("set", "add", {3}, 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(Pre.checkLogs({A}, {A}));
}
BENCHMARK(BM_PrecongruenceDiagonal);

void BM_PrecongruenceRefutation(benchmark::State &State) {
  RegisterSpec Spec("mem", 2, 3);
  Operation W = mk("mem", "write", {0, 1}, 1);
  for (auto _ : State) {
    PrecongruenceChecker Pre(Spec); // Cold: measure the search.
    benchmark::DoNotOptimize(Pre.checkLogs({W}, {}));
  }
}
BENCHMARK(BM_PrecongruenceRefutation);

void BM_AllowedDenotation(benchmark::State &State) {
  size_t Len = static_cast<size_t>(State.range(0));
  SetSpec Spec("set", 8);
  std::vector<Operation> Log;
  for (size_t I = 0; I < Len; ++I) {
    // Adds cycling over the 8 keys: the first round inserts (result 1),
    // later rounds find the key present (result 0) — a long allowed log.
    Operation Op = mk("set", "add", {Value(I % 8)}, I < 8 ? 1 : 0);
    Op.Id = I + 1;
    Log.push_back(Op);
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(Spec.allowed(Log));
}
BENCHMARK(BM_AllowedDenotation)->Arg(8)->Arg(64)->Arg(512);


/// Ablation: the per-operation cost of criteria validation.  The same
/// boosted APP+PUSH sequence runs on a Trusting machine (structural
/// checks only) and a Criteria machine (full Figure 5 side-conditions).
void BM_ValidationOverhead(benchmark::State &State) {
  bool Validate = State.range(0) != 0;
  MapSpec Spec("map", 16, 4);
  MoverChecker Movers(Spec);
  MachineConfig MC;
  MC.Level = Validate ? ValidationLevel::Criteria : ValidationLevel::Trusting;
  for (auto _ : State) {
    PushPullMachine M(Spec, Movers, MC);
    TxId T = M.addThread({tx(seqAll({
        call("map", "put", {Value(0), Value(1)}, "a"),
        call("map", "put", {Value(1), Value(2)}, "b"),
        call("map", "get", {Value(0)}, "c"),
    }))});
    M.beginTx(T);
    for (int I = 0; I < 3; ++I) {
      M.app(T, 0, 0);
      M.push(T, M.thread(T).L.size() - 1);
    }
    M.commit(T);
  }
  State.SetLabel(Validate ? "criteria" : "trusting");
}
BENCHMARK(BM_ValidationOverhead)->Arg(0)->Arg(1);

} // namespace

int main(int argc, char **argv) {
  qualitative();
  std::printf("\n-- microbenchmarks --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
