//===- bench/bench_mixed.cpp - E6: Section 6.4 ---------------------------------===//
//
// Experiment E6: the mixed model of Welc et al. — one irrevocable
// (pessimistic, eager-push) transaction among optimistic peers.  The
// asymmetry to regenerate: the irrevocable thread never rolls back (zero
// UNAPP/UNPUSH/UNPULL), while the optimistic peers absorb all the aborts,
// more of them the more peers contend.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "sim/Workload.h"
#include "spec/RegisterSpec.h"
#include "tm/IrrevocableTM.h"
#include "tm/OptimisticTM.h"

#include <benchmark/benchmark.h>

using namespace pushpull;
using namespace pushpull::benchutil;

namespace {

void qualitative() {
  banner("E6 (Section 6.4)", "irrevocable + optimistic mix");

  section("peer sweep: who aborts?");
  std::printf("%8s %8s %12s %18s %14s\n", "peers", "commits", "peer-aborts",
              "irrevocable-rollbk", "blocked");
  for (unsigned Peers : {1u, 2u, 4u, 7u}) {
    RegisterSpec Spec("mem", 2, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = Peers + 1;
    WC.TxPerThread = 3;
    WC.OpsPerTx = 2;
    WC.KeyRange = 2;
    WC.ReadPct = 40;
    WC.Seed = 700 + Peers;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    IrrevocableTM E(M);
    RunStats St = runCertified(E, Spec, WC.Seed);
    std::printf("%8u %8llu %12llu %18llu %14llu\n", Peers,
                (unsigned long long)St.Commits,
                (unsigned long long)St.Aborts,
                (unsigned long long)E.irrevocableRollbacks(),
                (unsigned long long)St.BlockedSteps);
  }
  std::printf("shape: the irrevocable column stays 0 at every scale; the\n"
              "peers pay with aborts that grow with contention.\n");

  section("comparison: all-optimistic on the same workload");
  std::printf("%28s %8s %8s\n", "engine", "commits", "aborts");
  for (int Which = 0; Which < 2; ++Which) {
    RegisterSpec Spec("mem", 2, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 4;
    WC.TxPerThread = 3;
    WC.OpsPerTx = 2;
    WC.KeyRange = 2;
    WC.ReadPct = 40;
    WC.Seed = 800;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    RunStats St;
    std::string Name;
    if (Which == 0) {
      IrrevocableTM E(M);
      Name = E.name();
      St = runCertified(E, Spec, 800);
    } else {
      OptimisticTM E(M);
      Name = E.name();
      St = runCertified(E, Spec, 800);
    }
    std::printf("%28s %8llu %8llu\n", Name.c_str(),
                (unsigned long long)St.Commits,
                (unsigned long long)St.Aborts);
  }
}

void BM_MixedEngineRun(benchmark::State &State) {
  unsigned Peers = static_cast<unsigned>(State.range(0));
  RegisterSpec Spec("mem", 2, 2);
  uint64_t Commits = 0;
  for (auto _ : State) {
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = Peers + 1;
    WC.TxPerThread = 2;
    WC.OpsPerTx = 2;
    WC.KeyRange = 2;
    WC.Seed = 13;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    IrrevocableTM E(M);
    Scheduler Sched({SchedulePolicy::RandomUniform, 13, 500000});
    Commits += Sched.run(E).Commits;
  }
  State.counters["commits"] = benchmark::Counter(
      static_cast<double>(Commits), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MixedEngineRun)->Arg(1)->Arg(4);

} // namespace

int main(int argc, char **argv) {
  qualitative();
  std::printf("\n-- microbenchmarks --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
