//===- bench/bench_opacity.cpp - E3: Section 6.1 opacity ----------------------===//
//
// Experiment E3: opacity as a fragment of PUSH/PULL.  Regenerates the
// Section 6.1 claims: opaque STM runs never PULL uncommitted effects
// (fragment membership by construction); dependent-transaction runs
// leave the fragment; and the commutation-based relaxation classifies
// uncommitted pulls by the puller's reachable operations.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "check/Opacity.h"
#include "lang/Parser.h"
#include "sim/Workload.h"
#include "spec/CounterSpec.h"
#include "spec/RegisterSpec.h"
#include "tm/DependentTM.h"
#include "tm/OptimisticTM.h"

#include <benchmark/benchmark.h>

using namespace pushpull;
using namespace pushpull::benchutil;

namespace {

void qualitative() {
  banner("E3 (Section 6.1)", "opacity as a PUSH/PULL fragment");

  section("fragment membership by engine (register workloads, 3 threads)");
  std::printf("%28s %8s %14s %18s %10s\n", "engine", "commits", "total pulls",
              "uncommitted pulls", "opaque?");
  for (int Which = 0; Which < 2; ++Which) {
    RegisterSpec Spec("mem", 3, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 3;
    WC.TxPerThread = 3;
    WC.OpsPerTx = 2;
    WC.KeyRange = 3;
    WC.ReadPct = 60;
    WC.Seed = 77;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    RunStats St;
    std::string Name;
    if (Which == 0) {
      OptimisticTM E(M);
      Name = E.name();
      St = runCertified(E, Spec, 77);
    } else {
      DependentConfig DC;
      DC.PullUncommitted = true;
      DependentTM E(M, DC);
      Name = E.name();
      Scheduler Sched({SchedulePolicy::RoundRobin, 77, 200000});
      St = Sched.run(E);
    }
    OpacityReport R = classifyTrace(M.trace());
    std::printf("%28s %8llu %14zu %18zu %10s\n", Name.c_str(),
                (unsigned long long)St.Commits, R.TotalPulls,
                R.UncommittedPulls, yesNo(R.InOpaqueFragment));
  }
  std::printf("shape: the opaque STM never pulls uncommitted effects; the\n"
              "dependent engine does and leaves the fragment.\n");

  section("commutation relaxation (pull an uncommitted counter inc?)");
  std::printf("%44s %10s\n", "puller's remaining code", "verdict");
  struct Case {
    const char *Code;
  } Cases[] = {
      {"tx { c.inc(0) }"},
      {"tx { c.inc(0); c.dec(0) }"},
      {"tx { v := c.read(0) }"},
      {"tx { c.inc(0); v := c.read(0) }"},
      {"tx { c.inc(1) }"},
  };
  for (const Case &C : Cases) {
    CounterSpec Spec("c", 2, 4);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    TxId T0 = M.addThread({parseOrDie("tx { c.inc(0) }")});
    TxId T1 = M.addThread({parseOrDie(C.Code)});
    M.beginTx(T0);
    M.beginTx(T1);
    M.app(T0, 0, 0);
    M.push(T0, 0);
    Tri V = pullCommutationSafe(M, T1, M.global()[0].Op);
    std::printf("%44s %10s\n", C.Code, toString(V).c_str());
  }
  std::printf("shape: futures made only of commuting updates may pull the\n"
              "uncommitted inc and stay observationally opaque; futures that\n"
              "observe the counter may not.\n");
}

void BM_ClassifyTrace(benchmark::State &State) {
  RegisterSpec Spec("mem", 3, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  WorkloadConfig WC;
  WC.Threads = 4;
  WC.TxPerThread = 4;
  WC.OpsPerTx = 3;
  WC.Seed = 5;
  for (auto &P : genRegisterWorkload(Spec, WC))
    M.addThread(P);
  OptimisticTM E(M);
  Scheduler Sched({SchedulePolicy::RandomUniform, 5, 200000});
  Sched.run(E);
  for (auto _ : State) {
    OpacityReport R = classifyTrace(M.trace());
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_ClassifyTrace);

void BM_PullCommutationSafe(benchmark::State &State) {
  CounterSpec Spec("c", 2, 4);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  TxId T0 = M.addThread({parseOrDie("tx { c.inc(0) }")});
  TxId T1 = M.addThread({parseOrDie("tx { c.inc(0); c.dec(0); c.inc(1) }")});
  M.beginTx(T0);
  M.beginTx(T1);
  M.app(T0, 0, 0);
  M.push(T0, 0);
  for (auto _ : State) {
    Tri V = pullCommutationSafe(M, T1, M.global()[0].Op);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_PullCommutationSafe);

} // namespace

int main(int argc, char **argv) {
  qualitative();
  std::printf("\n-- microbenchmarks --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
