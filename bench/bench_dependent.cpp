//===- bench/bench_dependent.cpp - E7: Section 6.5 -----------------------------===//
//
// Experiment E7: reading uncommitted effects.  Two mechanisms:
//
//   * Dependent transactions (Ramadan et al.): chains of writers/readers
//     where each reader pulls the previous writer's uncommitted effect;
//     commits gate on dependencies (CMT criterion (iii) + criterion-(ii)
//     publication gating); injected aborts cascade but detangle only as
//     far as the dead pull.
//   * Early release (Herlihy et al. DSTM): pull-probe conflict detection —
//     aborts fire at APP time, wasting less work than commit-time
//     validation (compared against OptimisticTM on the same workload).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "check/Opacity.h"
#include "lang/Parser.h"
#include "sim/Workload.h"
#include "spec/RegisterSpec.h"
#include "tm/DependentTM.h"
#include "tm/EarlyReleaseTM.h"
#include "tm/OptimisticTM.h"

#include <benchmark/benchmark.h>

using namespace pushpull;
using namespace pushpull::benchutil;

namespace {

void dependencyChains() {
  section("dependency chains: writer -> reader pairs over shared words");
  std::printf("%8s %12s %8s %8s %12s %14s %14s\n", "abort%", "chainlen",
              "commits", "aborts", "cascades", "gated-cmts",
              "gated-pushes");
  for (unsigned AbortPct : {0u, 20u, 50u}) {
    for (unsigned Chain : {2u, 4u, 6u}) {
      RegisterSpec Spec("mem", Chain, 2);
      MoverChecker Movers(Spec);
      PushPullMachine M(Spec, Movers);
      // Thread i writes word i and reads word i-1: a dependency chain
      // when interleaved.
      for (unsigned I = 0; I < Chain; ++I) {
        std::string W = std::to_string(I);
        std::string R = std::to_string((I + Chain - 1) % Chain);
        M.addThread({parseOrDie("tx { mem.write(" + W + ", 1); v := mem.read(" +
                                R + ") }")});
      }
      DependentConfig DC;
      DC.PullUncommitted = true;
      DC.AbortChancePct = AbortPct;
      DC.Seed = 900 + AbortPct + Chain;
      DependentTM E(M, DC);
      Scheduler Sched(
          {SchedulePolicy::RandomUniform, DC.Seed, 300000});
      RunStats St = Sched.run(E);
      if (!St.Quiescent)
        std::printf("!! not quiescent\n");
      SerializabilityChecker Oracle(Spec);
      SerializabilityVerdict V = Oracle.checkAnyOrder(M);
      if (V.Serializable != Tri::Yes)
        std::printf("!! serializability: %s\n",
                    toString(V.Serializable).c_str());
      std::printf("%8u %12u %8llu %8llu %12llu %14llu %14llu\n", AbortPct,
                  Chain, (unsigned long long)St.Commits,
                  (unsigned long long)St.Aborts,
                  (unsigned long long)E.cascadeAborts(),
                  (unsigned long long)E.gatedCommits(),
                  (unsigned long long)E.gatedPublications());
    }
  }
  std::printf("shape: the chains here are *cyclic* (thread i reads thread\n"
              "i-1's word), so commit gating can deadlock into a dependency\n"
              "cycle that the engine breaks by self-abort — cascades appear\n"
              "both from injected aborts and from cycle breaking, and grow\n"
              "with chain length; every run stays serializable.\n");
}

void earlyVsLate() {
  section("early release vs commit-time validation: wasted work per abort");
  std::printf("%28s %8s %8s %22s\n", "engine", "commits", "aborts",
              "avg ops discarded/abort");
  for (int Which = 0; Which < 2; ++Which) {
    RegisterSpec Spec("mem", 2, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 4;
    WC.TxPerThread = 4;
    WC.OpsPerTx = 4;
    WC.KeyRange = 2;
    WC.ReadPct = 40;
    WC.Seed = 1000;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    RunStats St;
    std::string Name;
    double AvgDiscarded = 0;
    if (Which == 0) {
      EarlyReleaseTM E(M);
      Name = E.name();
      St = runCertified(E, Spec, 1000);
      if (St.Aborts)
        AvgDiscarded = double(E.opsDiscarded()) / double(St.Aborts);
    } else {
      OptimisticTM E(M);
      Name = E.name();
      St = runCertified(E, Spec, 1000);
      // For the optimistic engine the discarded work per abort is the
      // whole transaction's APPs: recover it from the UNAPP count.
      if (St.Aborts)
        AvgDiscarded =
            double(St.ruleCount(RuleKind::UnApp)) / double(St.Aborts);
    }
    std::printf("%28s %8llu %8llu %22.2f\n", Name.c_str(),
                (unsigned long long)St.Commits,
                (unsigned long long)St.Aborts, AvgDiscarded);
  }
  std::printf("shape: early conflict detection discards fewer operations\n"
              "per abort than commit-time validation (it stops sooner).\n");
}

void BM_DependentChainRun(benchmark::State &State) {
  unsigned Chain = static_cast<unsigned>(State.range(0));
  RegisterSpec Spec("mem", Chain, 2);
  uint64_t Commits = 0;
  for (auto _ : State) {
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    for (unsigned I = 0; I < Chain; ++I) {
      std::string W = std::to_string(I);
      std::string R = std::to_string((I + Chain - 1) % Chain);
      M.addThread({parseOrDie("tx { mem.write(" + W + ", 1); v := mem.read(" +
                              R + ") }")});
    }
    DependentConfig DC;
    DC.PullUncommitted = true;
    DC.Seed = 17;
    DependentTM E(M, DC);
    Scheduler Sched({SchedulePolicy::RandomUniform, 17, 300000});
    Commits += Sched.run(E).Commits;
  }
  State.counters["commits"] = benchmark::Counter(
      static_cast<double>(Commits), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DependentChainRun)->Arg(2)->Arg(4);

} // namespace

int main(int argc, char **argv) {
  banner("E7 (Section 6.5)", "dependent transactions and early release");
  dependencyChains();
  earlyVsLate();
  std::printf("\n-- microbenchmarks --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
