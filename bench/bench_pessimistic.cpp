//===- bench/bench_pessimistic.cpp - E5: Section 6.3 ---------------------------===//
//
// Experiment E5: the two pessimistic models of Section 6.3 side by side.
//
//   * Matveev-Shavit delayed-write pessimism: writes buffered to an
//     uninterleaved commit-point push; readers publish eagerly and only
//     ever see committed state; NOBODY ABORTS — writers wait for
//     conflicting readers instead (PUSH criterion (ii) is the waiting
//     condition).
//   * Transactional boosting: eager push at every linearization point
//     under abstract locks; aborts only on deadlock.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "sim/Workload.h"
#include "spec/RegisterSpec.h"
#include "spec/SetSpec.h"
#include "lang/Parser.h"
#include "tm/BoostingTM.h"
#include "tm/OpenNestingTM.h"
#include "tm/PessimisticCommitTM.h"

#include <benchmark/benchmark.h>

using namespace pushpull;
using namespace pushpull::benchutil;

namespace {

void qualitative() {
  banner("E5 (Section 6.3)", "pessimistic models");

  section("Matveev-Shavit: abort-free under rising contention");
  std::printf("%8s %10s %8s %8s %8s %14s\n", "regs", "read%", "commits",
              "aborts", "blocked", "writer-waits");
  for (unsigned Regs : {1u, 2u, 4u}) {
    for (unsigned ReadPct : {30u, 70u}) {
      RegisterSpec Spec("mem", Regs, 2);
      MoverChecker Movers(Spec);
      PushPullMachine M(Spec, Movers);
      WorkloadConfig WC;
      WC.Threads = 4;
      WC.TxPerThread = 3;
      WC.OpsPerTx = 2;
      WC.KeyRange = Regs;
      WC.ReadPct = ReadPct;
      WC.Seed = 300 + Regs * 10 + ReadPct;
      for (auto &P : genRegisterWorkload(Spec, WC))
        M.addThread(P);
      PessimisticCommitTM E(M);
      RunStats St = runCertified(E, Spec, WC.Seed);
      std::printf("%8u %10u %8llu %8llu %8llu %14llu\n", Regs, ReadPct,
                  (unsigned long long)St.Commits,
                  (unsigned long long)St.Aborts,
                  (unsigned long long)St.BlockedSteps,
                  (unsigned long long)E.writerWaits());
    }
  }
  std::printf("shape: aborts stay 0 at every contention level; waiting\n"
              "(blocked steps, writer backoffs) absorbs the conflicts.\n");

  section("boosting vs Matveev-Shavit on the same register workload");
  std::printf("%28s %8s %8s %8s %12s\n", "engine", "commits", "aborts",
              "blocked", "ops/step");
  for (int Which = 0; Which < 2; ++Which) {
    RegisterSpec Spec("mem", 4, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 4;
    WC.TxPerThread = 3;
    WC.OpsPerTx = 2;
    WC.KeyRange = 4;
    WC.ReadPct = 50;
    WC.Seed = 555;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    RunStats St;
    std::string Name;
    if (Which == 0) {
      BoostingTM E(M);
      Name = E.name();
      St = runCertified(E, Spec, 555);
    } else {
      PessimisticCommitTM E(M);
      Name = E.name();
      St = runCertified(E, Spec, 555);
    }
    std::printf("%28s %8llu %8llu %8llu %12.3f\n", Name.c_str(),
                (unsigned long long)St.Commits,
                (unsigned long long)St.Aborts,
                (unsigned long long)St.BlockedSteps,
                St.committedOpsPerStep());
  }

  section("boosting's sweet spot: commutative set workload, disjoint-ish keys");
  std::printf("%8s %8s %8s %8s\n", "keys", "commits", "aborts", "blocked");
  for (unsigned Keys : {2u, 8u, 32u}) {
    SetSpec Spec("set", Keys);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 4;
    WC.TxPerThread = 3;
    WC.OpsPerTx = 2;
    WC.KeyRange = Keys;
    WC.Seed = 600 + Keys;
    for (auto &P : genSetWorkload(Spec, WC))
      M.addThread(P);
    BoostingTM E(M);
    RunStats St = runCertified(E, Spec, WC.Seed);
    std::printf("%8u %8llu %8llu %8llu\n", Keys,
                (unsigned long long)St.Commits,
                (unsigned long long)St.Aborts,
                (unsigned long long)St.BlockedSteps);
  }
  std::printf("shape: more keys = fewer abstract-lock collisions = less\n"
              "blocking; aborts stay (near) zero throughout.\n");

  section("open nesting: outer aborts compensate, never UNPUSH");
  std::printf("%12s %14s %14s %16s %8s\n", "outer-abort%", "outer-commits",
              "outer-aborts", "compensations", "unpush");
  for (unsigned Pct : {0u, 50u, 100u}) {
    SetSpec Spec("s", 8);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    std::vector<std::vector<OuterTx>> Outer;
    for (unsigned T = 0; T < 3; ++T) {
      std::string A = std::to_string(2 * T), B = std::to_string(2 * T + 1);
      Outer.push_back({OuterTx{{parseOrDie("tx { a := s.add(" + A + ") }"),
                                parseOrDie("tx { b := s.add(" + B + ") }")}}});
    }
    OpenNestingConfig OC;
    OC.OuterAbortPct = Pct;
    OC.Seed = 40 + Pct;
    OpenNestingTM E(M, std::move(Outer), OC);
    RunStats St = runCertified(E, Spec, 40 + Pct);
    std::printf("%12u %14llu %14llu %16llu %8llu\n", Pct,
                (unsigned long long)E.outerCommits(),
                (unsigned long long)E.outerAborts(),
                (unsigned long long)E.compensationsRun(),
                (unsigned long long)St.ruleCount(RuleKind::UnPush));
  }
  std::printf("shape: compensations (fresh inverse transactions) scale with\n"
              "outer aborts while UNPUSH stays 0 — committed open segments\n"
              "are never retracted, only compensated.\n");
}

void BM_PessimisticCommitPhase(benchmark::State &State) {
  unsigned Writes = static_cast<unsigned>(State.range(0));
  RegisterSpec Spec("mem", 8, 2);
  MoverChecker Movers(Spec);
  for (auto _ : State) {
    State.PauseTiming();
    PushPullMachine M(Spec, Movers);
    std::vector<CodePtr> Body;
    for (unsigned I = 0; I < Writes; ++I)
      Body.push_back(call("mem", "write", {Value(I % 8), Value(1)}));
    TxId T = M.addThread({tx(seqAll(Body))});
    M.beginTx(T);
    for (unsigned I = 0; I < Writes; ++I)
      M.app(T, 0, 0);
    State.ResumeTiming();
    for (size_t I : M.thread(T).L.indicesOf(LocalKind::NotPushed))
      M.push(T, I);
    M.commit(T);
  }
}
BENCHMARK(BM_PessimisticCommitPhase)->Arg(2)->Arg(4)->Arg(8);

} // namespace

int main(int argc, char **argv) {
  qualitative();
  std::printf("\n-- microbenchmarks --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
