//===- bench/bench_explorer.cpp - E9: Theorem 5.17, exhaustively ---------------===//
//
// Experiment E9: the executable content of the serializability theorem.
// The explorer enumerates EVERY interleaving of rule applications for
// small programs — including the backward rules and the non-opaque
// uncommitted pulls — and the independent oracle certifies every
// quiescent configuration serializable.  The table reports state-space
// sizes and the (required-zero) violation counts.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/MoverTable.h"
#include "lang/Parser.h"
#include "sim/Explorer.h"
#include "spec/CounterSpec.h"
#include "spec/MapSpec.h"
#include "spec/QueueSpec.h"
#include "spec/RegisterSpec.h"
#include "spec/SetSpec.h"

#include <benchmark/benchmark.h>

using namespace pushpull;
using namespace pushpull::benchutil;

namespace {

struct Scenario {
  const char *Name;
  std::function<ExplorerReport()> Run;
};

void qualitative() {
  banner("E9 (Theorem 5.17)", "exhaustive interleaving exploration");

  std::printf("%34s %10s %10s %10s %8s %8s\n", "scenario", "configs",
              "terminals", "rejected", "non-ser", "inv-viol");

  auto Row = [](const char *Name, const ExplorerReport &R) {
    std::printf("%34s %10llu %10llu %10llu %8llu %8llu%s\n", Name,
                (unsigned long long)R.ConfigsVisited,
                (unsigned long long)R.TerminalConfigs,
                (unsigned long long)R.RejectedAttempts,
                (unsigned long long)R.NonSerializable,
                (unsigned long long)R.InvariantViolations,
                R.Truncated ? " (truncated)" : "");
    if (!R.clean())
      std::printf("!! FIRST FAILURE: %s\n", R.FirstFailure.c_str());
  };

  {
    RegisterSpec Spec("mem", 1, 2);
    MoverChecker Movers(Spec);
    Explorer E(Spec, Movers);
    Row("reg: r/w vs w", E.explore({{parseOrDie(
                             "tx { v := mem.read(0); mem.write(0, 1) }")},
                                    {parseOrDie("tx { mem.write(0, 0) }")}}));
  }
  {
    RegisterSpec Spec("mem", 1, 2);
    MoverChecker Movers(Spec);
    ExplorerConfig EC;
    EC.ExploreBackwardRules = true;
    EC.MaxConfigs = 400000;
    Explorer E(Spec, Movers, EC);
    Row("reg: w vs r + backward rules",
        E.explore({{parseOrDie("tx { mem.write(0, 1) }")},
                   {parseOrDie("tx { v := mem.read(0) }")}}));
  }
  {
    SetSpec Spec("set", 2);
    MoverChecker Movers(Spec);
    ExplorerConfig EC;
    EC.CheckInvariants = true;
    Explorer E(Spec, Movers, EC);
    Row("set: adds + invariant checks",
        E.explore({{parseOrDie("tx { a := set.add(0) }")},
                   {parseOrDie("tx { b := set.add(0); c := set.remove(1) }")}}));
  }
  {
    CounterSpec Spec("c", 1, 3);
    MoverChecker Movers(Spec);
    Explorer E(Spec, Movers);
    Row("counter: incs (non-opaque pulls)",
        E.explore({{parseOrDie("tx { c.inc(0) }")},
                   {parseOrDie("tx { c.inc(0) }")},
                   {parseOrDie("tx { v := c.read(0) }")}}));
  }
  {
    QueueSpec Spec("q", 2, 2);
    MoverChecker Movers(Spec);
    Explorer E(Spec, Movers);
    Row("queue: enq vs enq vs deq",
        E.explore({{parseOrDie("tx { a := q.enq(0) }")},
                   {parseOrDie("tx { b := q.enq(1) }")},
                   {parseOrDie("tx { c := q.deq() }")}}));
  }
  {
    RegisterSpec Spec("mem", 2, 2);
    MoverChecker Movers(Spec);
    ExplorerConfig EC;
    EC.MaxConfigs = 600000;
    Explorer E(Spec, Movers, EC);
    Row("reg: 3-thread nondet branches",
        E.explore(
            {{parseOrDie("tx { mem.write(0, 1) + mem.write(1, 1) }")},
             {parseOrDie("tx { v := mem.read(0) }")},
             {parseOrDie("tx { w := mem.read(1) }")}}));
  }

  std::printf("\nshape: the non-ser and inv-viol columns are identically 0 —\n"
              "every explored schedule of every scenario is serializable,\n"
              "Theorem 5.17's executable content.\n");
}

void reductionQualitative() {
  banner("E12 (partial-order reduction)",
         "reduced exploration vs full enumeration");

  std::printf("%30s %22s %10s %10s %8s %8s %7s\n", "scenario", "reduction",
              "configs", "terminals", "pruned", "non-ser", "ratio");

  auto Row = [](const char *Name, Reduction Mode, const ExplorerReport &R) {
    std::printf("%30s %22s %10llu %10llu %8llu %8llu %6.1f%%%s\n", Name,
                toString(Mode).c_str(), (unsigned long long)R.ConfigsVisited,
                (unsigned long long)R.TerminalConfigs,
                (unsigned long long)R.FiringsPruned,
                (unsigned long long)R.NonSerializable,
                100.0 * R.reductionRatio(), R.Truncated ? " (truncated)" : "");
    if (!R.clean())
      std::printf("!! FIRST FAILURE: %s\n", R.FirstFailure.c_str());
  };

  constexpr Reduction Modes[] = {Reduction::None, Reduction::Sleep,
                                 Reduction::Persistent,
                                 Reduction::PersistentSymmetry};

  // Two identical threads, two incs each: sleep sets preserve the state
  // count exactly; the symmetry quotient halves it.
  for (Reduction Mode : Modes) {
    CounterSpec Spec("c", 1, 3);
    MoverChecker Movers(Spec);
    ExplorerConfig EC;
    EC.Reduce = Mode;
    Explorer E(Spec, Movers, EC);
    Row("counter: 2 identical x 2 incs", Mode,
        E.explore({{parseOrDie("tx { c.inc(0); c.inc(0) }")},
                   {parseOrDie("tx { c.inc(0); c.inc(0) }")}}));
  }
  std::printf("\n");

  // Three identical threads: the S3 quotient dominates —
  // persistent+symmetry visits ~16% of the full enumeration (the PR's
  // <= 40% acceptance bar), terminals 6 -> 1.
  for (Reduction Mode : Modes) {
    CounterSpec Spec("c", 1, 3);
    MoverChecker Movers(Spec);
    ExplorerConfig EC;
    EC.Reduce = Mode;
    Explorer E(Spec, Movers, EC);
    Row("counter: 3 identical x 1 inc", Mode,
        E.explore({{parseOrDie("tx { c.inc(0) }")},
                   {parseOrDie("tx { c.inc(0) }")},
                   {parseOrDie("tx { c.inc(0) }")}}));
  }
  std::printf("\n");

  // The feasibility frontier: full enumeration of this backward scope
  // DIVERGES (UNPUSH retracts entries other threads pulled; UNAPP/APP
  // recreates them under fresh ids, so local logs grow without bound) —
  // raising the depth bound only grows the truncated count.  Sleep sets
  // prune the divergent do/undo cycles and the same scope completes.
  for (Reduction Mode : Modes) {
    RegisterSpec Spec("mem", 1, 2);
    MoverChecker Movers(Spec);
    ExplorerConfig EC;
    EC.Reduce = Mode;
    EC.ExploreBackwardRules = true;
    EC.MaxDepth = 40;
    EC.MaxConfigs = 400000;
    Explorer E(Spec, Movers, EC);
    Row("reg: w vs r + backward", Mode,
        E.explore({{parseOrDie("tx { mem.write(0, 1) }")},
                   {parseOrDie("tx { v := mem.read(0) }")}}));
  }

  std::printf("\nshape: sleep preserves configs exactly and prunes firings;\n"
              "persistent+symmetry divides configs by ~|Sym(threads)|; the\n"
              "divergent backward scope completes only under reduction.\n");
}

// The distinct-keys map scope for E14: two threads, two puts each, every
// put on the thread's own key — every cross-thread pair strongly
// commutes, so the certified table lets the quotient merge the
// interleavings syntactic symmetry cannot see.
std::vector<std::vector<CodePtr>> commutScope() {
  return {{parseOrDie("tx { a := map.put(0, 0) }"),
           parseOrDie("tx { b := map.put(0, 1) }")},
          {parseOrDie("tx { c := map.put(1, 0) }"),
           parseOrDie("tx { d := map.put(1, 1) }")}};
}

void commutQualitative() {
  banner("E14 (certified commutativity POR)",
         "distinct-key map scope with and without the certified table");

  std::printf("%26s %22s %10s %10s %10s %10s\n", "table", "reduction",
              "configs", "terminals", "hits", "certs");

  constexpr Reduction Modes[] = {Reduction::Sleep,
                                 Reduction::PersistentSymmetry};
  for (bool UseDB : {false, true}) {
    for (Reduction Mode : Modes) {
      MapSpec Spec("map", 2, 2);
      MoverChecker Movers(Spec);
      CommutativityDB DB(Spec);
      ExplorerConfig EC;
      EC.Reduce = Mode;
      if (UseDB)
        EC.CommutDB = &DB;
      Explorer E(Spec, Movers, EC);
      ExplorerReport R = E.explore(commutScope());
      std::printf("%26s %22s %10llu %10llu %10llu %10llu%s\n",
                  UseDB ? "certified commut table" : "(none)",
                  toString(Mode).c_str(),
                  (unsigned long long)R.ConfigsVisited,
                  (unsigned long long)R.TerminalConfigs,
                  (unsigned long long)DB.tableHits(),
                  (unsigned long long)DB.certChecks(),
                  R.Truncated ? " (truncated)" : "");
      if (!R.clean())
        std::printf("!! FIRST FAILURE: %s\n", R.FirstFailure.c_str());
    }
  }

  std::printf("\nshape: the certified table answers strong-commutation\n"
              "queries the syntactic quotient cannot, so the DB rows visit\n"
              "strictly fewer configurations with identical terminal sets\n"
              "(up to the commutation quotient).\n");
}

void BM_ExploreReduced(benchmark::State &State) {
  Reduction Mode = static_cast<Reduction>(State.range(0));
  CounterSpec Spec("c", 1, 3);
  MoverChecker Movers(Spec);
  uint64_t Configs = 0, Pruned = 0;
  memstats::Snapshot MemBefore = memstats::read();
  for (auto _ : State) {
    ExplorerConfig EC;
    EC.Reduce = Mode;
    Explorer E(Spec, Movers, EC);
    ExplorerReport R = E.explore({{parseOrDie("tx { c.inc(0) }")},
                                  {parseOrDie("tx { c.inc(0) }")},
                                  {parseOrDie("tx { c.inc(0) }")}});
    Configs += R.ConfigsVisited;
    Pruned += R.FiringsPruned;
  }
  memstats::Snapshot Mem = memstats::read().delta(MemBefore);
  State.SetLabel(toString(Mode));
  State.counters["configs"] = benchmark::Counter(
      static_cast<double>(Configs), benchmark::Counter::kIsRate);
  State.counters["pruned"] = benchmark::Counter(
      static_cast<double>(Pruned), benchmark::Counter::kIsRate);
  // Per-config snapshot traffic: a regression here (more bytes or cloned
  // chunks per visited config) shows up even when wall-clock noise hides it.
  if (Configs) {
    State.counters["snapshotB/cfg"] = benchmark::Counter(
        static_cast<double>(Mem.SnapshotBytes) / static_cast<double>(Configs));
    State.counters["deepcopy/cfg"] = benchmark::Counter(
        static_cast<double>(Mem.DeepCopies) / static_cast<double>(Configs));
  }
}
BENCHMARK(BM_ExploreReduced)
    ->Arg(static_cast<int>(Reduction::None))
    ->Arg(static_cast<int>(Reduction::Sleep))
    ->Arg(static_cast<int>(Reduction::Persistent))
    ->Arg(static_cast<int>(Reduction::PersistentSymmetry));

// E14 microbenchmark: the distinct-keys map scope with (arg=1) and
// without (arg=0) the certified commutativity table.  The DB is built
// once outside the loop — certification is a one-time cost; the steady
// state the explorer sees is the memoized table.
void BM_ExploreCommutDB(benchmark::State &State) {
  bool UseDB = State.range(0) != 0;
  MapSpec Spec("map", 2, 2);
  MoverChecker Movers(Spec);
  CommutativityDB DB(Spec);
  uint64_t Configs = 0;
  uint64_t HitsBefore = DB.tableHits();
  for (auto _ : State) {
    ExplorerConfig EC;
    EC.Reduce = Reduction::PersistentSymmetry;
    if (UseDB)
      EC.CommutDB = &DB;
    Explorer E(Spec, Movers, EC);
    ExplorerReport R = E.explore(commutScope());
    Configs += R.ConfigsVisited;
  }
  State.SetLabel(UseDB ? "commut-db" : "no-db");
  State.counters["configs"] = benchmark::Counter(
      static_cast<double>(Configs), benchmark::Counter::kIsRate);
  State.counters["hits"] = benchmark::Counter(
      static_cast<double>(DB.tableHits() - HitsBefore),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExploreCommutDB)->Arg(0)->Arg(1);

void BM_ExploreTwoThreads(benchmark::State &State) {
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  uint64_t Configs = 0;
  for (auto _ : State) {
    Explorer E(Spec, Movers);
    ExplorerReport R =
        E.explore({{parseOrDie("tx { v := mem.read(0); mem.write(0, 1) }")},
                   {parseOrDie("tx { mem.write(0, 0) }")}});
    Configs += R.ConfigsVisited;
  }
  State.counters["configs"] = benchmark::Counter(
      static_cast<double>(Configs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExploreTwoThreads);

} // namespace

int main(int argc, char **argv) {
  qualitative();
  reductionQualitative();
  commutQualitative();
  std::printf("\n-- microbenchmarks --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
