//===- bench/bench_explorer.cpp - E9: Theorem 5.17, exhaustively ---------------===//
//
// Experiment E9: the executable content of the serializability theorem.
// The explorer enumerates EVERY interleaving of rule applications for
// small programs — including the backward rules and the non-opaque
// uncommitted pulls — and the independent oracle certifies every
// quiescent configuration serializable.  The table reports state-space
// sizes and the (required-zero) violation counts.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lang/Parser.h"
#include "sim/Explorer.h"
#include "spec/CounterSpec.h"
#include "spec/QueueSpec.h"
#include "spec/RegisterSpec.h"
#include "spec/SetSpec.h"

#include <benchmark/benchmark.h>

using namespace pushpull;
using namespace pushpull::benchutil;

namespace {

struct Scenario {
  const char *Name;
  std::function<ExplorerReport()> Run;
};

void qualitative() {
  banner("E9 (Theorem 5.17)", "exhaustive interleaving exploration");

  std::printf("%34s %10s %10s %10s %8s %8s\n", "scenario", "configs",
              "terminals", "rejected", "non-ser", "inv-viol");

  auto Row = [](const char *Name, const ExplorerReport &R) {
    std::printf("%34s %10llu %10llu %10llu %8llu %8llu%s\n", Name,
                (unsigned long long)R.ConfigsVisited,
                (unsigned long long)R.TerminalConfigs,
                (unsigned long long)R.RejectedAttempts,
                (unsigned long long)R.NonSerializable,
                (unsigned long long)R.InvariantViolations,
                R.Truncated ? " (truncated)" : "");
    if (!R.clean())
      std::printf("!! FIRST FAILURE: %s\n", R.FirstFailure.c_str());
  };

  {
    RegisterSpec Spec("mem", 1, 2);
    MoverChecker Movers(Spec);
    Explorer E(Spec, Movers);
    Row("reg: r/w vs w", E.explore({{parseOrDie(
                             "tx { v := mem.read(0); mem.write(0, 1) }")},
                                    {parseOrDie("tx { mem.write(0, 0) }")}}));
  }
  {
    RegisterSpec Spec("mem", 1, 2);
    MoverChecker Movers(Spec);
    ExplorerConfig EC;
    EC.ExploreBackwardRules = true;
    EC.MaxConfigs = 400000;
    Explorer E(Spec, Movers, EC);
    Row("reg: w vs r + backward rules",
        E.explore({{parseOrDie("tx { mem.write(0, 1) }")},
                   {parseOrDie("tx { v := mem.read(0) }")}}));
  }
  {
    SetSpec Spec("set", 2);
    MoverChecker Movers(Spec);
    ExplorerConfig EC;
    EC.CheckInvariants = true;
    Explorer E(Spec, Movers, EC);
    Row("set: adds + invariant checks",
        E.explore({{parseOrDie("tx { a := set.add(0) }")},
                   {parseOrDie("tx { b := set.add(0); c := set.remove(1) }")}}));
  }
  {
    CounterSpec Spec("c", 1, 3);
    MoverChecker Movers(Spec);
    Explorer E(Spec, Movers);
    Row("counter: incs (non-opaque pulls)",
        E.explore({{parseOrDie("tx { c.inc(0) }")},
                   {parseOrDie("tx { c.inc(0) }")},
                   {parseOrDie("tx { v := c.read(0) }")}}));
  }
  {
    QueueSpec Spec("q", 2, 2);
    MoverChecker Movers(Spec);
    Explorer E(Spec, Movers);
    Row("queue: enq vs enq vs deq",
        E.explore({{parseOrDie("tx { a := q.enq(0) }")},
                   {parseOrDie("tx { b := q.enq(1) }")},
                   {parseOrDie("tx { c := q.deq() }")}}));
  }
  {
    RegisterSpec Spec("mem", 2, 2);
    MoverChecker Movers(Spec);
    ExplorerConfig EC;
    EC.MaxConfigs = 600000;
    Explorer E(Spec, Movers, EC);
    Row("reg: 3-thread nondet branches",
        E.explore(
            {{parseOrDie("tx { mem.write(0, 1) + mem.write(1, 1) }")},
             {parseOrDie("tx { v := mem.read(0) }")},
             {parseOrDie("tx { w := mem.read(1) }")}}));
  }

  std::printf("\nshape: the non-ser and inv-viol columns are identically 0 —\n"
              "every explored schedule of every scenario is serializable,\n"
              "Theorem 5.17's executable content.\n");
}

void BM_ExploreTwoThreads(benchmark::State &State) {
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  uint64_t Configs = 0;
  for (auto _ : State) {
    Explorer E(Spec, Movers);
    ExplorerReport R =
        E.explore({{parseOrDie("tx { v := mem.read(0); mem.write(0, 1) }")},
                   {parseOrDie("tx { mem.write(0, 0) }")}});
    Configs += R.ConfigsVisited;
  }
  State.counters["configs"] = benchmark::Counter(
      static_cast<double>(Configs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExploreTwoThreads);

} // namespace

int main(int argc, char **argv) {
  qualitative();
  std::printf("\n-- microbenchmarks --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
