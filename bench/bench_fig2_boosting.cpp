//===- bench/bench_fig2_boosting.cpp - E1: Figure 2 ---------------------------===//
//
// Experiment E1 (Figure 2): the boosted hashtable.  Regenerates the
// figure's claims as a table — boosting runs conflict-free whenever keys
// are disjoint (the abstract-lock discipline discharges PUSH criterion
// (ii)); contention produces blocking, not aborts; the abort path uses
// inverse operations (UNPUSH) and restores the pre-state — plus
// microbenchmarks of the boosted APP+PUSH fast path.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lang/Parser.h"
#include "sim/Workload.h"
#include "spec/MapSpec.h"
#include "tm/BoostingTM.h"

#include <benchmark/benchmark.h>

using namespace pushpull;
using namespace pushpull::benchutil;

namespace {

void qualitativeTable() {
  banner("E1 (Figure 2)", "transactional boosting over a hashtable");
  section("threads x key-range sweep (put/get mix, uniform keys)");
  std::printf("%8s %6s %8s %8s %8s %8s %10s %12s\n", "threads", "keys",
              "commits", "aborts", "blocked", "unpush", "ops/step",
              "APP==PUSH?");
  for (unsigned Threads : {2u, 4u, 8u}) {
    for (unsigned Keys : {4u, 16u, 64u}) {
      MapSpec Spec("map", Keys, 4);
      MoverChecker Movers(Spec);
      PushPullMachine M(Spec, Movers);
      WorkloadConfig WC;
      WC.Threads = Threads;
      WC.TxPerThread = 4;
      WC.OpsPerTx = 3;
      WC.KeyRange = Keys;
      WC.ReadPct = 40;
      WC.Seed = 1000 + Threads * 10 + Keys;
      for (auto &P : genMapWorkload(Spec, WC))
        M.addThread(P);
      BoostingTM E(M);
      RunStats St = runCertified(E, Spec, WC.Seed);
      std::printf("%8u %6u %8llu %8llu %8llu %8llu %10.3f %12s\n", Threads,
                  Keys, (unsigned long long)St.Commits,
                  (unsigned long long)St.Aborts,
                  (unsigned long long)St.BlockedSteps,
                  (unsigned long long)St.ruleCount(RuleKind::UnPush),
                  St.committedOpsPerStep(),
                  yesNo(St.ruleCount(RuleKind::App) >=
                        St.ruleCount(RuleKind::Push)));
    }
  }

  section("disjoint keys: zero conflicts (abstract locks never contend)");
  {
    MapSpec Spec("map", 16, 4);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    // Thread t touches keys {4t .. 4t+3} only.
    for (unsigned T = 0; T < 4; ++T) {
      std::string K0 = std::to_string(4 * T), K1 = std::to_string(4 * T + 1);
      M.addThread({parseOrDie("tx { a := map.put(" + K0 + ", 1); b := map.get(" +
                              K1 + ") }"),
                   parseOrDie("tx { c := map.put(" + K1 + ", 2) }")});
    }
    BoostingTM E(M);
    RunStats St = runCertified(E, Spec, 7);
    std::printf("aborts=%llu blocked=%llu (expected: 0 and 0)\n",
                (unsigned long long)St.Aborts,
                (unsigned long long)St.BlockedSteps);
  }

  section("deadlock: lock-order inversion resolved by inverse-op abort");
  {
    MapSpec Spec("map", 4, 4);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    M.addThread({parseOrDie("tx { a := map.put(0, 1); b := map.put(1, 1) }")});
    M.addThread({parseOrDie("tx { c := map.put(1, 2); d := map.put(0, 2) }")});
    BoostingConfig BC;
    BC.DeadlockThreshold = 3;
    BoostingTM E(M, BC);
    Scheduler Sched({SchedulePolicy::RoundRobin, 1, 50000});
    RunStats St = Sched.run(E);
    SerializabilityChecker Oracle(Spec);
    std::printf("deadlock aborts=%llu unpush(inverse ops)=%llu "
                "serializable=%s\n",
                (unsigned long long)E.deadlockAborts(),
                (unsigned long long)St.ruleCount(RuleKind::UnPush),
                toString(Oracle.checkCommitOrder(M).Serializable).c_str());
  }
}

/// Cost of one boosted operation: APP + eager PUSH with all criteria
/// checked, as a function of key range (criterion cost is hint-driven and
/// should stay flat).
void BM_BoostedAppPush(benchmark::State &State) {
  unsigned Keys = static_cast<unsigned>(State.range(0));
  MapSpec Spec("map", Keys, 4);
  MoverChecker Movers(Spec);
  uint64_t Ops = 0;
  for (auto _ : State) {
    PushPullMachine M(Spec, Movers);
    TxId T = M.addThread({parseOrDie("tx { a := map.put(0, 1); "
                                     "b := map.put(1, 2); c := map.get(0) }")});
    M.beginTx(T);
    for (int I = 0; I < 3; ++I) {
      M.app(T, 0, 0);
      M.push(T, M.thread(T).L.size() - 1);
      ++Ops;
    }
    M.commit(T);
  }
  State.counters["ops"] =
      benchmark::Counter(static_cast<double>(Ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BoostedAppPush)->Arg(4)->Arg(64)->Arg(1024);

/// The abort path: APP+PUSH then UNPUSH+UNAPP (Figure 2's catch blocks).
void BM_BoostedAbortPath(benchmark::State &State) {
  MapSpec Spec("map", 16, 4);
  MoverChecker Movers(Spec);
  for (auto _ : State) {
    PushPullMachine M(Spec, Movers);
    TxId T = M.addThread({parseOrDie("tx { a := map.put(0, 1) }")});
    M.beginTx(T);
    M.app(T, 0, 0);
    M.push(T, 0);
    M.unpush(T, 0);
    M.unapp(T);
  }
}
BENCHMARK(BM_BoostedAbortPath);

/// Full engine run throughput.
void BM_BoostingEngineRun(benchmark::State &State) {
  unsigned Threads = static_cast<unsigned>(State.range(0));
  MapSpec Spec("map", 16, 4);
  uint64_t Commits = 0;
  for (auto _ : State) {
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = Threads;
    WC.TxPerThread = 2;
    WC.OpsPerTx = 3;
    WC.KeyRange = 16;
    WC.Seed = 3;
    for (auto &P : genMapWorkload(Spec, WC))
      M.addThread(P);
    BoostingTM E(M);
    Scheduler Sched({SchedulePolicy::RandomUniform, 3, 500000});
    Commits += Sched.run(E).Commits;
  }
  State.counters["commits"] = benchmark::Counter(
      static_cast<double>(Commits), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BoostingEngineRun)->Arg(2)->Arg(4)->Arg(8);

} // namespace

int main(int argc, char **argv) {
  qualitativeTable();
  std::printf("\n-- microbenchmarks --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
