//===- bench/BenchUtil.h - Shared experiment-table helpers ------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
// Each bench binary regenerates one experiment of EXPERIMENTS.md: it
// first prints the experiment's qualitative table (the paper's evaluation
// is qualitative: rule patterns, who aborts, what is preserved), then
// runs google-benchmark microbenchmarks for the quantitative costs.
//
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_BENCH_BENCHUTIL_H
#define PUSHPULL_BENCH_BENCHUTIL_H

#include "check/Serializability.h"
#include "sim/Scheduler.h"
#include "sim/Stats.h"
#include "tm/Engine.h"

#include <cstdio>
#include <string>

namespace pushpull {
namespace benchutil {

inline void banner(const char *Id, const char *Title) {
  std::printf("\n================================================================"
              "===============\n");
  std::printf("%s: %s\n", Id, Title);
  std::printf("=================================================================="
              "=============\n");
}

inline void section(const char *Text) { std::printf("\n-- %s --\n", Text); }

/// Run \p E to quiescence and certify serializability; prints a warning
/// line if either fails (benches report rather than abort).
inline RunStats runCertified(TMEngine &E, const SequentialSpec &Spec,
                             uint64_t Seed, uint64_t MaxSteps = 500000) {
  Scheduler Sched({SchedulePolicy::RandomUniform, Seed, MaxSteps});
  RunStats St = Sched.run(E);
  if (!St.Quiescent)
    std::printf("!! run did not reach quiescence within %llu steps\n",
                static_cast<unsigned long long>(MaxSteps));
  SerializabilityChecker Oracle(Spec);
  SerializabilityVerdict V = Oracle.checkCommitOrder(E.machine());
  if (V.Serializable != Tri::Yes)
    std::printf("!! serializability oracle: %s (%s)\n",
                toString(V.Serializable).c_str(), V.Detail.c_str());
  return St;
}

inline const char *yesNo(bool B) { return B ? "yes" : "no"; }

} // namespace benchutil
} // namespace pushpull

#endif // PUSHPULL_BENCH_BENCHUTIL_H
