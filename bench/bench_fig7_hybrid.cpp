//===- bench/bench_fig7_hybrid.cpp - E2: Figure 7 / Section 7 -----------------===//
//
// Experiment E2: the boosting/HTM interaction.  Replays the exact Figure 7
// rule sequence with every criterion validated and prints the resulting
// trace; sweeps the injected HTM-conflict probability and reports how many
// boosted operations survived each retraction (the replay work Section 7
// says the model lets an implementation save); microbenchmarks the
// retraction path.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lang/Parser.h"
#include "spec/CompositeSpec.h"
#include "spec/CounterSpec.h"
#include "spec/MapSpec.h"
#include "spec/SetSpec.h"
#include "tm/HybridHtmBoostingTM.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace pushpull;
using namespace pushpull::benchutil;

namespace {

std::shared_ptr<CompositeSpec> fig7Spec() {
  auto S = std::make_shared<CompositeSpec>();
  S->add("skiplist", std::make_shared<SetSpec>("skiplist", 4));
  S->add("hashT", std::make_shared<MapSpec>("hashT", 4, 4));
  S->add("size", std::make_shared<CounterSpec>("size", 1, 16));
  S->add("x", std::make_shared<CounterSpec>("x", 1, 16));
  S->add("y", std::make_shared<CounterSpec>("y", 1, 16));
  return S;
}

CodePtr fig7Tx() {
  return parseOrDie("tx { s := skiplist.add(1); size.inc(0); "
                    "h := hashT.put(1, 2); (x.inc(0) + y.inc(0)) }");
}

/// The exact Figure 7 sequence; returns false if any rule is rejected.
bool replayFigure7(PushPullMachine &M) {
  TxId T = M.addThread({fig7Tx()});
  bool Ok = M.beginTx(T);
  Ok = Ok && M.app(T, 0, 0).Applied;        // APP(skiplist.insert(foo))
  Ok = Ok && M.push(T, 0).Applied;          // PUSH(skiplist.insert(foo))
  Ok = Ok && M.app(T, 0, 0).Applied;        // APP(size++)
  Ok = Ok && M.app(T, 0, 0).Applied;        // APP(hashT.map(foo=>bar))
  Ok = Ok && M.push(T, 2).Applied;          // PUSH(hashT.map(foo=>bar))
  Ok = Ok && M.app(T, 0, 0).Applied;        // APP(x++)  (left branch)
  Ok = Ok && M.push(T, 1).Applied;          // Push HTM ops: PUSH(size++)
  Ok = Ok && M.push(T, 3).Applied;          //               PUSH(x++)
  Ok = Ok && M.unpush(T, 3).Applied;        // HTM abort: UNPUSH(x++)
  Ok = Ok && M.unpush(T, 1).Applied;        //            UNPUSH(size++)
  Ok = Ok && M.unapp(T).Applied;            // Rewind some code: UNAPP(x++)
  Ok = Ok && M.app(T, 1, 0).Applied;        // March forward: APP(y++)
  Ok = Ok && M.push(T, 1).Applied;          // Commit: PUSH(size++)
  Ok = Ok && M.push(T, 3).Applied;          //         PUSH(y++)
  Ok = Ok && M.commit(T).Applied;           //         CMT
  return Ok;
}

void qualitative() {
  banner("E2 (Figure 7 / Section 7)", "boosting/HTM interaction");

  section("the exact Figure 7 rule sequence, criteria-validated");
  {
    auto Spec = fig7Spec();
    MoverChecker Movers(*Spec);
    PushPullMachine M(*Spec, Movers);
    bool Ok = replayFigure7(M);
    std::printf("all 15 rule applications accepted: %s\n", yesNo(Ok));
    std::printf("%s", M.trace().toString().c_str());
    SerializabilityChecker Oracle(*Spec);
    std::printf("serializable: %s\n",
                toString(Oracle.checkCommitOrder(M).Serializable).c_str());
  }

  section("injected-conflict sweep (2 hybrid threads)");
  std::printf("%12s %8s %12s %18s %8s\n", "conflict%", "commits",
              "retractions", "boosted-preserved", "unpush");
  for (unsigned Pct : {0u, 25u, 50u, 100u}) {
    auto Spec = fig7Spec();
    MoverChecker Movers(*Spec);
    PushPullMachine M(*Spec, Movers);
    M.addThread({fig7Tx()});
    M.addThread({parseOrDie("tx { s := skiplist.add(2); size.inc(0); "
                            "h := hashT.put(2, 3); (x.inc(0) + y.inc(0)) }")});
    HybridConfig HC;
    HC.HtmObjects = {"size", "x", "y"};
    HC.ConflictChancePct = Pct;
    HC.Seed = 5 + Pct;
    HybridHtmBoostingTM E(M, HC);
    RunStats St = runCertified(E, *Spec, 5 + Pct);
    std::printf("%12u %8llu %12llu %18llu %8llu\n", Pct,
                (unsigned long long)St.Commits,
                (unsigned long long)E.htmRetractions(),
                (unsigned long long)E.boostedOpsPreserved(),
                (unsigned long long)St.ruleCount(RuleKind::UnPush));
  }
  std::printf("shape: retractions grow with conflict%%; boosted ops stay in "
              "the shared log\n(preserved > 0 whenever a retraction "
              "happened); commits always complete.\n");
}

void BM_Figure7Replay(benchmark::State &State) {
  auto Spec = fig7Spec();
  MoverChecker Movers(*Spec);
  for (auto _ : State) {
    PushPullMachine M(*Spec, Movers);
    bool Ok = replayFigure7(M);
    benchmark::DoNotOptimize(Ok);
  }
}
BENCHMARK(BM_Figure7Replay);

void BM_HtmRetraction(benchmark::State &State) {
  auto Spec = fig7Spec();
  MoverChecker Movers(*Spec);
  for (auto _ : State) {
    State.PauseTiming();
    PushPullMachine M(*Spec, Movers);
    TxId T = M.addThread({fig7Tx()});
    M.beginTx(T);
    M.app(T, 0, 0);
    M.push(T, 0);
    M.app(T, 0, 0);
    M.app(T, 0, 0);
    M.push(T, 2);
    M.app(T, 0, 0);
    M.push(T, 1);
    M.push(T, 3);
    State.ResumeTiming();
    // The retraction path itself.
    M.unpush(T, 3);
    M.unpush(T, 1);
    M.unapp(T);
  }
}
BENCHMARK(BM_HtmRetraction);

} // namespace

int main(int argc, char **argv) {
  qualitative();
  std::printf("\n-- microbenchmarks --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
