//===- bench/bench_contention.cpp - E10: cross-engine contention sweep ---------===//
//
// Experiment E10: the cross-cutting comparison the Section 6 discussion
// presupposes.  All engines run the same boosting-friendly (commutative,
// keyed) map workload while key skew rises; the shape to regenerate:
//
//   * optimistic validation aborts climb with contention, boosting's
//     abstract locks convert them into (cheaper) blocking;
//   * at near-zero contention optimism matches or beats boosting on
//     committed ops/step (no lock bookkeeping, snapshot once);
//   * the pessimistic delayed-write engine never aborts anywhere;
//   * word-granular HTM pays false conflicts on semantically-commutative
//     hot keys.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "sim/Workload.h"
#include "spec/MapSpec.h"
#include "tm/BoostingTM.h"
#include "tm/HtmTM.h"
#include "tm/OptimisticTM.h"
#include "tm/PessimisticCommitTM.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace pushpull;
using namespace pushpull::benchutil;

namespace {

struct EngineRow {
  std::string Name;
  RunStats St;
  uint64_t Extra = 0; // engine-specific (false conflicts / writer waits)
};

EngineRow runOne(int Which, const MapSpec &Spec, const WorkloadConfig &WC) {
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  for (auto &P : genMapWorkload(Spec, WC))
    M.addThread(P);
  EngineRow Row;
  switch (Which) {
  case 0: {
    OptimisticTM E(M);
    Row.Name = E.name();
    Row.St = runCertified(E, Spec, WC.Seed);
    break;
  }
  case 1: {
    BoostingTM E(M);
    Row.Name = E.name();
    Row.St = runCertified(E, Spec, WC.Seed);
    break;
  }
  case 2: {
    PessimisticCommitTM E(M);
    Row.Name = E.name();
    Row.St = runCertified(E, Spec, WC.Seed);
    Row.Extra = E.writerWaits();
    break;
  }
  case 3: {
    HtmConfig HC;
    HC.WordGranularity = true;
    HtmTM E(M, HC);
    Row.Name = E.name();
    Row.St = runCertified(E, Spec, WC.Seed);
    Row.Extra = E.falseConflicts();
    break;
  }
  }
  return Row;
}

void qualitative() {
  banner("E10", "optimistic vs pessimistic vs boosting vs HTM under "
                "contention");
  for (unsigned Theta : {0u, 80u, 150u, 250u}) {
    std::printf("\nkey skew: zipf theta = %.2f (map of 8 keys, 4 threads x 4 "
                "txs x 3 ops)\n",
                Theta / 100.0);
    std::printf("%30s %8s %8s %8s %12s %12s %8s\n", "engine", "commits",
                "aborts", "blocked", "abort-ratio", "ops/step", "extra");
    for (int Which = 0; Which < 4; ++Which) {
      MapSpec Spec("map", 8, 4);
      WorkloadConfig WC;
      WC.Threads = 4;
      WC.TxPerThread = 4;
      WC.OpsPerTx = 3;
      WC.KeyRange = 8;
      WC.ZipfTheta = Theta;
      WC.ReadPct = 50;
      WC.Seed = 2000 + Theta;
      EngineRow Row = runOne(Which, Spec, WC);
      std::printf("%30s %8llu %8llu %8llu %12.3f %12.3f %8llu\n",
                  Row.Name.c_str(), (unsigned long long)Row.St.Commits,
                  (unsigned long long)Row.St.Aborts,
                  (unsigned long long)Row.St.BlockedSteps,
                  Row.St.abortRatio(), Row.St.committedOpsPerStep(),
                  (unsigned long long)Row.Extra);
    }
  }
  std::printf(
      "\nshape: optimistic abort-ratio climbs with skew; boosting trades\n"
      "aborts for blocking; matveev-shavit's abort column is all zeros\n"
      "('extra' = writer waits); word-granular HTM's 'extra' column counts\n"
      "false conflicts on hot keys.\n");
}

void BM_ContentionSweep(benchmark::State &State) {
  int Which = static_cast<int>(State.range(0));
  unsigned Theta = static_cast<unsigned>(State.range(1));
  uint64_t Commits = 0;
  for (auto _ : State) {
    MapSpec Spec("map", 8, 4);
    WorkloadConfig WC;
    WC.Threads = 4;
    WC.TxPerThread = 2;
    WC.OpsPerTx = 3;
    WC.KeyRange = 8;
    WC.ZipfTheta = Theta;
    WC.Seed = 19;
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    for (auto &P : genMapWorkload(Spec, WC))
      M.addThread(P);
    Scheduler Sched({SchedulePolicy::RandomUniform, 19, 500000});
    if (Which == 0) {
      OptimisticTM E(M);
      Commits += Sched.run(E).Commits;
    } else {
      BoostingTM E(M);
      Commits += Sched.run(E).Commits;
    }
  }
  State.counters["commits"] = benchmark::Counter(
      static_cast<double>(Commits), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ContentionSweep)
    ->Args({0, 0})
    ->Args({0, 250})
    ->Args({1, 0})
    ->Args({1, 250});

} // namespace

int main(int argc, char **argv) {
  qualitative();
  std::printf("\n-- microbenchmarks --\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
