//===- core/Machine.h - The PUSH/PULL machine -------------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PUSH/PULL machine of Section 4 (Figures 4, 5, 6).  Machine
/// configurations are (T, G): a list of threads {c, sigma, L} plus the
/// shared log G.  Threads reduce via the seven rules
///
///   APP     apply a next method locally (appends npshd to L)
///   UNAPP   rewind the latest unpushed application (restores code/stack)
///   PUSH    publish a local effect (npshd -> pshd; appended to G)
///   UNPUSH  recall a published effect (pshd -> npshd; removed from G)
///   PULL    view another transaction's published effect (appends pld)
///   UNPULL  discard a pulled effect
///   CMT     commit: flip all own G entries gUCmt -> gCmt, clear L
///
/// each guarded by the criteria of Figure 5, which this machine evaluates
/// mechanically (movers via MoverChecker, allowed-ness via the spec).  The
/// structural rules of Figure 6 (NONDETL/R, LOOP, SEMI, SEMISKIP) are
/// subsumed by using step()/fin() inside APP and CMT, exactly as the
/// paper's APP/CMT premises do.
///
/// A thread's program is a sequence of transactions (the paper's
/// well-formedness: every method occurs inside a transaction); beginTx
/// starts the next one, recording the rewind point otx = (original code,
/// original stack) that UNAPP chains back to and that the serializability
/// oracle replays.
///
/// Rule attempts never mutate state when rejected, so schedulers and the
/// exhaustive explorer may probe moves freely.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_CORE_MACHINE_H
#define PUSHPULL_CORE_MACHINE_H

#include "core/Commut.h"
#include "core/Criteria.h"
#include "core/Log.h"
#include "core/Mover.h"
#include "core/Spec.h"
#include "core/Trace.h"
#include "lang/StepFin.h"
#include "support/Arena.h"
#include "support/Cow.h"

#include <functional>
#include <string>
#include <vector>

namespace pushpull {

class PushPullMachine;

/// How strictly the machine checks each rule application.
enum class ValidationLevel {
  /// Structural checks only (flags, membership); the semantic criteria
  /// (movers, allowed-ness of G) are not evaluated.  For measuring
  /// validation overhead (E8) and for engines proven correct by
  /// construction.
  Trusting,
  /// Evaluate and enforce every criterion of Figure 5 (the default).
  Criteria,
  /// Criteria plus the Section 5.3 invariants (I_LG, I_slideR,
  /// I_localOrder, I_reorderPUSH) re-checked after every mutation.  Slow;
  /// for tests.
  Full,
};

/// Machine configuration knobs.
struct MachineConfig {
  ValidationLevel Level = ValidationLevel::Criteria;
  /// Enforce the criteria the paper marks gray ("not strictly necessary"):
  /// UNPUSH criterion (i) and PULL criterion (iii).
  bool EnforceGrayCriteria = true;
  /// Treat Tri::Unknown criterion verdicts as failures (sound default).
  bool UnknownIsFailure = true;
  /// Record the discharge bookkeeping nothing on the hot path reads: the
  /// audit log of every *applied* rule's full RuleResult (the
  /// machine-checked analogue of the paper's per-rule proof obligations),
  /// the *passing* criterion reports of rule attempts (failing reports are
  /// always kept — firstFailure() must work), and the per-event operation
  /// text in the trace.  Off by default and during exploration and
  /// fuzzing, where none of it is consumed; Scenario runs switch it on for
  /// their discharge logs.
  bool RecordAudit = false;
  /// Record a TraceEvent per applied rule.  The trace feeds the opacity
  /// classifier, scheduler statistics, and scenario reports; the explorer
  /// switches it off — it reads the trace only when printing a failing
  /// terminal, and the per-rule appends plus the per-copy chain shares are
  /// pure overhead across millions of successor expansions.
  bool RecordTrace = true;
  /// Test-only fault injection: the criterion with exactly this
  /// paper-style name (e.g. "PUSH criterion (ii)") is reported as passing
  /// without being evaluated.  The differential fuzzer's shrinker test
  /// plants a known bug here and checks the harness finds and minimizes
  /// it.  Empty (no injection) in production.
  std::string DisabledCriterion;
  /// Observer invoked after every *applied* rule, once the configuration
  /// mutation is complete.  The machine passed in is the one that fired
  /// (copies carry the callback but pass themselves), so differential
  /// checkers can re-validate invariants after every rule firing without
  /// the hard-abort semantics of ValidationLevel::Full.
  std::function<void(const PushPullMachine &M, RuleKind K, TxId T)>
      OnRuleApplied;
};

/// One thread {c, sigma, L} plus its queued future transactions and the
/// otx rewind point of the transaction in progress.
struct ThreadState {
  TxId Tid = 0;
  /// Remaining code of the transaction in progress (undefined outside one).
  CodePtr Code;
  Stack Sigma;
  LocalLog L;
  /// otx: body and stack at the start of the in-progress transaction.
  CodePtr OrigCode;
  Stack OrigSigma;
  bool InTx = false;
  /// Transactions not yet begun, in program order.  Copy-on-write: machine
  /// copies share the queue; the rare mutations (BEGIN, dynamic queueing)
  /// clone it.
  CowVec<CodePtr> Pending;
  /// Number of CMTs this thread has performed.
  size_t Commits = 0;

  bool done() const { return !InTx && Pending.empty(); }
};

/// A committed transaction, recorded for the serializability oracle: the
/// otx (rewound body + starting stack), the stack it actually finished
/// with (the simulation requires the atomic replay to reproduce it —
/// cmtpres relates runs with the *same* final sigma'), and the global
/// commit order index.
struct CommittedTx {
  TxId Tid = 0;
  CodePtr Body;
  Stack Sigma;
  Stack FinalSigma;
  uint64_t CommitSeq = 0;
};

/// One APP possibility: a step() item together with its allowed
/// completions under the current local view.
struct AppChoice {
  StepItem Item;
  /// Index of Item within step(c) — pass to app().
  size_t StepIdx = 0;
  std::vector<Completion> Completions;
};

/// The PUSH/PULL machine.  Copyable (for the explorer's DFS): copies share
/// the spec and the mover checker's memo tables, which are pure caches.
class PushPullMachine {
public:
  PushPullMachine(const SequentialSpec &Spec, MoverChecker &Movers,
                  MachineConfig Config = {});

  /// Add a thread whose program is the given sequence of transaction
  /// bodies (a leading Tx node on a body is stripped).  Returns its id.
  TxId addThread(std::vector<CodePtr> Transactions);

  /// Prepend further transactions to a thread's pending queue (they run
  /// before anything already queued).  Engines use this for dynamically
  /// generated work such as open nesting's compensating transactions.
  void queueTransactionsFront(TxId T, std::vector<CodePtr> Transactions);

  // -- Structural (non-rule) reductions ------------------------------------

  /// Begin the thread's next pending transaction.  Fails (returns false)
  /// if one is already in progress or none are pending.
  bool beginTx(TxId T);

  // -- The seven rules of Figure 5 -----------------------------------------

  /// All APP possibilities for thread \p T right now.
  std::vector<AppChoice> appChoices(TxId T) const;

  /// APP using choice \p StepIdx of step(c) and completion \p CompIdx of
  /// the allowed completions.
  RuleResult app(TxId T, size_t StepIdx, size_t CompIdx);

  /// UNAPP the most recent local-log entry (must be npshd).
  RuleResult unapp(TxId T);

  /// PUSH the local-log entry at \p LocalIdx (must be npshd).
  RuleResult push(TxId T, size_t LocalIdx);

  /// UNPUSH the local-log entry at \p LocalIdx (must be pshd).
  RuleResult unpush(TxId T, size_t LocalIdx);

  /// PULL the global-log entry at \p GlobalIdx.
  RuleResult pull(TxId T, size_t GlobalIdx);

  /// UNPULL the local-log entry at \p LocalIdx (must be pld).
  RuleResult unpull(TxId T, size_t LocalIdx);

  /// CMT the thread's transaction.
  RuleResult commit(TxId T);

  // -- Observation ----------------------------------------------------------

  const GlobalLog &global() const { return G; }
  /// Thread container: inline up to four threads so that copying a machine
  /// (the explorer does this once per applied rule) performs no heap
  /// allocation for the thread array itself.
  using ThreadList = SmallVec<ThreadState, 4>;

  const ThreadList &threads() const { return Threads; }
  const ThreadState &thread(TxId T) const;
  const RuleTrace &trace() const { return Trace; }

  /// One audited rule application (only recorded with Config.RecordAudit).
  struct AuditEntry {
    TxId Tid = 0;
    std::string OpText;
    RuleResult Result;
  };
  const std::vector<AuditEntry> &audit() const { return Audit; }

  /// Render the audit log: every applied rule with each criterion's
  /// verdict — the discharge record of the paper's side-conditions.
  std::string auditToString() const;
  const std::vector<CommittedTx> &committed() const {
    return Committed.view();
  }
  const SequentialSpec &spec() const { return *Spec; }
  MoverChecker &movers() const { return *Movers; }
  const MachineConfig &config() const { return Config; }

  /// Replace the validation configuration.  Useful for tests and
  /// experiments that build a configuration under one regime and then
  /// probe rules under another.
  void setConfig(MachineConfig C) { Config = C; }

  /// Re-point this machine at another mover checker.  The parallel
  /// explorer gives each worker its own checker (caches are per-worker;
  /// verdicts are cache-independent) and re-points popped work items at
  /// the worker that will drive them.
  void setMovers(MoverChecker &M) { Movers = &M; }

  /// Overwrite this machine's configuration wholesale with an externally
  /// constructed (T, G) pair.  This is the static-analysis install hook:
  /// ppcheck's obligation audit enumerates abstract log/state shapes as
  /// plain data and plants each one here, then probes individual rules —
  /// no scheduler ever runs.  The caller is responsible for structural
  /// well-formedness (thread Tids dense and in order, pshd/pld entries
  /// present in \p NewG, InTx threads carrying non-null Code/OrigCode);
  /// \p MaxUsedId seeds the fresh-id source past every installed
  /// operation so APP probes cannot collide with installed ids.  Trace,
  /// audit, and committed history are reset: an installed shape is a
  /// point configuration, not a history.
  void installForAnalysis(ThreadList NewThreads, GlobalLog NewG,
                          OpId MaxUsedId);

  /// Canonical key of this configuration (threads' code, stacks, logs, G,
  /// and the content of committed transactions).  Operation ids differ
  /// between branches that apply "the same" operation, so the key renders
  /// operations by call/result and logs by structure.  Committed content
  /// (bodies and stacks in commit order, tid-free) is part of the key
  /// because the serializability oracle's verdict is a function of it:
  /// without it, two configurations differing only in commit order would
  /// merge in the explorer's visited map and the surviving verdict would
  /// depend on traversal order.  Used by the explorer's visited set.
  ///
  /// \p LabelOf, if given, renames thread ids for the symmetry reduction:
  /// thread \c T is rendered in slot \c (*LabelOf)[T] and global-log
  /// owners are rewritten through the same map.  Sound only for
  /// permutations that map threads to threads with identical programs
  /// (pending queues are keyed by count, not content).
  ///
  /// \p Commut, if given, renders the G section (and the L->G links) in
  /// the canonical order of core/Commut.h's G-order quotient instead of
  /// append order, merging configurations that differ only by adjacent
  /// swaps of cross-thread strongly-commuting entries.  \p GOrderOut, when
  /// non-null, receives the canonical-position -> original-index
  /// permutation actually used (the identity when \p Commut is null) so
  /// callers can express G indices (sleep-set PULL members) in the same
  /// order the key was rendered in.
  std::string configKey(const std::vector<TxId> *LabelOf = nullptr,
                        const CommutativityOracle *Commut = nullptr,
                        SmallVec<uint32_t, 16> *GOrderOut = nullptr) const;

  /// The minimum of configKey over a whole symmetry group (\p Perms;
  /// element 0 must be the identity), with \p BestPerm set to the index of
  /// the minimizing permutation.  Equivalent to taking configKey(&P) for
  /// every P and keeping the smallest, but renders the label-independent
  /// sections once instead of once per permutation — the symmetry
  /// reduction keys every visited configuration |Perms| ways.  With
  /// \p Commut the G quotient order depends on the owner relabeling, so
  /// each permutation is rendered in full; \p GOrderOut receives the
  /// minimizing permutation's canonical G order.
  std::string configKeyCanonical(const std::vector<std::vector<TxId>> &Perms,
                                 size_t &BestPerm,
                                 const CommutativityOracle *Commut = nullptr,
                                 SmallVec<uint32_t, 16> *GOrderOut = nullptr)
      const;

  /// The committed projection |G|_gCmt — what the serializability theorem
  /// relates to an atomic log.
  std::vector<Operation> committedLog() const;

  /// The thread's local view: denotation of its local log.
  StateSet localView(TxId T) const;

  /// True when every thread is done and no transaction is in flight.
  bool quiescent() const;

  /// Render the full configuration (threads + G) for diagnostics.
  std::string toString() const;

private:
  ThreadState &threadMut(TxId T);

  /// Interned denotation of \p Th's local log, folding applyOpId over the
  /// entries directly — no Operation vector is materialized.  This is the
  /// machine's hottest spec query (APP choice enumeration, APP/PULL
  /// criteria, local views).
  StateSetId localViewId(const ThreadState &Th) const;

  /// Interned denotation of G extended with \p Extra (PUSH criterion
  /// (iii)), again without materializing an Operation vector.
  StateSetId globalViewId(const Operation *Extra,
                          size_t OmitIdx = static_cast<size_t>(-1)) const;

  /// Evaluate a Tri criterion under the current validation level (at
  /// Trusting level the thunk is skipped entirely) and append its report
  /// to \p Rs.  Clean passes are elided unless Config.RecordAudit; failing
  /// and Unknown verdicts are always appended so firstFailure() works.
  template <typename Fn>
  void evalCriterion(CriterionReports &Rs, const char *Name, Fn &&Thunk,
                     const char *Detail = "") const;

  /// Append a report for an inline-evaluated verdict, with the same
  /// pass-elision policy as evalCriterion.
  void noteCriterion(CriterionReports &Rs, const char *Name, Tri V,
                     const char *Detail = "") const;

  /// Does this set of reports permit the rule to fire?
  bool reportsPass(const CriterionReports &Rs) const;

  /// Run the Section 5.3 invariant suite (Full level only); asserts on
  /// violation.
  void checkInvariantsAfterStep(const char *Rule);

  /// Append the memoized committed-content key section (see configKey).
  void appendCommittedKey(std::string &Out) const;

  void recordEvent(TxId T, RuleKind K, const Operation *Op,
                   bool PulledUncommitted = false);
  void recordAudit(TxId T, const Operation *Op, const RuleResult &R);

  const SequentialSpec *Spec;
  MoverChecker *Movers;
  MachineConfig Config;

  ThreadList Threads;
  GlobalLog G;
  OpIdSource Ids;
  RuleTrace Trace;
  std::vector<AuditEntry> Audit;
  /// Copy-on-write: the explorer's per-successor machine copies share the
  /// history; the oracle and configKey read it constantly, commits extend
  /// it rarely.
  CowVec<CommittedTx> Committed;
  /// Memoized configKey committed section (relabeling-invariant, extended
  /// only by CMT).  Copies share it; commit() invalidates.  Each machine
  /// owns its shared_ptr object, so resetting one copy's cache never races
  /// with another's.
  mutable std::shared_ptr<const std::string> CommittedKeyCache;
  uint64_t CommitSeq = 0;
  /// Counts whole-machine copies into memstats::MachineCopies.
  [[no_unique_address]] memstats::CopyTick CopyTick;
};

/// What a rule's Figure 5 criteria read and what its mutation writes,
/// summarized at the granularity the partial-order reduction needs: the
/// firing thread's own state {c, sigma, L} versus the shared log G.  The
/// per-rule values are justified criterion by criterion in
/// Machine.cpp:ruleFootprint, next to the code that evaluates them.
struct RuleFootprint {
  /// Some criterion consults G (beyond the thread's own entries' links).
  bool ReadsGlobal = false;
  /// The mutation appends to / removes from / reflags G.
  bool WritesGlobal = false;

  /// The rule neither reads nor writes G: it commutes with every firing
  /// of every other thread.
  bool local() const { return !ReadsGlobal && !WritesGlobal; }
};

/// The static footprint of \p K.  All rules read and write their own
/// thread's {c, sigma, L}; this reports their shared-log footprint.
RuleFootprint ruleFootprint(RuleKind K);

} // namespace pushpull

#endif // PUSHPULL_CORE_MACHINE_H
