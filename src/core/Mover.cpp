//===- core/Mover.cpp - Executable Definition 4.1 ---------------------------===//

#include "core/Mover.h"

#include <deque>
#include <unordered_set>

using namespace pushpull;

MoverChecker::MoverChecker(const SequentialSpec &Spec, MoverLimits Limits,
                           PrecongruenceLimits PreLimits)
    : Spec(Spec), Limits(Limits), Pre(Spec, PreLimits) {}

void MoverChecker::ensureReachable() {
  if (ReachableComputed)
    return;
  ReachableComputed = true;
  ReachableIsExact = true;

  std::unordered_set<StateSetId> Seen;
  std::deque<StateSetId> Frontier;
  std::vector<Operation> Probes = Spec.probeOps();
  std::vector<OpKeyId> ProbeKeys;
  ProbeKeys.reserve(Probes.size());
  for (const Operation &Op : Probes)
    ProbeKeys.push_back(Spec.table().opKey(Op));

  StateSetId Init = Spec.initialId();
  Seen.insert(Init);
  Reachable.push_back(Init);
  Frontier.push_back(Init);

  while (!Frontier.empty()) {
    if (Reachable.size() >= Limits.MaxReachableSets) {
      ReachableIsExact = false;
      break;
    }
    StateSetId S = Frontier.front();
    Frontier.pop_front();
    for (size_t I = 0; I < Probes.size(); ++I) {
      StateSetId N = Spec.applyOpId(S, Probes[I], ProbeKeys[I]);
      if (Spec.table().setEmpty(N))
        continue;
      if (!Seen.insert(N).second)
        continue;
      Reachable.push_back(N);
      Frontier.push_back(N);
    }
  }
}

Tri MoverChecker::leftMover(const Operation &A, const Operation &B) {
  Tri Hint = Spec.leftMoverHint(A, B);
  if (Hint != Tri::Unknown)
    return Hint;
  return leftMoverSemantic(A, B);
}

Tri MoverChecker::leftMoverSemantic(const Operation &A, const Operation &B) {
  // One interning lookup per operand (the only string work on this path),
  // then the memo key is a single integer.
  OpKeyId KA = Spec.table().opKey(A), KB = Spec.table().opKey(B);
  uint64_t Key = (static_cast<uint64_t>(KA) << 32) | KB;
  auto It = Memo.find(Key);
  if (It != Memo.end()) {
    ++MemoHits;
    return It->second;
  }
  ++MemoMisses;

  ensureReachable();
  Tri Out = Tri::Yes;
  for (StateSetId S : Reachable) {
    StateSetId AB = Spec.applyOpId(Spec.applyOpId(S, A, KA), B, KB);
    if (Spec.table().setEmpty(AB))
      continue; // l.A.B not allowed from here: vacuously fine.
    StateSetId BA = Spec.applyOpId(Spec.applyOpId(S, B, KB), A, KA);
    Tri V = Pre.check(AB, BA);
    if (V == Tri::No) {
      Out = Tri::No;
      break;
    }
    if (V == Tri::Unknown)
      Out = Tri::Unknown;
  }
  // If the enumeration was truncated, a Yes only covers the enumerated
  // prefix of reachable logs.
  if (Out == Tri::Yes && !ReachableIsExact)
    Out = Tri::Unknown;

  Memo.emplace(Key, Out);
  return Out;
}

Tri MoverChecker::leftMoverAll(const std::vector<Operation> &As,
                               const Operation &B) {
  Tri Out = Tri::Yes;
  for (const Operation &A : As) {
    Out = triAnd(Out, leftMover(A, B));
    if (Out == Tri::No)
      return Out;
  }
  return Out;
}

Tri MoverChecker::leftMoverOverAll(const Operation &A,
                                   const std::vector<Operation> &Bs) {
  Tri Out = Tri::Yes;
  for (const Operation &B : Bs) {
    Out = triAnd(Out, leftMover(A, B));
    if (Out == Tri::No)
      return Out;
  }
  return Out;
}

bool MoverChecker::reachableExact() {
  ensureReachable();
  return ReachableIsExact;
}

size_t MoverChecker::reachableCount() {
  ensureReachable();
  return Reachable.size();
}
