//===- core/Mover.cpp - Executable Definition 4.1 ---------------------------===//

#include "core/Mover.h"

#include <deque>
#include <unordered_set>

using namespace pushpull;

MoverChecker::MoverChecker(const SequentialSpec &Spec, MoverLimits Limits,
                           PrecongruenceLimits PreLimits)
    : Spec(Spec), Limits(Limits), Pre(Spec, PreLimits) {}

std::string MoverChecker::opKey(const Operation &Op) {
  // Moverness depends on the call and its result, never on the id or the
  // thread stacks, so memoize on those alone.
  std::string Out = Op.Call.toString();
  if (Op.Result)
    Out += "=" + std::to_string(*Op.Result);
  return Out;
}

void MoverChecker::ensureReachable() {
  if (ReachableComputed)
    return;
  ReachableComputed = true;
  ReachableIsExact = true;

  std::unordered_set<std::string> Seen;
  std::deque<StateSet> Frontier;
  std::vector<Operation> Probes = Spec.probeOps();

  StateSet Init = Spec.initial();
  Seen.insert(Init.key());
  Reachable.push_back(Init);
  Frontier.push_back(std::move(Init));

  while (!Frontier.empty()) {
    if (Reachable.size() >= Limits.MaxReachableSets) {
      ReachableIsExact = false;
      break;
    }
    StateSet S = std::move(Frontier.front());
    Frontier.pop_front();
    for (const Operation &Op : Probes) {
      StateSet N = Spec.applyOp(S, Op);
      if (N.empty())
        continue;
      if (!Seen.insert(N.key()).second)
        continue;
      Reachable.push_back(N);
      Frontier.push_back(std::move(N));
    }
  }
}

Tri MoverChecker::leftMover(const Operation &A, const Operation &B) {
  Tri Hint = Spec.leftMoverHint(A, B);
  if (Hint != Tri::Unknown)
    return Hint;
  return leftMoverSemantic(A, B);
}

Tri MoverChecker::leftMoverSemantic(const Operation &A, const Operation &B) {
  std::string Key = opKey(A) + '\x1d' + opKey(B);
  auto It = Memo.find(Key);
  if (It != Memo.end()) {
    ++MemoHits;
    return It->second;
  }
  ++MemoMisses;

  ensureReachable();
  Tri Out = Tri::Yes;
  for (const StateSet &S : Reachable) {
    StateSet AB = Spec.applyOp(Spec.applyOp(S, A), B);
    if (AB.empty())
      continue; // l.A.B not allowed from here: vacuously fine.
    StateSet BA = Spec.applyOp(Spec.applyOp(S, B), A);
    Tri V = Pre.check(AB, BA);
    if (V == Tri::No) {
      Out = Tri::No;
      break;
    }
    if (V == Tri::Unknown)
      Out = Tri::Unknown;
  }
  // If the enumeration was truncated, a Yes only covers the enumerated
  // prefix of reachable logs.
  if (Out == Tri::Yes && !ReachableIsExact)
    Out = Tri::Unknown;

  Memo.emplace(std::move(Key), Out);
  return Out;
}

Tri MoverChecker::leftMoverAll(const std::vector<Operation> &As,
                               const Operation &B) {
  Tri Out = Tri::Yes;
  for (const Operation &A : As) {
    Out = triAnd(Out, leftMover(A, B));
    if (Out == Tri::No)
      return Out;
  }
  return Out;
}

Tri MoverChecker::leftMoverOverAll(const Operation &A,
                                   const std::vector<Operation> &Bs) {
  Tri Out = Tri::Yes;
  for (const Operation &B : Bs) {
    Out = triAnd(Out, leftMover(A, B));
    if (Out == Tri::No)
      return Out;
  }
  return Out;
}

bool MoverChecker::reachableExact() {
  ensureReachable();
  return ReachableIsExact;
}

size_t MoverChecker::reachableCount() {
  ensureReachable();
  return Reachable.size();
}
