//===- core/Precongruence.h - Executable Definition 3.1 ---------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared-log precongruence of Definition 3.1, defined coinductively
/// (greatest fixpoint):
///
///     allowed l1 => allowed l2      forall op. (l1.op) =< (l2.op)
///     -------------------------------------------------------------
///                            l1 =< l2
///
/// Executable decision procedure: since allowed is induced by a denotation
/// into state sets ([[l]] != {}), the relation l1 =< l2 depends only on the
/// pair of state sets ([[l1]], [[l2]]), and the coinductive rule unfolds to
/// a *reachability* question on the pair graph under the probe alphabet:
///
///  * a reachable pair with nonempty left but empty right component is a
///    finite counterexample witness (a distinguishing suffix), so No is
///    exact;
///  * exhausting the reachable closure without finding one means the
///    visited set is a relation closed under the rule, hence contained in
///    the greatest fixpoint: Yes is exact;
///  * if the configured pair budget is exhausted first, we answer Unknown.
///
/// The search is breadth-first and iterative (pair graphs of composite
/// specifications can be deep).
///
/// For finite-state specifications with complete probe alphabets the
/// procedure is a decision procedure for Definition 3.1; tests cross-check
/// its laws (reflexivity, transitivity — Lemma 5.2, closure under append —
/// Lemma 5.3).
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_CORE_PRECONGRUENCE_H
#define PUSHPULL_CORE_PRECONGRUENCE_H

#include "core/Spec.h"
#include "support/Tri.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace pushpull {

/// Resource bounds for the fixpoint exploration.
struct PrecongruenceLimits {
  /// Maximum number of distinct state-set pairs to visit per query before
  /// answering Unknown.
  size_t MaxPairs = 200000;
};

/// Decision procedure for the shared-log precongruence, with caching that
/// persists across queries (sound: Yes answers denote membership in the
/// greatest fixpoint; No answers have finite witnesses).
///
/// All internal bookkeeping is on interned StateSetIds: a pair of state
/// sets is one uint64, so the visited/known sets hash and compare integers
/// instead of canonical state strings.
class PrecongruenceChecker {
public:
  explicit PrecongruenceChecker(const SequentialSpec &Spec,
                                PrecongruenceLimits Limits = {});

  /// Is l1 =< l2, where the logs are given by their denotations?
  Tri check(const StateSet &S1, const StateSet &S2);

  /// Interned form: the hot entry point for the mover checker.
  Tri check(StateSetId S1, StateSetId S2);

  /// Is l1 =< l2?  Denotes both logs from the initial states first.
  Tri checkLogs(const std::vector<Operation> &L1,
                const std::vector<Operation> &L2);

  /// Number of state-set pairs visited over the checker's lifetime
  /// (exploration effort; reported by bench_mover / E8).
  uint64_t pairsVisited() const { return PairsVisited; }

  /// Cache sizes, for diagnostics.
  size_t knownGoodCount() const { return KnownGood.size(); }
  size_t knownBadCount() const { return KnownBad.size(); }

  const PrecongruenceLimits &limits() const { return Limits; }

private:
  const SequentialSpec &Spec;
  PrecongruenceLimits Limits;
  std::vector<Operation> Probes;
  /// Interned denotation keys of Probes, index-aligned.
  std::vector<OpKeyId> ProbeKeys;

  /// Pairs proved related by a completed (counterexample-free) query.
  std::unordered_set<uint64_t> KnownGood;
  /// Pairs with a concrete counterexample (the refuted pair and every pair
  /// on the path that reached it).
  std::unordered_set<uint64_t> KnownBad;

  uint64_t PairsVisited = 0;
};

} // namespace pushpull

#endif // PUSHPULL_CORE_PRECONGRUENCE_H
