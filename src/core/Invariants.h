//===- core/Invariants.h - Section 5.3 machine invariants -------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable forms of the invariants the serializability proof rests on
/// (Section 5.3).  The paper proves these are preserved by every machine
/// reduction; here they are *checked* — the machine's Full validation level
/// re-establishes them after every rule, and the property-test suites
/// assert them along randomized and exhaustively explored runs, giving an
/// executable counterpart of Lemmas 5.7–5.13.
///
///   I_LG           pshd entries are in G; npshd entries are not (L. 5.7)
///   I_slideR       own uncommitted pushed ops can move right of later
///                  other-transaction ops in G (Lemma 5.8)
///   I_reorderPUSH  own ops pushed out of local order are movable back
///                  into it (Lemma 5.10)
///   I_localOrder   a pushed op applied after an unpushed one can move
///                  left of it (Lemma 5.12)
///
/// and the derived precongruence facts (checked by tests; they are
/// consequences of the above per Lemmas 5.9/5.11/5.13):
///
///   I_slidePushed   G  =<  (G \ |L|p) . (G n |L|p)
///   I_chronPush     (G \ |L|p) . (G n |L|p)  =<  (G \ |L|p) . |L|p
///   I_localReorder  (G \ |L|p) . |L|p . |L|n  =<  (G \ |L|p) . |L|pn
///
/// where |L|p are the own pushed ops in local order, |L|n the unpushed,
/// and |L|pn both interleaved in local order.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_CORE_INVARIANTS_H
#define PUSHPULL_CORE_INVARIANTS_H

#include "core/Machine.h"

#include <string>

namespace pushpull {

/// Outcome of checking one invariant for one thread.
struct InvariantReport {
  bool Holds = true;
  /// Which invariant failed (empty when Holds).
  std::string Which;
  std::string Detail;

  static InvariantReport ok() { return {}; }
  static InvariantReport fail(std::string Which, std::string Detail);
};

/// I_LG (Lemma 5.7).
InvariantReport checkILG(const ThreadState &Th, const GlobalLog &G);

/// I_slideR (Lemma 5.8).  Mover obligations that are Unknown are treated
/// as failures (sound for a checker).
InvariantReport checkISlideR(const ThreadState &Th, const GlobalLog &G,
                             MoverChecker &Movers);

/// I_reorderPUSH (Lemma 5.10).
InvariantReport checkIReorderPush(const ThreadState &Th, const GlobalLog &G,
                                  MoverChecker &Movers);

/// I_localOrder (Lemma 5.12).
InvariantReport checkILocalOrder(const ThreadState &Th,
                                 MoverChecker &Movers);

/// The mover-based invariant suite (I_LG, I_slideR, I_reorderPUSH,
/// I_localOrder); first failure wins.
InvariantReport checkAllInvariants(const ThreadState &Th, const GlobalLog &G,
                                   MoverChecker &Movers);

/// I_slidePushed (Lemma 5.9), decided with the precongruence engine.
InvariantReport checkISlidePushed(const ThreadState &Th, const GlobalLog &G,
                                  PrecongruenceChecker &Pre,
                                  const SequentialSpec &Spec);

/// I_chronPush (Lemma 5.11).
InvariantReport checkIChronPush(const ThreadState &Th, const GlobalLog &G,
                                PrecongruenceChecker &Pre,
                                const SequentialSpec &Spec);

/// I_localReorder (Lemma 5.13).
InvariantReport checkILocalReorder(const ThreadState &Th, const GlobalLog &G,
                                   PrecongruenceChecker &Pre,
                                   const SequentialSpec &Spec);

} // namespace pushpull

#endif // PUSHPULL_CORE_INVARIANTS_H
