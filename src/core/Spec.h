//===- core/Spec.h - Sequential specifications ------------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameter 3.1 of the paper: the sequential specification is a
/// prefix-closed predicate `allowed l` on operation logs.  Following the
/// paper's suggestion, allowed is induced by a denotation of operations as
/// relations on states:
///
///   [[l . op]] = [[l]] ; [[op]]      [[eps]] = I      allowed l = ([[l]] != {})
///
/// A SequentialSpec supplies the initial states I and per-state successor
/// computation; the denotation of a log is then a *state set*, and allowed
/// is non-emptiness.  Specs also supply:
///
///  * completions: which results a method call may return from a state
///    (used by APP and by the atomic machine's big-step reduction);
///  * a finite probe alphabet for the executable coinductive checks
///    (precongruence, Definition 3.1; left-mover, Definition 4.1);
///  * an optional algebraic left-mover hint (e.g. "operations on different
///    keys commute"), the executable form of the commutativity reasoning
///    transactional boosting performs with abstract locks.
///
/// States are canonically encoded as strings so that state sets can be
/// hashed and memoized by the fixpoint engines without the engines knowing
/// anything about the particular specification.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_CORE_SPEC_H
#define PUSHPULL_CORE_SPEC_H

#include "core/Op.h"
#include "support/Tri.h"

#include <string>
#include <vector>

namespace pushpull {

/// A canonical, spec-chosen encoding of one abstract state.
using State = std::string;

/// A finite set of states: the denotation of an operation log.
///
/// Kept sorted and deduplicated so that equal sets have equal keys; the
/// precongruence fixpoint memoizes on \c key().
class StateSet {
public:
  StateSet() = default;

  /// Build from an arbitrary vector (sorts and dedups).
  static StateSet of(std::vector<State> States);

  bool empty() const { return States.empty(); }
  size_t size() const { return States.size(); }
  const std::vector<State> &states() const { return States; }

  bool operator==(const StateSet &O) const { return States == O.States; }
  bool operator!=(const StateSet &O) const { return !(*this == O); }

  /// Is this set a subset of \p O?  (Both are sorted.)  Subset inclusion
  /// of denotations implies log precongruence — the relation
  /// {(S1,S2) | S1 c= S2} is closed under the rule of Definition 3.1
  /// because images preserve inclusion — so checkers use this as an exact
  /// shortcut.
  bool subsetOf(const StateSet &O) const;

  /// Canonical hashable key (states joined with an unprintable separator).
  std::string key() const;

  std::string toString() const;

private:
  std::vector<State> States;
};

/// One allowed way a method call can complete: the result it returns (if
/// the method returns one).
struct Completion {
  std::optional<Value> Result;

  bool operator==(const Completion &O) const { return Result == O.Result; }
};

/// Abstract base for sequential specifications (Parameter 3.1).
class SequentialSpec {
public:
  virtual ~SequentialSpec();

  /// Short diagnostic name, e.g. "set(u=4)".
  virtual std::string name() const = 0;

  /// The initial states I.
  virtual std::vector<State> initialStates() const = 0;

  /// Successor states of \p S under the fully resolved operation \p Op
  /// (whose Result is fixed).  Empty means Op is not allowed at S.
  virtual std::vector<State> successors(const State &S,
                                        const Operation &Op) const = 0;

  /// Allowed completions of method call \p Call from state \p S.  Empty
  /// means the call is not allowed at S at all (specs where any call is
  /// always *enabled* simply always return at least one completion).
  virtual std::vector<Completion> completions(const State &S,
                                              const ResolvedCall &Call)
      const = 0;

  /// A finite probe alphabet of fully resolved operations.  The executable
  /// precongruence/left-mover checks quantify over this alphabet instead of
  /// over all operations; specs must make it complete enough to distinguish
  /// the states they can reach (tests cross-check this).
  virtual std::vector<Operation> probeOps() const = 0;

  /// Optional algebraic mover hint for "\p A can move to the left of \p B"
  /// (Definition 4.1).  Tri::Unknown means "no opinion; fall back to the
  /// semantic check".  Hints must be *sound*: tests cross-validate them
  /// against the semantic decision procedure.
  virtual Tri leftMoverHint(const Operation &A, const Operation &B) const;

  // -- Derived, non-virtual helpers ---------------------------------------

  /// The denotation of the empty log: the set of initial states.
  StateSet initial() const;

  /// [[S ; op]]: image of \p S under \p Op.
  StateSet applyOp(const StateSet &S, const Operation &Op) const;

  /// [[l]] starting from the initial states.
  StateSet denote(const std::vector<Operation> &Log) const;

  /// [[l]] starting from \p From.
  StateSet denoteFrom(const StateSet &From,
                      const std::vector<Operation> &Log) const;

  /// allowed l  =  ([[l]] != {}).
  bool allowed(const std::vector<Operation> &Log) const;

  /// "l allows op"  =  allowed (l . op), evaluated incrementally from the
  /// already-denoted state set \p SOfLog.
  bool allowsFrom(const StateSet &SOfLog, const Operation &Op) const;

  /// Union of completions of \p Call over all states in \p S, deduplicated.
  /// A completion is allowed if *some* state admits it (allowed-ness is
  /// non-emptiness of the denotation).
  std::vector<Completion> completionsFrom(const StateSet &S,
                                          const ResolvedCall &Call) const;
};

} // namespace pushpull

#endif // PUSHPULL_CORE_SPEC_H
