//===- core/Spec.h - Sequential specifications ------------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameter 3.1 of the paper: the sequential specification is a
/// prefix-closed predicate `allowed l` on operation logs.  Following the
/// paper's suggestion, allowed is induced by a denotation of operations as
/// relations on states:
///
///   [[l . op]] = [[l]] ; [[op]]      [[eps]] = I      allowed l = ([[l]] != {})
///
/// A SequentialSpec supplies the initial states I and per-state successor
/// computation; the denotation of a log is then a *state set*, and allowed
/// is non-emptiness.  Specs also supply:
///
///  * completions: which results a method call may return from a state
///    (used by APP and by the atomic machine's big-step reduction);
///  * a finite probe alphabet for the executable coinductive checks
///    (precongruence, Definition 3.1; left-mover, Definition 4.1);
///  * an optional algebraic left-mover hint (e.g. "operations on different
///    keys commute"), the executable form of the commutativity reasoning
///    transactional boosting performs with abstract locks.
///
/// States are canonically encoded as strings so that state sets can be
/// hashed and memoized by the fixpoint engines without the engines knowing
/// anything about the particular specification.
///
/// On top of the canonical encoding sits a hash-consing layer (StateTable):
/// every canonical state string is interned once into a dense StateId, and
/// every canonical state set into a dense StateSetId, so the fixpoint
/// engines (precongruence pair BFS, mover reachable enumeration, explorer
/// memoization) compare and hash plain integers instead of re-hashing
/// strings on every frontier insertion.  The table also memoizes the
/// denotation step itself — (StateSetId, op key) -> StateSetId — so the
/// same [[S ; op]] image is computed once and shared by every engine that
/// consults the spec.  The table is internally synchronized: the parallel
/// explorer's workers share one spec (and thus one transition memo) across
/// threads.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_CORE_SPEC_H
#define PUSHPULL_CORE_SPEC_H

#include "core/Op.h"
#include "support/Tri.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace pushpull {

/// A canonical, spec-chosen encoding of one abstract state.
using State = std::string;

/// A finite set of states: the denotation of an operation log.
///
/// Kept sorted and deduplicated so that equal sets have equal keys; the
/// precongruence fixpoint memoizes on \c key().
class StateSet {
public:
  StateSet() = default;

  /// Build from an arbitrary vector (sorts and dedups).
  static StateSet of(std::vector<State> States);

  bool empty() const { return States.empty(); }
  size_t size() const { return States.size(); }
  const std::vector<State> &states() const { return States; }

  bool operator==(const StateSet &O) const { return States == O.States; }
  bool operator!=(const StateSet &O) const { return !(*this == O); }

  /// Is this set a subset of \p O?  (Both are sorted.)  Subset inclusion
  /// of denotations implies log precongruence — the relation
  /// {(S1,S2) | S1 c= S2} is closed under the rule of Definition 3.1
  /// because images preserve inclusion — so checkers use this as an exact
  /// shortcut.
  bool subsetOf(const StateSet &O) const;

  /// Canonical hashable key (states joined with an unprintable separator).
  std::string key() const;

  std::string toString() const;

private:
  std::vector<State> States;
};

/// Dense identifier of an interned canonical state string.
using StateId = uint32_t;

/// Dense identifier of an interned canonical state set.  Two StateSetIds
/// from the same StateTable are equal iff the underlying StateSets are
/// equal, so set equality/hashing degrades to an integer compare.
using StateSetId = uint32_t;

/// Dense identifier of an interned operation denotation key.  Denotation
/// (and moverness) depend only on an operation's resolved call and result,
/// never on its id or the thread stacks, so operations with the same
/// (Call, Result) share one OpKeyId.
using OpKeyId = uint32_t;

/// Counters describing how effective the interning/memoization layer is.
struct InternStats {
  uint64_t StatesInterned = 0;
  uint64_t StateSetsInterned = 0;
  uint64_t OpKeysInterned = 0;
  uint64_t TransitionMemoHits = 0;
  uint64_t TransitionMemoMisses = 0;

  double transitionHitRate() const {
    uint64_t Total = TransitionMemoHits + TransitionMemoMisses;
    return Total ? static_cast<double>(TransitionMemoHits) /
                       static_cast<double>(Total)
                 : 0.0;
  }
};

/// Hash-consing table for one specification: canonical states, canonical
/// state sets, operation keys, and the transition memo
/// (StateSetId, OpKeyId) -> StateSetId.
///
/// Internally synchronized (shared_mutex for the maps, atomics for the
/// counters) so that the parallel explorer's workers can share one spec.
/// Interned entries are immutable once published and stored behind stable
/// pointers, so references returned by \c setOf stay valid forever.
class StateTable {
public:
  /// Id 0 is always the empty set.
  static constexpr StateSetId EmptySetId = 0;

  StateTable();
  StateTable(const StateTable &) = delete;
  StateTable &operator=(const StateTable &) = delete;

  /// Hash-cons one canonical state string.
  StateId internState(const State &S);

  /// Hash-cons a canonical (sorted, deduplicated) state set.
  StateSetId internSet(const StateSet &S);
  StateSetId internSet(StateSet &&S);

  /// The canonical set behind an id.  The reference is stable.
  const StateSet &setOf(StateSetId Id) const;

  /// The member state ids of a set, sorted by id.  The reference is stable.
  const std::vector<StateId> &membersOf(StateSetId Id) const;

  bool setEmpty(StateSetId Id) const { return Id == EmptySetId; }

  /// Is set \p A a subset of set \p B?  (Integer-vector inclusion.)
  bool subset(StateSetId A, StateSetId B) const;

  /// Intern the (Call, Result) denotation key of \p Op.
  OpKeyId opKey(const Operation &Op);

  /// Transition memo: was [[S ; op]] computed before?
  bool lookupTransition(StateSetId S, OpKeyId Op, StateSetId &Out);
  void recordTransition(StateSetId S, OpKeyId Op, StateSetId Result);

  InternStats stats() const;

private:
  struct SetEntry {
    StateSet Canonical;
    std::vector<StateId> Members;
  };

  StateSetId internSorted(std::vector<StateId> Members, StateSet &&Canonical);

  /// Nonzero id distinguishing this table in per-Operation key caches.
  const uint32_t TableId;

  struct IdVecHash {
    size_t operator()(const std::vector<StateId> &V) const {
      // FNV-1a over the id words; ids are already well-distributed.
      uint64_t H = 1469598103934665603ull;
      for (StateId I : V) {
        H ^= I;
        H *= 1099511628211ull;
      }
      return static_cast<size_t>(H);
    }
  };

  mutable std::shared_mutex Mutex;
  std::unordered_map<std::string, StateId> StateIds;
  std::unordered_map<std::vector<StateId>, StateSetId, IdVecHash> SetIds;
  /// Indexed by StateSetId; unique_ptr gives entries stable addresses.
  std::vector<std::unique_ptr<SetEntry>> Sets;
  std::unordered_map<std::string, OpKeyId> OpKeys;
  /// (StateSetId << 32 | OpKeyId) -> result StateSetId.
  std::unordered_map<uint64_t, StateSetId> Transitions;

  std::atomic<uint64_t> TransitionHits{0}, TransitionMisses{0};
};

/// One allowed way a method call can complete: the result it returns (if
/// the method returns one).
struct Completion {
  std::optional<Value> Result;

  bool operator==(const Completion &O) const { return Result == O.Result; }
};

/// Signature of one method of a sequential specification: the owning
/// object, the method name, the argument count, and whether calls return
/// a value.  This is the surface the .pp linter checks programs against
/// (unknown objects/methods, arity errors, result bindings on void
/// methods) without executing anything.
struct MethodSig {
  std::string Object;
  std::string Method;
  unsigned Arity = 0;
  bool HasResult = true;

  /// "obj.method/arity".
  std::string toString() const;
};

/// Abstract base for sequential specifications (Parameter 3.1).
class SequentialSpec {
public:
  SequentialSpec() = default;
  /// Copying a spec starts the copy with fresh caches: the interning
  /// table is per-instance memoization, not semantic state.
  SequentialSpec(const SequentialSpec &) {}
  SequentialSpec &operator=(const SequentialSpec &) { return *this; }
  virtual ~SequentialSpec();

  /// Short diagnostic name, e.g. "set(u=4)".
  virtual std::string name() const = 0;

  /// The initial states I.
  virtual std::vector<State> initialStates() const = 0;

  /// Successor states of \p S under the fully resolved operation \p Op
  /// (whose Result is fixed).  Empty means Op is not allowed at S.
  virtual std::vector<State> successors(const State &S,
                                        const Operation &Op) const = 0;

  /// Allowed completions of method call \p Call from state \p S.  Empty
  /// means the call is not allowed at S at all (specs where any call is
  /// always *enabled* simply always return at least one completion).
  virtual std::vector<Completion> completions(const State &S,
                                              const ResolvedCall &Call)
      const = 0;

  /// A finite probe alphabet of fully resolved operations.  The executable
  /// precongruence/left-mover checks quantify over this alphabet instead of
  /// over all operations; specs must make it complete enough to distinguish
  /// the states they can reach (tests cross-check this).
  virtual std::vector<Operation> probeOps() const = 0;

  /// Optional algebraic mover hint for "\p A can move to the left of \p B"
  /// (Definition 4.1).  Tri::Unknown means "no opinion; fall back to the
  /// semantic check".  Hints must be *sound*: tests cross-validate them
  /// against the semantic decision procedure.
  virtual Tri leftMoverHint(const Operation &A, const Operation &B) const;

  /// The method surface of this specification, for static checking.  The
  /// default derives it from probeOps() — one signature per distinct
  /// (object, method), arity from the probe's argument count, result-ness
  /// from whether any probe carries a Result — which is exact whenever the
  /// probe alphabet covers every method at its real arity.  The shipped
  /// specs override with their authoritative surfaces; the default serves
  /// test-local specs.
  virtual std::vector<MethodSig> methods() const;

  // -- Derived, non-virtual helpers ---------------------------------------

  /// The denotation of the empty log: the set of initial states.
  StateSet initial() const;

  /// [[S ; op]]: image of \p S under \p Op.  Routed through the interning
  /// table's transition memo, so repeated images are hash lookups.
  StateSet applyOp(const StateSet &S, const Operation &Op) const;

  /// [[l]] starting from the initial states.
  StateSet denote(const std::vector<Operation> &Log) const;

  /// [[l]] starting from \p From.
  StateSet denoteFrom(const StateSet &From,
                      const std::vector<Operation> &Log) const;

  /// allowed l  =  ([[l]] != {}).
  bool allowed(const std::vector<Operation> &Log) const;

  /// "l allows op"  =  allowed (l . op), evaluated incrementally from the
  /// already-denoted state set \p SOfLog.
  bool allowsFrom(const StateSet &SOfLog, const Operation &Op) const;

  /// Union of completions of \p Call over all states in \p S, deduplicated.
  /// A completion is allowed if *some* state admits it (allowed-ness is
  /// non-emptiness of the denotation).
  std::vector<Completion> completionsFrom(const StateSet &S,
                                          const ResolvedCall &Call) const;

  // -- Interned denotation (the hot-path form of the helpers above) --------
  //
  // Interning is representation only: setOf(applyOpId(internSet(S), op))
  // is always the same canonical StateSet that applyOp(S, op) returns.

  /// This spec's hash-consing table.  Mutable: a pure cache.
  StateTable &table() const { return Table; }

  /// Intern an already-canonical set.
  StateSetId internSet(const StateSet &S) const { return Table.internSet(S); }

  /// The canonical set behind an id (stable reference).
  const StateSet &setOf(StateSetId Id) const { return Table.setOf(Id); }

  /// Interned denotation of the empty log.
  StateSetId initialId() const;

  /// [[S ; op]] on interned sets, memoized in the transition memo.
  StateSetId applyOpId(StateSetId S, const Operation &Op) const;

  /// Same, with the operation's key already interned (lets search loops
  /// hoist the key computation out of the frontier loop).
  StateSetId applyOpId(StateSetId S, const Operation &Op, OpKeyId Key) const;

  /// [[l]] from \p From, on interned sets.
  StateSetId denoteFromId(StateSetId From,
                          const std::vector<Operation> &Log) const;

  /// [[l]] from the initial states, on interned sets.
  StateSetId denoteId(const std::vector<Operation> &Log) const;

  /// Interning/memoization counters for this spec.
  InternStats internStats() const { return Table.stats(); }

private:
  mutable StateTable Table;
  mutable std::atomic<StateSetId> CachedInitial{NoInitial};
  static constexpr StateSetId NoInitial = 0xffffffff;
};

} // namespace pushpull

#endif // PUSHPULL_CORE_SPEC_H
