//===- core/Commut.h - Strong-commutation oracle and G-order quotient -*- C++
//-*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface between the core machine and a *certified* static
/// commutativity table (analysis/MoverTable.h), plus the global-log order
/// quotient it induces.
///
/// Definition 4.1's mover relation is a precongruence statement; the
/// quotient below needs the strictly stronger *strong commutation* of two
/// operations A, B:
///
///   forall reachable S:   [[S.A.B]] = [[S.B.A]]   (state-set equality)
///   and  [[S.A]] != {} /\ [[S.B]] != {}  ==>  [[S.A.B]] != {}
///
/// quantified over the exact probe-closed reachable family of denotations.
/// Set equality (not mere precongruence) makes every log context that
/// embeds A and B adjacently denote identically under either order, and
/// the enabledness clause keeps every rule guard (allowed-ness is
/// denotation non-emptiness) insensitive to the order.  An oracle answers
/// "do these two interned op keys strongly commute"; the only shipped
/// implementation backs the answer with a machine-checked certificate
/// (analysis/MoverTable.h).
///
/// canonicalGOrder is the lexicographic trace normal form of a global log
/// under the independence relation "different owners and strongly
/// commuting ops": repeatedly emit, among the entries with no remaining
/// dependent predecessor, the one with the smallest (opKey, kind, owner)
/// label.  Two global logs that differ only by swaps of adjacent
/// independent entries normalize to the same label sequence, so rendering
/// a configuration key in this order merges configurations the quotient
/// identifies.  The normal form is canonical per equivalence class: it is
/// the unique lexicographically least linear extension of the dependence
/// partial order, and label ties can only occur between same-owner entries
/// (owner is part of the label), which are always dependent and hence keep
/// their class-invariant relative order.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_CORE_COMMUT_H
#define PUSHPULL_CORE_COMMUT_H

#include "core/Spec.h"
#include "support/SmallVec.h"

#include <cstddef>
#include <cstdint>

namespace pushpull {

/// Abstract strong-commutation oracle over interned operation keys.
/// Implementations must be thread-safe (the parallel explorer's workers
/// share one oracle) and *sound*: a true answer must hold for every
/// reachable denotation.  Unknown keys must answer false.
class CommutativityOracle {
public:
  virtual ~CommutativityOracle() = default;

  /// Do the operations behind keys \p A and \p B strongly commute (see
  /// the file comment)?  Symmetric; false is always a safe answer.
  virtual bool stronglyCommute(OpKeyId A, OpKeyId B) const = 0;

  /// Observability counters (sim/Stats CommutTableHits/Misses/CertChecks).
  /// A "hit" is a query answered true (a refinement actually applied), a
  /// "miss" a query answered false; cert checks count independent
  /// certificate verifications performed.
  /// \{
  virtual uint64_t tableHits() const { return 0; }
  virtual uint64_t tableMisses() const { return 0; }
  virtual uint64_t certChecks() const { return 0; }
  /// \}
};

/// One global-log entry as the configuration key renders it: interned op
/// key, committedness flag ('C'/'U'), and the (possibly relabeled) owner.
struct GKeyView {
  uint32_t OpKey = 0;
  char Kind = 'U';
  uint32_t OwnerLabel = 0;
};

/// Compute the canonical order of \p N global-log entries under \p DB's
/// strong-commutation relation (see the file comment).  \p OrderOut maps
/// canonical position -> original index; it is always a permutation of
/// [0, N).  O(N^2) oracle queries worst case; N is a global-log length.
void canonicalGOrder(const GKeyView *Entries, size_t N,
                     const CommutativityOracle &DB,
                     SmallVec<uint32_t, 16> &OrderOut);

} // namespace pushpull

#endif // PUSHPULL_CORE_COMMUT_H
