//===- core/Criteria.cpp - Rule criteria reporting --------------------------===//

#include "core/Criteria.h"

using namespace pushpull;

std::string pushpull::toString(RuleKind K) {
  switch (K) {
  case RuleKind::App:
    return "APP";
  case RuleKind::UnApp:
    return "UNAPP";
  case RuleKind::Push:
    return "PUSH";
  case RuleKind::UnPush:
    return "UNPUSH";
  case RuleKind::Pull:
    return "PULL";
  case RuleKind::UnPull:
    return "UNPULL";
  case RuleKind::Commit:
    return "CMT";
  }
  return "?";
}

const CriterionReport *RuleResult::firstFailure() const {
  for (const CriterionReport &R : Criteria)
    if (!R.holds())
      return &R;
  return nullptr;
}

std::string RuleResult::toString() const {
  std::string Out = pushpull::toString(Rule);
  Out += Applied ? ": applied" : ": rejected";
  if (!Message.empty())
    Out += " (" + Message + ")";
  for (const CriterionReport &R : Criteria) {
    Out += "\n  " + R.Name + ": " + pushpull::toString(R.Verdict);
    if (!R.Detail.empty())
      Out += " -- " + R.Detail;
  }
  return Out;
}

RuleResult RuleResult::applied(RuleKind K, CriterionReports Rs) {
  RuleResult Out;
  Out.Rule = K;
  Out.Applied = true;
  Out.Criteria = std::move(Rs);
  return Out;
}

RuleResult RuleResult::rejected(RuleKind K, CriterionReports Rs,
                                std::string Msg) {
  RuleResult Out;
  Out.Rule = K;
  Out.Applied = false;
  Out.Criteria = std::move(Rs);
  Out.Message = std::move(Msg);
  return Out;
}

RuleResult RuleResult::malformed(RuleKind K, std::string Msg) {
  return rejected(K, {}, std::move(Msg));
}

CriterionReport pushpull::criterion(std::string Name, Tri Verdict,
                                    std::string Detail) {
  CriterionReport R;
  R.Name = std::move(Name);
  R.Verdict = Verdict;
  R.Detail = std::move(Detail);
  return R;
}
