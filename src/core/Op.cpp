//===- core/Op.cpp - Operation records and thread stacks ------------------===//

#include "core/Op.h"

#include "support/Str.h"

#include <cassert>

using namespace pushpull;

std::optional<Value> Stack::get(const std::string &Var) const {
  auto It = Vars.find(Var);
  if (It == Vars.end())
    return std::nullopt;
  return It->second;
}

Value Stack::getOrDie(const std::string &Var) const {
  auto V = get(Var);
  assert(V && "unbound variable in stack");
  return *V;
}

Stack Stack::bind(const std::string &Var, Value V) const {
  Stack Out = *this;
  Out.Vars[Var] = V;
  return Out;
}

void Stack::set(const std::string &Var, Value V) { Vars[Var] = V; }

std::string Stack::toString() const {
  std::vector<std::string> Parts;
  for (const auto &[Var, Val] : Vars)
    Parts.push_back(Var + "->" + std::to_string(Val));
  return "[" + join(Parts, ", ") + "]";
}

std::string ResolvedCall::toString() const {
  std::vector<std::string> Parts;
  for (Value A : Args)
    Parts.push_back(std::to_string(A));
  return Object + "." + Method + "(" + join(Parts, ",") + ")";
}

std::string Operation::toString() const {
  std::string Out = "#" + std::to_string(Id) + ":" + Call.toString();
  if (Result)
    Out += "=" + std::to_string(*Result);
  return Out;
}
