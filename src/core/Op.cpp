//===- core/Op.cpp - Operation records and thread stacks ------------------===//

#include "core/Op.h"

#include "support/Str.h"

#include <algorithm>
#include <cassert>

using namespace pushpull;

/// First position whose name is >= Var (the vector is name-sorted).
static Stack::Entries::const_iterator
lowerBoundVar(const Stack::Entries &Vars, const std::string &Var) {
  return std::lower_bound(
      Vars.begin(), Vars.end(), Var,
      [](const std::pair<std::string, Value> &E, const std::string &V) {
        return E.first < V;
      });
}

std::optional<Value> Stack::get(const std::string &Var) const {
  auto It = lowerBoundVar(Vars, Var);
  if (It == Vars.end() || It->first != Var)
    return std::nullopt;
  return It->second;
}

Value Stack::getOrDie(const std::string &Var) const {
  auto V = get(Var);
  assert(V && "unbound variable in stack");
  return *V;
}

Stack Stack::bind(const std::string &Var, Value V) const {
  Stack Out = *this;
  Out.set(Var, V);
  return Out;
}

void Stack::set(const std::string &Var, Value V) {
  auto It = lowerBoundVar(Vars, Var);
  if (It != Vars.end() && It->first == Var) {
    Vars[It - Vars.begin()].second = V;
    return;
  }
  Vars.insert(Vars.begin() + (It - Vars.begin()), {Var, V});
}

std::string Stack::toString() const {
  std::vector<std::string> Parts;
  for (const auto &[Var, Val] : Vars)
    Parts.push_back(Var + "->" + std::to_string(Val));
  return "[" + join(Parts, ", ") + "]";
}

std::string ResolvedCall::toString() const {
  std::vector<std::string> Parts;
  for (Value A : Args)
    Parts.push_back(std::to_string(A));
  return Object + "." + Method + "(" + join(Parts, ",") + ")";
}

std::string Operation::toString() const {
  std::string Out = "#" + std::to_string(Id) + ":" + Call.toString();
  if (Result)
    Out += "=" + std::to_string(*Result);
  return Out;
}
