//===- core/Log.h - Local and global operation logs -------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PUSH/PULL model has no concrete state, only logs (Section 4):
///
///  * a per-thread local log  L : list (op x l)  with
///      l ::= pld | npshd c | pshd c
///    where the npshd/pshd flags save the code that was active when the
///    entry was created (so the transaction can rewind), and pld marks
///    operations pulled in from other transactions;
///
///  * a shared global log  G : list (op x g)  with  g ::= gUCmt | gCmt.
///
/// This file also provides the log combinators the rules and invariants are
/// phrased with: the projections |L|_l and |G|_g, difference G \ L,
/// containment L c= G, ordered intersection G n |L|_pshd, and the commit
/// transformer cmt(G1, L1, G2).  All membership is by operation id
/// ("notations are lifted to lists where equality is given by ids").
///
/// Both logs are backed by refcounted copy-on-write chunk chains
/// (support/Cow.h): copying a log — which the explorer does once per
/// emitted successor, inside a whole-machine copy — is one atomic
/// increment, and appends go in place whenever the owning machine is the
/// only one referencing the head chunk (the sequential-scheduler case).
/// entries() returns the log itself, which iterates like the vector it
/// used to be, so combinators and call sites read naturally.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_CORE_LOG_H
#define PUSHPULL_CORE_LOG_H

#include "core/Op.h"
#include "lang/Ast.h"
#include "support/Cow.h"

#include <vector>

namespace pushpull {

/// Local-log flag discriminator: l ::= pld | npshd c | pshd c.
enum class LocalKind {
  NotPushed, ///< npshd c: applied locally, not yet in the global log.
  Pushed,    ///< pshd c: applied locally and present in the global log.
  Pulled,    ///< pld: another transaction's effect, pulled into our view.
};

std::string toString(LocalKind K);

/// One entry of a local log.
struct LocalEntry {
  Operation Op;
  LocalKind Kind = LocalKind::NotPushed;
  /// The code that was active when this entry was created; meaningful for
  /// npshd/pshd entries (the `c` of `npshd c`), null for pld.  UNAPP uses
  /// it to rewind.
  CodePtr SavedCode;
};

/// A thread's local log L.
class LocalLog {
public:
  using const_iterator = CowChain<LocalEntry, 4>::const_iterator;

  bool empty() const { return Chain.empty(); }
  size_t size() const { return Chain.size(); }
  const LocalEntry &operator[](size_t I) const { return Chain[I]; }
  const_iterator begin() const { return Chain.begin(); }
  const_iterator end() const { return Chain.end(); }
  /// The entries as an iterable range (the log itself; historically this
  /// returned the backing vector).
  const LocalLog &entries() const { return *this; }

  void append(LocalEntry E) { Chain.push(std::move(E)); }
  void truncate(size_t NewSize) { Chain.truncate(NewSize); }
  void removeAt(size_t I) { Chain.removeAt(I); }
  void setKind(size_t I, LocalKind K) { Chain.mutableAt(I).Kind = K; }

  /// Index of the entry with operation id \p Id, or npos.
  size_t indexOf(OpId Id) const;
  static constexpr size_t npos = static_cast<size_t>(-1);

  /// Membership by id (the paper's `op in L`).
  bool contains(OpId Id) const { return indexOf(Id) != npos; }

  /// All operations, in local-log order (the transaction's local view).
  std::vector<Operation> ops() const;

  /// All operations except the entry at index \p Omit.
  std::vector<Operation> opsOmitting(size_t Omit) const;

  /// Projection |L|_k: operations whose flag is \p K, in log order.
  std::vector<Operation> project(LocalKind K) const;

  /// The transaction's own operations (npshd or pshd, not pld), in order.
  std::vector<Operation> ownOps() const;

  /// Indices of entries with flag \p K.
  std::vector<size_t> indicesOf(LocalKind K) const;

  std::string toString() const;

private:
  CowChain<LocalEntry, 4> Chain;
};

/// Global-log flag: g ::= gUCmt | gCmt.
enum class GlobalKind {
  Uncommitted, ///< gUCmt
  Committed,   ///< gCmt
};

std::string toString(GlobalKind K);

/// One entry of the shared log.
struct GlobalEntry {
  Operation Op;
  GlobalKind Kind = GlobalKind::Uncommitted;
  /// The thread that pushed this operation.  Not part of the paper's
  /// formal state (the model identifies ownership via local logs); carried
  /// for diagnostics and for the CMT criterion-(iii) check.
  TxId Owner = 0;
};

/// The shared log G.
class GlobalLog {
public:
  using const_iterator = CowChain<GlobalEntry, 4>::const_iterator;

  bool empty() const { return Chain.empty(); }
  size_t size() const { return Chain.size(); }
  const GlobalEntry &operator[](size_t I) const { return Chain[I]; }
  const_iterator begin() const { return Chain.begin(); }
  const_iterator end() const { return Chain.end(); }
  /// The entries as an iterable range (see LocalLog::entries).
  const GlobalLog &entries() const { return *this; }

  void append(GlobalEntry E) { Chain.push(std::move(E)); }
  void removeAt(size_t I) { Chain.removeAt(I); }

  size_t indexOf(OpId Id) const;
  static constexpr size_t npos = static_cast<size_t>(-1);
  bool contains(OpId Id) const { return indexOf(Id) != npos; }

  /// All operations in shared-log order.
  std::vector<Operation> ops() const;

  /// Projection |G|_k.
  std::vector<Operation> project(GlobalKind K) const;

  /// G \ L: entries whose op does not occur in \p L (order preserved).
  std::vector<Operation> minus(const LocalLog &L) const;

  /// Uncommitted operations not belonging to \p L (used for diagnostics).
  std::vector<Operation> uncommittedNotIn(const LocalLog &L) const;

  /// Uncommitted operations not *owned* by thread \p T — the
  /// quantification of PUSH criterion (ii) ("except those due to the
  /// current transaction").  Ownership, not local-log membership: an
  /// operation another transaction pushed and we merely pulled still
  /// constrains our publications, which is what preserves I_slideR
  /// (Lemma 5.8) for its owner.
  std::vector<Operation> uncommittedNotOwnedBy(TxId T) const;

  /// L c= G: every operation of \p L occurs in G.
  bool containsAll(const LocalLog &L) const;

  /// cmt(G, L, G'): mark every entry whose op occurs in \p L as committed.
  /// (CMT criterion (iv); pld entries in L are already committed by CMT
  /// criterion (iii), so re-marking them is a no-op.)
  void commitOwned(const LocalLog &L);

  std::string toString() const;

private:
  CowChain<GlobalEntry, 4> Chain;
};

} // namespace pushpull

#endif // PUSHPULL_CORE_LOG_H
