//===- core/Commut.cpp - Lexicographic trace normal form of G ---------------===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "core/Commut.h"

using namespace pushpull;

void pushpull::canonicalGOrder(const GKeyView *Entries, size_t N,
                               const CommutativityOracle &DB,
                               SmallVec<uint32_t, 16> &OrderOut) {
  OrderOut.clear();
  if (N == 0)
    return;
  if (N == 1) {
    OrderOut.push_back(0);
    return;
  }

  // Label order: (opKey, kind, owner).  Strict — equal labels compare
  // false both ways, and the scan below then keeps the earliest available
  // entry, which for equal labels is the original order (sound: equal
  // labels share an owner and are therefore dependent, so their relative
  // order is invariant across the equivalence class).
  auto LabelLess = [Entries](uint32_t A, uint32_t B) {
    const GKeyView &X = Entries[A], &Y = Entries[B];
    if (X.OpKey != Y.OpKey)
      return X.OpKey < Y.OpKey;
    if (X.Kind != Y.Kind)
      return X.Kind < Y.Kind;
    return X.OwnerLabel < Y.OwnerLabel;
  };
  auto Independent = [Entries, &DB](uint32_t A, uint32_t B) {
    return Entries[A].OwnerLabel != Entries[B].OwnerLabel &&
           DB.stronglyCommute(Entries[A].OpKey, Entries[B].OpKey);
  };

  SmallVec<uint32_t, 16> Remaining;
  for (size_t I = 0; I < N; ++I)
    Remaining.push_back(static_cast<uint32_t>(I));

  while (!Remaining.empty()) {
    // Among the entries whose every earlier remaining entry is independent
    // of them (no dependence predecessor left), pick the least label.
    size_t Best = 0; // Remaining[0] trivially has no earlier entry.
    for (size_t I = 1; I < Remaining.size(); ++I) {
      if (!LabelLess(Remaining[I], Remaining[Best]))
        continue;
      bool Available = true;
      for (size_t J = 0; J < I; ++J)
        if (!Independent(Remaining[J], Remaining[I])) {
          Available = false;
          break;
        }
      if (Available)
        Best = I;
    }
    OrderOut.push_back(Remaining[Best]);
    Remaining.erase(Remaining.begin() + static_cast<ptrdiff_t>(Best));
  }
}
