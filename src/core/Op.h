//===- core/Op.h - Operation records and thread stacks ----------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operation records, exactly as in Section 3 of the paper: an operation
/// op = <m, sigma1, sigma2, id> is a method name m together with a
/// thread-local pre-stack (method arguments), a thread-local post-stack
/// (return values), and a globally unique identifier.  Equality of
/// operations throughout the model is equality of ids.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_CORE_OP_H
#define PUSHPULL_CORE_OP_H

#include "support/SmallVec.h"

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pushpull {

/// Values stored in stacks and passed to/returned from methods.
using Value = int64_t;

/// Globally unique operation identifier (the paper's `id` with fresh(id)).
using OpId = uint64_t;

/// Thread identifier.
using TxId = unsigned;

/// A thread-local stack sigma: a finite map from variable names to values.
///
/// The paper threads sigma through both the programming language (method
/// arguments are read from it, results are bound into it) and the operation
/// records themselves.
///
/// Backed by a name-sorted small vector rather than a tree map: stacks are
/// tiny (a handful of short names) but copied constantly — every operation
/// record carries two — and with the first two bindings inline the common
/// copy allocates nothing at all.
class Stack {
public:
  using Entries = SmallVec<std::pair<std::string, Value>, 2>;

  Stack() = default;

  /// Look up \p Var; nullopt when unbound.
  std::optional<Value> get(const std::string &Var) const;

  /// Look up \p Var; asserts it is bound.
  Value getOrDie(const std::string &Var) const;

  /// Return a copy of this stack with \p Var bound to \p V.
  Stack bind(const std::string &Var, Value V) const;

  /// In-place bind.
  void set(const std::string &Var, Value V);

  bool operator==(const Stack &O) const { return Vars == O.Vars; }
  bool operator!=(const Stack &O) const { return !(*this == O); }

  bool empty() const { return Vars.empty(); }
  size_t size() const { return Vars.size(); }

  /// Canonical printable form, e.g. "[a->5, x->1]".
  std::string toString() const;

  /// Bindings sorted by name.
  const Entries &entries() const { return Vars; }

private:
  Entries Vars;
};

/// A fully resolved method call: the shared object it targets, the method
/// name, and concrete argument values.  This is the `m` of the paper once
/// the thread's stack has been consulted for arguments.
struct ResolvedCall {
  std::string Object; ///< Which shared object, e.g. "set" or "x".
  std::string Method; ///< Operation name, e.g. "add", "read", "write".
  std::vector<Value> Args;

  bool operator==(const ResolvedCall &O) const {
    return Object == O.Object && Method == O.Method && Args == O.Args;
  }
  bool operator!=(const ResolvedCall &O) const { return !(*this == O); }

  /// Printable form, e.g. "set.add(3)".
  std::string toString() const;
};

/// Memo slot for an operation's interned denotation key (see
/// StateTable::opKey).  The key depends only on (Call, Result), both fixed
/// at creation, so it can be computed once and carried with the record —
/// including through copies, which machines make constantly.  The slot is
/// tagged with the owning table's unique id so a record that flows between
/// specs can never alias another table's key space.  Tag and key are packed
/// into one atomic word, making concurrent fills from the parallel
/// explorer's workers safe (both write the identical value).
///
/// Contract: the cache follows (Call, Result) through copies, so code that
/// *mutates* either field on a record that may already have been interned
/// must call reset() afterwards.  Engine code never does this — it always
/// fills freshly constructed records — but spec/test helpers that recycle
/// an Operation variable must.
class OpKeyCache {
public:
  OpKeyCache() = default;
  OpKeyCache(const OpKeyCache &O)
      : Packed(O.Packed.load(std::memory_order_relaxed)) {}
  OpKeyCache &operator=(const OpKeyCache &O) {
    Packed.store(O.Packed.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  /// \returns true and sets \p Out if a key cached by table \p TableId is
  /// present.  Table ids are nonzero, so the empty slot never matches.
  bool lookup(uint32_t TableId, uint32_t &Out) const {
    uint64_t P = Packed.load(std::memory_order_relaxed);
    if (static_cast<uint32_t>(P >> 32) != TableId)
      return false;
    Out = static_cast<uint32_t>(P);
    return true;
  }

  void store(uint32_t TableId, uint32_t Key) const {
    Packed.store((static_cast<uint64_t>(TableId) << 32) | Key,
                 std::memory_order_relaxed);
  }

  /// Drop the cached key.  Required after mutating the fields the key is
  /// derived from (see the class comment).
  void reset() { Packed.store(0, std::memory_order_relaxed); }

private:
  mutable std::atomic<uint64_t> Packed{0};
};

/// An operation record op = <m, sigma1, sigma2, id>.
///
/// \c Call is the resolved method; \c Pre is the thread-local stack at the
/// moment of application (the paper's sigma1, holding method arguments);
/// \c Post is the stack afterwards (sigma2, holding any bound result).
/// By convention a method's return value, when it has a result variable,
/// appears in \c Post under that variable; \c result() extracts the raw
/// return value independent of binding.
struct Operation {
  ResolvedCall Call;
  Stack Pre;
  Stack Post;
  /// Raw return value of the call, if the method returns one.  Recorded
  /// separately from Post so specs can judge allowed-ness even when the
  /// program discards the result.
  std::optional<Value> Result;
  OpId Id = 0;
  /// Cached interned denotation key; purely a memo, not part of the record
  /// (Call and Result, which determine it, never change after creation).
  OpKeyCache KeyCache;

  /// Identity in the model is id equality (Section 4: "Notations are all
  /// lifted to lists where equality is given by ids").
  bool sameIdAs(const Operation &O) const { return Id == O.Id; }

  /// Printable form, e.g. "#7:set.add(3)=1".
  std::string toString() const;
};

/// Monotonic source of fresh operation ids (the paper's fresh(id)).
class OpIdSource {
public:
  OpId fresh() { return ++Last; }
  OpId lastIssued() const { return Last; }

  /// Advance the sequence past \p Used.  The analysis install hook builds
  /// operation records outside the machine and must keep future fresh ids
  /// disjoint from them.
  void reservePast(OpId Used) {
    if (Used > Last)
      Last = Used;
  }

private:
  OpId Last = 0;
};

} // namespace pushpull

#endif // PUSHPULL_CORE_OP_H
