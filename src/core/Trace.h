//===- core/Trace.h - Rule traces -------------------------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A RuleTrace records the sequence of rule applications a machine run
/// performed, in the style of the paper's Figure 7 ("PULL(...), APP(...),
/// PUSH(...), ... CMT").  Traces drive the opacity checker, the rule-mix
/// histograms of the Section 6 experiments, and test assertions about an
/// algorithm's characteristic rule pattern.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_CORE_TRACE_H
#define PUSHPULL_CORE_TRACE_H

#include "core/Criteria.h"
#include "core/Op.h"

#include <array>
#include <memory>
#include <string>
#include <vector>

namespace pushpull {

/// One recorded rule application.
struct TraceEvent {
  TxId Tid = 0;
  RuleKind Rule = RuleKind::App;
  /// The operation the rule touched (0 for CMT).
  OpId Id = 0;
  /// Printable description of that operation (kept by value: the op itself
  /// may later be removed from every log by UNPUSH/UNAPP).
  std::string OpText;
  /// For PULL events: was the pulled entry uncommitted at pull time?  This
  /// is what the Section 6.1 opacity fragment is defined by.
  bool PulledUncommitted = false;
  /// Monotone global sequence number.
  uint64_t Seq = 0;
};

/// An append-only record of rule applications across all threads.
///
/// Stored as a persistent (structurally shared) list: copying a trace is
/// O(1) and shares the recorded prefix with the original.  The explorer
/// copies whole machines once per candidate successor, so trace copies are
/// on its innermost loop; appends after a copy never disturb the original
/// (each copy grows its own tail).  Reading in event order materializes a
/// vector, which only the reporting paths do.
class RuleTrace {
public:
  RuleTrace() = default;
  RuleTrace(const RuleTrace &) = default;
  RuleTrace(RuleTrace &&) = default;
  // Assignment and destruction release the old chain iteratively; the
  // default (recursive shared_ptr teardown) would overflow the stack on
  // the multi-thousand-event traces long scheduler runs record.
  RuleTrace &operator=(const RuleTrace &O);
  RuleTrace &operator=(RuleTrace &&O) noexcept;
  ~RuleTrace() { release(); }

  void record(TraceEvent E);

  /// All events, oldest first (materialized on demand).
  std::vector<TraceEvent> events() const;
  bool empty() const { return Count == 0; }
  size_t size() const { return Count; }

  /// Number of events with the given rule kind.
  size_t countOf(RuleKind K) const;

  /// Events performed by thread \p T, in order.
  std::vector<TraceEvent> byThread(TxId T) const;

  /// Figure 7-style rendering: one "RULE(op)" line per event.
  std::string toString() const;

  void clear() {
    release();
    Count = 0;
    NextSeq = 0;
  }

private:
  struct Node {
    TraceEvent E;
    std::shared_ptr<Node> Prev;
  };

  /// Drop this trace's chain without recursing.
  void release();

  /// Visit all events oldest-first.
  template <typename Fn> void forEachInOrder(Fn &&F) const;

  std::shared_ptr<Node> Newest;
  size_t Count = 0;
  uint64_t NextSeq = 0;
};

} // namespace pushpull

#endif // PUSHPULL_CORE_TRACE_H
