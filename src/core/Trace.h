//===- core/Trace.h - Rule traces -------------------------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A RuleTrace records the sequence of rule applications a machine run
/// performed, in the style of the paper's Figure 7 ("PULL(...), APP(...),
/// PUSH(...), ... CMT").  Traces drive the opacity checker, the rule-mix
/// histograms of the Section 6 experiments, and test assertions about an
/// algorithm's characteristic rule pattern.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_CORE_TRACE_H
#define PUSHPULL_CORE_TRACE_H

#include "core/Criteria.h"
#include "core/Op.h"
#include "support/Cow.h"

#include <string>
#include <vector>

namespace pushpull {

/// One recorded rule application.
struct TraceEvent {
  TxId Tid = 0;
  RuleKind Rule = RuleKind::App;
  /// The operation the rule touched (0 for CMT).
  OpId Id = 0;
  /// Printable description of that operation (kept by value: the op itself
  /// may later be removed from every log by UNPUSH/UNAPP).  Only recorded
  /// with MachineConfig::RecordAudit; reporting falls back to "#id".
  std::string OpText;
  /// For PULL events: was the pulled entry uncommitted at pull time?  This
  /// is what the Section 6.1 opacity fragment is defined by.
  bool PulledUncommitted = false;
  /// Monotone global sequence number.
  uint64_t Seq = 0;
};

/// An append-only record of rule applications across all threads.
///
/// Stored as a copy-on-write chunk chain (support/Cow.h): copying a trace
/// is one refcount bump and shares the recorded prefix with the original.
/// The explorer copies whole machines once per emitted successor, so trace
/// copies are on its innermost loop; appends after a copy open a fresh
/// head chunk and never disturb the original, while the sequential
/// scheduler (sole owner) appends in place, eight events per chunk
/// allocation.  Teardown of the chain is iterative, so multi-thousand-
/// event scheduler traces never overflow the stack.
class RuleTrace {
public:
  void record(TraceEvent E) {
    E.Seq = NextSeq++;
    Chain.push(std::move(E));
  }

  /// All events, oldest first (materialized on demand).
  std::vector<TraceEvent> events() const;
  bool empty() const { return Chain.empty(); }
  size_t size() const { return Chain.size(); }

  /// In-order iteration without materializing (oldest first).
  CowChain<TraceEvent, 8>::const_iterator begin() const {
    return Chain.begin();
  }
  CowChain<TraceEvent, 8>::const_iterator end() const { return Chain.end(); }

  /// Number of events with the given rule kind.
  size_t countOf(RuleKind K) const;

  /// Events performed by thread \p T, in order.
  std::vector<TraceEvent> byThread(TxId T) const;

  /// Figure 7-style rendering: one "RULE(op)" line per event.
  std::string toString() const;

  void clear() {
    Chain.clear();
    NextSeq = 0;
  }

private:
  CowChain<TraceEvent, 8> Chain;
  uint64_t NextSeq = 0;
};

} // namespace pushpull

#endif // PUSHPULL_CORE_TRACE_H
