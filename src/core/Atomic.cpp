//===- core/Atomic.cpp - The atomic reference semantics --------------------===//

#include "core/Atomic.h"

#include "lang/StepFin.h"

using namespace pushpull;

AtomicMachine::AtomicMachine(const SequentialSpec &Spec, AtomicLimits Limits)
    : Spec(Spec), Limits(Limits) {}

std::vector<AtomicOutcome>
AtomicMachine::bigStep(const CodePtr &C, const Stack &Sigma,
                       const std::vector<Operation> &Log) {
  std::vector<AtomicOutcome> Out;
  std::vector<Operation> Work = Log;
  OutcomesEmitted = 0;
  bigStepInner(C, Sigma, Spec.denote(Log), Work, 0,
               [&Out](const AtomicOutcome &O) {
                 Out.push_back(O);
                 return false; // Keep enumerating.
               });
  return Out;
}

bool AtomicMachine::canRun(const CodePtr &C, const Stack &Sigma,
                           const std::vector<Operation> &Log) {
  std::vector<Operation> Work = Log;
  OutcomesEmitted = 0;
  return bigStepInner(C, Sigma, Spec.denote(Log), Work, 0,
                      [](const AtomicOutcome &) { return true; });
}

bool AtomicMachine::bigStepInner(
    const CodePtr &C, const Stack &Sigma, StateSet S,
    std::vector<Operation> &Log, size_t OpsUsed,
    const std::function<bool(const AtomicOutcome &)> &Emit) {
  if (OutcomesEmitted >= Limits.MaxOutcomes)
    return false;

  // BSFIN: there is a reduction of c to skip with no method call.
  if (fin(C)) {
    ++OutcomesEmitted;
    AtomicOutcome O;
    O.Sigma = Sigma;
    O.Log = Log;
    if (Emit(O))
      return true;
  }

  if (OpsUsed >= Limits.MaxOpsPerTx)
    return false;

  // BSSTEP: pick a next reachable method, an allowed completion, recurse.
  for (const StepItem &It : step(C)) {
    auto Call = It.Call.resolve(Sigma);
    if (!Call)
      continue; // Unbound argument variable: this path is stuck.
    for (const Completion &Comp : Spec.completionsFrom(S, *Call)) {
      Operation Op;
      Op.Call = *Call;
      Op.Pre = Sigma;
      Op.Result = Comp.Result;
      Stack Post = Sigma;
      if (It.Call.ResultVar && Comp.Result)
        Post.set(*It.Call.ResultVar, *Comp.Result);
      Op.Post = Post;
      Op.Id = Ids.fresh();

      StateSet N = Spec.applyOp(S, Op);
      if (N.empty())
        continue; // Completion allowed in no state (shouldn't happen).
      Log.push_back(Op);
      bool Found = bigStepInner(It.Rest, Post, std::move(N), Log,
                                OpsUsed + 1, Emit);
      Log.pop_back();
      if (Found)
        return true;
      if (OutcomesEmitted >= Limits.MaxOutcomes)
        return false;
    }
  }
  return false;
}

bool AtomicMachine::searchSerial(
    const std::vector<AtomicTx> &Txs, const std::vector<Operation> &Log,
    const std::function<bool(const AtomicOutcome &)> &Consume) {
  std::vector<Operation> Work = Log;
  OutcomesEmitted = 0;
  return searchSerialInner(Txs, 0, Stack(), Spec.denote(Log), Work, Consume);
}

bool AtomicMachine::searchSerialInner(
    const std::vector<AtomicTx> &Txs, size_t Next, const Stack &,
    StateSet S, std::vector<Operation> &Log,
    const std::function<bool(const AtomicOutcome &)> &Consume) {
  if (Next == Txs.size()) {
    AtomicOutcome O;
    O.Log = Log;
    return Consume(O);
  }
  // AM_RUNTX for transaction Next, then the rest of the serial order.
  // Each transaction starts from its own recorded stack (threads do not
  // share stacks), so the per-call sigma is Txs[Next].Sigma.
  size_t Mark = Log.size();
  bool Found = bigStepInner(
      Txs[Next].Body, Txs[Next].Sigma, std::move(S), Log, 0,
      [&](const AtomicOutcome &Mid) {
        // The simulation demands the atomic run of this transaction end
        // with the same local stack the concurrent run ended with.
        if (Txs[Next].ExpectFinal && Mid.Sigma != *Txs[Next].ExpectFinal)
          return false;
        // Continue the serial run after this transaction's outcome.  The
        // recursive call works on a fresh copy of the accumulated log so
        // the enumeration in progress is not disturbed.
        std::vector<Operation> Rest = Mid.Log;
        return searchSerialInner(Txs, Next + 1, Mid.Sigma,
                                 Spec.denote(Rest), Rest, Consume);
      });
  Log.resize(Mark);
  return Found;
}
