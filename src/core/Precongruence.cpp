//===- core/Precongruence.cpp - Executable Definition 3.1 ------------------===//

#include "core/Precongruence.h"

#include <deque>

using namespace pushpull;

static std::string pairKey(const StateSet &S1, const StateSet &S2) {
  return S1.key() + '\x1e' + S2.key();
}

PrecongruenceChecker::PrecongruenceChecker(const SequentialSpec &Spec,
                                           PrecongruenceLimits Limits)
    : Spec(Spec), Limits(Limits), Probes(Spec.probeOps()) {}

Tri PrecongruenceChecker::check(const StateSet &S1, const StateSet &S2) {
  // The coinductive rule unfolds to: l1 =< l2 fails iff some finite probe
  // suffix w has allowed(l1.w) but not allowed(l2.w) — i.e. iff the pair
  // graph reachable from ([[l1]], [[l2]]) under the probe alphabet
  // contains a pair with a nonempty left and empty right component.  That
  // makes the decision a plain reachability search:
  //
  //  * finding a violating pair is an exact No (finite witness);
  //  * exhausting the reachable closure without one is an exact Yes (the
  //    visited set is closed under the rule, hence inside the gfp);
  //  * exhausting the pair budget first is Unknown.
  std::string RootKey = pairKey(S1, S2);
  if (KnownGood.count(RootKey))
    return Tri::Yes;
  if (KnownBad.count(RootKey))
    return Tri::No;

  std::unordered_set<std::string> Visited;
  std::deque<std::pair<StateSet, StateSet>> Frontier;
  Visited.insert(RootKey);
  Frontier.push_back({S1, S2});
  size_t Budget = Limits.MaxPairs;

  while (!Frontier.empty()) {
    auto [A, B] = std::move(Frontier.front());
    Frontier.pop_front();

    // Once the left log is disallowed it stays disallowed (the image of
    // an empty set is empty), so nothing below this pair can violate.
    if (A.empty())
      continue;
    // Subset inclusion is closed under extension (images are monotone),
    // so no violation is reachable from an included pair.  This also
    // covers the ubiquitous diagonal case A == B exactly.
    if (A.subsetOf(B))
      continue;
    if (B.empty()) {
      // Base violation: allowed(l1.w) but not allowed(l2.w).
      KnownBad.insert(RootKey);
      KnownBad.insert(pairKey(A, B));
      return Tri::No;
    }
    std::string Key = pairKey(A, B);
    if (KnownBad.count(Key)) {
      KnownBad.insert(RootKey);
      return Tri::No;
    }
    if (KnownGood.count(Key))
      continue; // Everything reachable from here is already certified.

    if (Budget == 0)
      return Tri::Unknown;
    --Budget;
    ++PairsVisited;

    for (const Operation &Op : Probes) {
      StateSet N1 = Spec.applyOp(A, Op);
      if (N1.empty())
        continue; // Extension disallowed on the left: vacuous.
      StateSet N2 = Spec.applyOp(B, Op);
      if (Visited.insert(pairKey(N1, N2)).second)
        Frontier.push_back({std::move(N1), std::move(N2)});
    }
  }

  // The visited closure contains no violation and is closed under probe
  // extension: promote it to the persistent Good cache.
  KnownGood.insert(Visited.begin(), Visited.end());
  return Tri::Yes;
}

Tri PrecongruenceChecker::checkLogs(const std::vector<Operation> &L1,
                                    const std::vector<Operation> &L2) {
  return check(Spec.denote(L1), Spec.denote(L2));
}
