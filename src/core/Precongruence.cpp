//===- core/Precongruence.cpp - Executable Definition 3.1 ------------------===//

#include "core/Precongruence.h"

#include <deque>

using namespace pushpull;

static uint64_t pairKey(StateSetId S1, StateSetId S2) {
  return (static_cast<uint64_t>(S1) << 32) | S2;
}

PrecongruenceChecker::PrecongruenceChecker(const SequentialSpec &Spec,
                                           PrecongruenceLimits Limits)
    : Spec(Spec), Limits(Limits), Probes(Spec.probeOps()) {
  ProbeKeys.reserve(Probes.size());
  for (const Operation &Op : Probes)
    ProbeKeys.push_back(Spec.table().opKey(Op));
}

Tri PrecongruenceChecker::check(const StateSet &S1, const StateSet &S2) {
  return check(Spec.internSet(S1), Spec.internSet(S2));
}

Tri PrecongruenceChecker::check(StateSetId S1, StateSetId S2) {
  // The coinductive rule unfolds to: l1 =< l2 fails iff some finite probe
  // suffix w has allowed(l1.w) but not allowed(l2.w) — i.e. iff the pair
  // graph reachable from ([[l1]], [[l2]]) under the probe alphabet
  // contains a pair with a nonempty left and empty right component.  That
  // makes the decision a plain reachability search:
  //
  //  * finding a violating pair is an exact No (finite witness);
  //  * exhausting the reachable closure without one is an exact Yes (the
  //    visited set is closed under the rule, hence inside the gfp);
  //  * exhausting the pair budget first is Unknown.
  StateTable &Table = Spec.table();
  uint64_t RootKey = pairKey(S1, S2);
  if (KnownGood.count(RootKey))
    return Tri::Yes;
  if (KnownBad.count(RootKey))
    return Tri::No;

  std::unordered_set<uint64_t> Visited;
  std::deque<std::pair<StateSetId, StateSetId>> Frontier;
  Visited.insert(RootKey);
  Frontier.push_back({S1, S2});
  size_t Budget = Limits.MaxPairs;

  while (!Frontier.empty()) {
    auto [A, B] = Frontier.front();
    Frontier.pop_front();

    // Once the left log is disallowed it stays disallowed (the image of
    // an empty set is empty), so nothing below this pair can violate.
    if (Table.setEmpty(A))
      continue;
    // Subset inclusion is closed under extension (images are monotone),
    // so no violation is reachable from an included pair.  This also
    // covers the ubiquitous diagonal case A == B exactly.
    if (Table.subset(A, B))
      continue;
    if (Table.setEmpty(B)) {
      // Base violation: allowed(l1.w) but not allowed(l2.w).
      KnownBad.insert(RootKey);
      KnownBad.insert(pairKey(A, B));
      return Tri::No;
    }
    uint64_t Key = pairKey(A, B);
    if (KnownBad.count(Key)) {
      KnownBad.insert(RootKey);
      return Tri::No;
    }
    if (KnownGood.count(Key))
      continue; // Everything reachable from here is already certified.

    if (Budget == 0)
      return Tri::Unknown;
    --Budget;
    ++PairsVisited;

    for (size_t I = 0; I < Probes.size(); ++I) {
      StateSetId N1 = Spec.applyOpId(A, Probes[I], ProbeKeys[I]);
      if (Table.setEmpty(N1))
        continue; // Extension disallowed on the left: vacuous.
      StateSetId N2 = Spec.applyOpId(B, Probes[I], ProbeKeys[I]);
      if (Visited.insert(pairKey(N1, N2)).second)
        Frontier.push_back({N1, N2});
    }
  }

  // The visited closure contains no violation and is closed under probe
  // extension: promote it to the persistent Good cache.
  KnownGood.insert(Visited.begin(), Visited.end());
  return Tri::Yes;
}

Tri PrecongruenceChecker::checkLogs(const std::vector<Operation> &L1,
                                    const std::vector<Operation> &L2) {
  return check(Spec.denoteId(L1), Spec.denoteId(L2));
}
