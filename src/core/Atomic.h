//===- core/Atomic.h - The atomic reference semantics -----------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The idealized atomic semantics of Figure 3: transactions execute
/// instantly, without interruption from concurrent threads.  The engine of
/// the semantics is the big-step reduction
///
///     (c, sigma), l  =>  sigma', l'
///
/// built from BSSTEP (pick a next method (m, c2) in step(c) whose operation
/// the sequential specification allows, then reduce c2 fully) and BSFIN
/// (fin(c) holds: the transaction is done).
///
/// The PUSH/PULL serializability theorem (Theorem 5.17) is a simulation
/// against this machine; the `check/Serializability` oracle uses it as the
/// independent ground truth, searching atomic runs for one whose log the
/// concurrent committed log is precongruent to.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_CORE_ATOMIC_H
#define PUSHPULL_CORE_ATOMIC_H

#include "core/Op.h"
#include "core/Spec.h"
#include "lang/Ast.h"

#include <functional>
#include <vector>

namespace pushpull {

/// One complete big-step outcome of a transaction (or serial run).
struct AtomicOutcome {
  Stack Sigma;
  std::vector<Operation> Log;
};

/// Exploration bounds for the (nondeterministic) big-step reduction.
struct AtomicLimits {
  /// Maximum operations per transaction (bounds loop unrolling).
  size_t MaxOpsPerTx = 64;
  /// Stop after this many complete outcomes per big-step.
  size_t MaxOutcomes = 100000;
};

/// A thread's transaction in a serial run: its body code and starting
/// stack (the rewound otx of a committed PUSH/PULL transaction), plus an
/// optional constraint on the stack the big step must finish with — the
/// simulation of Theorem 5.17 requires the atomic replay to reproduce
/// each transaction's actual final sigma'.
struct AtomicTx {
  CodePtr Body;
  Stack Sigma;
  std::optional<Stack> ExpectFinal;
};

/// Executes Figure 3's semantics.
class AtomicMachine {
public:
  AtomicMachine(const SequentialSpec &Spec, AtomicLimits Limits = {});

  /// All big-step outcomes (c, sigma), l => sigma', l' (BSSTEP*/BSFIN).
  /// Extensions of \p Log are returned whole (prefix \p Log included).
  std::vector<AtomicOutcome> bigStep(const CodePtr &C, const Stack &Sigma,
                                     const std::vector<Operation> &Log);

  /// Run \p Txs serially in the given order from \p Log (AM_RUNTX chained);
  /// enumerate final logs, calling \p Consume on each.  Enumeration stops
  /// early when \p Consume returns true ("found what I was looking for");
  /// the return value says whether it ever did.
  bool searchSerial(const std::vector<AtomicTx> &Txs,
                    const std::vector<Operation> &Log,
                    const std::function<bool(const AtomicOutcome &)> &Consume);

  /// Convenience: is there any complete big-step of \p C at all?
  bool canRun(const CodePtr &C, const Stack &Sigma,
              const std::vector<Operation> &Log);

private:
  bool bigStepInner(const CodePtr &C, const Stack &Sigma, StateSet S,
                    std::vector<Operation> &Log, size_t OpsUsed,
                    const std::function<bool(const AtomicOutcome &)> &Emit);

  bool searchSerialInner(
      const std::vector<AtomicTx> &Txs, size_t Next, const Stack &Sigma,
      StateSet S, std::vector<Operation> &Log,
      const std::function<bool(const AtomicOutcome &)> &Consume);

  const SequentialSpec &Spec;
  AtomicLimits Limits;
  OpIdSource Ids;
  size_t OutcomesEmitted = 0;
};

} // namespace pushpull

#endif // PUSHPULL_CORE_ATOMIC_H
