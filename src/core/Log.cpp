//===- core/Log.cpp - Local and global operation logs ----------------------===//

#include "core/Log.h"

#include "support/Str.h"

#include <cassert>

using namespace pushpull;

std::string pushpull::toString(LocalKind K) {
  switch (K) {
  case LocalKind::NotPushed:
    return "npshd";
  case LocalKind::Pushed:
    return "pshd";
  case LocalKind::Pulled:
    return "pld";
  }
  return "?";
}

size_t LocalLog::indexOf(OpId Id) const {
  size_t I = 0;
  for (const LocalEntry &E : Chain) {
    if (E.Op.Id == Id)
      return I;
    ++I;
  }
  return npos;
}

std::vector<Operation> LocalLog::ops() const {
  std::vector<Operation> Out;
  Out.reserve(Chain.size());
  for (const LocalEntry &E : Chain)
    Out.push_back(E.Op);
  return Out;
}

std::vector<Operation> LocalLog::opsOmitting(size_t Omit) const {
  std::vector<Operation> Out;
  Out.reserve(Chain.size());
  size_t I = 0;
  for (const LocalEntry &E : Chain) {
    if (I != Omit)
      Out.push_back(E.Op);
    ++I;
  }
  return Out;
}

std::vector<Operation> LocalLog::project(LocalKind K) const {
  std::vector<Operation> Out;
  for (const LocalEntry &E : Chain)
    if (E.Kind == K)
      Out.push_back(E.Op);
  return Out;
}

std::vector<Operation> LocalLog::ownOps() const {
  std::vector<Operation> Out;
  for (const LocalEntry &E : Chain)
    if (E.Kind != LocalKind::Pulled)
      Out.push_back(E.Op);
  return Out;
}

std::vector<size_t> LocalLog::indicesOf(LocalKind K) const {
  std::vector<size_t> Out;
  size_t I = 0;
  for (const LocalEntry &E : Chain) {
    if (E.Kind == K)
      Out.push_back(I);
    ++I;
  }
  return Out;
}

std::string LocalLog::toString() const {
  std::vector<std::string> Parts;
  for (const LocalEntry &E : Chain)
    Parts.push_back(E.Op.toString() + ":" + pushpull::toString(E.Kind));
  return "L[" + join(Parts, ", ") + "]";
}

std::string pushpull::toString(GlobalKind K) {
  switch (K) {
  case GlobalKind::Uncommitted:
    return "gUCmt";
  case GlobalKind::Committed:
    return "gCmt";
  }
  return "?";
}

size_t GlobalLog::indexOf(OpId Id) const {
  size_t I = 0;
  for (const GlobalEntry &E : Chain) {
    if (E.Op.Id == Id)
      return I;
    ++I;
  }
  return npos;
}

std::vector<Operation> GlobalLog::ops() const {
  std::vector<Operation> Out;
  Out.reserve(Chain.size());
  for (const GlobalEntry &E : Chain)
    Out.push_back(E.Op);
  return Out;
}

std::vector<Operation> GlobalLog::project(GlobalKind K) const {
  std::vector<Operation> Out;
  for (const GlobalEntry &E : Chain)
    if (E.Kind == K)
      Out.push_back(E.Op);
  return Out;
}

std::vector<Operation> GlobalLog::minus(const LocalLog &L) const {
  std::vector<Operation> Out;
  for (const GlobalEntry &E : Chain)
    if (!L.contains(E.Op.Id))
      Out.push_back(E.Op);
  return Out;
}

std::vector<Operation> GlobalLog::uncommittedNotIn(const LocalLog &L) const {
  std::vector<Operation> Out;
  for (const GlobalEntry &E : Chain)
    if (E.Kind == GlobalKind::Uncommitted && !L.contains(E.Op.Id))
      Out.push_back(E.Op);
  return Out;
}

std::vector<Operation> GlobalLog::uncommittedNotOwnedBy(TxId T) const {
  std::vector<Operation> Out;
  for (const GlobalEntry &E : Chain)
    if (E.Kind == GlobalKind::Uncommitted && E.Owner != T)
      Out.push_back(E.Op);
  return Out;
}

bool GlobalLog::containsAll(const LocalLog &L) const {
  for (const LocalEntry &E : L)
    if (!contains(E.Op.Id))
      return false;
  return true;
}

void GlobalLog::commitOwned(const LocalLog &L) {
  // Scan first, then flip: mutableAt clones any shared chunk on the path,
  // so batching the reads keeps the common "nothing of ours is here"
  // probes from deep-copying anything.
  size_t I = 0;
  for (const GlobalEntry &E : Chain) {
    if (E.Kind != GlobalKind::Committed && L.contains(E.Op.Id))
      Chain.mutableAt(I).Kind = GlobalKind::Committed;
    ++I;
  }
}

std::string GlobalLog::toString() const {
  std::vector<std::string> Parts;
  for (const GlobalEntry &E : Chain)
    Parts.push_back(E.Op.toString() + ":" + pushpull::toString(E.Kind) +
                    "@t" + std::to_string(E.Owner));
  return "G[" + join(Parts, ", ") + "]";
}
