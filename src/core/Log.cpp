//===- core/Log.cpp - Local and global operation logs ----------------------===//

#include "core/Log.h"

#include "support/Str.h"

#include <cassert>

using namespace pushpull;

std::string pushpull::toString(LocalKind K) {
  switch (K) {
  case LocalKind::NotPushed:
    return "npshd";
  case LocalKind::Pushed:
    return "pshd";
  case LocalKind::Pulled:
    return "pld";
  }
  return "?";
}

void LocalLog::truncate(size_t NewSize) {
  assert(NewSize <= Entries.size() && "truncate growing a log");
  Entries.resize(NewSize);
}

void LocalLog::removeAt(size_t I) {
  assert(I < Entries.size() && "removeAt out of range");
  Entries.erase(Entries.begin() + static_cast<ptrdiff_t>(I));
}

size_t LocalLog::indexOf(OpId Id) const {
  for (size_t I = 0; I < Entries.size(); ++I)
    if (Entries[I].Op.Id == Id)
      return I;
  return npos;
}

std::vector<Operation> LocalLog::ops() const {
  std::vector<Operation> Out;
  Out.reserve(Entries.size());
  for (const LocalEntry &E : Entries)
    Out.push_back(E.Op);
  return Out;
}

std::vector<Operation> LocalLog::opsOmitting(size_t Omit) const {
  std::vector<Operation> Out;
  Out.reserve(Entries.size());
  for (size_t I = 0; I < Entries.size(); ++I)
    if (I != Omit)
      Out.push_back(Entries[I].Op);
  return Out;
}

std::vector<Operation> LocalLog::project(LocalKind K) const {
  std::vector<Operation> Out;
  for (const LocalEntry &E : Entries)
    if (E.Kind == K)
      Out.push_back(E.Op);
  return Out;
}

std::vector<Operation> LocalLog::ownOps() const {
  std::vector<Operation> Out;
  for (const LocalEntry &E : Entries)
    if (E.Kind != LocalKind::Pulled)
      Out.push_back(E.Op);
  return Out;
}

std::vector<size_t> LocalLog::indicesOf(LocalKind K) const {
  std::vector<size_t> Out;
  for (size_t I = 0; I < Entries.size(); ++I)
    if (Entries[I].Kind == K)
      Out.push_back(I);
  return Out;
}

std::string LocalLog::toString() const {
  std::vector<std::string> Parts;
  for (const LocalEntry &E : Entries)
    Parts.push_back(E.Op.toString() + ":" + pushpull::toString(E.Kind));
  return "L[" + join(Parts, ", ") + "]";
}

std::string pushpull::toString(GlobalKind K) {
  switch (K) {
  case GlobalKind::Uncommitted:
    return "gUCmt";
  case GlobalKind::Committed:
    return "gCmt";
  }
  return "?";
}

void GlobalLog::removeAt(size_t I) {
  assert(I < Entries.size() && "removeAt out of range");
  Entries.erase(Entries.begin() + static_cast<ptrdiff_t>(I));
}

size_t GlobalLog::indexOf(OpId Id) const {
  for (size_t I = 0; I < Entries.size(); ++I)
    if (Entries[I].Op.Id == Id)
      return I;
  return npos;
}

std::vector<Operation> GlobalLog::ops() const {
  std::vector<Operation> Out;
  Out.reserve(Entries.size());
  for (const GlobalEntry &E : Entries)
    Out.push_back(E.Op);
  return Out;
}

std::vector<Operation> GlobalLog::project(GlobalKind K) const {
  std::vector<Operation> Out;
  for (const GlobalEntry &E : Entries)
    if (E.Kind == K)
      Out.push_back(E.Op);
  return Out;
}

std::vector<Operation> GlobalLog::minus(const LocalLog &L) const {
  std::vector<Operation> Out;
  for (const GlobalEntry &E : Entries)
    if (!L.contains(E.Op.Id))
      Out.push_back(E.Op);
  return Out;
}

std::vector<Operation> GlobalLog::uncommittedNotIn(const LocalLog &L) const {
  std::vector<Operation> Out;
  for (const GlobalEntry &E : Entries)
    if (E.Kind == GlobalKind::Uncommitted && !L.contains(E.Op.Id))
      Out.push_back(E.Op);
  return Out;
}

std::vector<Operation> GlobalLog::uncommittedNotOwnedBy(TxId T) const {
  std::vector<Operation> Out;
  for (const GlobalEntry &E : Entries)
    if (E.Kind == GlobalKind::Uncommitted && E.Owner != T)
      Out.push_back(E.Op);
  return Out;
}

bool GlobalLog::containsAll(const LocalLog &L) const {
  for (const LocalEntry &E : L.entries())
    if (!contains(E.Op.Id))
      return false;
  return true;
}

void GlobalLog::commitOwned(const LocalLog &L) {
  for (GlobalEntry &E : Entries)
    if (L.contains(E.Op.Id))
      E.Kind = GlobalKind::Committed;
}

std::string GlobalLog::toString() const {
  std::vector<std::string> Parts;
  for (const GlobalEntry &E : Entries)
    Parts.push_back(E.Op.toString() + ":" + pushpull::toString(E.Kind) +
                    "@t" + std::to_string(E.Owner));
  return "G[" + join(Parts, ", ") + "]";
}
