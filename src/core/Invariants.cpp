//===- core/Invariants.cpp - Section 5.3 machine invariants ----------------===//

#include "core/Invariants.h"

using namespace pushpull;

InvariantReport InvariantReport::fail(std::string Which, std::string Detail) {
  InvariantReport R;
  R.Holds = false;
  R.Which = std::move(Which);
  R.Detail = std::move(Detail);
  return R;
}

InvariantReport pushpull::checkILG(const ThreadState &Th,
                                   const GlobalLog &G) {
  for (const LocalEntry &E : Th.L.entries()) {
    bool InG = G.contains(E.Op.Id);
    if (E.Kind == LocalKind::Pushed && !InG)
      return InvariantReport::fail(
          "I_LG", "pshd op " + E.Op.toString() + " missing from G");
    if (E.Kind == LocalKind::NotPushed && InG)
      return InvariantReport::fail(
          "I_LG", "npshd op " + E.Op.toString() + " present in G");
  }
  return InvariantReport::ok();
}

InvariantReport pushpull::checkISlideR(const ThreadState &Th,
                                       const GlobalLog &G,
                                       MoverChecker &Movers) {
  // For every own pushed op1 that is still uncommitted at position i of G,
  // and every later entry op2 of another transaction: op1 <| op2.
  for (size_t I = 0; I < G.size(); ++I) {
    const GlobalEntry &E1 = G[I];
    if (E1.Kind != GlobalKind::Uncommitted)
      continue;
    size_t LI = Th.L.indexOf(E1.Op.Id);
    if (LI == LocalLog::npos || Th.L[LI].Kind != LocalKind::Pushed)
      continue;
    for (size_t J = I + 1; J < G.size(); ++J) {
      const GlobalEntry &E2 = G[J];
      // I_slideR quantifies op2 with no pshd/npshd entry in L — i.e. ops
      // of *other* transactions.  A pld entry does not exempt: something
      // we pulled still has to be movable.
      size_t L2 = Th.L.indexOf(E2.Op.Id);
      if (L2 != LocalLog::npos && Th.L[L2].Kind != LocalKind::Pulled)
        continue;
      if (Movers.leftMover(E1.Op, E2.Op) != Tri::Yes)
        return InvariantReport::fail(
            "I_slideR", E1.Op.toString() + " cannot move right of " +
                            E2.Op.toString());
    }
  }
  return InvariantReport::ok();
}

InvariantReport pushpull::checkIReorderPush(const ThreadState &Th,
                                            const GlobalLog &G,
                                            MoverChecker &Movers) {
  // Own ops op1 (earlier in L) and op2 (later in L), both pushed and
  // uncommitted, that sit inverted in G (op2 before op1) must satisfy
  // op2 <| op1.
  for (size_t GI = 0; GI < G.size(); ++GI) {
    const GlobalEntry &Ga = G[GI];
    if (Ga.Kind != GlobalKind::Uncommitted)
      continue;
    size_t La = Th.L.indexOf(Ga.Op.Id);
    if (La == LocalLog::npos || Th.L[La].Kind == LocalKind::Pulled)
      continue;
    for (size_t GJ = GI + 1; GJ < G.size(); ++GJ) {
      const GlobalEntry &Gb = G[GJ];
      if (Gb.Kind != GlobalKind::Uncommitted)
        continue;
      size_t Lb = Th.L.indexOf(Gb.Op.Id);
      if (Lb == LocalLog::npos || Th.L[Lb].Kind == LocalKind::Pulled)
        continue;
      // G order: Ga before Gb.  Inverted iff local order is Lb before La.
      if (Lb < La && Movers.leftMover(Ga.Op, Gb.Op) != Tri::Yes)
        return InvariantReport::fail(
            "I_reorderPUSH", Ga.Op.toString() +
                                 " pushed before local predecessor " +
                                 Gb.Op.toString() + " but cannot move");
    }
  }
  return InvariantReport::ok();
}

InvariantReport pushpull::checkILocalOrder(const ThreadState &Th,
                                           MoverChecker &Movers) {
  // L = L1 . [op2, npshd] . L2 . [op1, pshd] . L3  =>  op1 <| op2.
  const auto &Es = Th.L.entries();
  for (size_t I = 0; I < Es.size(); ++I) {
    if (Es[I].Kind != LocalKind::NotPushed)
      continue;
    for (size_t J = I + 1; J < Es.size(); ++J) {
      if (Es[J].Kind != LocalKind::Pushed)
        continue;
      if (Movers.leftMover(Es[J].Op, Es[I].Op) != Tri::Yes)
        return InvariantReport::fail(
            "I_localOrder", Es[J].Op.toString() +
                                " (pshd) cannot move left of earlier " +
                                Es[I].Op.toString() + " (npshd)");
    }
  }
  return InvariantReport::ok();
}

InvariantReport pushpull::checkAllInvariants(const ThreadState &Th,
                                             const GlobalLog &G,
                                             MoverChecker &Movers) {
  InvariantReport R = checkILG(Th, G);
  if (!R.Holds)
    return R;
  R = checkISlideR(Th, G, Movers);
  if (!R.Holds)
    return R;
  R = checkIReorderPush(Th, G, Movers);
  if (!R.Holds)
    return R;
  return checkILocalOrder(Th, Movers);
}

/// Own pushed ops in local-log order.
static std::vector<Operation> ownPushedLocalOrder(const ThreadState &Th) {
  return Th.L.project(LocalKind::Pushed);
}

/// G \ |L|_pshd and G n |L|_pshd in G order (the paper notes both preserve
/// the order of their first argument).
static void splitG(const ThreadState &Th, const GlobalLog &G,
                   std::vector<Operation> &NotMine,
                   std::vector<Operation> &Mine) {
  for (const GlobalEntry &E : G.entries()) {
    size_t LI = Th.L.indexOf(E.Op.Id);
    bool MinePushed =
        LI != LocalLog::npos && Th.L[LI].Kind == LocalKind::Pushed;
    (MinePushed ? Mine : NotMine).push_back(E.Op);
  }
}

static std::vector<Operation> concat(std::vector<Operation> A,
                                     const std::vector<Operation> &B) {
  A.insert(A.end(), B.begin(), B.end());
  return A;
}

InvariantReport pushpull::checkISlidePushed(const ThreadState &Th,
                                            const GlobalLog &G,
                                            PrecongruenceChecker &Pre,
                                            const SequentialSpec &) {
  std::vector<Operation> NotMine, Mine;
  splitG(Th, G, NotMine, Mine);
  Tri V = Pre.checkLogs(G.ops(), concat(NotMine, Mine));
  if (V != Tri::Yes)
    return InvariantReport::fail("I_slidePushed",
                                 "G !=< (G\\|L|p).(G n |L|p): " +
                                     toString(V));
  return InvariantReport::ok();
}

InvariantReport pushpull::checkIChronPush(const ThreadState &Th,
                                          const GlobalLog &G,
                                          PrecongruenceChecker &Pre,
                                          const SequentialSpec &) {
  std::vector<Operation> NotMine, MineG;
  splitG(Th, G, NotMine, MineG);
  std::vector<Operation> MineL = ownPushedLocalOrder(Th);
  Tri V = Pre.checkLogs(concat(NotMine, MineG), concat(NotMine, MineL));
  if (V != Tri::Yes)
    return InvariantReport::fail(
        "I_chronPush",
        "(G\\|L|p).(G n |L|p) !=< (G\\|L|p).|L|p: " + toString(V));
  return InvariantReport::ok();
}

InvariantReport pushpull::checkILocalReorder(const ThreadState &Th,
                                             const GlobalLog &G,
                                             PrecongruenceChecker &Pre,
                                             const SequentialSpec &) {
  std::vector<Operation> NotMine, MineG;
  splitG(Th, G, NotMine, MineG);
  std::vector<Operation> Pushed = Th.L.project(LocalKind::Pushed);
  std::vector<Operation> NotPushed = Th.L.project(LocalKind::NotPushed);
  std::vector<Operation> OwnLocalOrder = Th.L.ownOps();

  std::vector<Operation> Lhs =
      concat(concat(NotMine, Pushed), NotPushed);
  std::vector<Operation> Rhs = concat(NotMine, OwnLocalOrder);
  Tri V = Pre.checkLogs(Lhs, Rhs);
  if (V != Tri::Yes)
    return InvariantReport::fail(
        "I_localReorder",
        "(G\\|L|p).|L|p.|L|n !=< (G\\|L|p).|L|pn: " + toString(V));
  return InvariantReport::ok();
}
