//===- core/Spec.cpp - Sequential specifications ---------------------------===//

#include "core/Spec.h"

#include "support/Str.h"

#include <algorithm>
#include <cassert>
#include <mutex>

using namespace pushpull;

StateSet StateSet::of(std::vector<State> States) {
  std::sort(States.begin(), States.end());
  States.erase(std::unique(States.begin(), States.end()), States.end());
  StateSet Out;
  Out.States = std::move(States);
  return Out;
}

bool StateSet::subsetOf(const StateSet &O) const {
  return std::includes(O.States.begin(), O.States.end(), States.begin(),
                       States.end());
}

std::string StateSet::key() const {
  std::string Out;
  for (const State &S : States) {
    Out += S;
    Out += '\x1f';
  }
  return Out;
}

std::string StateSet::toString() const {
  return "{" + join(States, " | ") + "}";
}

//===----------------------------------------------------------------------===//
// StateTable
//===----------------------------------------------------------------------===//

static uint32_t freshTableId() {
  // Start at 1: per-Operation key caches use id 0 for "empty".
  static std::atomic<uint32_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

StateTable::StateTable() : TableId(freshTableId()) {
  // Reserve id 0 for the empty set so emptiness checks are `Id == 0`.
  auto Entry = std::make_unique<SetEntry>();
  SetIds.emplace(std::vector<StateId>{}, EmptySetId);
  Sets.push_back(std::move(Entry));
}

StateId StateTable::internState(const State &S) {
  {
    std::shared_lock<std::shared_mutex> Lock(Mutex);
    auto It = StateIds.find(S);
    if (It != StateIds.end())
      return It->second;
  }
  std::unique_lock<std::shared_mutex> Lock(Mutex);
  auto [It, Fresh] =
      StateIds.try_emplace(S, static_cast<StateId>(StateIds.size()));
  (void)Fresh;
  return It->second;
}

StateSetId StateTable::internSorted(std::vector<StateId> Members,
                                    StateSet &&Canonical) {
  {
    std::shared_lock<std::shared_mutex> Lock(Mutex);
    auto It = SetIds.find(Members);
    if (It != SetIds.end())
      return It->second;
  }
  std::unique_lock<std::shared_mutex> Lock(Mutex);
  auto It = SetIds.find(Members);
  if (It != SetIds.end())
    return It->second;
  StateSetId Id = static_cast<StateSetId>(Sets.size());
  auto Entry = std::make_unique<SetEntry>();
  Entry->Canonical = std::move(Canonical);
  Entry->Members = Members;
  Sets.push_back(std::move(Entry));
  SetIds.emplace(std::move(Members), Id);
  return Id;
}

StateSetId StateTable::internSet(const StateSet &S) {
  return internSet(StateSet(S));
}

StateSetId StateTable::internSet(StateSet &&S) {
  if (S.empty())
    return EmptySetId;
  std::vector<StateId> Members;
  Members.reserve(S.size());
  for (const State &St : S.states())
    Members.push_back(internState(St));
  std::sort(Members.begin(), Members.end());
  return internSorted(std::move(Members), std::move(S));
}

const StateSet &StateTable::setOf(StateSetId Id) const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  assert(Id < Sets.size() && "bad state-set id");
  // The entry is immutable once published and heap-stable, so the
  // reference survives the lock.
  return Sets[Id]->Canonical;
}

const std::vector<StateId> &StateTable::membersOf(StateSetId Id) const {
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  assert(Id < Sets.size() && "bad state-set id");
  return Sets[Id]->Members;
}

bool StateTable::subset(StateSetId A, StateSetId B) const {
  if (A == B || A == EmptySetId)
    return true;
  if (B == EmptySetId)
    return false;
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  assert(A < Sets.size() && B < Sets.size() && "bad state-set id");
  const std::vector<StateId> &MA = Sets[A]->Members;
  const std::vector<StateId> &MB = Sets[B]->Members;
  return std::includes(MB.begin(), MB.end(), MA.begin(), MA.end());
}

OpKeyId StateTable::opKey(const Operation &Op) {
  // Fast path: the operation already carries the key this table assigned.
  OpKeyId Cached;
  if (Op.KeyCache.lookup(TableId, Cached))
    return Cached;
  std::string Key = Op.Call.toString();
  if (Op.Result) {
    Key += '=';
    Key += std::to_string(*Op.Result);
  }
  {
    std::shared_lock<std::shared_mutex> Lock(Mutex);
    auto It = OpKeys.find(Key);
    if (It != OpKeys.end()) {
      Op.KeyCache.store(TableId, It->second);
      return It->second;
    }
  }
  std::unique_lock<std::shared_mutex> Lock(Mutex);
  auto [It, Fresh] =
      OpKeys.try_emplace(std::move(Key), static_cast<OpKeyId>(OpKeys.size()));
  (void)Fresh;
  Op.KeyCache.store(TableId, It->second);
  return It->second;
}

bool StateTable::lookupTransition(StateSetId S, OpKeyId Op, StateSetId &Out) {
  uint64_t Key = (static_cast<uint64_t>(S) << 32) | Op;
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  auto It = Transitions.find(Key);
  if (It == Transitions.end()) {
    TransitionMisses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  TransitionHits.fetch_add(1, std::memory_order_relaxed);
  Out = It->second;
  return true;
}

void StateTable::recordTransition(StateSetId S, OpKeyId Op,
                                  StateSetId Result) {
  uint64_t Key = (static_cast<uint64_t>(S) << 32) | Op;
  std::unique_lock<std::shared_mutex> Lock(Mutex);
  Transitions.emplace(Key, Result);
}

InternStats StateTable::stats() const {
  InternStats Out;
  std::shared_lock<std::shared_mutex> Lock(Mutex);
  Out.StatesInterned = StateIds.size();
  Out.StateSetsInterned = Sets.size();
  Out.OpKeysInterned = OpKeys.size();
  Out.TransitionMemoHits = TransitionHits.load(std::memory_order_relaxed);
  Out.TransitionMemoMisses = TransitionMisses.load(std::memory_order_relaxed);
  return Out;
}

//===----------------------------------------------------------------------===//
// SequentialSpec
//===----------------------------------------------------------------------===//

SequentialSpec::~SequentialSpec() = default;

Tri SequentialSpec::leftMoverHint(const Operation &, const Operation &) const {
  return Tri::Unknown;
}

std::string MethodSig::toString() const {
  return Object + "." + Method + "/" + std::to_string(Arity);
}

std::vector<MethodSig> SequentialSpec::methods() const {
  std::vector<MethodSig> Out;
  for (const Operation &Op : probeOps()) {
    bool Found = false;
    for (MethodSig &S : Out)
      if (S.Object == Op.Call.Object && S.Method == Op.Call.Method) {
        S.HasResult = S.HasResult || Op.Result.has_value();
        Found = true;
        break;
      }
    if (Found)
      continue;
    MethodSig S;
    S.Object = Op.Call.Object;
    S.Method = Op.Call.Method;
    S.Arity = static_cast<unsigned>(Op.Call.Args.size());
    S.HasResult = Op.Result.has_value();
    Out.push_back(std::move(S));
  }
  return Out;
}

StateSet SequentialSpec::initial() const {
  return StateSet::of(initialStates());
}

StateSetId SequentialSpec::initialId() const {
  StateSetId Id = CachedInitial.load(std::memory_order_acquire);
  if (Id != NoInitial)
    return Id;
  // Racing computations intern the same canonical set, so the CAS loser's
  // work is identical and harmless.
  Id = Table.internSet(initial());
  CachedInitial.store(Id, std::memory_order_release);
  return Id;
}

StateSetId SequentialSpec::applyOpId(StateSetId S, const Operation &Op) const {
  return applyOpId(S, Op, Table.opKey(Op));
}

StateSetId SequentialSpec::applyOpId(StateSetId S, const Operation &Op,
                                     OpKeyId Key) const {
  if (Table.setEmpty(S))
    return StateTable::EmptySetId;
  StateSetId Out;
  if (Table.lookupTransition(S, Key, Out))
    return Out;
  const StateSet &In = Table.setOf(S);
  std::vector<State> Next;
  for (const State &St : In.states())
    for (State &Succ : successors(St, Op))
      Next.push_back(std::move(Succ));
  Out = Table.internSet(StateSet::of(std::move(Next)));
  Table.recordTransition(S, Key, Out);
  return Out;
}

StateSetId
SequentialSpec::denoteFromId(StateSetId From,
                             const std::vector<Operation> &Log) const {
  StateSetId S = From;
  for (const Operation &Op : Log) {
    if (Table.setEmpty(S))
      break;
    S = applyOpId(S, Op);
  }
  return S;
}

StateSetId SequentialSpec::denoteId(const std::vector<Operation> &Log) const {
  return denoteFromId(initialId(), Log);
}

StateSet SequentialSpec::applyOp(const StateSet &S, const Operation &Op) const {
  return Table.setOf(applyOpId(Table.internSet(S), Op));
}

StateSet SequentialSpec::denote(const std::vector<Operation> &Log) const {
  return Table.setOf(denoteId(Log));
}

StateSet SequentialSpec::denoteFrom(const StateSet &From,
                                    const std::vector<Operation> &Log) const {
  return Table.setOf(denoteFromId(Table.internSet(From), Log));
}

bool SequentialSpec::allowed(const std::vector<Operation> &Log) const {
  return !Table.setEmpty(denoteId(Log));
}

bool SequentialSpec::allowsFrom(const StateSet &SOfLog,
                                const Operation &Op) const {
  return !Table.setEmpty(applyOpId(Table.internSet(SOfLog), Op));
}

std::vector<Completion>
SequentialSpec::completionsFrom(const StateSet &S,
                                const ResolvedCall &Call) const {
  std::vector<Completion> Out;
  for (const State &St : S.states())
    for (const Completion &C : completions(St, Call))
      if (std::find(Out.begin(), Out.end(), C) == Out.end())
        Out.push_back(C);
  return Out;
}
