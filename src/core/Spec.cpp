//===- core/Spec.cpp - Sequential specifications ---------------------------===//

#include "core/Spec.h"

#include "support/Str.h"

#include <algorithm>

using namespace pushpull;

StateSet StateSet::of(std::vector<State> States) {
  std::sort(States.begin(), States.end());
  States.erase(std::unique(States.begin(), States.end()), States.end());
  StateSet Out;
  Out.States = std::move(States);
  return Out;
}

bool StateSet::subsetOf(const StateSet &O) const {
  return std::includes(O.States.begin(), O.States.end(), States.begin(),
                       States.end());
}

std::string StateSet::key() const {
  std::string Out;
  for (const State &S : States) {
    Out += S;
    Out += '\x1f';
  }
  return Out;
}

std::string StateSet::toString() const {
  return "{" + join(States, " | ") + "}";
}

SequentialSpec::~SequentialSpec() = default;

Tri SequentialSpec::leftMoverHint(const Operation &, const Operation &) const {
  return Tri::Unknown;
}

StateSet SequentialSpec::initial() const {
  return StateSet::of(initialStates());
}

StateSet SequentialSpec::applyOp(const StateSet &S, const Operation &Op) const {
  std::vector<State> Out;
  for (const State &St : S.states())
    for (State &Succ : successors(St, Op))
      Out.push_back(std::move(Succ));
  return StateSet::of(std::move(Out));
}

StateSet SequentialSpec::denote(const std::vector<Operation> &Log) const {
  return denoteFrom(initial(), Log);
}

StateSet SequentialSpec::denoteFrom(const StateSet &From,
                                    const std::vector<Operation> &Log) const {
  StateSet S = From;
  for (const Operation &Op : Log) {
    if (S.empty())
      break;
    S = applyOp(S, Op);
  }
  return S;
}

bool SequentialSpec::allowed(const std::vector<Operation> &Log) const {
  return !denote(Log).empty();
}

bool SequentialSpec::allowsFrom(const StateSet &SOfLog,
                                const Operation &Op) const {
  return !applyOp(SOfLog, Op).empty();
}

std::vector<Completion>
SequentialSpec::completionsFrom(const StateSet &S,
                                const ResolvedCall &Call) const {
  std::vector<Completion> Out;
  for (const State &St : S.states())
    for (const Completion &C : completions(St, Call))
      if (std::find(Out.begin(), Out.end(), C) == Out.end())
        Out.push_back(C);
  return Out;
}
