//===- core/Machine.cpp - The PUSH/PULL machine -----------------------------===//

#include "core/Machine.h"

#include "core/Invariants.h"
#include "lang/Printer.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace pushpull;

PushPullMachine::PushPullMachine(const SequentialSpec &Spec,
                                 MoverChecker &Movers, MachineConfig Config)
    : Spec(&Spec), Movers(&Movers), Config(Config) {}

TxId PushPullMachine::addThread(std::vector<CodePtr> Transactions) {
  ThreadState T;
  T.Tid = static_cast<TxId>(Threads.size());
  for (CodePtr &C : Transactions) {
    assert(C && "null transaction body");
    // Accept either `tx { body }` or a bare body.
    T.Pending.push_back(C->kind() == CodeKind::Tx ? C->body() : C);
  }
  Threads.push_back(std::move(T));
  return Threads.back().Tid;
}

void PushPullMachine::queueTransactionsFront(
    TxId T, std::vector<CodePtr> Transactions) {
  ThreadState &Th = threadMut(T);
  for (size_t I = Transactions.size(); I > 0; --I) {
    CodePtr C = Transactions[I - 1];
    assert(C && "null transaction body");
    Th.Pending.insertFront(C->kind() == CodeKind::Tx ? C->body() : C);
  }
}

const ThreadState &PushPullMachine::thread(TxId T) const {
  assert(T < Threads.size() && "bad thread id");
  return Threads[T];
}

ThreadState &PushPullMachine::threadMut(TxId T) {
  assert(T < Threads.size() && "bad thread id");
  return Threads[T];
}

bool PushPullMachine::beginTx(TxId T) {
  ThreadState &Th = threadMut(T);
  if (Th.InTx || Th.Pending.empty())
    return false;
  Th.Code = Th.Pending.front();
  Th.Pending.eraseFront();
  Th.OrigCode = Th.Code;
  Th.OrigSigma = Th.Sigma;
  Th.InTx = true;
  assert(Th.L.empty() && "local log nonempty outside a transaction");
  return true;
}

void PushPullMachine::noteCriterion(CriterionReports &Rs, const char *Name,
                                    Tri V, const char *Detail) const {
  // A clean pass is pure bookkeeping: nothing on the hot path reads it, so
  // it is only materialized when the configuration records audits.  Failing
  // and Unknown reports are always kept — firstFailure() and the tests'
  // failedOn() are defined by them.
  if (V == Tri::Yes && !Config.RecordAudit)
    return;
  Rs.push_back(criterion(Name, V, Detail));
}

template <typename Fn>
void PushPullMachine::evalCriterion(CriterionReports &Rs, const char *Name,
                                    Fn &&Thunk, const char *Detail) const {
  if (!Config.DisabledCriterion.empty() && Config.DisabledCriterion == Name) {
    // Fault injection for the fuzzer's self-test: pretend the criterion
    // holds.  See MachineConfig::DisabledCriterion.
    if (Config.RecordAudit)
      Rs.push_back(criterion(Name, Tri::Yes, "disabled by test hook"));
    return;
  }
  if (Config.Level == ValidationLevel::Trusting) {
    // Trusting mode does not spend time on the semantic criteria; report
    // them as unchecked-but-accepted.
    if (Config.RecordAudit)
      Rs.push_back(criterion(Name, Tri::Yes, "unchecked (trusting mode)"));
    return;
  }
  noteCriterion(Rs, Name, Thunk(), Detail);
}

bool PushPullMachine::reportsPass(const CriterionReports &Rs) const {
  for (const CriterionReport &R : Rs) {
    if (R.Verdict == Tri::No)
      return false;
    if (R.Verdict == Tri::Unknown && Config.UnknownIsFailure)
      return false;
  }
  return true;
}

void PushPullMachine::recordAudit(TxId T, const Operation *Op,
                                  const RuleResult &R) {
  if (!Config.RecordAudit)
    return;
  AuditEntry E;
  E.Tid = T;
  if (Op)
    E.OpText = Op->toString();
  E.Result = R;
  Audit.push_back(std::move(E));
}

std::string PushPullMachine::auditToString() const {
  std::string Out;
  for (const AuditEntry &E : Audit) {
    Out += "t" + std::to_string(E.Tid) + ": ";
    if (!E.OpText.empty())
      Out += E.OpText + " ";
    Out += E.Result.toString() + "\n";
  }
  return Out;
}

void PushPullMachine::recordEvent(TxId T, RuleKind K, const Operation *Op,
                                  bool PulledUncommitted) {
  if (Config.RecordTrace) {
    TraceEvent E;
    E.Tid = T;
    E.Rule = K;
    if (Op) {
      E.Id = Op->Id;
      // The rendered text is a per-event heap string nothing on the hot
      // path reads; trace printing falls back to "#id" without it.
      if (Config.RecordAudit)
        E.OpText = Op->toString();
    }
    E.PulledUncommitted = PulledUncommitted;
    Trace.record(std::move(E));
  }
  // recordEvent runs after the rule's mutation is complete, so this is
  // the "after every rule firing" point differential checkers hook.
  if (Config.OnRuleApplied)
    Config.OnRuleApplied(*this, K, T);
}

void PushPullMachine::checkInvariantsAfterStep(const char *Rule) {
  if (Config.Level != ValidationLevel::Full)
    return;
  for (const ThreadState &Th : Threads) {
    InvariantReport R = checkAllInvariants(Th, G, *Movers);
    if (!R.Holds) {
      // Full mode is a hard runtime guarantee, independent of NDEBUG: a
      // broken Section 5.3 invariant means the machine itself is wrong,
      // and continuing would corrupt every downstream verdict.
      std::fprintf(stderr,
                   "pushpull: machine invariant %s violated after %s on "
                   "t%u: %s\n",
                   R.Which.c_str(), Rule, Th.Tid, R.Detail.c_str());
      std::abort();
    }
  }
}

StateSetId PushPullMachine::localViewId(const ThreadState &Th) const {
  StateSetId S = Spec->initialId();
  for (const LocalEntry &E : Th.L.entries()) {
    if (S == StateTable::EmptySetId)
      break;
    S = Spec->applyOpId(S, E.Op);
  }
  return S;
}

StateSetId PushPullMachine::globalViewId(const Operation *Extra,
                                         size_t OmitIdx) const {
  StateSetId S = Spec->initialId();
  size_t I = 0;
  for (const GlobalEntry &E : G.entries()) {
    if (I++ == OmitIdx)
      continue;
    if (S == StateTable::EmptySetId)
      return S;
    S = Spec->applyOpId(S, E.Op);
  }
  if (Extra && S != StateTable::EmptySetId)
    S = Spec->applyOpId(S, *Extra);
  return S;
}

std::vector<AppChoice> PushPullMachine::appChoices(TxId T) const {
  const ThreadState &Th = thread(T);
  std::vector<AppChoice> Out;
  if (!Th.InTx)
    return Out;
  const StateSet &View = Spec->setOf(localViewId(Th));
  const std::vector<StepItem> &Steps = step(Th.Code);
  for (size_t I = 0; I < Steps.size(); ++I) {
    auto Call = Steps[I].Call.resolve(Th.Sigma);
    if (!Call)
      continue;
    AppChoice C;
    C.Completions = Spec->completionsFrom(View, *Call);
    if (C.Completions.empty())
      continue; // Method not allowed under the local view at all.
    C.Item = Steps[I];
    C.StepIdx = I;
    Out.push_back(std::move(C));
  }
  return Out;
}

RuleResult PushPullMachine::app(TxId T, size_t StepIdx, size_t CompIdx) {
  ThreadState &Th = threadMut(T);
  if (!Th.InTx)
    return RuleResult::malformed(RuleKind::App, "no transaction in progress");

  const std::vector<StepItem> &Steps = step(Th.Code);
  if (StepIdx >= Steps.size())
    return RuleResult::malformed(RuleKind::App, "step choice out of range");
  const StepItem &It = Steps[StepIdx];

  auto Call = It.Call.resolve(Th.Sigma);
  if (!Call)
    return RuleResult::malformed(RuleKind::App,
                                 "unbound variable in method arguments");

  // APP criterion (ii): the local log allows the operation; we realize it
  // by drawing the completion from the local view's allowed completions.
  const StateSet &View = Spec->setOf(localViewId(Th));
  std::vector<Completion> Comps = Spec->completionsFrom(View, *Call);
  CriterionReports Rs;
  noteCriterion(Rs, "APP criterion (i)", Tri::Yes,
                "(m, c') drawn from step(c)");
  if (CompIdx >= Comps.size()) {
    noteCriterion(Rs, "APP criterion (ii)", Tri::No,
                  "local log does not allow the operation (no "
                  "such completion)");
    return RuleResult::rejected(RuleKind::App, std::move(Rs));
  }
  noteCriterion(Rs, "APP criterion (ii)", Tri::Yes,
                "completion allowed by the local log");

  Operation Op;
  Op.Call = *Call;
  Op.Pre = Th.Sigma;
  Op.Result = Comps[CompIdx].Result;
  Stack Post = Th.Sigma;
  if (It.Call.ResultVar && Op.Result)
    Post.set(*It.Call.ResultVar, *Op.Result);
  Op.Post = Post;
  Op.Id = Ids.fresh();
  if (Config.RecordAudit)
    Rs.push_back(criterion("APP criterion (iii)", Tri::Yes,
                           "id #" + std::to_string(Op.Id) + " is fresh"));

  LocalEntry E;
  E.Op = Op;
  E.Kind = LocalKind::NotPushed;
  E.SavedCode = Th.Code; // The pre-code c1, so UNAPP can rewind to it.
  Th.L.append(std::move(E));
  Th.Sigma = std::move(Post);
  Th.Code = It.Rest;

  recordEvent(T, RuleKind::App, &Op);
  checkInvariantsAfterStep("APP");
  RuleResult Out = RuleResult::applied(RuleKind::App, std::move(Rs));
  recordAudit(T, &Op, Out);
  return Out;
}

RuleResult PushPullMachine::unapp(TxId T) {
  ThreadState &Th = threadMut(T);
  if (!Th.InTx)
    return RuleResult::malformed(RuleKind::UnApp,
                                 "no transaction in progress");
  if (Th.L.empty())
    return RuleResult::malformed(RuleKind::UnApp, "local log is empty");

  const LocalEntry &Last = Th.L[Th.L.size() - 1];
  if (Last.Kind != LocalKind::NotPushed)
    return RuleResult::rejected(
        RuleKind::UnApp,
        {criterion("UNAPP flag check", Tri::No,
                   "last local entry is " + pushpull::toString(Last.Kind) +
                       ", not npshd")});

  Operation Op = Last.Op;
  Th.Sigma = Last.Op.Pre;    // Recall the previous local stack...
  Th.Code = Last.SavedCode;  // ...and the previous code.
  Th.L.truncate(Th.L.size() - 1);

  recordEvent(T, RuleKind::UnApp, &Op);
  checkInvariantsAfterStep("UNAPP");
  RuleResult Out = RuleResult::applied(RuleKind::UnApp);
  recordAudit(T, &Op, Out);
  return Out;
}

RuleResult PushPullMachine::push(TxId T, size_t LocalIdx) {
  ThreadState &Th = threadMut(T);
  if (!Th.InTx)
    return RuleResult::malformed(RuleKind::Push, "no transaction in progress");
  if (LocalIdx >= Th.L.size())
    return RuleResult::malformed(RuleKind::Push, "no such local-log entry");
  const LocalEntry &E = Th.L[LocalIdx];
  if (E.Kind != LocalKind::NotPushed)
    return RuleResult::rejected(
        RuleKind::Push, {criterion("PUSH flag check", Tri::No,
                                   "entry is not npshd")});
  const Operation &Op = E.Op;

  CriterionReports Rs;

  // PUSH criterion (i): op can move to the left of every unpushed
  // operation that precedes it in the local log ("publish op as if it was
  // the next thing to happen after the operations published thus far").
  // When operations are pushed in the order they were applied this is
  // vacuous, which is the paper's remark that existing implementations
  // satisfy it trivially; it bites only for out-of-order pushes (Sec. 7).
  evalCriterion(Rs, "PUSH criterion (i)", [&] {
    Tri V = Tri::Yes;
    size_t I = 0;
    for (const LocalEntry &U : Th.L.entries()) {
      if (I++ >= LocalIdx)
        break;
      if (U.Kind != LocalKind::NotPushed)
        continue;
      V = triAnd(V, Movers->leftMover(Op, U.Op));
      if (V == Tri::No)
        break;
    }
    return V;
  });

  // PUSH criterion (ii): every uncommitted operation of *another*
  // transaction in G can move to the right of op (x <| op).  "Another
  // transaction" is by ownership: an uncommitted operation we pulled into
  // our view still constrains us — exempting it would let a transaction
  // pull, publish around, unpull, and commit before its dependency,
  // breaking the owner's I_slideR (Lemma 5.8) and with it the commit-order
  // serialization witness.
  evalCriterion(Rs, "PUSH criterion (ii)", [&] {
    Tri V = Tri::Yes;
    for (const GlobalEntry &GE : G.entries()) {
      if (GE.Kind != GlobalKind::Uncommitted || GE.Owner == T)
        continue;
      V = triAnd(V, Movers->leftMover(GE.Op, Op));
      if (V == Tri::No)
        break;
    }
    return V;
  });

  // PUSH criterion (iii): G . op is allowed by the sequential spec.
  evalCriterion(Rs, "PUSH criterion (iii)", [&] {
    return triOf(globalViewId(&Op) != StateTable::EmptySetId);
  });

  if (!reportsPass(Rs))
    return RuleResult::rejected(RuleKind::Push, std::move(Rs));

  // Build the global entry before setKind: the CoW flag flip may clone the
  // chunk holding E, and Op must be read from the original.
  GlobalEntry GE;
  GE.Op = Op;
  GE.Kind = GlobalKind::Uncommitted;
  GE.Owner = T;
  Th.L.setKind(LocalIdx, LocalKind::Pushed);
  G.append(std::move(GE));

  recordEvent(T, RuleKind::Push, &Op);
  checkInvariantsAfterStep("PUSH");
  RuleResult Out = RuleResult::applied(RuleKind::Push, std::move(Rs));
  recordAudit(T, &Op, Out);
  return Out;
}

RuleResult PushPullMachine::unpush(TxId T, size_t LocalIdx) {
  ThreadState &Th = threadMut(T);
  if (!Th.InTx)
    return RuleResult::malformed(RuleKind::UnPush,
                                 "no transaction in progress");
  if (LocalIdx >= Th.L.size())
    return RuleResult::malformed(RuleKind::UnPush, "no such local-log entry");
  const LocalEntry &E = Th.L[LocalIdx];
  if (E.Kind != LocalKind::Pushed)
    return RuleResult::rejected(
        RuleKind::UnPush, {criterion("UNPUSH flag check", Tri::No,
                                     "entry is not pshd")});
  // Copy: the setKind below may clone the chunk that holds E.
  Operation Op = E.Op;

  size_t GIdx = G.indexOf(Op.Id);
  if (GIdx == GlobalLog::npos)
    return RuleResult::malformed(RuleKind::UnPush,
                                 "pshd entry missing from G (I_LG broken)");
  if (G[GIdx].Kind == GlobalKind::Committed)
    return RuleResult::rejected(
        RuleKind::UnPush, {criterion("UNPUSH uncommitted check", Tri::No,
                                     "cannot unpush a committed operation")});

  CriterionReports Rs;

  // UNPUSH criterion (i) (gray: "not strictly necessary because we can
  // prove that it must hold whenever an UNPUSH occurs"): nothing pushed
  // after op depends on it — op can move right past every later entry of
  // other transactions.
  if (Config.EnforceGrayCriteria) {
    evalCriterion(Rs, "UNPUSH criterion (i)", [&] {
      Tri V = Tri::Yes;
      size_t I = 0;
      for (const GlobalEntry &Later : G.entries()) {
        if (I++ <= GIdx)
          continue;
        if (Th.L.contains(Later.Op.Id))
          continue;
        V = triAnd(V, Movers->leftMover(Op, Later.Op));
        if (V == Tri::No)
          break;
      }
      return V;
    });
  }

  // UNPUSH criterion (ii): everything pushed chronologically after op
  // could still have been pushed had op not been — i.e. G with op removed
  // is still allowed.
  evalCriterion(Rs, "UNPUSH criterion (ii)", [&] {
    return triOf(globalViewId(nullptr, GIdx) != StateTable::EmptySetId);
  });

  if (!reportsPass(Rs))
    return RuleResult::rejected(RuleKind::UnPush, std::move(Rs));

  Th.L.setKind(LocalIdx, LocalKind::NotPushed);
  G.removeAt(GIdx);

  recordEvent(T, RuleKind::UnPush, &Op);
  checkInvariantsAfterStep("UNPUSH");
  RuleResult Out = RuleResult::applied(RuleKind::UnPush, std::move(Rs));
  recordAudit(T, &Op, Out);
  return Out;
}

RuleResult PushPullMachine::pull(TxId T, size_t GlobalIdx) {
  ThreadState &Th = threadMut(T);
  if (!Th.InTx)
    return RuleResult::malformed(RuleKind::Pull, "no transaction in progress");
  if (GlobalIdx >= G.size())
    return RuleResult::malformed(RuleKind::Pull, "no such global-log entry");
  const GlobalEntry &GE = G[GlobalIdx];
  const Operation &Op = GE.Op;

  CriterionReports Rs;

  // PULL criterion (i): op was not pulled (or pushed) before.
  noteCriterion(Rs, "PULL criterion (i)", triOf(!Th.L.contains(Op.Id)),
                "operation must not already be in L");

  // PULL criterion (ii): the local log allows op.
  evalCriterion(Rs, "PULL criterion (ii)", [&] {
    return triOf(Spec->applyOpId(localViewId(Th), Op) !=
                 StateTable::EmptySetId);
  });

  // PULL criterion (iii) (gray): everything the transaction has done
  // locally can move to the right of op, so it can behave as if the pulled
  // effect preceded it.
  if (Config.EnforceGrayCriteria) {
    evalCriterion(Rs, "PULL criterion (iii)", [&] {
      Tri V = Tri::Yes;
      for (const LocalEntry &E : Th.L.entries()) {
        if (E.Kind == LocalKind::Pulled)
          continue;
        V = triAnd(V, Movers->leftMover(E.Op, Op));
        if (V == Tri::No)
          break;
      }
      return V;
    });
  }

  if (!reportsPass(Rs))
    return RuleResult::rejected(RuleKind::Pull, std::move(Rs));

  bool WasUncommitted = GE.Kind == GlobalKind::Uncommitted;
  LocalEntry E;
  E.Op = Op;
  E.Kind = LocalKind::Pulled;
  Th.L.append(std::move(E));

  recordEvent(T, RuleKind::Pull, &Op, WasUncommitted);
  checkInvariantsAfterStep("PULL");
  RuleResult Out = RuleResult::applied(RuleKind::Pull, std::move(Rs));
  recordAudit(T, &Op, Out);
  return Out;
}

RuleResult PushPullMachine::unpull(TxId T, size_t LocalIdx) {
  ThreadState &Th = threadMut(T);
  if (!Th.InTx)
    return RuleResult::malformed(RuleKind::UnPull,
                                 "no transaction in progress");
  if (LocalIdx >= Th.L.size())
    return RuleResult::malformed(RuleKind::UnPull, "no such local-log entry");
  const LocalEntry &E = Th.L[LocalIdx];
  if (E.Kind != LocalKind::Pulled)
    return RuleResult::rejected(
        RuleKind::UnPull, {criterion("UNPULL flag check", Tri::No,
                                     "entry is not pld")});
  Operation Op = E.Op;

  CriterionReports Rs;

  // UNPULL criterion (i): the local log is allowed without op (the
  // transaction did nothing that depended on it).
  evalCriterion(Rs, "UNPULL criterion (i)", [&] {
    StateSetId S = Spec->initialId();
    size_t I = 0;
    for (const LocalEntry &Rest : Th.L.entries()) {
      if (I++ == LocalIdx)
        continue;
      if (S == StateTable::EmptySetId)
        break;
      S = Spec->applyOpId(S, Rest.Op);
    }
    return triOf(S != StateTable::EmptySetId);
  });

  if (!reportsPass(Rs))
    return RuleResult::rejected(RuleKind::UnPull, std::move(Rs));

  Th.L.removeAt(LocalIdx);

  recordEvent(T, RuleKind::UnPull, &Op);
  checkInvariantsAfterStep("UNPULL");
  RuleResult Out = RuleResult::applied(RuleKind::UnPull, std::move(Rs));
  recordAudit(T, &Op, Out);
  return Out;
}

RuleResult PushPullMachine::commit(TxId T) {
  ThreadState &Th = threadMut(T);
  if (!Th.InTx)
    return RuleResult::malformed(RuleKind::Commit,
                                 "no transaction in progress");

  CriterionReports Rs;

  // CMT criterion (i): there is a path through the remaining code to skip.
  noteCriterion(Rs, "CMT criterion (i)", triOf(fin(Th.Code)),
                "fin(c) must hold");

  // CMT criterion (ii): L c= G — all own operations have been pushed (and
  // no pulled operation has vanished from G via its owner's UNPUSH).
  {
    bool AllPushed = true;
    for (const LocalEntry &E : Th.L.entries())
      if (E.Kind == LocalKind::NotPushed) {
        AllPushed = false;
        break;
      }
    bool Contained = G.containsAll(Th.L);
    noteCriterion(
        Rs, "CMT criterion (ii)", triOf(AllPushed && Contained),
        AllPushed ? (Contained ? "" : "a pulled operation is no longer in G")
                  : "unpushed operations remain in L");
  }

  // CMT criterion (iii): every pulled operation is committed in G.
  noteCriterion(Rs, "CMT criterion (iii)", [&] {
    for (const LocalEntry &E : Th.L.entries()) {
      if (E.Kind != LocalKind::Pulled)
        continue;
      bool CommittedInG = false;
      for (const GlobalEntry &GE : G.entries())
        if (GE.Op.Id == E.Op.Id) {
          CommittedInG = GE.Kind == GlobalKind::Committed;
          break;
        }
      if (!CommittedInG)
        return Tri::No;
    }
    return Tri::Yes;
  }(), "pulled operations must belong to committed transactions");

  if (!reportsPass(Rs))
    return RuleResult::rejected(RuleKind::Commit, std::move(Rs));

  // CMT criterion (iv): G2 = cmt(G1, L1, G2) — flip own entries to gCmt.
  G.commitOwned(Th.L);
  noteCriterion(Rs, "CMT criterion (iv)", Tri::Yes,
                "own global entries marked gCmt");

  CommittedTx Rec;
  Rec.Tid = T;
  Rec.Body = Th.OrigCode;
  Rec.Sigma = Th.OrigSigma;
  Rec.FinalSigma = Th.Sigma;
  Rec.CommitSeq = CommitSeq++;
  Committed.push_back(std::move(Rec));
  CommittedKeyCache.reset();

  Th.InTx = false;
  Th.Code = nullptr;
  Th.OrigCode = nullptr;
  Th.L = LocalLog();
  ++Th.Commits;

  recordEvent(T, RuleKind::Commit, nullptr);
  checkInvariantsAfterStep("CMT");
  RuleResult Out = RuleResult::applied(RuleKind::Commit, std::move(Rs));
  recordAudit(T, nullptr, Out);
  return Out;
}

namespace {

/// Fixed-width little-endian field appenders for configKey.  Binary fields
/// are only ever emitted where the decoder position is unambiguous (after a
/// count prefix or at a fixed offset), so stray separator-looking bytes
/// inside them cannot create collisions.
inline void key32(std::string &Out, uint32_t V) {
  char B[4];
  std::memcpy(B, &V, 4);
  Out.append(B, 4);
}

inline void key64(std::string &Out, uint64_t V) {
  char B[8];
  std::memcpy(B, &V, 8);
  Out.append(B, 8);
}

inline void keyStack(std::string &Out, const Stack &S) {
  key32(Out, static_cast<uint32_t>(S.size()));
  for (const auto &[Var, Val] : S.entries()) {
    Out += Var; // Identifier text: never contains NUL.
    Out.push_back('\0');
    key64(Out, static_cast<uint64_t>(Val));
  }
}

/// One thread's key section: {c, sigma, L, |Pending|}.  Label-independent
/// — thread identity enters the key only through section order and the
/// G-section owner labels — so the symmetry minimization renders each
/// section once and reassembles per permutation.
void renderThreadKey(std::string &Out, StateTable &Table,
                     const ThreadState &Th, const SmallVec<OpId, 16> &GIds) {
  auto gIndexOf = [&GIds](OpId Id) -> uint32_t {
    for (size_t I = 0; I < GIds.size(); ++I)
      if (GIds[I] == Id)
        return static_cast<uint32_t>(I);
    return UINT32_MAX;
  };
  if (Th.InTx) {
    Out += 'T';
    Out += Th.Code->printed(); // Program text: never contains NUL.
    Out.push_back('\0');
  } else {
    Out += 'i';
  }
  keyStack(Out, Th.Sigma);
  key32(Out, static_cast<uint32_t>(Th.L.size()));
  for (const LocalEntry &E : Th.L.entries()) {
    key32(Out, Table.opKey(E.Op));
    Out += E.Kind == LocalKind::NotPushed ? 'n'
           : E.Kind == LocalKind::Pushed  ? 'p'
                                          : 'd';
    // Position of this op in G links L and G structurally.
    key32(Out, gIndexOf(E.Op.Id));
  }
  key32(Out, static_cast<uint32_t>(Th.Pending.size()));
}

} // namespace

std::string
PushPullMachine::configKey(const std::vector<TxId> *LabelOf,
                           const CommutativityOracle *Commut,
                           SmallVec<uint32_t, 16> *GOrderOut) const {
  // Operations are rendered by their interned (Call, Result) key id:
  // id equality is exactly canonical-text equality, so the key partitions
  // configurations the same way a fully textual rendering would.  All
  // variable-length sections are count-prefixed, which keeps the encoding
  // injective without any decimal formatting (this runs once per explored
  // successor; the string machinery used to dominate exploration).
  StateTable &Table = Spec->table();
  // One G sweep up front: the entry ids double as the L->G link table,
  // turning per-local-entry G.indexOf chain walks into probes of a
  // contiguous array.  With a commutativity oracle the sweep is rendered
  // in the canonical quotient order instead of append order — building
  // GIds in that order automatically re-expresses every L->G link in it.
  SmallVec<GKeyView, 16> Views;
  for (const GlobalEntry &E : G.entries()) {
    GKeyView V;
    V.OpKey = Table.opKey(E.Op);
    V.Kind = E.Kind == GlobalKind::Committed ? 'C' : 'U';
    V.OwnerLabel = LabelOf ? (*LabelOf)[E.Owner] : E.Owner;
    Views.push_back(V);
  }
  SmallVec<uint32_t, 16> Order;
  if (Commut)
    canonicalGOrder(Views.begin(), Views.size(), *Commut, Order);
  else
    for (size_t I = 0; I < Views.size(); ++I)
      Order.push_back(static_cast<uint32_t>(I));

  SmallVec<OpId, 16> GIds;
  for (size_t J = 0; J < Order.size(); ++J)
    GIds.push_back(G.entries()[Order[J]].Op.Id);
  std::string Out;
  Out.reserve(64 + 48 * Threads.size() + 9 * GIds.size());
  if (!LabelOf) {
    for (const ThreadState &Th : Threads)
      renderThreadKey(Out, Table, Th, GIds);
  } else {
    // Slot l holds the thread relabeled to l.
    SmallVec<uint32_t, 8> AtLabel;
    AtLabel.resize(Threads.size());
    for (size_t T = 0; T < Threads.size(); ++T)
      AtLabel[(*LabelOf)[T]] = static_cast<uint32_t>(T);
    for (size_t L = 0; L < AtLabel.size(); ++L)
      renderThreadKey(Out, Table, Threads[AtLabel[L]], GIds);
  }
  key32(Out, static_cast<uint32_t>(GIds.size()));
  for (size_t J = 0; J < Order.size(); ++J) {
    const GKeyView &V = Views[Order[J]];
    key32(Out, V.OpKey);
    Out += V.Kind;
    key32(Out, V.OwnerLabel);
  }
  appendCommittedKey(Out);
  if (GOrderOut)
    *GOrderOut = Order;
  return Out;
}

/// Append the committed-content section (see configKey).  It is
/// relabeling-invariant and only ever extended by CMT, so it is rendered
/// once per commit and shared across copies (under symmetry every
/// permutation re-reads it, and the explorer calls configKey far more
/// often than it commits).
void PushPullMachine::appendCommittedKey(std::string &Out) const {
  if (Committed.view().empty())
    return;
  if (!CommittedKeyCache) {
    std::string C;
    for (const CommittedTx &Ct : Committed) {
      C += '\x03';
      C += Ct.Body->printed();
      C.push_back('\0');
      keyStack(C, Ct.Sigma);
      keyStack(C, Ct.FinalSigma);
    }
    CommittedKeyCache = std::make_shared<const std::string>(std::move(C));
  }
  Out += *CommittedKeyCache;
}

std::string PushPullMachine::configKeyCanonical(
    const std::vector<std::vector<TxId>> &Perms, size_t &BestPerm,
    const CommutativityOracle *Commut,
    SmallVec<uint32_t, 16> *GOrderOut) const {
  // With a commutativity oracle the G quotient order depends on the owner
  // relabeling (owner labels are part of the normal form's label order),
  // so the render-once assembly below does not apply: render each
  // permutation in full and keep the minimum.
  if (Commut) {
    std::string Best;
    SmallVec<uint32_t, 16> CurOrder, BestOrder;
    BestPerm = 0;
    for (size_t Pi = 0; Pi < Perms.size(); ++Pi) {
      std::string Cur = configKey(&Perms[Pi], Commut, &CurOrder);
      if (Pi == 0 || Cur < Best) {
        Best = std::move(Cur);
        BestOrder = CurOrder;
        BestPerm = Pi;
      }
    }
    if (GOrderOut)
      *GOrderOut = BestOrder;
    return Best;
  }
  if (GOrderOut) {
    GOrderOut->clear();
    for (size_t I = 0; I < G.entries().size(); ++I)
      GOrderOut->push_back(static_cast<uint32_t>(I));
  }
  // The thread sections and the G entries' (opKey, kind) prefix are
  // label-independent; only the section order and the G owner labels vary
  // across the symmetry group.  Render every invariant piece once, then
  // assemble one candidate per permutation — the assembly is pure memcpy
  // against a full re-render per permutation.
  StateTable &Table = Spec->table();
  SmallVec<OpId, 16> GIds;
  SmallVec<uint32_t, 16> GOpKeys;
  for (const GlobalEntry &E : G.entries()) {
    GIds.push_back(E.Op.Id);
    GOpKeys.push_back(Table.opKey(E.Op));
  }
  SmallVec<std::string, 4> Sections;
  for (const ThreadState &Th : Threads) {
    std::string S;
    S.reserve(48);
    renderThreadKey(S, Table, Th, GIds);
    Sections.push_back(std::move(S));
  }

  std::string Best, Cur;
  BestPerm = 0;
  SmallVec<uint32_t, 8> AtLabel;
  AtLabel.resize(Threads.size());
  for (size_t Pi = 0; Pi < Perms.size(); ++Pi) {
    const std::vector<TxId> &LabelOf = Perms[Pi];
    for (size_t T = 0; T < Threads.size(); ++T)
      AtLabel[LabelOf[T]] = static_cast<uint32_t>(T);
    Cur.clear();
    Cur.reserve(Best.empty() ? 64 + 48 * Threads.size() + 9 * GIds.size()
                             : Best.size());
    for (size_t L = 0; L < AtLabel.size(); ++L)
      Cur += Sections[AtLabel[L]];
    key32(Cur, static_cast<uint32_t>(GIds.size()));
    size_t I = 0;
    for (const GlobalEntry &E : G.entries()) {
      key32(Cur, GOpKeys[I++]);
      Cur += E.Kind == GlobalKind::Committed ? 'C' : 'U';
      key32(Cur, LabelOf[E.Owner]);
    }
    if (Pi == 0 || Cur < Best) {
      std::swap(Best, Cur);
      BestPerm = Pi;
    }
  }
  appendCommittedKey(Best);
  return Best;
}

void PushPullMachine::installForAnalysis(ThreadList NewThreads,
                                         GlobalLog NewG, OpId MaxUsedId) {
  Threads = std::move(NewThreads);
  G = std::move(NewG);
  Ids.reservePast(MaxUsedId);
  Trace = RuleTrace();
  Audit.clear();
  Committed = CowVec<CommittedTx>();
  CommittedKeyCache.reset();
  CommitSeq = 0;
}

RuleFootprint pushpull::ruleFootprint(RuleKind K) {
  // Justification, criterion by criterion, against the evaluations above:
  //
  //   APP     (i) allowed under the *local* view L·x (localViewId) — own
  //           thread only.  Mutation: own c, sigma, L.
  //   UNAPP   structural flags on own L only.  Mutation: own c, sigma, L.
  //   PUSH    (i) movers against own L; (ii) right-movers against the
  //           *uncommitted G entries of other owners*; (iii) allowed under
  //           the global view (globalViewId).  (ii) and (iii) read G.
  //           Mutation: appends to G.
  //   UNPUSH  (i, gray) movers against *later G entries*; (ii) G minus the
  //           entry still allowed (globalViewId with OmitIdx).  Reads and
  //           mutates (removes from) G.
  //   PULL    (i) entry not already in own L; (ii) own local view allows
  //           the pulled op; (iii, gray) right-movers against own L.  The
  //           criteria read only the *pulled entry* of G; the mutation is
  //           own-L append.  (The reduction layer refines this entry-wise:
  //           see sim/Reduction.h.)
  //   UNPULL  structural flags on own L only.
  //   CMT     (i) fin(c) — own; (ii) own L pushed and present in G; (iii)
  //           pulled entries' *G kinds* committed; (iv) commitOwned.
  //           Reads G; mutation reflags own G entries gUCmt -> gCmt.
  switch (K) {
  case RuleKind::App:
  case RuleKind::UnApp:
  case RuleKind::UnPull:
    return {/*ReadsGlobal=*/false, /*WritesGlobal=*/false};
  case RuleKind::Push:
    return {/*ReadsGlobal=*/true, /*WritesGlobal=*/true};
  case RuleKind::UnPush:
    return {/*ReadsGlobal=*/true, /*WritesGlobal=*/true};
  case RuleKind::Pull:
    return {/*ReadsGlobal=*/true, /*WritesGlobal=*/false};
  case RuleKind::Commit:
    return {/*ReadsGlobal=*/true, /*WritesGlobal=*/true};
  }
  return {};
}

std::vector<Operation> PushPullMachine::committedLog() const {
  return G.project(GlobalKind::Committed);
}

StateSet PushPullMachine::localView(TxId T) const {
  return Spec->setOf(localViewId(thread(T)));
}

bool PushPullMachine::quiescent() const {
  for (const ThreadState &Th : Threads)
    if (!Th.done())
      return false;
  return true;
}

std::string PushPullMachine::toString() const {
  std::string Out;
  for (const ThreadState &Th : Threads) {
    Out += "t" + std::to_string(Th.Tid) + ": ";
    if (Th.InTx)
      Out += "in-tx code=" + printCode(Th.Code) + " " + Th.L.toString();
    else
      Out += Th.Pending.empty() ? "done" : "idle";
    Out += "\n";
  }
  Out += G.toString() + "\n";
  return Out;
}
