//===- core/Machine.cpp - The PUSH/PULL machine -----------------------------===//

#include "core/Machine.h"

#include "core/Invariants.h"
#include "lang/Printer.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace pushpull;

PushPullMachine::PushPullMachine(const SequentialSpec &Spec,
                                 MoverChecker &Movers, MachineConfig Config)
    : Spec(&Spec), Movers(&Movers), Config(Config) {}

TxId PushPullMachine::addThread(std::vector<CodePtr> Transactions) {
  ThreadState T;
  T.Tid = static_cast<TxId>(Threads.size());
  for (CodePtr &C : Transactions) {
    assert(C && "null transaction body");
    // Accept either `tx { body }` or a bare body.
    T.Pending.push_back(C->kind() == CodeKind::Tx ? C->body() : C);
  }
  Threads.push_back(std::move(T));
  return Threads.back().Tid;
}

void PushPullMachine::queueTransactionsFront(
    TxId T, std::vector<CodePtr> Transactions) {
  ThreadState &Th = threadMut(T);
  for (size_t I = Transactions.size(); I > 0; --I) {
    CodePtr C = Transactions[I - 1];
    assert(C && "null transaction body");
    Th.Pending.insert(Th.Pending.begin(),
                      C->kind() == CodeKind::Tx ? C->body() : C);
  }
}

const ThreadState &PushPullMachine::thread(TxId T) const {
  assert(T < Threads.size() && "bad thread id");
  return Threads[T];
}

ThreadState &PushPullMachine::threadMut(TxId T) {
  assert(T < Threads.size() && "bad thread id");
  return Threads[T];
}

bool PushPullMachine::beginTx(TxId T) {
  ThreadState &Th = threadMut(T);
  if (Th.InTx || Th.Pending.empty())
    return false;
  Th.Code = Th.Pending.front();
  Th.Pending.erase(Th.Pending.begin());
  Th.OrigCode = Th.Code;
  Th.OrigSigma = Th.Sigma;
  Th.InTx = true;
  assert(Th.L.empty() && "local log nonempty outside a transaction");
  return true;
}

template <typename Fn>
CriterionReport PushPullMachine::evalCriterion(const std::string &Name,
                                               Fn &&Thunk,
                                               const std::string &Detail)
    const {
  if (!Config.DisabledCriterion.empty() && Name == Config.DisabledCriterion) {
    // Fault injection for the fuzzer's self-test: pretend the criterion
    // holds.  See MachineConfig::DisabledCriterion.
    return criterion(Name, Tri::Yes, "disabled by test hook");
  }
  if (Config.Level == ValidationLevel::Trusting) {
    // Trusting mode does not spend time on the semantic criteria; report
    // them as unchecked-but-accepted.
    return criterion(Name, Tri::Yes, "unchecked (trusting mode)");
  }
  return criterion(Name, Thunk(), Detail);
}

bool PushPullMachine::reportsPass(
    const std::vector<CriterionReport> &Rs) const {
  for (const CriterionReport &R : Rs) {
    if (R.Verdict == Tri::No)
      return false;
    if (R.Verdict == Tri::Unknown && Config.UnknownIsFailure)
      return false;
  }
  return true;
}

void PushPullMachine::recordAudit(TxId T, const Operation *Op,
                                  const RuleResult &R) {
  if (!Config.KeepAudit)
    return;
  AuditEntry E;
  E.Tid = T;
  if (Op)
    E.OpText = Op->toString();
  E.Result = R;
  Audit.push_back(std::move(E));
}

std::string PushPullMachine::auditToString() const {
  std::string Out;
  for (const AuditEntry &E : Audit) {
    Out += "t" + std::to_string(E.Tid) + ": ";
    if (!E.OpText.empty())
      Out += E.OpText + " ";
    Out += E.Result.toString() + "\n";
  }
  return Out;
}

void PushPullMachine::recordEvent(TxId T, RuleKind K, const Operation *Op,
                                  bool PulledUncommitted) {
  TraceEvent E;
  E.Tid = T;
  E.Rule = K;
  if (Op) {
    E.Id = Op->Id;
    E.OpText = Op->toString();
  }
  E.PulledUncommitted = PulledUncommitted;
  Trace.record(std::move(E));
  // recordEvent runs after the rule's mutation is complete, so this is
  // the "after every rule firing" point differential checkers hook.
  if (Config.OnRuleApplied)
    Config.OnRuleApplied(*this, K, T);
}

void PushPullMachine::checkInvariantsAfterStep(const char *Rule) {
  if (Config.Level != ValidationLevel::Full)
    return;
  for (const ThreadState &Th : Threads) {
    InvariantReport R = checkAllInvariants(Th, G, *Movers);
    if (!R.Holds) {
      // Full mode is a hard runtime guarantee, independent of NDEBUG: a
      // broken Section 5.3 invariant means the machine itself is wrong,
      // and continuing would corrupt every downstream verdict.
      std::fprintf(stderr,
                   "pushpull: machine invariant %s violated after %s on "
                   "t%u: %s\n",
                   R.Which.c_str(), Rule, Th.Tid, R.Detail.c_str());
      std::abort();
    }
  }
}

StateSetId PushPullMachine::localViewId(const ThreadState &Th) const {
  StateSetId S = Spec->initialId();
  for (const LocalEntry &E : Th.L.entries()) {
    if (S == StateTable::EmptySetId)
      break;
    S = Spec->applyOpId(S, E.Op);
  }
  return S;
}

StateSetId PushPullMachine::globalViewId(const Operation *Extra,
                                         size_t OmitIdx) const {
  StateSetId S = Spec->initialId();
  for (size_t I = 0; I < G.size(); ++I) {
    if (I == OmitIdx)
      continue;
    if (S == StateTable::EmptySetId)
      return S;
    S = Spec->applyOpId(S, G[I].Op);
  }
  if (Extra && S != StateTable::EmptySetId)
    S = Spec->applyOpId(S, *Extra);
  return S;
}

std::vector<AppChoice> PushPullMachine::appChoices(TxId T) const {
  const ThreadState &Th = thread(T);
  std::vector<AppChoice> Out;
  if (!Th.InTx)
    return Out;
  const StateSet &View = Spec->setOf(localViewId(Th));
  std::vector<StepItem> Steps = step(Th.Code);
  for (size_t I = 0; I < Steps.size(); ++I) {
    auto Call = Steps[I].Call.resolve(Th.Sigma);
    if (!Call)
      continue;
    AppChoice C;
    C.Completions = Spec->completionsFrom(View, *Call);
    if (C.Completions.empty())
      continue; // Method not allowed under the local view at all.
    C.Item = std::move(Steps[I]);
    C.StepIdx = I;
    Out.push_back(std::move(C));
  }
  return Out;
}

RuleResult PushPullMachine::app(TxId T, size_t StepIdx, size_t CompIdx) {
  ThreadState &Th = threadMut(T);
  if (!Th.InTx)
    return RuleResult::malformed(RuleKind::App, "no transaction in progress");

  std::vector<StepItem> Steps = step(Th.Code);
  if (StepIdx >= Steps.size())
    return RuleResult::malformed(RuleKind::App, "step choice out of range");
  const StepItem &It = Steps[StepIdx];

  auto Call = It.Call.resolve(Th.Sigma);
  if (!Call)
    return RuleResult::malformed(RuleKind::App,
                                 "unbound variable in method arguments");

  // APP criterion (ii): the local log allows the operation; we realize it
  // by drawing the completion from the local view's allowed completions.
  const StateSet &View = Spec->setOf(localViewId(Th));
  std::vector<Completion> Comps = Spec->completionsFrom(View, *Call);
  std::vector<CriterionReport> Rs;
  Rs.reserve(4);
  Rs.push_back(criterion("APP criterion (i)", Tri::Yes,
                         "(m, c') drawn from step(c)"));
  if (CompIdx >= Comps.size()) {
    Rs.push_back(criterion("APP criterion (ii)", Tri::No,
                           "local log does not allow the operation (no "
                           "such completion)"));
    return RuleResult::rejected(RuleKind::App, std::move(Rs));
  }
  Rs.push_back(criterion("APP criterion (ii)", Tri::Yes,
                         "completion allowed by the local log"));

  Operation Op;
  Op.Call = *Call;
  Op.Pre = Th.Sigma;
  Op.Result = Comps[CompIdx].Result;
  Stack Post = Th.Sigma;
  if (It.Call.ResultVar && Op.Result)
    Post.set(*It.Call.ResultVar, *Op.Result);
  Op.Post = Post;
  Op.Id = Ids.fresh();
  Rs.push_back(criterion("APP criterion (iii)", Tri::Yes,
                         "id #" + std::to_string(Op.Id) + " is fresh"));

  LocalEntry E;
  E.Op = Op;
  E.Kind = LocalKind::NotPushed;
  E.SavedCode = Th.Code; // The pre-code c1, so UNAPP can rewind to it.
  Th.L.append(std::move(E));
  Th.Sigma = std::move(Post);
  Th.Code = It.Rest;

  recordEvent(T, RuleKind::App, &Op);
  checkInvariantsAfterStep("APP");
  RuleResult Out = RuleResult::applied(RuleKind::App, std::move(Rs));
  recordAudit(T, &Op, Out);
  return Out;
}

RuleResult PushPullMachine::unapp(TxId T) {
  ThreadState &Th = threadMut(T);
  if (!Th.InTx)
    return RuleResult::malformed(RuleKind::UnApp,
                                 "no transaction in progress");
  if (Th.L.empty())
    return RuleResult::malformed(RuleKind::UnApp, "local log is empty");

  const LocalEntry &Last = Th.L[Th.L.size() - 1];
  if (Last.Kind != LocalKind::NotPushed)
    return RuleResult::rejected(
        RuleKind::UnApp,
        {criterion("UNAPP flag check", Tri::No,
                   "last local entry is " + pushpull::toString(Last.Kind) +
                       ", not npshd")});

  Operation Op = Last.Op;
  Th.Sigma = Last.Op.Pre;    // Recall the previous local stack...
  Th.Code = Last.SavedCode;  // ...and the previous code.
  Th.L.truncate(Th.L.size() - 1);

  recordEvent(T, RuleKind::UnApp, &Op);
  checkInvariantsAfterStep("UNAPP");
  RuleResult Out = RuleResult::applied(RuleKind::UnApp);
  recordAudit(T, &Op, Out);
  return Out;
}

RuleResult PushPullMachine::push(TxId T, size_t LocalIdx) {
  ThreadState &Th = threadMut(T);
  if (!Th.InTx)
    return RuleResult::malformed(RuleKind::Push, "no transaction in progress");
  if (LocalIdx >= Th.L.size())
    return RuleResult::malformed(RuleKind::Push, "no such local-log entry");
  const LocalEntry &E = Th.L[LocalIdx];
  if (E.Kind != LocalKind::NotPushed)
    return RuleResult::rejected(
        RuleKind::Push, {criterion("PUSH flag check", Tri::No,
                                   "entry is not npshd")});
  const Operation &Op = E.Op;

  std::vector<CriterionReport> Rs;
  Rs.reserve(4);

  // PUSH criterion (i): op can move to the left of every unpushed
  // operation that precedes it in the local log ("publish op as if it was
  // the next thing to happen after the operations published thus far").
  // When operations are pushed in the order they were applied this is
  // vacuous, which is the paper's remark that existing implementations
  // satisfy it trivially; it bites only for out-of-order pushes (Sec. 7).
  Rs.push_back(evalCriterion("PUSH criterion (i)", [&] {
    Tri V = Tri::Yes;
    for (size_t I = 0; I < LocalIdx; ++I) {
      const LocalEntry &U = Th.L[I];
      if (U.Kind != LocalKind::NotPushed)
        continue;
      V = triAnd(V, Movers->leftMover(Op, U.Op));
      if (V == Tri::No)
        break;
    }
    return V;
  }));

  // PUSH criterion (ii): every uncommitted operation of *another*
  // transaction in G can move to the right of op (x <| op).  "Another
  // transaction" is by ownership: an uncommitted operation we pulled into
  // our view still constrains us — exempting it would let a transaction
  // pull, publish around, unpull, and commit before its dependency,
  // breaking the owner's I_slideR (Lemma 5.8) and with it the commit-order
  // serialization witness.
  Rs.push_back(evalCriterion("PUSH criterion (ii)", [&] {
    Tri V = Tri::Yes;
    for (const GlobalEntry &GE : G.entries()) {
      if (GE.Kind != GlobalKind::Uncommitted || GE.Owner == T)
        continue;
      V = triAnd(V, Movers->leftMover(GE.Op, Op));
      if (V == Tri::No)
        break;
    }
    return V;
  }));

  // PUSH criterion (iii): G . op is allowed by the sequential spec.
  Rs.push_back(evalCriterion("PUSH criterion (iii)", [&] {
    return triOf(globalViewId(&Op) != StateTable::EmptySetId);
  }));

  if (!reportsPass(Rs))
    return RuleResult::rejected(RuleKind::Push, std::move(Rs));

  Th.L.setKind(LocalIdx, LocalKind::Pushed);
  GlobalEntry GE;
  GE.Op = Op;
  GE.Kind = GlobalKind::Uncommitted;
  GE.Owner = T;
  G.append(std::move(GE));

  recordEvent(T, RuleKind::Push, &Op);
  checkInvariantsAfterStep("PUSH");
  RuleResult Out = RuleResult::applied(RuleKind::Push, std::move(Rs));
  recordAudit(T, &Op, Out);
  return Out;
}

RuleResult PushPullMachine::unpush(TxId T, size_t LocalIdx) {
  ThreadState &Th = threadMut(T);
  if (!Th.InTx)
    return RuleResult::malformed(RuleKind::UnPush,
                                 "no transaction in progress");
  if (LocalIdx >= Th.L.size())
    return RuleResult::malformed(RuleKind::UnPush, "no such local-log entry");
  const LocalEntry &E = Th.L[LocalIdx];
  if (E.Kind != LocalKind::Pushed)
    return RuleResult::rejected(
        RuleKind::UnPush, {criterion("UNPUSH flag check", Tri::No,
                                     "entry is not pshd")});
  const Operation &Op = E.Op;

  size_t GIdx = G.indexOf(Op.Id);
  if (GIdx == GlobalLog::npos)
    return RuleResult::malformed(RuleKind::UnPush,
                                 "pshd entry missing from G (I_LG broken)");
  if (G[GIdx].Kind == GlobalKind::Committed)
    return RuleResult::rejected(
        RuleKind::UnPush, {criterion("UNPUSH uncommitted check", Tri::No,
                                     "cannot unpush a committed operation")});

  std::vector<CriterionReport> Rs;
  Rs.reserve(4);

  // UNPUSH criterion (i) (gray: "not strictly necessary because we can
  // prove that it must hold whenever an UNPUSH occurs"): nothing pushed
  // after op depends on it — op can move right past every later entry of
  // other transactions.
  if (Config.EnforceGrayCriteria) {
    Rs.push_back(evalCriterion("UNPUSH criterion (i)", [&] {
      Tri V = Tri::Yes;
      for (size_t I = GIdx + 1; I < G.size(); ++I) {
        if (Th.L.contains(G[I].Op.Id))
          continue;
        V = triAnd(V, Movers->leftMover(Op, G[I].Op));
        if (V == Tri::No)
          break;
      }
      return V;
    }));
  }

  // UNPUSH criterion (ii): everything pushed chronologically after op
  // could still have been pushed had op not been — i.e. G with op removed
  // is still allowed.
  Rs.push_back(evalCriterion("UNPUSH criterion (ii)", [&] {
    return triOf(globalViewId(nullptr, GIdx) != StateTable::EmptySetId);
  }));

  if (!reportsPass(Rs))
    return RuleResult::rejected(RuleKind::UnPush, std::move(Rs));

  Th.L.setKind(LocalIdx, LocalKind::NotPushed);
  G.removeAt(GIdx);

  recordEvent(T, RuleKind::UnPush, &Op);
  checkInvariantsAfterStep("UNPUSH");
  RuleResult Out = RuleResult::applied(RuleKind::UnPush, std::move(Rs));
  recordAudit(T, &Op, Out);
  return Out;
}

RuleResult PushPullMachine::pull(TxId T, size_t GlobalIdx) {
  ThreadState &Th = threadMut(T);
  if (!Th.InTx)
    return RuleResult::malformed(RuleKind::Pull, "no transaction in progress");
  if (GlobalIdx >= G.size())
    return RuleResult::malformed(RuleKind::Pull, "no such global-log entry");
  const GlobalEntry &GE = G[GlobalIdx];
  const Operation &Op = GE.Op;

  std::vector<CriterionReport> Rs;
  Rs.reserve(4);

  // PULL criterion (i): op was not pulled (or pushed) before.
  Rs.push_back(criterion("PULL criterion (i)",
                         triOf(!Th.L.contains(Op.Id)),
                         "operation must not already be in L"));

  // PULL criterion (ii): the local log allows op.
  Rs.push_back(evalCriterion("PULL criterion (ii)", [&] {
    return triOf(Spec->applyOpId(localViewId(Th), Op) !=
                 StateTable::EmptySetId);
  }));

  // PULL criterion (iii) (gray): everything the transaction has done
  // locally can move to the right of op, so it can behave as if the pulled
  // effect preceded it.
  if (Config.EnforceGrayCriteria) {
    Rs.push_back(evalCriterion("PULL criterion (iii)", [&] {
      Tri V = Tri::Yes;
      for (const LocalEntry &E : Th.L.entries()) {
        if (E.Kind == LocalKind::Pulled)
          continue;
        V = triAnd(V, Movers->leftMover(E.Op, Op));
        if (V == Tri::No)
          break;
      }
      return V;
    }));
  }

  if (!reportsPass(Rs))
    return RuleResult::rejected(RuleKind::Pull, std::move(Rs));

  bool WasUncommitted = GE.Kind == GlobalKind::Uncommitted;
  LocalEntry E;
  E.Op = Op;
  E.Kind = LocalKind::Pulled;
  Th.L.append(std::move(E));

  recordEvent(T, RuleKind::Pull, &Op, WasUncommitted);
  checkInvariantsAfterStep("PULL");
  RuleResult Out = RuleResult::applied(RuleKind::Pull, std::move(Rs));
  recordAudit(T, &Op, Out);
  return Out;
}

RuleResult PushPullMachine::unpull(TxId T, size_t LocalIdx) {
  ThreadState &Th = threadMut(T);
  if (!Th.InTx)
    return RuleResult::malformed(RuleKind::UnPull,
                                 "no transaction in progress");
  if (LocalIdx >= Th.L.size())
    return RuleResult::malformed(RuleKind::UnPull, "no such local-log entry");
  const LocalEntry &E = Th.L[LocalIdx];
  if (E.Kind != LocalKind::Pulled)
    return RuleResult::rejected(
        RuleKind::UnPull, {criterion("UNPULL flag check", Tri::No,
                                     "entry is not pld")});
  Operation Op = E.Op;

  std::vector<CriterionReport> Rs;
  Rs.reserve(4);

  // UNPULL criterion (i): the local log is allowed without op (the
  // transaction did nothing that depended on it).
  Rs.push_back(evalCriterion("UNPULL criterion (i)", [&] {
    StateSetId S = Spec->initialId();
    for (size_t I = 0; I < Th.L.size() && S != StateTable::EmptySetId; ++I)
      if (I != LocalIdx)
        S = Spec->applyOpId(S, Th.L[I].Op);
    return triOf(S != StateTable::EmptySetId);
  }));

  if (!reportsPass(Rs))
    return RuleResult::rejected(RuleKind::UnPull, std::move(Rs));

  Th.L.removeAt(LocalIdx);

  recordEvent(T, RuleKind::UnPull, &Op);
  checkInvariantsAfterStep("UNPULL");
  RuleResult Out = RuleResult::applied(RuleKind::UnPull, std::move(Rs));
  recordAudit(T, &Op, Out);
  return Out;
}

RuleResult PushPullMachine::commit(TxId T) {
  ThreadState &Th = threadMut(T);
  if (!Th.InTx)
    return RuleResult::malformed(RuleKind::Commit,
                                 "no transaction in progress");

  std::vector<CriterionReport> Rs;
  Rs.reserve(4);

  // CMT criterion (i): there is a path through the remaining code to skip.
  Rs.push_back(criterion("CMT criterion (i)", triOf(fin(Th.Code)),
                         "fin(c) must hold"));

  // CMT criterion (ii): L c= G — all own operations have been pushed (and
  // no pulled operation has vanished from G via its owner's UNPUSH).
  {
    bool AllPushed = true;
    for (const LocalEntry &E : Th.L.entries())
      if (E.Kind == LocalKind::NotPushed) {
        AllPushed = false;
        break;
      }
    bool Contained = G.containsAll(Th.L);
    Rs.push_back(criterion(
        "CMT criterion (ii)", triOf(AllPushed && Contained),
        AllPushed ? (Contained ? "" : "a pulled operation is no longer in G")
                  : "unpushed operations remain in L"));
  }

  // CMT criterion (iii): every pulled operation is committed in G.
  Rs.push_back(criterion("CMT criterion (iii)", [&] {
    for (const LocalEntry &E : Th.L.entries()) {
      if (E.Kind != LocalKind::Pulled)
        continue;
      size_t GI = G.indexOf(E.Op.Id);
      if (GI == GlobalLog::npos || G[GI].Kind != GlobalKind::Committed)
        return Tri::No;
    }
    return Tri::Yes;
  }(), "pulled operations must belong to committed transactions"));

  if (!reportsPass(Rs))
    return RuleResult::rejected(RuleKind::Commit, std::move(Rs));

  // CMT criterion (iv): G2 = cmt(G1, L1, G2) — flip own entries to gCmt.
  G.commitOwned(Th.L);
  Rs.push_back(criterion("CMT criterion (iv)", Tri::Yes,
                         "own global entries marked gCmt"));

  CommittedTx Rec;
  Rec.Tid = T;
  Rec.Body = Th.OrigCode;
  Rec.Sigma = Th.OrigSigma;
  Rec.FinalSigma = Th.Sigma;
  Rec.CommitSeq = CommitSeq++;
  Committed.push_back(std::move(Rec));

  Th.InTx = false;
  Th.Code = nullptr;
  Th.OrigCode = nullptr;
  Th.L = LocalLog();
  ++Th.Commits;

  recordEvent(T, RuleKind::Commit, nullptr);
  checkInvariantsAfterStep("CMT");
  RuleResult Out = RuleResult::applied(RuleKind::Commit, std::move(Rs));
  recordAudit(T, nullptr, Out);
  return Out;
}

std::string PushPullMachine::configKey(const std::vector<TxId> *LabelOf) const {
  // Operations are rendered by their interned (Call, Result) key id:
  // id equality is exactly canonical-text equality, so the key partitions
  // configurations the same way the fully textual rendering would, at a
  // fraction of the cost (this runs once per explored successor).
  StateTable &Table = Spec->table();
  std::string Out;
  Out.reserve(64 + 32 * Threads.size() + 12 * G.size());
  auto renderThread = [&](const ThreadState &Th) {
    if (Th.InTx) {
      Out += "T:";
      Out += Th.Code->printed();
    } else {
      Out += "idle";
    }
    Out += '\x01';
    for (const auto &[Var, Val] : Th.Sigma.entries()) {
      Out += Var;
      Out += '>';
      Out += std::to_string(Val);
      Out += ',';
    }
    Out += '\x01';
    for (const LocalEntry &E : Th.L.entries()) {
      Out += std::to_string(Table.opKey(E.Op));
      switch (E.Kind) {
      case LocalKind::NotPushed:
        Out += 'n';
        break;
      case LocalKind::Pushed:
        Out += 'p';
        break;
      case LocalKind::Pulled:
        Out += 'd';
        break;
      }
      // Position of this op in G links L and G structurally.
      size_t GI = G.indexOf(E.Op.Id);
      if (GI == GlobalLog::npos)
        Out += '-';
      else
        Out += std::to_string(GI);
      Out += ';';
    }
    Out += std::to_string(Th.Pending.size());
    Out += '\x02';
  };
  if (!LabelOf) {
    for (const ThreadState &Th : Threads)
      renderThread(Th);
  } else {
    // Slot l holds the thread relabeled to l.
    std::vector<size_t> AtLabel(Threads.size());
    for (size_t T = 0; T < Threads.size(); ++T)
      AtLabel[(*LabelOf)[T]] = T;
    for (size_t L = 0; L < AtLabel.size(); ++L)
      renderThread(Threads[AtLabel[L]]);
  }
  for (const GlobalEntry &E : G.entries()) {
    Out += std::to_string(Table.opKey(E.Op));
    Out += E.Kind == GlobalKind::Committed ? 'C' : 'U';
    Out += std::to_string(LabelOf ? (*LabelOf)[E.Owner] : E.Owner);
    Out += ';';
  }
  // Committed-transaction content, in commit order and tid-free: the
  // oracle replays these otx bodies and demands the recorded final stacks,
  // so its verdict is a function of this section.
  for (const CommittedTx &C : Committed) {
    Out += '\x03';
    Out += C.Body->printed();
    Out += '\x01';
    for (const auto &[Var, Val] : C.Sigma.entries()) {
      Out += Var;
      Out += '>';
      Out += std::to_string(Val);
      Out += ',';
    }
    Out += '\x01';
    for (const auto &[Var, Val] : C.FinalSigma.entries()) {
      Out += Var;
      Out += '>';
      Out += std::to_string(Val);
      Out += ',';
    }
  }
  return Out;
}

RuleFootprint pushpull::ruleFootprint(RuleKind K) {
  // Justification, criterion by criterion, against the evaluations above:
  //
  //   APP     (i) allowed under the *local* view L·x (localViewId) — own
  //           thread only.  Mutation: own c, sigma, L.
  //   UNAPP   structural flags on own L only.  Mutation: own c, sigma, L.
  //   PUSH    (i) movers against own L; (ii) right-movers against the
  //           *uncommitted G entries of other owners*; (iii) allowed under
  //           the global view (globalViewId).  (ii) and (iii) read G.
  //           Mutation: appends to G.
  //   UNPUSH  (i, gray) movers against *later G entries*; (ii) G minus the
  //           entry still allowed (globalViewId with OmitIdx).  Reads and
  //           mutates (removes from) G.
  //   PULL    (i) entry not already in own L; (ii) own local view allows
  //           the pulled op; (iii, gray) right-movers against own L.  The
  //           criteria read only the *pulled entry* of G; the mutation is
  //           own-L append.  (The reduction layer refines this entry-wise:
  //           see sim/Reduction.h.)
  //   UNPULL  structural flags on own L only.
  //   CMT     (i) fin(c) — own; (ii) own L pushed and present in G; (iii)
  //           pulled entries' *G kinds* committed; (iv) commitOwned.
  //           Reads G; mutation reflags own G entries gUCmt -> gCmt.
  switch (K) {
  case RuleKind::App:
  case RuleKind::UnApp:
  case RuleKind::UnPull:
    return {/*ReadsGlobal=*/false, /*WritesGlobal=*/false};
  case RuleKind::Push:
    return {/*ReadsGlobal=*/true, /*WritesGlobal=*/true};
  case RuleKind::UnPush:
    return {/*ReadsGlobal=*/true, /*WritesGlobal=*/true};
  case RuleKind::Pull:
    return {/*ReadsGlobal=*/true, /*WritesGlobal=*/false};
  case RuleKind::Commit:
    return {/*ReadsGlobal=*/true, /*WritesGlobal=*/true};
  }
  return {};
}

std::vector<Operation> PushPullMachine::committedLog() const {
  return G.project(GlobalKind::Committed);
}

StateSet PushPullMachine::localView(TxId T) const {
  return Spec->setOf(localViewId(thread(T)));
}

bool PushPullMachine::quiescent() const {
  for (const ThreadState &Th : Threads)
    if (!Th.done())
      return false;
  return true;
}

std::string PushPullMachine::toString() const {
  std::string Out;
  for (const ThreadState &Th : Threads) {
    Out += "t" + std::to_string(Th.Tid) + ": ";
    if (Th.InTx)
      Out += "in-tx code=" + printCode(Th.Code) + " " + Th.L.toString();
    else
      Out += Th.Pending.empty() ? "done" : "idle";
    Out += "\n";
  }
  Out += G.toString() + "\n";
  return Out;
}
