//===- core/Trace.cpp - Rule traces ----------------------------------------===//

#include "core/Trace.h"

using namespace pushpull;

void RuleTrace::record(TraceEvent E) {
  E.Seq = NextSeq++;
  Events.push_back(std::move(E));
}

size_t RuleTrace::countOf(RuleKind K) const {
  size_t N = 0;
  for (const TraceEvent &E : Events)
    if (E.Rule == K)
      ++N;
  return N;
}

std::vector<TraceEvent> RuleTrace::byThread(TxId T) const {
  std::vector<TraceEvent> Out;
  for (const TraceEvent &E : Events)
    if (E.Tid == T)
      Out.push_back(E);
  return Out;
}

std::string RuleTrace::toString() const {
  std::string Out;
  for (const TraceEvent &E : Events) {
    Out += "t" + std::to_string(E.Tid) + ": " + pushpull::toString(E.Rule);
    if (!E.OpText.empty())
      Out += "(" + E.OpText + ")";
    if (E.PulledUncommitted)
      Out += " [uncommitted]";
    Out += "\n";
  }
  return Out;
}
