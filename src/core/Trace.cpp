//===- core/Trace.cpp - Rule traces ----------------------------------------===//

#include "core/Trace.h"

using namespace pushpull;

void RuleTrace::release() {
  // Unlink node by node.  Once use_count() == 1 this trace is the sole
  // owner of the rest of the chain (nobody else can acquire a reference
  // to a node they hold no shared_ptr into), so stealing Prev before the
  // node dies keeps destruction iterative.
  std::shared_ptr<Node> N = std::move(Newest);
  while (N && N.use_count() == 1)
    N = std::move(N->Prev);
}

RuleTrace &RuleTrace::operator=(const RuleTrace &O) {
  if (this != &O) {
    release();
    Newest = O.Newest;
    Count = O.Count;
    NextSeq = O.NextSeq;
  }
  return *this;
}

RuleTrace &RuleTrace::operator=(RuleTrace &&O) noexcept {
  if (this != &O) {
    release();
    Newest = std::move(O.Newest);
    Count = O.Count;
    NextSeq = O.NextSeq;
    O.Count = 0;
    O.NextSeq = 0;
  }
  return *this;
}

void RuleTrace::record(TraceEvent E) {
  E.Seq = NextSeq++;
  auto N = std::make_shared<Node>();
  N->E = std::move(E);
  N->Prev = std::move(Newest);
  Newest = std::move(N);
  ++Count;
}

template <typename Fn> void RuleTrace::forEachInOrder(Fn &&F) const {
  std::vector<const Node *> Chain;
  Chain.reserve(Count);
  for (const Node *N = Newest.get(); N; N = N->Prev.get())
    Chain.push_back(N);
  for (size_t I = Chain.size(); I > 0; --I)
    F(Chain[I - 1]->E);
}

std::vector<TraceEvent> RuleTrace::events() const {
  std::vector<TraceEvent> Out;
  Out.reserve(Count);
  forEachInOrder([&](const TraceEvent &E) { Out.push_back(E); });
  return Out;
}

size_t RuleTrace::countOf(RuleKind K) const {
  size_t N = 0;
  for (const Node *P = Newest.get(); P; P = P->Prev.get())
    if (P->E.Rule == K)
      ++N;
  return N;
}

std::vector<TraceEvent> RuleTrace::byThread(TxId T) const {
  std::vector<TraceEvent> Out;
  forEachInOrder([&](const TraceEvent &E) {
    if (E.Tid == T)
      Out.push_back(E);
  });
  return Out;
}

std::string RuleTrace::toString() const {
  std::string Out;
  forEachInOrder([&](const TraceEvent &E) {
    Out += "t" + std::to_string(E.Tid) + ": " + pushpull::toString(E.Rule);
    if (!E.OpText.empty())
      Out += "(" + E.OpText + ")";
    if (E.PulledUncommitted)
      Out += " [uncommitted]";
    Out += "\n";
  });
  return Out;
}
