//===- core/Trace.cpp - Rule traces ----------------------------------------===//

#include "core/Trace.h"

using namespace pushpull;

std::vector<TraceEvent> RuleTrace::events() const {
  std::vector<TraceEvent> Out;
  Out.reserve(size());
  for (const TraceEvent &E : *this)
    Out.push_back(E);
  return Out;
}

size_t RuleTrace::countOf(RuleKind K) const {
  size_t N = 0;
  for (const TraceEvent &E : *this)
    if (E.Rule == K)
      ++N;
  return N;
}

std::vector<TraceEvent> RuleTrace::byThread(TxId T) const {
  std::vector<TraceEvent> Out;
  for (const TraceEvent &E : *this)
    if (E.Tid == T)
      Out.push_back(E);
  return Out;
}

std::string RuleTrace::toString() const {
  std::string Out;
  for (const TraceEvent &E : *this) {
    Out += "t" + std::to_string(E.Tid) + ": " + pushpull::toString(E.Rule);
    if (!E.OpText.empty())
      Out += "(" + E.OpText + ")";
    else if (E.Id)
      Out += "(#" + std::to_string(E.Id) + ")";
    if (E.PulledUncommitted)
      Out += " [uncommitted]";
    Out += "\n";
  }
  return Out;
}
