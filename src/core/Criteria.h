//===- core/Criteria.h - Rule criteria reporting ----------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every PUSH/PULL rule comes with named correctness criteria ("PUSH
/// criterion (ii)", etc.).  The machine evaluates each criterion
/// individually and reports a per-criterion verdict, so that a TM algorithm
/// implementor can see exactly which side-condition their step would
/// violate — the workflow the paper proposes: demarcate the algorithm into
/// rule fragments, then discharge each criterion.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_CORE_CRITERIA_H
#define PUSHPULL_CORE_CRITERIA_H

#include "support/SmallVec.h"
#include "support/Tri.h"

#include <string>

namespace pushpull {

/// The seven reductions of Figure 5.
enum class RuleKind {
  App,    ///< APP: apply a next method locally.
  UnApp,  ///< UNAPP: rewind the most recent unpushed application.
  Push,   ///< PUSH: share a local effect with the global log.
  UnPush, ///< UNPUSH: recall an effect from the global log.
  Pull,   ///< PULL: view another transaction's published effect.
  UnPull, ///< UNPULL: discard knowledge of a pulled effect.
  Commit, ///< CMT: make all pushed effects permanent.
};

std::string toString(RuleKind K);

/// Verdict for one named criterion of one rule application.
struct CriterionReport {
  /// Paper-style name, e.g. "PUSH criterion (ii)".
  std::string Name;
  Tri Verdict = Tri::Unknown;
  /// Human-readable explanation (which operation failed to move, etc.).
  std::string Detail;

  bool holds() const { return Verdict == Tri::Yes; }
};

/// The reports of one rule attempt.  No Figure 5 rule has more than four
/// criteria, so the inline capacity makes a rejection allocation-free
/// (rejections outnumber applications on every explored scope).
using CriterionReports = SmallVec<CriterionReport, 4>;

/// Result of attempting one rule.  When \c Applied is false the machine
/// state was left unchanged; the reports say why.
struct RuleResult {
  RuleKind Rule = RuleKind::App;
  bool Applied = false;
  CriterionReports Criteria;
  /// Message for failures not attributable to a numbered criterion
  /// (e.g. "no such local-log entry").
  std::string Message;

  /// First criterion whose verdict is not Yes, or nullptr.
  const CriterionReport *firstFailure() const;

  /// Render for diagnostics.
  std::string toString() const;

  static RuleResult applied(RuleKind K, CriterionReports Rs = {});
  static RuleResult rejected(RuleKind K, CriterionReports Rs,
                             std::string Msg = "");
  static RuleResult malformed(RuleKind K, std::string Msg);
};

/// Build a passing/failing report with the paper-style criterion name.
CriterionReport criterion(std::string Name, Tri Verdict,
                          std::string Detail = "");

} // namespace pushpull

#endif // PUSHPULL_CORE_CRITERIA_H
