//===- core/Mover.h - Executable Definition 4.1 -----------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lipton left-movers over logs, Definition 4.1:
///
///     op1 <| op2  ==  forall l.  l.op1.op2  =<  l.op2.op1
///
/// Following the paper's mnemonic (Section 5.1): the order of operations in
/// "op1 <| op2" is their order in the log on the LEFT of =< (the real,
/// interleaved log); the right-hand log is the hypothetical reordering the
/// atomic machine would produce.  Thus:
///
///  * PUSH criterion (i) — "op can move to the left of every unpushed local
///    op u" — is leftMover(op, u);
///  * PUSH criterion (ii) — "every uncommitted op x of another transaction
///    can move to the right of op" — is leftMover(x, op);
///  * PULL criterion (iii) — "everything done locally can move to the right
///    of the pulled op" — is leftMover(x, op) for each own x.
///
/// Executable form: the universal quantification over logs l becomes a
/// quantification over the *reachable denotations* of the specification
/// (the machine only ever needs moverness at reachable logs).  Reachable
/// state sets are enumerated once, breadth-first under the probe alphabet,
/// up to a configurable bound; each is then checked with the precongruence
/// engine.  A spec's algebraic leftMoverHint short-circuits the semantic
/// check when it has an opinion (boosting's "different keys commute").
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_CORE_MOVER_H
#define PUSHPULL_CORE_MOVER_H

#include "core/Precongruence.h"
#include "core/Spec.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace pushpull {

/// Bounds for reachable-denotation enumeration.
struct MoverLimits {
  /// Maximum number of distinct reachable state sets to enumerate.  When
  /// the frontier is exhausted before the bound, the enumeration is exact.
  size_t MaxReachableSets = 4096;
};

/// Decision procedure for the left-mover relation, with memoization.
class MoverChecker {
public:
  MoverChecker(const SequentialSpec &Spec, MoverLimits Limits = {},
               PrecongruenceLimits PreLimits = {});

  /// Definition 4.1: may a real log ...A.B... be reordered (on the atomic
  /// side) to ...B.A...?  Consults the spec's hint first, then decides
  /// semantically over all reachable denotations.
  Tri leftMover(const Operation &A, const Operation &B);

  /// Lifted form: A <| b for every A in \p As.
  Tri leftMoverAll(const std::vector<Operation> &As, const Operation &B);

  /// Lifted form: a <| B for every B in \p Bs.
  Tri leftMoverOverAll(const Operation &A, const std::vector<Operation> &Bs);

  /// Force the semantic check (ignore hints) — used by tests that
  /// cross-validate hints, and by the E8 ablation bench.
  Tri leftMoverSemantic(const Operation &A, const Operation &B);

  /// Was the reachable-set enumeration exhaustive (frontier emptied within
  /// the bound)?  When false, semantic Yes answers are downgraded to
  /// Unknown.
  bool reachableExact();

  /// Number of reachable state sets enumerated.
  size_t reachableCount();

  /// Decisions served from the memo table vs computed.
  uint64_t memoHits() const { return MemoHits; }
  uint64_t memoMisses() const { return MemoMisses; }

  /// Reachable sets enumerated so far, without forcing the enumeration
  /// (0 when no semantic query has run yet).  For stats reporting.
  size_t reachableComputedCount() const {
    return ReachableComputed ? Reachable.size() : 0;
  }

  const MoverLimits &limits() const { return Limits; }

  PrecongruenceChecker &precongruence() { return Pre; }
  const PrecongruenceChecker &precongruence() const { return Pre; }

private:
  void ensureReachable();

  const SequentialSpec &Spec;
  MoverLimits Limits;
  PrecongruenceChecker Pre;

  bool ReachableComputed = false;
  bool ReachableIsExact = false;
  std::vector<StateSetId> Reachable;

  /// (OpKeyId of A << 32 | OpKeyId of B) -> verdict.  Moverness depends
  /// on the call and its result, never on the id or the thread stacks, so
  /// the interned denotation keys are exactly the right memo key.
  std::unordered_map<uint64_t, Tri> Memo;
  uint64_t MemoHits = 0, MemoMisses = 0;
};

} // namespace pushpull

#endif // PUSHPULL_CORE_MOVER_H
