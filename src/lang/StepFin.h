//===- lang/StepFin.h - step() and fin() ------------------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's two language-abstraction functions (Section 3):
///
///   step(c): the set of pairs (m, c') such that m is a next reachable
///            method in the reduction of c, with remaining code c'.
///   fin(c):  true iff there is a reduction of c to skip that encounters
///            no method call.
///
/// Instantiated for the generic language of Example 1:
///
///   step(skip)    = {}                 fin(skip)    = true
///   step(c1;c2)   = (step(c1);c2)      fin(c1;c2)   = fin(c1) /\ fin(c2)
///                 u (fin(c1);step(c2))
///   step(c1+c2)   = step(c1)u step(c2) fin(c1+c2)   = fin(c1) \/ fin(c2)
///   step((c)*)    = step(c);(c)*       fin((c)*)    = true
///   step(tx c)    = step(c)            fin(tx c)    = fin(c)
///   step(m)       = {(m, skip)}        fin(m)       = false
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_LANG_STEPFIN_H
#define PUSHPULL_LANG_STEPFIN_H

#include "lang/Ast.h"

#include <vector>

namespace pushpull {

/// One element of step(c): a next reachable method and its continuation.
struct StepItem {
  MethodExpr Call;
  CodePtr Rest;
};

/// Compute step(c).  The result is finite for every finite code tree; loop
/// bodies contribute one unrolling per call site (step((c)*) = step(c);(c)*).
/// Memoized on the (immutable) node: the machine calls this on every APP
/// attempt and candidate enumeration, and the returned reference stays
/// valid for the node's lifetime.
const std::vector<StepItem> &step(const CodePtr &C);

/// Compute fin(c): can c reduce to skip without encountering a method?
/// Memoized on the node.
bool fin(const CodePtr &C);

/// All method expressions syntactically reachable in c (the closure of
/// step() over all continuations).  Used by the opacity checker's
/// commutation-based relaxation (Section 6.1: a transaction may PULL an
/// uncommitted op m' if no reachable method fails to commute with m').
std::vector<MethodExpr> reachableMethods(const CodePtr &C);

} // namespace pushpull

#endif // PUSHPULL_LANG_STEPFIN_H
