//===- lang/Parser.h - Concrete-syntax parser -------------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent parser for the Example 1 language, so examples
/// and tests can write programs as text:
///
///   stmt    := choice
///   choice  := seq ('+' seq)*
///   seq     := postfix (';' postfix)*
///   postfix := prim '*'*
///   prim    := 'skip' | 'tx' '{' stmt '}' | '(' stmt ')' | call
///   call    := [ident ':='] ident '.' ident '(' (arg (',' arg)*)? ')'
///   arg     := integer | ident
///
/// Choice binds loosest, then sequencing, then the postfix loop.  Example:
///
///   tx { v := set.add(3); (ctr.inc() + skip); (set.contains(3))* }
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_LANG_PARSER_H
#define PUSHPULL_LANG_PARSER_H

#include "lang/Ast.h"

#include <string>

namespace pushpull {

/// Outcome of a parse: either Code is non-null, or Error describes the
/// failure and ErrorPos is the byte offset it was detected at.
struct ParseResult {
  CodePtr Parsed;
  std::string Error;
  size_t ErrorPos = 0;

  bool ok() const { return Parsed != nullptr; }
};

/// Parse \p Text into a code tree.  Never throws; errors are reported in
/// the result.
ParseResult parseCode(const std::string &Text);

/// Parse, asserting success.  For use in tests and examples on known-good
/// literals.
CodePtr parseOrDie(const std::string &Text);

} // namespace pushpull

#endif // PUSHPULL_LANG_PARSER_H
