//===- lang/Ast.h - Transaction language AST --------------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic input language of Example 1 of the paper:
///
///   c ::= c1 + c2 | c1 ; c2 | (c)* | skip | tx c | m
///
/// with nondeterministic choice (+), sequential composition (;),
/// nondeterministic looping (*), the empty statement, transactions, and
/// method calls m.  Method calls name a shared object and method, carry
/// argument expressions (literals or thread-stack variables), and may bind
/// their result to a stack variable.
///
/// Code values are immutable and shared; continuations produced by step()
/// alias subtrees of the original program.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_LANG_AST_H
#define PUSHPULL_LANG_AST_H

#include "core/Op.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace pushpull {

class Code;
struct StepItem;
/// Immutable shared handle to a code tree.
using CodePtr = std::shared_ptr<const Code>;

/// A method-call argument: either a literal value or a thread-stack
/// variable resolved at APP time.
using Arg = std::variant<Value, std::string>;

/// An unresolved method call as it appears in program text, e.g.
/// "v := map.get(k)".
struct MethodExpr {
  std::string Object;
  std::string Method;
  std::vector<Arg> Args;
  /// Variable the result is bound to, if any.
  std::optional<std::string> ResultVar;

  /// Resolve argument expressions against \p Sigma.  Returns nullopt when
  /// an argument variable is unbound (the call is then not executable).
  std::optional<ResolvedCall> resolve(const Stack &Sigma) const;

  std::string toString() const;
};

/// Node discriminator for Code.
enum class CodeKind {
  Skip,   ///< skip
  Call,   ///< m
  Seq,    ///< c1 ; c2
  Choice, ///< c1 + c2
  Loop,   ///< (c)*
  Tx,     ///< tx c
};

/// One immutable node of the code tree.  Construct via the factory
/// functions below; fields not meaningful for a kind are empty.
class Code {
public:
  CodeKind kind() const { return Kind; }

  /// The call payload; valid only for CodeKind::Call.
  const MethodExpr &call() const;
  /// Left child; valid for Seq and Choice.
  const CodePtr &lhs() const;
  /// Right child; valid for Seq and Choice.
  const CodePtr &rhs() const;
  /// Body; valid for Loop and Tx.
  const CodePtr &body() const;

  /// Structural (not pointer) equality.
  bool equals(const Code &O) const;

  /// This node rendered as by printCode, computed once and cached on the
  /// node (nodes are immutable and shared, and the explorer's
  /// configuration keys render remaining code on the innermost loop).
  const std::string &printed() const;

  // Factories.
  static CodePtr makeSkip();
  static CodePtr makeCall(MethodExpr M);
  static CodePtr makeSeq(CodePtr L, CodePtr R);
  static CodePtr makeChoice(CodePtr L, CodePtr R);
  static CodePtr makeLoop(CodePtr B);
  static CodePtr makeTx(CodePtr B);

private:
  explicit Code(CodeKind K) : Kind(K) {}

  friend const std::vector<StepItem> &step(const CodePtr &C);
  friend bool fin(const CodePtr &C);

  CodeKind Kind;
  MethodExpr Call;
  CodePtr Lhs, Rhs, Body;
  /// Lazily filled by printed(); never part of node identity.
  mutable std::once_flag PrintedOnce;
  mutable std::string Printed;
  /// step(c) computed once per node (lang/StepFin.cpp): nodes are
  /// immutable, and the machine recomputes step(remaining code) on every
  /// APP attempt and every candidate enumeration.  Memoizing also makes
  /// the continuation nodes canonical, so their own printed()/step()
  /// caches stay warm instead of being rebuilt on fresh nodes each call.
  /// (A Loop node's cache holds a continuation that references the node
  /// itself — a reference cycle that pins one small vector per distinct
  /// loop node for the process lifetime, bounded by program text size.)
  mutable std::once_flag StepOnce;
  mutable std::shared_ptr<const std::vector<StepItem>> StepCache;
  /// fin(c) memo: -1 unset, else 0/1.  Relaxed atomics — the computed
  /// value is a pure function of the immutable node, so racing writers
  /// store the same value.
  mutable std::atomic<signed char> FinCache{-1};
};

/// Convenience free-function aliases for building programs fluently.
/// \{
CodePtr skip();
CodePtr call(std::string Object, std::string Method,
             std::vector<Arg> Args = {},
             std::optional<std::string> ResultVar = std::nullopt);
CodePtr seq(CodePtr L, CodePtr R);
/// Right-nested sequence of all of \p Cs (skip when empty).
CodePtr seqAll(std::vector<CodePtr> Cs);
CodePtr choice(CodePtr L, CodePtr R);
CodePtr loop(CodePtr B);
CodePtr tx(CodePtr B);
/// \}

/// Structural equality on possibly-null code handles.
bool codeEquals(const CodePtr &A, const CodePtr &B);

} // namespace pushpull

#endif // PUSHPULL_LANG_AST_H
