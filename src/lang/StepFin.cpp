//===- lang/StepFin.cpp - step() and fin() ---------------------------------===//

#include "lang/StepFin.h"

#include <cassert>

using namespace pushpull;

std::vector<StepItem> pushpull::step(const CodePtr &C) {
  assert(C && "step of null code");
  std::vector<StepItem> Out;
  switch (C->kind()) {
  case CodeKind::Skip:
    break;
  case CodeKind::Call:
    Out.push_back({C->call(), skip()});
    break;
  case CodeKind::Seq: {
    // step(c1 ; c2) = (step(c1) ; c2) u (fin(c1) ; step(c2))
    for (StepItem &It : step(C->lhs()))
      Out.push_back({std::move(It.Call), seq(std::move(It.Rest), C->rhs())});
    if (fin(C->lhs()))
      for (StepItem &It : step(C->rhs()))
        Out.push_back(std::move(It));
    break;
  }
  case CodeKind::Choice: {
    for (StepItem &It : step(C->lhs()))
      Out.push_back(std::move(It));
    for (StepItem &It : step(C->rhs()))
      Out.push_back(std::move(It));
    break;
  }
  case CodeKind::Loop: {
    // step((c)*) = step(c) ; (c)*
    for (StepItem &It : step(C->body()))
      Out.push_back({std::move(It.Call), seq(std::move(It.Rest), C)});
    break;
  }
  case CodeKind::Tx:
    Out = step(C->body());
    break;
  }
  return Out;
}

bool pushpull::fin(const CodePtr &C) {
  assert(C && "fin of null code");
  switch (C->kind()) {
  case CodeKind::Skip:
    return true;
  case CodeKind::Call:
    return false;
  case CodeKind::Seq:
    return fin(C->lhs()) && fin(C->rhs());
  case CodeKind::Choice:
    return fin(C->lhs()) || fin(C->rhs());
  case CodeKind::Loop:
    return true;
  case CodeKind::Tx:
    return fin(C->body());
  }
  return false;
}

static void collectMethods(const CodePtr &C, std::vector<MethodExpr> &Out) {
  switch (C->kind()) {
  case CodeKind::Skip:
    return;
  case CodeKind::Call:
    Out.push_back(C->call());
    return;
  case CodeKind::Seq:
  case CodeKind::Choice:
    collectMethods(C->lhs(), Out);
    collectMethods(C->rhs(), Out);
    return;
  case CodeKind::Loop:
  case CodeKind::Tx:
    collectMethods(C->body(), Out);
    return;
  }
}

std::vector<MethodExpr> pushpull::reachableMethods(const CodePtr &C) {
  // Every method in the step()-closure of continuations is a syntactic
  // subterm of C, so a subterm walk computes exactly the reachable set.
  std::vector<MethodExpr> Out;
  collectMethods(C, Out);
  return Out;
}
