//===- lang/StepFin.cpp - step() and fin() ---------------------------------===//

#include "lang/StepFin.h"

#include <cassert>

#if defined(__SANITIZE_ADDRESS__)
#define PUSHPULL_HAS_LSAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PUSHPULL_HAS_LSAN 1
#endif
#endif
#ifdef PUSHPULL_HAS_LSAN
#include <sanitizer/lsan_interface.h>
#endif

using namespace pushpull;

namespace {

/// A Loop node's step cache holds continuations that reference the node
/// itself (see the StepCache comment in lang/Ast.h) — an intentional,
/// text-size-bounded cycle.  Root it so LeakSanitizer treats the cycle
/// as reachable instead of reporting every node it pins.
void lsanRootIntentionalCycle(const void *Node) {
#ifdef PUSHPULL_HAS_LSAN
  __lsan_ignore_object(Node);
#else
  (void)Node;
#endif
}

} // namespace

const std::vector<StepItem> &pushpull::step(const CodePtr &C) {
  assert(C && "step of null code");
  std::call_once(C->StepOnce, [&C] {
    auto Out = std::make_shared<std::vector<StepItem>>();
    switch (C->kind()) {
    case CodeKind::Skip:
      break;
    case CodeKind::Call:
      Out->push_back({C->call(), skip()});
      break;
    case CodeKind::Seq: {
      // step(c1 ; c2) = (step(c1) ; c2) u (fin(c1) ; step(c2))
      for (const StepItem &It : step(C->lhs()))
        Out->push_back({It.Call, seq(It.Rest, C->rhs())});
      if (fin(C->lhs()))
        for (const StepItem &It : step(C->rhs()))
          Out->push_back(It);
      break;
    }
    case CodeKind::Choice: {
      for (const StepItem &It : step(C->lhs()))
        Out->push_back(It);
      for (const StepItem &It : step(C->rhs()))
        Out->push_back(It);
      break;
    }
    case CodeKind::Loop: {
      // step((c)*) = step(c) ; (c)*
      for (const StepItem &It : step(C->body()))
        Out->push_back({It.Call, seq(It.Rest, C)});
      lsanRootIntentionalCycle(C.get());
      break;
    }
    case CodeKind::Tx:
      *Out = step(C->body());
      break;
    }
    C->StepCache = std::move(Out);
  });
  return *C->StepCache;
}

bool pushpull::fin(const CodePtr &C) {
  assert(C && "fin of null code");
  signed char Memo = C->FinCache.load(std::memory_order_relaxed);
  if (Memo >= 0)
    return Memo != 0;
  bool R = false;
  switch (C->kind()) {
  case CodeKind::Skip:
    R = true;
    break;
  case CodeKind::Call:
    R = false;
    break;
  case CodeKind::Seq:
    R = fin(C->lhs()) && fin(C->rhs());
    break;
  case CodeKind::Choice:
    R = fin(C->lhs()) || fin(C->rhs());
    break;
  case CodeKind::Loop:
    R = true;
    break;
  case CodeKind::Tx:
    R = fin(C->body());
    break;
  }
  C->FinCache.store(R ? 1 : 0, std::memory_order_relaxed);
  return R;
}

static void collectMethods(const CodePtr &C, std::vector<MethodExpr> &Out) {
  switch (C->kind()) {
  case CodeKind::Skip:
    return;
  case CodeKind::Call:
    Out.push_back(C->call());
    return;
  case CodeKind::Seq:
  case CodeKind::Choice:
    collectMethods(C->lhs(), Out);
    collectMethods(C->rhs(), Out);
    return;
  case CodeKind::Loop:
  case CodeKind::Tx:
    collectMethods(C->body(), Out);
    return;
  }
}

std::vector<MethodExpr> pushpull::reachableMethods(const CodePtr &C) {
  // Every method in the step()-closure of continuations is a syntactic
  // subterm of C, so a subterm walk computes exactly the reachable set.
  std::vector<MethodExpr> Out;
  collectMethods(C, Out);
  return Out;
}
