//===- lang/Ast.cpp - Transaction language AST -----------------------------===//

#include "lang/Ast.h"

#include "support/Str.h"

#include <cassert>

using namespace pushpull;

std::optional<ResolvedCall> MethodExpr::resolve(const Stack &Sigma) const {
  ResolvedCall Out;
  Out.Object = Object;
  Out.Method = Method;
  for (const Arg &A : Args) {
    if (const Value *V = std::get_if<Value>(&A)) {
      Out.Args.push_back(*V);
      continue;
    }
    auto Bound = Sigma.get(std::get<std::string>(A));
    if (!Bound)
      return std::nullopt;
    Out.Args.push_back(*Bound);
  }
  return Out;
}

std::string MethodExpr::toString() const {
  std::vector<std::string> Parts;
  for (const Arg &A : Args) {
    if (const Value *V = std::get_if<Value>(&A))
      Parts.push_back(std::to_string(*V));
    else
      Parts.push_back(std::get<std::string>(A));
  }
  std::string Out;
  if (ResultVar)
    Out += *ResultVar + " := ";
  Out += Object + "." + Method + "(" + join(Parts, ",") + ")";
  return Out;
}

const MethodExpr &Code::call() const {
  assert(Kind == CodeKind::Call && "call() on non-call node");
  return Call;
}

const CodePtr &Code::lhs() const {
  assert((Kind == CodeKind::Seq || Kind == CodeKind::Choice) &&
         "lhs() on leaf node");
  return Lhs;
}

const CodePtr &Code::rhs() const {
  assert((Kind == CodeKind::Seq || Kind == CodeKind::Choice) &&
         "rhs() on leaf node");
  return Rhs;
}

const CodePtr &Code::body() const {
  assert((Kind == CodeKind::Loop || Kind == CodeKind::Tx) &&
         "body() on non-loop/tx node");
  return Body;
}

bool Code::equals(const Code &O) const {
  if (Kind != O.Kind)
    return false;
  switch (Kind) {
  case CodeKind::Skip:
    return true;
  case CodeKind::Call:
    return Call.Object == O.Call.Object && Call.Method == O.Call.Method &&
           Call.Args == O.Call.Args && Call.ResultVar == O.Call.ResultVar;
  case CodeKind::Seq:
  case CodeKind::Choice:
    return codeEquals(Lhs, O.Lhs) && codeEquals(Rhs, O.Rhs);
  case CodeKind::Loop:
  case CodeKind::Tx:
    return codeEquals(Body, O.Body);
  }
  return false;
}

CodePtr Code::makeSkip() {
  // Skip carries no payload and nodes are immutable, so one shared
  // instance serves every continuation step() synthesizes.
  static const CodePtr Skip(new Code(CodeKind::Skip));
  return Skip;
}

CodePtr Code::makeCall(MethodExpr M) {
  Code *C = new Code(CodeKind::Call);
  C->Call = std::move(M);
  return CodePtr(C);
}

CodePtr Code::makeSeq(CodePtr L, CodePtr R) {
  assert(L && R && "seq of null code");
  Code *C = new Code(CodeKind::Seq);
  C->Lhs = std::move(L);
  C->Rhs = std::move(R);
  return CodePtr(C);
}

CodePtr Code::makeChoice(CodePtr L, CodePtr R) {
  assert(L && R && "choice of null code");
  Code *C = new Code(CodeKind::Choice);
  C->Lhs = std::move(L);
  C->Rhs = std::move(R);
  return CodePtr(C);
}

CodePtr Code::makeLoop(CodePtr B) {
  assert(B && "loop of null code");
  Code *C = new Code(CodeKind::Loop);
  C->Body = std::move(B);
  return CodePtr(C);
}

CodePtr Code::makeTx(CodePtr B) {
  assert(B && "tx of null code");
  Code *C = new Code(CodeKind::Tx);
  C->Body = std::move(B);
  return CodePtr(C);
}

CodePtr pushpull::skip() { return Code::makeSkip(); }

CodePtr pushpull::call(std::string Object, std::string Method,
                       std::vector<Arg> Args,
                       std::optional<std::string> ResultVar) {
  MethodExpr M;
  M.Object = std::move(Object);
  M.Method = std::move(Method);
  M.Args = std::move(Args);
  M.ResultVar = std::move(ResultVar);
  return Code::makeCall(std::move(M));
}

CodePtr pushpull::seq(CodePtr L, CodePtr R) {
  return Code::makeSeq(std::move(L), std::move(R));
}

CodePtr pushpull::seqAll(std::vector<CodePtr> Cs) {
  if (Cs.empty())
    return skip();
  CodePtr Out = Cs.back();
  for (size_t I = Cs.size() - 1; I > 0; --I)
    Out = seq(Cs[I - 1], Out);
  return Out;
}

CodePtr pushpull::choice(CodePtr L, CodePtr R) {
  return Code::makeChoice(std::move(L), std::move(R));
}

CodePtr pushpull::loop(CodePtr B) { return Code::makeLoop(std::move(B)); }

CodePtr pushpull::tx(CodePtr B) { return Code::makeTx(std::move(B)); }

bool pushpull::codeEquals(const CodePtr &A, const CodePtr &B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  return A->equals(*B);
}
