//===- lang/Printer.h - Code pretty-printer ---------------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Render code trees back into the concrete syntax accepted by the parser,
/// so printed programs round-trip.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_LANG_PRINTER_H
#define PUSHPULL_LANG_PRINTER_H

#include "lang/Ast.h"

#include <string>

namespace pushpull {

/// Render \p C in the concrete syntax of the parser; parenthesised only
/// where precedence requires it.
std::string printCode(const CodePtr &C);

} // namespace pushpull

#endif // PUSHPULL_LANG_PRINTER_H
