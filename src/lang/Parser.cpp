//===- lang/Parser.cpp - Concrete-syntax parser ----------------------------===//

#include "lang/Parser.h"

#include <cassert>
#include <cctype>

using namespace pushpull;

namespace {

/// Recursive-descent parser state.  Errors are sticky: after the first
/// failure all productions return null and the message is preserved.
class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  CodePtr parseAll() {
    CodePtr C = parseChoice();
    skipWs();
    if (C && Pos != Text.size())
      return fail("trailing input after statement");
    return C;
  }

  const std::string &error() const { return Err; }
  size_t errorPos() const { return ErrPos; }

private:
  CodePtr fail(const std::string &Msg) {
    if (Err.empty()) {
      Err = Msg;
      ErrPos = Pos;
    }
    return nullptr;
  }

  void skipWs() {
    while (Pos < Text.size()) {
      if (std::isspace(static_cast<unsigned char>(Text[Pos]))) {
        ++Pos;
        continue;
      }
      // Line comments: // ... end-of-line.
      if (Text[Pos] == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '/') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      break;
    }
  }

  bool eat(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool peek(char C) {
    skipWs();
    return Pos < Text.size() && Text[Pos] == C;
  }

  /// Parse an identifier; empty string on failure (no error recorded).
  std::string ident() {
    skipWs();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_'))
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }

  /// Try to consume keyword \p Kw at the cursor (with identifier boundary).
  bool keyword(const std::string &Kw) {
    skipWs();
    size_t Save = Pos;
    std::string Id = ident();
    if (Id == Kw)
      return true;
    Pos = Save;
    return false;
  }

  CodePtr parseChoice() {
    CodePtr L = parseSeq();
    while (L && eat('+')) {
      CodePtr R = parseSeq();
      if (!R)
        return nullptr;
      L = choice(std::move(L), std::move(R));
    }
    return L;
  }

  CodePtr parseSeq() {
    CodePtr L = parsePostfix();
    while (L && eat(';')) {
      CodePtr R = parsePostfix();
      if (!R)
        return nullptr;
      L = seq(std::move(L), std::move(R));
    }
    return L;
  }

  CodePtr parsePostfix() {
    CodePtr C = parsePrim();
    while (C && eat('*'))
      C = loop(std::move(C));
    return C;
  }

  CodePtr parsePrim() {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    if (eat('(')) {
      CodePtr C = parseChoice();
      if (!C)
        return nullptr;
      if (!eat(')'))
        return fail("expected ')'");
      return C;
    }
    if (keyword("skip"))
      return skip();
    if (keyword("tx")) {
      if (!eat('{'))
        return fail("expected '{' after tx");
      CodePtr B = parseChoice();
      if (!B)
        return nullptr;
      if (!eat('}'))
        return fail("expected '}' closing tx");
      return tx(std::move(B));
    }
    return parseCall();
  }

  CodePtr parseCall() {
    std::string First = ident();
    if (First.empty())
      return fail("expected statement");
    std::optional<std::string> ResultVar;
    std::string Object;
    // Either "obj.method(...)" or "var := obj.method(...)".
    skipWs();
    if (Pos + 1 < Text.size() && Text[Pos] == ':' && Text[Pos + 1] == '=') {
      Pos += 2;
      ResultVar = First;
      Object = ident();
      if (Object.empty())
        return fail("expected object name after ':='");
    } else {
      Object = First;
    }
    if (!eat('.'))
      return fail("expected '.' in method call");
    std::string Method = ident();
    if (Method.empty())
      return fail("expected method name");
    if (!eat('('))
      return fail("expected '(' in method call");
    std::vector<Arg> Args;
    if (!peek(')')) {
      do {
        std::optional<Arg> A = parseArg();
        if (!A)
          return nullptr;
        Args.push_back(std::move(*A));
      } while (eat(','));
    }
    if (!eat(')'))
      return fail("expected ')' closing argument list");
    return call(std::move(Object), std::move(Method), std::move(Args),
                std::move(ResultVar));
  }

  std::optional<Arg> parseArg() {
    skipWs();
    if (Pos < Text.size() &&
        (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
         Text[Pos] == '-')) {
      size_t Start = Pos;
      if (Text[Pos] == '-')
        ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
      if (Pos == Start || (Text[Start] == '-' && Pos == Start + 1)) {
        fail("expected integer literal");
        return std::nullopt;
      }
      return Arg(static_cast<Value>(
          std::stoll(Text.substr(Start, Pos - Start))));
    }
    std::string Id = ident();
    if (Id.empty()) {
      fail("expected argument");
      return std::nullopt;
    }
    return Arg(std::move(Id));
  }

  const std::string &Text;
  size_t Pos = 0;
  std::string Err;
  size_t ErrPos = 0;
};

} // namespace

ParseResult pushpull::parseCode(const std::string &Text) {
  Parser P(Text);
  ParseResult Out;
  Out.Parsed = P.parseAll();
  if (!Out.Parsed) {
    Out.Error = P.error().empty() ? "parse error" : P.error();
    Out.ErrorPos = P.errorPos();
  }
  return Out;
}

CodePtr pushpull::parseOrDie(const std::string &Text) {
  ParseResult R = parseCode(Text);
  assert(R.ok() && "parseOrDie on invalid program text");
  return R.Parsed;
}
