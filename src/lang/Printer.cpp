//===- lang/Printer.cpp - Code pretty-printer ------------------------------===//

#include "lang/Printer.h"

#include <cassert>

using namespace pushpull;

namespace {

/// Binding strength: Choice < Seq < Postfix(*) < Atom.
enum Prec { PrecChoice = 0, PrecSeq = 1, PrecPostfix = 2, PrecAtom = 3 };

std::string printAt(const CodePtr &C, int Ambient) {
  assert(C && "printing null code");
  std::string Body;
  int Mine = PrecAtom;
  switch (C->kind()) {
  case CodeKind::Skip:
    Body = "skip";
    break;
  case CodeKind::Call:
    Body = C->call().toString();
    break;
  case CodeKind::Seq:
    // The parser associates ';' to the left, so a right-nested right
    // child needs parentheses to round-trip structurally.
    Mine = PrecSeq;
    Body = printAt(C->lhs(), PrecSeq) + "; " + printAt(C->rhs(), PrecSeq + 1);
    break;
  case CodeKind::Choice:
    Mine = PrecChoice;
    Body = printAt(C->lhs(), PrecChoice) + " + " +
           printAt(C->rhs(), PrecChoice + 1);
    break;
  case CodeKind::Loop:
    Mine = PrecPostfix;
    Body = printAt(C->body(), PrecAtom) + "*";
    break;
  case CodeKind::Tx:
    Body = "tx { " + printAt(C->body(), PrecChoice) + " }";
    break;
  }
  if (Mine < Ambient)
    return "(" + Body + ")";
  return Body;
}

} // namespace

std::string pushpull::printCode(const CodePtr &C) {
  return printAt(C, PrecChoice);
}

const std::string &Code::printed() const {
  std::call_once(PrintedOnce, [this] {
    // Rebuild a CodePtr alias onto ourselves for the recursive printer;
    // the no-op deleter keeps this from double-owning the node.
    CodePtr Self(const_cast<const Code *>(this), [](const Code *) {});
    Printed = printAt(Self, PrecChoice);
  });
  return Printed;
}
