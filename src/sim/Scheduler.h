//===- sim/Scheduler.h - Interleaving scheduler -----------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives a TM engine over the PUSH/PULL machine, interleaving threads
/// under a policy (round-robin or seeded-random).  The machine's MS_SELECT
/// nondeterminism is exactly the scheduler's thread choice; engine steps
/// are the grain of interleaving.  A run ends when every thread finishes
/// or the step budget is exhausted (livelock guard: the budget, not the
/// model, bounds retries).
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SIM_SCHEDULER_H
#define PUSHPULL_SIM_SCHEDULER_H

#include "sim/Stats.h"
#include "support/Rng.h"
#include "tm/Engine.h"

#include <vector>

namespace pushpull {

/// Thread-selection policy.
enum class SchedulePolicy {
  RoundRobin,
  RandomUniform,
  /// PCT-style priority scheduling (Burckhardt et al.): each thread gets
  /// a random priority; the runnable thread with the highest priority
  /// always runs, except at a few random change points where a priority
  /// drops to the bottom.  Probabilistically good at driving rare
  /// orderings that uniform-random scheduling misses.
  PriorityChangePoints,
  /// Recorded-schedule replay: thread picks come verbatim from
  /// SchedulerConfig::ReplayPicks (one engine step per entry, done threads
  /// included — stepping a finished thread is a deterministic Finished).
  /// The run ends when the recording is exhausted.  This is how ppstress
  /// re-executes a captured `.ppsched` window deterministically.
  Replay,
};

/// Scheduler knobs.
struct SchedulerConfig {
  SchedulePolicy Policy = SchedulePolicy::RandomUniform;
  uint64_t Seed = 1;
  /// Abort the run (leaving Quiescent=false) after this many steps.
  uint64_t MaxSteps = 1000000;
  /// For PriorityChangePoints: how many priority-drop points to scatter
  /// over the run (the PCT depth parameter d-1).
  unsigned ChangePoints = 3;
  /// For Replay: the recorded thread-pick sequence.  Entries naming a
  /// nonexistent thread end the run (a recording/config mismatch must not
  /// fabricate steps).
  std::vector<uint32_t> ReplayPicks{};
  /// When set, every pick actually stepped is appended here, so a random
  /// or PCT run can be re-executed later under Replay.
  std::vector<uint32_t> *CapturePicks = nullptr;
};

/// Runs one engine to quiescence (or budget exhaustion).
class Scheduler {
public:
  explicit Scheduler(SchedulerConfig Config = {}) : Config(Config) {}

  /// Drive \p E until its machine is quiescent.  Returns the aggregated
  /// statistics (including the engine's abort count and the machine's
  /// trace histogram).
  RunStats run(TMEngine &E);

private:
  SchedulerConfig Config;
};

} // namespace pushpull

#endif // PUSHPULL_SIM_SCHEDULER_H
