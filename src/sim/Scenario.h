//===- sim/Scenario.h - Declarative experiment scenarios --------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small declarative format for describing a complete experiment — the
/// specification(s), the TM engine, the schedule, the thread programs,
/// and the checks to run — so scenarios can live in text files and be
/// driven by the `pprun` tool (or constructed programmatically in tests):
///
///   # Figure 2, in scenario form.
///   spec map name=map keys=8 vals=4
///   engine boosting seed=42
///   schedule random seed=7 maxsteps=100000
///   thread tx { a := map.put(1, 2) }; tx { b := map.get(1) }
///   thread tx { c := map.put(1, 3) }
///   check serializability
///   check opacity
///
/// Multiple `spec` lines compose into a CompositeSpec (the Section 7
/// mixture).  Supported specs: register, counter, set, map, queue, bank.
/// Supported engines: optimistic, checkpoint, boosting, pessimistic,
/// irrevocable, dependent, early-release, htm, htm-word, hybrid.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SIM_SCENARIO_H
#define PUSHPULL_SIM_SCENARIO_H

#include "core/Machine.h"
#include "sim/Reduction.h"
#include "sim/Scheduler.h"
#include "sim/Stats.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pushpull {

class TMEngine;

/// A parsed scenario, ready to run.
struct Scenario {
  /// The composed specification (single part or composite).
  std::shared_ptr<const SequentialSpec> Spec;
  /// Engine selector (one of the names above).
  std::string Engine = "optimistic";
  /// Engine key=value options (seed, deadlock, abort%, conflict%, htm=...).
  std::map<std::string, std::string> EngineOpts;
  /// Scheduler policy ("random", "roundrobin", "pct", or "replay"), seed,
  /// step budget, and PCT change-point count.
  SchedulePolicy Policy = SchedulePolicy::RandomUniform;
  uint64_t ScheduleSeed = 1;
  uint64_t MaxSteps = 200000;
  unsigned ChangePoints = 3;
  /// For the "replay" policy: the recorded pick sequence
  /// (`schedule replay picks=0,1,0,...` — the `.ppsched` format).
  std::vector<uint32_t> ReplayPicks;
  /// Fault injection (`inject PUSH criterion (ii)`): forwarded to
  /// MachineConfig::DisabledCriterion.  Empty in production scenarios.
  std::string DisabledCriterion;
  /// Per-thread transaction sequences.
  std::vector<std::vector<CodePtr>> Threads;
  /// Requested checks: "serializability", "serializability-any",
  /// "opacity", "invariants", "explore".
  std::vector<std::string> Checks;
  /// Resource bounds for the mover/precongruence engines the run and its
  /// checks construct (pprun --max-reachable / --max-pairs).
  MoverLimits Movers;
  PrecongruenceLimits Pre;
  /// Worker threads for the "explore" check (pprun --threads).
  unsigned ExplorerThreads = 1;
  /// Partial-order reduction for the "explore" check (pprun --reduction).
  Reduction ExplorerReduction = Reduction::None;
  /// Certified commutativity oracle for the "explore" check (pprun
  /// --commut-db): enables the PUSH x PUSH independence refinement and the
  /// G-order quotient key together.  Not owned; must outlive the run and
  /// cover the scenario's operation alphabet (see core/Commut.h).
  const CommutativityOracle *CommutDB = nullptr;
  /// Skip the per-terminal serializability replay in "explore": only set
  /// after ppcheck --prove (or pprun --static-prove) established a
  /// whole-program proof for this scenario's engine surface.
  bool SkipOracleReplay = false;
};

/// Parse outcome.
struct ScenarioParseResult {
  std::unique_ptr<Scenario> Parsed;
  std::string Error;
  size_t ErrorLine = 0;

  bool ok() const { return Parsed != nullptr; }
};

/// Parse the scenario text format.  Never throws.
ScenarioParseResult parseScenario(const std::string &Text);

/// Build one spec part from a scenario-style kind ("register", "counter",
/// "set", "map", "queue", "bank") and key=value options.  \p Name receives
/// the part's object name (the "name" option, defaulting to the kind).
/// Returns nullptr and sets \p Error for an unknown kind.  Shared by the
/// scenario parser and the fuzzer's case builder.
std::shared_ptr<const SequentialSpec>
makeSpecPart(const std::string &Kind,
             const std::map<std::string, std::string> &Opts,
             std::string &Name, std::string &Error);

/// Build a TM engine by scenario name ("optimistic", "checkpoint",
/// "boosting", "pessimistic", "irrevocable", "dependent", "early-release",
/// "htm", "htm-word", "hybrid") over \p M, honouring the engine's
/// key=value options.  Returns nullptr and sets \p Error for an unknown
/// name.  Shared by runScenario and the fuzzer's DiffRunner.
std::unique_ptr<TMEngine>
makeEngine(const std::string &Name,
           const std::map<std::string, std::string> &Opts,
           PushPullMachine &M, std::string &Error);

/// The ten scenario engine names, in canonical order.
const std::vector<std::string> &allEngineNames();

/// The six primitive spec kinds, in canonical order ("composite" mixes
/// are built from several parts).
const std::vector<std::string> &allSpecKinds();

/// Split a thread program `tx {..}; tx {..}; ...` into its transaction
/// list.  Returns empty (and sets Error) if a method occurs outside a
/// transaction (the paper's well-formedness condition).
std::vector<CodePtr> flattenTransactions(const CodePtr &C,
                                         std::string &Error);

/// Result of running a scenario.
struct ScenarioOutcome {
  RunStats Stats;
  /// Verdicts of the requested checks, as "name: verdict" lines.
  std::vector<std::string> CheckResults;
  /// The run's rule trace rendering.
  std::string Trace;
  /// The criteria audit: every applied rule with per-criterion verdicts
  /// (the machine-checked discharge record of the paper's
  /// side-conditions).
  std::string Audit;
  /// Final committed shared log rendering.
  std::string CommittedLog;
  /// Interning/memoization effectiveness of the run (pprun --stats).
  CacheStats Caches;
  /// True iff the run finished and every check passed.
  bool Ok = false;
};

/// Build the machine and engine, run to quiescence, perform the checks.
ScenarioOutcome runScenario(const Scenario &S);

} // namespace pushpull

#endif // PUSHPULL_SIM_SCENARIO_H
