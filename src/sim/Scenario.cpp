//===- sim/Scenario.cpp - Declarative experiment scenarios ------------------===//

#include "sim/Scenario.h"

#include "check/Opacity.h"
#include "check/Serializability.h"
#include "core/Invariants.h"
#include "lang/Parser.h"
#include "sim/Explorer.h"
#include "sim/Scheduler.h"
#include "spec/BankSpec.h"
#include "spec/CompositeSpec.h"
#include "spec/CounterSpec.h"
#include "spec/MapSpec.h"
#include "spec/QueueSpec.h"
#include "spec/RegisterSpec.h"
#include "spec/SetSpec.h"
#include "support/Str.h"
#include "tm/BoostingTM.h"
#include "tm/CheckpointTM.h"
#include "tm/DependentTM.h"
#include "tm/EarlyReleaseTM.h"
#include "tm/HtmTM.h"
#include "tm/HybridHtmBoostingTM.h"
#include "tm/IrrevocableTM.h"
#include "tm/OptimisticTM.h"
#include "tm/PessimisticCommitTM.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

using namespace pushpull;

namespace {

/// Tokenize a directive line into words.
std::vector<std::string> words(const std::string &Line) {
  std::vector<std::string> Out;
  std::istringstream In(Line);
  std::string W;
  while (In >> W)
    Out.push_back(W);
  return Out;
}

/// Parse trailing key=value options into a map.
std::map<std::string, std::string>
options(const std::vector<std::string> &Ws, size_t From) {
  std::map<std::string, std::string> Out;
  for (size_t I = From; I < Ws.size(); ++I) {
    size_t Eq = Ws[I].find('=');
    if (Eq == std::string::npos)
      Out[Ws[I]] = "";
    else
      Out[Ws[I].substr(0, Eq)] = Ws[I].substr(Eq + 1);
  }
  return Out;
}

uint64_t numOr(const std::map<std::string, std::string> &Opts,
               const std::string &Key, uint64_t Default) {
  auto It = Opts.find(Key);
  if (It == Opts.end() || It->second.empty())
    return Default;
  return std::stoull(It->second);
}

std::string strOr(const std::map<std::string, std::string> &Opts,
                  const std::string &Key, const std::string &Default) {
  auto It = Opts.find(Key);
  return It == Opts.end() ? Default : It->second;
}

void collectTxs(const CodePtr &C, std::vector<CodePtr> &Out, bool &Bad) {
  switch (C->kind()) {
  case CodeKind::Tx:
    Out.push_back(C);
    return;
  case CodeKind::Seq:
    collectTxs(C->lhs(), Out, Bad);
    collectTxs(C->rhs(), Out, Bad);
    return;
  case CodeKind::Skip:
    return;
  default:
    Bad = true;
    return;
  }
}

} // namespace

std::shared_ptr<const SequentialSpec>
pushpull::makeSpecPart(const std::string &Kind,
                       const std::map<std::string, std::string> &Opts,
                       std::string &Name, std::string &Error) {
  Name = strOr(Opts, "name", Kind);
  if (Kind == "register")
    return std::make_shared<RegisterSpec>(
        Name, static_cast<unsigned>(numOr(Opts, "regs", 4)),
        static_cast<unsigned>(numOr(Opts, "vals", 4)));
  if (Kind == "counter")
    return std::make_shared<CounterSpec>(
        Name, static_cast<unsigned>(numOr(Opts, "counters", 2)),
        static_cast<unsigned>(numOr(Opts, "mod", 8)));
  if (Kind == "set")
    return std::make_shared<SetSpec>(
        Name, static_cast<unsigned>(numOr(Opts, "keys", 8)));
  if (Kind == "map")
    return std::make_shared<MapSpec>(
        Name, static_cast<unsigned>(numOr(Opts, "keys", 8)),
        static_cast<unsigned>(numOr(Opts, "vals", 4)));
  if (Kind == "queue")
    return std::make_shared<QueueSpec>(
        Name, static_cast<unsigned>(numOr(Opts, "cap", 4)),
        static_cast<unsigned>(numOr(Opts, "vals", 2)));
  if (Kind == "bank")
    return std::make_shared<BankSpec>(
        Name, static_cast<unsigned>(numOr(Opts, "accounts", 2)),
        static_cast<unsigned>(numOr(Opts, "cap", 4)),
        static_cast<unsigned>(numOr(Opts, "initial", 2)));
  Error = "unknown spec kind '" + Kind + "'";
  return nullptr;
}

std::unique_ptr<TMEngine>
pushpull::makeEngine(const std::string &Name,
                     const std::map<std::string, std::string> &Opts,
                     PushPullMachine &M, std::string &Error) {
  uint64_t Seed = std::stoull(
      Opts.count("seed") && !Opts.at("seed").empty() ? Opts.at("seed") : "1");

  if (Name == "optimistic")
    return std::make_unique<OptimisticTM>(M, OptimisticConfig{Seed});
  if (Name == "checkpoint") {
    CheckpointConfig C;
    C.Seed = Seed;
    C.CheckpointEvery = static_cast<unsigned>(numOr(Opts, "every", 2));
    return std::make_unique<CheckpointTM>(M, C);
  }
  if (Name == "boosting") {
    BoostingConfig C;
    C.Seed = Seed;
    C.DeadlockThreshold =
        static_cast<unsigned>(numOr(Opts, "deadlock", 8));
    C.KeyGranularLocks = numOr(Opts, "keylocks", 1) != 0;
    return std::make_unique<BoostingTM>(M, C);
  }
  if (Name == "pessimistic") {
    PessimisticConfig C;
    C.Seed = Seed;
    return std::make_unique<PessimisticCommitTM>(M, std::move(C));
  }
  if (Name == "irrevocable") {
    IrrevocableConfig C;
    C.Seed = Seed;
    C.IrrevocableThread =
        static_cast<TxId>(numOr(Opts, "irrevocable", 0));
    return std::make_unique<IrrevocableTM>(M, C);
  }
  if (Name == "dependent") {
    DependentConfig C;
    C.Seed = Seed;
    C.AbortChancePct =
        static_cast<unsigned>(numOr(Opts, "abortpct", 0));
    return std::make_unique<DependentTM>(M, C);
  }
  if (Name == "early-release")
    return std::make_unique<EarlyReleaseTM>(M, EarlyReleaseConfig{Seed});
  if (Name == "htm" || Name == "htm-word") {
    HtmConfig C;
    C.Seed = Seed;
    C.WordGranularity = Name == "htm-word";
    return std::make_unique<HtmTM>(M, C);
  }
  if (Name == "hybrid") {
    HybridConfig C;
    C.Seed = Seed;
    C.ConflictChancePct =
        static_cast<unsigned>(numOr(Opts, "conflictpct", 0));
    for (const std::string &Obj : splitOn(strOr(Opts, "htm", ""), ','))
      if (!Obj.empty())
        C.HtmObjects.insert(Obj);
    return std::make_unique<HybridHtmBoostingTM>(M, std::move(C));
  }
  Error = "unknown engine '" + Name + "'";
  return nullptr;
}

const std::vector<std::string> &pushpull::allEngineNames() {
  static const std::vector<std::string> Names = {
      "optimistic", "checkpoint", "boosting",      "pessimistic", "irrevocable",
      "dependent",  "early-release", "htm",        "htm-word",    "hybrid"};
  return Names;
}

const std::vector<std::string> &pushpull::allSpecKinds() {
  static const std::vector<std::string> Kinds = {
      "register", "counter", "set", "map", "queue", "bank"};
  return Kinds;
}

std::vector<CodePtr> pushpull::flattenTransactions(const CodePtr &C,
                                                   std::string &Error) {
  std::vector<CodePtr> Out;
  bool Bad = false;
  collectTxs(C, Out, Bad);
  if (Bad) {
    Error = "thread programs must be sequences of tx { ... } blocks "
            "(methods may not occur outside a transaction)";
    return {};
  }
  return Out;
}

ScenarioParseResult pushpull::parseScenario(const std::string &Text) {
  ScenarioParseResult Out;
  auto S = std::make_unique<Scenario>();
  auto Composite = std::make_shared<CompositeSpec>();
  std::vector<std::pair<std::string, std::shared_ptr<const SequentialSpec>>>
      Parts;

  auto Fail = [&](size_t LineNo, std::string Msg) {
    Out.Error = std::move(Msg);
    Out.ErrorLine = LineNo;
    Out.Parsed = nullptr;
    return std::move(Out);
  };

  std::vector<std::string> Lines = splitOn(Text, '\n');
  for (size_t N = 0; N < Lines.size(); ++N) {
    std::string Line = Lines[N];
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line = Line.substr(0, Hash);
    std::vector<std::string> Ws = words(Line);
    if (Ws.empty())
      continue;
    const std::string &Directive = Ws[0];

    if (Directive == "spec") {
      if (Ws.size() < 2)
        return Fail(N + 1, "spec needs a kind");
      std::string Name, Error;
      auto Part = makeSpecPart(Ws[1], options(Ws, 2), Name, Error);
      if (!Part)
        return Fail(N + 1, Error);
      for (const auto &[ExistingName, _] : Parts)
        if (ExistingName == Name)
          return Fail(N + 1, "duplicate spec name '" + Name + "'");
      Parts.push_back({Name, std::move(Part)});
      continue;
    }
    if (Directive == "engine") {
      if (Ws.size() < 2)
        return Fail(N + 1, "engine needs a name");
      S->Engine = Ws[1];
      S->EngineOpts = options(Ws, 2);
      continue;
    }
    if (Directive == "schedule") {
      if (Ws.size() < 2)
        return Fail(N + 1, "schedule needs a policy");
      if (Ws[1] == "random")
        S->Policy = SchedulePolicy::RandomUniform;
      else if (Ws[1] == "roundrobin")
        S->Policy = SchedulePolicy::RoundRobin;
      else if (Ws[1] == "pct")
        S->Policy = SchedulePolicy::PriorityChangePoints;
      else if (Ws[1] == "replay")
        S->Policy = SchedulePolicy::Replay;
      else
        return Fail(N + 1, "unknown schedule policy '" + Ws[1] + "'");
      auto Opts = options(Ws, 2);
      S->ScheduleSeed = numOr(Opts, "seed", 1);
      S->MaxSteps = numOr(Opts, "maxsteps", 200000);
      S->ChangePoints =
          static_cast<unsigned>(numOr(Opts, "changepoints", 3));
      if (S->Policy == SchedulePolicy::Replay) {
        std::string Picks = strOr(Opts, "picks", "");
        if (Picks.empty())
          return Fail(N + 1, "schedule replay needs picks=t0,t1,...");
        for (const std::string &P : splitOn(Picks, ',')) {
          if (P.empty())
            continue;
          char *End = nullptr;
          unsigned long V = std::strtoul(P.c_str(), &End, 10);
          if (End == P.c_str() || *End != '\0')
            return Fail(N + 1, "bad replay pick '" + P + "'");
          S->ReplayPicks.push_back(static_cast<uint32_t>(V));
        }
      }
      continue;
    }
    if (Directive == "inject") {
      // Fault injection: the rest of the line is the exact paper-style
      // criterion name to skip, e.g. `inject PUSH criterion (ii)`.
      if (Ws.size() < 2)
        return Fail(N + 1, "inject needs a criterion name");
      size_t At = Line.find("inject");
      std::string Name = Line.substr(At + 6);
      size_t B = Name.find_first_not_of(" \t");
      size_t E = Name.find_last_not_of(" \t\r");
      if (B == std::string::npos)
        return Fail(N + 1, "inject needs a criterion name");
      S->DisabledCriterion = Name.substr(B, E - B + 1);
      continue;
    }
    if (Directive == "thread") {
      std::string Program = Line.substr(Line.find("thread") + 6);
      ParseResult PR = parseCode(Program);
      if (!PR.ok())
        return Fail(N + 1, "program parse error: " + PR.Error);
      std::string Error;
      std::vector<CodePtr> Txs = flattenTransactions(PR.Parsed, Error);
      if (!Error.empty())
        return Fail(N + 1, Error);
      if (Txs.empty())
        return Fail(N + 1, "thread has no transactions");
      S->Threads.push_back(std::move(Txs));
      continue;
    }
    if (Directive == "check") {
      if (Ws.size() < 2)
        return Fail(N + 1, "check needs a name");
      S->Checks.push_back(Ws[1]);
      continue;
    }
    return Fail(N + 1, "unknown directive '" + Directive + "'");
  }

  if (Parts.empty())
    return Fail(0, "scenario declares no spec");
  if (S->Threads.empty())
    return Fail(0, "scenario declares no threads");

  if (Parts.size() == 1) {
    S->Spec = Parts[0].second;
  } else {
    for (auto &[Name, Part] : Parts)
      Composite->add(Name, std::move(Part));
    S->Spec = Composite;
  }
  Out.Parsed = std::move(S);
  return Out;
}

ScenarioOutcome pushpull::runScenario(const Scenario &S) {
  ScenarioOutcome Out;
  memstats::Snapshot MemBefore = memstats::read();
  MoverChecker Movers(*S.Spec, S.Movers, S.Pre);
  MachineConfig MC;
  MC.RecordAudit = true; // Scenario runs are small; keep the discharge log.
  MC.DisabledCriterion = S.DisabledCriterion;
  PushPullMachine M(*S.Spec, Movers, MC);
  for (const auto &P : S.Threads)
    M.addThread(P);

  std::string EngineError;
  std::unique_ptr<TMEngine> Engine =
      makeEngine(S.Engine, S.EngineOpts, M, EngineError);
  if (!Engine) {
    Out.CheckResults.push_back("error: " + EngineError);
    return Out;
  }

  SchedulerConfig SC;
  SC.Policy = S.Policy;
  SC.Seed = S.ScheduleSeed;
  SC.MaxSteps = S.MaxSteps;
  SC.ChangePoints = S.ChangePoints;
  SC.ReplayPicks = S.ReplayPicks;
  Scheduler Sched(SC);
  Out.Stats = Sched.run(*Engine);
  Out.Trace = M.trace().toString();
  Out.Audit = M.auditToString();
  Out.CommittedLog = M.global().toString();
  Out.Ok = Out.Stats.Quiescent;

  for (const std::string &Check : S.Checks) {
    if (Check == "serializability" || Check == "serializability-any") {
      SerializabilityChecker Oracle(*S.Spec, {}, S.Pre);
      SerializabilityVerdict V = Check == "serializability"
                                     ? Oracle.checkCommitOrder(M)
                                     : Oracle.checkAnyOrder(M);
      Out.CheckResults.push_back(Check + ": " + toString(V.Serializable));
      Out.Ok = Out.Ok && V.Serializable == Tri::Yes;
    } else if (Check == "opacity") {
      OpacityReport R = classifyTrace(M.trace());
      Out.CheckResults.push_back(
          "opacity: " + std::string(R.InOpaqueFragment
                                        ? "in the opaque fragment"
                                        : "outside the opaque fragment") +
          " (" + std::to_string(R.UncommittedPulls) + "/" +
          std::to_string(R.TotalPulls) + " uncommitted pulls)");
    } else if (Check == "invariants") {
      bool AllHold = true;
      for (const ThreadState &Th : M.threads()) {
        InvariantReport R = checkAllInvariants(Th, M.global(), Movers);
        if (!R.Holds) {
          AllHold = false;
          Out.CheckResults.push_back("invariants: FAILED " + R.Which +
                                     " — " + R.Detail);
        }
      }
      if (AllHold)
        Out.CheckResults.push_back("invariants: hold");
      Out.Ok = Out.Ok && AllHold;
    } else if (Check == "explore") {
      // Exhaustive interleaving exploration of the scenario's programs —
      // every schedule, not just the one the engine/scheduler produced.
      ExplorerConfig EC;
      EC.Threads = S.ExplorerThreads;
      EC.Reduce = S.ExplorerReduction;
      EC.CommutDB = S.CommutDB;
      EC.SkipOracle = S.SkipOracleReplay;
      Explorer Ex(*S.Spec, Movers, EC);
      ExplorerReport R = Ex.explore(S.Threads);
      std::string Line =
          "explore: " + std::to_string(R.ConfigsVisited) + " configs, " +
          std::to_string(R.TerminalConfigs) + " terminals, " +
          std::to_string(R.NonSerializable) + " non-serializable, " +
          std::to_string(R.InvariantViolations) + " invariant violations";
      if (EC.Reduce != Reduction::None)
        Line += ", reduction=" + toString(EC.Reduce) + " pruned " +
                std::to_string(R.FiringsPruned) + " firings";
      if (R.OracleSkips)
        Line += ", " + std::to_string(R.OracleSkips) + " oracle-skipped";
      if (R.Truncated)
        Line += " (truncated)";
      Out.CheckResults.push_back(std::move(Line));
      Out.Caches.ExplorerFiringsPruned += R.FiringsPruned;
      Out.Caches.ExplorerPersistentCuts += R.PersistentCuts;
      Out.Caches.ExplorerSymmetryHits += R.SymmetryHits;
      Out.Caches.ExplorerReductionRatio = R.reductionRatio();
      Out.Caches.OracleSkips += R.OracleSkips;
      Out.Ok = Out.Ok && R.clean();
    } else {
      Out.CheckResults.push_back("error: unknown check '" + Check + "'");
      Out.Ok = false;
    }
  }

  Out.Caches.Intern = S.Spec->internStats();
  Out.Caches.MoverMemoHits = Movers.memoHits();
  Out.Caches.MoverMemoMisses = Movers.memoMisses();
  Out.Caches.PrecongruencePairs = Movers.precongruence().pairsVisited();
  Out.Caches.ReachableSets = Movers.reachableComputedCount();
  if (S.CommutDB) {
    Out.Caches.CommutTableHits = S.CommutDB->tableHits();
    Out.Caches.CommutTableMisses = S.CommutDB->tableMisses();
    Out.Caches.CertChecks = S.CommutDB->certChecks();
  }
  Out.Caches.Memory = memstats::read().delta(MemBefore);
  return Out;
}
