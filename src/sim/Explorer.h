//===- sim/Explorer.h - Exhaustive interleaving explorer --------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small-scope model checker over the PUSH/PULL machine itself: it
/// enumerates *every* interleaving of rule applications for a set of small
/// thread programs (DFS with memoized configurations) and checks, at every
/// quiescent configuration, that the run is serializable via the
/// independent oracle — the executable content of Theorem 5.17.  Unlike
/// the scheduler+engine runs (which explore one algorithm's strategy), the
/// explorer exercises the model's full nondeterminism, including the
/// backward rules when enabled.
///
/// Optionally the Section 5.3 invariants are re-checked at every explored
/// configuration (Lemmas 5.7-5.13 as runtime assertions).
///
/// ExplorerConfig::Reduce selects a partial-order reduction (see
/// sim/Reduction.h): sleep sets prune transitions whose exploration would
/// only re-derive commuted interleavings, persistent sets additionally
/// prune configurations (BEGIN-priority), and the symmetry mode
/// canonicalizes configurations under renaming of identical thread
/// programs before the visited-map lookup.  Every mode preserves the
/// *verdicts*: NonSerializable and InvariantViolations are zero under a
/// reduced search iff they are zero under Reduction::None, and the modes
/// without symmetry preserve the exact TerminalConfigs and per-terminal
/// verdict counts (the tests/reduction_test.cpp battery enforces this).
///
/// With ExplorerConfig::Threads > 1 the search runs on a worker pool: a
/// shared LIFO work queue of configurations (sleep sets travel with the
/// work items), a sharded concurrent visited map, per-worker mover
/// checkers and oracles (verdicts are cache-independent, so worker-local
/// caches are sound), and atomic report counters.
///
/// Which report fields are deterministic: the visited/accounting protocol
/// guarantees that the aggregate totals ConfigsVisited / TerminalConfigs /
/// NonSerializable / InvariantViolations are deterministic for a given
/// (config, reduction mode) and equal across Threads=1 and Threads>1 on
/// non-truncated explorations.  RuleApplications, RejectedAttempts,
/// FiringsPruned, PersistentCuts and SymmetryHits count *work performed*:
/// they are deterministic under Threads=1 but vary with visit order under
/// Threads>1 (parallel workers may race to a configuration and re-expand
/// it), and which failure is reported first likewise depends on order.
/// Tests must assert only the deterministic totals when Threads>1 — see
/// tests/explorer_test.cpp and tests/reduction_test.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SIM_EXPLORER_H
#define PUSHPULL_SIM_EXPLORER_H

#include "check/Serializability.h"
#include "core/Machine.h"
#include "sim/Reduction.h"

#include <cstdint>
#include <functional>
#include <string>

namespace pushpull {

/// Exploration options.
struct ExplorerConfig {
  /// Validation regime of the explored machine.  Exploring with weakened
  /// criteria (e.g. EnforceGrayCriteria=false) is the ablation that
  /// demonstrates which side-conditions are load-bearing: the
  /// NonSerializable counter stops being zero.
  MachineConfig Machine;
  /// Include the backward rules (UNAPP/UNPUSH/UNPULL) in the enumeration.
  /// They enlarge the state space considerably; small scopes only.
  bool ExploreBackwardRules = false;
  /// Include PULLs of uncommitted entries (the non-opaque behaviours).
  bool ExploreUncommittedPulls = true;
  /// Re-check the Section 5.3 invariants at every configuration.
  bool CheckInvariants = false;
  /// Partial-order reduction mode (sim/Reduction.h).  None keeps the
  /// full enumeration; every mode preserves the verdicts (see the file
  /// comment).
  Reduction Reduce = Reduction::None;
  /// Stop after visiting this many distinct configurations.
  uint64_t MaxConfigs = 2000000;
  /// Abandon paths longer than this many rule applications.
  size_t MaxDepth = 64;
  /// Worker threads.  1 (the default) keeps the exact sequential DFS;
  /// >1 shards the search across a pool (same aggregate totals, see the
  /// file comment).
  unsigned Threads = 1;
  /// Certified strong-commutation oracle (core/Commut.h), or null.  When
  /// set, two things happen *together* (they are only sound as a pair):
  /// the independence relation treats cross-thread PUSHes of strongly
  /// commuting operations as independent, and the visited-map key renders
  /// the global log in the oracle's canonical quotient order, merging
  /// configurations that differ only by certified commutations.  The
  /// oracle must be sound for the explored spec and cover its operation
  /// alphabet (analysis/MoverTable.h coversProgram); it must outlive the
  /// exploration and be thread-safe when Threads > 1.
  const CommutativityOracle *CommutDB = nullptr;
  /// Skip the per-terminal serializability oracle replay.  Only sound
  /// when the program has been statically proved conflict-serializable
  /// (ppcheck --prove); skipped verdicts are counted in
  /// ExplorerReport::OracleSkips and NonSerializable stays 0 by fiat.
  bool SkipOracle = false;
  /// Invoked on every *fresh* quiescent (terminal) configuration, after
  /// the visited-map claim.  Serialized under a mutex when Threads > 1.
  /// Used by the equivalence tests to compare terminal state graphs
  /// across reduction modes.
  std::function<void(const PushPullMachine &)> OnTerminal;
};

/// Aggregate result of an exploration.
struct ExplorerReport {
  uint64_t ConfigsVisited = 0;
  uint64_t TerminalConfigs = 0;
  uint64_t RuleApplications = 0;
  uint64_t RejectedAttempts = 0;
  /// Quiescent configurations whose committed log the oracle could not
  /// certify serializable in commit order.  Theorem 5.17 says this must
  /// stay zero.
  uint64_t NonSerializable = 0;
  /// Invariant violations found (must stay zero).
  uint64_t InvariantViolations = 0;
  /// Candidate firings skipped by the reduction: sleep-set hits plus
  /// candidates dropped by a persistent-set restriction.  Zero under
  /// Reduction::None.
  uint64_t FiringsPruned = 0;
  /// Configurations at which the persistent-set restriction applied
  /// (an idle thread's BEGIN was the whole exploration frontier).
  uint64_t PersistentCuts = 0;
  /// Visits whose configuration canonicalized to a non-identity thread
  /// relabeling (symmetry mode only).
  uint64_t SymmetryHits = 0;
  /// Terminal configurations whose oracle replay was skipped because the
  /// program was statically proved serializable (ExplorerConfig::
  /// SkipOracle).  Zero otherwise.
  uint64_t OracleSkips = 0;
  bool Truncated = false;
  /// Diagnostic for the first failure, if any.
  std::string FirstFailure;

  bool clean() const {
    return NonSerializable == 0 && InvariantViolations == 0;
  }

  /// Fraction of enumerated candidate firings the reduction pruned.
  double reductionRatio() const {
    uint64_t Attempted = RuleApplications + RejectedAttempts;
    uint64_t All = Attempted + FiringsPruned;
    return All ? static_cast<double>(FiringsPruned) / static_cast<double>(All)
               : 0.0;
  }
};

/// Exhaustively explores a machine's reachable configurations.
class Explorer {
public:
  Explorer(const SequentialSpec &Spec, MoverChecker &Movers,
           ExplorerConfig Config = {});

  /// Explore all interleavings of \p Programs (one inner vector per
  /// thread; each element one transaction).
  ExplorerReport explore(const std::vector<std::vector<CodePtr>> &Programs);

private:
  /// One visited-map entry: the shallowest depth this configuration was
  /// explored at, and the intersection of the sleep sets it was explored
  /// with.  A revisit is pruned only if it is no shallower *and* its
  /// sleep set is a superset of the stored one (it could not explore any
  /// transition the stored visits did not); otherwise it re-explores and
  /// the entry absorbs it.  This is the classical sleep-sets +
  /// state-caching protocol; with empty sleep sets (Reduction::None) it
  /// degenerates to the PR 1 depth-only rule.
  struct VisitEntry {
    size_t Depth = 0;
    SleepSet Sleep;
  };

  void visit(PushPullMachine M, size_t Depth, SleepSet Sleep,
             ExplorerReport &Report);

  /// Canonical visited-map key of \p M under the configured reduction:
  /// the minimum of configKey over the symmetry group (identity only,
  /// unless symmetry is enabled).  \p Sleep is relabeled through the
  /// minimizing permutation so that sleep sets stored under a canonical
  /// key are expressed in the canonical labeling.  Bumps \p SymmetryHits
  /// when the minimizer is not the identity.
  std::string canonicalKey(const PushPullMachine &M, SleepSet &Sleep,
                           uint64_t &SymmetryHits) const;

  ExplorerReport exploreParallel(PushPullMachine Root);

  const SequentialSpec &Spec;
  MoverChecker &Movers;
  ExplorerConfig Config;
  SerializabilityChecker Oracle;
  /// Thread relabelings for the symmetry reduction (identity first).
  /// Empty unless Config.Reduce enables symmetry.
  std::vector<std::vector<TxId>> Perms;
  /// Committed-content key -> oracle verdict.  The commit-order verdict is
  /// a pure function of the commit-ordered transaction bodies/stacks and
  /// the committed shared log, so distinct terminal configurations with
  /// identical committed content share one atomic-machine search.
  std::unordered_map<std::string, SerializabilityVerdict> OracleMemo;
  /// Configuration key -> shallowest depth + narrowest sleep set it has
  /// been explored with (see VisitEntry).
  std::unordered_map<std::string, VisitEntry> Visited;
};

} // namespace pushpull

#endif // PUSHPULL_SIM_EXPLORER_H
