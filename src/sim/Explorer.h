//===- sim/Explorer.h - Exhaustive interleaving explorer --------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small-scope model checker over the PUSH/PULL machine itself: it
/// enumerates *every* interleaving of rule applications for a set of small
/// thread programs (DFS with memoized configurations) and checks, at every
/// quiescent configuration, that the run is serializable via the
/// independent oracle — the executable content of Theorem 5.17.  Unlike
/// the scheduler+engine runs (which explore one algorithm's strategy), the
/// explorer exercises the model's full nondeterminism, including the
/// backward rules when enabled.
///
/// Optionally the Section 5.3 invariants are re-checked at every explored
/// configuration (Lemmas 5.7-5.13 as runtime assertions).
///
/// With ExplorerConfig::Threads > 1 the search runs on a worker pool: a
/// shared LIFO work queue of configurations, a sharded concurrent visited
/// map, per-worker mover checkers and oracles (verdicts are cache-
/// independent, so worker-local caches are sound), and atomic report
/// counters.  The visited/accounting protocol is the same as the
/// sequential DFS, so the aggregate totals ConfigsVisited /
/// TerminalConfigs / NonSerializable / InvariantViolations are
/// deterministic and equal to the Threads=1 run on non-truncated
/// explorations; only visit order (and thus RuleApplications /
/// RejectedAttempts re-exploration counts and which failure is reported
/// first) may differ.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SIM_EXPLORER_H
#define PUSHPULL_SIM_EXPLORER_H

#include "check/Serializability.h"
#include "core/Machine.h"

#include <cstdint>
#include <string>

namespace pushpull {

/// Exploration options.
struct ExplorerConfig {
  /// Validation regime of the explored machine.  Exploring with weakened
  /// criteria (e.g. EnforceGrayCriteria=false) is the ablation that
  /// demonstrates which side-conditions are load-bearing: the
  /// NonSerializable counter stops being zero.
  MachineConfig Machine;
  /// Include the backward rules (UNAPP/UNPUSH/UNPULL) in the enumeration.
  /// They enlarge the state space considerably; small scopes only.
  bool ExploreBackwardRules = false;
  /// Include PULLs of uncommitted entries (the non-opaque behaviours).
  bool ExploreUncommittedPulls = true;
  /// Re-check the Section 5.3 invariants at every configuration.
  bool CheckInvariants = false;
  /// Stop after visiting this many distinct configurations.
  uint64_t MaxConfigs = 2000000;
  /// Abandon paths longer than this many rule applications.
  size_t MaxDepth = 64;
  /// Worker threads.  1 (the default) keeps the exact sequential DFS;
  /// >1 shards the search across a pool (same aggregate totals, see the
  /// file comment).
  unsigned Threads = 1;
};

/// Aggregate result of an exploration.
struct ExplorerReport {
  uint64_t ConfigsVisited = 0;
  uint64_t TerminalConfigs = 0;
  uint64_t RuleApplications = 0;
  uint64_t RejectedAttempts = 0;
  /// Quiescent configurations whose committed log the oracle could not
  /// certify serializable in commit order.  Theorem 5.17 says this must
  /// stay zero.
  uint64_t NonSerializable = 0;
  /// Invariant violations found (must stay zero).
  uint64_t InvariantViolations = 0;
  bool Truncated = false;
  /// Diagnostic for the first failure, if any.
  std::string FirstFailure;

  bool clean() const {
    return NonSerializable == 0 && InvariantViolations == 0;
  }
};

/// Exhaustively explores a machine's reachable configurations.
class Explorer {
public:
  Explorer(const SequentialSpec &Spec, MoverChecker &Movers,
           ExplorerConfig Config = {});

  /// Explore all interleavings of \p Programs (one inner vector per
  /// thread; each element one transaction).
  ExplorerReport explore(const std::vector<std::vector<CodePtr>> &Programs);

private:
  void visit(PushPullMachine M, size_t Depth, ExplorerReport &Report);

  ExplorerReport exploreParallel(PushPullMachine Root);

  const SequentialSpec &Spec;
  MoverChecker &Movers;
  ExplorerConfig Config;
  SerializabilityChecker Oracle;
  /// Committed-content key -> oracle verdict.  The commit-order verdict is
  /// a pure function of the commit-ordered transaction bodies/stacks and
  /// the committed shared log, so distinct terminal configurations with
  /// identical committed content share one atomic-machine search.
  std::unordered_map<std::string, SerializabilityVerdict> OracleMemo;
  /// Configuration key -> shallowest depth it has been visited at.  A
  /// config first reached near the depth cap would have its subtree
  /// pruned; revisiting it at a shallower depth re-explores it, so
  /// non-truncated reports really did cover everything.
  std::unordered_map<std::string, size_t> Visited;
};

} // namespace pushpull

#endif // PUSHPULL_SIM_EXPLORER_H
