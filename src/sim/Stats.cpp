//===- sim/Stats.cpp - Run statistics ---------------------------------------===//

#include "sim/Stats.h"

#include <cstdio>

using namespace pushpull;

double RunStats::committedOpsPerStep() const {
  if (SchedulerSteps == 0)
    return 0;
  return static_cast<double>(CommittedOps) /
         static_cast<double>(SchedulerSteps);
}

double RunStats::abortRatio() const {
  uint64_t Total = Commits + Aborts;
  if (Total == 0)
    return 0;
  return static_cast<double>(Aborts) / static_cast<double>(Total);
}

void RunStats::absorbTrace(const RuleTrace &T) {
  for (const TraceEvent &E : T)
    ++RuleCounts[static_cast<int>(E.Rule)];
}

std::string RunStats::toString() const {
  std::string Out = "steps=" + std::to_string(SchedulerSteps) +
                    " blocked=" + std::to_string(BlockedSteps) +
                    " commits=" + std::to_string(Commits) +
                    " aborts=" + std::to_string(Aborts) + " rules[";
  static const RuleKind Kinds[] = {
      RuleKind::App,  RuleKind::UnApp,  RuleKind::Push,  RuleKind::UnPush,
      RuleKind::Pull, RuleKind::UnPull, RuleKind::Commit};
  for (size_t I = 0; I < 7; ++I) {
    if (I)
      Out += " ";
    Out += pushpull::toString(Kinds[I]) + "=" +
           std::to_string(ruleCount(Kinds[I]));
  }
  Out += "] committedOps=" + std::to_string(CommittedOps);
  return Out;
}

double StressStats::commitsPerSec() const {
  return ElapsedSec > 0 ? static_cast<double>(Commits) / ElapsedSec : 0.0;
}

double StressStats::abortsPerSec() const {
  return ElapsedSec > 0 ? static_cast<double>(Aborts) / ElapsedSec : 0.0;
}

double StressStats::meanWindowCheckUs() const {
  return Windows ? static_cast<double>(WindowCheckNs) /
                       static_cast<double>(Windows) / 1000.0
                 : 0.0;
}

void StressStats::absorb(const StressStats &W) {
  Steps += W.Steps;
  Commits += W.Commits;
  Aborts += W.Aborts;
  Transactions += W.Transactions;
  Windows += W.Windows;
  WindowFailures += W.WindowFailures;
  RingRecords += W.RingRecords;
  RingSpins += W.RingSpins;
  WindowCheckNs += W.WindowCheckNs;
  if (W.MaxWindowCheckNs > MaxWindowCheckNs)
    MaxWindowCheckNs = W.MaxWindowCheckNs;
}

std::string StressStats::toString() const {
  char Rate[64];
  std::snprintf(Rate, sizeof(Rate), "%.0f", commitsPerSec());
  std::string Out = "workers=" + std::to_string(Workers) +
                    " steps=" + std::to_string(Steps) +
                    " commits=" + std::to_string(Commits) +
                    " aborts=" + std::to_string(Aborts) +
                    " commits/s=" + Rate;
  Out += " windows=" + std::to_string(Windows);
  if (WindowFailures)
    Out += " FAILURES=" + std::to_string(WindowFailures);
  std::snprintf(Rate, sizeof(Rate), "%.1f", meanWindowCheckUs());
  Out += " check-us=" + std::string(Rate) +
         " rings=" + std::to_string(RingRecords) + "/" +
         std::to_string(RingSpins) + "sp";
  return Out;
}

static std::string percent(double Rate) {
  return std::to_string(static_cast<int>(Rate * 100.0 + 0.5)) + "%";
}

std::string CacheStats::toString() const {
  std::string Out;
  Out += "  states interned:      " + std::to_string(Intern.StatesInterned) +
         "\n";
  Out += "  state sets interned:  " +
         std::to_string(Intern.StateSetsInterned) + "\n";
  Out += "  op keys interned:     " + std::to_string(Intern.OpKeysInterned) +
         "\n";
  Out += "  transition memo:      " +
         std::to_string(Intern.TransitionMemoHits) + " hits / " +
         std::to_string(Intern.TransitionMemoMisses) + " misses (" +
         percent(Intern.transitionHitRate()) + ")\n";
  Out += "  mover memo:           " + std::to_string(MoverMemoHits) +
         " hits / " + std::to_string(MoverMemoMisses) + " misses (" +
         percent(moverHitRate()) + ")\n";
  Out += "  precongruence pairs:  " + std::to_string(PrecongruencePairs) +
         "\n";
  Out += "  reachable state sets: " + std::to_string(ReachableSets) + "\n";
  Out += "  firings pruned:       " + std::to_string(ExplorerFiringsPruned) +
         " (" + percent(ExplorerReductionRatio) + " of candidates)\n";
  Out += "  persistent cuts:      " +
         std::to_string(ExplorerPersistentCuts) + "\n";
  Out += "  symmetry hits:        " + std::to_string(ExplorerSymmetryHits) +
         "\n";
  uint64_t CommutQueries = CommutTableHits + CommutTableMisses;
  double CommutHitRate =
      CommutQueries ? static_cast<double>(CommutTableHits) /
                          static_cast<double>(CommutQueries)
                    : 0.0;
  Out += "  commut table:         " + std::to_string(CommutTableHits) +
         " hits / " + std::to_string(CommutTableMisses) + " misses (" +
         percent(CommutHitRate) + ")\n";
  Out += "  cert checks:          " + std::to_string(CertChecks) + "\n";
  Out += "  proved programs:      " + std::to_string(ProvedPrograms) + "\n";
  Out += "  oracle skips:         " + std::to_string(OracleSkips) + "\n";
  uint64_t Copies = Memory.ChunkShares + Memory.DeepCopies;
  double ShareRate =
      Copies ? static_cast<double>(Memory.ChunkShares) /
                   static_cast<double>(Copies)
             : 0.0;
  Out += "  machine copies:       " + std::to_string(Memory.MachineCopies) +
         "\n";
  Out += "  log chunk copies:     " + std::to_string(Memory.ChunkShares) +
         " shared / " + std::to_string(Memory.DeepCopies) + " cloned (" +
         percent(ShareRate) + " shared)\n";
  Out += "  snapshot bytes:       " + std::to_string(Memory.SnapshotBytes) +
         "\n";
  Out += "  arena bytes:          " + std::to_string(Memory.ArenaBytes) +
         "\n";
  return Out;
}
