//===- sim/Reduction.h - Partial-order reduction for the explorer -*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partial-order reduction for the exhaustive explorer: a static
/// independence relation over rule firings, sleep sets, persistent-set
/// restriction, and transaction-id symmetry canonicalization.
///
/// The independence relation is derived from the *criterion footprints* of
/// the Figure 5 rules as they are evaluated in core/Machine.cpp (see
/// ruleFootprint there): two enabled firings commute when they belong to
/// different threads and their criteria read disjoint parts of the
/// configuration.  Thread-local state (code, stack, local log L) is only
/// ever read or written by its own thread's rules, so any firing whose
/// criteria do not consult the shared log G — BEGIN, APP, UNAPP, UNPULL —
/// is independent of every firing of every other thread.  Firings that
/// touch G are refined entry-wise:
///
///   * PULL x PULL: both only read G entries and append to their own L,
///     so any two cross-thread pulls commute (even of the same entry).
///   * PULL x PUSH: PUSH appends; it moves no existing entry, and PULL
///     adds nothing PUSH's criteria (i)-(iii) read.
///   * PULL x CMT: CMT flips only the committer's gUCmt entries, so a
///     pull of an entry that is already committed or owned by a third
///     thread commutes with it.
///   * everything else that writes G (PUSH x PUSH order in G, CMT x CMT
///     commit order, UNPUSH removals) is conservatively dependent.
///
/// When a certified commutativity oracle (core/Commut.h) is supplied, one
/// further refinement applies: PUSH x PUSH of *strongly commuting*
/// operations becomes independent.  The two orders append the same two
/// entries to G in either order; strong commutation makes every
/// denotation-based criterion insensitive to which order, and the
/// explorer's configuration key renders G in the commutativity quotient's
/// canonical order (PushPullMachine::configKey with the oracle), so both
/// orders reach the *same* canonical configuration — exactly the diamond
/// sleep sets require.  The refinement and the quotient key must be
/// enabled together (same oracle), never separately.
///
/// Validity is cross-checked by tests/reduction_test.cpp, which executes
/// claimed-independent pairs in both orders from fuzzed configurations and
/// compares the resulting interned configuration StateIds.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SIM_REDUCTION_H
#define PUSHPULL_SIM_REDUCTION_H

#include "core/Commut.h"
#include "core/Op.h"
#include "lang/Ast.h"
#include "support/Arena.h"
#include "support/SmallVec.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pushpull {

class PushPullMachine;

/// Reduction regime of one exploration.  Each mode is proven
/// observation-equivalent to None by the tests/reduction_test.cpp battery.
enum class Reduction {
  /// Full enumeration (the PR 1 behaviour).
  None,
  /// Sleep sets: skip re-exploration of commuted firing pairs.  Visits the
  /// same configurations as None (sleep sets prune transitions, never
  /// states) with strictly fewer rule applications.
  Sleep,
  /// Sleep sets plus persistent-set restriction (BEGIN-priority: an idle
  /// thread's guarded begin is a singleton persistent set).  May visit
  /// strictly fewer configurations; reaches every quiescent terminal.
  Persistent,
  /// Persistent plus transaction-id symmetry: configurations are
  /// canonicalized under renaming of threads with identical programs
  /// before the visited-map lookup.
  PersistentSymmetry,
};

std::string toString(Reduction R);

/// Parse a pprun-style mode name: "none", "sleep", "persistent",
/// "symmetry" / "persistent+symmetry".  Returns false on junk.
bool reductionFromString(const std::string &S, Reduction &Out);

/// Which rules a reduction mode enables.
inline bool usesSleepSets(Reduction R) { return R != Reduction::None; }
inline bool usesPersistentSets(Reduction R) {
  return R == Reduction::Persistent || R == Reduction::PersistentSymmetry;
}
inline bool usesSymmetry(Reduction R) {
  return R == Reduction::PersistentSymmetry;
}

/// The firing alphabet: the seven Figure 5 rules plus the guarded BEGIN
/// structural reduction (which the explorer enumerates like a rule).
enum class FiringKind : uint8_t {
  Begin,
  App,
  UnApp,
  Push,
  UnPush,
  Pull,
  UnPull,
  Commit,
};

std::string toString(FiringKind K);

/// Canonical identity of one candidate rule firing at a configuration:
/// thread, rule, and the rule's operand indices (APP step/completion, local
/// log index, global log index).  Identities are stable across firings
/// *independent* of them — no independent firing reorders another thread's
/// local log or removes/permutes global entries — which is what lets sleep
/// sets carry firings across configurations.
struct Firing {
  TxId Tid = 0;
  FiringKind Kind = FiringKind::Begin;
  uint32_t A = 0; ///< APP StepIdx / local-log index / global-log index.
  uint32_t B = 0; ///< APP CompIdx.

  bool operator==(const Firing &O) const {
    return Tid == O.Tid && Kind == O.Kind && A == O.A && B == O.B;
  }
  bool operator<(const Firing &O) const {
    if (Tid != O.Tid)
      return Tid < O.Tid;
    if (Kind != O.Kind)
      return Kind < O.Kind;
    if (A != O.A)
      return A < O.A;
    return B < O.B;
  }

  std::string toString() const;
};

/// Conservative footprint of one firing, derived from the rule's criterion
/// footprint (core/Machine.cpp ruleFootprint) plus the entry-wise PULL
/// refinement.
struct FiringFootprint {
  /// The rule's criteria consult the shared log G.
  bool ReadsG = false;
  /// The rule's mutation appends to / removes from / reflags G.
  bool WritesG = false;
  /// PULL only: owner and committedness of the pulled entry, for the
  /// PULL x CMT refinement.
  TxId PullOwner = 0;
  bool PullCommitted = false;
  /// PUSH only: the interned key (StateTable::opKey) of the operation the
  /// push would publish, for the commutativity-oracle PUSH x PUSH
  /// refinement.  0 (a valid key) when no oracle is in play — the field is
  /// only consulted when a DB is passed to independentFirings.
  OpKeyId OpKey = 0;

  bool local() const { return !ReadsG && !WritesG; }
};

/// One enumerated candidate: a firing plus its footprint.
struct Candidate {
  Firing F;
  FiringFootprint FP;
};

/// The static independence relation (see the file comment).  Sound for
/// both sleep sets (diamond: both orders applicable and reach the same
/// canonical configuration) and the persistent-set argument.  \p DB, when
/// non-null, additionally makes cross-thread PUSH x PUSH of strongly
/// commuting operations independent; callers must then also key the
/// visited map with the same oracle's G-order quotient.
bool independentFirings(const Candidate &A, const Candidate &B,
                        const CommutativityOracle *DB = nullptr);

/// Execute \p F on \p M.  Returns true iff the rule applied (the firing
/// was enabled under the machine's validation regime).
bool applyFiring(PushPullMachine &M, const Firing &F);

/// A sleep set: firings already explored in a sibling branch whose
/// re-exploration here would only re-derive commuted interleavings.
/// Represented as a small sorted vector of candidates (footprints ride
/// along because surviving a step requires an independence check against
/// the fired candidate).  Sleep sets ride on every explorer work item and
/// visited-map entry; the inline capacity keeps the common few-member set
/// off the heap.
class SleepSet {
public:
  using Storage = SmallVec<Candidate, 8>;

  bool empty() const { return Members.empty(); }
  size_t size() const { return Members.size(); }
  const Storage &members() const { return Members; }

  bool contains(const Firing &F) const;
  void insert(const Candidate &C);

  /// The members that survive firing \p Fired: those independent of it
  /// (under \p DB's refinement when non-null).
  SleepSet survivorsAfter(const Candidate &Fired,
                          const CommutativityOracle *DB = nullptr) const;

  /// Is every member of \p O also a member of this set?  (By firing
  /// identity.)  A revisit whose sleep set is a superset of the stored one
  /// explores nothing the stored visit did not.
  bool supersetOf(const SleepSet &O) const;

  /// Intersect in place with \p O (by firing identity).  Stored on a
  /// visited configuration after a re-exploration so that only the
  /// transitions pruned by *every* visit stay pruned.
  void intersectWith(const SleepSet &O);

  /// This set with thread ids rewritten through \p LabelOf (firing tids
  /// and PULL-footprint owners) and re-sorted.  The symmetry reduction
  /// expresses sleep sets in the canonical labeling before visited-map
  /// store/compare, so subsumption checks compare like with like.
  SleepSet relabeled(const std::vector<TxId> &LabelOf) const;

  /// This set with PULL global-log indices rewritten from raw positions to
  /// canonical positions under \p Order (the configKey G-order quotient:
  /// Order[canonical] = raw), and re-sorted.  Like relabeled(), applied at
  /// the visited-map boundary when a commutativity oracle reorders the G
  /// section: two visitors that merge on a canonical key agree on the
  /// canonical position of every G entry, not on raw positions.  Sleep
  /// sets that travel down edges stay in raw space (raw identities are
  /// stable across independent firings; canonical positions are not).
  SleepSet reindexedG(const SmallVec<uint32_t, 16> &Order) const;

private:
  Storage Members;
};

/// All thread relabelings that permute identical thread programs among
/// themselves: the product of one symmetric group per class of threads
/// with textually identical transaction sequences.  Index = old tid,
/// value = new label.  The identity is always first; the group is
/// truncated at \p MaxPerms (canonicalization by a minimum over any fixed
/// subset containing the identity is still sound — two configurations
/// merge only if some group element maps one to the other).
std::vector<std::vector<TxId>>
symmetryGroup(const std::vector<std::vector<CodePtr>> &Programs,
              size_t MaxPerms = 120);

/// Persistent-set restriction, BEGIN-priority form: if some thread is idle
/// with pending transactions, its guarded BEGIN alone is a persistent set —
/// while a thread is outside a transaction no rule of any other thread can
/// enable, disable, or conflict with any firing of this thread (every
/// non-BEGIN rule requires InTx, BEGIN's guard reads only the thread's own
/// state, and BEGIN's footprint is thread-local), so the Godefroid
/// persistence condition holds for the singleton.  Restricts \p Cands to
/// the lowest such thread's BEGIN and returns the number of candidates
/// dropped; returns 0 (leaving Cands untouched) when no restriction
/// applies.  For threads *inside* a transaction no sound static singleton
/// exists: another thread's PUSH can enable a new PULL for this thread,
/// and that PULL is same-thread-dependent with every local firing — see
/// DESIGN.md section 10.  Operates on the explorer's arena-backed
/// candidate scratch (see sim/Explorer.cpp expandReduced).
size_t restrictToPersistent(ArenaVec<Candidate> &Cands);

} // namespace pushpull

#endif // PUSHPULL_SIM_REDUCTION_H
