//===- sim/Workload.h - Workload generators ---------------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic (seeded) generators of thread programs for the Section 6
/// experiments: per-spec transaction mixes with configurable size, key
/// skew (Zipf-like, the contention knob of E10), and read ratio.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SIM_WORKLOAD_H
#define PUSHPULL_SIM_WORKLOAD_H

#include "lang/Ast.h"
#include "spec/BankSpec.h"
#include "spec/CounterSpec.h"
#include "spec/MapSpec.h"
#include "spec/QueueSpec.h"
#include "spec/RegisterSpec.h"
#include "spec/SetSpec.h"
#include "support/Rng.h"

#include <vector>

namespace pushpull {

/// Knobs shared by all generators.
struct WorkloadConfig {
  unsigned Threads = 4;
  unsigned TxPerThread = 4;
  unsigned OpsPerTx = 3;
  /// Keys/registers drawn from [0, KeyRange) — clamped to the spec's
  /// domain by each generator.
  unsigned KeyRange = 8;
  /// Zipf skew in hundredths (0 = uniform, 100 = theta 1.0).  Higher skew
  /// means more contention on hot keys.
  unsigned ZipfTheta = 0;
  /// Percentage of read-like operations.
  unsigned ReadPct = 50;
  uint64_t Seed = 1;
};

/// Per-thread transaction programs: Programs[t] is thread t's transaction
/// sequence.
using ThreadPrograms = std::vector<std::vector<CodePtr>>;

/// put/get/remove mixes over the map (the Figure 2 hashtable workload).
ThreadPrograms genMapWorkload(const MapSpec &Spec, const WorkloadConfig &C);

/// read/write mixes over registers (the Section 6.2 word-STM workload).
ThreadPrograms genRegisterWorkload(const RegisterSpec &Spec,
                                   const WorkloadConfig &C);

/// add/remove/contains mixes over the set (boosted skiplist workload).
ThreadPrograms genSetWorkload(const SetSpec &Spec, const WorkloadConfig &C);

/// inc/dec/read mixes over counters.
ThreadPrograms genCounterWorkload(const CounterSpec &Spec,
                                  const WorkloadConfig &C);

/// enq/deq mixes over the queue (the non-commutative stressor).
ThreadPrograms genQueueWorkload(const QueueSpec &Spec,
                                const WorkloadConfig &C);

/// deposit/withdraw/balance/transfer mixes over bank accounts (the
/// conditional-commutativity stressor; ReadPct governs balance reads).
ThreadPrograms genBankWorkload(const BankSpec &Spec,
                               const WorkloadConfig &C);

} // namespace pushpull

#endif // PUSHPULL_SIM_WORKLOAD_H
