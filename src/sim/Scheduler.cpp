//===- sim/Scheduler.cpp - Interleaving scheduler ---------------------------===//

#include "sim/Scheduler.h"

using namespace pushpull;

RunStats Scheduler::run(TMEngine &E) {
  PushPullMachine &M = E.machine();
  Rng R(Config.Seed);
  RunStats Stats;

  size_t NumThreads = M.threads().size();
  size_t RoundRobinNext = 0;

  // PCT state: random distinct priorities (higher runs first) and a set
  // of step indices where the running thread's priority drops to the
  // bottom.  Change points are scattered over an assumed run length; if
  // the run outlives them, the schedule simply stays priority-driven.
  std::vector<int64_t> Priority(NumThreads);
  for (size_t I = 0; I < NumThreads; ++I)
    Priority[I] = static_cast<int64_t>(R.next() >> 1); // Positive.
  std::vector<uint64_t> ChangeAt;
  if (Config.Policy == SchedulePolicy::PriorityChangePoints) {
    uint64_t Horizon = Config.MaxSteps < 4096 ? Config.MaxSteps : 4096;
    for (unsigned I = 0; I < Config.ChangePoints; ++I)
      ChangeAt.push_back(Horizon > 1 ? R.below(Horizon) : 0);
  }
  int64_t NextDropPriority = -1; // Drops go below every initial priority.

  while (!M.quiescent() && Stats.SchedulerSteps < Config.MaxSteps) {
    // Replay consumes the recording verbatim — no runnable filtering, so
    // a replayed run performs exactly the recorded step sequence.
    if (Config.Policy == SchedulePolicy::Replay) {
      if (Stats.SchedulerSteps >= Config.ReplayPicks.size())
        break;
      TxId Pick = Config.ReplayPicks[Stats.SchedulerSteps];
      if (Pick >= NumThreads)
        break;
      if (Config.CapturePicks)
        Config.CapturePicks->push_back(static_cast<uint32_t>(Pick));
      StepStatus S = E.step(Pick);
      ++Stats.SchedulerSteps;
      switch (S) {
      case StepStatus::Blocked:
        ++Stats.BlockedSteps;
        break;
      case StepStatus::Committed:
        ++Stats.Commits;
        break;
      case StepStatus::Aborted:
        ++Stats.Aborts;
        break;
      case StepStatus::Progress:
      case StepStatus::Finished:
        break;
      }
      continue;
    }

    // Collect runnable threads.
    std::vector<TxId> Runnable;
    for (const ThreadState &Th : M.threads())
      if (!Th.done())
        Runnable.push_back(Th.Tid);
    if (Runnable.empty())
      break;

    TxId Pick = Runnable[0];
    switch (Config.Policy) {
    case SchedulePolicy::RoundRobin: {
      // Next runnable thread at or after the cursor.
      for (TxId T : Runnable)
        if (T >= RoundRobinNext) {
          Pick = T;
          break;
        }
      RoundRobinNext = (Pick + 1) % NumThreads;
      break;
    }
    case SchedulePolicy::RandomUniform:
      Pick = R.pick(Runnable);
      break;
    case SchedulePolicy::PriorityChangePoints: {
      Pick = Runnable[0];
      for (TxId T : Runnable)
        if (Priority[T] > Priority[Pick])
          Pick = T;
      for (uint64_t CP : ChangeAt)
        if (CP == Stats.SchedulerSteps)
          Priority[Pick] = NextDropPriority--; // Drop below everyone.
      break;
    }
    case SchedulePolicy::Replay: // Handled before the runnable filter.
      return Stats;
    }

    if (Config.CapturePicks)
      Config.CapturePicks->push_back(static_cast<uint32_t>(Pick));
    StepStatus S = E.step(Pick);
    ++Stats.SchedulerSteps;
    switch (S) {
    case StepStatus::Blocked:
      ++Stats.BlockedSteps;
      // Under priority scheduling a blocked thread must yield, or it
      // would spin above the lower-priority thread it is waiting for.
      if (Config.Policy == SchedulePolicy::PriorityChangePoints)
        Priority[Pick] = NextDropPriority--;
      break;
    case StepStatus::Committed:
      ++Stats.Commits;
      break;
    case StepStatus::Aborted:
      ++Stats.Aborts;
      break;
    case StepStatus::Progress:
    case StepStatus::Finished:
      break;
    }
  }

  Stats.Quiescent = M.quiescent();
  Stats.absorbTrace(M.trace());
  Stats.CommittedOps = M.committedLog().size();
  // Engines may count aborts performed inside composite steps; prefer the
  // engine's own number when it is larger (scheduler only sees returned
  // statuses).
  if (E.aborts() > Stats.Aborts)
    Stats.Aborts = E.aborts();
  return Stats;
}
