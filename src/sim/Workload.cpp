//===- sim/Workload.cpp - Workload generators -------------------------------===//

#include "sim/Workload.h"

#include <algorithm>

using namespace pushpull;

namespace {

/// Shared skeleton: build Threads x TxPerThread transactions, each a
/// straight-line sequence of OpsPerTx calls produced by MakeOp(Rng).
template <typename MakeOpFn>
ThreadPrograms generate(const WorkloadConfig &C, MakeOpFn &&MakeOp) {
  Rng Root(C.Seed);
  ThreadPrograms Out;
  for (unsigned T = 0; T < C.Threads; ++T) {
    Rng R = Root.split();
    std::vector<CodePtr> Txs;
    for (unsigned X = 0; X < C.TxPerThread; ++X) {
      std::vector<CodePtr> Body;
      for (unsigned O = 0; O < C.OpsPerTx; ++O)
        Body.push_back(MakeOp(R, T, X, O));
      Txs.push_back(tx(seqAll(std::move(Body))));
    }
    Out.push_back(std::move(Txs));
  }
  return Out;
}

Value pickKey(Rng &R, const WorkloadConfig &C, unsigned DomainSize) {
  unsigned Range = std::min(C.KeyRange, DomainSize);
  if (Range == 0)
    Range = DomainSize;
  return static_cast<Value>(R.zipf(Range, C.ZipfTheta));
}

std::string resultVar(unsigned X, unsigned O) {
  return "r" + std::to_string(X) + "_" + std::to_string(O);
}

} // namespace

ThreadPrograms pushpull::genMapWorkload(const MapSpec &Spec,
                                        const WorkloadConfig &C) {
  return generate(C, [&](Rng &R, unsigned, unsigned X, unsigned O) {
    Value K = pickKey(R, C, Spec.numKeys());
    if (R.chance(C.ReadPct, 100))
      return call(Spec.object(), "get", {K}, resultVar(X, O));
    if (R.chance(1, 4))
      return call(Spec.object(), "remove", {K}, resultVar(X, O));
    Value V = R.range(0, Spec.numVals() - 1);
    return call(Spec.object(), "put", {K, V}, resultVar(X, O));
  });
}

ThreadPrograms pushpull::genRegisterWorkload(const RegisterSpec &Spec,
                                             const WorkloadConfig &C) {
  return generate(C, [&](Rng &R, unsigned, unsigned X, unsigned O) {
    Value Reg = pickKey(R, C, Spec.numRegs());
    if (R.chance(C.ReadPct, 100))
      return call(Spec.object(), "read", {Reg}, resultVar(X, O));
    Value V = R.range(0, Spec.numVals() - 1);
    return call(Spec.object(), "write", {Reg, V});
  });
}

ThreadPrograms pushpull::genSetWorkload(const SetSpec &Spec,
                                        const WorkloadConfig &C) {
  return generate(C, [&](Rng &R, unsigned, unsigned X, unsigned O) {
    Value K = pickKey(R, C, Spec.universe());
    if (R.chance(C.ReadPct, 100))
      return call(Spec.object(), "contains", {K}, resultVar(X, O));
    if (R.chance(1, 2))
      return call(Spec.object(), "add", {K}, resultVar(X, O));
    return call(Spec.object(), "remove", {K}, resultVar(X, O));
  });
}

ThreadPrograms pushpull::genCounterWorkload(const CounterSpec &Spec,
                                            const WorkloadConfig &C) {
  return generate(C, [&](Rng &R, unsigned, unsigned X, unsigned O) {
    Value I = pickKey(R, C, Spec.numCounters());
    if (R.chance(C.ReadPct, 100))
      return call(Spec.object(), "read", {I}, resultVar(X, O));
    if (R.chance(1, 2))
      return call(Spec.object(), "inc", {I});
    return call(Spec.object(), "dec", {I});
  });
}

ThreadPrograms pushpull::genBankWorkload(const BankSpec &Spec,
                                         const WorkloadConfig &C) {
  return generate(C, [&](Rng &R, unsigned, unsigned X, unsigned O) {
    Value A = pickKey(R, C, Spec.numAccounts());
    if (R.chance(C.ReadPct, 100))
      return call(Spec.object(), "balance", {A}, resultVar(X, O));
    Value K = R.range(1, std::max(1u, Spec.cap() / 2));
    if (Spec.numAccounts() > 1 && R.chance(1, 4)) {
      Value B = pickKey(R, C, Spec.numAccounts());
      if (B == A)
        B = (B + 1) % Spec.numAccounts();
      return call(Spec.object(), "transfer", {A, B, K}, resultVar(X, O));
    }
    if (R.chance(1, 2))
      return call(Spec.object(), "deposit", {A, K});
    return call(Spec.object(), "withdraw", {A, K}, resultVar(X, O));
  });
}

ThreadPrograms pushpull::genQueueWorkload(const QueueSpec &Spec,
                                          const WorkloadConfig &C) {
  return generate(C, [&](Rng &R, unsigned, unsigned X, unsigned O) {
    if (R.chance(C.ReadPct, 100))
      return call(Spec.object(), "deq", {}, resultVar(X, O));
    Value V = R.range(0, 1);
    return call(Spec.object(), "enq", {V}, resultVar(X, O));
  });
}
