//===- sim/Reduction.cpp - Partial-order reduction for the explorer ---------===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/Reduction.h"

#include "core/Machine.h"

#include <algorithm>
#include <cassert>

namespace pushpull {

std::string toString(Reduction R) {
  switch (R) {
  case Reduction::None:
    return "none";
  case Reduction::Sleep:
    return "sleep";
  case Reduction::Persistent:
    return "persistent";
  case Reduction::PersistentSymmetry:
    return "persistent+symmetry";
  }
  return "?";
}

bool reductionFromString(const std::string &S, Reduction &Out) {
  if (S == "none") {
    Out = Reduction::None;
    return true;
  }
  if (S == "sleep") {
    Out = Reduction::Sleep;
    return true;
  }
  if (S == "persistent") {
    Out = Reduction::Persistent;
    return true;
  }
  if (S == "symmetry" || S == "persistent+symmetry") {
    Out = Reduction::PersistentSymmetry;
    return true;
  }
  return false;
}

std::string toString(FiringKind K) {
  switch (K) {
  case FiringKind::Begin:
    return "BEGIN";
  case FiringKind::App:
    return "APP";
  case FiringKind::UnApp:
    return "UNAPP";
  case FiringKind::Push:
    return "PUSH";
  case FiringKind::UnPush:
    return "UNPUSH";
  case FiringKind::Pull:
    return "PULL";
  case FiringKind::UnPull:
    return "UNPULL";
  case FiringKind::Commit:
    return "CMT";
  }
  return "?";
}

std::string Firing::toString() const {
  std::string Out = "t" + std::to_string(Tid) + ":" + pushpull::toString(Kind);
  switch (Kind) {
  case FiringKind::Begin:
  case FiringKind::UnApp:
  case FiringKind::Commit:
    break;
  case FiringKind::App:
    Out += "(" + std::to_string(A) + "," + std::to_string(B) + ")";
    break;
  case FiringKind::Push:
  case FiringKind::UnPush:
  case FiringKind::Pull:
  case FiringKind::UnPull:
    Out += "(" + std::to_string(A) + ")";
    break;
  }
  return Out;
}

bool independentFirings(const Candidate &A, const Candidate &B,
                        const CommutativityOracle *DB) {
  // Same-thread firings race on {c, sigma, L} and on the thread's rule
  // order; never claim independence.
  if (A.F.Tid == B.F.Tid)
    return false;
  // A thread-local firing (BEGIN/APP/UNAPP/UNPULL) commutes with any
  // firing of any other thread: its criteria and mutation live entirely
  // in its own thread's state, which no other thread's rule reads.
  if (A.FP.local() || B.FP.local())
    return true;
  // Both touch G.  PULL is the one G rule refined entry-wise: its
  // criteria read only the pulled entry and its mutation is an own-L
  // append.
  auto PullVs = [](const Candidate &P, const Candidate &O) {
    switch (O.F.Kind) {
    case FiringKind::Pull:
      // Both read-only on G.
      return true;
    case FiringKind::Push:
      // PUSH appends: existing entries and their indices are untouched,
      // and PULL's own-L append is invisible to PUSH's criteria.
      return true;
    case FiringKind::Commit:
      // CMT reflags the committer's gUCmt entries.  A pull of an entry
      // that is already committed, or owned by someone else, reads
      // nothing CMT writes — and pulling adds nothing CMT's criteria
      // (fin, own-L/G containment, commitOwned) read.  A pull of the
      // committer's *uncommitted* entry is dependent: the orders differ
      // observably (the opacity tracking and the candidate filter both
      // distinguish uncommitted pulls).
      return P.FP.PullCommitted || P.FP.PullOwner != O.F.Tid;
    default:
      // UNPUSH removes an entry: global indices shift, and the pulled
      // entry itself may be the one recalled.  Dependent.
      return false;
    }
  };
  if (A.F.Kind == FiringKind::Pull)
    return PullVs(A, B);
  if (B.F.Kind == FiringKind::Pull)
    return PullVs(B, A);
  // PUSH x PUSH: the append order is part of the raw configuration, so
  // without an oracle the pair is dependent.  With one, strongly
  // commuting publications are independent — the configuration key
  // renders G in the quotient's canonical order, so both append orders
  // produce the same canonical configuration, and strong commutation
  // keeps every denotation-based criterion (including each PUSH's own
  // enabledness) insensitive to the order.
  if (DB && A.F.Kind == FiringKind::Push && B.F.Kind == FiringKind::Push)
    return DB->stronglyCommute(A.FP.OpKey, B.FP.OpKey);
  // The remaining pairs all write G in order-sensitive ways: PUSH x PUSH
  // (append order is part of the configuration), CMT x CMT (commit order
  // feeds the oracle — both orders must be explored), PUSH/UNPUSH x CMT,
  // UNPUSH x anything.  Conservatively dependent.
  return false;
}

bool applyFiring(PushPullMachine &M, const Firing &F) {
  switch (F.Kind) {
  case FiringKind::Begin:
    return M.beginTx(F.Tid);
  case FiringKind::App:
    return M.app(F.Tid, F.A, F.B).Applied;
  case FiringKind::UnApp:
    return M.unapp(F.Tid).Applied;
  case FiringKind::Push:
    return M.push(F.Tid, F.A).Applied;
  case FiringKind::UnPush:
    return M.unpush(F.Tid, F.A).Applied;
  case FiringKind::Pull:
    return M.pull(F.Tid, F.A).Applied;
  case FiringKind::UnPull:
    return M.unpull(F.Tid, F.A).Applied;
  case FiringKind::Commit:
    return M.commit(F.Tid).Applied;
  }
  return false;
}

bool SleepSet::contains(const Firing &F) const {
  auto It = std::lower_bound(
      Members.begin(), Members.end(), F,
      [](const Candidate &C, const Firing &Key) { return C.F < Key; });
  return It != Members.end() && It->F == F;
}

void SleepSet::insert(const Candidate &C) {
  auto It = std::lower_bound(
      Members.begin(), Members.end(), C.F,
      [](const Candidate &M, const Firing &Key) { return M.F < Key; });
  if (It != Members.end() && It->F == C.F)
    return;
  Members.insert(It, C);
}

SleepSet SleepSet::survivorsAfter(const Candidate &Fired,
                                  const CommutativityOracle *DB) const {
  SleepSet Out;
  Out.Members.reserve(Members.size());
  for (const Candidate &C : Members)
    if (independentFirings(C, Fired, DB))
      Out.Members.push_back(C); // Insertion order preserves sortedness.
  return Out;
}

bool SleepSet::supersetOf(const SleepSet &O) const {
  if (O.Members.size() > Members.size())
    return false;
  // Both sorted: a single merge pass.
  auto It = Members.begin();
  for (const Candidate &C : O.Members) {
    while (It != Members.end() && It->F < C.F)
      ++It;
    if (It == Members.end() || !(It->F == C.F))
      return false;
    ++It;
  }
  return true;
}

SleepSet SleepSet::relabeled(const std::vector<TxId> &LabelOf) const {
  SleepSet Out;
  Out.Members = Members;
  for (Candidate &C : Out.Members) {
    C.F.Tid = LabelOf[C.F.Tid];
    if (C.F.Kind == FiringKind::Pull)
      C.FP.PullOwner = LabelOf[C.FP.PullOwner];
  }
  std::sort(Out.Members.begin(), Out.Members.end(),
            [](const Candidate &A, const Candidate &B) { return A.F < B.F; });
  return Out;
}

SleepSet SleepSet::reindexedG(const SmallVec<uint32_t, 16> &Order) const {
  // Identity fast path (also covers the no-oracle case, where configKey
  // fills the identity order).
  bool IsIdentity = true;
  for (size_t I = 0; I < Order.size(); ++I)
    if (Order[I] != I) {
      IsIdentity = false;
      break;
    }
  if (IsIdentity)
    return *this;
  // Invert: CanonOf[raw] = canonical position.
  SmallVec<uint32_t, 16> CanonOf;
  CanonOf.resize(Order.size());
  for (size_t I = 0; I < Order.size(); ++I)
    CanonOf[Order[I]] = static_cast<uint32_t>(I);
  SleepSet Out;
  Out.Members = Members;
  for (Candidate &C : Out.Members)
    if (C.F.Kind == FiringKind::Pull && C.F.A < CanonOf.size())
      C.F.A = CanonOf[C.F.A];
  std::sort(Out.Members.begin(), Out.Members.end(),
            [](const Candidate &A, const Candidate &B) { return A.F < B.F; });
  return Out;
}

void SleepSet::intersectWith(const SleepSet &O) {
  Storage Out;
  Out.reserve(std::min(Members.size(), O.Members.size()));
  auto It = O.Members.begin();
  for (const Candidate &C : Members) {
    while (It != O.Members.end() && It->F < C.F)
      ++It;
    if (It != O.Members.end() && It->F == C.F)
      Out.push_back(C);
  }
  Members = std::move(Out);
}

std::vector<std::vector<TxId>>
symmetryGroup(const std::vector<std::vector<CodePtr>> &Programs,
              size_t MaxPerms) {
  const size_t N = Programs.size();
  std::vector<TxId> Identity(N);
  for (size_t T = 0; T < N; ++T)
    Identity[T] = static_cast<TxId>(T);

  // Class threads by program text.
  std::vector<std::string> Key(N);
  for (size_t T = 0; T < N; ++T)
    for (const CodePtr &Tx : Programs[T]) {
      Key[T] += Tx ? Tx->printed() : "<null>";
      Key[T] += '\x01';
    }
  std::vector<std::vector<TxId>> Classes;
  for (size_t T = 0; T < N; ++T) {
    bool Placed = false;
    for (std::vector<TxId> &C : Classes)
      if (Key[C.front()] == Key[T]) {
        C.push_back(static_cast<TxId>(T));
        Placed = true;
        break;
      }
    if (!Placed)
      Classes.push_back({static_cast<TxId>(T)});
  }

  // Per-class permutations of the class members (identity first: the
  // members are listed in increasing tid order, so next_permutation
  // enumerates from the identity).
  std::vector<std::vector<std::vector<TxId>>> PerClass;
  for (const std::vector<TxId> &C : Classes) {
    std::vector<std::vector<TxId>> Ps;
    std::vector<TxId> P = C;
    do {
      Ps.push_back(P);
      // Per-class truncation keeps the product enumeration bounded even
      // for one huge class.
      if (Ps.size() >= MaxPerms)
        break;
    } while (std::next_permutation(P.begin(), P.end()));
    PerClass.push_back(std::move(Ps));
  }

  // Odometer over the per-class choices.  Truncating at MaxPerms is
  // sound: canonicalization by a minimum over any identity-containing
  // subset merges only genuinely equivalent configurations.
  std::vector<std::vector<TxId>> Group;
  std::vector<size_t> Digit(Classes.size(), 0);
  while (Group.size() < MaxPerms) {
    std::vector<TxId> LabelOf = Identity;
    for (size_t Ci = 0; Ci < Classes.size(); ++Ci) {
      const std::vector<TxId> &Members = Classes[Ci];
      const std::vector<TxId> &Img = PerClass[Ci][Digit[Ci]];
      for (size_t I = 0; I < Members.size(); ++I)
        LabelOf[Members[I]] = Img[I];
    }
    Group.push_back(std::move(LabelOf));
    // Advance the odometer.
    size_t Ci = 0;
    for (; Ci < Classes.size(); ++Ci) {
      if (++Digit[Ci] < PerClass[Ci].size())
        break;
      Digit[Ci] = 0;
    }
    if (Ci == Classes.size())
      break;
  }
  assert(!Group.empty() && Group.front() == Identity);
  return Group;
}

size_t restrictToPersistent(ArenaVec<Candidate> &Cands) {
  // A BEGIN candidate exists exactly for an idle thread with pending
  // transactions, and its singleton is persistent (see Reduction.h).
  // Pick the lowest such thread for determinism.
  const Candidate *Begin = nullptr;
  for (const Candidate &C : Cands)
    if (C.F.Kind == FiringKind::Begin && (!Begin || C.F.Tid < Begin->F.Tid))
      Begin = &C;
  if (!Begin || Cands.size() <= 1)
    return 0;
  Candidate Keep = *Begin;
  size_t Dropped = Cands.size() - 1;
  Cands[0] = Keep;
  Cands.truncate(1);
  return Dropped;
}

} // namespace pushpull
