//===- sim/Stats.h - Run statistics -----------------------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statistics gathered from a scheduled run: rule-mix histogram (the
/// observable signature distinguishing the Section 6 algorithm families),
/// commits, aborts, blocked steps, and the committed-operations throughput
/// proxy used by the contention sweeps (E10).
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SIM_STATS_H
#define PUSHPULL_SIM_STATS_H

#include "core/Spec.h"
#include "core/Trace.h"
#include "support/Arena.h"

#include <cstdint>
#include <string>

namespace pushpull {

/// Aggregated counters for one run.
struct RunStats {
  uint64_t SchedulerSteps = 0;
  uint64_t BlockedSteps = 0;
  uint64_t Commits = 0;
  uint64_t Aborts = 0;
  /// Rule-mix histogram, indexed by RuleKind.
  uint64_t RuleCounts[7] = {};
  /// Operations in the final committed log.
  uint64_t CommittedOps = 0;
  /// True iff every thread finished within the step budget.
  bool Quiescent = false;

  uint64_t ruleCount(RuleKind K) const {
    return RuleCounts[static_cast<int>(K)];
  }

  /// Committed operations per scheduler step — the throughput proxy.
  double committedOpsPerStep() const;

  /// Abort ratio: aborts / (commits + aborts).
  double abortRatio() const;

  /// Fill the rule histogram from a trace.
  void absorbTrace(const RuleTrace &T);

  /// One-line rendering for bench output.
  std::string toString() const;
};

/// Aggregated counters for one real-concurrency stress run (ppstress).
/// Workers accumulate their private copies; the runner sums them after
/// join, so no field needs to be atomic.
struct StressStats {
  /// OS worker threads driven.
  unsigned Workers = 0;
  /// Engine steps, commits, and aborts summed over all workers.
  uint64_t Steps = 0;
  uint64_t Commits = 0;
  uint64_t Aborts = 0;
  /// Transactions the workload generated (committed + in flight at stop).
  uint64_t Transactions = 0;
  /// Commit windows the arbiter closed and the checker validated.
  uint64_t Windows = 0;
  /// Windows whose shadow replay disagreed with the live run, failed the
  /// atomic oracle, or left the opaque fragment unexpectedly.
  uint64_t WindowFailures = 0;
  /// Schedule records pushed through the per-worker rings, and the times
  /// a full ring made the producer spin-wait for the checker.
  uint64_t RingRecords = 0;
  uint64_t RingSpins = 0;
  /// Wall-clock run time and window-check latency (checker-side).
  double ElapsedSec = 0.0;
  uint64_t WindowCheckNs = 0;
  uint64_t MaxWindowCheckNs = 0;

  double commitsPerSec() const;
  double abortsPerSec() const;
  /// Mean checker latency per window, in microseconds.
  double meanWindowCheckUs() const;

  /// Merge one worker's (or one window's) counters into the total.
  void absorb(const StressStats &W);

  /// One-line rendering for ppstress/bench output.
  std::string toString() const;
};

/// Effectiveness counters for the interning/memoization layer of one run:
/// the spec's hash-consing table plus the mover/precongruence caches that
/// sit on top of it.  Purely observational — gathering them never changes
/// a verdict.
struct CacheStats {
  /// The spec table: states/sets/op keys interned and the transition memo.
  InternStats Intern;
  /// Left-mover decisions served from the memo vs computed semantically.
  uint64_t MoverMemoHits = 0;
  uint64_t MoverMemoMisses = 0;
  /// State-set pairs visited by the precongruence fixpoint.
  uint64_t PrecongruencePairs = 0;
  /// Reachable state sets enumerated for the mover's Definition 4.1
  /// quantification (0 when no semantic query ran).
  uint64_t ReachableSets = 0;
  /// Explorer partial-order-reduction counters (all zero unless the run's
  /// "explore" check ran with a reduction enabled; see sim/Reduction.h).
  uint64_t ExplorerFiringsPruned = 0;
  uint64_t ExplorerPersistentCuts = 0;
  uint64_t ExplorerSymmetryHits = 0;
  /// Fraction of the explorer's candidate firings the reduction pruned.
  double ExplorerReductionRatio = 0.0;
  /// Certified commutativity-table counters (all zero unless the run used
  /// a static commutativity DB; see analysis/MoverTable.h).  Hits are
  /// oracle queries answered "strongly commutes" (a refinement applied),
  /// misses queries answered "no / unknown"; CertChecks counts
  /// independent certificate verifications; ProvedPrograms counts
  /// whole-program serializability proofs accepted; OracleSkips counts
  /// terminal configurations whose serializability replay the proof made
  /// redundant.
  uint64_t CommutTableHits = 0;
  uint64_t CommutTableMisses = 0;
  uint64_t CertChecks = 0;
  uint64_t ProvedPrograms = 0;
  uint64_t OracleSkips = 0;
  /// Snapshot/copy traffic over the run (delta of the process-wide
  /// memstats counters): machine copies, O(1) chunk shares vs chunks the
  /// CoW layer actually had to clone, bytes carved into chunks and drawn
  /// from arenas.
  memstats::Snapshot Memory;

  double moverHitRate() const {
    uint64_t Total = MoverMemoHits + MoverMemoMisses;
    return Total ? static_cast<double>(MoverMemoHits) /
                       static_cast<double>(Total)
                 : 0.0;
  }

  /// Multi-line "  key: value" rendering for pprun --stats.
  std::string toString() const;
};

} // namespace pushpull

#endif // PUSHPULL_SIM_STATS_H
