//===- sim/Explorer.cpp - Exhaustive interleaving explorer ------------------===//

#include "sim/Explorer.h"

#include "core/Invariants.h"
#include "lang/Printer.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <optional>
#include <thread>

using namespace pushpull;

namespace {

/// Render everything the commit-order oracle looks at — the commit-ordered
/// transactions (body, start/final stacks) and the committed shared log —
/// into a key.  Two machines with equal keys get identical verdicts from
/// SerializabilityChecker::checkCommitOrder, which is deterministic in
/// that content, so verdicts can be memoized per explorer (or per worker).
std::string committedContentKey(const PushPullMachine &M, StateTable &Table) {
  const std::vector<CommittedTx> &Txs = M.committed();
  std::vector<const CommittedTx *> Order;
  Order.reserve(Txs.size());
  for (const CommittedTx &T : Txs)
    Order.push_back(&T);
  std::sort(Order.begin(), Order.end(),
            [](const CommittedTx *A, const CommittedTx *B) {
              return A->CommitSeq < B->CommitSeq;
            });

  std::string Key;
  Key.reserve(32 + 48 * Order.size());
  auto Append32 = [&Key](uint32_t V) {
    char B[4];
    std::memcpy(B, &V, 4);
    Key.append(B, 4);
  };
  auto AppendStack = [&](const Stack &S) {
    Append32(static_cast<uint32_t>(S.size()));
    for (const auto &[Var, Val] : S.entries()) {
      Key += Var; // Identifier text: never contains NUL.
      Key.push_back('\0');
      uint64_t Bits = static_cast<uint64_t>(Val);
      char B[8];
      std::memcpy(B, &Bits, 8);
      Key.append(B, 8);
    }
  };
  for (const CommittedTx *T : Order) {
    Key += T->Body->printed();
    Key.push_back('\0');
    AppendStack(T->Sigma);
    AppendStack(T->FinalSigma);
  }
  for (const Operation &Op : M.committedLog())
    Append32(Table.opKey(Op));
  return Key;
}

/// checkCommitOrder through a verdict memo (see committedContentKey).
const SerializabilityVerdict &cachedCommitOrderVerdict(
    SerializabilityChecker &Oracle,
    std::unordered_map<std::string, SerializabilityVerdict> &Memo,
    StateTable &Table, const PushPullMachine &M) {
  std::string Key = committedContentKey(M, Table);
  auto It = Memo.find(Key);
  if (It != Memo.end())
    return It->second;
  return Memo.emplace(std::move(Key), Oracle.checkCommitOrder(M))
      .first->second;
}

/// The candidate scratch arena: one per explorer worker thread, rewound
/// by expandReduced's scope after every expansion, so steady-state
/// candidate enumeration performs no heap allocation at all.
thread_local Arena CandidateArena;

/// Enumerate every candidate move from \p M as a (firing, footprint)
/// pair, in the canonical rule order the sequential DFS has always used:
/// per thread, guarded BEGIN | APP (step x completion) | PUSH (each npshd)
/// | PULL (each global entry not in L, opacity toggle respected) | CMT |
/// backward UNAPP / UNPUSH / UNPULL.  Candidates are *attempts*: whether
/// one is enabled is decided by firing it (rejections never mutate).
void enumerateCandidates(const PushPullMachine &M,
                         const ExplorerConfig &Config,
                         ArenaVec<Candidate> &Out) {
  auto FP = [](RuleKind K) {
    RuleFootprint R = ruleFootprint(K);
    FiringFootprint F;
    F.ReadsG = R.ReadsGlobal;
    F.WritesG = R.WritesGlobal;
    return F;
  };
  const FiringFootprint Local; // BEGIN and the local rules.

  for (const ThreadState &Th : M.threads()) {
    TxId T = Th.Tid;

    if (!Th.InTx) {
      if (!Th.Pending.empty())
        Out.push_back({{T, FiringKind::Begin, 0, 0}, Local});
      continue;
    }

    for (const AppChoice &Choice : M.appChoices(T))
      for (size_t CI = 0; CI < Choice.Completions.size(); ++CI)
        Out.push_back({{T, FiringKind::App,
                        static_cast<uint32_t>(Choice.StepIdx),
                        static_cast<uint32_t>(CI)},
                       Local});

    for (size_t I : Th.L.indicesOf(LocalKind::NotPushed)) {
      FiringFootprint PushFP = FP(RuleKind::Push);
      // The commutativity refinement needs the interned key of the
      // operation this push would publish; only intern when an oracle is
      // actually in play (the table is internally synchronized).
      if (Config.CommutDB)
        PushFP.OpKey = M.spec().table().opKey(Th.L[I].Op);
      Out.push_back(
          {{T, FiringKind::Push, static_cast<uint32_t>(I), 0}, PushFP});
    }

    size_t GI = 0;
    for (const GlobalEntry &GE : M.global().entries()) {
      size_t Idx = GI++;
      if (Th.L.contains(GE.Op.Id))
        continue;
      if (!Config.ExploreUncommittedPulls &&
          GE.Kind == GlobalKind::Uncommitted)
        continue;
      FiringFootprint PullFP = FP(RuleKind::Pull);
      PullFP.PullOwner = GE.Owner;
      PullFP.PullCommitted = GE.Kind == GlobalKind::Committed;
      Out.push_back(
          {{T, FiringKind::Pull, static_cast<uint32_t>(Idx), 0}, PullFP});
    }

    Out.push_back({{T, FiringKind::Commit, 0, 0}, FP(RuleKind::Commit)});

    if (Config.ExploreBackwardRules) {
      Out.push_back({{T, FiringKind::UnApp, 0, 0}, Local});
      for (size_t I : Th.L.indicesOf(LocalKind::Pushed))
        Out.push_back(
            {{T, FiringKind::UnPush, static_cast<uint32_t>(I), 0},
             FP(RuleKind::UnPush)});
      for (size_t I : Th.L.indicesOf(LocalKind::Pulled))
        Out.push_back(
            {{T, FiringKind::UnPull, static_cast<uint32_t>(I), 0}, Local});
    }
  }
}

/// The counters expandReduced accounts into (plain references so the
/// sequential engine passes report fields and workers pass locals).
struct ExpandCounters {
  uint64_t &RuleApplications;
  uint64_t &RejectedAttempts;
  uint64_t &FiringsPruned;
  uint64_t &PersistentCuts;
};

/// Expand the successors of \p M under the configured reduction.  \p Emit
/// receives each successor machine together with its sleep set.  Shared
/// by the sequential and parallel engines so their enumeration (and thus
/// their visited closure) is identical per reduction mode.
///
/// Sleep-set protocol: candidates are explored in canonical order; a
/// candidate already in the accumulated sleep set (the inherited set plus
/// the *applied* earlier siblings) is pruned — it was fired at an
/// ancestor and only firings independent of it happened since, so its
/// subtree here is a commutation of one already explored.  Rejected
/// candidates are never added to the accumulator: a later sibling's
/// subtree may *enable* them, and those subtrees must not prune them.
/// The child of firing C inherits the accumulated members independent of
/// C (their firing identities are stable across C: no independent firing
/// reorders another thread's local log or removes global entries).
template <typename Emit>
void expandReduced(const PushPullMachine &M, const ExplorerConfig &Config,
                   const SleepSet &Sleep, ExpandCounters Ctr,
                   Emit &&EmitNext) {
  Arena::Scope CandScope(CandidateArena);
  ArenaVec<Candidate> Cands(CandidateArena);
  enumerateCandidates(M, Config, Cands);

  if (usesPersistentSets(Config.Reduce)) {
    size_t Dropped = restrictToPersistent(Cands);
    if (Dropped) {
      Ctr.FiringsPruned += Dropped;
      ++Ctr.PersistentCuts;
    }
  }

  const bool UseSleep = usesSleepSets(Config.Reduce);
  SleepSet Accum = Sleep;

  // Rejected rule attempts never mutate the machine (the Machine.h
  // contract: schedulers may probe moves freely), so one scratch copy of
  // M is reused across consecutive rejections; only an applied rule
  // consumes it.  This turns "one machine copy per attempt" into "one
  // per applied rule plus one", and rejections outnumber applications by
  // an order of magnitude on typical scopes.
  std::optional<PushPullMachine> Scratch;
  for (const Candidate &C : Cands) {
    if (UseSleep && Accum.contains(C.F)) {
      ++Ctr.FiringsPruned;
      continue;
    }
    if (!Scratch)
      Scratch.emplace(M);
    if (applyFiring(*Scratch, C.F)) {
      ++Ctr.RuleApplications;
      SleepSet ChildSleep =
          UseSleep ? Accum.survivorsAfter(C, Config.CommutDB) : SleepSet();
      EmitNext(std::move(*Scratch), std::move(ChildSleep));
      Scratch.reset();
      if (UseSleep)
        Accum.insert(C);
    } else if (C.F.Kind != FiringKind::Begin) {
      // Guarded begin cannot fail, so it never counts as rejected.
      ++Ctr.RejectedAttempts;
    }
  }
}

/// One unit of parallel work: a configuration, the depth it was reached
/// at, and the sleep set it inherited from its parent's expansion.
struct WorkItem {
  PushPullMachine M;
  size_t Depth;
  SleepSet Sleep;
};

/// Sharded concurrent visited map: configuration key -> shallowest depth
/// + narrowest sleep set seen.  Same protocol as the sequential map
/// (first claim is "fresh" and does the per-config accounting; a later
/// claim re-explores — without re-accounting — iff it is shallower or its
/// sleep set would explore a transition every stored visit pruned).
class ShardedVisited {
public:
  struct Claim {
    bool Fresh;   ///< First time this config was ever seen.
    bool Explore; ///< Caller should expand its successors.
  };

  Claim claim(std::string Key, size_t Depth, const SleepSet &Sleep,
              bool UseSleep) {
    Shard &S = Shards[std::hash<std::string>{}(Key) & (NumShards - 1)];
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto [It, Fresh] = S.Map.try_emplace(std::move(Key), Entry{Depth, Sleep});
    if (Fresh)
      return {true, true};
    bool Shallower = Depth < It->second.Depth;
    bool SleepCovered = !UseSleep || Sleep.supersetOf(It->second.Sleep);
    if (!Shallower && SleepCovered)
      return {false, false};
    It->second.Depth = std::min(It->second.Depth, Depth);
    if (UseSleep)
      It->second.Sleep.intersectWith(Sleep);
    return {false, true};
  }

private:
  static constexpr size_t NumShards = 64;
  struct Entry {
    size_t Depth;
    SleepSet Sleep;
  };
  struct Shard {
    std::mutex Mutex;
    std::unordered_map<std::string, Entry> Map;
  };
  Shard Shards[NumShards];
};

} // namespace

Explorer::Explorer(const SequentialSpec &Spec, MoverChecker &Movers,
                   ExplorerConfig Config)
    : Spec(Spec), Movers(Movers), Config(Config), Oracle(Spec) {}

std::string Explorer::canonicalKey(const PushPullMachine &M, SleepSet &Sleep,
                                   uint64_t &SymmetryHits) const {
  const CommutativityOracle *DB = Config.CommutDB;
  // Sleep sets travel in raw G-index space (stable across independent
  // firings); the visited map compares them in canonical space, so under
  // the commutativity quotient the PULL indices are rewritten through the
  // G order actually used for the key — after the thread relabeling when
  // symmetry also applies (relabeled touches tids only, so the two
  // rewrites commute, but the order used must be the one of the winning
  // permutation's rendering).
  if (Perms.size() <= 1) {
    if (!DB)
      return M.configKey();
    SmallVec<uint32_t, 16> Order;
    std::string Key = M.configKey(nullptr, DB, &Order);
    Sleep = Sleep.reindexedG(Order);
    return Key;
  }
  size_t BestPi = 0;
  SmallVec<uint32_t, 16> Order;
  std::string Key =
      M.configKeyCanonical(Perms, BestPi, DB, DB ? &Order : nullptr);
  if (BestPi != 0) {
    ++SymmetryHits;
    Sleep = Sleep.relabeled(Perms[BestPi]);
  }
  if (DB)
    Sleep = Sleep.reindexedG(Order);
  return Key;
}

ExplorerReport
Explorer::explore(const std::vector<std::vector<CodePtr>> &Programs) {
  // The explorer reads the trace only when rendering a failing terminal;
  // recording it would cost a chain append per applied rule and a chain
  // share per successor copy.
  MachineConfig MC = Config.Machine;
  MC.RecordTrace = false;
  PushPullMachine M(Spec, Movers, MC);
  for (const auto &P : Programs)
    M.addThread(P);

  Perms.clear();
  if (usesSymmetry(Config.Reduce))
    Perms = symmetryGroup(Programs);

  if (Config.Threads > 1)
    return exploreParallel(std::move(M));

  Visited.clear();
  ExplorerReport Report;
  visit(std::move(M), 0, SleepSet(), Report);
  return Report;
}

void Explorer::visit(PushPullMachine M, size_t Depth, SleepSet Sleep,
                     ExplorerReport &Report) {
  if (Report.ConfigsVisited >= Config.MaxConfigs || Depth > Config.MaxDepth) {
    Report.Truncated = true;
    return;
  }
  const bool UseSleep = usesSleepSets(Config.Reduce);
  // Under symmetry, key and sleep set move to the canonical labeling so
  // entries stored by isomorphic configurations compare like with like.
  SleepSet StoredSleep = Sleep;
  std::string Key = canonicalKey(M, StoredSleep, Report.SymmetryHits);
  auto [It, Fresh] =
      Visited.try_emplace(std::move(Key), VisitEntry{Depth, StoredSleep});
  if (!Fresh) {
    bool Shallower = Depth < It->second.Depth;
    bool SleepCovered = !UseSleep || StoredSleep.supersetOf(It->second.Sleep);
    if (!Shallower && SleepCovered)
      return;
    // Previously reached only deeper (with part of its subtree possibly
    // depth-pruned) or with a narrower frontier (part of it sleep-pruned):
    // re-explore from here.  The per-config accounting (visit count,
    // invariants, terminal verdicts) already happened on the first visit.
    It->second.Depth = std::min(It->second.Depth, Depth);
    if (UseSleep)
      It->second.Sleep.intersectWith(StoredSleep);
  } else {
    ++Report.ConfigsVisited;
  }

  if (Config.CheckInvariants && Fresh) {
    for (const ThreadState &Th : M.threads()) {
      InvariantReport IR = checkAllInvariants(Th, M.global(), Movers);
      if (!IR.Holds) {
        ++Report.InvariantViolations;
        if (Report.FirstFailure.empty())
          Report.FirstFailure = IR.Which + ": " + IR.Detail;
      }
    }
  }

  if (M.quiescent()) {
    if (!Fresh)
      return;
    ++Report.TerminalConfigs;
    if (Config.OnTerminal)
      Config.OnTerminal(M);
    if (Config.SkipOracle) {
      // The program was statically proved serializable; the per-terminal
      // replay is certified redundant.
      ++Report.OracleSkips;
      return;
    }
    const SerializabilityVerdict &V =
        cachedCommitOrderVerdict(Oracle, OracleMemo, Spec.table(), M);
    if (V.Serializable != Tri::Yes) {
      ++Report.NonSerializable;
      if (Report.FirstFailure.empty()) {
        Report.FirstFailure =
            "non-serializable terminal: " + V.Detail + "\n" + M.toString();
        for (const CommittedTx &C : M.committed())
          Report.FirstFailure += "  commit[" + std::to_string(C.CommitSeq) +
                                 "] t" + std::to_string(C.Tid) + ": " +
                                 printCode(C.Body) + " start=" +
                                 C.Sigma.toString() + " final=" +
                                 C.FinalSigma.toString() + "\n";
        Report.FirstFailure += "  trace:\n" + M.trace().toString();
      }
    }
    return;
  }

  expandReduced(M, Config, Sleep,
                ExpandCounters{Report.RuleApplications,
                               Report.RejectedAttempts, Report.FiringsPruned,
                               Report.PersistentCuts},
                [&](PushPullMachine Next, SleepSet NextSleep) {
                  visit(std::move(Next), Depth + 1, std::move(NextSleep),
                        Report);
                });
}

ExplorerReport Explorer::exploreParallel(PushPullMachine Root) {
  struct SharedState {
    std::mutex QueueMutex;
    std::condition_variable QueueCV;
    std::vector<WorkItem> Stack; // LIFO: depth-first-ish, bounded frontier.
    size_t ActiveWorkers = 0;

    ShardedVisited Visited;
    std::atomic<uint64_t> ConfigsVisited{0}, TerminalConfigs{0};
    std::atomic<uint64_t> RuleApplications{0}, RejectedAttempts{0};
    std::atomic<uint64_t> NonSerializable{0}, InvariantViolations{0};
    std::atomic<uint64_t> FiringsPruned{0}, PersistentCuts{0};
    std::atomic<uint64_t> SymmetryHits{0}, OracleSkips{0};
    std::atomic<bool> Truncated{false};

    std::mutex FailureMutex;
    std::string FirstFailure;

    std::mutex TerminalMutex; ///< Serializes the OnTerminal hook.
  } Shared;

  const bool UseSleep = usesSleepSets(Config.Reduce);
  Shared.Stack.push_back(WorkItem{std::move(Root), 0, SleepSet()});

  auto Worker = [&]() {
    // Worker-local checkers: verdicts are cache-independent, so private
    // caches are sound; the expensive denotation steps are still shared
    // across workers through the spec's interning table.
    MoverChecker WorkerMovers(Spec, Movers.limits(),
                              Movers.precongruence().limits());
    SerializabilityChecker WorkerOracle(Spec);
    std::unordered_map<std::string, SerializabilityVerdict> WorkerMemo;
    std::vector<WorkItem> Children;

    auto RecordFailure = [&](const std::string &Text) {
      std::lock_guard<std::mutex> Lock(Shared.FailureMutex);
      if (Shared.FirstFailure.empty())
        Shared.FirstFailure = Text;
    };

    for (;;) {
      std::optional<WorkItem> Item;
      {
        std::unique_lock<std::mutex> Lock(Shared.QueueMutex);
        Shared.QueueCV.wait(Lock, [&] {
          return !Shared.Stack.empty() || Shared.ActiveWorkers == 0;
        });
        if (Shared.Stack.empty())
          return; // No work anywhere and nobody producing: done.
        Item.emplace(std::move(Shared.Stack.back()));
        Shared.Stack.pop_back();
        ++Shared.ActiveWorkers;
      }

      Children.clear();
      PushPullMachine &M = Item->M;
      size_t Depth = Item->Depth;
      M.setMovers(WorkerMovers);

      if (Shared.ConfigsVisited.load(std::memory_order_relaxed) >=
              Config.MaxConfigs ||
          Depth > Config.MaxDepth) {
        Shared.Truncated.store(true, std::memory_order_relaxed);
      } else {
        uint64_t Hits = 0;
        SleepSet StoredSleep = Item->Sleep;
        std::string Key = canonicalKey(M, StoredSleep, Hits);
        if (Hits)
          Shared.SymmetryHits.fetch_add(Hits, std::memory_order_relaxed);
        if (auto C = Shared.Visited.claim(std::move(Key), Depth, StoredSleep,
                                          UseSleep);
            C.Explore) {
          if (C.Fresh)
            Shared.ConfigsVisited.fetch_add(1, std::memory_order_relaxed);

          if (Config.CheckInvariants && C.Fresh) {
            for (const ThreadState &Th : M.threads()) {
              InvariantReport IR =
                  checkAllInvariants(Th, M.global(), WorkerMovers);
              if (!IR.Holds) {
                Shared.InvariantViolations.fetch_add(
                    1, std::memory_order_relaxed);
                RecordFailure(IR.Which + ": " + IR.Detail);
              }
            }
          }

          if (M.quiescent()) {
            if (C.Fresh) {
              Shared.TerminalConfigs.fetch_add(1, std::memory_order_relaxed);
              if (Config.OnTerminal) {
                std::lock_guard<std::mutex> Lock(Shared.TerminalMutex);
                Config.OnTerminal(M);
              }
              if (Config.SkipOracle) {
                Shared.OracleSkips.fetch_add(1, std::memory_order_relaxed);
              } else {
                const SerializabilityVerdict &V = cachedCommitOrderVerdict(
                    WorkerOracle, WorkerMemo, Spec.table(), M);
                if (V.Serializable != Tri::Yes) {
                  Shared.NonSerializable.fetch_add(1,
                                                   std::memory_order_relaxed);
                  std::string Text = "non-serializable terminal: " +
                                     V.Detail + "\n" + M.toString();
                  for (const CommittedTx &Cm : M.committed())
                    Text += "  commit[" + std::to_string(Cm.CommitSeq) +
                            "] t" + std::to_string(Cm.Tid) + ": " +
                            printCode(Cm.Body) + " start=" +
                            Cm.Sigma.toString() + " final=" +
                            Cm.FinalSigma.toString() + "\n";
                  Text += "  trace:\n" + M.trace().toString();
                  RecordFailure(Text);
                }
              }
            }
          } else {
            uint64_t Applied = 0, Rejected = 0, Pruned = 0, Cuts = 0;
            expandReduced(M, Config, Item->Sleep,
                          ExpandCounters{Applied, Rejected, Pruned, Cuts},
                          [&](PushPullMachine Next, SleepSet NextSleep) {
                            Children.push_back(WorkItem{std::move(Next),
                                                        Depth + 1,
                                                        std::move(NextSleep)});
                          });
            Shared.RuleApplications.fetch_add(Applied,
                                              std::memory_order_relaxed);
            Shared.RejectedAttempts.fetch_add(Rejected,
                                              std::memory_order_relaxed);
            if (Pruned)
              Shared.FiringsPruned.fetch_add(Pruned,
                                             std::memory_order_relaxed);
            if (Cuts)
              Shared.PersistentCuts.fetch_add(Cuts,
                                              std::memory_order_relaxed);
          }
        }
      }

      {
        std::lock_guard<std::mutex> Lock(Shared.QueueMutex);
        for (WorkItem &C : Children)
          Shared.Stack.push_back(std::move(C));
        --Shared.ActiveWorkers;
      }
      Shared.QueueCV.notify_all();
    }
  };

  std::vector<std::thread> Pool;
  Pool.reserve(Config.Threads);
  for (unsigned I = 0; I < Config.Threads; ++I)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();

  ExplorerReport Report;
  Report.ConfigsVisited = Shared.ConfigsVisited.load();
  Report.TerminalConfigs = Shared.TerminalConfigs.load();
  Report.RuleApplications = Shared.RuleApplications.load();
  Report.RejectedAttempts = Shared.RejectedAttempts.load();
  Report.NonSerializable = Shared.NonSerializable.load();
  Report.InvariantViolations = Shared.InvariantViolations.load();
  Report.FiringsPruned = Shared.FiringsPruned.load();
  Report.PersistentCuts = Shared.PersistentCuts.load();
  Report.SymmetryHits = Shared.SymmetryHits.load();
  Report.OracleSkips = Shared.OracleSkips.load();
  Report.Truncated = Shared.Truncated.load();
  Report.FirstFailure = std::move(Shared.FirstFailure);
  return Report;
}
