//===- sim/Explorer.cpp - Exhaustive interleaving explorer ------------------===//

#include "sim/Explorer.h"

#include "core/Invariants.h"
#include "lang/Printer.h"

using namespace pushpull;

Explorer::Explorer(const SequentialSpec &Spec, MoverChecker &Movers,
                   ExplorerConfig Config)
    : Spec(Spec), Movers(Movers), Config(Config), Oracle(Spec) {}

std::string Explorer::configKey(const PushPullMachine &M) {
  // Operation ids differ between branches that apply "the same" operation,
  // so the key renders operations by call/result and logs by structure.
  std::string Out;
  for (const ThreadState &Th : M.threads()) {
    Out += Th.InTx ? "T:" + printCode(Th.Code) : std::string("idle");
    Out += '\x01';
    Out += Th.Sigma.toString();
    Out += '\x01';
    for (const LocalEntry &E : Th.L.entries()) {
      Out += E.Op.Call.toString();
      if (E.Op.Result)
        Out += "=" + std::to_string(*E.Op.Result);
      Out += toString(E.Kind);
      // Position of this op in G links L and G structurally.
      size_t GI = M.global().indexOf(E.Op.Id);
      Out += GI == GlobalLog::npos ? std::string("-")
                                   : std::to_string(GI);
      Out += ';';
    }
    Out += std::to_string(Th.Pending.size());
    Out += '\x02';
  }
  for (const GlobalEntry &E : M.global().entries()) {
    Out += E.Op.Call.toString();
    if (E.Op.Result)
      Out += "=" + std::to_string(*E.Op.Result);
    Out += E.Kind == GlobalKind::Committed ? "C" : "U";
    Out += std::to_string(E.Owner);
    Out += ';';
  }
  return Out;
}

ExplorerReport
Explorer::explore(const std::vector<std::vector<CodePtr>> &Programs) {
  PushPullMachine M(Spec, Movers, Config.Machine);
  for (const auto &P : Programs)
    M.addThread(P);

  Visited.clear();
  ExplorerReport Report;
  visit(std::move(M), 0, Report);
  return Report;
}

void Explorer::visit(PushPullMachine M, size_t Depth,
                     ExplorerReport &Report) {
  if (Report.ConfigsVisited >= Config.MaxConfigs || Depth > Config.MaxDepth) {
    Report.Truncated = true;
    return;
  }
  std::string Key = configKey(M);
  auto [It, Fresh] = Visited.try_emplace(Key, Depth);
  if (!Fresh) {
    if (It->second <= Depth)
      return;
    // Previously reached only deeper (with part of its subtree possibly
    // depth-pruned): re-explore from this shallower position.  The
    // per-config accounting (visit count, invariants, terminal verdicts)
    // already happened on the first visit.
    It->second = Depth;
  } else {
    ++Report.ConfigsVisited;
  }

  if (Config.CheckInvariants && Fresh) {
    for (const ThreadState &Th : M.threads()) {
      InvariantReport IR = checkAllInvariants(Th, M.global(), Movers);
      if (!IR.Holds) {
        ++Report.InvariantViolations;
        if (Report.FirstFailure.empty())
          Report.FirstFailure = IR.Which + ": " + IR.Detail;
      }
    }
  }

  if (M.quiescent()) {
    if (!Fresh)
      return;
    ++Report.TerminalConfigs;
    SerializabilityVerdict V = Oracle.checkCommitOrder(M);
    if (V.Serializable != Tri::Yes) {
      ++Report.NonSerializable;
      if (Report.FirstFailure.empty()) {
        Report.FirstFailure =
            "non-serializable terminal: " + V.Detail + "\n" + M.toString();
        for (const CommittedTx &C : M.committed())
          Report.FirstFailure += "  commit[" + std::to_string(C.CommitSeq) +
                                 "] t" + std::to_string(C.Tid) + ": " +
                                 printCode(C.Body) + " start=" +
                                 C.Sigma.toString() + " final=" +
                                 C.FinalSigma.toString() + "\n";
        Report.FirstFailure += "  trace:\n" + M.trace().toString();
      }
    }
    return;
  }

  // Enumerate every enabled move from this configuration.
  auto Recurse = [&](PushPullMachine Next) {
    ++Report.RuleApplications;
    visit(std::move(Next), Depth + 1, Report);
  };

  for (const ThreadState &Th : M.threads()) {
    TxId T = Th.Tid;

    if (!Th.InTx) {
      if (!Th.Pending.empty()) {
        PushPullMachine Next = M;
        if (Next.beginTx(T))
          Recurse(std::move(Next));
      }
      continue;
    }

    // APP: every (step choice, completion) pair.
    for (const AppChoice &Choice : M.appChoices(T))
      for (size_t CI = 0; CI < Choice.Completions.size(); ++CI) {
        PushPullMachine Next = M;
        if (Next.app(T, Choice.StepIdx, CI).Applied)
          Recurse(std::move(Next));
        else
          ++Report.RejectedAttempts;
      }

    // PUSH every npshd entry.
    for (size_t I : Th.L.indicesOf(LocalKind::NotPushed)) {
      PushPullMachine Next = M;
      if (Next.push(T, I).Applied)
        Recurse(std::move(Next));
      else
        ++Report.RejectedAttempts;
    }

    // PULL every global entry not in L (respecting the opacity toggle).
    for (size_t GI = 0; GI < M.global().size(); ++GI) {
      const GlobalEntry &GE = M.global()[GI];
      if (Th.L.contains(GE.Op.Id))
        continue;
      if (!Config.ExploreUncommittedPulls &&
          GE.Kind == GlobalKind::Uncommitted)
        continue;
      PushPullMachine Next = M;
      if (Next.pull(T, GI).Applied)
        Recurse(std::move(Next));
      else
        ++Report.RejectedAttempts;
    }

    // CMT.
    {
      PushPullMachine Next = M;
      if (Next.commit(T).Applied)
        Recurse(std::move(Next));
      else
        ++Report.RejectedAttempts;
    }

    if (Config.ExploreBackwardRules) {
      {
        PushPullMachine Next = M;
        if (Next.unapp(T).Applied)
          Recurse(std::move(Next));
        else
          ++Report.RejectedAttempts;
      }
      for (size_t I : Th.L.indicesOf(LocalKind::Pushed)) {
        PushPullMachine Next = M;
        if (Next.unpush(T, I).Applied)
          Recurse(std::move(Next));
        else
          ++Report.RejectedAttempts;
      }
      for (size_t I : Th.L.indicesOf(LocalKind::Pulled)) {
        PushPullMachine Next = M;
        if (Next.unpull(T, I).Applied)
          Recurse(std::move(Next));
        else
          ++Report.RejectedAttempts;
      }
    }
  }
}
