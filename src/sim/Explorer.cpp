//===- sim/Explorer.cpp - Exhaustive interleaving explorer ------------------===//

#include "sim/Explorer.h"

#include "core/Invariants.h"
#include "lang/Printer.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>

using namespace pushpull;

namespace {

/// Render everything the commit-order oracle looks at — the commit-ordered
/// transactions (body, start/final stacks) and the committed shared log —
/// into a key.  Two machines with equal keys get identical verdicts from
/// SerializabilityChecker::checkCommitOrder, which is deterministic in
/// that content, so verdicts can be memoized per explorer (or per worker).
std::string committedContentKey(const PushPullMachine &M, StateTable &Table) {
  const std::vector<CommittedTx> &Txs = M.committed();
  std::vector<const CommittedTx *> Order;
  Order.reserve(Txs.size());
  for (const CommittedTx &T : Txs)
    Order.push_back(&T);
  std::sort(Order.begin(), Order.end(),
            [](const CommittedTx *A, const CommittedTx *B) {
              return A->CommitSeq < B->CommitSeq;
            });

  std::string Key;
  Key.reserve(32 + 48 * Order.size());
  auto AppendStack = [&Key](const Stack &S) {
    for (const auto &[Var, Val] : S.entries()) {
      Key += Var;
      Key += '>';
      Key += std::to_string(Val);
      Key += ',';
    }
  };
  for (const CommittedTx *T : Order) {
    Key += T->Body->printed();
    Key += '\x01';
    AppendStack(T->Sigma);
    Key += '\x01';
    AppendStack(T->FinalSigma);
    Key += '\x02';
  }
  for (const Operation &Op : M.committedLog()) {
    Key += std::to_string(Table.opKey(Op));
    Key += ';';
  }
  return Key;
}

/// checkCommitOrder through a verdict memo (see committedContentKey).
const SerializabilityVerdict &cachedCommitOrderVerdict(
    SerializabilityChecker &Oracle,
    std::unordered_map<std::string, SerializabilityVerdict> &Memo,
    StateTable &Table, const PushPullMachine &M) {
  std::string Key = committedContentKey(M, Table);
  auto It = Memo.find(Key);
  if (It != Memo.end())
    return It->second;
  return Memo.emplace(std::move(Key), Oracle.checkCommitOrder(M))
      .first->second;
}

/// Enumerate every enabled move from \p M, in the canonical rule order the
/// sequential DFS has always used.  \p Emit receives each successor
/// machine; the counters account applied/rejected attempts.  Shared by the
/// sequential and parallel engines so their enumeration (and thus their
/// visited closure) is identical.
template <typename Emit>
void expandSuccessors(const PushPullMachine &M, const ExplorerConfig &Config,
                      uint64_t &RuleApplications, uint64_t &RejectedAttempts,
                      Emit &&EmitNext) {
  // Rejected rule attempts never mutate the machine (the Machine.h
  // contract: schedulers may probe moves freely), so one scratch copy of
  // M is reused across consecutive rejections; only an applied rule
  // consumes it.  This turns "one machine copy per attempt" into "one
  // per applied rule plus one", and rejections outnumber applications by
  // an order of magnitude on typical scopes.
  std::optional<PushPullMachine> Scratch;
  auto Attempt = [&](auto &&Apply) {
    if (!Scratch)
      Scratch.emplace(M);
    if (Apply(*Scratch)) {
      ++RuleApplications;
      EmitNext(std::move(*Scratch));
      Scratch.reset();
    } else {
      ++RejectedAttempts;
    }
  };

  for (const ThreadState &Th : M.threads()) {
    TxId T = Th.Tid;

    if (!Th.InTx) {
      if (!Th.Pending.empty()) {
        // Guarded begin: cannot fail, so it never counts as rejected.
        if (!Scratch)
          Scratch.emplace(M);
        if (Scratch->beginTx(T)) {
          ++RuleApplications;
          EmitNext(std::move(*Scratch));
          Scratch.reset();
        }
      }
      continue;
    }

    // APP: every (step choice, completion) pair.
    for (const AppChoice &Choice : M.appChoices(T))
      for (size_t CI = 0; CI < Choice.Completions.size(); ++CI)
        Attempt([&](PushPullMachine &N) {
          return N.app(T, Choice.StepIdx, CI).Applied;
        });

    // PUSH every npshd entry.
    for (size_t I : Th.L.indicesOf(LocalKind::NotPushed))
      Attempt([&](PushPullMachine &N) { return N.push(T, I).Applied; });

    // PULL every global entry not in L (respecting the opacity toggle).
    for (size_t GI = 0; GI < M.global().size(); ++GI) {
      const GlobalEntry &GE = M.global()[GI];
      if (Th.L.contains(GE.Op.Id))
        continue;
      if (!Config.ExploreUncommittedPulls &&
          GE.Kind == GlobalKind::Uncommitted)
        continue;
      Attempt([&](PushPullMachine &N) { return N.pull(T, GI).Applied; });
    }

    // CMT.
    Attempt([&](PushPullMachine &N) { return N.commit(T).Applied; });

    if (Config.ExploreBackwardRules) {
      Attempt([&](PushPullMachine &N) { return N.unapp(T).Applied; });
      for (size_t I : Th.L.indicesOf(LocalKind::Pushed))
        Attempt([&](PushPullMachine &N) { return N.unpush(T, I).Applied; });
      for (size_t I : Th.L.indicesOf(LocalKind::Pulled))
        Attempt([&](PushPullMachine &N) { return N.unpull(T, I).Applied; });
    }
  }
}

/// One unit of parallel work: a configuration and the depth it was
/// reached at.
struct WorkItem {
  PushPullMachine M;
  size_t Depth;
};

/// Sharded concurrent visited map: configuration key -> shallowest depth
/// seen.  Same protocol as the sequential map (first claim is "fresh" and
/// does the per-config accounting; a later claim at a shallower depth
/// re-explores without re-accounting).
class ShardedVisited {
public:
  struct Claim {
    bool Fresh;   ///< First time this config was ever seen.
    bool Explore; ///< Caller should expand its successors.
  };

  Claim claim(std::string Key, size_t Depth) {
    Shard &S = Shards[std::hash<std::string>{}(Key) & (NumShards - 1)];
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto [It, Fresh] = S.Map.try_emplace(std::move(Key), Depth);
    if (Fresh)
      return {true, true};
    if (It->second <= Depth)
      return {false, false};
    It->second = Depth;
    return {false, true};
  }

private:
  static constexpr size_t NumShards = 64;
  struct Shard {
    std::mutex Mutex;
    std::unordered_map<std::string, size_t> Map;
  };
  Shard Shards[NumShards];
};

} // namespace

Explorer::Explorer(const SequentialSpec &Spec, MoverChecker &Movers,
                   ExplorerConfig Config)
    : Spec(Spec), Movers(Movers), Config(Config), Oracle(Spec) {}

ExplorerReport
Explorer::explore(const std::vector<std::vector<CodePtr>> &Programs) {
  PushPullMachine M(Spec, Movers, Config.Machine);
  for (const auto &P : Programs)
    M.addThread(P);

  if (Config.Threads > 1)
    return exploreParallel(std::move(M));

  Visited.clear();
  ExplorerReport Report;
  visit(std::move(M), 0, Report);
  return Report;
}

void Explorer::visit(PushPullMachine M, size_t Depth,
                     ExplorerReport &Report) {
  if (Report.ConfigsVisited >= Config.MaxConfigs || Depth > Config.MaxDepth) {
    Report.Truncated = true;
    return;
  }
  std::string Key = M.configKey();
  auto [It, Fresh] = Visited.try_emplace(Key, Depth);
  if (!Fresh) {
    if (It->second <= Depth)
      return;
    // Previously reached only deeper (with part of its subtree possibly
    // depth-pruned): re-explore from this shallower position.  The
    // per-config accounting (visit count, invariants, terminal verdicts)
    // already happened on the first visit.
    It->second = Depth;
  } else {
    ++Report.ConfigsVisited;
  }

  if (Config.CheckInvariants && Fresh) {
    for (const ThreadState &Th : M.threads()) {
      InvariantReport IR = checkAllInvariants(Th, M.global(), Movers);
      if (!IR.Holds) {
        ++Report.InvariantViolations;
        if (Report.FirstFailure.empty())
          Report.FirstFailure = IR.Which + ": " + IR.Detail;
      }
    }
  }

  if (M.quiescent()) {
    if (!Fresh)
      return;
    ++Report.TerminalConfigs;
    const SerializabilityVerdict &V =
        cachedCommitOrderVerdict(Oracle, OracleMemo, Spec.table(), M);
    if (V.Serializable != Tri::Yes) {
      ++Report.NonSerializable;
      if (Report.FirstFailure.empty()) {
        Report.FirstFailure =
            "non-serializable terminal: " + V.Detail + "\n" + M.toString();
        for (const CommittedTx &C : M.committed())
          Report.FirstFailure += "  commit[" + std::to_string(C.CommitSeq) +
                                 "] t" + std::to_string(C.Tid) + ": " +
                                 printCode(C.Body) + " start=" +
                                 C.Sigma.toString() + " final=" +
                                 C.FinalSigma.toString() + "\n";
        Report.FirstFailure += "  trace:\n" + M.trace().toString();
      }
    }
    return;
  }

  expandSuccessors(M, Config, Report.RuleApplications,
                   Report.RejectedAttempts, [&](PushPullMachine Next) {
                     visit(std::move(Next), Depth + 1, Report);
                   });
}

ExplorerReport Explorer::exploreParallel(PushPullMachine Root) {
  struct SharedState {
    std::mutex QueueMutex;
    std::condition_variable QueueCV;
    std::vector<WorkItem> Stack; // LIFO: depth-first-ish, bounded frontier.
    size_t ActiveWorkers = 0;

    ShardedVisited Visited;
    std::atomic<uint64_t> ConfigsVisited{0}, TerminalConfigs{0};
    std::atomic<uint64_t> RuleApplications{0}, RejectedAttempts{0};
    std::atomic<uint64_t> NonSerializable{0}, InvariantViolations{0};
    std::atomic<bool> Truncated{false};

    std::mutex FailureMutex;
    std::string FirstFailure;
  } Shared;

  Shared.Stack.push_back(WorkItem{std::move(Root), 0});

  auto Worker = [&]() {
    // Worker-local checkers: verdicts are cache-independent, so private
    // caches are sound; the expensive denotation steps are still shared
    // across workers through the spec's interning table.
    MoverChecker WorkerMovers(Spec, Movers.limits(),
                              Movers.precongruence().limits());
    SerializabilityChecker WorkerOracle(Spec);
    std::unordered_map<std::string, SerializabilityVerdict> WorkerMemo;
    std::vector<WorkItem> Children;

    auto RecordFailure = [&](const std::string &Text) {
      std::lock_guard<std::mutex> Lock(Shared.FailureMutex);
      if (Shared.FirstFailure.empty())
        Shared.FirstFailure = Text;
    };

    for (;;) {
      std::optional<WorkItem> Item;
      {
        std::unique_lock<std::mutex> Lock(Shared.QueueMutex);
        Shared.QueueCV.wait(Lock, [&] {
          return !Shared.Stack.empty() || Shared.ActiveWorkers == 0;
        });
        if (Shared.Stack.empty())
          return; // No work anywhere and nobody producing: done.
        Item.emplace(std::move(Shared.Stack.back()));
        Shared.Stack.pop_back();
        ++Shared.ActiveWorkers;
      }

      Children.clear();
      PushPullMachine &M = Item->M;
      size_t Depth = Item->Depth;
      M.setMovers(WorkerMovers);

      if (Shared.ConfigsVisited.load(std::memory_order_relaxed) >=
              Config.MaxConfigs ||
          Depth > Config.MaxDepth) {
        Shared.Truncated.store(true, std::memory_order_relaxed);
      } else if (auto C = Shared.Visited.claim(M.configKey(), Depth);
                 C.Explore) {
        if (C.Fresh)
          Shared.ConfigsVisited.fetch_add(1, std::memory_order_relaxed);

        if (Config.CheckInvariants && C.Fresh) {
          for (const ThreadState &Th : M.threads()) {
            InvariantReport IR =
                checkAllInvariants(Th, M.global(), WorkerMovers);
            if (!IR.Holds) {
              Shared.InvariantViolations.fetch_add(1,
                                                   std::memory_order_relaxed);
              RecordFailure(IR.Which + ": " + IR.Detail);
            }
          }
        }

        if (M.quiescent()) {
          if (C.Fresh) {
            Shared.TerminalConfigs.fetch_add(1, std::memory_order_relaxed);
            const SerializabilityVerdict &V = cachedCommitOrderVerdict(
                WorkerOracle, WorkerMemo, Spec.table(), M);
            if (V.Serializable != Tri::Yes) {
              Shared.NonSerializable.fetch_add(1, std::memory_order_relaxed);
              std::string Text = "non-serializable terminal: " + V.Detail +
                                 "\n" + M.toString();
              for (const CommittedTx &Cm : M.committed())
                Text += "  commit[" + std::to_string(Cm.CommitSeq) + "] t" +
                        std::to_string(Cm.Tid) + ": " + printCode(Cm.Body) +
                        " start=" + Cm.Sigma.toString() + " final=" +
                        Cm.FinalSigma.toString() + "\n";
              Text += "  trace:\n" + M.trace().toString();
              RecordFailure(Text);
            }
          }
        } else {
          uint64_t Applied = 0, Rejected = 0;
          expandSuccessors(M, Config, Applied, Rejected,
                           [&](PushPullMachine Next) {
                             Children.push_back(
                                 WorkItem{std::move(Next), Depth + 1});
                           });
          Shared.RuleApplications.fetch_add(Applied,
                                            std::memory_order_relaxed);
          Shared.RejectedAttempts.fetch_add(Rejected,
                                            std::memory_order_relaxed);
        }
      }

      {
        std::lock_guard<std::mutex> Lock(Shared.QueueMutex);
        for (WorkItem &C : Children)
          Shared.Stack.push_back(std::move(C));
        --Shared.ActiveWorkers;
      }
      Shared.QueueCV.notify_all();
    }
  };

  std::vector<std::thread> Pool;
  Pool.reserve(Config.Threads);
  for (unsigned I = 0; I < Config.Threads; ++I)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();

  ExplorerReport Report;
  Report.ConfigsVisited = Shared.ConfigsVisited.load();
  Report.TerminalConfigs = Shared.TerminalConfigs.load();
  Report.RuleApplications = Shared.RuleApplications.load();
  Report.RejectedAttempts = Shared.RejectedAttempts.load();
  Report.NonSerializable = Shared.NonSerializable.load();
  Report.InvariantViolations = Shared.InvariantViolations.load();
  Report.Truncated = Shared.Truncated.load();
  Report.FirstFailure = std::move(Shared.FirstFailure);
  return Report;
}
