//===- analysis/IndependenceAudit.cpp - Reduction soundness audit ----------===//

#include "analysis/IndependenceAudit.h"

#include "core/Machine.h"

#include <cassert>

using namespace pushpull;

static FiringFootprint footprintOf(const PushPullMachine &M, const Firing &F) {
  FiringFootprint FP;
  if (F.Kind == FiringKind::Begin)
    return FP; // BEGIN reads and writes only its own thread's state.
  RuleFootprint RF =
      ruleFootprint(static_cast<RuleKind>(static_cast<unsigned>(F.Kind) - 1));
  FP.ReadsG = RF.ReadsGlobal;
  FP.WritesG = RF.WritesGlobal;
  if (F.Kind == FiringKind::Pull && F.A < M.global().size()) {
    const GlobalEntry &GE = M.global()[F.A];
    FP.PullOwner = GE.Owner;
    FP.PullCommitted = GE.Kind == GlobalKind::Committed;
  }
  return FP;
}

std::vector<Candidate> pushpull::allCandidates(const PushPullMachine &M) {
  std::vector<Candidate> Out;
  auto add = [&](TxId Tid, FiringKind K, uint32_t A = 0, uint32_t B = 0) {
    Candidate C;
    C.F.Tid = Tid;
    C.F.Kind = K;
    C.F.A = A;
    C.F.B = B;
    C.FP = footprintOf(M, C.F);
    Out.push_back(C);
  };
  for (const ThreadState &Th : M.threads()) {
    TxId T = Th.Tid;
    if (!Th.InTx) {
      if (!Th.Pending.empty())
        add(T, FiringKind::Begin);
      continue;
    }
    for (const AppChoice &C : M.appChoices(T))
      for (size_t CI = 0; CI < C.Completions.size(); ++CI)
        add(T, FiringKind::App, static_cast<uint32_t>(C.StepIdx),
            static_cast<uint32_t>(CI));
    if (!Th.L.empty())
      add(T, FiringKind::UnApp);
    for (size_t I = 0; I < Th.L.size(); ++I) {
      switch (Th.L[I].Kind) {
      case LocalKind::NotPushed:
        add(T, FiringKind::Push, static_cast<uint32_t>(I));
        break;
      case LocalKind::Pushed:
        add(T, FiringKind::UnPush, static_cast<uint32_t>(I));
        break;
      case LocalKind::Pulled:
        add(T, FiringKind::UnPull, static_cast<uint32_t>(I));
        break;
      }
    }
    for (size_t I = 0; I < M.global().size(); ++I)
      if (!Th.L.contains(M.global()[I].Op.Id))
        add(T, FiringKind::Pull, static_cast<uint32_t>(I));
    add(T, FiringKind::Commit);
  }
  return Out;
}

/// One diamond check.  Returns true and leaves \p Reason empty on
/// commutation; otherwise fills \p Reason.
static bool diamond(const PushPullMachine &M, const Firing &A,
                    const Firing &B, std::string &Reason) {
  PushPullMachine AB(M);
  if (!applyFiring(AB, A)) {
    Reason = A.toString() + " no longer enabled (probe race)";
    return false;
  }
  if (!applyFiring(AB, B)) {
    Reason = B.toString() + " disabled after " + A.toString();
    return false;
  }
  PushPullMachine BA(M);
  if (!applyFiring(BA, B)) {
    Reason = B.toString() + " no longer enabled (probe race)";
    return false;
  }
  if (!applyFiring(BA, A)) {
    Reason = A.toString() + " disabled after " + B.toString();
    return false;
  }
  if (AB.configKey() != BA.configKey()) {
    Reason = "orders " + A.toString() + ";" + B.toString() +
             " and reverse reach different configurations";
    return false;
  }
  return true;
}

size_t pushpull::checkIndependenceAt(const PushPullMachine &M,
                                     std::vector<std::string> &Failures,
                                     size_t MaxPairs) {
  std::vector<Candidate> Cands = allCandidates(M);
  // Keep only the enabled ones (probed on a scratch copy each).
  std::vector<Candidate> Enabled;
  for (const Candidate &C : Cands) {
    PushPullMachine Probe(M);
    if (applyFiring(Probe, C.F))
      Enabled.push_back(C);
  }
  size_t Pairs = 0;
  for (size_t I = 0; I < Enabled.size(); ++I)
    for (size_t J = I + 1; J < Enabled.size(); ++J) {
      const Candidate &A = Enabled[I], &B = Enabled[J];
      if (A.F.Tid == B.F.Tid)
        continue; // The relation is only claimed across threads.
      if (!independentFirings(A, B))
        continue;
      if (MaxPairs && Pairs >= MaxPairs)
        return Pairs;
      ++Pairs;
      std::string Reason;
      if (!diamond(M, A.F, B.F, Reason))
        Failures.push_back("independent pair " + A.F.toString() + " x " +
                           B.F.toString() + ": " + Reason);
    }
  return Pairs;
}

IndependenceAuditReport
pushpull::auditIndependence(const IndependenceAuditConfig &Config) {
  assert(Config.Spec && "audit needs a specification");
  const SequentialSpec &Spec = *Config.Spec;
  IndependenceAuditReport Report;

  ShapeScope Scope = Config.Scope;
  // BEGIN firings and cross-thread APPs are part of the audited relation.
  Scope.IncludeIdle = true;
  Scope.OtherCodeCalls = true;

  Report.Alphabet = shapeAlphabet(Spec, Scope.MaxAlphabet);
  const std::vector<Operation> &Alphabet = Report.Alphabet;

  MoverChecker Movers(Spec);
  MachineConfig MC;
  MC.RecordAudit = false;
  MC.RecordTrace = false;
  PushPullMachine Base(Spec, Movers, MC);

  enumerateShapes(Scope, Alphabet.size(), [&](const AbstractShape &S) {
    ++Report.ShapesVisited;
    if (Config.MaxShapes && Report.ShapesVisited > Config.MaxShapes)
      return false;
    if (!shapeDenotable(S, Alphabet, Spec))
      return true;
    ++Report.ShapesAudited;
    MaterializedShape Mat = materializeShape(S, Alphabet);
    installShape(Mat, Base);
    std::vector<std::string> Failures;
    Report.PairsChecked += checkIndependenceAt(Base, Failures);
    for (std::string &F : Failures) {
      IndependenceViolation V;
      V.Shape = S;
      V.Reason = std::move(F);
      Report.Violations.push_back(std::move(V));
      if (Config.StopAtFirstViolation)
        return false;
    }
    return true;
  });
  return Report;
}
