//===- analysis/Lint.h - Semantic .pp scenario linter -----------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A semantic linter for `.pp` scenario files (ppcheck --lint): a static
/// pass over the parsed scenario and thread ASTs that catches the
/// mistakes the runtime either silently tolerates (a call that can never
/// be enabled simply never fires; an unbound argument variable makes its
/// branch unschedulable) or only reports deep into a run (unknown engine
/// names surface when the scenario is executed).  Checks:
///
///   errors:
///     parse-error              scenario or program text does not parse
///     unknown-engine           engine name not in allEngineNames()
///     unknown-check            check name the runner does not implement
///     unknown-inject           inject name no machine criterion matches
///     unknown-object           call on an object no spec part declares
///     unknown-method           object exists, method does not
///     arity-mismatch           wrong number of call arguments
///     void-result-binding      `v := obj.m(...)` on a method with no
///                              result (v stays unbound at runtime)
///     uninitialized-variable   argument variable not definitely assigned
///                              on every path to the call
///   warnings:
///     empty-transaction        tx body performs no method call
///     dead-choice              both branches of `+` are structurally
///                              identical
///     dead-loop                loop body performs no method call
///     never-enabled            literal-argument call with no completion
///                              from any reachable spec state (can never
///                              fire; its statement is unreachable)
///
/// Definite assignment is a must-defined dataflow over the Example 1
/// grammar: sequence accumulates bindings, choice intersects its
/// branches, a loop body is checked against the loop-entry set and
/// contributes nothing afterwards (it may run zero times), and bindings
/// persist across a thread's transactions (the machine threads one sigma
/// through the whole program).
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_ANALYSIS_LINT_H
#define PUSHPULL_ANALYSIS_LINT_H

#include <string>
#include <vector>

namespace pushpull {

enum class LintSeverity { Error, Warning };

/// One diagnostic, renderable machine-readably as
/// `file:line: severity: [check] message`.
struct LintDiag {
  std::string File;
  size_t Line = 0;
  LintSeverity Severity = LintSeverity::Error;
  /// Kebab-case check id (see the file comment).
  std::string Check;
  std::string Message;

  std::string render() const;
};

struct LintReport {
  std::vector<LintDiag> Diags;

  size_t errors() const;
  size_t warnings() const;
  /// Clean means zero diagnostics of either severity.
  bool clean() const { return Diags.empty(); }
  std::string render() const;
};

/// Lint scenario text; \p FileName only labels diagnostics.
LintReport lintScenarioText(const std::string &FileName,
                            const std::string &Text);

/// Lint a file from disk (unreadable files produce a parse-error diag).
LintReport lintScenarioFile(const std::string &Path);

} // namespace pushpull

#endif // PUSHPULL_ANALYSIS_LINT_H
