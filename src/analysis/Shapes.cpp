//===- analysis/Shapes.cpp - Abstract log/state shapes ---------------------===//

#include "analysis/Shapes.h"

#include "support/Str.h"

#include <algorithm>
#include <cassert>

using namespace pushpull;

size_t AbstractShape::entryCount() const {
  size_t N = G.size();
  for (const ShapeThread &T : Threads)
    N += T.L.size();
  return N;
}

static std::string opText(const Operation &Op) {
  std::string Out = Op.Call.toString();
  if (Op.Result) {
    Out += '=';
    Out += std::to_string(*Op.Result);
  }
  return Out;
}

std::string
AbstractShape::describe(const std::vector<Operation> &Alphabet) const {
  std::string Out = "G=[";
  for (size_t I = 0; I < G.size(); ++I) {
    if (I)
      Out += ", ";
    Out += opText(Alphabet[G[I].Op]);
    Out += G[I].Committed ? ":C" : (":U@t" + std::to_string(G[I].Owner));
  }
  Out += "]";
  for (size_t T = 0; T < Threads.size(); ++T) {
    const ShapeThread &Th = Threads[T];
    Out += " t" + std::to_string(T) + "{";
    if (!Th.InTx) {
      Out += Th.HasPending ? "idle+pending" : "idle";
    } else {
      Out += "L=[";
      for (size_t I = 0; I < Th.L.size(); ++I) {
        if (I)
          Out += ", ";
        const ShapeLocal &E = Th.L[I];
        switch (E.Kind) {
        case LocalKind::NotPushed:
          Out += "npshd " + opText(Alphabet[E.Op]);
          break;
        case LocalKind::Pushed:
          Out += "pshd->G" + std::to_string(E.GRef);
          break;
        case LocalKind::Pulled:
          Out += "pld->G" + std::to_string(E.GRef);
          break;
        }
      }
      Out += "]";
      if (Th.CodeOp != ShapeThread::kSkip)
        Out += " code=" + opText(Alphabet[Th.CodeOp]);
    }
    Out += "}";
  }
  return Out;
}

std::vector<Operation> pushpull::shapeAlphabet(const SequentialSpec &Spec,
                                               unsigned MaxAlphabet) {
  std::vector<Operation> Ops = Spec.probeOps();
  if (Ops.size() > MaxAlphabet)
    Ops.resize(MaxAlphabet);
  return Ops;
}

namespace {

/// Recursive structural generator.  One instance per (scope, alphabet,
/// target-size) pass; Visit sees each shape of exactly TargetSize entries.
class ShapeGen {
public:
  ShapeGen(const ShapeScope &Scope, size_t AlphabetSize, size_t TargetSize,
           const std::function<bool(const AbstractShape &)> &Visit)
      : Scope(Scope), A(AlphabetSize), Target(TargetSize), Visit(Visit) {}

  /// Returns false when Visit asked to stop.
  bool run() {
    Cur.G.clear();
    Cur.Threads.assign(Scope.Threads, ShapeThread());
    return genGlobal();
  }

  uint64_t visited() const { return Visited; }

private:
  unsigned localCap(unsigned T) const {
    return T == 0 ? Scope.MaxLocalSubject : Scope.MaxLocalOther;
  }

  bool genGlobal() {
    if (!genThread(0))
      return false;
    if (Cur.G.size() >= Scope.MaxGlobal)
      return true;
    // Entry-size pruning: even a maximal suffix cannot reach Target.
    size_t MaxRest = (Scope.MaxGlobal - Cur.G.size() - 1) +
                     Scope.MaxLocalSubject +
                     (Scope.Threads - 1) * Scope.MaxLocalOther;
    if (Cur.G.size() + 1 + MaxRest < Target)
      return true;
    AbstractShape::GEntry E;
    for (unsigned Op = 0; Op < A; ++Op) {
      E.Op = Op;
      // Committed entries: owner is canonically thread 0.  No evaluated
      // criterion reads a committed entry's owner (PUSH (ii) quantifies
      // over uncommitted entries only; UNPUSH (i) ignores ownership), so
      // enumerating other owners would only duplicate verdicts.
      E.Committed = true;
      E.Owner = 0;
      Cur.G.push_back(E);
      if (!genGlobal())
        return false;
      Cur.G.pop_back();
      E.Committed = false;
      for (TxId Owner = 0; Owner < Scope.Threads; ++Owner) {
        E.Owner = Owner;
        Cur.G.push_back(E);
        if (!genGlobal())
          return false;
        Cur.G.pop_back();
      }
    }
    return true;
  }

  bool genThread(unsigned T) {
    if (T == Scope.Threads)
      return emit();
    // Uncommitted entries owned by T force one pshd local entry each.
    std::vector<unsigned> Forced;
    for (size_t I = 0; I < Cur.G.size(); ++I)
      if (!Cur.G[I].Committed && Cur.G[I].Owner == T)
        Forced.push_back(static_cast<unsigned>(I));
    if (Forced.size() > localCap(T))
      return true; // Shape cannot be well-formed for this thread.
    if (Forced.empty() && Scope.IncludeIdle) {
      // Idle-with-pending variant: empty L, a BEGIN is enabled.
      Cur.Threads[T] = ShapeThread();
      Cur.Threads[T].InTx = false;
      Cur.Threads[T].HasPending = true;
      if (!genThread(T + 1))
        return false;
    }
    Cur.Threads[T] = ShapeThread();
    Cur.Threads[T].InTx = true;
    std::vector<bool> Used(Cur.G.size(), false);
    return genLocal(T, Forced, Used);
  }

  bool genLocal(unsigned T, std::vector<unsigned> &Forced,
                std::vector<bool> &Used) {
    ShapeThread &Th = Cur.Threads[T];
    if (Forced.empty()) {
      if (!genCode(T))
        return false;
    }
    if (Th.L.size() >= localCap(T))
      return true;
    size_t MaxRest = (localCap(T) - Th.L.size() - 1);
    for (unsigned U = T + 1; U < Scope.Threads; ++U)
      MaxRest += localCap(U);
    if (Cur.entryCount() + 1 + MaxRest < Target)
      return true;
    ShapeLocal E;
    // npshd entries: any alphabet operation.
    E.Kind = LocalKind::NotPushed;
    E.GRef = 0;
    for (unsigned Op = 0; Op < A; ++Op) {
      E.Op = Op;
      Th.L.push_back(E);
      if (!genLocal(T, Forced, Used))
        return false;
      Th.L.pop_back();
    }
    // pshd entries: consume a forced reference (any remaining one, so all
    // interleavings and orders are covered).
    E.Kind = LocalKind::Pushed;
    E.Op = 0;
    for (size_t F = 0; F < Forced.size(); ++F) {
      E.GRef = Forced[F];
      Forced.erase(Forced.begin() + F);
      Th.L.push_back(E);
      if (!genLocal(T, Forced, Used))
        return false;
      Th.L.pop_back();
      Forced.insert(Forced.begin() + F, E.GRef);
    }
    // pld entries: committed or foreign-owned uncommitted, each G entry
    // referenced at most once by this thread.
    E.Kind = LocalKind::Pulled;
    for (size_t I = 0; I < Cur.G.size(); ++I) {
      if (Used[I])
        continue;
      if (!Cur.G[I].Committed && Cur.G[I].Owner == T)
        continue;
      E.GRef = static_cast<unsigned>(I);
      Used[I] = true;
      Th.L.push_back(E);
      if (!genLocal(T, Forced, Used))
        return false;
      Th.L.pop_back();
      Used[I] = false;
    }
    return true;
  }

  bool genCode(unsigned T) {
    bool Calls = T == 0 ? Scope.SubjectCodeCalls : Scope.OtherCodeCalls;
    Cur.Threads[T].CodeOp = ShapeThread::kSkip;
    if (!genThread(T + 1))
      return false;
    if (Calls)
      for (unsigned Op = 0; Op < A; ++Op) {
        Cur.Threads[T].CodeOp = Op;
        if (!genThread(T + 1))
          return false;
      }
    Cur.Threads[T].CodeOp = ShapeThread::kSkip;
    return true;
  }

  bool emit() {
    if (Cur.entryCount() != Target)
      return true;
    ++Visited;
    return Visit(Cur);
  }

  const ShapeScope &Scope;
  const size_t A;
  const size_t Target;
  const std::function<bool(const AbstractShape &)> &Visit;
  AbstractShape Cur;
  uint64_t Visited = 0;
};

} // namespace

uint64_t
pushpull::enumerateShapes(const ShapeScope &Scope, size_t AlphabetSize,
                          const std::function<bool(const AbstractShape &)>
                              &Visit) {
  assert(Scope.Threads >= 1 && "shape scope needs at least one thread");
  size_t MaxTotal = Scope.MaxGlobal + Scope.MaxLocalSubject +
                    (Scope.Threads - 1) * Scope.MaxLocalOther;
  uint64_t Total = 0;
  // One structural pass per total entry count: generation is spec-free and
  // cheap, and re-walking the tree per size keeps the enumeration
  // smallest-first without buffering the whole space.
  for (size_t Target = 0; Target <= MaxTotal; ++Target) {
    ShapeGen Gen(Scope, AlphabetSize, Target, Visit);
    bool Continue = Gen.run();
    Total += Gen.visited();
    if (!Continue)
      break;
  }
  return Total;
}

bool pushpull::shapeDenotable(const AbstractShape &S,
                              const std::vector<Operation> &Alphabet,
                              const SequentialSpec &Spec) {
  std::vector<Operation> Ops;
  Ops.reserve(S.G.size());
  for (const AbstractShape::GEntry &E : S.G)
    Ops.push_back(Alphabet[E.Op]);
  if (!Spec.allowed(Ops))
    return false;
  for (const ShapeThread &Th : S.Threads) {
    if (Th.L.empty())
      continue;
    Ops.clear();
    for (const ShapeLocal &E : Th.L)
      Ops.push_back(Alphabet[E.Kind == LocalKind::NotPushed ? E.Op
                                                            : S.G[E.GRef].Op]);
    if (!Spec.allowed(Ops))
      return false;
  }
  return true;
}

/// The call expression of \p Op with literal arguments and no result
/// binding — the program text that could have produced it.
static MethodExpr callExprOf(const Operation &Op) {
  MethodExpr M;
  M.Object = Op.Call.Object;
  M.Method = Op.Call.Method;
  for (Value V : Op.Call.Args)
    M.Args.emplace_back(V);
  return M;
}

MaterializedShape
pushpull::materializeShape(const AbstractShape &S,
                           const std::vector<Operation> &Alphabet) {
  MaterializedShape Out;
  OpId NextId = 0;
  auto freshOp = [&](unsigned AlphaIdx) {
    Operation Op = Alphabet[AlphaIdx];
    Op.Id = ++NextId;
    return Op;
  };
  for (const AbstractShape::GEntry &E : S.G) {
    GlobalEntry GE;
    GE.Op = freshOp(E.Op);
    GE.Kind = E.Committed ? GlobalKind::Committed : GlobalKind::Uncommitted;
    GE.Owner = E.Owner;
    Out.G.append(std::move(GE));
  }
  for (size_t T = 0; T < S.Threads.size(); ++T) {
    const ShapeThread &STh = S.Threads[T];
    ThreadState Th;
    Th.Tid = static_cast<TxId>(T);
    if (!STh.InTx) {
      Th.InTx = false;
      if (STh.HasPending)
        Th.Pending.push_back(Code::makeCall(callExprOf(Alphabet[0])));
      Out.Threads.push_back(std::move(Th));
      continue;
    }
    Th.InTx = true;
    // Remaining code, then the own-op suffix chain that SavedCode fields
    // rewind through: the saved code of own entry j is
    //   call_j ; call_{j+1} ; ... ; call_k ; remaining
    // exactly what a real run would have recorded at each APP.
    CodePtr Remaining = STh.CodeOp == ShapeThread::kSkip
                            ? Code::makeSkip()
                            : Code::makeCall(callExprOf(Alphabet[STh.CodeOp]));
    std::vector<size_t> OwnIdx;
    for (size_t I = 0; I < STh.L.size(); ++I)
      if (STh.L[I].Kind != LocalKind::Pulled)
        OwnIdx.push_back(I);
    std::vector<CodePtr> Saved(STh.L.size());
    CodePtr Suffix = Remaining;
    for (size_t K = OwnIdx.size(); K-- > 0;) {
      size_t I = OwnIdx[K];
      const ShapeLocal &E = STh.L[I];
      const Operation &Op = E.Kind == LocalKind::NotPushed
                                ? Alphabet[E.Op]
                                : Out.G[E.GRef].Op;
      Suffix = Code::makeSeq(Code::makeCall(callExprOf(Op)), Suffix);
      Saved[I] = Suffix;
    }
    Th.Code = Remaining;
    Th.OrigCode = Suffix; // The reconstructed transaction body.
    for (size_t I = 0; I < STh.L.size(); ++I) {
      const ShapeLocal &E = STh.L[I];
      LocalEntry LE;
      LE.Kind = E.Kind;
      if (E.Kind == LocalKind::NotPushed) {
        LE.Op = freshOp(E.Op);
        LE.SavedCode = Saved[I];
      } else {
        LE.Op = Out.G[E.GRef].Op; // Alias the shared entry's record (same id).
        if (E.Kind == LocalKind::Pushed)
          LE.SavedCode = Saved[I];
      }
      Th.L.append(std::move(LE));
    }
    Out.Threads.push_back(std::move(Th));
  }
  Out.MaxId = NextId;
  return Out;
}

void pushpull::installShape(const MaterializedShape &Mat, PushPullMachine &M) {
  M.installForAnalysis(Mat.Threads, Mat.G, Mat.MaxId);
}

/// Render \p M as `.pp` call text, e.g. "mem.write(0, 1)".
static std::string callText(const Operation &Op) {
  std::string Out = Op.Call.Object + "." + Op.Call.Method + "(";
  for (size_t I = 0; I < Op.Call.Args.size(); ++I) {
    if (I)
      Out += ", ";
    Out += std::to_string(Op.Call.Args[I]);
  }
  Out += ")";
  return Out;
}

std::string pushpull::renderShapeWitness(
    const AbstractShape &S, const std::vector<Operation> &Alphabet,
    const std::string &SpecLine, const std::string &EngineLine,
    const std::string &InjectLine, const std::string &ProbeComment) {
  std::string Out;
  Out += "# ppcheck witness (auto-generated)\n";
  if (!ProbeComment.empty())
    Out += "# " + ProbeComment + "\n";
  Out += "# shape: " + S.describe(Alphabet) + "\n";
  Out += SpecLine + "\n";
  Out += EngineLine + "\n";
  if (!InjectLine.empty())
    Out += "inject " + InjectLine + "\n";
  for (size_t T = 0; T < S.Threads.size(); ++T) {
    const ShapeThread &Th = S.Threads[T];
    // Prior transactions: committed shared-log entries attributed to this
    // thread, one already-committed transaction each.
    std::vector<std::string> Txs;
    for (const AbstractShape::GEntry &E : S.G)
      if (E.Committed && E.Owner == static_cast<TxId>(T))
        Txs.push_back("tx { " + callText(Alphabet[E.Op]) + " }");
    // The in-progress (or pending) transaction: own local operations in
    // order, then the remaining code.
    std::vector<std::string> Body;
    for (const ShapeLocal &E : Th.L)
      if (E.Kind != LocalKind::Pulled)
        Body.push_back(callText(
            Alphabet[E.Kind == LocalKind::NotPushed ? E.Op : S.G[E.GRef].Op]));
    if (Th.CodeOp != ShapeThread::kSkip)
      Body.push_back(callText(Alphabet[Th.CodeOp]));
    if (Th.InTx || Th.HasPending || !Body.empty())
      Txs.push_back(Body.empty() ? std::string("tx { skip }")
                                 : "tx { " + join(Body, "; ") + " }");
    if (Txs.empty())
      Txs.push_back("tx { skip }");
    Out += "thread " + join(Txs, "; ") + "\n";
  }
  return Out;
}
