//===- analysis/MoverTable.cpp - Certified mover tables + prover ------------===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "analysis/MoverTable.h"

#include "core/Machine.h"
#include "lang/Ast.h"
#include "tm/Engine.h"

#include <algorithm>
#include <map>
#include <unordered_set>

using namespace pushpull;

std::string pushpull::toString(PairPredicate P) {
  switch (P) {
  case PairPredicate::Always:
    return "always";
  case PairPredicate::Never:
    return "never";
  case PairPredicate::DistinctArg0:
    return "distinct-arg0";
  case PairPredicate::EqualArg0:
    return "equal-arg0";
  case PairPredicate::Mixed:
    return "mixed";
  }
  return "?";
}

std::string pushpull::toString(ProveResult::Verdict V) {
  switch (V) {
  case ProveResult::Verdict::Proved:
    return "PROVED";
  case ProveResult::Verdict::Conflict:
    return "CONFLICT";
  case ProveResult::Verdict::Unproved:
    return "UNPROVED";
  }
  return "?";
}

/// "bank.deposit(0, 1)=1"-style display name of a probe instance.
static std::string probeName(const Operation &Op) {
  std::string S = Op.Call.toString();
  if (Op.Result)
    S += "=" + std::to_string(*Op.Result);
  return S;
}

MoverTable MoverTable::build(const SequentialSpec &Spec, MoverChecker &Movers,
                             size_t MaxReachableSets) {
  MoverTable T;
  CommutativityAnalysis A(Spec, Movers, MaxReachableSets);
  T.Probes = A.probes();
  const ReachableFamily &F = A.family();
  T.FamilyExact = F.Exact;
  T.FamilySize = F.Sets.size();

  size_t N = T.Probes.size();
  T.Entries.reserve(N * (N + 1) / 2);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I; J < N; ++J)
      T.Entries.push_back({I, J, A.classify(I, J)});
  T.CertChecks = A.certChecks();

  // Method-pair summaries with argument-predicate refinement.  The
  // identical-instance diagonal (I == J) is excluded: [[S.A.A]] trivially
  // equals itself in both "orders" and carries no ordering information.
  struct Group {
    MethodPairSummary Sum;
    bool DistinctHolds = true, EqualHolds = true, ArgPredApplies = true;
  };
  std::map<std::string, Group> Groups;
  for (const Entry &E : T.Entries) {
    if (E.AIdx == E.BIdx)
      continue;
    const Operation &A1 = T.Probes[E.AIdx], &B1 = T.Probes[E.BIdx];
    std::string SigA = A1.Call.Object + "." + A1.Call.Method;
    std::string SigB = B1.Call.Object + "." + B1.Call.Method;
    const Operation *PA = &A1, *PB = &B1;
    if (SigB < SigA) {
      std::swap(SigA, SigB);
      std::swap(PA, PB);
    }
    Group &G = Groups[SigA + " x " + SigB];
    if (G.Sum.TotalPairs == 0) {
      G.Sum.ObjectA = PA->Call.Object;
      G.Sum.MethodA = PA->Call.Method;
      G.Sum.ObjectB = PB->Call.Object;
      G.Sum.MethodB = PB->Call.Method;
    }
    ++G.Sum.TotalPairs;
    if (E.V.Strong)
      ++G.Sum.StrongPairs;
    ++G.Sum.ClassCounts[static_cast<int>(E.V.Class)];
    if (PA->Call.Args.empty() || PB->Call.Args.empty()) {
      G.ArgPredApplies = false;
    } else {
      // Sufficiency direction only: "distinct-arg0" claims distinct first
      // arguments imply strong commutation (equal-argument pairs may still
      // commute vacuously when their guards are jointly unsatisfiable).
      bool Distinct = PA->Call.Args[0] != PB->Call.Args[0];
      if (Distinct && !E.V.Strong)
        G.DistinctHolds = false;
      if (!Distinct && !E.V.Strong)
        G.EqualHolds = false;
    }
  }
  for (auto &KV : Groups) {
    Group &G = KV.second;
    if (G.Sum.StrongPairs == G.Sum.TotalPairs)
      G.Sum.Pred = PairPredicate::Always;
    else if (G.Sum.StrongPairs == 0)
      G.Sum.Pred = PairPredicate::Never;
    else if (G.ArgPredApplies && G.DistinctHolds)
      G.Sum.Pred = PairPredicate::DistinctArg0; // and some equal pair fails
    else if (G.ArgPredApplies && G.EqualHolds)
      G.Sum.Pred = PairPredicate::EqualArg0; // and some distinct pair fails
    else
      G.Sum.Pred = PairPredicate::Mixed;
    T.Summaries.push_back(G.Sum);
  }
  return T;
}

std::string MoverTable::toString() const {
  std::string Out = "probes=" + std::to_string(Probes.size()) +
                    " family=" + std::to_string(FamilySize) + " sets (" +
                    (FamilyExact ? "exact" : "bounded") +
                    ") cert-checks=" + std::to_string(CertChecks) + "\n";
  for (const MethodPairSummary &S : Summaries) {
    std::string Pair = S.ObjectA + "." + S.MethodA + " x " + S.ObjectB + "." +
                       S.MethodB;
    Pair.resize(std::max<size_t>(Pair.size(), 36), ' ');
    std::string Pred = pushpull::toString(S.Pred);
    Pred.resize(std::max<size_t>(Pred.size(), 14), ' ');
    Out += "  " + Pair + Pred + std::to_string(S.StrongPairs) + "/" +
           std::to_string(S.TotalPairs) + " strong  [";
    static const MoverClass Classes[] = {MoverClass::Both, MoverClass::Left,
                                         MoverClass::Right, MoverClass::Non};
    bool First = true;
    for (MoverClass C : Classes) {
      size_t N = S.ClassCounts[static_cast<int>(C)];
      if (!N)
        continue;
      if (!First)
        Out += " ";
      First = false;
      Out += pushpull::toString(C) + "=" + std::to_string(N);
    }
    Out += "]\n";
  }
  return Out;
}

CommutativityDB::CommutativityDB(const SequentialSpec &Spec,
                                 size_t MaxReachableSets)
    : Spec(Spec), Movers(Spec, MoverLimits{MaxReachableSets}),
      Analysis(Spec, Movers, MaxReachableSets) {
  const std::vector<Operation> &Probes = Analysis.probes();
  for (size_t I = 0; I < Probes.size(); ++I)
    ProbeOf.emplace(Spec.table().opKey(Probes[I]), I);
}

int64_t CommutativityDB::probeIndexOf(OpKeyId Key) const {
  auto It = ProbeOf.find(Key);
  return It == ProbeOf.end() ? -1 : static_cast<int64_t>(It->second);
}

bool CommutativityDB::stronglyCommute(OpKeyId A, OpKeyId B) const {
  int64_t IA = probeIndexOf(A), IB = probeIndexOf(B);
  if (IA < 0 || IB < 0) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  bool Ans;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Ans = Analysis.stronglyCommutes(static_cast<size_t>(IA),
                                    static_cast<size_t>(IB), nullptr);
  }
  (Ans ? Hits : Misses).fetch_add(1, std::memory_order_relaxed);
  return Ans;
}

uint64_t CommutativityDB::certChecks() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Analysis.certChecks();
}

bool CommutativityDB::strongByProbeIndex(size_t AIdx, size_t BIdx,
                                         PairCertificate *CertOut) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Analysis.stronglyCommutes(AIdx, BIdx, CertOut);
}

bool CommutativityDB::certificate(OpKeyId A, OpKeyId B,
                                  PairCertificate &Out) const {
  int64_t IA = probeIndexOf(A), IB = probeIndexOf(B);
  if (IA < 0 || IB < 0)
    return false;
  std::lock_guard<std::mutex> Lock(Mu);
  Analysis.stronglyCommutes(static_cast<size_t>(IA), static_cast<size_t>(IB),
                            &Out);
  return true;
}

namespace {

/// Walk a code tree collecting every method call.  Returns false (and
/// explains) when a call has a non-literal argument — such calls cannot be
/// statically matched against the probe alphabet.
bool collectCalls(const CodePtr &C, std::vector<const MethodExpr *> &Out,
                  std::string &Why) {
  if (!C)
    return true;
  switch (C->kind()) {
  case CodeKind::Skip:
    return true;
  case CodeKind::Call:
    for (const Arg &A : C->call().Args)
      if (!std::holds_alternative<Value>(A)) {
        Why = "call '" + C->call().toString() +
              "' has non-literal argument '" + std::get<std::string>(A) +
              "'";
        return false;
      }
    Out.push_back(&C->call());
    return true;
  case CodeKind::Seq:
  case CodeKind::Choice:
    return collectCalls(C->lhs(), Out, Why) &&
           collectCalls(C->rhs(), Out, Why);
  case CodeKind::Loop:
  case CodeKind::Tx:
    return collectCalls(C->body(), Out, Why);
  }
  return true;
}

/// All probe indices whose (object, method, literal args) match \p Call —
/// one per result variant for result-carrying methods.  Matching is over
/// the call surface only: which result a run observes is dynamic, so every
/// variant is an instance the proof must cover.
std::vector<size_t> matchingProbes(const MethodExpr &Call,
                                   const std::vector<Operation> &Probes) {
  std::vector<size_t> Out;
  for (size_t I = 0; I < Probes.size(); ++I) {
    const ResolvedCall &P = Probes[I].Call;
    if (P.Object != Call.Object || P.Method != Call.Method ||
        P.Args.size() != Call.Args.size())
      continue;
    bool Match = true;
    for (size_t K = 0; K < P.Args.size(); ++K)
      if (P.Args[K] != std::get<Value>(Call.Args[K])) {
        Match = false;
        break;
      }
    if (Match)
      Out.push_back(I);
  }
  return Out;
}

} // namespace

bool CommutativityDB::coversProgram(
    const std::vector<std::vector<CodePtr>> &Threads,
    std::string *WhyNot) const {
  std::string Why;
  for (const std::vector<CodePtr> &Txns : Threads)
    for (const CodePtr &Tx : Txns) {
      std::vector<const MethodExpr *> Calls;
      if (!collectCalls(Tx, Calls, Why)) {
        if (WhyNot)
          *WhyNot = Why;
        return false;
      }
      for (const MethodExpr *Call : Calls)
        if (matchingProbes(*Call, Analysis.probes()).empty()) {
          if (WhyNot)
            *WhyNot = "call '" + Call->toString() +
                      "' matches no probe instance of spec '" + Spec.name() +
                      "'";
          return false;
        }
    }
  return true;
}

ProveResult pushpull::proveSerializable(const Scenario &S,
                                        const CommutativityDB &DB) {
  ProveResult R;
  if (!S.Spec) {
    R.Detail = "scenario has no specification";
    return R;
  }
  if (!S.DisabledCriterion.empty()) {
    R.Detail = "fault injection active ('" + S.DisabledCriterion +
               "'): machine semantics are not the paper's";
    return R;
  }

  // Echo the engine's rule surface.  The verdict itself quantifies over
  // every Figure 5 rule, so it holds for any surface; the echo documents
  // which engine the scenario will actually run.
  std::string Surface = "engine " + S.Engine;
  {
    MoverChecker Movers(*S.Spec, S.Movers, S.Pre);
    PushPullMachine M(*S.Spec, Movers);
    std::string Err;
    std::unique_ptr<TMEngine> Eng = makeEngine(S.Engine, S.EngineOpts, M, Err);
    if (!Eng) {
      R.Detail = "cannot build engine: " + Err;
      return R;
    }
    uint32_t Mask = Eng->ruleMask();
    std::string Rules;
    static const RuleKind Kinds[] = {
        RuleKind::App,  RuleKind::UnApp,  RuleKind::Push,  RuleKind::UnPush,
        RuleKind::Pull, RuleKind::UnPull, RuleKind::Commit};
    for (RuleKind K : Kinds)
      if (Mask & ruleBit(K))
        Rules += (Rules.empty() ? "" : ",") + toString(K);
    Surface += " (rules=" + Rules +
               (Eng->pullsUncommitted() ? ", pulls-uncommitted" : "") + ")";
  }

  // Resolve every call of every thread to its probe instances.
  const std::vector<Operation> &Probes = DB.probes();
  std::vector<std::vector<size_t>> InstOf(S.Threads.size());
  std::unordered_set<size_t> AllInstances;
  for (size_t T = 0; T < S.Threads.size(); ++T) {
    std::string Why;
    std::vector<const MethodExpr *> Calls;
    for (const CodePtr &Tx : S.Threads[T])
      if (!collectCalls(Tx, Calls, Why)) {
        R.Detail = Why;
        return R;
      }
    std::unordered_set<size_t> Seen;
    for (const MethodExpr *Call : Calls) {
      std::vector<size_t> M = matchingProbes(*Call, Probes);
      if (M.empty()) {
        R.Detail = "call '" + Call->toString() +
                   "' matches no probe instance of spec '" + S.Spec->name() +
                   "'";
        return R;
      }
      for (size_t I : M)
        if (Seen.insert(I).second) {
          InstOf[T].push_back(I);
          AllInstances.insert(I);
        }
    }
    std::sort(InstOf[T].begin(), InstOf[T].end());
  }
  R.Instances = AllInstances.size();

  // Every cross-thread instance pair must strongly commute.  Pairs are
  // deduplicated globally; the first failure (in deterministic thread /
  // instance order) is the reported conflict.
  std::unordered_set<uint64_t> Checked;
  for (size_t T1 = 0; T1 < InstOf.size(); ++T1)
    for (size_t T2 = T1 + 1; T2 < InstOf.size(); ++T2)
      for (size_t A : InstOf[T1])
        for (size_t B : InstOf[T2]) {
          uint64_t Key = (static_cast<uint64_t>(std::min(A, B)) << 32) |
                         std::max(A, B);
          if (!Checked.insert(Key).second)
            continue;
          ++R.PairsChecked;
          PairCertificate Cert;
          if (DB.strongByProbeIndex(A, B, &Cert))
            continue;
          R.V = ProveResult::Verdict::Conflict;
          R.PairA = probeName(Probes[A]);
          R.PairB = probeName(Probes[B]);
          R.Detail = "threads " + std::to_string(T1) + "/" +
                     std::to_string(T2) + ": " + R.PairA + " x " + R.PairB;
          if (Cert.Kind == CertKind::Counterexample) {
            std::string W;
            for (const Operation &Op : Cert.Witness)
              W += (W.empty() ? "" : ".") + Op.Call.toString();
            R.Detail += W.empty() ? " (diamond fails at the initial state)"
                                  : " (diamond fails after " + W + ")";
          } else if (Cert.Kind == CertKind::Unknown) {
            R.Detail += " (family bounded out; not refuted)";
          }
          R.Detail += "; " + Surface;
          return R;
        }

  R.V = ProveResult::Verdict::Proved;
  R.Detail = std::to_string(R.Instances) + " instances, " +
             std::to_string(R.PairsChecked) +
             " cross-thread pairs certified; " + Surface;
  return R;
}
