//===- analysis/Obligations.h - Criterion-obligation audit ------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The criterion-obligation audit: check, without running any scheduler,
/// that the machine's rule guards agree with an independently written
/// rendition of the Figure 5 criteria over every well-formed abstract
/// shape up to a scope (analysis/Shapes.h).
///
/// Two implementations of the same paper text face each other:
///
///   * the machine under audit (core/Machine.cpp), probed one rule at a
///     time on installed shapes, under the engine's effective
///     configuration — including a DisabledCriterion fault injection;
///   * ReferenceCriteria here, a from-the-paper re-statement of each
///     guard that shares only the trusted semantic base (the
///     specification's denotation and MoverChecker's Definition 4.1).
///
/// A shape+probe where the machine fires but the reference rejects is an
/// *unsoundness conviction* (the guard admits a forbidden step); the
/// converse is an *incompleteness* finding.  Shapes are visited
/// smallest-first, so the first conviction is a minimal abstract-shape
/// counterexample, rendered as a parseable `.pp`-style witness.
///
/// The DisabledCriterion injections of MachineConfig double as the
/// negative battery: every injectable criterion, audited with its name
/// injected, must be convicted.  Two wrinkles, derived in DESIGN.md §13:
/// "PUSH criterion (iii)" needs a non-register alphabet (with only
/// reads/writes of one register, criteria (i)+(ii) imply (iii) on
/// well-formed shapes), so the battery iterates spec kinds; and "UNPUSH
/// criterion (ii)" is masked by the gray criterion (i) whenever gray
/// enforcement is on (criterion (i)'s right-mover chain re-derives
/// allowed-ness of G minus the entry), so its injection is audited with
/// gray criteria off — matching deployments that trust the paper's
/// "not strictly necessary" remark.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_ANALYSIS_OBLIGATIONS_H
#define PUSHPULL_ANALYSIS_OBLIGATIONS_H

#include "analysis/Shapes.h"
#include "core/Mover.h"
#include "sim/Reduction.h"

#include <memory>
#include <string>
#include <vector>

namespace pushpull {

/// The reference verdict for one rule probe at one shape.
struct ReferenceVerdict {
  bool Enabled = false;
  /// First failing criterion's paper-style name (or a structural label
  /// like "UNPUSH flag check") when not enabled.
  std::string FailedCriterion;
  std::string Detail;
};

/// The independent rendition of the Figure 5 guards.  Judges a firing
/// directly over materialized shape data; never consults the machine.
class ReferenceCriteria {
public:
  ReferenceCriteria(const SequentialSpec &Spec, MoverChecker &Movers,
                    bool EnforceGray, bool UnknownIsFailure = true)
      : Spec(Spec), Movers(Movers), EnforceGray(EnforceGray),
        UnknownIsFailure(UnknownIsFailure) {}

  ReferenceVerdict judge(const MaterializedShape &Mat, const Firing &F) const;

private:
  ReferenceVerdict judgeApp(const MaterializedShape &M, const Firing &F) const;
  ReferenceVerdict judgeUnApp(const ThreadState &Th) const;
  ReferenceVerdict judgePush(const MaterializedShape &M, TxId T,
                             size_t Idx) const;
  ReferenceVerdict judgeUnPush(const MaterializedShape &M, TxId T,
                               size_t Idx) const;
  ReferenceVerdict judgePull(const MaterializedShape &M, TxId T,
                             size_t Idx) const;
  ReferenceVerdict judgeUnPull(const ThreadState &Th, size_t Idx) const;
  ReferenceVerdict judgeCommit(const MaterializedShape &M,
                               const ThreadState &Th) const;

  /// Fold a Tri criterion into pass/fail under UnknownIsFailure.
  bool holds(Tri V) const {
    return V == Tri::Yes || (V == Tri::Unknown && !UnknownIsFailure);
  }

  const SequentialSpec &Spec;
  MoverChecker &Movers;
  bool EnforceGray;
  bool UnknownIsFailure;
};

/// All rule probes of thread \p Tid at shape \p Mat that an engine with
/// \p RuleMask / \p PullsUncommitted could attempt: every APP step/
/// completion choice (plus one out-of-range completion), every local
/// index for PUSH/UNPUSH/UNPULL, every global index for PULL, UNAPP and
/// CMT.  Flag-mismatched indices are included deliberately — structural
/// rejections are part of the audited guard surface.
std::vector<Firing> criterionProbes(const MaterializedShape &Mat, TxId Tid,
                                    const SequentialSpec &Spec,
                                    uint32_t RuleMask, bool PullsUncommitted);

/// One machine/reference divergence.
struct Divergence {
  AbstractShape Shape;
  Firing Probe;
  /// True: the machine fired where the criteria forbid (unsound).
  /// False: the machine rejected where the criteria allow (incomplete).
  bool MachineApplied = false;
  std::string RefFailedCriterion;
  std::string RefDetail;
  /// The shape rendered as a parseable `.pp`-style scenario.
  std::string Witness;
  std::string describe(const std::vector<Operation> &Alphabet) const;
};

/// Configuration of one criterion audit.
struct CriterionAuditConfig {
  ShapeScope Scope;
  /// The specification the shapes draw operations from.  Not owned.
  const SequentialSpec *Spec = nullptr;
  /// Scenario `spec` directive reproducing \p Spec, for witnesses.
  std::string SpecLine;
  /// Engine whose effective rule surface is audited (label + witness
  /// `engine` line); the machine itself is engine-independent.
  std::string EngineName = "optimistic";
  uint32_t RuleMask = ~0u;
  bool PullsUncommitted = true;
  bool EnforceGray = true;
  /// Injected into the audited machine's MachineConfig (negative
  /// battery); the reference never sees it.
  std::string DisabledCriterion;
  bool StopAtFirstDivergence = false;
  /// 0 = visit the whole scope.
  uint64_t MaxShapes = 0;
};

/// Audit outcome.
struct CriterionAuditReport {
  uint64_t ShapesVisited = 0;
  /// Shapes that passed the denotational filter and were probed.
  uint64_t ShapesAudited = 0;
  uint64_t ProbesRun = 0;
  std::vector<Divergence> Unsound;
  std::vector<Divergence> Incomplete;
  std::vector<Operation> Alphabet;

  bool clean() const { return Unsound.empty() && Incomplete.empty(); }
};

CriterionAuditReport auditCriteria(const CriterionAuditConfig &Config);

/// The criteria MachineConfig::DisabledCriterion can disable: the ones
/// Machine.cpp routes through evalCriterion (PULL (i), APP (i)-(iii) and
/// the CMT criteria are computed inline and are not injectable).
const std::vector<std::string> &injectableCriteria();

/// One negative-battery conviction attempt.
struct ConvictionResult {
  std::string Criterion;
  bool Convicted = false;
  /// Spec kind that yielded the conviction (the battery iterates kinds
  /// until one convicts).
  std::string SpecKind;
  /// Whether gray criteria were enforced during the convicting audit.
  bool EnforcedGray = true;
  Divergence Witness;
  std::vector<Operation> Alphabet;
  uint64_t ShapesAudited = 0;
  uint64_t ProbesRun = 0;
};

/// Audit every injectable criterion with its name injected; each must be
/// convicted with a minimal witness.  \p Scope bounds each audit.
std::vector<ConvictionResult> runNegativeBattery(const ShapeScope &Scope);

} // namespace pushpull

#endif // PUSHPULL_ANALYSIS_OBLIGATIONS_H
