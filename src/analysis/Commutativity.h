//===- analysis/Commutativity.h - Certified commutation analysis -*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static commutativity analysis behind the certified mover tables
/// (analysis/MoverTable.h): classify every ordered pair of probe
/// operations of a sequential specification, and back each verdict with a
/// *machine-checkable certificate* that a tiny independent checker can
/// replay without trusting the inference code.
///
/// Two gradations of commutation are distinguished:
///
///   * The Lipton / Definition 4.1 mover classes (both / left / right /
///     non-mover), decided by core/Mover's semantic precongruence check:
///     A <| B means every real log ...A.B... may be reordered to ...B.A...
///     on the atomic side (a *refinement* statement — the reordered
///     denotation may shrink).
///
///   * *Strong commutation* (core/Commut.h): for every reachable state
///     set S, [[S.A.B]] and [[S.B.A]] are the *same* interned set, and if
///     both operations are individually allowed at S their composition is
///     allowed too.  This is strictly stronger than mutual precongruence
///     and is the grade the exploration-facing consumers require: only
///     strongly commuting pairs may be treated as independent firings or
///     quotiented in the configuration key, because those uses need
///     *equality* of the two orders, not refinement.
///
/// The quantification domain is the probe-closed reachable family: the
/// set of state sets reachable from the initial denotation under any
/// sequence of probe operations, enumerated breadth-first with
/// predecessor links (so any member has a minimal witness prefix).  When
/// the frontier is exhausted within the bound the family is *exact*, and
/// a completed strong sweep over it is a finite proof; otherwise every
/// verdict degrades to Unknown and no certificate is issued.
///
/// Certificates (PairCertificate):
///
///   * StrongDiamond — the sorted family of interned state-set ids.  The
///     checker verifies (1) the initial denotation is a member, (2) the
///     family is closed under every probe operation (images are members
///     or empty), and (3) every member closes the A/B diamond with the
///     enabledness clause.  Soundness of an accepted certificate rests
///     only on the spec's denotation kernel, not on the analysis.
///   * Counterexample — a minimal (BFS-order) probe prefix reaching a
///     state set where the diamond fails.  The checker replays the
///     prefix and confirms the failure.
///   * ViaPrecongruence — the pair is a both-mover by the precongruence
///     engine but strong commutation was not established (refinement
///     without equality, or an inexact family).  Informative only; never
///     consumed by the explorer or the prover.
///   * Unknown — bounded-out.  Never consumed.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_ANALYSIS_COMMUTATIVITY_H
#define PUSHPULL_ANALYSIS_COMMUTATIVITY_H

#include "core/Mover.h"
#include "core/Spec.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace pushpull {

/// Lipton mover class of the ordered pair (A, B).
enum class MoverClass {
  Both,  ///< A <| B and B <| A.
  Left,  ///< A <| B only (A moves left past B).
  Right, ///< B <| A only (A moves right past B).
  Non,   ///< Neither direction holds (or is decidable).
};

std::string toString(MoverClass C);

/// The probe-closed reachable family of denotations, with BFS predecessor
/// links for minimal-witness reconstruction.  Sets[0] is the initial
/// denotation; Parent/ParentOp label the discovery edge of every other
/// member.
struct ReachableFamily {
  std::vector<StateSetId> Sets;
  std::vector<int32_t> Parent;    ///< Index into Sets; -1 for the root.
  std::vector<uint32_t> ParentOp; ///< Probe index of the discovery edge.
  /// The frontier emptied within the bound: the family is the whole
  /// reachable space and sweeps over it are proofs, not samples.
  bool Exact = false;
};

/// Enumerate the probe-closed reachable family of \p Spec breadth-first,
/// stopping at \p MaxSets members (Exact records whether the frontier was
/// exhausted).  Mirrors core/Mover's enumeration but keeps predecessor
/// links; the two are cross-validated by tests/commut_test.cpp.
ReachableFamily computeReachableFamily(const SequentialSpec &Spec,
                                       const std::vector<Operation> &Probes,
                                       size_t MaxSets);

/// The minimal probe prefix (by BFS discovery) denoting Sets[\p Index].
std::vector<Operation> witnessPrefix(const ReachableFamily &F, size_t Index,
                                     const std::vector<Operation> &Probes);

/// Evidence grade of a pair verdict (see the file comment).
enum class CertKind {
  StrongDiamond,
  Counterexample,
  ViaPrecongruence,
  Unknown,
};

std::string toString(CertKind K);

/// A replayable certificate for one unordered pair's strong-commutation
/// verdict.
struct PairCertificate {
  CertKind Kind = CertKind::Unknown;
  /// StrongDiamond: the certified family, sorted ascending (checker input).
  std::vector<StateSetId> Family;
  /// Counterexample: minimal probe prefix to a diamond-failing state set.
  std::vector<Operation> Witness;
};

/// Full classification of one ordered probe pair (A, B).
struct PairVerdict {
  MoverClass Class = MoverClass::Non;
  /// Raw Definition 4.1 verdicts behind Class.
  Tri LeftAB = Tri::Unknown; ///< A <| B.
  Tri LeftBA = Tri::Unknown; ///< B <| A.
  /// Certified strong commutation (symmetric; see core/Commut.h).  Only
  /// true when a StrongDiamond certificate was produced AND independently
  /// verified.
  bool Strong = false;
  PairCertificate Cert;
};

/// Outcome of one independent certificate replay.
struct CertCheckResult {
  bool Ok = false;
  std::string Detail;
};

/// Independently verify a StrongDiamond certificate for (\p A, \p B): the
/// initial denotation is in Cert.Family, the family is closed under every
/// probe, and every member closes the diamond.  Trusts only the spec's
/// denotation kernel (applyOpId / initialId); never consults the analysis
/// that produced the certificate.
CertCheckResult verifyStrongCertificate(const SequentialSpec &Spec,
                                        const Operation &A,
                                        const Operation &B,
                                        const std::vector<Operation> &Probes,
                                        const PairCertificate &Cert);

/// Independently verify a Counterexample certificate for (\p A, \p B):
/// replay the witness prefix from the initial denotation and confirm the
/// diamond fails there.
CertCheckResult verifyCounterexample(const SequentialSpec &Spec,
                                     const Operation &A, const Operation &B,
                                     const PairCertificate &Cert);

/// The pair classifier.  Owns the reachable family (computed once) and a
/// per-unordered-pair memo of strong-sweep outcomes; Lipton classes are
/// delegated to the (memoized) MoverChecker.  Not internally
/// synchronized — the thread-safe facade is analysis/MoverTable.h's
/// CommutativityDB.
class CommutativityAnalysis {
public:
  CommutativityAnalysis(const SequentialSpec &Spec, MoverChecker &Movers,
                        size_t MaxReachableSets = 4096);

  const std::vector<Operation> &probes() const { return Probes; }
  const ReachableFamily &family();

  /// Classify probe pair (Probes[AIdx], Probes[BIdx]).  Every verdict
  /// with Strong==true had its certificate re-verified by the independent
  /// checker before being returned; certChecks() counts those replays.
  PairVerdict classify(size_t AIdx, size_t BIdx);

  /// Strong-commutation query only (the hot path of the lazy DB): the
  /// certificate machinery without the Lipton classification.
  bool stronglyCommutes(size_t AIdx, size_t BIdx, PairCertificate *CertOut);

  uint64_t certChecks() const { return CertChecks; }

private:
  /// Sweep the family for the (unordered) pair; returns the failing
  /// family index or -1 when every member closes the diamond.
  int64_t strongSweep(size_t AIdx, size_t BIdx);

  const SequentialSpec &Spec;
  MoverChecker &Movers;
  size_t MaxReachableSets;
  std::vector<Operation> Probes;
  std::vector<OpKeyId> ProbeKeys;
  bool FamilyComputed = false;
  ReachableFamily Fam;
  /// Unordered-pair memo: (min<<32|max) -> verified strong verdict +
  /// certificate.
  struct PairEntry {
    bool Strong = false;
    PairCertificate Cert;
  };
  std::unordered_map<uint64_t, PairEntry> PairMemo;
  uint64_t CertChecks = 0;
};

} // namespace pushpull

#endif // PUSHPULL_ANALYSIS_COMMUTATIVITY_H
