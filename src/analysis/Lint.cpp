//===- analysis/Lint.cpp - Semantic .pp scenario linter --------------------===//

#include "analysis/Lint.h"

#include "analysis/Obligations.h"
#include "core/Spec.h"
#include "lang/Ast.h"
#include "sim/Scenario.h"
#include "support/Str.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

using namespace pushpull;

std::string LintDiag::render() const {
  return File + ":" + std::to_string(Line) + ": " +
         (Severity == LintSeverity::Error ? "error" : "warning") + ": [" +
         Check + "] " + Message;
}

size_t LintReport::errors() const {
  return static_cast<size_t>(
      std::count_if(Diags.begin(), Diags.end(), [](const LintDiag &D) {
        return D.Severity == LintSeverity::Error;
      }));
}

size_t LintReport::warnings() const { return Diags.size() - errors(); }

std::string LintReport::render() const {
  std::string Out;
  for (const LintDiag &D : Diags)
    Out += D.render() + "\n";
  return Out;
}

namespace {

/// Tokenize a directive line the way the scenario parser does.
std::vector<std::string> lintWords(const std::string &Line) {
  std::vector<std::string> Out;
  std::istringstream In(Line);
  std::string W;
  while (In >> W)
    Out.push_back(W);
  return Out;
}

/// Line-number anchors for the directives the linter re-checks (the
/// scenario parser validates syntax but defers these to run time).
struct DirectiveMap {
  size_t EngineLine = 0;
  std::string EngineName;
  size_t InjectLine = 0;
  std::string InjectName;
  std::vector<std::pair<size_t, std::string>> Checks;
  std::vector<size_t> ThreadLines;
};

DirectiveMap scanDirectives(const std::string &Text) {
  DirectiveMap Map;
  std::vector<std::string> Lines = splitOn(Text, '\n');
  for (size_t N = 0; N < Lines.size(); ++N) {
    std::string Line = Lines[N];
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line = Line.substr(0, Hash);
    std::vector<std::string> Ws = lintWords(Line);
    if (Ws.empty())
      continue;
    if (Ws[0] == "engine" && Ws.size() >= 2) {
      Map.EngineLine = N + 1;
      Map.EngineName = Ws[1];
    } else if (Ws[0] == "check" && Ws.size() >= 2) {
      Map.Checks.emplace_back(N + 1, Ws[1]);
    } else if (Ws[0] == "inject") {
      Map.InjectLine = N + 1;
      size_t At = Line.find("inject");
      std::string Name = Line.substr(At + 6);
      size_t B = Name.find_first_not_of(" \t");
      size_t E = Name.find_last_not_of(" \t\r");
      if (B != std::string::npos)
        Map.InjectName = Name.substr(B, E - B + 1);
    } else if (Ws[0] == "thread") {
      Map.ThreadLines.push_back(N + 1);
    }
  }
  return Map;
}

/// The method surface plus the spec itself, for never-enabled probing.
struct LintContext {
  std::string File;
  size_t Line = 0; // Current thread's line.
  const std::vector<MethodSig> *Sigs = nullptr;
  const SequentialSpec *Spec = nullptr;
  /// Union of reachable spec states (empty when the enumeration
  /// overflowed its cap, which disables the never-enabled check).
  std::vector<State> Reachable;
  LintReport *Report = nullptr;

  void diag(LintSeverity Sev, std::string Check, std::string Msg) const {
    LintDiag D;
    D.File = File;
    D.Line = Line;
    D.Severity = Sev;
    D.Check = std::move(Check);
    D.Message = std::move(Msg);
    Report->Diags.push_back(std::move(D));
  }

  const MethodSig *findSig(const MethodExpr &M, bool &ObjectKnown) const {
    ObjectKnown = false;
    const MethodSig *Found = nullptr;
    for (const MethodSig &S : *Sigs) {
      if (S.Object != M.Object)
        continue;
      ObjectKnown = true;
      if (S.Method == M.Method)
        Found = &S;
    }
    return Found;
  }
};

/// Enumerate the union of reachable spec states under the probe alphabet,
/// up to \p Cap states.  Returns empty on overflow.
std::vector<State> reachableStates(const SequentialSpec &Spec, size_t Cap) {
  std::vector<Operation> Probes = Spec.probeOps();
  std::set<State> Seen;
  std::vector<State> Frontier = Spec.initialStates();
  for (State &S : Frontier)
    Seen.insert(S);
  while (!Frontier.empty()) {
    std::vector<State> Next;
    for (const State &S : Frontier)
      for (const Operation &Op : Probes)
        for (State &Succ : Spec.successors(S, Op))
          if (Seen.insert(Succ).second) {
            if (Seen.size() > Cap)
              return {};
            Next.push_back(std::move(Succ));
          }
    Frontier = std::move(Next);
  }
  return std::vector<State>(Seen.begin(), Seen.end());
}

using DefinedSet = std::set<std::string>;

bool containsCall(const CodePtr &C) {
  if (!C)
    return false;
  switch (C->kind()) {
  case CodeKind::Skip:
    return false;
  case CodeKind::Call:
    return true;
  case CodeKind::Seq:
  case CodeKind::Choice:
    return containsCall(C->lhs()) || containsCall(C->rhs());
  case CodeKind::Loop:
  case CodeKind::Tx:
    return containsCall(C->body());
  }
  return false;
}

void checkCall(const LintContext &Ctx, const MethodExpr &M,
               DefinedSet &Defined) {
  bool ObjectKnown = false;
  const MethodSig *Sig = Ctx.findSig(M, ObjectKnown);
  if (!ObjectKnown) {
    Ctx.diag(LintSeverity::Error, "unknown-object",
             "no spec declares object '" + M.Object + "' (call " +
                 M.toString() + ")");
  } else if (!Sig) {
    Ctx.diag(LintSeverity::Error, "unknown-method",
             "object '" + M.Object + "' has no method '" + M.Method + "'");
  } else {
    if (M.Args.size() != Sig->Arity)
      Ctx.diag(LintSeverity::Error, "arity-mismatch",
               M.Object + "." + M.Method + " takes " +
                   std::to_string(Sig->Arity) + " argument(s), got " +
                   std::to_string(M.Args.size()));
    if (M.ResultVar && !Sig->HasResult)
      Ctx.diag(LintSeverity::Error, "void-result-binding",
               "binding '" + *M.ResultVar + "' to void method " + M.Object +
                   "." + M.Method + " (the variable stays unbound)");
  }
  bool AllLiteral = true;
  for (const Arg &A : M.Args) {
    if (const std::string *Var = std::get_if<std::string>(&A)) {
      AllLiteral = false;
      if (!Defined.count(*Var))
        Ctx.diag(LintSeverity::Error, "uninitialized-variable",
                 "argument variable '" + *Var +
                     "' is not definitely assigned at " + M.toString());
    }
  }
  // never-enabled: a literal call with no completion anywhere in the
  // reachable state space can never fire — its statement is unreachable.
  if (AllLiteral && Sig && M.Args.size() == Sig->Arity &&
      !Ctx.Reachable.empty()) {
    ResolvedCall Call;
    Call.Object = M.Object;
    Call.Method = M.Method;
    for (const Arg &A : M.Args)
      Call.Args.push_back(std::get<Value>(A));
    bool Enabled = false;
    for (const State &S : Ctx.Reachable)
      if (!Ctx.Spec->completions(S, Call).empty()) {
        Enabled = true;
        break;
      }
    if (!Enabled)
      Ctx.diag(LintSeverity::Warning, "never-enabled",
               "call " + Call.toString() +
                   " has no completion from any reachable state and can "
                   "never fire");
  }
  if (M.ResultVar && Sig && Sig->HasResult)
    Defined.insert(*M.ResultVar);
}

/// Must-defined dataflow + structural checks, returning the set of
/// variables definitely assigned after \p C runs from \p In.
DefinedSet checkCode(const LintContext &Ctx, const CodePtr &C,
                     const DefinedSet &In) {
  if (!C)
    return In;
  switch (C->kind()) {
  case CodeKind::Skip:
    return In;
  case CodeKind::Call: {
    DefinedSet Out = In;
    checkCall(Ctx, C->call(), Out);
    return Out;
  }
  case CodeKind::Seq:
    return checkCode(Ctx, C->rhs(), checkCode(Ctx, C->lhs(), In));
  case CodeKind::Choice: {
    if (codeEquals(C->lhs(), C->rhs()))
      Ctx.diag(LintSeverity::Warning, "dead-choice",
               "both branches of '+' are identical: " + C->printed());
    DefinedSet L = checkCode(Ctx, C->lhs(), In);
    DefinedSet R = checkCode(Ctx, C->rhs(), In);
    DefinedSet Out;
    std::set_intersection(L.begin(), L.end(), R.begin(), R.end(),
                          std::inserter(Out, Out.begin()));
    return Out;
  }
  case CodeKind::Loop:
    if (!containsCall(C->body()))
      Ctx.diag(LintSeverity::Warning, "dead-loop",
               "loop body performs no method call: " + C->printed());
    // The body may run zero times: check it against the entry set, keep
    // nothing it defines.
    checkCode(Ctx, C->body(), In);
    return In;
  case CodeKind::Tx:
    return checkCode(Ctx, C->body(), In);
  }
  return In;
}

const std::vector<std::string> &validCheckNames() {
  static const std::vector<std::string> Names = {
      "serializability", "serializability-any", "opacity", "invariants",
      "explore"};
  return Names;
}

} // namespace

LintReport pushpull::lintScenarioText(const std::string &FileName,
                                      const std::string &Text) {
  LintReport Report;
  ScenarioParseResult PR = parseScenario(Text);
  if (!PR.ok()) {
    LintDiag D;
    D.File = FileName;
    D.Line = PR.ErrorLine;
    D.Severity = LintSeverity::Error;
    D.Check = "parse-error";
    D.Message = PR.Error;
    Report.Diags.push_back(std::move(D));
    return Report;
  }
  const Scenario &S = *PR.Parsed;
  DirectiveMap Map = scanDirectives(Text);

  LintContext Ctx;
  Ctx.File = FileName;
  Ctx.Report = &Report;
  std::vector<MethodSig> Sigs = S.Spec->methods();
  Ctx.Sigs = &Sigs;
  Ctx.Spec = S.Spec.get();
  Ctx.Reachable = reachableStates(*S.Spec, /*Cap=*/4096);

  // Directive-level checks the parser defers to run time.
  const std::vector<std::string> &Engines = allEngineNames();
  if (std::find(Engines.begin(), Engines.end(), S.Engine) == Engines.end()) {
    Ctx.Line = Map.EngineLine;
    Ctx.diag(LintSeverity::Error, "unknown-engine",
             "unknown engine '" + S.Engine + "'");
  }
  for (const auto &[Line, Name] : Map.Checks) {
    const std::vector<std::string> &Valid = validCheckNames();
    if (std::find(Valid.begin(), Valid.end(), Name) == Valid.end()) {
      Ctx.Line = Line;
      Ctx.diag(LintSeverity::Error, "unknown-check",
               "unknown check '" + Name + "'");
    }
  }
  if (!S.DisabledCriterion.empty()) {
    const std::vector<std::string> &Known = injectableCriteria();
    if (std::find(Known.begin(), Known.end(), S.DisabledCriterion) ==
        Known.end()) {
      Ctx.Line = Map.InjectLine;
      Ctx.diag(LintSeverity::Error, "unknown-inject",
               "no injectable criterion named '" + S.DisabledCriterion +
                   "'");
    }
  }

  // Per-thread semantic pass.  One sigma flows through a thread's whole
  // transaction sequence, so the defined set accumulates across txs.
  for (size_t T = 0; T < S.Threads.size(); ++T) {
    Ctx.Line = T < Map.ThreadLines.size() ? Map.ThreadLines[T] : 0;
    DefinedSet Defined;
    for (const CodePtr &Tx : S.Threads[T]) {
      if (!containsCall(Tx))
        Ctx.diag(LintSeverity::Warning, "empty-transaction",
                 "transaction performs no method call: tx { " +
                     (Tx ? Tx->printed() : std::string("skip")) + " }");
      Defined = checkCode(Ctx, Tx, Defined);
    }
  }
  return Report;
}

LintReport pushpull::lintScenarioFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    LintReport Report;
    LintDiag D;
    D.File = Path;
    D.Line = 0;
    D.Severity = LintSeverity::Error;
    D.Check = "parse-error";
    D.Message = "cannot read file";
    Report.Diags.push_back(std::move(D));
    return Report;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  return lintScenarioText(Path, Buf.str());
}
