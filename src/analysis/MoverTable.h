//===- analysis/MoverTable.h - Certified mover tables + prover --*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The consumer-facing layer over analysis/Commutativity.h:
///
///   * MoverTable — the eager NxN classification of a specification's
///     probe alphabet into Lipton mover classes and certified
///     strong-commutation verdicts, with per-method-pair predicate
///     summaries ("Map.put x Map.put: commutes iff distinct first
///     argument").  This is what `ppcheck --scope movers`-style reporting
///     and the test battery consume.
///
///   * CommutativityDB — the lazy, thread-safe CommutativityOracle the
///     explorer and pprun consume (ExplorerConfig::CommutDB).  Verdicts
///     are computed on first query, certified, and memoized; unknown op
///     keys answer false (sound).  coversProgram() decides whether a
///     scenario's call surface maps entirely into the probe alphabet —
///     the precondition for the reachable-family certificates to cover
///     every state the explorer can place the oracle in.
///
///   * proveSerializable — the whole-program conflict-serializability
///     prover behind `ppcheck --prove`: if every cross-thread pair of
///     statically-resolved call instances strongly commutes (each backed
///     by a verified certificate), every interleaving of the program is
///     conflict-equivalent to a serial one, for ANY engine rule surface
///     (the proof quantifies over all of TMEngine::ruleMask()); the
///     explorer may then skip its per-terminal serializability oracle
///     (ExplorerConfig::SkipOracle).  Otherwise it reports the first
///     non-commuting pair with its counterexample witness, or UNPROVED
///     when a call cannot be matched to the probe alphabet.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_ANALYSIS_MOVERTABLE_H
#define PUSHPULL_ANALYSIS_MOVERTABLE_H

#include "analysis/Commutativity.h"
#include "core/Commut.h"
#include "sim/Scenario.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace pushpull {

/// Argument-predicate summary of all probe-instance verdicts for one
/// unordered method pair.
enum class PairPredicate {
  Always,       ///< Every instance pair strongly commutes.
  Never,        ///< No instance pair strongly commutes.
  DistinctArg0, ///< Distinct first arguments imply strong commutation
                ///< (and some equal-argument pair does not commute).
  EqualArg0,    ///< Equal first arguments imply strong commutation
                ///< (and some distinct-argument pair does not commute).
  Mixed,        ///< No first-argument predicate explains the verdicts.
};

std::string toString(PairPredicate P);

/// Summary row for one unordered method pair (e.g. map.put x map.put).
struct MethodPairSummary {
  std::string ObjectA, MethodA;
  std::string ObjectB, MethodB;
  PairPredicate Pred = PairPredicate::Mixed;
  size_t StrongPairs = 0; ///< Instance pairs that strongly commute.
  size_t TotalPairs = 0;  ///< Instance pairs examined.
  /// Lipton classes observed across instances (counts by MoverClass).
  size_t ClassCounts[4] = {0, 0, 0, 0};
};

/// The eager certified table: every unordered probe-instance pair of one
/// specification, classified and certified.
class MoverTable {
public:
  /// One probe-instance pair's row.
  struct Entry {
    size_t AIdx = 0, BIdx = 0; ///< Probe indices, AIdx <= BIdx.
    PairVerdict V;
  };

  /// Build the full table for \p Spec.  Every Strong verdict in the
  /// result was certified and independently re-verified; certChecks()
  /// counts the replays.
  static MoverTable build(const SequentialSpec &Spec, MoverChecker &Movers,
                          size_t MaxReachableSets = 4096);

  const std::vector<Operation> &probes() const { return Probes; }
  const std::vector<Entry> &entries() const { return Entries; }
  const std::vector<MethodPairSummary> &summaries() const {
    return Summaries;
  }
  bool familyExact() const { return FamilyExact; }
  size_t familySize() const { return FamilySize; }
  uint64_t certChecks() const { return CertChecks; }

  /// Human-readable table rendering (ppcheck's movers section).
  std::string toString() const;

private:
  std::vector<Operation> Probes;
  std::vector<Entry> Entries;
  std::vector<MethodPairSummary> Summaries;
  bool FamilyExact = false;
  size_t FamilySize = 0;
  uint64_t CertChecks = 0;
};

/// Thread-safe lazy oracle over one specification's probe alphabet.
/// Owns its MoverChecker and CommutativityAnalysis; verdicts are
/// certified on first query and memoized.  See core/Commut.h for the
/// soundness contract.
class CommutativityDB : public CommutativityOracle {
public:
  explicit CommutativityDB(const SequentialSpec &Spec,
                           size_t MaxReachableSets = 4096);

  /// CommutativityOracle: true only for two known probe keys whose pair
  /// carries a verified StrongDiamond certificate.
  bool stronglyCommute(OpKeyId A, OpKeyId B) const override;
  uint64_t tableHits() const override {
    return Hits.load(std::memory_order_relaxed);
  }
  uint64_t tableMisses() const override {
    return Misses.load(std::memory_order_relaxed);
  }
  uint64_t certChecks() const override;

  /// Does every method call in \p Threads resolve (literal arguments,
  /// matching probe instances) into this DB's probe alphabet?  Required
  /// before handing the DB to the explorer: the certificates quantify
  /// over the probe-closed reachable family, which only covers runs whose
  /// every operation is a probe instance.  On failure \p WhyNot (if
  /// non-null) names the first uncovered call.
  bool coversProgram(const std::vector<std::vector<CodePtr>> &Threads,
                     std::string *WhyNot = nullptr) const;

  /// The certificate behind the pair of probe keys (for prover witness
  /// output).  Returns false for unknown keys or uncomputed pairs.
  bool certificate(OpKeyId A, OpKeyId B, PairCertificate &Out) const;

  /// Probe index of an interned op key; -1 when the key is not a probe
  /// instance.
  int64_t probeIndexOf(OpKeyId Key) const;

  const std::vector<Operation> &probes() const { return Analysis.probes(); }
  const SequentialSpec &spec() const { return Spec; }

  /// Strong query by probe index (the prover's path; same certification
  /// and memoization as stronglyCommute, without the key lookup).
  bool strongByProbeIndex(size_t AIdx, size_t BIdx,
                          PairCertificate *CertOut = nullptr) const;

private:
  const SequentialSpec &Spec;
  mutable MoverChecker Movers;
  mutable CommutativityAnalysis Analysis;
  mutable std::mutex Mu; ///< Guards Analysis (and Movers) only.
  std::unordered_map<OpKeyId, size_t> ProbeOf;
  mutable std::atomic<uint64_t> Hits{0}, Misses{0};
};

/// Whole-program conflict-serializability proof attempt (ppcheck --prove,
/// pprun --static-prove).
struct ProveResult {
  enum class Verdict {
    Proved,   ///< Certificate: all cross-thread instance pairs commute.
    Conflict, ///< Minimal conflicting pair found (PairA/PairB/Witness).
    Unproved, ///< Out of scope for this method (Detail explains).
  };
  Verdict V = Verdict::Unproved;
  /// Human-readable explanation: the certificate summary, the conflicting
  /// pair's counterexample, or the reason the program is out of scope.
  std::string Detail;
  /// The first non-commuting cross-thread pair (Conflict only).
  std::string PairA, PairB;
  /// Cross-thread instance pairs checked (each Proved pair is certified).
  size_t PairsChecked = 0;
  /// Distinct probe instances the program's calls resolved to.
  size_t Instances = 0;
};

std::string toString(ProveResult::Verdict V);

/// Attempt the whole-program proof for \p S against \p DB (which must be
/// built over S.Spec).  The verdict quantifies over every engine rule
/// surface, so it is engine-independent; the engine named by the scenario
/// is only echoed in Detail.  Never runs the scenario.
ProveResult proveSerializable(const Scenario &S, const CommutativityDB &DB);

} // namespace pushpull

#endif // PUSHPULL_ANALYSIS_MOVERTABLE_H
