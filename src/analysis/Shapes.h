//===- analysis/Shapes.h - Abstract log/state shapes ------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract-shape domain of the static analyses (tools/ppcheck).
///
/// Every Figure 5 criterion evaluated for a rule of thread t reads only
///
///   * t's remaining code (CMT's fin(c), APP's step(c)),
///   * t's local log L (entry order, flags, and operation content),
///   * the shared log G (entry order, flags, operation content, and
///     whether each uncommitted entry is owned by t or by someone else).
///
/// So for the purpose of checking rule guards, machine configurations
/// quotient down to a small finite domain: a bounded shared log and
/// bounded local logs over a finite operation alphabet drawn from the
/// specification's probe set.  This file defines that domain
/// (AbstractShape), enumerates every *well-formed* shape within a scope
/// smallest-first, and materializes shapes into real machine
/// configurations via PushPullMachine::installForAnalysis — the audits in
/// analysis/Obligations.* and analysis/IndependenceAudit.* then probe
/// individual rules with no scheduler in the loop.
///
/// Well-formedness is the structural + denotational fragment of the
/// Section 5.3 invariants that every *reachable* configuration satisfies
/// (well-formed shapes are a superset of reachable ones; DESIGN.md §13
/// gives the argument and the resulting soundness statement):
///
///   * a pshd entry of thread t references an uncommitted G entry owned
///     by t, and every uncommitted G entry owned by t is referenced by
///     exactly one pshd entry of t (I_LG, Lemma 5.7);
///   * a pld entry references a G entry that is committed or owned by
///     another thread, and no G entry is referenced twice by one thread
///     (PULL criterion (i) is conserved);
///   * threads outside a transaction have empty local logs and own no
///     uncommitted G entries;
///   * [[G]] and every [[L_t]] are non-empty (PUSH (iii) / APP (ii) /
///     PULL (ii) conserve allowed-ness of the logs they extend).
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_ANALYSIS_SHAPES_H
#define PUSHPULL_ANALYSIS_SHAPES_H

#include "core/Log.h"
#include "core/Machine.h"
#include "core/Spec.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pushpull {

/// Bounds of one exhaustive shape enumeration.  The defaults are the
/// scope at which every injectable criterion bug is convictable (see
/// tests/analysis_test.cpp); larger scopes only add confidence.
struct ShapeScope {
  /// Number of threads (thread 0 is the audit subject).
  unsigned Threads = 2;
  /// Local-log entry cap for thread 0.
  unsigned MaxLocalSubject = 2;
  /// Local-log entry cap for every other thread.
  unsigned MaxLocalOther = 1;
  /// Shared-log entry cap.
  unsigned MaxGlobal = 2;
  /// Cap on the probe-alphabet prefix used for operation content.
  unsigned MaxAlphabet = 4;
  /// Enumerate call continuations (one per alphabet op) for thread 0's
  /// remaining code, in addition to skip.  Off leaves only skip, which
  /// makes CMT criterion (i) trivially true everywhere.
  bool SubjectCodeCalls = true;
  /// Same for the non-subject threads (the independence audit probes
  /// every thread, the criterion audit only thread 0).
  bool OtherCodeCalls = false;
  /// Also enumerate an idle-with-pending variant for threads with empty
  /// local logs, so BEGIN firings exist (independence audit only).
  bool IncludeIdle = false;
};

/// One abstract local-log entry.
struct ShapeLocal {
  LocalKind Kind = LocalKind::NotPushed;
  /// Alphabet index of the operation; meaningful for npshd entries
  /// (pshd/pld entries take their operation from the referenced G entry).
  unsigned Op = 0;
  /// Index of the referenced shared-log entry; meaningful for pshd/pld.
  unsigned GRef = 0;
};

/// One abstract thread.
struct ShapeThread {
  bool InTx = true;
  /// Idle threads only: whether a pending transaction is queued (gives
  /// the shape a BEGIN firing).
  bool HasPending = false;
  /// Remaining code: kSkip, or an alphabet index rendered as a single
  /// trailing call of that operation's method.
  unsigned CodeOp = kSkip;
  std::vector<ShapeLocal> L;

  static constexpr unsigned kSkip = ~0u;
};

/// One abstract configuration over an operation alphabet.
struct AbstractShape {
  struct GEntry {
    unsigned Op = 0; ///< Alphabet index.
    bool Committed = false;
    TxId Owner = 0;
  };
  std::vector<GEntry> G;
  std::vector<ShapeThread> Threads;

  /// Total log-entry count — the minimality order of the enumeration.
  size_t entryCount() const;

  /// One-line rendering over \p Alphabet for diagnostics.
  std::string describe(const std::vector<Operation> &Alphabet) const;
};

/// The first min(MaxAlphabet, |probeOps|) probe operations of \p Spec —
/// the operation content domain of the enumeration.
std::vector<Operation> shapeAlphabet(const SequentialSpec &Spec,
                                     unsigned MaxAlphabet);

/// Enumerate every structurally well-formed shape in \p Scope over an
/// alphabet of \p AlphabetSize operations, in order of increasing
/// entryCount() (so the first hit of any search is a minimal witness).
/// Stops early when \p Visit returns false.  Returns the number of shapes
/// visited.  Denotational well-formedness ([[G]], [[L_t]] non-empty) is
/// spec-dependent and checked separately — see shapeDenotable.
uint64_t
enumerateShapes(const ShapeScope &Scope, size_t AlphabetSize,
                const std::function<bool(const AbstractShape &)> &Visit);

/// Denotational well-formedness: [[G]] and every [[L_t]] non-empty under
/// \p Spec.  Reachable configurations always satisfy this (the rules that
/// extend a log each require the extension to stay allowed).
bool shapeDenotable(const AbstractShape &S,
                    const std::vector<Operation> &Alphabet,
                    const SequentialSpec &Spec);

/// A shape materialized into real machine state: thread list + shared log
/// with concrete Operation records (ids dense from 1, pshd/pld entries
/// aliasing their G entry's record, as a real run would leave them).
struct MaterializedShape {
  PushPullMachine::ThreadList Threads;
  GlobalLog G;
  OpId MaxId = 0;
};

/// Materialize \p S.  Pure data construction; install the result into a
/// machine with installShape.
MaterializedShape materializeShape(const AbstractShape &S,
                                   const std::vector<Operation> &Alphabet);

/// Install \p Mat into \p M (see PushPullMachine::installForAnalysis).
void installShape(const MaterializedShape &Mat, PushPullMachine &M);

/// Render \p S as a parseable `.pp`-style scenario: \p SpecLine and
/// \p EngineLine verbatim, an `inject` line when \p InjectLine is
/// non-empty, `# shape:` comments describing logs and flags, and one
/// `thread` line per thread reconstructing a program that could have
/// produced the thread's own operations.  \p ProbeComment describes the
/// convicting rule probe.
std::string renderShapeWitness(const AbstractShape &S,
                               const std::vector<Operation> &Alphabet,
                               const std::string &SpecLine,
                               const std::string &EngineLine,
                               const std::string &InjectLine,
                               const std::string &ProbeComment);

} // namespace pushpull

#endif // PUSHPULL_ANALYSIS_SHAPES_H
