//===- analysis/Obligations.cpp - Criterion-obligation audit ---------------===//

#include "analysis/Obligations.h"

#include "lang/StepFin.h"
#include "spec/CounterSpec.h"
#include "spec/RegisterSpec.h"
#include "support/Tri.h"

#include <cassert>

using namespace pushpull;

//===----------------------------------------------------------------------===//
// ReferenceCriteria
//===----------------------------------------------------------------------===//

static std::vector<Operation> localOps(const ThreadState &Th) {
  return Th.L.ops();
}

static ReferenceVerdict pass() {
  ReferenceVerdict V;
  V.Enabled = true;
  return V;
}

static ReferenceVerdict fail(std::string Criterion, std::string Detail = "") {
  ReferenceVerdict V;
  V.FailedCriterion = std::move(Criterion);
  V.Detail = std::move(Detail);
  return V;
}

ReferenceVerdict ReferenceCriteria::judge(const MaterializedShape &Mat,
                                          const Firing &F) const {
  if (F.Tid >= Mat.Threads.size())
    return fail("structural", "no such thread");
  const ThreadState &Th = Mat.Threads[F.Tid];
  if (F.Kind == FiringKind::Begin)
    return !Th.InTx && !Th.Pending.empty()
               ? pass()
               : fail("structural", "BEGIN needs an idle thread with "
                                    "pending transactions");
  if (!Th.InTx)
    return fail("structural", "no transaction in progress");
  switch (F.Kind) {
  case FiringKind::App:
    return judgeApp(Mat, F);
  case FiringKind::UnApp:
    return judgeUnApp(Th);
  case FiringKind::Push:
    return judgePush(Mat, F.Tid, F.A);
  case FiringKind::UnPush:
    return judgeUnPush(Mat, F.Tid, F.A);
  case FiringKind::Pull:
    return judgePull(Mat, F.Tid, F.A);
  case FiringKind::UnPull:
    return judgeUnPull(Th, F.A);
  case FiringKind::Commit:
    return judgeCommit(Mat, Th);
  case FiringKind::Begin:
    break;
  }
  return fail("structural", "unknown firing kind");
}

ReferenceVerdict ReferenceCriteria::judgeApp(const MaterializedShape &M,
                                             const Firing &F) const {
  const ThreadState &Th = M.Threads[F.Tid];
  // APP criterion (i): (m, c') is drawn from step(c).
  const std::vector<StepItem> &Steps = step(Th.Code);
  if (F.A >= Steps.size())
    return fail("APP criterion (i)", "no such step choice");
  auto Call = Steps[F.A].Call.resolve(Th.Sigma);
  if (!Call)
    return fail("APP criterion (i)", "unbound variable in arguments");
  // APP criterion (ii): the local log allows the operation — there is an
  // allowed completion, and the probe names one of them.
  std::vector<Completion> Comps =
      Spec.completionsFrom(Spec.denote(localOps(Th)), *Call);
  if (F.B >= Comps.size())
    return fail("APP criterion (ii)",
                "local log does not allow the operation");
  // APP criterion (iii) — freshness of the id — is discharged by
  // construction on both sides (the machine's OpIdSource, this audit's
  // dense materialization), not judged per probe.
  return pass();
}

ReferenceVerdict ReferenceCriteria::judgeUnApp(const ThreadState &Th) const {
  if (Th.L.empty())
    return fail("structural", "local log is empty");
  if (Th.L[Th.L.size() - 1].Kind != LocalKind::NotPushed)
    return fail("UNAPP flag check", "last local entry is not npshd");
  return pass();
}

ReferenceVerdict ReferenceCriteria::judgePush(const MaterializedShape &M,
                                              TxId T, size_t Idx) const {
  const ThreadState &Th = M.Threads[T];
  if (Idx >= Th.L.size())
    return fail("structural", "no such local-log entry");
  const LocalEntry &E = Th.L[Idx];
  if (E.Kind != LocalKind::NotPushed)
    return fail("PUSH flag check", "entry is not npshd");
  const Operation &Op = E.Op;
  // PUSH criterion (i): op <| u for every unpushed u preceding it in L.
  for (size_t I = 0; I < Idx; ++I) {
    const LocalEntry &U = Th.L[I];
    if (U.Kind != LocalKind::NotPushed)
      continue;
    if (!holds(Movers.leftMover(Op, U.Op)))
      return fail("PUSH criterion (i)",
                  "cannot move left of unpushed " + U.Op.Call.toString());
  }
  // PUSH criterion (ii): x <| op for every uncommitted x of another
  // transaction (by ownership) in G.
  for (const GlobalEntry &GE : M.G.entries()) {
    if (GE.Kind != GlobalKind::Uncommitted || GE.Owner == T)
      continue;
    if (!holds(Movers.leftMover(GE.Op, Op)))
      return fail("PUSH criterion (ii)",
                  GE.Op.Call.toString() + " cannot move right of the push");
  }
  // PUSH criterion (iii): G . op is allowed.
  std::vector<Operation> GOps = M.G.ops();
  GOps.push_back(Op);
  if (!Spec.allowed(GOps))
    return fail("PUSH criterion (iii)", "G . op is not allowed");
  return pass();
}

ReferenceVerdict ReferenceCriteria::judgeUnPush(const MaterializedShape &M,
                                                TxId T, size_t Idx) const {
  const ThreadState &Th = M.Threads[T];
  if (Idx >= Th.L.size())
    return fail("structural", "no such local-log entry");
  const LocalEntry &E = Th.L[Idx];
  if (E.Kind != LocalKind::Pushed)
    return fail("UNPUSH flag check", "entry is not pshd");
  size_t GIdx = M.G.indexOf(E.Op.Id);
  if (GIdx == GlobalLog::npos)
    return fail("structural", "pshd entry missing from G");
  if (M.G[GIdx].Kind == GlobalKind::Committed)
    return fail("UNPUSH uncommitted check",
                "cannot unpush a committed operation");
  // UNPUSH criterion (i) (gray): op can move right past every later G
  // entry of other transactions (those not in our own L).
  if (EnforceGray) {
    for (size_t I = GIdx + 1; I < M.G.size(); ++I) {
      const GlobalEntry &Later = M.G[I];
      if (Th.L.contains(Later.Op.Id))
        continue;
      if (!holds(Movers.leftMover(E.Op, Later.Op)))
        return fail("UNPUSH criterion (i)",
                    "cannot move right past " + Later.Op.Call.toString());
    }
  }
  // UNPUSH criterion (ii): G without op is still allowed.
  std::vector<Operation> GOps;
  GOps.reserve(M.G.size() - 1);
  for (size_t I = 0; I < M.G.size(); ++I)
    if (I != GIdx)
      GOps.push_back(M.G[I].Op);
  if (!Spec.allowed(GOps))
    return fail("UNPUSH criterion (ii)", "G minus op is not allowed");
  return pass();
}

ReferenceVerdict ReferenceCriteria::judgePull(const MaterializedShape &M,
                                              TxId T, size_t Idx) const {
  const ThreadState &Th = M.Threads[T];
  if (Idx >= M.G.size())
    return fail("structural", "no such global-log entry");
  const Operation &Op = M.G[Idx].Op;
  // PULL criterion (i): not already in L.
  if (Th.L.contains(Op.Id))
    return fail("PULL criterion (i)", "operation already in L");
  // PULL criterion (ii): the local log allows op.
  std::vector<Operation> LOps = localOps(Th);
  LOps.push_back(Op);
  if (!Spec.allowed(LOps))
    return fail("PULL criterion (ii)", "L . op is not allowed");
  // PULL criterion (iii) (gray): every own local operation can move right
  // of op.
  if (EnforceGray) {
    for (const LocalEntry &E : Th.L.entries()) {
      if (E.Kind == LocalKind::Pulled)
        continue;
      if (!holds(Movers.leftMover(E.Op, Op)))
        return fail("PULL criterion (iii)",
                    E.Op.Call.toString() + " cannot move right of the pull");
    }
  }
  return pass();
}

ReferenceVerdict ReferenceCriteria::judgeUnPull(const ThreadState &Th,
                                                size_t Idx) const {
  if (Idx >= Th.L.size())
    return fail("structural", "no such local-log entry");
  if (Th.L[Idx].Kind != LocalKind::Pulled)
    return fail("UNPULL flag check", "entry is not pld");
  // UNPULL criterion (i): L without op is still allowed.
  if (!Spec.allowed(Th.L.opsOmitting(Idx)))
    return fail("UNPULL criterion (i)", "L minus op is not allowed");
  return pass();
}

ReferenceVerdict
ReferenceCriteria::judgeCommit(const MaterializedShape &M,
                               const ThreadState &Th) const {
  // CMT criterion (i): fin(c).
  if (!fin(Th.Code))
    return fail("CMT criterion (i)", "remaining code cannot terminate");
  // CMT criterion (ii): everything applied was pushed, and L c= G.
  for (const LocalEntry &E : Th.L.entries())
    if (E.Kind == LocalKind::NotPushed)
      return fail("CMT criterion (ii)", "unpushed operations remain in L");
  if (!M.G.containsAll(Th.L))
    return fail("CMT criterion (ii)", "a pulled operation is no longer in G");
  // CMT criterion (iii): every pulled operation is committed in G.
  for (const LocalEntry &E : Th.L.entries()) {
    if (E.Kind != LocalKind::Pulled)
      continue;
    size_t GIdx = M.G.indexOf(E.Op.Id);
    if (GIdx == GlobalLog::npos || M.G[GIdx].Kind != GlobalKind::Committed)
      return fail("CMT criterion (iii)",
                  "pulled operation belongs to an uncommitted transaction");
  }
  return pass();
}

//===----------------------------------------------------------------------===//
// Probe enumeration
//===----------------------------------------------------------------------===//

static bool maskHas(uint32_t Mask, FiringKind K) {
  // FiringKind is RuleKind shifted by the extra Begin element.
  assert(K != FiringKind::Begin && "BEGIN is not a Figure 5 rule");
  return Mask & (1u << (static_cast<unsigned>(K) - 1));
}

std::vector<Firing> pushpull::criterionProbes(const MaterializedShape &Mat,
                                              TxId Tid,
                                              const SequentialSpec &Spec,
                                              uint32_t RuleMask,
                                              bool PullsUncommitted) {
  std::vector<Firing> Out;
  if (Tid >= Mat.Threads.size())
    return Out;
  const ThreadState &Th = Mat.Threads[Tid];
  auto add = [&](FiringKind K, uint32_t A = 0, uint32_t B = 0) {
    Firing F;
    F.Tid = Tid;
    F.Kind = K;
    F.A = A;
    F.B = B;
    Out.push_back(F);
  };
  if (!Th.InTx) {
    if (!Th.Pending.empty())
      add(FiringKind::Begin);
    return Out;
  }
  if (maskHas(RuleMask, FiringKind::App)) {
    const std::vector<StepItem> &Steps = step(Th.Code);
    for (size_t SI = 0; SI < Steps.size(); ++SI) {
      auto Call = Steps[SI].Call.resolve(Th.Sigma);
      if (!Call)
        continue;
      size_t NComps =
          Spec.completionsFrom(Spec.denote(Th.L.ops()), *Call).size();
      // Every allowed completion, plus one out-of-range probe: both sides
      // must reject a completion index the local view does not permit.
      for (size_t CI = 0; CI <= NComps; ++CI)
        add(FiringKind::App, static_cast<uint32_t>(SI),
            static_cast<uint32_t>(CI));
    }
  }
  if (maskHas(RuleMask, FiringKind::UnApp) && !Th.L.empty())
    add(FiringKind::UnApp);
  for (size_t I = 0; I < Th.L.size(); ++I) {
    if (maskHas(RuleMask, FiringKind::Push))
      add(FiringKind::Push, static_cast<uint32_t>(I));
    if (maskHas(RuleMask, FiringKind::UnPush))
      add(FiringKind::UnPush, static_cast<uint32_t>(I));
    if (maskHas(RuleMask, FiringKind::UnPull))
      add(FiringKind::UnPull, static_cast<uint32_t>(I));
  }
  if (maskHas(RuleMask, FiringKind::Pull))
    for (size_t I = 0; I < Mat.G.size(); ++I) {
      if (!PullsUncommitted && Mat.G[I].Kind == GlobalKind::Uncommitted)
        continue;
      add(FiringKind::Pull, static_cast<uint32_t>(I));
    }
  if (maskHas(RuleMask, FiringKind::Commit))
    add(FiringKind::Commit);
  return Out;
}

//===----------------------------------------------------------------------===//
// The audit
//===----------------------------------------------------------------------===//

std::string
Divergence::describe(const std::vector<Operation> &Alphabet) const {
  std::string Out = MachineApplied
                        ? "UNSOUND: machine fired " + Probe.toString() +
                              " but " + RefFailedCriterion + " fails"
                        : "INCOMPLETE: machine rejected " + Probe.toString() +
                              " though all criteria hold";
  if (!RefDetail.empty())
    Out += " (" + RefDetail + ")";
  Out += "\n  at " + Shape.describe(Alphabet);
  return Out;
}

CriterionAuditReport
pushpull::auditCriteria(const CriterionAuditConfig &Config) {
  assert(Config.Spec && "audit needs a specification");
  const SequentialSpec &Spec = *Config.Spec;
  CriterionAuditReport Report;
  Report.Alphabet = shapeAlphabet(Spec, Config.Scope.MaxAlphabet);
  const std::vector<Operation> &Alphabet = Report.Alphabet;

  MoverChecker Movers(Spec);
  ReferenceCriteria Ref(Spec, Movers, Config.EnforceGray);

  MachineConfig MC;
  MC.Level = ValidationLevel::Criteria;
  MC.EnforceGrayCriteria = Config.EnforceGray;
  MC.RecordAudit = false;
  MC.RecordTrace = false;
  MC.DisabledCriterion = Config.DisabledCriterion;
  PushPullMachine Base(Spec, Movers, MC);

  std::string InjectLine = Config.DisabledCriterion;
  std::string EngineLine = "engine " + Config.EngineName;

  enumerateShapes(Config.Scope, Alphabet.size(), [&](const AbstractShape &S) {
    ++Report.ShapesVisited;
    if (Config.MaxShapes && Report.ShapesVisited > Config.MaxShapes)
      return false;
    if (!shapeDenotable(S, Alphabet, Spec))
      return true;
    ++Report.ShapesAudited;
    MaterializedShape Mat = materializeShape(S, Alphabet);
    installShape(Mat, Base);
    for (const Firing &F : criterionProbes(Mat, /*Tid=*/0, Spec,
                                           Config.RuleMask,
                                           Config.PullsUncommitted)) {
      ++Report.ProbesRun;
      PushPullMachine Probe(Base);
      bool Applied = applyFiring(Probe, F);
      ReferenceVerdict V = Ref.judge(Mat, F);
      if (Applied == V.Enabled)
        continue;
      Divergence D;
      D.Shape = S;
      D.Probe = F;
      D.MachineApplied = Applied;
      D.RefFailedCriterion = V.FailedCriterion;
      D.RefDetail = V.Detail;
      D.Witness = renderShapeWitness(S, Alphabet, Config.SpecLine, EngineLine,
                                     InjectLine,
                                     D.describe(Alphabet).substr(
                                         0, D.describe(Alphabet).find('\n')));
      (Applied ? Report.Unsound : Report.Incomplete).push_back(std::move(D));
      if (Config.StopAtFirstDivergence)
        return false;
    }
    return true;
  });
  return Report;
}

//===----------------------------------------------------------------------===//
// Negative battery
//===----------------------------------------------------------------------===//

const std::vector<std::string> &pushpull::injectableCriteria() {
  static const std::vector<std::string> Names = {
      "PUSH criterion (i)",   "PUSH criterion (ii)",  "PUSH criterion (iii)",
      "UNPUSH criterion (i)", "UNPUSH criterion (ii)", "PULL criterion (ii)",
      "PULL criterion (iii)", "UNPULL criterion (i)",
  };
  return Names;
}

std::vector<ConvictionResult>
pushpull::runNegativeBattery(const ShapeScope &Scope) {
  // The battery's spec ladder: tiny instances keep the mover and
  // denotation state spaces exact and fast.  A register alphabet convicts
  // most criteria; "PUSH criterion (iii)" needs an operation that is
  // locally allowed yet disallowed after G (the counter's modular wrap) —
  // see DESIGN.md §13.
  struct SpecCase {
    std::string Kind;
    std::string SpecLine;
    std::shared_ptr<const SequentialSpec> Spec;
  };
  std::vector<SpecCase> Specs;
  Specs.push_back({"register", "spec register name=mem regs=1 vals=2",
                   std::make_shared<RegisterSpec>("mem", 1, 2)});
  Specs.push_back({"counter", "spec counter name=c counters=1 mod=2",
                   std::make_shared<CounterSpec>("c", 1, 2)});

  std::vector<ConvictionResult> Out;
  for (const std::string &Criterion : injectableCriteria()) {
    ConvictionResult R;
    R.Criterion = Criterion;
    // Gray handling: the gray criteria themselves are only evaluated when
    // gray enforcement is on; "UNPUSH criterion (ii)" is masked by gray
    // criterion (i) on well-formed shapes, so its injection is audited
    // with gray enforcement off (both machine and reference).
    bool Gray = Criterion != "UNPUSH criterion (ii)";
    R.EnforcedGray = Gray;
    for (const SpecCase &SC : Specs) {
      CriterionAuditConfig C;
      C.Scope = Scope;
      C.Spec = SC.Spec.get();
      C.SpecLine = SC.SpecLine;
      C.EnforceGray = Gray;
      C.DisabledCriterion = Criterion;
      C.StopAtFirstDivergence = true;
      CriterionAuditReport Rep = auditCriteria(C);
      R.ShapesAudited += Rep.ShapesAudited;
      R.ProbesRun += Rep.ProbesRun;
      if (!Rep.Unsound.empty()) {
        R.Convicted = true;
        R.SpecKind = SC.Kind;
        R.Witness = Rep.Unsound.front();
        R.Alphabet = Rep.Alphabet;
        break;
      }
    }
    Out.push_back(std::move(R));
  }
  return Out;
}
