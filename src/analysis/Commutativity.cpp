//===- analysis/Commutativity.cpp - Certified commutation analysis ----------===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "analysis/Commutativity.h"

#include <algorithm>
#include <unordered_map>

using namespace pushpull;

std::string pushpull::toString(MoverClass C) {
  switch (C) {
  case MoverClass::Both:
    return "both";
  case MoverClass::Left:
    return "left";
  case MoverClass::Right:
    return "right";
  case MoverClass::Non:
    return "non";
  }
  return "?";
}

std::string pushpull::toString(CertKind K) {
  switch (K) {
  case CertKind::StrongDiamond:
    return "diamond";
  case CertKind::Counterexample:
    return "counterexample";
  case CertKind::ViaPrecongruence:
    return "precongruence";
  case CertKind::Unknown:
    return "unknown";
  }
  return "?";
}

ReachableFamily
pushpull::computeReachableFamily(const SequentialSpec &Spec,
                                 const std::vector<Operation> &Probes,
                                 size_t MaxSets) {
  ReachableFamily F;
  std::vector<OpKeyId> Keys;
  Keys.reserve(Probes.size());
  for (const Operation &P : Probes)
    Keys.push_back(Spec.table().opKey(P));

  std::unordered_map<StateSetId, size_t> Seen;
  StateSetId Init = Spec.initialId();
  F.Sets.push_back(Init);
  F.Parent.push_back(-1);
  F.ParentOp.push_back(0);
  Seen.emplace(Init, 0);

  F.Exact = true;
  for (size_t Head = 0; Head < F.Sets.size(); ++Head) {
    StateSetId S = F.Sets[Head];
    for (size_t Pi = 0; Pi < Probes.size(); ++Pi) {
      StateSetId Img = Spec.applyOpId(S, Probes[Pi], Keys[Pi]);
      if (Img == StateTable::EmptySetId || Seen.count(Img))
        continue;
      if (F.Sets.size() >= MaxSets) {
        // A new member exists beyond the bound: the family is a sample.
        F.Exact = false;
        return F;
      }
      Seen.emplace(Img, F.Sets.size());
      F.Sets.push_back(Img);
      F.Parent.push_back(static_cast<int32_t>(Head));
      F.ParentOp.push_back(static_cast<uint32_t>(Pi));
    }
  }
  return F;
}

std::vector<Operation>
pushpull::witnessPrefix(const ReachableFamily &F, size_t Index,
                        const std::vector<Operation> &Probes) {
  std::vector<Operation> Prefix;
  for (int64_t I = static_cast<int64_t>(Index); I > 0;
       I = F.Parent[static_cast<size_t>(I)])
    Prefix.push_back(Probes[F.ParentOp[static_cast<size_t>(I)]]);
  std::reverse(Prefix.begin(), Prefix.end());
  return Prefix;
}

namespace {

/// Does the A/B diamond close at \p S?  The strong-commutation local
/// condition: both orders denote the same interned set, and two
/// individually allowed operations stay jointly allowed.
bool diamondClosesAt(const SequentialSpec &Spec, StateSetId S,
                     const Operation &A, OpKeyId KA, const Operation &B,
                     OpKeyId KB) {
  StateSetId SA = Spec.applyOpId(S, A, KA);
  StateSetId SB = Spec.applyOpId(S, B, KB);
  StateSetId AB = Spec.applyOpId(SA, B, KB);
  StateSetId BA = Spec.applyOpId(SB, A, KA);
  if (AB != BA)
    return false;
  if (SA != StateTable::EmptySetId && SB != StateTable::EmptySetId &&
      AB == StateTable::EmptySetId)
    return false;
  return true;
}

} // namespace

CertCheckResult
pushpull::verifyStrongCertificate(const SequentialSpec &Spec,
                                  const Operation &A, const Operation &B,
                                  const std::vector<Operation> &Probes,
                                  const PairCertificate &Cert) {
  CertCheckResult R;
  if (Cert.Kind != CertKind::StrongDiamond) {
    R.Detail = "not a diamond certificate";
    return R;
  }
  const std::vector<StateSetId> &Fam = Cert.Family;
  if (Fam.empty()) {
    R.Detail = "empty family";
    return R;
  }
  for (size_t I = 1; I < Fam.size(); ++I)
    if (Fam[I - 1] >= Fam[I]) {
      R.Detail = "family not sorted/unique";
      return R;
    }
  auto Member = [&Fam](StateSetId Id) {
    return std::binary_search(Fam.begin(), Fam.end(), Id);
  };
  if (!Member(Spec.initialId())) {
    R.Detail = "initial denotation not in family";
    return R;
  }
  // Closure under the probe alphabet *and* under A/B themselves (the
  // certificate must not rely on A/B being probe members).
  std::vector<const Operation *> Alphabet;
  Alphabet.reserve(Probes.size() + 2);
  for (const Operation &P : Probes)
    Alphabet.push_back(&P);
  Alphabet.push_back(&A);
  Alphabet.push_back(&B);
  OpKeyId KA = Spec.table().opKey(A), KB = Spec.table().opKey(B);
  for (StateSetId S : Fam)
    for (const Operation *Op : Alphabet) {
      StateSetId Img = Spec.applyOpId(S, *Op);
      if (Img != StateTable::EmptySetId && !Member(Img)) {
        R.Detail = "family not closed under '" + Op->toString() + "'";
        return R;
      }
    }
  for (StateSetId S : Fam)
    if (!diamondClosesAt(Spec, S, A, KA, B, KB)) {
      R.Detail = "diamond fails at family member " + std::to_string(S);
      return R;
    }
  R.Ok = true;
  R.Detail = "diamond closed over " + std::to_string(Fam.size()) + " sets";
  return R;
}

CertCheckResult pushpull::verifyCounterexample(const SequentialSpec &Spec,
                                               const Operation &A,
                                               const Operation &B,
                                               const PairCertificate &Cert) {
  CertCheckResult R;
  if (Cert.Kind != CertKind::Counterexample) {
    R.Detail = "not a counterexample certificate";
    return R;
  }
  StateSetId S = Spec.denoteId(Cert.Witness);
  OpKeyId KA = Spec.table().opKey(A), KB = Spec.table().opKey(B);
  if (diamondClosesAt(Spec, S, A, KA, B, KB)) {
    R.Detail = "witness prefix does not break the diamond";
    return R;
  }
  R.Ok = true;
  R.Detail =
      "diamond fails after " + std::to_string(Cert.Witness.size()) + " ops";
  return R;
}

CommutativityAnalysis::CommutativityAnalysis(const SequentialSpec &Spec,
                                             MoverChecker &Movers,
                                             size_t MaxReachableSets)
    : Spec(Spec), Movers(Movers), MaxReachableSets(MaxReachableSets),
      Probes(Spec.probeOps()) {
  ProbeKeys.reserve(Probes.size());
  for (const Operation &P : Probes)
    ProbeKeys.push_back(Spec.table().opKey(P));
}

const ReachableFamily &CommutativityAnalysis::family() {
  if (!FamilyComputed) {
    Fam = computeReachableFamily(Spec, Probes, MaxReachableSets);
    FamilyComputed = true;
  }
  return Fam;
}

int64_t CommutativityAnalysis::strongSweep(size_t AIdx, size_t BIdx) {
  const ReachableFamily &F = family();
  const Operation &A = Probes[AIdx], &B = Probes[BIdx];
  OpKeyId KA = ProbeKeys[AIdx], KB = ProbeKeys[BIdx];
  for (size_t I = 0; I < F.Sets.size(); ++I)
    if (!diamondClosesAt(Spec, F.Sets[I], A, KA, B, KB))
      return static_cast<int64_t>(I);
  return -1;
}

bool CommutativityAnalysis::stronglyCommutes(size_t AIdx, size_t BIdx,
                                             PairCertificate *CertOut) {
  uint64_t Lo = std::min(AIdx, BIdx), Hi = std::max(AIdx, BIdx);
  uint64_t Key = (Lo << 32) | Hi;
  auto It = PairMemo.find(Key);
  if (It == PairMemo.end()) {
    PairEntry E;
    const ReachableFamily &F = family();
    if (!F.Exact) {
      E.Cert.Kind = CertKind::Unknown;
    } else {
      int64_t Fail = strongSweep(AIdx, BIdx);
      const Operation &A = Probes[AIdx], &B = Probes[BIdx];
      if (Fail < 0) {
        E.Cert.Kind = CertKind::StrongDiamond;
        E.Cert.Family = F.Sets;
        std::sort(E.Cert.Family.begin(), E.Cert.Family.end());
        // Never trust the sweep: the verdict is the *checker's*.
        ++CertChecks;
        E.Strong =
            verifyStrongCertificate(Spec, A, B, Probes, E.Cert).Ok;
      } else {
        E.Cert.Kind = CertKind::Counterexample;
        E.Cert.Witness =
            witnessPrefix(F, static_cast<size_t>(Fail), Probes);
        ++CertChecks;
        // A failed replay would mean the sweep mis-indexed its witness;
        // the pair stays non-strong either way, but the certificate is
        // only kept if it replays.
        if (!verifyCounterexample(Spec, A, B, E.Cert).Ok)
          E.Cert.Kind = CertKind::Unknown;
      }
    }
    It = PairMemo.emplace(Key, std::move(E)).first;
  }
  if (CertOut)
    *CertOut = It->second.Cert;
  return It->second.Strong;
}

PairVerdict CommutativityAnalysis::classify(size_t AIdx, size_t BIdx) {
  PairVerdict V;
  V.Strong = stronglyCommutes(AIdx, BIdx, &V.Cert);
  const Operation &A = Probes[AIdx], &B = Probes[BIdx];
  V.LeftAB = Movers.leftMover(A, B);
  V.LeftBA = Movers.leftMover(B, A);
  if (V.LeftAB == Tri::Yes && V.LeftBA == Tri::Yes)
    V.Class = MoverClass::Both;
  else if (V.LeftAB == Tri::Yes)
    V.Class = MoverClass::Left;
  else if (V.LeftBA == Tri::Yes)
    V.Class = MoverClass::Right;
  else
    V.Class = MoverClass::Non;
  // A both-mover that is not strongly commuting: refinement without
  // equality (or a bounded-out family).  Record the evidence grade when
  // no replayable certificate exists.
  if (!V.Strong && V.Class == MoverClass::Both &&
      V.Cert.Kind == CertKind::Unknown)
    V.Cert.Kind = CertKind::ViaPrecongruence;
  return V;
}
