//===- analysis/IndependenceAudit.h - Reduction soundness audit -*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static audit of the explorer's independence relation
/// (sim/Reduction.h): for every well-formed abstract shape up to a scope,
/// every cross-thread pair of *enabled* firings that independentFirings
/// claims independent must commute as a diamond —
///
///   * each remains enabled (with the same firing identity) after the
///     other fires, and
///   * both execution orders reach the same configuration (compared by
///     the machine's canonical configKey, which is operation-id-free).
///
/// This discharges, by exhaustive small-scope enumeration over the
/// *shape* domain, the same obligation tests/reduction_test.cpp checks
/// dynamically over fuzzed reachable configurations — but without running
/// a scheduler, and over the strictly larger well-formed space.  Shapes
/// are only ever probed through the machine, so a pair is audited exactly
/// when both firings are genuinely enabled there; unreachable shapes can
/// therefore only *add* audited pairs, never fabricate enabledness.
/// Because independentFirings is justified purely by criterion footprints
/// (which hold at any well-formed configuration), a violation found at an
/// unreachable shape is still a real footprint bug.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_ANALYSIS_INDEPENDENCEAUDIT_H
#define PUSHPULL_ANALYSIS_INDEPENDENCEAUDIT_H

#include "analysis/Shapes.h"
#include "sim/Reduction.h"

#include <string>
#include <vector>

namespace pushpull {

/// Every candidate firing of every thread at \p M's current
/// configuration, with footprints, regardless of enabledness (callers
/// probe enabledness themselves): BEGIN for idle threads with pending
/// work, every APP choice, UNAPP, PUSH/UNPUSH/UNPULL per local index,
/// PULL per global index, CMT.
std::vector<Candidate> allCandidates(const PushPullMachine &M);

/// Check every claimed-independent pair of enabled cross-thread firings
/// at \p M's current configuration as a diamond.  Appends a description
/// per violation to \p Failures; returns the number of pairs checked.
/// \p MaxPairs, when nonzero, bounds the work.
size_t checkIndependenceAt(const PushPullMachine &M,
                           std::vector<std::string> &Failures,
                           size_t MaxPairs = 0);

struct IndependenceViolation {
  AbstractShape Shape;
  Firing A, B;
  std::string Reason;
};

struct IndependenceAuditConfig {
  ShapeScope Scope;
  const SequentialSpec *Spec = nullptr;
  bool StopAtFirstViolation = false;
  uint64_t MaxShapes = 0;
};

struct IndependenceAuditReport {
  uint64_t ShapesVisited = 0;
  uint64_t ShapesAudited = 0;
  uint64_t PairsChecked = 0;
  std::vector<IndependenceViolation> Violations;
  std::vector<Operation> Alphabet;

  bool clean() const { return Violations.empty(); }
};

/// Run the shape-domain audit.  The scope should enable idle-with-pending
/// variants and other-thread code (BEGIN and cross-thread APP pairs are
/// part of the relation); auditIndependence forces both flags on.
IndependenceAuditReport
auditIndependence(const IndependenceAuditConfig &Config);

} // namespace pushpull

#endif // PUSHPULL_ANALYSIS_INDEPENDENCEAUDIT_H
