//===- stress/StressRunner.cpp - Real-concurrency stress runtime -------------===//

#include "stress/StressRunner.h"

#include "sim/Scenario.h"
#include "sim/Workload.h"
#include "stress/Arbiter.h"
#include "tm/Engine.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <thread>

using namespace pushpull;

namespace {

/// splitmix64-style mixer: (Seed, worker, round) -> independent stream.
uint64_t mixSeed(uint64_t A, uint64_t B, uint64_t C) {
  uint64_t X = A * 0x9e3779b97f4a7c15ull + B * 0xbf58476d1ce4e5b9ull +
               C * 0x94d049bb133111ebull + 0x2545f4914f6cdd1dull;
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ull;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebull;
  X ^= X >> 31;
  return X ? X : 1;
}

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// Everything the worker and checker threads share.  Semantic state is
/// thread-confined; this is rings + arbiter + termination flags only.
struct SharedState {
  const StressConfig &C;
  std::shared_ptr<const SequentialSpec> Spec;
  CommitArbiter Arbiter;
  std::vector<std::unique_ptr<RingTrace>> Rings;
  std::atomic<unsigned> WorkersDone{0};
  /// Worker-side build errors (mutex-guarded; rare).
  std::mutex ErrorLock;
  std::vector<std::string> BuildErrors;

  SharedState(const StressConfig &C,
              std::shared_ptr<const SequentialSpec> Spec)
      : C(C), Spec(std::move(Spec)),
        Arbiter(C.Stripes, C.WindowCommits) {
    for (unsigned W = 0; W < C.Workers; ++W)
      Rings.push_back(std::make_unique<RingTrace>(C.RingCapacity));
  }
};

} // namespace

WindowCheckConfig
pushpull::buildRoundConfig(const StressConfig &C,
                           std::shared_ptr<const SequentialSpec> Spec,
                           unsigned Worker, uint32_t Round,
                           std::string &Error) {
  WindowCheckConfig RC;
  RC.SpecKind = C.SpecKind;
  RC.SpecOpts = C.SpecOpts;
  RC.Spec = Spec;
  RC.Engine = C.Engine;
  RC.EngineOpts = C.EngineOpts;
  RC.DisabledCriterion = C.DisabledCriterion;

  // Per-round engine seed: live worker and shadow checker derive the
  // identical value from the same three numbers, which is what makes the
  // shadow replay exact.
  uint64_t RoundSeed = mixSeed(C.Seed, Worker + 1, Round + 1);
  RC.EngineOpts["seed"] = std::to_string(RoundSeed % 100000);

  WorkloadConfig WC;
  WC.Threads = C.ThreadsPerWorker < 2 ? 2 : C.ThreadsPerWorker;
  WC.TxPerThread = C.TxPerThread;
  WC.OpsPerTx = C.OpsPerTx;
  WC.KeyRange = C.KeyRange;
  WC.ZipfTheta = C.ZipfTheta;
  WC.ReadPct = C.ReadPct;
  WC.Seed = mixSeed(RoundSeed, 0x5eed, 0x10ad);

  const SequentialSpec *S = Spec.get();
  if (const auto *P = dynamic_cast<const MapSpec *>(S))
    RC.Threads = genMapWorkload(*P, WC);
  else if (const auto *P = dynamic_cast<const RegisterSpec *>(S))
    RC.Threads = genRegisterWorkload(*P, WC);
  else if (const auto *P = dynamic_cast<const SetSpec *>(S))
    RC.Threads = genSetWorkload(*P, WC);
  else if (const auto *P = dynamic_cast<const CounterSpec *>(S))
    RC.Threads = genCounterWorkload(*P, WC);
  else if (const auto *P = dynamic_cast<const QueueSpec *>(S))
    RC.Threads = genQueueWorkload(*P, WC);
  else if (const auto *P = dynamic_cast<const BankSpec *>(S))
    RC.Threads = genBankWorkload(*P, WC);
  else
    Error = "no workload mix for spec kind '" + C.SpecKind + "'";
  return RC;
}

/// One worker: rounds of fresh machine + engine + workload, every step
/// recorded into the worker's ring.
static StressStats workerLoop(SharedState &S, unsigned W) {
  StressStats L;
  Rng PickRng(mixSeed(S.C.Seed, W + 1, 0xfeedu));
  auto Start = std::chrono::steady_clock::now();

  for (uint32_t Round = 0;; ++Round) {
    if (S.C.DurationMs ? secondsSince(Start) * 1000.0 >=
                             static_cast<double>(S.C.DurationMs)
                       : Round >= S.C.Rounds)
      break;

    std::string Error;
    WindowCheckConfig RC = buildRoundConfig(S.C, S.Spec, W, Round, Error);
    if (!Error.empty()) {
      std::lock_guard<std::mutex> G(S.ErrorLock);
      S.BuildErrors.push_back("worker " + std::to_string(W) + ": " + Error);
      break;
    }

    MoverChecker Movers(*S.Spec, RC.Movers, RC.Pre);
    MachineConfig MC;
    MC.DisabledCriterion = RC.DisabledCriterion;
    MC.RecordTrace = false; // The shadow records; the hot path doesn't.
    MC.RecordAudit = false;
    PushPullMachine M(*S.Spec, Movers, MC);
    for (const auto &P : RC.Threads)
      M.addThread(P);
    std::string EngineError;
    std::unique_ptr<TMEngine> E =
        makeEngine(RC.Engine, RC.EngineOpts, M, EngineError);
    if (!E) {
      std::lock_guard<std::mutex> G(S.ErrorLock);
      S.BuildErrors.push_back("worker " + std::to_string(W) + ": " +
                              EngineError);
      break;
    }

    uint64_t Order = 0;
    std::vector<TxId> Runnable;
    while (Order < S.C.MaxStepsPerRound) {
      Runnable.clear();
      for (const ThreadState &Th : M.threads())
        if (!Th.done())
          Runnable.push_back(Th.Tid);
      if (Runnable.empty())
        break;
      TxId Pick = Runnable[PickRng.below(Runnable.size())];
      StepStatus St = E->step(Pick);
      ++L.Steps;

      StressRecord R;
      R.Order = Order++;
      R.Round = Round;
      if (St == StepStatus::Committed) {
        ++L.Commits;
        // The cross-worker commit point: stripe by (worker, thread) so
        // distinct workers mostly hit distinct stripes while the global
        // sequence stays total.
        R.CommitSeq = S.Arbiter.admitCommit(W * 131u + Pick);
      } else if (St == StepStatus::Aborted) {
        ++L.Aborts;
      }
      R.Epoch = S.Arbiter.epoch();
      stampFingerprint(R, M, static_cast<uint32_t>(Pick), St);
      if (S.C.CheckWindows) {
        while (!S.Rings[W]->tryPush(R)) {
          ++L.RingSpins;
          std::this_thread::yield();
        }
        ++L.RingRecords;
      }
      if (St == StepStatus::Committed && S.C.ThinkUs)
        std::this_thread::sleep_for(std::chrono::microseconds(S.C.ThinkUs));
    }
    L.Transactions += M.committed().size();
  }
  S.WorkersDone.fetch_add(1, std::memory_order_acq_rel);
  return L;
}

StressOutcome StressRunner::run() {
  StressOutcome Outcome;
  Outcome.Stats.Workers = Config.Workers;
  if (Config.Workers == 0)
    return Outcome;
  if (Config.SpecOpts.find("name") == Config.SpecOpts.end())
    Config.SpecOpts["name"] = Config.SpecKind;

  std::string Error, SpecName;
  std::shared_ptr<const SequentialSpec> Spec =
      makeSpecPart(Config.SpecKind, Config.SpecOpts, SpecName, Error);
  if (!Spec) {
    Outcome.Failures.push_back("spec: " + Error);
    return Outcome;
  }

  SharedState S(Config, Spec);
  std::vector<StressStats> WorkerStats(Config.Workers);
  auto T0 = std::chrono::steady_clock::now();

  std::vector<std::thread> Workers;
  Workers.reserve(Config.Workers);
  for (unsigned W = 0; W < Config.Workers; ++W)
    Workers.emplace_back(
        [&S, &WorkerStats, W] { WorkerStats[W] = workerLoop(S, W); });

  // The checker: one thread draining every ring, one shadow per live
  // (worker, round), windows closed at epoch changes and round ends.
  StressStats CheckStats;
  std::thread Checker;
  if (Config.CheckWindows) {
    Checker = std::thread([this, &S, &Outcome, &CheckStats] {
      struct PerWorker {
        std::unique_ptr<WindowChecker> Chk;
        uint32_t Round = 0;
        uint64_t LastCommitSeq = 0;
      };
      std::vector<PerWorker> St(Config.Workers);

      auto harvest = [&](unsigned W) {
        PerWorker &P = St[W];
        if (!P.Chk)
          return;
        P.Chk->closeWindow();
        CheckStats.absorb(P.Chk->stats());
        if (!P.Chk->failure().empty()) {
          Outcome.Failures.push_back("worker " + std::to_string(W) +
                                     " round " + std::to_string(P.Round) +
                                     ": " + P.Chk->failure());
          if (Outcome.Dumps.size() < Config.MaxDumps) {
            std::string Text = P.Chk->dumpSchedule();
            Outcome.Dumps.push_back(Text);
            if (!Config.DumpDir.empty()) {
              std::string Path = Config.DumpDir + "/ppstress-w" +
                                 std::to_string(W) + "-r" +
                                 std::to_string(P.Round) + ".ppsched";
              std::ofstream Out(Path);
              if (Out) {
                Out << Text;
                Outcome.DumpFiles.push_back(Path);
              }
            }
          }
        }
        P.Chk.reset();
      };

      for (;;) {
        bool Progress = false;
        for (unsigned W = 0; W < Config.Workers; ++W) {
          StressRecord R;
          while (S.Rings[W]->tryPop(R)) {
            Progress = true;
            PerWorker &P = St[W];
            if (!P.Chk || R.Round != P.Round) {
              harvest(W);
              std::string Err;
              WindowCheckConfig RC =
                  buildRoundConfig(Config, S.Spec, W, R.Round, Err);
              P.Round = R.Round;
              if (Err.empty())
                P.Chk = std::make_unique<WindowChecker>(std::move(RC), Err);
              if (!Err.empty()) {
                Outcome.Failures.push_back("checker worker " +
                                           std::to_string(W) + ": " + Err);
                P.Chk.reset();
              }
            }
            // Arbiter contract, observed from the consumer side: one
            // worker's commit sequence numbers arrive strictly
            // increasing (rings are FIFO, workers commit in program
            // order).
            if (R.CommitSeq) {
              if (R.CommitSeq <= P.LastCommitSeq)
                Outcome.Failures.push_back(
                    "worker " + std::to_string(W) +
                    ": arbiter sequence regressed (" +
                    std::to_string(R.CommitSeq) + " after " +
                    std::to_string(P.LastCommitSeq) + ")");
              P.LastCommitSeq = R.CommitSeq;
            }
            if (P.Chk)
              P.Chk->feed(R);
          }
        }
        if (!Progress) {
          if (S.WorkersDone.load(std::memory_order_acquire) ==
              Config.Workers) {
            bool Empty = true;
            for (auto &Ring : S.Rings)
              Empty = Empty && Ring->size() == 0;
            if (Empty)
              break;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
      }
      for (unsigned W = 0; W < Config.Workers; ++W)
        harvest(W);
    });
  }

  for (std::thread &T : Workers)
    T.join();
  if (Checker.joinable())
    Checker.join();

  Outcome.Stats.ElapsedSec = secondsSince(T0);
  for (const StressStats &WS : WorkerStats)
    Outcome.Stats.absorb(WS);
  Outcome.Stats.absorb(CheckStats);
  for (const std::string &E : S.BuildErrors)
    Outcome.Failures.push_back(E);
  if (!S.Arbiter.monotonic())
    Outcome.Failures.push_back(
        "arbiter: per-stripe sequence monotonicity violated");
  return Outcome;
}
