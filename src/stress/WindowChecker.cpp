//===- stress/WindowChecker.cpp - Window replay validation -------------------===//

#include "stress/WindowChecker.h"

#include "check/Opacity.h"
#include "check/Serializability.h"
#include "fuzz/DiffRunner.h"
#include "lang/Printer.h"
#include "sim/Scenario.h"

#include <chrono>

using namespace pushpull;

WindowChecker::WindowChecker(WindowCheckConfig C, std::string &Error)
    : Config(std::move(C)) {
  if (!Config.Spec) {
    Error = "window checker has no spec";
    return;
  }
  Movers = std::make_unique<MoverChecker>(*Config.Spec, Config.Movers,
                                          Config.Pre);
  MachineConfig MC;
  // The shadow must *behave* identically to the live machine, so the
  // fault injection carries over; the trace is recorded because the
  // opacity classifier reads it (the live machine skips it for speed —
  // recording does not affect behavior).
  MC.DisabledCriterion = Config.DisabledCriterion;
  MC.RecordTrace = true;
  MC.RecordAudit = false;
  Shadow = std::make_unique<PushPullMachine>(*Config.Spec, *Movers, MC);
  for (const auto &P : Config.Threads)
    Shadow->addThread(P);
  std::string EngineError;
  Engine = makeEngine(Config.Engine, Config.EngineOpts, *Shadow, EngineError);
  if (!Engine)
    Error = "window checker engine: " + EngineError;
}

WindowChecker::~WindowChecker() = default;

void WindowChecker::fail(const std::string &Detail) {
  if (!Failure.empty())
    return;
  Failure = "window " + std::to_string(WindowEpoch) + " (after " +
            std::to_string(Picks.size()) + " steps): " + Detail;
  ++Stats.WindowFailures;
}

bool WindowChecker::feed(const StressRecord &R) {
  if (!Failure.empty() || !Engine)
    return false;
  if (!WindowOpen) {
    WindowEpoch = R.Epoch;
    WindowOpen = true;
  } else if (R.Epoch > WindowEpoch) {
    if (!closeWindow())
      return false;
    WindowEpoch = R.Epoch;
    WindowOpen = true;
  }

  Picks.push_back(R.Pick);
  if (R.Pick >= Shadow->threads().size()) {
    fail("recorded pick names nonexistent thread " + std::to_string(R.Pick));
    return false;
  }
  StepStatus S = Engine->step(R.Pick);
  const ThreadState &Th = Shadow->thread(R.Pick);
  uint32_t LSize = static_cast<uint32_t>(Th.L.size());
  uint32_t GSize = static_cast<uint32_t>(Shadow->global().size());
  uint32_t Commits = static_cast<uint32_t>(Shadow->committed().size());
  if (static_cast<uint8_t>(S) != R.Status || LSize != R.LSize ||
      GSize != R.GSize || Commits != R.Commits) {
    fail("shadow replay diverged at step " + std::to_string(R.Order) +
         " (thread " + std::to_string(R.Pick) + "): live {" +
         toString(static_cast<StepStatus>(R.Status)) +
         " L=" + std::to_string(R.LSize) + " G=" + std::to_string(R.GSize) +
         " commits=" + std::to_string(R.Commits) + "} vs shadow {" +
         toString(S) + " L=" + std::to_string(LSize) +
         " G=" + std::to_string(GSize) +
         " commits=" + std::to_string(Commits) + "}");
    return false;
  }
  return true;
}

bool WindowChecker::closeWindow() {
  if (!Failure.empty() || !Engine)
    return false;
  if (!WindowOpen)
    return true;
  WindowOpen = false;
  ++Stats.Windows;

  uint64_t CommitsNow = Shadow->committed().size();
  auto Start = std::chrono::steady_clock::now();
  if (CommitsNow > CheckedCommits) {
    // Atomic-oracle replay of everything committed so far, in commit
    // order — the Theorem 5.17 witness.  The committed projection only
    // grows, so each close re-adjudicates a genuine machine prefix.
    SerializabilityChecker Oracle(*Config.Spec, Config.Atomic, Config.Pre);
    SerializabilityVerdict V = Oracle.checkCommitOrder(*Shadow);
    if (V.Serializable == Tri::No)
      fail("atomic oracle: committed prefix not serializable in commit "
           "order — " +
           V.Detail);
    CheckedCommits = CommitsNow;
  }
  if (Failure.empty() && engineExpectedOpaque(Config.Engine)) {
    OpacityReport O = classifyTrace(Shadow->trace());
    if (!O.InOpaqueFragment)
      fail("opacity: " + std::to_string(O.UncommittedPulls) + "/" +
           std::to_string(O.TotalPulls) +
           " uncommitted pulls — outside the opaque fragment for engine " +
           Config.Engine);
  }
  uint64_t Ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
  Stats.WindowCheckNs += Ns;
  if (Ns > Stats.MaxWindowCheckNs)
    Stats.MaxWindowCheckNs = Ns;
  return Failure.empty();
}

std::string WindowChecker::dumpSchedule() const {
  std::string Out =
      "# ppstress window reproducer (replay with: ppstress --replay <file>\n"
      "# or plain pprun <file>)\n";
  if (!Failure.empty())
    Out += "# failure: " + Failure + "\n";
  Out += "spec " + Config.SpecKind;
  for (const auto &[K, V] : Config.SpecOpts)
    Out += " " + K + (V.empty() ? "" : "=" + V);
  Out += "\nengine " + Config.Engine;
  for (const auto &[K, V] : Config.EngineOpts)
    Out += " " + K + (V.empty() ? "" : "=" + V);
  Out += "\nschedule replay picks=";
  for (size_t I = 0; I < Picks.size(); ++I) {
    if (I)
      Out += ",";
    Out += std::to_string(Picks[I]);
  }
  Out += "\n";
  if (!Config.DisabledCriterion.empty())
    Out += "inject " + Config.DisabledCriterion + "\n";
  for (const auto &Txs : Config.Threads) {
    Out += "thread ";
    for (size_t I = 0; I < Txs.size(); ++I) {
      if (I)
        Out += "; ";
      Out += printCode(Txs[I]);
    }
    Out += "\n";
  }
  Out += "check serializability\ncheck opacity\n";
  return Out;
}

void pushpull::stampFingerprint(StressRecord &R, const PushPullMachine &M,
                                uint32_t Pick, StepStatus Status) {
  R.Pick = Pick;
  R.Status = static_cast<uint8_t>(Status);
  R.LSize = static_cast<uint32_t>(M.thread(Pick).L.size());
  R.GSize = static_cast<uint32_t>(M.global().size());
  R.Commits = static_cast<uint32_t>(M.committed().size());
}
