//===- stress/StressRunner.h - Real-concurrency stress runtime --*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ppstress runtime: N OS worker threads, each driving its own TM
/// engine over its own PUSH/PULL machine (ThreadsPerWorker logical
/// threads of seeded workload), all over one shared spec, through one
/// sharded CommitArbiter that assigns every commit a global sequence
/// number and groups commits into epoch windows.
///
/// Work is organized in *rounds*: a worker repeatedly regenerates a
/// fresh machine + engine + workload from (Seed, worker, round) and runs
/// it to quiescence, so the recorded history is deterministic per
/// (worker, round) and the checker can rebuild the identical
/// configuration from the same three numbers.  Every engine step is
/// recorded into the worker's SPSC RingTrace; a dedicated checker thread
/// drains all rings, shadow-replays each worker-round through a clean
/// machine (WindowChecker), and adjudicates each closed window against
/// the atomic oracle.  Failures dump `.ppsched` reproducers.
///
/// Concurrency invariants, for the TSan runs that gate this subsystem:
///  * each live machine (and engine, and MoverChecker) is confined to
///    its worker thread; each shadow machine to the checker thread;
///  * the shared spec's state table is internally synchronized, and is
///    the only semantic structure two threads ever touch concurrently;
///  * workers and checker communicate exclusively through the SPSC
///    rings plus the arbiter's atomics/stripe locks.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_STRESS_STRESSRUNNER_H
#define PUSHPULL_STRESS_STRESSRUNNER_H

#include "sim/Stats.h"
#include "stress/WindowChecker.h"

#include <map>
#include <string>
#include <vector>

namespace pushpull {

/// Stress-run knobs.
struct StressConfig {
  /// Symbolic spec descriptor; kinds as in scenarios ("register",
  /// "counter", "set", "map", "queue", "bank").  Domains default small so
  /// the oracle stays exact.
  std::string SpecKind = "counter";
  std::map<std::string, std::string> SpecOpts;
  /// Engine name and options.  A per-round "seed" option is derived and
  /// appended automatically.
  std::string Engine = "boosting";
  std::map<std::string, std::string> EngineOpts;
  /// OS worker threads, and logical machine threads per worker (>= 2, so
  /// intra-worker interleaving exists and criterion faults can bite).
  unsigned Workers = 4;
  unsigned ThreadsPerWorker = 2;
  /// Workload shape per round.
  unsigned TxPerThread = 3;
  unsigned OpsPerTx = 3;
  unsigned KeyRange = 3;
  unsigned ReadPct = 50;
  unsigned ZipfTheta = 0;
  /// Master seed; everything else derives from (Seed, worker, round).
  uint64_t Seed = 1;
  /// Rounds per worker (ignored when DurationMs > 0: then workers run
  /// rounds until the wall clock expires).
  unsigned Rounds = 6;
  uint64_t DurationMs = 0;
  /// Client think time after each commit, in microseconds.  Models
  /// latency-bound clients: throughput then scales with workers even on
  /// a single core (the E13 scaling mode).
  unsigned ThinkUs = 0;
  /// Arbiter shape.
  unsigned Stripes = 8;
  uint64_t WindowCommits = 16;
  /// Fault injection forwarded to every live and shadow machine.
  std::string DisabledCriterion;
  /// Validate windows via shadow replay + oracle (off = pure-throughput
  /// benchmarking).
  bool CheckWindows = true;
  /// Where failing windows dump `.ppsched` reproducers ("" = don't
  /// write files; the text still lands in StressOutcome::Dumps).
  std::string DumpDir;
  /// At most this many reproducers are dumped per run.
  unsigned MaxDumps = 4;
  /// Livelock guard per worker round.
  uint64_t MaxStepsPerRound = 200000;
  /// Ring capacity (power of two) per worker.
  size_t RingCapacity = 4096;
};

/// Everything one stress run produced.
struct StressOutcome {
  StressStats Stats;
  /// One line per detected failure (divergence, oracle No, fragment
  /// exit, arbiter order violation).
  std::vector<std::string> Failures;
  /// Rendered `.ppsched` reproducers for failed windows (first
  /// MaxDumps), and the paths they were written to when DumpDir is set.
  std::vector<std::string> Dumps;
  std::vector<std::string> DumpFiles;
  bool ok() const { return Failures.empty(); }
};

/// Rebuild the deterministic configuration of one (worker, round):
/// engine seed, workload programs, spec — exactly what the live worker
/// runs and the checker shadows.  Exposed for tests.
WindowCheckConfig buildRoundConfig(const StressConfig &C,
                                   std::shared_ptr<const SequentialSpec> Spec,
                                   unsigned Worker, uint32_t Round,
                                   std::string &Error);

/// Runs one stress configuration: spawns workers + checker, joins them,
/// aggregates.
class StressRunner {
public:
  explicit StressRunner(StressConfig Config) : Config(std::move(Config)) {}

  StressOutcome run();

private:
  StressConfig Config;
};

} // namespace pushpull

#endif // PUSHPULL_STRESS_STRESSRUNNER_H
