//===- stress/WindowChecker.h - Window replay validation --------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates one stress worker's captured schedule by *shadow replay*: a
/// clean single-threaded PushPullMachine + engine (same spec, same engine
/// options, same fault injection) is advanced by exactly the recorded
/// thread picks, one step per drained StressRecord.  Engines are
/// deterministic given their seed and the pick sequence, and each
/// worker's live machine is thread-confined, so live and shadow must
/// agree step for step — the checker compares a per-step fingerprint
/// (step status, local/global log sizes, commit count) and treats any
/// divergence as a failure (it means the live run was not the
/// deterministic function of its inputs it is supposed to be, i.e. a
/// data race or nondeterminism bug).
///
/// At every window boundary (arbiter epoch change) and at round end, the
/// shadow state is adjudicated semantically: the atomic oracle of
/// Theorem 5.17 replays the committed transactions in commit order, and
/// the rule trace is classified against the Section 6.1 opaque fragment.
/// A failed window dumps a `.ppsched` reproducer — a pprun scenario with
/// `schedule replay picks=...` (and `inject ...` when a fault was
/// planted) that re-executes the exact window deterministically.
///
/// Soundness of checking windows (prefixes) rather than only final
/// states: the oracle's verdict is about the committed projection, which
/// only ever grows at CMT, so every window boundary is a configuration
/// the live machine actually passed through; a serializable full run has
/// all prefixes serializable in commit order, hence a failing window is
/// a genuine counterexample, never an artifact of cutting early.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_STRESS_WINDOWCHECKER_H
#define PUSHPULL_STRESS_WINDOWCHECKER_H

#include "core/Atomic.h"
#include "core/Mover.h"
#include "core/Precongruence.h"
#include "sim/Stats.h"
#include "stress/RingTrace.h"
#include "tm/Engine.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pushpull {

class SequentialSpec;

/// Fill \p R's cross-check fields (pick, status, log sizes, commit count)
/// from \p M right after thread \p Pick was stepped with result
/// \p Status.  The live worker and the shadow checker both use this, so
/// the fingerprint definition cannot drift between the two sides.
void stampFingerprint(StressRecord &R, const PushPullMachine &M,
                      uint32_t Pick, StepStatus Status);

/// Everything needed to rebuild one worker-round deterministically.
struct WindowCheckConfig {
  /// Symbolic spec descriptor (kind + options), kept so reproducers can
  /// be rendered as standalone scenario files.
  std::string SpecKind;
  std::map<std::string, std::string> SpecOpts;
  /// The built spec (shared with the live worker; its state table is
  /// internally synchronized).
  std::shared_ptr<const SequentialSpec> Spec;
  std::string Engine = "optimistic";
  /// Must include the live engine's exact seed — shadow determinism
  /// depends on it.
  std::map<std::string, std::string> EngineOpts;
  /// The worker-round's logical thread programs.
  std::vector<std::vector<CodePtr>> Threads;
  /// Fault injection forwarded to both live and shadow machines (the
  /// shadow must *reproduce* the faulty run; the oracle is the
  /// independent ground truth that convicts it).
  std::string DisabledCriterion;
  /// Resource bounds for the oracle.
  AtomicLimits Atomic{64, 20000};
  PrecongruenceLimits Pre;
  MoverLimits Movers;
};

/// One worker-round's shadow machine plus the windowed validation state.
class WindowChecker {
public:
  /// Builds the shadow machine and engine.  On failure \p Error is set
  /// and ok() is false.
  WindowChecker(WindowCheckConfig Config, std::string &Error);
  ~WindowChecker();

  bool ok() const { return Engine != nullptr; }

  /// Advance the shadow by one recorded step and cross-check the
  /// fingerprint.  Closes the current window first when \p R's epoch is
  /// beyond the window being filled.  Returns false once a failure has
  /// been recorded (further records are ignored).
  bool feed(const StressRecord &R);

  /// Adjudicate everything fed since the last close (oracle + opacity).
  /// Called by feed() at epoch changes and by the runner at round end.
  /// Returns false on failure.
  bool closeWindow();

  /// Non-empty once any check failed; the first failure wins.
  const std::string &failure() const { return Failure; }

  /// Every pick fed so far, in order (the `.ppsched` schedule).
  const std::vector<uint32_t> &picks() const { return Picks; }

  /// Render the fed history as a standalone `.ppsched` scenario:
  /// spec/engine/schedule-replay/inject/thread directives plus the
  /// standard check battery.  Replayable by `ppstress --replay` and by
  /// plain `pprun`.
  std::string dumpSchedule() const;

  /// Windows closed, checker latency, failure counts.
  const StressStats &stats() const { return Stats; }

private:
  /// Record a failure (first one wins) with window context attached.
  void fail(const std::string &Detail);

  WindowCheckConfig Config;
  std::unique_ptr<MoverChecker> Movers;
  std::unique_ptr<PushPullMachine> Shadow;
  std::unique_ptr<TMEngine> Engine;

  std::vector<uint32_t> Picks;
  std::string Failure;
  /// Epoch of the window currently being filled (first fed record sets
  /// it).
  uint64_t WindowEpoch = 0;
  bool WindowOpen = false;
  /// Commits adjudicated by the last closed window (skip re-running the
  /// oracle when a window added no commits).
  uint64_t CheckedCommits = 0;
  StressStats Stats;
};

} // namespace pushpull

#endif // PUSHPULL_STRESS_WINDOWCHECKER_H
