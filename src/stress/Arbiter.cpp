//===- stress/Arbiter.cpp - Sharded commit arbiter ---------------------------===//

#include "stress/Arbiter.h"

using namespace pushpull;

CommitArbiter::CommitArbiter(unsigned Stripes, uint64_t WindowCommits)
    : NumStripes(Stripes ? Stripes : 1),
      Window(WindowCommits ? WindowCommits : 1),
      StripeArr(new Stripe[NumStripes]) {}

uint64_t CommitArbiter::admitCommit(uint64_t StripeKey) {
  Stripe &S = StripeArr[StripeKey % NumStripes];
  std::lock_guard<std::mutex> G(S.Lock);
  // fetch_add under the stripe lock: the global order is decided by the
  // atomic, the lock serializes same-stripe commits, and the combination
  // gives the per-stripe monotonicity the self-check asserts.
  uint64_t Mine = Seq.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (Mine <= S.LastSeq)
    OrderViolation.store(true, std::memory_order_release);
  S.LastSeq = Mine;
  return Mine;
}
