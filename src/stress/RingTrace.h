//===- stress/RingTrace.h - Lock-free SPSC schedule rings -------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The capture channel between one stress worker and the window checker: a
/// bounded single-producer/single-consumer ring of compact per-step
/// records.  The worker appends one StressRecord per engine step (thread
/// picked, step status, log-size/commit fingerprint); the checker drains
/// them, advances the worker's shadow machine by the same picks, and
/// cross-checks the fingerprints.
///
/// Lock-free in the usual SPSC sense: producer and consumer each own one
/// index and only *read* the other's (acquire/release), so neither ever
/// blocks on a lock the other holds.  A full ring back-pressures the
/// producer (tryPush returns false; the worker spins and counts it) — the
/// recording must stay bounded, and losing records would make the window
/// replay unsound.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_STRESS_RINGTRACE_H
#define PUSHPULL_STRESS_RINGTRACE_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

namespace pushpull {

/// One engine step, as captured by a stress worker.  Everything the
/// checker needs to (a) re-drive the shadow machine (Round, Pick) and
/// (b) cross-check it against the live run (Status, LSize, GSize,
/// Commits) and (c) window the stream (Epoch, CommitSeq).
struct StressRecord {
  /// Worker-local step index (0-based within the round).
  uint64_t Order = 0;
  /// Arbiter epoch at the time of the step (window id).
  uint64_t Epoch = 0;
  /// Global commit sequence granted by the arbiter (0 for non-commits).
  uint64_t CommitSeq = 0;
  /// Workload round this step belongs to (shadow machines are per round).
  uint32_t Round = 0;
  /// Logical thread the worker stepped.
  uint32_t Pick = 0;
  /// StepStatus the live engine returned, as its enum ordinal.
  uint8_t Status = 0;
  /// Fingerprint of the live machine right after the step: the picked
  /// thread's local-log length, the shared-log length, and the machine's
  /// total commit count.  Any divergence between live and shadow shows up
  /// here within one step.
  uint32_t LSize = 0;
  uint32_t GSize = 0;
  uint32_t Commits = 0;
};

/// Bounded SPSC ring buffer of StressRecords.
class RingTrace {
public:
  /// \p CapacityPow2 must be a power of two (masked indexing).
  explicit RingTrace(size_t CapacityPow2 = 1024)
      : Buf(CapacityPow2), Mask(CapacityPow2 - 1) {
    assert(CapacityPow2 >= 2 && (CapacityPow2 & Mask) == 0 &&
           "ring capacity must be a power of two");
  }

  RingTrace(const RingTrace &) = delete;
  RingTrace &operator=(const RingTrace &) = delete;

  /// Producer side.  False when the ring is full (caller spins/yields).
  bool tryPush(const StressRecord &R) {
    uint64_t T = Tail.load(std::memory_order_relaxed);
    uint64_t H = Head.load(std::memory_order_acquire);
    if (T - H >= Buf.size())
      return false;
    Buf[T & Mask] = R;
    Tail.store(T + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  False when the ring is empty.
  bool tryPop(StressRecord &R) {
    uint64_t H = Head.load(std::memory_order_relaxed);
    uint64_t T = Tail.load(std::memory_order_acquire);
    if (H == T)
      return false;
    R = Buf[H & Mask];
    Head.store(H + 1, std::memory_order_release);
    return true;
  }

  /// Records currently queued (either side may call; a racy but monotone
  /// estimate under concurrency, exact in quiescence).
  size_t size() const {
    uint64_t T = Tail.load(std::memory_order_acquire);
    uint64_t H = Head.load(std::memory_order_acquire);
    return static_cast<size_t>(T - H);
  }

  size_t capacity() const { return Buf.size(); }

private:
  std::vector<StressRecord> Buf;
  const uint64_t Mask;
  /// Consumer-owned read index and producer-owned write index, on
  /// separate cache lines so the two sides don't false-share.
  alignas(64) std::atomic<uint64_t> Head{0};
  alignas(64) std::atomic<uint64_t> Tail{0};
};

} // namespace pushpull

#endif // PUSHPULL_STRESS_RINGTRACE_H
