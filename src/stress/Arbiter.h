//===- stress/Arbiter.h - Sharded commit arbiter ----------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one genuinely shared mutable structure of the stress runtime: a
/// sharded arbiter that assigns every commit (across all workers) a
/// position in one global commit order, and counts commits into
/// epoch-numbered *windows* that the checker validates as units.
///
/// Each worker's machine is private, so PUSH/PULL semantics never race;
/// what real TM runtimes contend on is the commit path.  The arbiter
/// models that contention honestly: a commit locks one of S stripes
/// (chosen by a caller-supplied key, e.g. the committing worker's hot
/// key), then draws the next global sequence number from a single atomic.
/// Stripes keep lock hold times short and let disjoint-key commits
/// proceed in parallel; the atomic makes the order total.  This is the
/// surface TSan exercises.
///
/// The arbiter self-checks its own ordering contract: per stripe, the
/// sequence numbers drawn under that stripe's lock must be strictly
/// increasing.  A violation (torn lock, broken fence) is recorded and
/// reported — the stress harness checks the checker too.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_STRESS_ARBITER_H
#define PUSHPULL_STRESS_ARBITER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

namespace pushpull {

/// Sharded global commit sequencer with epoch windows.
class CommitArbiter {
public:
  /// \p Stripes locks over the commit tail; a new epoch opens every
  /// \p WindowCommits commits.
  explicit CommitArbiter(unsigned Stripes = 8, uint64_t WindowCommits = 32);

  CommitArbiter(const CommitArbiter &) = delete;
  CommitArbiter &operator=(const CommitArbiter &) = delete;

  /// Admit one commit: lock the stripe selected by \p StripeKey, draw the
  /// next global sequence number (1-based), and return it.  Thread-safe;
  /// called by every worker on every CMT.
  uint64_t admitCommit(uint64_t StripeKey);

  /// Current epoch = commits-so-far / WindowCommits.  Workers stamp each
  /// captured record with this; the checker closes a worker's window when
  /// the stamp advances.
  uint64_t epoch() const {
    return Seq.load(std::memory_order_acquire) / Window;
  }

  /// Total commits admitted so far.
  uint64_t commits() const { return Seq.load(std::memory_order_acquire); }

  unsigned stripes() const { return NumStripes; }
  uint64_t windowCommits() const { return Window; }

  /// True iff every stripe has only ever seen strictly increasing
  /// sequence numbers under its lock (the arbiter's ordering
  /// self-check).  Read after workers join.
  bool monotonic() const {
    return !OrderViolation.load(std::memory_order_acquire);
  }

private:
  struct Stripe {
    std::mutex Lock;
    /// Last sequence drawn under this stripe's lock (guarded by Lock).
    uint64_t LastSeq = 0;
  };

  const unsigned NumStripes;
  const uint64_t Window;
  /// Stripes are neither copyable nor movable (mutex), so they live in a
  /// fixed heap array.
  std::unique_ptr<Stripe[]> StripeArr;
  std::atomic<uint64_t> Seq{0};
  std::atomic<bool> OrderViolation{false};
};

} // namespace pushpull

#endif // PUSHPULL_STRESS_ARBITER_H
