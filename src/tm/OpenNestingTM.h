//===- tm/OpenNestingTM.h - Open nested transactions ------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Open nesting (Ni et al., cited in Sections 1/4/6.3): an *outer*
/// transaction contains open-nested segments whose abstract-level effects
/// commit — become visible to everyone — when the segment finishes, long
/// before the outer transaction does.  If the outer transaction later
/// aborts, the already-committed segments cannot be rolled back with
/// UNPUSH; instead *compensating actions* (abstract inverses: remove what
/// was added, re-put what was overwritten) run as new transactions.
///
/// In PUSH/PULL terms each open segment is its own machine transaction —
/// eagerly pushed (the paper notes the boosting-style "commutativity
/// requirement is sufficient" for PUSH criterion (ii)) and CMT-ed at
/// segment end — while the engine tracks, per outer transaction, the
/// compensation program accumulated so far.  An outer abort queues the
/// compensations (in reverse order) as front-of-queue transactions, the
/// model-level image of the compensating-action discipline.
///
/// Abort injection is configurable; the engine's counters expose how many
/// compensations ran, and tests check the compensated state matches a
/// run in which the outer transaction never executed.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_TM_OPENNESTINGTM_H
#define PUSHPULL_TM_OPENNESTINGTM_H

#include "tm/Engine.h"

#include <functional>
#include <map>
#include <vector>

namespace pushpull {

/// One outer transaction: a sequence of open-nested segment bodies.
struct OuterTx {
  std::vector<CodePtr> Segments;
};

/// Computes the compensating call for a committed operation, or nullopt
/// when the operation needs no compensation (e.g. a read, or an add that
/// did not insert).  Per-spec providers below implement Figure 2's
/// catch-block table, engine-side; compose them with inversesByObject.
using InverseFn =
    std::function<std::optional<MethodExpr>(const Operation &)>;

/// set.add(k)=1 ~ set.remove(k);  set.remove(k)=1 ~ set.add(k).
InverseFn setInverses();
/// map.put(k,v)=Absent ~ map.remove(k);  map.put(k,v)=old ~ map.put(k,old);
/// map.remove(k)=old ~ map.put(k,old).
InverseFn mapInverses();
/// c.inc(i) ~ c.dec(i);  c.dec(i) ~ c.inc(i);  c.add(i,k) ~ c.add(i,-k).
InverseFn counterInverses();
/// bank.deposit(a,k) ~ bank.withdraw(a,k);
/// bank.withdraw(a,k)=1 ~ bank.deposit(a,k).  (Deposits that clamped at
/// the cap are not exactly invertible; keep balances away from the cap.)
InverseFn bankInverses();
/// Route by the operation's object name; operations on unknown objects
/// compensate to nothing.
InverseFn inversesByObject(std::map<std::string, InverseFn> ByObject);

/// Engine options.
struct OpenNestingConfig {
  uint64_t Seed = 1;
  /// Probability (percent) that an outer transaction aborts between
  /// segments, triggering compensation of everything committed so far.
  unsigned OuterAbortPct = 0;
  /// At most this many injected outer aborts per outer transaction.
  unsigned MaxAbortsPerOuter = 1;
  /// Compensation table; must cover every state-changing method the
  /// outer transactions use.
  InverseFn Inverse = setInverses();
};

/// The open-nesting engine.  Construct with the per-thread outer
/// structure; the flattened segment bodies are what the machine sees.
class OpenNestingTM : public TMEngine {
public:
  OpenNestingTM(PushPullMachine &M, std::vector<std::vector<OuterTx>> Outer,
                OpenNestingConfig Config = {});

  /// Register the threads' programs on \p M (call before running; the
  /// constructor does this automatically).
  std::string name() const override { return "open-nesting"; }
  StepStatus step(TxId T) override;

  /// Boosting-style segments with compensations: all seven rules, but the
  /// catch-up pulls take only committed entries.
  uint32_t ruleMask() const override { return allRulesMask(); }
  bool pullsUncommitted() const override { return false; }

  /// Outer transactions that completed all segments.
  uint64_t outerCommits() const { return OuterCommits; }
  /// Outer aborts taken (each queues compensations).
  uint64_t outerAborts() const { return OuterAborts; }
  /// Compensating operations executed.
  uint64_t compensationsRun() const { return CompensationsRun; }

private:
  struct PerThread {
    Rng R{1};
    /// Outer transactions remaining, front = current.
    std::vector<OuterTx> Outers;
    /// Segments of the current outer already committed.
    size_t SegmentsDone = 0;
    /// Compensation calls for the committed segments, in execution order.
    std::vector<MethodExpr> Compensations;
    /// True while the queued transactions are compensations (their own
    /// commits must not re-register compensations).
    bool Compensating = false;
    unsigned AbortsThisOuter = 0;
  };

  /// Record compensations for the operations the just-committed machine
  /// transaction performed (read off the trace tail via committedLog).
  void recordCompensations(TxId T);
  StepStatus abortOuter(TxId T);

  OpenNestingConfig Config;
  std::vector<PerThread> Per;
  uint64_t OuterCommits = 0;
  uint64_t OuterAborts = 0;
  uint64_t CompensationsRun = 0;
};

} // namespace pushpull

#endif // PUSHPULL_TM_OPENNESTINGTM_H
