//===- tm/OptimisticTM.h - TL2/TinySTM-style optimism -----------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6.2: optimistic STMs (TL2, TinySTM, Intel STM) as a PUSH/PULL
/// strategy.
///
///   * Transactions begin by PULLing all committed operations (there are
///     never uncommitted ones in G between engine steps) — "simply viewing
///     the shared state".
///   * They then APP locally, sharing nothing.
///   * At commit time — an uninterleaved moment — they PUSH everything in
///     APP order and CMT.  PUSH criterion (i) is trivial (in-order), PUSH
///     criterion (ii) is vacuous (no concurrent uncommitted entries), and
///     PUSH criterion (iii) *is the read-set validation*: a stale read
///     fails `allowed(G . op)` exactly when a conflicting transaction
///     committed after our snapshot.
///   * On validation failure the transaction rewinds with UNAPP/UNPULL
///     only — an optimistic abort never needs UNPUSH — and retries.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_TM_OPTIMISTICTM_H
#define PUSHPULL_TM_OPTIMISTICTM_H

#include "tm/Engine.h"

#include <vector>

namespace pushpull {

/// Engine options.
struct OptimisticConfig {
  uint64_t Seed = 1;
};

/// The Section 6.2 optimistic engine.
class OptimisticTM : public TMEngine {
public:
  OptimisticTM(PushPullMachine &M, OptimisticConfig Config = {});

  std::string name() const override { return "optimistic(tl2-style)"; }
  StepStatus step(TxId T) override;

  /// Lazy publication: effects are pushed only in the commit phase and a
  /// failed validation rewinds with UNAPP/UNPULL — UNPUSH is unreachable.
  uint32_t ruleMask() const override {
    return allRulesMask() & ~ruleBit(RuleKind::UnPush);
  }
  /// Only committed entries are ever pulled (Section 6.1 fragment).
  bool pullsUncommitted() const override { return false; }

  /// Number of UNPUSH rules this engine ever used — stays zero, the
  /// Section 6.2 signature ("needn't UNPUSH").
  uint64_t unpushesUsed() const { return 0; }

private:
  struct PerThread {
    bool SnapshotDone = false;
    Rng R{1};
  };

  StepStatus commitPhase(TxId T);
  void abortAndRetry(TxId T);

  std::vector<PerThread> Per;
};

} // namespace pushpull

#endif // PUSHPULL_TM_OPTIMISTICTM_H
