//===- tm/EarlyReleaseTM.cpp - DSTM-style early release ---------------------===//

#include "tm/EarlyReleaseTM.h"

#include "lang/StepFin.h"

using namespace pushpull;

EarlyReleaseTM::EarlyReleaseTM(PushPullMachine &M, EarlyReleaseConfig Config)
    : TMEngine(M) {
  Rng Root(Config.Seed);
  Per.resize(M.threads().size());
  for (PerThread &P : Per)
    P.R = Root.split();
}

StepStatus EarlyReleaseTM::abortSelf(TxId T) {
  OpsDiscarded += M->thread(T).L.ownOps().size();
  [[maybe_unused]] bool Ok = rewindAll(T);
  assert(Ok && "early-release rewind cannot be refused: nobody pulls our "
               "uncommitted effects");
  ++Aborts;
  return StepStatus::Aborted;
}

StepStatus EarlyReleaseTM::step(TxId T) {
  const ThreadState &Th = M->thread(T);
  if (Th.done())
    return StepStatus::Finished;

  if (!Th.InTx) {
    M->beginTx(T);
    return StepStatus::Progress;
  }

  if (fin(Th.Code)) {
    // Release phase: drop pulled read handles we no longer depend on
    // (UNPULL criterion (i) decides "no longer depend").
    for (size_t I = M->thread(T).L.size(); I > 0; --I) {
      const LocalEntry &E = M->thread(T).L[I - 1];
      if (E.Kind == LocalKind::Pulled && M->unpull(T, I - 1).Applied)
        ++Releases;
    }
    if (!M->commit(T).Applied)
      return abortSelf(T); // A dependency was left: give up and retry.
    return StepStatus::Committed;
  }

  // View maintenance: pull newly committed operations.
  for (size_t GI = 0; GI < M->global().size(); ++GI) {
    const GlobalEntry &E = M->global()[GI];
    if (E.Kind == GlobalKind::Committed && !Th.L.contains(E.Op.Id))
      M->pull(T, GI);
  }

  std::vector<AppChoice> Choices = M->appChoices(T);
  if (Choices.empty())
    return abortSelf(T);
  const AppChoice &C = Choices[Per[T].R.below(Choices.size())];
  size_t CompIdx = Per[T].R.below(C.Completions.size());
  if (!M->app(T, C.StepIdx, CompIdx).Applied)
    return abortSelf(T);

  // Eager publication; a rejected push is an *early* conflict detection
  // against a still-running peer.
  size_t Last = M->thread(T).L.size() - 1;
  if (!M->push(T, Last).Applied)
    return abortSelf(T);
  return StepStatus::Progress;
}
