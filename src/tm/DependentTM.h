//===- tm/DependentTM.h - Dependent transactions ----------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6.5, second half: dependent transactions (Ramadan et al.) —
/// the flagship *non-opaque* behaviour.  A transaction T becomes dependent
/// on T' by PULLing an effect T' PUSHed before committing:
///
///   * T may keep running and publishing — PUSH criterion (ii) exempts
///     operations T has pulled into L, so the dependency does not block
///     progress;
///   * T cannot CMT before T' does — CMT criterion (iii) requires every
///     pulled operation to be committed; the engine surfaces this as
///     commit gating;
///   * if T' aborts, T must *detangle*: T' cannot even UNPUSH the pulled
///     effect while T's log depends on it (UNPUSH criterion (ii)), so T
///     rewinds backwards exactly far enough to UNPULL the dead effect —
///     "T must only move backwards insofar as to detangle from T'" — and
///     then re-executes forward; the cascade is partial, not total.
///
/// Voluntary aborts are injected with configurable probability to
/// exercise the cascade machinery (E7).  Dependency cycles (T1 <-> T2)
/// gate both commits; a stuck-commit threshold breaks them by aborting
/// one party.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_TM_DEPENDENTTM_H
#define PUSHPULL_TM_DEPENDENTTM_H

#include "tm/Engine.h"

#include <set>
#include <vector>

namespace pushpull {

/// Engine options.
struct DependentConfig {
  uint64_t Seed = 1;
  /// Probability (percent) that a transaction voluntarily aborts at any
  /// step, to exercise cascades.
  unsigned AbortChancePct = 0;
  /// Pull other transactions' uncommitted effects when possible.
  bool PullUncommitted = true;
  /// Section 6.1's refinement: pull an uncommitted effect only when every
  /// method reachable in our remaining code commutes with it
  /// (pullCommutationSafe), so the run stays *observationally* opaque
  /// even though it leaves the no-uncommitted-pulls fragment.
  bool OnlyCommutationSafePulls = false;
  /// Steps a commit may stay gated before suspecting a dependency cycle
  /// and self-aborting.
  unsigned StuckCommitThreshold = 16;
  /// After an abort or detangle, refrain from pulling uncommitted
  /// effects for this many steps.  Without the cooldown, cyclically
  /// dependent transactions re-entangle deterministically and livelock:
  /// A aborts, B detangles, both re-run, re-pull each other, repeat.
  unsigned ReentangleCooldown = 8;
};

/// The Section 6.5 dependent-transactions engine.
class DependentTM : public TMEngine {
public:
  DependentTM(PushPullMachine &M, DependentConfig Config = {});

  std::string name() const override { return "dependent(ramadan-style)"; }
  StepStatus step(TxId T) override;

  /// All seven rules; pulling *uncommitted* effects is the whole point of
  /// the dependent-transaction design (and why it is not opaque).
  uint32_t ruleMask() const override { return allRulesMask(); }
  bool pullsUncommitted() const override { return true; }

  /// Dependencies established (uncommitted pulls).
  uint64_t dependenciesFormed() const { return DependenciesFormed; }
  /// Cascading (detangle) aborts, as opposed to voluntary ones.
  uint64_t cascadeAborts() const { return CascadeAborts; }
  /// Commits that had to wait for a dependency to commit first.
  uint64_t gatedCommits() const { return GatedCommits; }
  /// Publications (PUSHes) rejected while a pulled dependency was still
  /// uncommitted — the other face of commit gating: a dependent effect
  /// cannot even reach the shared log before its dependency commits.
  uint64_t gatedPublications() const { return GatedPublications; }

private:
  struct PerThread {
    Rng R{1};
    std::set<TxId> DependsOn;
    bool WantsAbort = false;
    unsigned StuckCommit = 0;
    unsigned Cooldown = 0;
  };

  /// Rewind just far enough to drop every pulled entry that is dead (no
  /// longer in G) or owned by an aborting thread.  Returns true if any
  /// detangling happened.
  bool detangle(TxId T);
  void recomputeDependencies(TxId T);
  StepStatus tryVoluntaryAbort(TxId T);

  DependentConfig Config;
  std::vector<PerThread> Per;
  uint64_t DependenciesFormed = 0;
  uint64_t CascadeAborts = 0;
  uint64_t GatedCommits = 0;
  uint64_t GatedPublications = 0;
};

} // namespace pushpull

#endif // PUSHPULL_TM_DEPENDENTTM_H
