//===- tm/Engine.h - TM algorithm engines -----------------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TM *engine* is the executable form of a Section 6 case study: a
/// strategy that drives threads through the PUSH/PULL machine in one
/// algorithm's characteristic rule pattern (optimistic TMs PUSH at commit,
/// pessimistic ones right after APP, hybrids a mixture — Section 2).
/// Engines never touch logs directly; every effect goes through a machine
/// rule, whose criteria the machine validates.  An engine bug that would
/// break a side-condition is therefore *rejected*, not silently serialized.
///
/// The scheduler calls step(T) to advance thread T by one algorithm step.
/// One step may perform several machine rules when the algorithm requires
/// an uninterleaved sequence (e.g. an optimistic commit's push-all+CMT):
/// machine rule calls are atomic, and the scheduler only interleaves
/// between engine steps, which models "at an uninterleaved moment".
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_TM_ENGINE_H
#define PUSHPULL_TM_ENGINE_H

#include "core/Machine.h"
#include "support/Rng.h"

#include <string>

namespace pushpull {

/// What an engine step did for the scheduler's bookkeeping.
enum class StepStatus {
  Progress,  ///< Advanced (APP/PUSH/PULL/begin/...).
  Blocked,   ///< Could not advance now (lock held, waiting on another tx).
  Committed, ///< This step performed a CMT.
  Aborted,   ///< This step rolled the transaction back (it will retry).
  Finished,  ///< Thread has no work left.
};

std::string toString(StepStatus S);

/// Base class for the Section 6 algorithm engines.
class TMEngine {
public:
  explicit TMEngine(PushPullMachine &M) : M(&M) {}
  virtual ~TMEngine();

  /// Algorithm name, e.g. "optimistic(tl2-style)".
  virtual std::string name() const = 0;

  /// Advance thread \p T by one algorithm step.
  virtual StepStatus step(TxId T) = 0;

  /// Total transaction aborts (rollback-and-retry events) so far.
  uint64_t aborts() const { return Aborts; }

  PushPullMachine &machine() { return *M; }
  /// Const view for observers (the stress runner's capture hooks read
  /// log sizes and commit counts between steps without mutation rights).
  const PushPullMachine &machine() const { return *M; }

protected:
  /// Roll the in-progress transaction of \p T all the way back: from the
  /// tail of the local log, UNPULL pulled entries, UNPUSH+UNAPP pushed
  /// ones, UNAPP unpushed ones.  Afterwards the thread's code and stack
  /// are back at the otx rewind point (each UNAPP restores the saved
  /// pre-code/pre-stack), the transaction is still in progress, and the
  /// engine may re-execute it.  Returns false if some backward rule was
  /// rejected (e.g. another transaction still depends on a pushed op).
  bool rewindAll(TxId T);

  /// Partial rewind: pop local-log entries from the tail until only
  /// \p KeepEntries remain (the Section 7 "rewind some code" move and the
  /// dependent-transaction detangle).  Returns false on rejection.
  bool rewindTo(TxId T, size_t KeepEntries);

  /// Pop exactly one entry off the tail of T's local log with the
  /// appropriate backward rule(s).  Returns false on rejection.
  bool popTail(TxId T);

  PushPullMachine *M;
  uint64_t Aborts = 0;
};

} // namespace pushpull

#endif // PUSHPULL_TM_ENGINE_H
