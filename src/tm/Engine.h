//===- tm/Engine.h - TM algorithm engines -----------------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TM *engine* is the executable form of a Section 6 case study: a
/// strategy that drives threads through the PUSH/PULL machine in one
/// algorithm's characteristic rule pattern (optimistic TMs PUSH at commit,
/// pessimistic ones right after APP, hybrids a mixture — Section 2).
/// Engines never touch logs directly; every effect goes through a machine
/// rule, whose criteria the machine validates.  An engine bug that would
/// break a side-condition is therefore *rejected*, not silently serialized.
///
/// The scheduler calls step(T) to advance thread T by one algorithm step.
/// One step may perform several machine rules when the algorithm requires
/// an uninterleaved sequence (e.g. an optimistic commit's push-all+CMT):
/// machine rule calls are atomic, and the scheduler only interleaves
/// between engine steps, which models "at an uninterleaved moment".
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_TM_ENGINE_H
#define PUSHPULL_TM_ENGINE_H

#include "core/Machine.h"
#include "support/Rng.h"

#include <string>

namespace pushpull {

/// What an engine step did for the scheduler's bookkeeping.
enum class StepStatus {
  Progress,  ///< Advanced (APP/PUSH/PULL/begin/...).
  Blocked,   ///< Could not advance now (lock held, waiting on another tx).
  Committed, ///< This step performed a CMT.
  Aborted,   ///< This step rolled the transaction back (it will retry).
  Finished,  ///< Thread has no work left.
};

std::string toString(StepStatus S);

/// Bit of rule \p K within an engine rule mask (see TMEngine::ruleMask).
inline constexpr uint32_t ruleBit(RuleKind K) {
  return 1u << static_cast<unsigned>(K);
}

/// Mask of all seven Figure 5 rules.
inline constexpr uint32_t allRulesMask() {
  return ruleBit(RuleKind::App) | ruleBit(RuleKind::UnApp) |
         ruleBit(RuleKind::Push) | ruleBit(RuleKind::UnPush) |
         ruleBit(RuleKind::Pull) | ruleBit(RuleKind::UnPull) |
         ruleBit(RuleKind::Commit);
}

/// Base class for the Section 6 algorithm engines.
class TMEngine {
public:
  explicit TMEngine(PushPullMachine &M) : M(&M) {}
  virtual ~TMEngine();

  /// Algorithm name, e.g. "optimistic(tl2-style)".
  virtual std::string name() const = 0;

  /// Advance thread \p T by one algorithm step.
  virtual StepStatus step(TxId T) = 0;

  // -- Static guard introspection (consumed by ppcheck) --------------------

  /// Which machine rules this engine's strategy can ever attempt, as an
  /// or-of-ruleBit mask.  This is a *static claim about the algorithm*,
  /// not a runtime observation: the criterion-obligation audit restricts
  /// its rule probes to this mask, and the fuzzer's per-engine
  /// expected-rule masks (fuzz/DiffRunner.h) are cross-checked against it
  /// in tests.  The conservative default claims every rule.
  virtual uint32_t ruleMask() const { return allRulesMask(); }

  /// Does the strategy ever PULL an *uncommitted* global entry?  Only the
  /// dependent-transaction design does; everything else stays inside the
  /// Section 6.1 opaque fragment, and the audit skips uncommitted-entry
  /// PULL probes for it.  Conservative default: yes.
  virtual bool pullsUncommitted() const { return true; }

  /// Total transaction aborts (rollback-and-retry events) so far.
  uint64_t aborts() const { return Aborts; }

  PushPullMachine &machine() { return *M; }
  /// Const view for observers (the stress runner's capture hooks read
  /// log sizes and commit counts between steps without mutation rights).
  const PushPullMachine &machine() const { return *M; }

protected:
  /// Roll the in-progress transaction of \p T all the way back: from the
  /// tail of the local log, UNPULL pulled entries, UNPUSH+UNAPP pushed
  /// ones, UNAPP unpushed ones.  Afterwards the thread's code and stack
  /// are back at the otx rewind point (each UNAPP restores the saved
  /// pre-code/pre-stack), the transaction is still in progress, and the
  /// engine may re-execute it.  Returns false if some backward rule was
  /// rejected (e.g. another transaction still depends on a pushed op).
  bool rewindAll(TxId T);

  /// Partial rewind: pop local-log entries from the tail until only
  /// \p KeepEntries remain (the Section 7 "rewind some code" move and the
  /// dependent-transaction detangle).  Returns false on rejection.
  bool rewindTo(TxId T, size_t KeepEntries);

  /// Pop exactly one entry off the tail of T's local log with the
  /// appropriate backward rule(s).  Returns false on rejection.
  bool popTail(TxId T);

  PushPullMachine *M;
  uint64_t Aborts = 0;
};

} // namespace pushpull

#endif // PUSHPULL_TM_ENGINE_H
