//===- tm/HybridHtmBoostingTM.h - Section 7 hybrid --------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 7: a single transaction mixing *boosted* objects (skiplist,
/// hashtable — abstract locks, eager PUSH at the linearization point) with
/// *HTM-controlled* words (size, x, y — APPlied locally, PUSHed in a batch
/// before commit).  The paper uses this to show why PUSH/PULL's permission
/// to publish and retract out of order is not an academic curiosity:
///
///   * HTM operations are pushed *after* boosted operations that followed
///     them locally — PUSH criterion (i)'s mover side-condition at work;
///   * on an HTM conflict, the HTM batch is UNPUSHed while the boosted
///     effects (expensive to replay) STAY in the shared log — the
///     signature Figure 7 sequence UNPUSH(x++), UNPUSH(size++),
///     UNAPP(x++), APP(y++), PUSH(size++), PUSH(y++), CMT;
///   * the transaction rewinds only as far as the conflicting access and
///     marches forward again, possibly down a different branch.
///
/// HTM conflicts are injected with configurable probability (the
/// substitute for Haswell's cache-coherence aborts) and also arise
/// organically from rejected pushes.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_TM_HYBRIDHTMBOOSTINGTM_H
#define PUSHPULL_TM_HYBRIDHTMBOOSTINGTM_H

#include "tm/BoostingTM.h"
#include "tm/Engine.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace pushpull {

/// Engine options.
struct HybridConfig {
  uint64_t Seed = 1;
  /// Objects controlled by (simulated) HTM: pushed as a pre-commit batch.
  std::set<std::string> HtmObjects;
  /// Probability (percent) that the HTM signals an abort during a
  /// publication attempt.
  unsigned ConflictChancePct = 0;
  /// At most this many injected conflicts per transaction (progress).
  unsigned MaxInjectedPerTx = 1;
  /// Consecutive blocked lock acquisitions before self-abort.
  unsigned DeadlockThreshold = 8;
};

/// The Section 7 hybrid engine.  Objects not listed in HtmObjects are
/// treated as boosted (locked, eagerly pushed).
class HybridHtmBoostingTM : public TMEngine {
public:
  HybridHtmBoostingTM(PushPullMachine &M, HybridConfig Config);

  std::string name() const override { return "hybrid(htm+boosting)"; }
  StepStatus step(TxId T) override;

  /// Union of its HTM and boosting halves: all seven rules, committed
  /// pulls only.
  uint32_t ruleMask() const override { return allRulesMask(); }
  bool pullsUncommitted() const override { return false; }

  /// HTM batch retractions performed (each = one Figure 7-style
  /// UNPUSH-batch + partial UNAPP + re-execute).
  uint64_t htmRetractions() const { return HtmRetractions; }
  /// Boosted operations that *survived* an HTM retraction in the shared
  /// log (the replay work saved, Section 7's point).
  uint64_t boostedOpsPreserved() const { return BoostedOpsPreserved; }

private:
  struct PerThread {
    Rng R{1};
    std::set<AbstractLock> Held;
    unsigned BlockedStreak = 0;
    unsigned InjectedThisTx = 0;
  };

  bool isHtm(const std::string &Object) const {
    return Config.HtmObjects.count(Object) != 0;
  }
  bool tryAcquire(TxId T, const AbstractLock &Lk);
  void releaseAll(TxId T);
  void pullCommittedFor(TxId T, const std::string &Object, Value Key,
                        bool WholeObject);
  StepStatus abortSelf(TxId T);
  StepStatus publicationPhase(TxId T);
  /// Figure 7's abort path: UNPUSH the HTM batch (reverse push order),
  /// UNAPP back past the conflicting HTM access, leave boosted effects in
  /// the shared log.
  void htmRetract(TxId T, const std::vector<size_t> &PushedNow);

  HybridConfig Config;
  std::map<AbstractLock, TxId> LockTable;
  std::vector<PerThread> Per;
  uint64_t HtmRetractions = 0;
  uint64_t BoostedOpsPreserved = 0;
};

} // namespace pushpull

#endif // PUSHPULL_TM_HYBRIDHTMBOOSTINGTM_H
