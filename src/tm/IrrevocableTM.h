//===- tm/IrrevocableTM.h - Welc et al. irrevocability ----------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6.4: the mixed model of Welc et al. — at most one *irrevocable*
/// (pessimistic) transaction runs among many optimistic ones.  The
/// irrevocable thread "PUSHes its effects instantaneously after APP"
/// (eager publication) and never rolls back: its pushes can only be
/// stalled, never invalidated, because
///
///   * PUSH criterion (ii) is vacuous for it between steps (optimistic
///     peers keep uncommitted pushes inside their own commit step), and
///   * PUSH criterion (iii) holds because it catches up on committed
///     operations in the same step as each APP.
///
/// Optimistic peers conversely may fail commit-time validation against
/// the irrevocable thread's uncommitted pushed effects (PUSH criterion
/// (ii)) or its committed ones (criterion (iii)) and abort-retry — the
/// asymmetry that makes irrevocability work.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_TM_IRREVOCABLETM_H
#define PUSHPULL_TM_IRREVOCABLETM_H

#include "tm/Engine.h"

#include <vector>

namespace pushpull {

/// Engine options.
struct IrrevocableConfig {
  uint64_t Seed = 1;
  /// Which thread is the irrevocable one.
  TxId IrrevocableThread = 0;
};

/// The Section 6.4 mixed engine.
class IrrevocableTM : public TMEngine {
public:
  IrrevocableTM(PushPullMachine &M, IrrevocableConfig Config = {});

  std::string name() const override { return "mixed(irrevocable)"; }
  StepStatus step(TxId T) override;

  /// Irrevocable transactions never unpush (revocable ones run the
  /// optimistic lazy-publication strategy, which doesn't either).
  uint32_t ruleMask() const override {
    return allRulesMask() & ~ruleBit(RuleKind::UnPush);
  }
  bool pullsUncommitted() const override { return false; }

  /// Rollback rules (UNAPP/UNPUSH/UNPULL) ever executed by the
  /// irrevocable thread — must stay zero.
  uint64_t irrevocableRollbacks() const;

private:
  struct PerThread {
    bool SnapshotDone = false;
    Rng R{1};
  };

  StepStatus stepIrrevocable(TxId T);
  StepStatus stepOptimistic(TxId T);
  void abortAndRetry(TxId T);

  IrrevocableConfig Config;
  std::vector<PerThread> Per;
};

} // namespace pushpull

#endif // PUSHPULL_TM_IRREVOCABLETM_H
