//===- tm/HtmTM.h - Simulated hardware transactional memory -----*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A software-simulated HTM (Intel Haswell RTM / IBM-style), substituting
/// for the hardware the paper cites.  In PUSH/PULL terms HTM is the eager
/// extreme: every APP is followed immediately by a PUSH (the cache line
/// becomes globally visible to the coherence protocol), and a conflict
/// aborts the whole transaction — UNPUSH of everything pushed, UNAPP of
/// everything applied, retry.
///
/// Two conflict regimes, reproducing the hardware/model gap:
///
///   * Semantic (WordGranularity=false): a conflict is a *rejected PUSH* —
///     the model's criteria are the conflict detector.  Commutative
///     operations (e.g. blind counter increments) run concurrently.
///   * Word-granular (WordGranularity=true): like real cache-line
///     tracking, any read/write or write/write overlap on the same word
///     with another in-flight hardware transaction aborts, even when the
///     operations commute semantically.  The gap between the two regimes
///     (falseConflicts) is measurable — the motivation the paper gives for
///     combining HTM with abstract-level techniques (Section 7).
///
/// After MaxRetries consecutive aborts a thread falls back to a global
/// lock (the standard RTM fallback path), serializing itself.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_TM_HTMTM_H
#define PUSHPULL_TM_HTMTM_H

#include "tm/Engine.h"

#include <set>
#include <vector>

namespace pushpull {

/// Engine options.
struct HtmConfig {
  uint64_t Seed = 1;
  /// Detect conflicts at word granularity (hardware-conservative) instead
  /// of relying on the semantic criteria alone.
  bool WordGranularity = false;
  /// Consecutive aborts before taking the global fallback lock.
  unsigned MaxRetries = 4;
};

/// The simulated-HTM engine.
class HtmTM : public TMEngine {
public:
  HtmTM(PushPullMachine &M, HtmConfig Config = {});

  std::string name() const override {
    return Config.WordGranularity ? "htm(word-granular)" : "htm(semantic)";
  }
  StepStatus step(TxId T) override;

  /// Conflict aborts rewind eagerly-pushed effects: all seven rules,
  /// committed pulls only.
  uint32_t ruleMask() const override { return allRulesMask(); }
  bool pullsUncommitted() const override { return false; }

  /// Word-granularity aborts whose operations would have been accepted by
  /// the semantic criteria — hardware false conflicts.
  uint64_t falseConflicts() const { return FalseConflicts; }
  uint64_t fallbackAcquisitions() const { return FallbackAcquisitions; }

private:
  struct PerThread {
    Rng R{1};
    unsigned Retries = 0;
    bool HoldsFallback = false;
    /// (object, word) read/write footprints of the in-flight transaction.
    std::set<std::pair<std::string, Value>> ReadSet, WriteSet;
  };

  StepStatus abortSelf(TxId T);
  bool wordConflict(TxId T, const ResolvedCall &Call, bool IsWrite) const;
  static std::pair<std::string, Value> wordOf(const ResolvedCall &Call);
  static bool isWriteLike(const ResolvedCall &Call);

  HtmConfig Config;
  std::vector<PerThread> Per;
  static constexpr TxId NoOwner = static_cast<TxId>(-1);
  TxId FallbackLock = NoOwner;
  uint64_t FalseConflicts = 0;
  uint64_t FallbackAcquisitions = 0;
};

} // namespace pushpull

#endif // PUSHPULL_TM_HTMTM_H
