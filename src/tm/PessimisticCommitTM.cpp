//===- tm/PessimisticCommitTM.cpp - Matveev-Shavit pessimism ----------------===//

#include "tm/PessimisticCommitTM.h"

#include "lang/StepFin.h"

using namespace pushpull;

PessimisticCommitTM::PessimisticCommitTM(PushPullMachine &M,
                                         PessimisticConfig Config)
    : TMEngine(M), Config(std::move(Config)) {
  Rng Root(this->Config.Seed);
  Per.resize(M.threads().size());
  for (PerThread &P : Per)
    P.R = Root.split();
}

bool PessimisticCommitTM::isReadLike(const ResolvedCall &Call) const {
  return Config.ReadMethods.count(Call.Method) != 0;
}

void PessimisticCommitTM::catchUpCommitted(TxId T) {
  // Bring the local view up to date with the committed log.  Pull
  // rejections are fine to skip: a rejected pull means the committed op
  // conflicts with something we already did, and the criteria-guarded
  // PUSH of our later operations will stall us until it is safe — the
  // pessimistic waiting discipline.
  const ThreadState &Th = M->thread(T);
  for (size_t GI = 0; GI < M->global().size(); ++GI) {
    const GlobalEntry &E = M->global()[GI];
    if (E.Kind != GlobalKind::Committed || Th.L.contains(E.Op.Id))
      continue;
    M->pull(T, GI);
  }
}

StepStatus PessimisticCommitTM::step(TxId T) {
  const ThreadState &Th = M->thread(T);
  if (Th.done())
    return StepStatus::Finished;

  if (!Th.InTx) {
    M->beginTx(T);
    // Classify: a transaction that may write needs the writer lock for
    // its whole lifetime (one writer at a time).
    Per[T].IsWriter = false;
    for (const MethodExpr &ME : reachableMethods(M->thread(T).Code)) {
      ResolvedCall Probe;
      Probe.Method = ME.Method;
      if (!isReadLike(Probe)) {
        Per[T].IsWriter = true;
        break;
      }
    }
    Per[T].Began = false;
    return StepStatus::Progress;
  }

  if (!Per[T].Began) {
    if (Per[T].IsWriter) {
      if (WriterLock != NoWriter && WriterLock != T)
        return StepStatus::Blocked;
      WriterLock = T;
    }
    Per[T].Began = true;
    return StepStatus::Progress;
  }

  if (fin(Th.Code))
    return commitPhase(T);

  catchUpCommitted(T);
  std::vector<AppChoice> Choices = M->appChoices(T);
  if (Choices.empty())
    return StepStatus::Blocked; // Wait for the world to change.
  const AppChoice &C = Choices[Per[T].R.below(Choices.size())];
  auto Call = C.Item.Call.resolve(M->thread(T).Sigma);
  size_t CompIdx = Per[T].R.below(C.Completions.size());
  if (!M->app(T, C.StepIdx, CompIdx).Applied)
    return StepStatus::Blocked;

  if (Call && isReadLike(*Call)) {
    // Reads of committed state publish immediately.  A read that saw one
    // of our own *buffered* writes cannot be published yet (G does not
    // contain the write), so its push is rejected — leave it npshd and
    // let the commit phase push it right after the write, in local order.
    size_t Last = M->thread(T).L.size() - 1;
    M->push(T, Last);
  }
  return StepStatus::Progress;
}

StepStatus PessimisticCommitTM::commitPhase(TxId T) {
  // All-or-nothing push of the buffered writes.  If any push is rejected
  // (PUSH criterion (ii): an uncommitted reader of that location is still
  // live), roll back the pushes performed in this step and retry the whole
  // phase later — no partial writer state ever crosses a step boundary,
  // and nobody aborts.
  std::vector<size_t> PushedNow;
  for (size_t I : M->thread(T).L.indicesOf(LocalKind::NotPushed)) {
    if (M->push(T, I).Applied) {
      PushedNow.push_back(I);
      continue;
    }
    for (size_t J = PushedNow.size(); J > 0; --J) {
      [[maybe_unused]] bool Ok = M->unpush(T, PushedNow[J - 1]).Applied;
      assert(Ok && "rolling back our own just-pushed op cannot fail");
    }
    ++WriterWaits;
    return StepStatus::Blocked;
  }
  // A pessimistic commit cannot fail (everything pushed, pulls are
  // committed-only); block defensively rather than wedge if it ever does.
  if (!M->commit(T).Applied)
    return StepStatus::Blocked;
  if (WriterLock == T)
    WriterLock = NoWriter;
  return StepStatus::Committed;
}
