//===- tm/BoostingTM.cpp - Transactional boosting ---------------------------===//

#include "tm/BoostingTM.h"

#include "lang/StepFin.h"

using namespace pushpull;

BoostingTM::BoostingTM(PushPullMachine &M, BoostingConfig Config)
    : TMEngine(M), Config(Config) {
  Rng Root(Config.Seed);
  Per.resize(M.threads().size());
  for (PerThread &P : Per)
    P.R = Root.split();
}

AbstractLock BoostingTM::lockFor(const ResolvedCall &Call) const {
  // Key-granular locking when the method has a key argument (Figure 2
  // locks `key`); whole-object lock otherwise.
  if (Config.KeyGranularLocks && !Call.Args.empty())
    return {Call.Object, Call.Args[0]};
  return {Call.Object, Value(-1)};
}

bool BoostingTM::tryAcquire(TxId T, const AbstractLock &Lk) {
  // A whole-object lock conflicts with everything on the object; a key
  // lock conflicts with the same key and with the whole-object lock.
  for (const auto &[Held, Owner] : LockTable) {
    if (Owner == T || Held.first != Lk.first)
      continue;
    if (Held.second == Lk.second || Held.second == Value(-1) ||
        Lk.second == Value(-1))
      return false;
  }
  LockTable[Lk] = T;
  Per[T].Held.insert(Lk);
  return true;
}

void BoostingTM::releaseAll(TxId T) {
  for (const AbstractLock &Lk : Per[T].Held)
    LockTable.erase(Lk);
  Per[T].Held.clear();
}

void BoostingTM::pullCommittedHistory(TxId T, const AbstractLock &Lk) {
  // Boosting reads the shared object in place; in log terms the local
  // view must contain the committed history of the locked key before the
  // first APP touches it.  The lock guarantees no new committed ops on
  // this key appear until we release, so pulling once per acquisition
  // keeps the view exact.
  const ThreadState &Th = M->thread(T);
  for (size_t GI = 0; GI < M->global().size(); ++GI) {
    const GlobalEntry &E = M->global()[GI];
    if (E.Kind != GlobalKind::Committed || Th.L.contains(E.Op.Id))
      continue;
    if (E.Op.Call.Object != Lk.first)
      continue;
    if (Lk.second != Value(-1) && !E.Op.Call.Args.empty() &&
        E.Op.Call.Args[0] != Lk.second)
      continue;
    M->pull(T, GI);
  }
}

StepStatus BoostingTM::abortSelf(TxId T) {
  // Figure 2's catch blocks: inverse operations (UNPUSH) and local rewind
  // (UNAPP), tail-first; then release the abstract locks.
  [[maybe_unused]] bool Ok = rewindAll(T);
  assert(Ok && "boosted rewind cannot be refused: the lock discipline "
               "keeps our effects commutative and unpulled");
  releaseAll(T);
  ++Aborts;
  ++DeadlockAborts;
  Per[T].BlockedStreak = 0;
  return StepStatus::Aborted;
}

StepStatus BoostingTM::step(TxId T) {
  const ThreadState &Th = M->thread(T);
  if (Th.done())
    return StepStatus::Finished;

  if (!Th.InTx) {
    M->beginTx(T);
    return StepStatus::Progress;
  }

  if (fin(Th.Code)) {
    // A boosted commit cannot fail when the lock discipline matches the
    // spec's commutativity (everything is pushed, pulls are
    // committed-only); if the configuration is mismatched (e.g.
    // key-granular locks over multi-key methods), fall back to an abort
    // rather than wedging.
    if (!M->commit(T).Applied)
      return abortSelf(T);
    releaseAll(T);
    Per[T].BlockedStreak = 0;
    return StepStatus::Committed;
  }

  std::vector<AppChoice> Choices = M->appChoices(T);
  if (Choices.empty())
    return abortSelf(T); // Program stuck under current view.
  const AppChoice &C = Choices[Per[T].R.below(Choices.size())];
  const size_t ChosenStep = C.StepIdx; // C dangles once Choices is refreshed.

  auto Call = C.Item.Call.resolve(Th.Sigma);
  assert(Call && "appChoices returned an unresolvable call");
  AbstractLock Lk = lockFor(*Call);

  bool FirstTouch = !Per[T].Held.count(Lk);
  if (FirstTouch && !tryAcquire(T, Lk)) {
    if (++Per[T].BlockedStreak > Config.DeadlockThreshold)
      return abortSelf(T); // Deadlock heuristic.
    return StepStatus::Blocked;
  }
  Per[T].BlockedStreak = 0;

  if (FirstTouch)
    pullCommittedHistory(T, Lk);

  // The pull may have changed the allowed completions; recompute.
  Choices = M->appChoices(T);
  size_t Which = Choices.size();
  for (size_t I = 0; I < Choices.size(); ++I)
    if (Choices[I].StepIdx == ChosenStep) {
      Which = I;
      break;
    }
  if (Which == Choices.size())
    return abortSelf(T);

  const AppChoice &C2 = Choices[Which];
  size_t CompIdx = Per[T].R.below(C2.Completions.size());
  if (!M->app(T, C2.StepIdx, CompIdx).Applied)
    return abortSelf(T);

  // Eager publication at the linearization point: PUSH right after APP.
  // With a lock discipline matching the spec's commutativity this cannot
  // fail (concurrent uncommitted operations commute); a rejection means
  // the locking granularity is too fine for this method — abort and
  // retry rather than wedge.
  size_t Last = M->thread(T).L.size() - 1;
  if (!M->push(T, Last).Applied)
    return abortSelf(T);
  return StepStatus::Progress;
}
