//===- tm/CheckpointTM.cpp - Checkpoints / closed nesting --------------------===//

#include "tm/CheckpointTM.h"

#include "lang/StepFin.h"

#include <algorithm>

using namespace pushpull;

CheckpointTM::CheckpointTM(PushPullMachine &M, CheckpointConfig Config)
    : TMEngine(M), Config(Config) {
  assert(this->Config.CheckpointEvery > 0 && "zero checkpoint interval");
  Rng Root(this->Config.Seed);
  Per.resize(M.threads().size());
  for (PerThread &P : Per)
    P.R = Root.split();
}

void CheckpointTM::fullAbort(TxId T) {
  [[maybe_unused]] bool Ok = rewindAll(T);
  assert(Ok && "optimistic rewind cannot be refused");
  ++Aborts;
  ++FullAborts;
  Per[T].SnapshotDone = false;
  Per[T].Checkpoints.clear();
  Per[T].OpsSinceCheckpoint = 0;
  Per[T].RetryingFromCheckpoint = false;
}

StepStatus CheckpointTM::step(TxId T) {
  const ThreadState &Th = M->thread(T);
  if (Th.done())
    return StepStatus::Finished;

  if (!Th.InTx) {
    M->beginTx(T);
    Per[T].SnapshotDone = false;
    Per[T].Checkpoints.clear();
    Per[T].OpsSinceCheckpoint = 0;
    Per[T].RetryingFromCheckpoint = false;
    return StepStatus::Progress;
  }

  if (!Per[T].SnapshotDone) {
    for (size_t GI = 0; GI < M->global().size(); ++GI) {
      const GlobalEntry &E = M->global()[GI];
      if (E.Kind == GlobalKind::Committed && !Th.L.contains(E.Op.Id))
        M->pull(T, GI);
    }
    Per[T].SnapshotDone = true;
    // The snapshot boundary is the outermost placemarker.
    Per[T].Checkpoints = {M->thread(T).L.size()};
    return StepStatus::Progress;
  }

  if (fin(Th.Code))
    return commitPhase(T);

  std::vector<AppChoice> Choices = M->appChoices(T);
  if (Choices.empty()) {
    fullAbort(T);
    return StepStatus::Aborted;
  }
  const AppChoice &C = Choices[Per[T].R.below(Choices.size())];
  size_t CompIdx = Per[T].R.below(C.Completions.size());
  M->app(T, C.StepIdx, CompIdx);
  if (++Per[T].OpsSinceCheckpoint >= Config.CheckpointEvery) {
    // Drop a placemarker (a closed-nesting boundary).
    Per[T].Checkpoints.push_back(M->thread(T).L.size());
    Per[T].OpsSinceCheckpoint = 0;
  }
  return StepStatus::Progress;
}

StepStatus CheckpointTM::commitPhase(TxId T) {
  // Dry-run validation; on failure note *which* operation failed.
  size_t FailedAt = LocalLog::npos;
  {
    PushPullMachine Probe = *M;
    for (size_t I : M->thread(T).L.indicesOf(LocalKind::NotPushed)) {
      if (!Probe.push(T, I).Applied) {
        FailedAt = I;
        break;
      }
    }
  }

  if (FailedAt == LocalLog::npos) {
    for (size_t I : M->thread(T).L.indicesOf(LocalKind::NotPushed)) {
      [[maybe_unused]] RuleResult R = M->push(T, I);
      assert(R.Applied && "validated push must succeed");
    }
    [[maybe_unused]] RuleResult R = M->commit(T);
    assert(R.Applied && "optimistic commit cannot fail after push-all");
    return StepStatus::Committed;
  }

  // Validation failed at local index FailedAt.  Escalate to a full abort
  // if the previous partial retry already failed; otherwise rewind only
  // to the latest placemarker at or before the failing operation.
  if (Per[T].RetryingFromCheckpoint) {
    fullAbort(T);
    return StepStatus::Aborted;
  }
  size_t Target = 0;
  for (size_t Cp : Per[T].Checkpoints)
    if (Cp <= FailedAt)
      Target = std::max(Target, Cp);
  if (Target == 0) {
    fullAbort(T);
    return StepStatus::Aborted;
  }
  if (!rewindTo(T, Target)) {
    fullAbort(T);
    return StepStatus::Aborted;
  }
  // Refresh the view: the re-executed suffix must see the commits that
  // invalidated it.  A committed operation that cannot be pulled (it
  // conflicts with the *kept* prefix) dooms the retry — escalate now.
  for (size_t GI = 0; GI < M->global().size(); ++GI) {
    const GlobalEntry &E = M->global()[GI];
    if (E.Kind != GlobalKind::Committed ||
        M->thread(T).L.contains(E.Op.Id))
      continue;
    if (!M->pull(T, GI).Applied) {
      fullAbort(T);
      return StepStatus::Aborted;
    }
  }
  // Drop placemarkers beyond the rewind point.
  Per[T].Checkpoints.erase(
      std::remove_if(Per[T].Checkpoints.begin(), Per[T].Checkpoints.end(),
                     [&](size_t Cp) { return Cp > Target; }),
      Per[T].Checkpoints.end());
  Per[T].OpsSinceCheckpoint = 0;
  Per[T].RetryingFromCheckpoint = true;
  ++Aborts;
  ++PartialAborts;
  return StepStatus::Aborted;
}
