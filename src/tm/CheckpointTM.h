//===- tm/CheckpointTM.h - Checkpoints / closed nesting ---------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6.2, second paragraph: transactions that use checkpoints
/// (Koskinen & Herlihy) or closed nesting (LogTM-style) "do not share
/// their effects until commit time ... except that placemarkers are set
/// so that, if an abort is detected, UNAPP only needs to be performed for
/// some operations".
///
/// This engine is OptimisticTM with placemarkers: every CheckpointEvery
/// APPs, the current local-log length is recorded.  When commit-time
/// validation fails, the transaction rewinds only to the most recent
/// placemarker at or before the failing operation — the paper's "roll
/// backwards to any execution point" — and marches forward again.  A
/// second consecutive failure escalates to a full abort (fresh snapshot),
/// guaranteeing progress.
///
/// The partial-abort saving is observable: UNAPP counts stay below what a
/// full-abort optimistic run performs on the same schedule (tested, and
/// reported by bench_optimistic's checkpoint table).
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_TM_CHECKPOINTTM_H
#define PUSHPULL_TM_CHECKPOINTTM_H

#include "tm/Engine.h"

#include <vector>

namespace pushpull {

/// Engine options.
struct CheckpointConfig {
  uint64_t Seed = 1;
  /// An own-operation placemarker is dropped every this many APPs.
  unsigned CheckpointEvery = 2;
};

/// The Section 6.2 checkpointing engine.
class CheckpointTM : public TMEngine {
public:
  CheckpointTM(PushPullMachine &M, CheckpointConfig Config = {});

  std::string name() const override { return "optimistic(checkpoints)"; }
  StepStatus step(TxId T) override;

  /// Like the optimistic engine, publication happens only at commit, so
  /// escalation rolls back with UNAPP/UNPULL and never needs UNPUSH.
  uint32_t ruleMask() const override {
    return allRulesMask() & ~ruleBit(RuleKind::UnPush);
  }
  bool pullsUncommitted() const override { return false; }

  /// Aborts that rewound only to a placemarker (not to the start).
  uint64_t partialAborts() const { return PartialAborts; }
  /// Aborts that rewound the whole transaction.
  uint64_t fullAborts() const { return FullAborts; }

private:
  struct PerThread {
    Rng R{1};
    bool SnapshotDone = false;
    /// Local-log lengths at placemarkers (ascending).
    std::vector<size_t> Checkpoints;
    unsigned OpsSinceCheckpoint = 0;
    /// Set after a partial rewind; a second failure escalates.
    bool RetryingFromCheckpoint = false;
  };

  StepStatus commitPhase(TxId T);
  void fullAbort(TxId T);

  CheckpointConfig Config;
  std::vector<PerThread> Per;
  uint64_t PartialAborts = 0;
  uint64_t FullAborts = 0;
};

} // namespace pushpull

#endif // PUSHPULL_TM_CHECKPOINTTM_H
