//===- tm/BoostingTM.h - Transactional boosting -----------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 2 / Section 6.3: transactional boosting (Herlihy & Koskinen) as
/// a PUSH/PULL strategy.  A boosted transaction:
///
///   * acquires an *abstract lock* for the key a method touches before
///     executing it, so concurrent transactions only ever run commutative
///     operations (the lock discipline is what discharges PUSH criterion
///     (ii) "for free" — the paper's central example);
///   * implicitly PULLs the committed history of the key at first touch
///     (boosting reads the shared state in place: local view = shared
///     view);
///   * APPlies and immediately PUSHes every operation — pessimistic, eager
///     publication at the linearization point of the base object;
///   * on commit, CMTs and releases its abstract locks;
///   * on abort (deadlock), runs the Figure 2 catch-blocks: UNPUSH (the
///     inverse operation on the shared structure) and UNAPP, tail-first,
///     then releases locks and retries.
///
/// Deadlock handling is the classic timeout heuristic: a transaction
/// blocked too many consecutive times self-aborts.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_TM_BOOSTINGTM_H
#define PUSHPULL_TM_BOOSTINGTM_H

#include "tm/Engine.h"

#include <map>
#include <set>
#include <vector>

namespace pushpull {

/// Engine options.
struct BoostingConfig {
  uint64_t Seed = 1;
  /// Consecutive blocked steps before a transaction assumes deadlock and
  /// aborts itself.
  unsigned DeadlockThreshold = 8;
  /// Lock at (object, first-argument) granularity.  Sound whenever the
  /// spec's operations on distinct first arguments commute (sets, maps,
  /// registers, counters).  Set false for specs without that structure
  /// (e.g. queues) to fall back to whole-object locking.
  bool KeyGranularLocks = true;
};

/// An abstract lock identity: (object, key).  Key -1 is the whole-object
/// lock used for methods without a key argument.
using AbstractLock = std::pair<std::string, Value>;

/// The Figure 2 boosting engine.
class BoostingTM : public TMEngine {
public:
  BoostingTM(PushPullMachine &M, BoostingConfig Config = {});

  std::string name() const override { return "boosting"; }
  StepStatus step(TxId T) override;

  /// Eager publication with inverse-operation aborts exercises all seven
  /// rules, but only committed entries are ever pulled.
  uint32_t ruleMask() const override { return allRulesMask(); }
  bool pullsUncommitted() const override { return false; }

  /// How often a blocked lock acquisition escalated to a self-abort.
  uint64_t deadlockAborts() const { return DeadlockAborts; }

private:
  struct PerThread {
    std::set<AbstractLock> Held;
    unsigned BlockedStreak = 0;
    Rng R{1};
  };

  AbstractLock lockFor(const ResolvedCall &Call) const;
  bool tryAcquire(TxId T, const AbstractLock &Lk);
  void releaseAll(TxId T);
  /// PULL the committed history of \p Lk's key into T's view.
  void pullCommittedHistory(TxId T, const AbstractLock &Lk);
  StepStatus abortSelf(TxId T);

  BoostingConfig Config;
  std::map<AbstractLock, TxId> LockTable;
  std::vector<PerThread> Per;
  uint64_t DeadlockAborts = 0;
};

} // namespace pushpull

#endif // PUSHPULL_TM_BOOSTINGTM_H
