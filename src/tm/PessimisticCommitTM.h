//===- tm/PessimisticCommitTM.h - Matveev-Shavit pessimism ------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6.3: the fully pessimistic STM of Matveev & Shavit as a
/// PUSH/PULL strategy — transactions never abort.
///
///   * Writes are buffered: APPlied locally, PUSHed only in the commit
///     phase, which executes as one uninterleaved push-all+CMT so "write
///     transactions appear to occur instantaneously at the commit point".
///     At most one writer runs at a time (the engine's writer lock).
///   * Reads view only committed state ("read operations perform PULL
///     only on committed effects"): before each read the thread catches
///     up on newly committed operations, APPlies the read and PUSHes it
///     immediately.
///   * Pessimism emerges from the criteria: a writer's commit-time PUSH
///     of write(x) is *rejected* while another thread has an uncommitted
///     pushed read of x in G (PUSH criterion (ii): the read cannot move
///     right of the write) — so the writer waits for readers to drain
///     rather than aborting anyone.  A failed push-all is rolled back
///     within the same step and retried later, so partial writer state is
///     never visible.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_TM_PESSIMISTICCOMMITTM_H
#define PUSHPULL_TM_PESSIMISTICCOMMITTM_H

#include "tm/Engine.h"

#include <set>
#include <string>
#include <vector>

namespace pushpull {

/// Engine options.
struct PessimisticConfig {
  uint64_t Seed = 1;
  /// Method names treated as read-like (pushed eagerly; skipped by
  /// catch-up pulls of other threads implicitly via criteria).
  std::set<std::string> ReadMethods = {"read", "get", "contains",
                                       "containsKey", "size"};
};

/// The Section 6.3 Matveev-Shavit engine.
class PessimisticCommitTM : public TMEngine {
public:
  PessimisticCommitTM(PushPullMachine &M, PessimisticConfig Config = {});

  std::string name() const override { return "pessimistic(matveev-shavit)"; }
  StepStatus step(TxId T) override;

  /// Writers wait instead of aborting, so UNAPP/UNPULL never fire; the
  /// all-or-nothing commit phase rolls back partial publication with
  /// UNPUSH when a later push is rejected.
  uint32_t ruleMask() const override {
    return allRulesMask() & ~(ruleBit(RuleKind::UnApp) |
                              ruleBit(RuleKind::UnPull));
  }
  bool pullsUncommitted() const override { return false; }

  /// Times a writer's commit phase had to back off and wait for readers.
  uint64_t writerWaits() const { return WriterWaits; }

private:
  struct PerThread {
    bool Began = false;
    bool IsWriter = false;
    Rng R{1};
  };

  bool isReadLike(const ResolvedCall &Call) const;
  void catchUpCommitted(TxId T);
  StepStatus commitPhase(TxId T);

  PessimisticConfig Config;
  std::vector<PerThread> Per;
  /// TxId of the writer-lock holder, or NoWriter.
  static constexpr TxId NoWriter = static_cast<TxId>(-1);
  TxId WriterLock = NoWriter;
  uint64_t WriterWaits = 0;
};

} // namespace pushpull

#endif // PUSHPULL_TM_PESSIMISTICCOMMITTM_H
