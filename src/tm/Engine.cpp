//===- tm/Engine.cpp - TM algorithm engines ---------------------------------===//

#include "tm/Engine.h"

using namespace pushpull;

std::string pushpull::toString(StepStatus S) {
  switch (S) {
  case StepStatus::Progress:
    return "progress";
  case StepStatus::Blocked:
    return "blocked";
  case StepStatus::Committed:
    return "committed";
  case StepStatus::Aborted:
    return "aborted";
  case StepStatus::Finished:
    return "finished";
  }
  return "?";
}

TMEngine::~TMEngine() = default;

bool TMEngine::popTail(TxId T) {
  const ThreadState &Th = M->thread(T);
  if (Th.L.empty())
    return false;
  size_t Last = Th.L.size() - 1;
  switch (Th.L[Last].Kind) {
  case LocalKind::Pulled:
    return M->unpull(T, Last).Applied;
  case LocalKind::NotPushed:
    return M->unapp(T).Applied;
  case LocalKind::Pushed:
    // UNPUSH turns the entry back into npshd, then UNAPP rewinds it.  In a
    // real implementation the UNPUSH is an inverse operation on the shared
    // state (Figure 2's catch blocks); in the log model it is removal of
    // the shared-log entry.
    if (!M->unpush(T, Last).Applied)
      return false;
    return M->unapp(T).Applied;
  }
  return false;
}

bool TMEngine::rewindTo(TxId T, size_t KeepEntries) {
  while (M->thread(T).L.size() > KeepEntries)
    if (!popTail(T))
      return false;
  return true;
}

bool TMEngine::rewindAll(TxId T) { return rewindTo(T, 0); }
