//===- tm/HybridHtmBoostingTM.cpp - Section 7 hybrid -------------------------===//

#include "tm/HybridHtmBoostingTM.h"

#include "lang/StepFin.h"

using namespace pushpull;

HybridHtmBoostingTM::HybridHtmBoostingTM(PushPullMachine &M,
                                         HybridConfig Config)
    : TMEngine(M), Config(std::move(Config)) {
  Rng Root(this->Config.Seed);
  Per.resize(M.threads().size());
  for (PerThread &P : Per)
    P.R = Root.split();
}

bool HybridHtmBoostingTM::tryAcquire(TxId T, const AbstractLock &Lk) {
  for (const auto &[Held, Owner] : LockTable) {
    if (Owner == T || Held.first != Lk.first)
      continue;
    if (Held.second == Lk.second || Held.second == Value(-1) ||
        Lk.second == Value(-1))
      return false;
  }
  LockTable[Lk] = T;
  Per[T].Held.insert(Lk);
  return true;
}

void HybridHtmBoostingTM::releaseAll(TxId T) {
  for (const AbstractLock &Lk : Per[T].Held)
    LockTable.erase(Lk);
  Per[T].Held.clear();
}

void HybridHtmBoostingTM::pullCommittedFor(TxId T, const std::string &Object,
                                           Value Key, bool WholeObject) {
  const ThreadState &Th = M->thread(T);
  for (size_t GI = 0; GI < M->global().size(); ++GI) {
    const GlobalEntry &E = M->global()[GI];
    if (E.Kind != GlobalKind::Committed || Th.L.contains(E.Op.Id))
      continue;
    if (E.Op.Call.Object != Object)
      continue;
    if (!WholeObject && !E.Op.Call.Args.empty() && E.Op.Call.Args[0] != Key)
      continue;
    M->pull(T, GI);
  }
}

StepStatus HybridHtmBoostingTM::abortSelf(TxId T) {
  [[maybe_unused]] bool Ok = rewindAll(T);
  assert(Ok && "hybrid rewind cannot be refused");
  releaseAll(T);
  ++Aborts;
  Per[T].BlockedStreak = 0;
  return StepStatus::Aborted;
}

void HybridHtmBoostingTM::htmRetract(TxId T,
                                     const std::vector<size_t> &PushedNow) {
  ++HtmRetractions;
  // UNPUSH the HTM batch, newest push first — the boosted effects pushed
  // earlier (or even *between* the HTM ops in the shared log) stay put.
  for (size_t J = PushedNow.size(); J > 0; --J) {
    [[maybe_unused]] bool Ok = M->unpush(T, PushedNow[J - 1]).Applied;
    assert(Ok && "retracting our own uncommitted HTM push cannot fail");
  }
  const ThreadState &Th = M->thread(T);
  for (const LocalEntry &E : Th.L.entries())
    if (E.Kind == LocalKind::Pushed)
      ++BoostedOpsPreserved;

  // Partial rewind: UNAPP the trailing *unpushed* (HTM) accesses — the
  // Figure 7 "rewind some code" move.  We rewind past the most recent HTM
  // access so re-execution may take a different branch; boosted (pushed)
  // entries act as a floor the rewind never crosses.
  bool RemovedOne = false;
  while (!M->thread(T).L.empty()) {
    const LocalEntry &Last =
        M->thread(T).L[M->thread(T).L.size() - 1];
    if (Last.Kind != LocalKind::NotPushed) {
      if (Last.Kind == LocalKind::Pulled && !RemovedOne) {
        // Pulled view entries on top of the conflicting access: drop them
        // so UNAPP can reach it.
        if (M->unpull(T, M->thread(T).L.size() - 1).Applied)
          continue;
      }
      break;
    }
    if (RemovedOne)
      break;
    RemovedOne = true; // Unapp exactly the most recent HTM access.
    [[maybe_unused]] bool Ok = M->unapp(T).Applied;
    assert(Ok && "UNAPP of a trailing npshd entry cannot fail");
  }
}

StepStatus HybridHtmBoostingTM::publicationPhase(TxId T) {
  // "Push HTM ops": publish the buffered HTM accesses in local order.
  std::vector<size_t> PushedNow;
  for (size_t I : M->thread(T).L.indicesOf(LocalKind::NotPushed)) {
    if (M->push(T, I).Applied) {
      PushedNow.push_back(I);
      continue;
    }
    // Organic conflict: a concurrent hardware transaction's uncommitted
    // effect does not commute with ours.
    htmRetract(T, PushedNow);
    return StepStatus::Aborted;
  }

  // Injected conflict (the Haswell abort signal substitute).
  if (Per[T].InjectedThisTx < Config.MaxInjectedPerTx &&
      Per[T].R.chance(Config.ConflictChancePct, 100) && !PushedNow.empty()) {
    ++Per[T].InjectedThisTx;
    htmRetract(T, PushedNow);
    return StepStatus::Aborted;
  }

  // A hybrid commit cannot fail after full publication; abort
  // defensively if a configuration ever breaks that.
  if (!M->commit(T).Applied)
    return abortSelf(T);
  releaseAll(T);
  Per[T].InjectedThisTx = 0;
  return StepStatus::Committed;
}

StepStatus HybridHtmBoostingTM::step(TxId T) {
  const ThreadState &Th = M->thread(T);
  if (Th.done())
    return StepStatus::Finished;

  if (!Th.InTx) {
    M->beginTx(T);
    Per[T].InjectedThisTx = 0;
    return StepStatus::Progress;
  }

  if (fin(Th.Code))
    return publicationPhase(T);

  std::vector<AppChoice> Choices = M->appChoices(T);
  if (Choices.empty())
    return abortSelf(T);
  const AppChoice &C = Choices[Per[T].R.below(Choices.size())];
  auto Call = C.Item.Call.resolve(Th.Sigma);
  assert(Call && "appChoices returned an unresolvable call");

  if (isHtm(Call->Object)) {
    // HTM access: refresh the word's committed view, APP, defer the push.
    pullCommittedFor(T, Call->Object, Value(-1), /*WholeObject=*/true);
    std::vector<AppChoice> Fresh = M->appChoices(T);
    for (const AppChoice &F : Fresh)
      if (F.StepIdx == C.StepIdx) {
        size_t CompIdx = Per[T].R.below(F.Completions.size());
        if (!M->app(T, F.StepIdx, CompIdx).Applied)
          return abortSelf(T);
        return StepStatus::Progress;
      }
    return abortSelf(T);
  }

  // Boosted access: lock, pull the key's committed history, APP, PUSH.
  AbstractLock Lk = Call->Args.empty()
                        ? AbstractLock{Call->Object, Value(-1)}
                        : AbstractLock{Call->Object, Call->Args[0]};
  bool FirstTouch = !Per[T].Held.count(Lk);
  if (FirstTouch && !tryAcquire(T, Lk)) {
    if (++Per[T].BlockedStreak > Config.DeadlockThreshold)
      return abortSelf(T);
    return StepStatus::Blocked;
  }
  Per[T].BlockedStreak = 0;
  if (FirstTouch)
    pullCommittedFor(T, Lk.first, Lk.second, Lk.second == Value(-1));

  std::vector<AppChoice> Fresh = M->appChoices(T);
  for (const AppChoice &F : Fresh)
    if (F.StepIdx == C.StepIdx) {
      size_t CompIdx = Per[T].R.below(F.Completions.size());
      if (!M->app(T, F.StepIdx, CompIdx).Applied)
        return abortSelf(T);
      size_t Last = M->thread(T).L.size() - 1;
      // Eager boosted publication.  PUSH criterion (i) is *not* vacuous
      // here: buffered HTM accesses may precede this op in L, and the
      // machine checks the boosted op moves left over them.
      if (!M->push(T, Last).Applied)
        return abortSelf(T);
      return StepStatus::Progress;
    }
  return abortSelf(T);
}
