//===- tm/OptimisticTM.cpp - TL2/TinySTM-style optimism ---------------------===//

#include "tm/OptimisticTM.h"

#include "lang/StepFin.h"

using namespace pushpull;

OptimisticTM::OptimisticTM(PushPullMachine &M, OptimisticConfig Config)
    : TMEngine(M) {
  Rng Root(Config.Seed);
  Per.resize(M.threads().size());
  for (PerThread &P : Per)
    P.R = Root.split();
}

StepStatus OptimisticTM::step(TxId T) {
  const ThreadState &Th = M->thread(T);
  if (Th.done())
    return StepStatus::Finished;

  if (!Th.InTx) {
    M->beginTx(T);
    Per[T].SnapshotDone = false;
    return StepStatus::Progress;
  }

  if (!Per[T].SnapshotDone) {
    // Snapshot: PULL every committed operation, in shared-log order.
    // (Between engine steps every G entry is committed: optimistic commits
    // push and CMT inside one step.)
    for (size_t GI = 0; GI < M->global().size(); ++GI) {
      const GlobalEntry &E = M->global()[GI];
      if (E.Kind != GlobalKind::Committed ||
          Th.L.contains(E.Op.Id))
        continue;
      M->pull(T, GI); // In-order committed pulls satisfy all criteria.
    }
    Per[T].SnapshotDone = true;
    return StepStatus::Progress;
  }

  if (fin(Th.Code))
    return commitPhase(T);

  std::vector<AppChoice> Choices = M->appChoices(T);
  if (Choices.empty()) {
    // The program cannot proceed under this snapshot (e.g. an op's
    // arguments name an out-of-domain key).  Treat as an abort+retry.
    abortAndRetry(T);
    return StepStatus::Aborted;
  }
  const AppChoice &C = Choices[Per[T].R.below(Choices.size())];
  size_t CompIdx = Per[T].R.below(C.Completions.size());
  M->app(T, C.StepIdx, CompIdx);
  return StepStatus::Progress;
}

StepStatus OptimisticTM::commitPhase(TxId T) {
  // Uninterleaved: validate, then push-all in APP order, then CMT, within
  // one step.  Validation ("check the second PUSH condition on all of
  // their effects", Sec. 6.2) is a dry run on a scratch copy of the
  // machine, so a failed validation aborts with UNAPP/UNPULL only — an
  // optimistic transaction never needs UNPUSH.
  {
    PushPullMachine Probe = *M;
    for (size_t I : M->thread(T).L.indicesOf(LocalKind::NotPushed)) {
      if (!Probe.push(T, I).Applied) {
        // Validation failure: a transaction that committed since our
        // snapshot conflicts with this operation (PUSH criterion (iii)).
        abortAndRetry(T);
        return StepStatus::Aborted;
      }
    }
  }
  for (size_t I : M->thread(T).L.indicesOf(LocalKind::NotPushed)) {
    [[maybe_unused]] RuleResult R = M->push(T, I);
    assert(R.Applied && "validated push must succeed");
  }
  if (!M->commit(T).Applied) {
    abortAndRetry(T);
    return StepStatus::Aborted;
  }
  return StepStatus::Committed;
}

void OptimisticTM::abortAndRetry(TxId T) {
  [[maybe_unused]] bool Ok = rewindAll(T);
  assert(Ok && "optimistic rewind cannot be refused: nothing we pushed "
               "stays in G across steps and nobody pulls our effects");
  ++Aborts;
  Per[T].SnapshotDone = false; // Re-snapshot on retry.
}
