//===- tm/EarlyReleaseTM.h - DSTM-style early release -----------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6.5, first half: the early-release mechanism of Herlihy et
/// al.'s DSTM.  The paper models it as: an executing transaction T'
/// PUSHes an operation, and T checks whether it is able to PULL it — a
/// *pull probe* detecting conflicts while both transactions are still
/// running, instead of at commit time.
///
/// The engine publishes eagerly (APP then PUSH, no locks).  A rejected
/// PUSH — criterion (ii) failing against another in-flight transaction's
/// uncommitted effect — is the early conflict detection: the transaction
/// aborts immediately, having wasted less work than a commit-time
/// validator would (E7 measures exactly this against OptimisticTM).
///
/// The *release* half: entries pulled for reading are UNPULLed as soon as
/// the transaction stops depending on them (checked by UNPULL criterion
/// (i)), before commit — dropping read handles early, as DSTM's
/// release() does.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_TM_EARLYRELEASETM_H
#define PUSHPULL_TM_EARLYRELEASETM_H

#include "tm/Engine.h"

#include <vector>

namespace pushpull {

/// Engine options.
struct EarlyReleaseConfig {
  uint64_t Seed = 1;
};

/// The Section 6.5 early-release engine.
class EarlyReleaseTM : public TMEngine {
public:
  EarlyReleaseTM(PushPullMachine &M, EarlyReleaseConfig Config = {});

  std::string name() const override { return "early-release(dstm-style)"; }
  StepStatus step(TxId T) override;

  /// Eager publication + abort-by-rewind: all seven rules, committed
  /// pulls only.
  uint32_t ruleMask() const override { return allRulesMask(); }
  bool pullsUncommitted() const override { return false; }

  /// Read handles released (UNPULLed) before commit.
  uint64_t releases() const { return Releases; }
  /// Operations discarded across all aborts (the wasted-work metric E7
  /// compares against commit-time validation).
  uint64_t opsDiscarded() const { return OpsDiscarded; }

private:
  struct PerThread {
    Rng R{1};
  };

  StepStatus abortSelf(TxId T);

  std::vector<PerThread> Per;
  uint64_t Releases = 0;
  uint64_t OpsDiscarded = 0;
};

} // namespace pushpull

#endif // PUSHPULL_TM_EARLYRELEASETM_H
