//===- tm/OpenNestingTM.cpp - Open nested transactions -----------------------===//

#include "tm/OpenNestingTM.h"

#include "lang/StepFin.h"
#include "spec/MapSpec.h"

using namespace pushpull;

namespace {

MethodExpr mkCall(const std::string &Object, const std::string &Method,
                  std::vector<Value> Args) {
  MethodExpr ME;
  ME.Object = Object;
  ME.Method = Method;
  for (Value A : Args)
    ME.Args.push_back(Arg(A));
  return ME;
}

} // namespace

InverseFn pushpull::setInverses() {
  return [](const Operation &Op) -> std::optional<MethodExpr> {
    const ResolvedCall &C = Op.Call;
    if (C.Method == "add" && Op.Result == Value(1))
      return mkCall(C.Object, "remove", {C.Args[0]});
    if (C.Method == "remove" && Op.Result == Value(1))
      return mkCall(C.Object, "add", {C.Args[0]});
    return std::nullopt; // contains / failed updates.
  };
}

InverseFn pushpull::mapInverses() {
  return [](const Operation &Op) -> std::optional<MethodExpr> {
    const ResolvedCall &C = Op.Call;
    if (C.Method == "put") {
      if (Op.Result == MapSpec::Absent)
        return mkCall(C.Object, "remove", {C.Args[0]});
      return mkCall(C.Object, "put", {C.Args[0], *Op.Result});
    }
    if (C.Method == "remove" && Op.Result &&
        *Op.Result != MapSpec::Absent)
      return mkCall(C.Object, "put", {C.Args[0], *Op.Result});
    return std::nullopt; // get / containsKey / remove of absent.
  };
}

InverseFn pushpull::counterInverses() {
  return [](const Operation &Op) -> std::optional<MethodExpr> {
    const ResolvedCall &C = Op.Call;
    if (C.Method == "inc")
      return mkCall(C.Object, "dec", {C.Args[0]});
    if (C.Method == "dec")
      return mkCall(C.Object, "inc", {C.Args[0]});
    if (C.Method == "add")
      return mkCall(C.Object, "add", {C.Args[0], -C.Args[1]});
    return std::nullopt; // read.
  };
}

InverseFn pushpull::bankInverses() {
  return [](const Operation &Op) -> std::optional<MethodExpr> {
    const ResolvedCall &C = Op.Call;
    if (C.Method == "deposit")
      return mkCall(C.Object, "withdraw", {C.Args[0], C.Args[1]});
    if (C.Method == "withdraw" && Op.Result == Value(1))
      return mkCall(C.Object, "deposit", {C.Args[0], C.Args[1]});
    return std::nullopt; // balance / failed withdraw.
  };
}

InverseFn
pushpull::inversesByObject(std::map<std::string, InverseFn> ByObject) {
  return [ByObject = std::move(ByObject)](
             const Operation &Op) -> std::optional<MethodExpr> {
    auto It = ByObject.find(Op.Call.Object);
    if (It == ByObject.end())
      return std::nullopt;
    return It->second(Op);
  };
}

OpenNestingTM::OpenNestingTM(PushPullMachine &M,
                             std::vector<std::vector<OuterTx>> Outer,
                             OpenNestingConfig Config)
    : TMEngine(M), Config(std::move(Config)) {
  Rng Root(this->Config.Seed);
  Per.resize(Outer.size());
  for (size_t T = 0; T < Outer.size(); ++T) {
    Per[T].R = Root.split();
    Per[T].Outers = std::move(Outer[T]);
    TxId Tid = M.addThread({});
    assert(Tid == T && "engine must own an empty machine");
    if (!Per[T].Outers.empty() && !Per[T].Outers.front().Segments.empty())
      M.queueTransactionsFront(Tid, {Per[T].Outers.front().Segments[0]});
  }
}

void OpenNestingTM::recordCompensations(TxId T) {
  for (const Operation &Op : M->thread(T).L.ownOps())
    if (auto Inv = Config.Inverse(Op))
      Per[T].Compensations.push_back(std::move(*Inv));
}

StepStatus OpenNestingTM::abortOuter(TxId T) {
  ++OuterAborts;
  ++Per[T].AbortsThisOuter;
  PerThread &P = Per[T];
  if (!P.Compensations.empty()) {
    // One compensating transaction, inverses in reverse order.
    std::vector<CodePtr> Body;
    for (size_t I = P.Compensations.size(); I > 0; --I)
      Body.push_back(Code::makeCall(P.Compensations[I - 1]));
    CompensationsRun += Body.size();
    M->queueTransactionsFront(T, {tx(seqAll(std::move(Body)))});
    P.Compensating = true;
  } else {
    // Nothing committed yet: restart the outer immediately.
    P.SegmentsDone = 0;
    if (!P.Outers.empty() && !P.Outers.front().Segments.empty())
      M->queueTransactionsFront(T, {P.Outers.front().Segments[0]});
  }
  P.Compensations.clear();
  ++Aborts;
  return StepStatus::Aborted;
}

StepStatus OpenNestingTM::step(TxId T) {
  const ThreadState &Th = M->thread(T);
  PerThread &P = Per[T];

  if (Th.done()) {
    if (P.Outers.empty())
      return StepStatus::Finished;
    // Shouldn't normally happen (segments are queued eagerly), but be
    // robust: queue the next segment of the current outer.
    M->queueTransactionsFront(T, {P.Outers.front().Segments[P.SegmentsDone]});
    return StepStatus::Progress;
  }

  if (!Th.InTx) {
    M->beginTx(T);
    return StepStatus::Progress;
  }

  if (fin(Th.Code)) {
    bool WasCompensating = P.Compensating;
    if (!WasCompensating)
      recordCompensations(T); // Before CMT clears the local log.
    if (!M->commit(T).Applied) {
      // Open segments pull only committed effects and push eagerly, so
      // this cannot normally fail; retry via a segment-level abort.
      rewindAll(T);
      return StepStatus::Aborted;
    }

    if (WasCompensating) {
      // The compensation transaction committed: the outer abort is
      // complete; restart the outer from its first segment.
      P.Compensating = false;
      P.SegmentsDone = 0;
      if (!P.Outers.empty() && !P.Outers.front().Segments.empty())
        M->queueTransactionsFront(T, {P.Outers.front().Segments[0]});
      return StepStatus::Committed;
    }

    ++P.SegmentsDone;
    if (P.SegmentsDone >= P.Outers.front().Segments.size()) {
      // Outer complete.
      ++OuterCommits;
      P.Outers.erase(P.Outers.begin());
      P.SegmentsDone = 0;
      P.Compensations.clear();
      P.AbortsThisOuter = 0;
      if (!P.Outers.empty() && !P.Outers.front().Segments.empty())
        M->queueTransactionsFront(T, {P.Outers.front().Segments[0]});
      return StepStatus::Committed;
    }

    // Between segments: maybe the outer aborts (the interesting case —
    // already-committed open segments must be compensated, not unpushed).
    if (P.AbortsThisOuter < Config.MaxAbortsPerOuter &&
        P.R.chance(Config.OuterAbortPct, 100))
      return abortOuter(T);

    M->queueTransactionsFront(T, {P.Outers.front().Segments[P.SegmentsDone]});
    return StepStatus::Committed;
  }

  // Segment execution: catch up on committed state, APP, eager PUSH.
  for (size_t GI = 0; GI < M->global().size(); ++GI) {
    const GlobalEntry &E = M->global()[GI];
    if (E.Kind == GlobalKind::Committed && !Th.L.contains(E.Op.Id))
      M->pull(T, GI);
  }
  std::vector<AppChoice> Choices = M->appChoices(T);
  if (Choices.empty())
    return StepStatus::Blocked;
  const AppChoice &C = Choices[P.R.below(Choices.size())];
  size_t CompIdx = P.R.below(C.Completions.size());
  if (!M->app(T, C.StepIdx, CompIdx).Applied)
    return StepStatus::Blocked;
  size_t Last = M->thread(T).L.size() - 1;
  if (!M->push(T, Last).Applied) {
    // Conflict with a concurrent uncommitted segment: retract and retry.
    M->unapp(T);
    return StepStatus::Blocked;
  }
  return StepStatus::Progress;
}
