//===- tm/DependentTM.cpp - Dependent transactions --------------------------===//

#include "tm/DependentTM.h"

#include "check/Opacity.h"
#include "lang/StepFin.h"

using namespace pushpull;

DependentTM::DependentTM(PushPullMachine &M, DependentConfig Config)
    : TMEngine(M), Config(Config) {
  Rng Root(this->Config.Seed);
  Per.resize(M.threads().size());
  for (PerThread &P : Per)
    P.R = Root.split();
}

void DependentTM::recomputeDependencies(TxId T) {
  Per[T].DependsOn.clear();
  const ThreadState &Th = M->thread(T);
  for (const LocalEntry &E : Th.L.entries()) {
    if (E.Kind != LocalKind::Pulled)
      continue;
    size_t GI = M->global().indexOf(E.Op.Id);
    if (GI == GlobalLog::npos)
      continue;
    const GlobalEntry &GE = M->global()[GI];
    if (GE.Kind == GlobalKind::Uncommitted && GE.Owner != T)
      Per[T].DependsOn.insert(GE.Owner);
  }
}

bool DependentTM::detangle(TxId T) {
  // A pulled entry is dead when its op vanished from G (the owner managed
  // a partial UNPUSH) or its owner is trying to abort.  Rewind from the
  // tail exactly past the earliest such entry — no further.
  const ThreadState &Th = M->thread(T);
  size_t Earliest = LocalLog::npos;
  for (size_t I = 0; I < Th.L.size(); ++I) {
    const LocalEntry &E = Th.L[I];
    if (E.Kind != LocalKind::Pulled)
      continue;
    size_t GI = M->global().indexOf(E.Op.Id);
    bool Dead = GI == GlobalLog::npos;
    if (!Dead) {
      const GlobalEntry &GE = M->global()[GI];
      Dead = GE.Kind == GlobalKind::Uncommitted && GE.Owner != T &&
             Per[GE.Owner].WantsAbort;
    }
    if (Dead) {
      Earliest = I;
      break;
    }
  }
  if (Earliest == LocalLog::npos)
    return false;

  Per[T].Cooldown = Config.ReentangleCooldown;
  if (!rewindTo(T, Earliest)) {
    // Someone depends on *our* pushed suffix in turn; they will detangle
    // first (their owner check sees our effects intact, but a rejected
    // rewind means a transitive dependent exists — mark ourselves
    // aborting so they notice).
    Per[T].WantsAbort = true;
    return true;
  }
  ++CascadeAborts;
  ++Aborts;
  recomputeDependencies(T);
  Per[T].StuckCommit = 0;
  return true;
}

StepStatus DependentTM::tryVoluntaryAbort(TxId T) {
  Per[T].Cooldown = Config.ReentangleCooldown;
  if (rewindAll(T)) {
    Per[T].WantsAbort = false;
    Per[T].DependsOn.clear();
    Per[T].StuckCommit = 0;
    ++Aborts;
    return StepStatus::Aborted;
  }
  // A dependent transaction holds our effects: it will detangle when it
  // sees WantsAbort; wait.
  return StepStatus::Blocked;
}

StepStatus DependentTM::step(TxId T) {
  const ThreadState &Th = M->thread(T);
  if (Th.done())
    return StepStatus::Finished;

  if (Per[T].Cooldown > 0)
    --Per[T].Cooldown;

  if (Th.InTx && Per[T].WantsAbort)
    return tryVoluntaryAbort(T);

  if (Th.InTx && detangle(T))
    return StepStatus::Aborted;

  if (!Th.InTx) {
    M->beginTx(T);
    return StepStatus::Progress;
  }

  // Voluntary abort injection.
  if (Config.AbortChancePct > 0 && !Th.L.ownOps().empty() &&
      Per[T].R.chance(Config.AbortChancePct, 100)) {
    Per[T].WantsAbort = true;
    return tryVoluntaryAbort(T);
  }

  if (fin(Th.Code)) {
    RuleResult R = M->commit(T);
    if (R.Applied) {
      Per[T].DependsOn.clear();
      Per[T].StuckCommit = 0;
      return StepStatus::Committed;
    }
    // Gated: a pulled dependency has not committed yet (CMT criterion
    // (iii)) — or died (criterion (ii)); detangling is handled at the top
    // of the next step.
    ++GatedCommits;
    if (++Per[T].StuckCommit > Config.StuckCommitThreshold) {
      // Suspected dependency cycle: break it by aborting ourselves.
      Per[T].WantsAbort = true;
      return tryVoluntaryAbort(T);
    }
    return StepStatus::Blocked;
  }

  // View maintenance: committed ops, then (optionally) other
  // transactions' uncommitted effects — each successful uncommitted pull
  // is a dependency (Ramadan-style).
  for (size_t GI = 0; GI < M->global().size(); ++GI) {
    const GlobalEntry &E = M->global()[GI];
    if (Th.L.contains(E.Op.Id))
      continue;
    if (E.Kind == GlobalKind::Committed) {
      M->pull(T, GI);
      continue;
    }
    if (Config.PullUncommitted && Per[T].Cooldown == 0 && E.Owner != T &&
        !Per[E.Owner].WantsAbort) {
      if (Config.OnlyCommutationSafePulls &&
          pullCommutationSafe(*M, T, E.Op) != Tri::Yes)
        continue;
      if (M->pull(T, GI).Applied) {
        ++DependenciesFormed;
        Per[T].DependsOn.insert(E.Owner);
      }
    }
  }

  std::vector<AppChoice> Choices = M->appChoices(T);
  if (Choices.empty()) {
    Per[T].WantsAbort = true;
    return tryVoluntaryAbort(T);
  }
  const AppChoice &C = Choices[Per[T].R.below(Choices.size())];
  size_t CompIdx = Per[T].R.below(C.Completions.size());
  if (!M->app(T, C.StepIdx, CompIdx).Applied)
    return StepStatus::Blocked;

  // Eager publication.  A rejected push against an uncommitted effect —
  // pulled or not — is the other face of dependency gating: our
  // conflicting effect cannot reach the shared log before its source
  // commits.  Retract the APP and retry after the next view-maintenance
  // round; a long stall suggests a cycle and is broken by self-abort.
  size_t Last = M->thread(T).L.size() - 1;
  if (!M->push(T, Last).Applied) {
    M->unapp(T);
    if (!Per[T].DependsOn.empty())
      ++GatedPublications;
    if (++Per[T].StuckCommit > Config.StuckCommitThreshold) {
      Per[T].WantsAbort = true;
      return tryVoluntaryAbort(T);
    }
    return StepStatus::Blocked;
  }
  Per[T].StuckCommit = 0;
  return StepStatus::Progress;
}
