//===- tm/IrrevocableTM.cpp - Welc et al. irrevocability --------------------===//

#include "tm/IrrevocableTM.h"

#include "lang/StepFin.h"

using namespace pushpull;

IrrevocableTM::IrrevocableTM(PushPullMachine &M, IrrevocableConfig Config)
    : TMEngine(M), Config(Config) {
  Rng Root(this->Config.Seed);
  Per.resize(M.threads().size());
  for (PerThread &P : Per)
    P.R = Root.split();
}

uint64_t IrrevocableTM::irrevocableRollbacks() const {
  uint64_t N = 0;
  for (const TraceEvent &E : M->trace()) {
    if (E.Tid != Config.IrrevocableThread)
      continue;
    if (E.Rule == RuleKind::UnApp || E.Rule == RuleKind::UnPush ||
        E.Rule == RuleKind::UnPull)
      ++N;
  }
  return N;
}

StepStatus IrrevocableTM::step(TxId T) {
  if (M->thread(T).done())
    return StepStatus::Finished;
  if (T == Config.IrrevocableThread)
    return stepIrrevocable(T);
  return stepOptimistic(T);
}

StepStatus IrrevocableTM::stepIrrevocable(TxId T) {
  const ThreadState &Th = M->thread(T);
  if (!Th.InTx) {
    M->beginTx(T);
    return StepStatus::Progress;
  }
  if (fin(Th.Code)) {
    // An irrevocable commit cannot fail; wait defensively if it ever does
    // (never roll back).
    if (!M->commit(T).Applied)
      return StepStatus::Blocked;
    return StepStatus::Committed;
  }

  // Catch up on committed state, then APP + PUSH in the same step.
  for (size_t GI = 0; GI < M->global().size(); ++GI) {
    const GlobalEntry &E = M->global()[GI];
    if (E.Kind == GlobalKind::Committed && !Th.L.contains(E.Op.Id))
      M->pull(T, GI);
  }
  std::vector<AppChoice> Choices = M->appChoices(T);
  if (Choices.empty())
    return StepStatus::Blocked; // Never abort: wait instead.
  const AppChoice &C = Choices[Per[T].R.below(Choices.size())];
  size_t CompIdx = Per[T].R.below(C.Completions.size());
  if (!M->app(T, C.StepIdx, CompIdx).Applied)
    return StepStatus::Blocked;
  size_t Last = M->thread(T).L.size() - 1;
  if (!M->push(T, Last).Applied) {
    // Cannot publish yet; retract the APP (a local bookkeeping move, not
    // a transaction rollback in the algorithm's sense) and wait.
    M->unapp(T);
    return StepStatus::Blocked;
  }
  return StepStatus::Progress;
}

StepStatus IrrevocableTM::stepOptimistic(TxId T) {
  const ThreadState &Th = M->thread(T);
  if (!Th.InTx) {
    M->beginTx(T);
    Per[T].SnapshotDone = false;
    return StepStatus::Progress;
  }
  if (!Per[T].SnapshotDone) {
    for (size_t GI = 0; GI < M->global().size(); ++GI) {
      const GlobalEntry &E = M->global()[GI];
      if (E.Kind == GlobalKind::Committed && !Th.L.contains(E.Op.Id))
        M->pull(T, GI);
    }
    Per[T].SnapshotDone = true;
    return StepStatus::Progress;
  }
  if (fin(Th.Code)) {
    // Validate against G — including the irrevocable thread's uncommitted
    // eager pushes — then push-all + CMT uninterleaved.
    {
      PushPullMachine Probe = *M;
      for (size_t I : Th.L.indicesOf(LocalKind::NotPushed))
        if (!Probe.push(T, I).Applied) {
          abortAndRetry(T);
          return StepStatus::Aborted;
        }
    }
    for (size_t I : Th.L.indicesOf(LocalKind::NotPushed)) {
      [[maybe_unused]] RuleResult R = M->push(T, I);
      assert(R.Applied && "validated push must succeed");
    }
    if (!M->commit(T).Applied) {
      abortAndRetry(T);
      return StepStatus::Aborted;
    }
    return StepStatus::Committed;
  }
  std::vector<AppChoice> Choices = M->appChoices(T);
  if (Choices.empty()) {
    abortAndRetry(T);
    return StepStatus::Aborted;
  }
  const AppChoice &C = Choices[Per[T].R.below(Choices.size())];
  size_t CompIdx = Per[T].R.below(C.Completions.size());
  M->app(T, C.StepIdx, CompIdx);
  return StepStatus::Progress;
}

void IrrevocableTM::abortAndRetry(TxId T) {
  [[maybe_unused]] bool Ok = rewindAll(T);
  assert(Ok && "optimistic rewind cannot be refused");
  ++Aborts;
  Per[T].SnapshotDone = false;
}
