//===- tm/HtmTM.cpp - Simulated hardware transactional memory ---------------===//

#include "tm/HtmTM.h"

#include "lang/StepFin.h"

using namespace pushpull;

HtmTM::HtmTM(PushPullMachine &M, HtmConfig Config)
    : TMEngine(M), Config(Config) {
  Rng Root(this->Config.Seed);
  Per.resize(M.threads().size());
  for (PerThread &P : Per)
    P.R = Root.split();
}

std::pair<std::string, Value> HtmTM::wordOf(const ResolvedCall &Call) {
  return {Call.Object, Call.Args.empty() ? Value(-1) : Call.Args[0]};
}

bool HtmTM::isWriteLike(const ResolvedCall &Call) {
  return Call.Method != "read" && Call.Method != "get" &&
         Call.Method != "contains" && Call.Method != "containsKey" &&
         Call.Method != "size";
}

bool HtmTM::wordConflict(TxId T, const ResolvedCall &Call,
                         bool IsWrite) const {
  auto W = wordOf(Call);
  for (size_t O = 0; O < Per.size(); ++O) {
    if (O == T || !M->thread(static_cast<TxId>(O)).InTx)
      continue;
    const PerThread &Other = Per[O];
    if (Other.WriteSet.count(W))
      return true;
    if (IsWrite && Other.ReadSet.count(W))
      return true;
  }
  return false;
}

StepStatus HtmTM::abortSelf(TxId T) {
  [[maybe_unused]] bool Ok = rewindAll(T);
  assert(Ok && "HTM rewind cannot be refused: nobody pulls uncommitted "
               "hardware state");
  Per[T].ReadSet.clear();
  Per[T].WriteSet.clear();
  ++Aborts;
  ++Per[T].Retries;
  return StepStatus::Aborted;
}

StepStatus HtmTM::step(TxId T) {
  const ThreadState &Th = M->thread(T);
  if (Th.done())
    return StepStatus::Finished;

  if (!Th.InTx) {
    // RTM fallback: after too many aborts, serialize behind a global lock.
    if (Per[T].Retries > Config.MaxRetries && !Per[T].HoldsFallback) {
      if (FallbackLock != NoOwner && FallbackLock != T)
        return StepStatus::Blocked;
      FallbackLock = T;
      Per[T].HoldsFallback = true;
      ++FallbackAcquisitions;
    }
    // Even without wanting the lock, wait while someone else holds it.
    if (FallbackLock != NoOwner && FallbackLock != T)
      return StepStatus::Blocked;
    M->beginTx(T);
    Per[T].ReadSet.clear();
    Per[T].WriteSet.clear();
    return StepStatus::Progress;
  }

  if (fin(Th.Code)) {
    // An HTM commit cannot fail (all effects pushed eagerly, all pulls
    // committed); abort defensively if a configuration ever breaks that.
    if (!M->commit(T).Applied)
      return abortSelf(T);
    Per[T].ReadSet.clear();
    Per[T].WriteSet.clear();
    Per[T].Retries = 0;
    if (Per[T].HoldsFallback) {
      Per[T].HoldsFallback = false;
      FallbackLock = NoOwner;
    }
    return StepStatus::Committed;
  }

  // Catch up on committed state so the APP's completion — and therefore
  // PUSH criterion (iii) — reflects the current coherent memory.
  for (size_t GI = 0; GI < M->global().size(); ++GI) {
    const GlobalEntry &E = M->global()[GI];
    if (E.Kind == GlobalKind::Committed && !Th.L.contains(E.Op.Id))
      M->pull(T, GI);
  }

  std::vector<AppChoice> Choices = M->appChoices(T);
  if (Choices.empty())
    return abortSelf(T);
  const AppChoice &C = Choices[Per[T].R.below(Choices.size())];
  auto Call = C.Item.Call.resolve(M->thread(T).Sigma);
  assert(Call && "appChoices returned an unresolvable call");
  bool IsWrite = isWriteLike(*Call);

  if (Config.WordGranularity && wordConflict(T, *Call, IsWrite)) {
    // The coherence protocol would abort us here.  Count it as a false
    // conflict when the semantic criteria would have accepted the push.
    PushPullMachine Probe = *M;
    size_t CompIdx = Per[T].R.below(C.Completions.size());
    if (Probe.app(T, C.StepIdx, CompIdx).Applied &&
        Probe.push(T, Probe.thread(T).L.size() - 1).Applied)
      ++FalseConflicts;
    return abortSelf(T);
  }

  size_t CompIdx = Per[T].R.below(C.Completions.size());
  if (!M->app(T, C.StepIdx, CompIdx).Applied)
    return abortSelf(T);

  // Eager publication: the store/load becomes coherence-visible at once.
  size_t Last = M->thread(T).L.size() - 1;
  if (!M->push(T, Last).Applied) {
    // Semantic conflict with another in-flight hardware transaction.
    return abortSelf(T);
  }

  (IsWrite ? Per[T].WriteSet : Per[T].ReadSet).insert(wordOf(*Call));
  return StepStatus::Progress;
}
