//===- spec/RegisterSpec.h - Word read/write memory -------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sequential specification of a bank of memory words — the substrate
/// of the word-based STMs of Section 6.2 (TL2, TinySTM, Intel STM) and of
/// the simulated HTM of Section 7.  Methods:
///
///   read(r)      -> current value of register r
///   write(r, v)  -> v (echoes the written value)
///
/// This is the paper's running example of `allowed`:
/// allowed l.<a := x, [x->5], [x->5, a->5], id> but not with a->3.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SPEC_REGISTERSPEC_H
#define PUSHPULL_SPEC_REGISTERSPEC_H

#include "core/Spec.h"

namespace pushpull {

/// A bank of \p NumRegs registers over the value domain {0..NumVals-1}.
/// The finite domain keeps the probe alphabet and state space finite, so
/// the coinductive checks are exact decision procedures here.
class RegisterSpec : public SequentialSpec {
public:
  RegisterSpec(std::string Object, unsigned NumRegs, unsigned NumVals);

  std::string name() const override;
  std::vector<State> initialStates() const override;
  std::vector<State> successors(const State &S,
                                const Operation &Op) const override;
  std::vector<Completion> completions(const State &S,
                                      const ResolvedCall &Call)
      const override;
  std::vector<Operation> probeOps() const override;
  std::vector<MethodSig> methods() const override;

  /// Algebraic hint: operations on different registers (or different
  /// objects) always commute.  Same-register pairs are left to the
  /// semantic check.
  Tri leftMoverHint(const Operation &A, const Operation &B) const override;

  const std::string &object() const { return Object; }
  unsigned numRegs() const { return NumRegs; }
  unsigned numVals() const { return NumVals; }

private:
  std::vector<Value> decode(const State &S) const;
  State encode(const std::vector<Value> &Regs) const;
  bool validReg(Value R) const;

  std::string Object;
  unsigned NumRegs;
  unsigned NumVals;
};

} // namespace pushpull

#endif // PUSHPULL_SPEC_REGISTERSPEC_H
