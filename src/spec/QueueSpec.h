//===- spec/QueueSpec.h - A FIFO queue (non-commutative) --------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded FIFO queue: the deliberately *non*-commutative stressor.
/// Almost no pair of queue operations are movers, so under this spec the
/// PUSH criteria force strict serial behaviour — the negative space of the
/// commutativity story (boosting gets no parallelism from a queue, as
/// Herlihy & Koskinen note for boosting generally).  Methods:
///
///   enq(v) -> 1 on success, 0 when full
///   deq()  -> front value, or Empty (-1) when empty
///   size() -> current length
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SPEC_QUEUESPEC_H
#define PUSHPULL_SPEC_QUEUESPEC_H

#include "core/Spec.h"

namespace pushpull {

/// A FIFO queue of capacity \p Capacity over values {0..NumVals-1}.
class QueueSpec : public SequentialSpec {
public:
  /// Result sentinel for deq() on an empty queue.
  static constexpr Value Empty = -1;

  QueueSpec(std::string Object, unsigned Capacity, unsigned NumVals);

  std::string name() const override;
  std::vector<State> initialStates() const override;
  std::vector<State> successors(const State &S,
                                const Operation &Op) const override;
  std::vector<Completion> completions(const State &S,
                                      const ResolvedCall &Call)
      const override;
  std::vector<Operation> probeOps() const override;
  std::vector<MethodSig> methods() const override;
  /// No algebraic shortcuts beyond object disjointness: queue operations
  /// genuinely fail to commute.
  Tri leftMoverHint(const Operation &A, const Operation &B) const override;

  const std::string &object() const { return Object; }

private:
  std::vector<Value> decode(const State &S) const;
  State encode(const std::vector<Value> &Q) const;

  std::string Object;
  unsigned Capacity;
  unsigned NumVals;
};

} // namespace pushpull

#endif // PUSHPULL_SPEC_QUEUESPEC_H
