//===- spec/SetSpec.h - A set with per-key commutativity --------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sequential specification of a set over a finite universe — the
/// abstraction of the boosted ConcurrentSkipList of Figure 2 and
/// Section 7.  Methods:
///
///   add(k)      -> 1 if k was inserted, 0 if already present
///   remove(k)   -> 1 if k was removed, 0 if absent
///   contains(k) -> 0/1
///
/// The commutativity structure is the one transactional boosting exploits
/// with per-key abstract locks: operations on distinct keys always
/// commute, which the leftMoverHint states algebraically (and tests
/// cross-validate against the semantic decision procedure).  Inverses —
/// what a boosted abort executes as UNPUSH — are add(k) ~ remove(k) when
/// the add returned 1, and no-ops otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SPEC_SETSPEC_H
#define PUSHPULL_SPEC_SETSPEC_H

#include "core/Spec.h"

namespace pushpull {

/// A set over the universe {0..Universe-1}.
class SetSpec : public SequentialSpec {
public:
  SetSpec(std::string Object, unsigned Universe);

  std::string name() const override;
  std::vector<State> initialStates() const override;
  std::vector<State> successors(const State &S,
                                const Operation &Op) const override;
  std::vector<Completion> completions(const State &S,
                                      const ResolvedCall &Call)
      const override;
  std::vector<Operation> probeOps() const override;
  std::vector<MethodSig> methods() const override;
  Tri leftMoverHint(const Operation &A, const Operation &B) const override;

  const std::string &object() const { return Object; }
  unsigned universe() const { return Universe; }

private:
  bool validKey(Value K) const;

  std::string Object;
  unsigned Universe;
};

} // namespace pushpull

#endif // PUSHPULL_SPEC_SETSPEC_H
