//===- spec/CounterSpec.cpp - Commutative counters --------------------------===//

#include "spec/CounterSpec.h"

#include "support/Str.h"

#include <cassert>

using namespace pushpull;

CounterSpec::CounterSpec(std::string Object, unsigned NumCounters,
                         unsigned Modulus)
    : Object(std::move(Object)), NumCounters(NumCounters), Modulus(Modulus) {
  assert(NumCounters > 0 && Modulus > 0 && "degenerate counter bank");
}

std::string CounterSpec::name() const {
  return "counters(" + Object + ",n=" + std::to_string(NumCounters) +
         ",mod=" + std::to_string(Modulus) + ")";
}

std::vector<Value> CounterSpec::decode(const State &S) const {
  std::vector<Value> Out;
  for (const std::string &Part : splitOn(S, ','))
    Out.push_back(std::stoll(Part));
  assert(Out.size() == NumCounters && "malformed counter state");
  return Out;
}

State CounterSpec::encode(const std::vector<Value> &Cs) const {
  std::vector<std::string> Parts;
  for (Value V : Cs)
    Parts.push_back(std::to_string(V));
  return join(Parts, ",");
}

bool CounterSpec::validIdx(Value I) const {
  return I >= 0 && I < static_cast<Value>(NumCounters);
}

std::vector<State> CounterSpec::initialStates() const {
  return {encode(std::vector<Value>(NumCounters, 0))};
}

std::vector<State> CounterSpec::successors(const State &S,
                                           const Operation &Op) const {
  if (Op.Call.Object != Object)
    return {};
  const ResolvedCall &C = Op.Call;
  std::vector<Value> Cs = decode(S);
  Value Mod = static_cast<Value>(Modulus);

  // Blind updates: no observable result, hence genuinely commutative.
  if (C.Method == "inc" || C.Method == "dec") {
    if (C.Args.size() != 1 || !validIdx(C.Args[0]) || Op.Result)
      return {};
    Value Delta = C.Method == "inc" ? 1 : Mod - 1;
    Cs[C.Args[0]] = (Cs[C.Args[0]] + Delta) % Mod;
    return {encode(Cs)};
  }
  if (C.Method == "add") {
    if (C.Args.size() != 2 || !validIdx(C.Args[0]) || Op.Result)
      return {};
    Value Delta = ((C.Args[1] % Mod) + Mod) % Mod;
    Cs[C.Args[0]] = (Cs[C.Args[0]] + Delta) % Mod;
    return {encode(Cs)};
  }
  if (C.Method == "read") {
    if (C.Args.size() != 1 || !validIdx(C.Args[0]))
      return {};
    if (!Op.Result || *Op.Result != Cs[C.Args[0]])
      return {};
    return {S};
  }
  return {};
}

std::vector<Completion>
CounterSpec::completions(const State &S, const ResolvedCall &Call) const {
  if (Call.Object != Object)
    return {};
  if (Call.Method == "inc" || Call.Method == "dec") {
    if (Call.Args.size() != 1 || !validIdx(Call.Args[0]))
      return {};
    return {Completion{std::nullopt}};
  }
  if (Call.Method == "add") {
    if (Call.Args.size() != 2 || !validIdx(Call.Args[0]))
      return {};
    return {Completion{std::nullopt}};
  }
  if (Call.Method == "read") {
    if (Call.Args.size() != 1 || !validIdx(Call.Args[0]))
      return {};
    return {Completion{decode(S)[Call.Args[0]]}};
  }
  return {};
}

std::vector<Operation> CounterSpec::probeOps() const {
  std::vector<Operation> Out;
  for (unsigned I = 0; I < NumCounters; ++I) {
    Value Idx = static_cast<Value>(I);
    Operation Inc;
    Inc.Call = {Object, "inc", {Idx}};
    Out.push_back(Inc);
    Operation Dec;
    Dec.Call = {Object, "dec", {Idx}};
    Out.push_back(Dec);
    for (unsigned V = 0; V < Modulus; ++V) {
      Operation Read;
      Read.Call = {Object, "read", {Idx}};
      Read.Result = static_cast<Value>(V);
      Out.push_back(Read);
    }
  }
  return Out;
}

static bool isBlindUpdate(const Operation &Op) {
  return Op.Call.Method == "inc" || Op.Call.Method == "dec" ||
         Op.Call.Method == "add";
}

/// Apply \p Op to a single counter with value \p Cur (mod \p Mod).
static std::optional<Value> applyOneCounter(Value Cur, const Operation &Op,
                                            Value Mod) {
  const std::string &Mth = Op.Call.Method;
  if (Mth == "inc")
    return (Cur + 1) % Mod;
  if (Mth == "dec")
    return (Cur + Mod - 1) % Mod;
  if (Mth == "add" && Op.Call.Args.size() == 2)
    return (Cur + ((Op.Call.Args[1] % Mod) + Mod) % Mod) % Mod;
  if (Mth == "read") {
    if (!Op.Result || *Op.Result != Cur)
      return std::nullopt;
    return Cur;
  }
  return std::nullopt;
}

Tri CounterSpec::leftMoverHint(const Operation &A, const Operation &B) const {
  if (A.Call.Object != B.Call.Object)
    return Tri::Yes;
  if (A.Call.Object != Object)
    return Tri::Unknown;
  if (A.Call.Args.empty() || B.Call.Args.empty())
    return Tri::Unknown;
  if (A.Call.Args[0] != B.Call.Args[0])
    return Tri::Yes; // Different counters commute.
  if (isBlindUpdate(A) && isBlindUpdate(B))
    return Tri::Yes; // Modular addition is commutative.
  if (!validIdx(A.Call.Args[0]))
    return Tri::Unknown;

  // Same counter with a read involved: decide exactly over the counter's
  // full (reachable, observable) value ring.
  Value Mod = static_cast<Value>(Modulus);
  for (Value Cur = 0; Cur < Mod; ++Cur) {
    auto S1 = applyOneCounter(Cur, A, Mod);
    if (!S1)
      continue;
    auto S2 = applyOneCounter(*S1, B, Mod);
    if (!S2)
      continue; // l.A.B not allowed here: vacuous.
    auto T1 = applyOneCounter(Cur, B, Mod);
    if (!T1)
      return Tri::No;
    auto T2 = applyOneCounter(*T1, A, Mod);
    if (!T2 || *T2 != *S2)
      return Tri::No;
  }
  return Tri::Yes;
}

std::vector<MethodSig> CounterSpec::methods() const {
  return {{Object, "inc", 1, false},
          {Object, "dec", 1, false},
          {Object, "add", 2, false},
          {Object, "read", 1, true}};
}
