//===- spec/SetSpec.cpp - A set with per-key commutativity ------------------===//

#include "spec/SetSpec.h"

#include <cassert>

using namespace pushpull;

// State encoding: one character per universe element, '0' or '1'.

SetSpec::SetSpec(std::string Object, unsigned Universe)
    : Object(std::move(Object)), Universe(Universe) {
  assert(Universe > 0 && "degenerate set universe");
}

std::string SetSpec::name() const {
  return "set(" + Object + ",u=" + std::to_string(Universe) + ")";
}

bool SetSpec::validKey(Value K) const {
  return K >= 0 && K < static_cast<Value>(Universe);
}

std::vector<State> SetSpec::initialStates() const {
  return {State(Universe, '0')};
}

std::vector<State> SetSpec::successors(const State &S,
                                       const Operation &Op) const {
  if (Op.Call.Object != Object)
    return {};
  const ResolvedCall &C = Op.Call;
  if (C.Args.size() != 1 || !validKey(C.Args[0]) || !Op.Result)
    return {};
  assert(S.size() == Universe && "malformed set state");
  size_t K = static_cast<size_t>(C.Args[0]);
  bool Present = S[K] == '1';

  if (C.Method == "add") {
    if (*Op.Result != (Present ? 0 : 1))
      return {};
    State N = S;
    N[K] = '1';
    return {N};
  }
  if (C.Method == "remove") {
    if (*Op.Result != (Present ? 1 : 0))
      return {};
    State N = S;
    N[K] = '0';
    return {N};
  }
  if (C.Method == "contains") {
    if (*Op.Result != (Present ? 1 : 0))
      return {};
    return {S};
  }
  return {};
}

std::vector<Completion>
SetSpec::completions(const State &S, const ResolvedCall &Call) const {
  if (Call.Object != Object)
    return {};
  if (Call.Args.size() != 1 || !validKey(Call.Args[0]))
    return {};
  bool Present = S[static_cast<size_t>(Call.Args[0])] == '1';
  if (Call.Method == "add")
    return {Completion{Present ? 0 : 1}};
  if (Call.Method == "remove")
    return {Completion{Present ? 1 : 0}};
  if (Call.Method == "contains")
    return {Completion{Present ? 1 : 0}};
  return {};
}

std::vector<Operation> SetSpec::probeOps() const {
  std::vector<Operation> Out;
  static const char *Methods[] = {"add", "remove", "contains"};
  for (unsigned K = 0; K < Universe; ++K)
    for (const char *M : Methods)
      for (Value R : {Value(0), Value(1)}) {
        Operation Op;
        Op.Call = {Object, M, {static_cast<Value>(K)}};
        Op.Result = R;
        Out.push_back(Op);
      }
  return Out;
}

/// Apply \p Op to a single key whose presence bit is \p Present.  Returns
/// the new presence bit, or nullopt when the recorded result contradicts.
static std::optional<bool> applyOneKey(bool Present, const Operation &Op) {
  if (!Op.Result)
    return std::nullopt;
  Value R = *Op.Result;
  if (Op.Call.Method == "add")
    return R == (Present ? 0 : 1) ? std::optional<bool>(true) : std::nullopt;
  if (Op.Call.Method == "remove")
    return R == (Present ? 1 : 0) ? std::optional<bool>(false)
                                  : std::nullopt;
  if (Op.Call.Method == "contains")
    return R == (Present ? 1 : 0) ? std::optional<bool>(Present)
                                  : std::nullopt;
  return std::nullopt;
}

Tri SetSpec::leftMoverHint(const Operation &A, const Operation &B) const {
  if (A.Call.Object != B.Call.Object)
    return Tri::Yes;
  if (A.Call.Object != Object)
    return Tri::Unknown;
  if (A.Call.Args.size() != 1 || B.Call.Args.size() != 1)
    return Tri::Unknown;
  if (A.Call.Args[0] != B.Call.Args[0])
    return Tri::Yes; // Distinct keys commute: boosting's abstract locks.
  if (!validKey(A.Call.Args[0]))
    return Tri::Unknown;

  // Same key: decide exactly over the key's two (both reachable,
  // observable) states.
  for (bool Present : {false, true}) {
    auto S1 = applyOneKey(Present, A);
    if (!S1)
      continue;
    auto S2 = applyOneKey(*S1, B);
    if (!S2)
      continue; // l.A.B not allowed here: vacuous.
    auto T1 = applyOneKey(Present, B);
    if (!T1)
      return Tri::No;
    auto T2 = applyOneKey(*T1, A);
    if (!T2 || *T2 != *S2)
      return Tri::No;
  }
  return Tri::Yes;
}

std::vector<MethodSig> SetSpec::methods() const {
  return {{Object, "add", 1, true},
          {Object, "remove", 1, true},
          {Object, "contains", 1, true}};
}
