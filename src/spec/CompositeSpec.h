//===- spec/CompositeSpec.h - Disjoint products of specs --------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The disjoint product of named sub-specifications: the Section 7 system
/// mixes a boosted skiplist, a boosted hashtable, and HTM-controlled
/// integers inside one transaction, so the shared log interleaves
/// operations of several objects.  Composite states are tuples of
/// sub-states; operations route to the sub-spec owning their object;
/// operations on different objects always commute (the product is
/// disjoint), and same-object moverness delegates to the sub-spec's hint.
///
/// Note the probe alphabet is the *union* of the parts' alphabets, so the
/// composite's reachable state-set space is the product of the parts' —
/// keep parts small when exactness matters (bench_mover measures this
/// growth; it is the cost the paper's uniform treatment buys).
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SPEC_COMPOSITESPEC_H
#define PUSHPULL_SPEC_COMPOSITESPEC_H

#include "core/Spec.h"

#include <memory>

namespace pushpull {

/// Product of independently named sub-specs.
class CompositeSpec : public SequentialSpec {
public:
  CompositeSpec() = default;

  /// Register \p Part as the owner of operations on \p Object.  Objects
  /// must be distinct; parts judge only calls naming their object.
  void add(std::string Object, std::shared_ptr<const SequentialSpec> Part);

  std::string name() const override;
  std::vector<State> initialStates() const override;
  std::vector<State> successors(const State &S,
                                const Operation &Op) const override;
  std::vector<Completion> completions(const State &S,
                                      const ResolvedCall &Call)
      const override;
  std::vector<Operation> probeOps() const override;
  std::vector<MethodSig> methods() const override;
  Tri leftMoverHint(const Operation &A, const Operation &B) const override;

  size_t partCount() const { return Parts.size(); }

private:
  /// Index of the part owning \p Object, or npos.
  size_t partFor(const std::string &Object) const;
  static constexpr size_t npos = static_cast<size_t>(-1);

  std::vector<std::string> split(const State &S) const;
  State joinParts(const std::vector<std::string> &Sub) const;

  std::vector<std::string> Objects;
  std::vector<std::shared_ptr<const SequentialSpec>> Parts;
};

} // namespace pushpull

#endif // PUSHPULL_SPEC_COMPOSITESPEC_H
