//===- spec/BankSpec.cpp - Bank accounts (mixed commutativity) --------------===//

#include "spec/BankSpec.h"

#include "support/Str.h"

#include <cassert>

using namespace pushpull;

BankSpec::BankSpec(std::string Object, unsigned NumAccounts, unsigned Cap,
                   unsigned InitialBalance)
    : Object(std::move(Object)), NumAccounts(NumAccounts), Cap(Cap),
      InitialBalance(InitialBalance) {
  assert(NumAccounts > 0 && Cap > 0 && "degenerate bank");
  assert(InitialBalance <= Cap && "initial balance above cap");
}

std::string BankSpec::name() const {
  return "bank(" + Object + ",n=" + std::to_string(NumAccounts) +
         ",cap=" + std::to_string(Cap) + ")";
}

std::vector<Value> BankSpec::decode(const State &S) const {
  std::vector<Value> Out;
  for (const std::string &Part : splitOn(S, ','))
    Out.push_back(std::stoll(Part));
  assert(Out.size() == NumAccounts && "malformed bank state");
  return Out;
}

State BankSpec::encode(const std::vector<Value> &B) const {
  std::vector<std::string> Parts;
  for (Value V : B)
    Parts.push_back(std::to_string(V));
  return join(Parts, ",");
}

bool BankSpec::validAccount(Value A) const {
  return A >= 0 && A < static_cast<Value>(NumAccounts);
}

bool BankSpec::touchesOneAccount(const Operation &Op) const {
  return Op.Call.Method != "transfer";
}

std::optional<Value> BankSpec::applyOneAccount(Value Balance,
                                               const Operation &Op) const {
  const ResolvedCall &C = Op.Call;
  Value CapV = static_cast<Value>(Cap);
  if (C.Method == "deposit") {
    if (C.Args.size() != 2 || C.Args[1] < 0 || Op.Result)
      return std::nullopt;
    return std::min(Balance + C.Args[1], CapV);
  }
  if (C.Method == "withdraw") {
    if (C.Args.size() != 2 || C.Args[1] < 0 || !Op.Result)
      return std::nullopt;
    bool Enough = Balance >= C.Args[1];
    if (*Op.Result != (Enough ? 1 : 0))
      return std::nullopt;
    return Enough ? Balance - C.Args[1] : Balance;
  }
  if (C.Method == "balance") {
    if (C.Args.size() != 1 || !Op.Result || *Op.Result != Balance)
      return std::nullopt;
    return Balance;
  }
  return std::nullopt;
}

std::vector<State> BankSpec::initialStates() const {
  return {encode(std::vector<Value>(
      NumAccounts, static_cast<Value>(InitialBalance)))};
}

std::vector<State> BankSpec::successors(const State &S,
                                        const Operation &Op) const {
  if (Op.Call.Object != Object)
    return {};
  const ResolvedCall &C = Op.Call;
  if (C.Args.empty() || !validAccount(C.Args[0]))
    return {};
  std::vector<Value> B = decode(S);

  if (C.Method == "transfer") {
    if (C.Args.size() != 3 || !validAccount(C.Args[1]) || C.Args[2] < 0 ||
        !Op.Result)
      return {};
    Value From = C.Args[0], To = C.Args[1], Amt = C.Args[2];
    bool Enough = B[From] >= Amt;
    if (*Op.Result != (Enough ? 1 : 0))
      return {};
    if (Enough && From != To) {
      B[From] -= Amt;
      B[To] = std::min(B[To] + Amt, static_cast<Value>(Cap));
    }
    return {encode(B)};
  }

  auto N = applyOneAccount(B[C.Args[0]], Op);
  if (!N)
    return {};
  B[C.Args[0]] = *N;
  return {encode(B)};
}

std::vector<Completion>
BankSpec::completions(const State &S, const ResolvedCall &Call) const {
  if (Call.Object != Object)
    return {};
  if (Call.Args.empty() || !validAccount(Call.Args[0]))
    return {};
  std::vector<Value> B = decode(S);
  if (Call.Method == "deposit") {
    if (Call.Args.size() != 2 || Call.Args[1] < 0)
      return {};
    return {Completion{std::nullopt}};
  }
  if (Call.Method == "withdraw") {
    if (Call.Args.size() != 2 || Call.Args[1] < 0)
      return {};
    return {Completion{B[Call.Args[0]] >= Call.Args[1] ? Value(1)
                                                       : Value(0)}};
  }
  if (Call.Method == "balance") {
    if (Call.Args.size() != 1)
      return {};
    return {Completion{B[Call.Args[0]]}};
  }
  if (Call.Method == "transfer") {
    if (Call.Args.size() != 3 || !validAccount(Call.Args[1]) ||
        Call.Args[2] < 0)
      return {};
    return {Completion{B[Call.Args[0]] >= Call.Args[2] ? Value(1)
                                                       : Value(0)}};
  }
  return {};
}

std::vector<Operation> BankSpec::probeOps() const {
  std::vector<Operation> Out;
  for (unsigned A = 0; A < NumAccounts; ++A) {
    Value Acct = static_cast<Value>(A);
    // Deposits/withdrawals of 1 and of Cap distinguish boundary states;
    // balance probes observe everything.
    for (Value Amt : {Value(1), static_cast<Value>(Cap)}) {
      Operation Dep;
      Dep.Call = {Object, "deposit", {Acct, Amt}};
      Out.push_back(Dep);
      for (Value R : {Value(0), Value(1)}) {
        Operation Wd;
        Wd.Call = {Object, "withdraw", {Acct, Amt}};
        Wd.Result = R;
        Out.push_back(Wd);
      }
    }
    for (unsigned V = 0; V <= Cap; ++V) {
      Operation Bal;
      Bal.Call = {Object, "balance", {Acct}};
      Bal.Result = static_cast<Value>(V);
      Out.push_back(Bal);
    }
  }
  return Out;
}

Tri BankSpec::leftMoverHint(const Operation &A, const Operation &B) const {
  if (A.Call.Object != B.Call.Object)
    return Tri::Yes;
  if (A.Call.Object != Object)
    return Tri::Unknown;
  if (A.Call.Args.empty() || B.Call.Args.empty())
    return Tri::Unknown;
  // Transfers touch two accounts; leave them to the semantic engine.
  if (!touchesOneAccount(A) || !touchesOneAccount(B))
    return Tri::Unknown;
  if (A.Call.Args[0] != B.Call.Args[0])
    return Tri::Yes; // Different accounts commute.

  // Same account: exact per-account simulation over the full (reachable,
  // observable via balance) balance range.
  for (Value Bal = 0; Bal <= static_cast<Value>(Cap); ++Bal) {
    auto S1 = applyOneAccount(Bal, A);
    if (!S1)
      continue;
    auto S2 = applyOneAccount(*S1, B);
    if (!S2)
      continue; // l.A.B not allowed here: vacuous.
    auto T1 = applyOneAccount(Bal, B);
    if (!T1)
      return Tri::No;
    auto T2 = applyOneAccount(*T1, A);
    if (!T2 || *T2 != *S2)
      return Tri::No;
  }
  return Tri::Yes;
}

std::vector<MethodSig> BankSpec::methods() const {
  return {{Object, "deposit", 2, false},
          {Object, "withdraw", 2, true},
          {Object, "balance", 1, true},
          {Object, "transfer", 3, true}};
}
