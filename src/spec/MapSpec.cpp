//===- spec/MapSpec.cpp - A key/value map (boosted hashtable) ---------------===//

#include "spec/MapSpec.h"

#include "support/Str.h"

#include <cassert>

using namespace pushpull;

// State encoding: comma-joined per-key values, Absent rendered as -1.

MapSpec::MapSpec(std::string Object, unsigned NumKeys, unsigned NumVals)
    : Object(std::move(Object)), NumKeys(NumKeys), NumVals(NumVals) {
  assert(NumKeys > 0 && NumVals > 0 && "degenerate map");
}

std::string MapSpec::name() const {
  return "map(" + Object + ",k=" + std::to_string(NumKeys) +
         ",v=" + std::to_string(NumVals) + ")";
}

std::vector<Value> MapSpec::decode(const State &S) const {
  std::vector<Value> Out;
  for (const std::string &Part : splitOn(S, ','))
    Out.push_back(std::stoll(Part));
  assert(Out.size() == NumKeys && "malformed map state");
  return Out;
}

State MapSpec::encode(const std::vector<Value> &M) const {
  std::vector<std::string> Parts;
  for (Value V : M)
    Parts.push_back(std::to_string(V));
  return join(Parts, ",");
}

bool MapSpec::validKey(Value K) const {
  return K >= 0 && K < static_cast<Value>(NumKeys);
}

bool MapSpec::validVal(Value V) const {
  return V >= 0 && V < static_cast<Value>(NumVals);
}

std::vector<State> MapSpec::initialStates() const {
  return {encode(std::vector<Value>(NumKeys, Absent))};
}

std::vector<State> MapSpec::successors(const State &S,
                                       const Operation &Op) const {
  if (Op.Call.Object != Object)
    return {};
  const ResolvedCall &C = Op.Call;
  if (C.Args.empty() || !validKey(C.Args[0]) || !Op.Result)
    return {};
  std::vector<Value> M = decode(S);
  size_t K = static_cast<size_t>(C.Args[0]);
  Value Old = M[K];

  if (C.Method == "put") {
    if (C.Args.size() != 2 || !validVal(C.Args[1]))
      return {};
    if (*Op.Result != Old)
      return {};
    M[K] = C.Args[1];
    return {encode(M)};
  }
  if (C.Method == "get") {
    if (C.Args.size() != 1 || *Op.Result != Old)
      return {};
    return {S};
  }
  if (C.Method == "remove") {
    if (C.Args.size() != 1 || *Op.Result != Old)
      return {};
    M[K] = Absent;
    return {encode(M)};
  }
  if (C.Method == "containsKey") {
    if (C.Args.size() != 1 || *Op.Result != (Old == Absent ? 0 : 1))
      return {};
    return {S};
  }
  return {};
}

std::vector<Completion>
MapSpec::completions(const State &S, const ResolvedCall &Call) const {
  if (Call.Object != Object)
    return {};
  if (Call.Args.empty() || !validKey(Call.Args[0]))
    return {};
  Value Old = decode(S)[static_cast<size_t>(Call.Args[0])];
  if (Call.Method == "put") {
    if (Call.Args.size() != 2 || !validVal(Call.Args[1]))
      return {};
    return {Completion{Old}};
  }
  if (Call.Method == "get" && Call.Args.size() == 1)
    return {Completion{Old}};
  if (Call.Method == "remove" && Call.Args.size() == 1)
    return {Completion{Old}};
  if (Call.Method == "containsKey" && Call.Args.size() == 1)
    return {Completion{Old == Absent ? Value(0) : Value(1)}};
  return {};
}

std::vector<Operation> MapSpec::probeOps() const {
  std::vector<Operation> Out;
  for (unsigned K = 0; K < NumKeys; ++K) {
    Value Key = static_cast<Value>(K);
    // Possible observed "previous" values: Absent or any valid value.
    std::vector<Value> Observables;
    Observables.push_back(Absent);
    for (unsigned V = 0; V < NumVals; ++V)
      Observables.push_back(static_cast<Value>(V));

    for (unsigned V = 0; V < NumVals; ++V)
      for (Value Old : Observables) {
        Operation Put;
        Put.Call = {Object, "put", {Key, static_cast<Value>(V)}};
        Put.Result = Old;
        Out.push_back(Put);
      }
    for (Value Old : Observables) {
      Operation Get;
      Get.Call = {Object, "get", {Key}};
      Get.Result = Old;
      Out.push_back(Get);

      Operation Rem;
      Rem.Call = {Object, "remove", {Key}};
      Rem.Result = Old;
      Out.push_back(Rem);
    }
    for (Value B : {Value(0), Value(1)}) {
      Operation Has;
      Has.Call = {Object, "containsKey", {Key}};
      Has.Result = B;
      Out.push_back(Has);
    }
  }
  return Out;
}

/// Apply \p Op to a single key whose current mapping is \p Cur (possibly
/// Absent).  Returns the new mapping, or nullopt when the recorded result
/// contradicts.
static std::optional<Value> applyOneMapKey(Value Cur, const Operation &Op) {
  if (!Op.Result)
    return std::nullopt;
  Value R = *Op.Result;
  if (Op.Call.Method == "put" && Op.Call.Args.size() == 2)
    return R == Cur ? std::optional<Value>(Op.Call.Args[1]) : std::nullopt;
  if (Op.Call.Method == "get")
    return R == Cur ? std::optional<Value>(Cur) : std::nullopt;
  if (Op.Call.Method == "remove")
    return R == Cur ? std::optional<Value>(MapSpec::Absent) : std::nullopt;
  if (Op.Call.Method == "containsKey")
    return R == (Cur == MapSpec::Absent ? 0 : 1) ? std::optional<Value>(Cur)
                                                 : std::nullopt;
  return std::nullopt;
}

Tri MapSpec::leftMoverHint(const Operation &A, const Operation &B) const {
  if (A.Call.Object != B.Call.Object)
    return Tri::Yes;
  if (A.Call.Object != Object)
    return Tri::Unknown;
  if (A.Call.Args.empty() || B.Call.Args.empty())
    return Tri::Unknown;
  if (A.Call.Args[0] != B.Call.Args[0])
    return Tri::Yes; // Figure 2's abstract-lock discipline: distinct keys.
  if (!validKey(A.Call.Args[0]))
    return Tri::Unknown;

  // Same key: decide exactly over the key's Absent + NumVals states (all
  // reachable, all observable via get).
  for (Value Cur = Absent; Cur < static_cast<Value>(NumVals); ++Cur) {
    auto S1 = applyOneMapKey(Cur, A);
    if (!S1)
      continue;
    auto S2 = applyOneMapKey(*S1, B);
    if (!S2)
      continue; // l.A.B not allowed here: vacuous.
    auto T1 = applyOneMapKey(Cur, B);
    if (!T1)
      return Tri::No;
    auto T2 = applyOneMapKey(*T1, A);
    if (!T2 || *T2 != *S2)
      return Tri::No;
  }
  return Tri::Yes;
}

std::vector<MethodSig> MapSpec::methods() const {
  return {{Object, "put", 2, true},
          {Object, "get", 1, true},
          {Object, "remove", 1, true},
          {Object, "containsKey", 1, true}};
}
