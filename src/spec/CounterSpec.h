//===- spec/CounterSpec.h - Commutative counters ----------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters with modular arithmetic — the "HTM int size, x, y" variables
/// of the Section 7 example.  Methods:
///
///   inc(i)     -> new value       dec(i) -> new value
///   add(i, k)  -> new value       read(i) -> current value
///
/// Increments on the same counter commute with each other (their hints say
/// so algebraically) but not with reads — the classic boosting example.
/// Arithmetic is modulo a configured modulus so the state space stays
/// finite and the coinductive checks stay exact.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SPEC_COUNTERSPEC_H
#define PUSHPULL_SPEC_COUNTERSPEC_H

#include "core/Spec.h"

namespace pushpull {

/// \p NumCounters counters over Z_Modulus.
class CounterSpec : public SequentialSpec {
public:
  CounterSpec(std::string Object, unsigned NumCounters, unsigned Modulus);

  std::string name() const override;
  std::vector<State> initialStates() const override;
  std::vector<State> successors(const State &S,
                                const Operation &Op) const override;
  std::vector<Completion> completions(const State &S,
                                      const ResolvedCall &Call)
      const override;
  std::vector<Operation> probeOps() const override;
  std::vector<MethodSig> methods() const override;

  /// Hints: different objects/counters commute; inc/dec/add on the same
  /// counter commute with each other only when their *results* are not
  /// observable... which they are (they return the new value), so
  /// same-counter pairs go to the semantic check.  See the `blindAdd`
  /// method for the genuinely commutative variant.
  Tri leftMoverHint(const Operation &A, const Operation &B) const override;

  const std::string &object() const { return Object; }
  unsigned numCounters() const { return NumCounters; }
  unsigned modulus() const { return Modulus; }

private:
  std::vector<Value> decode(const State &S) const;
  State encode(const std::vector<Value> &Cs) const;
  bool validIdx(Value I) const;

  std::string Object;
  unsigned NumCounters;
  unsigned Modulus;
};

} // namespace pushpull

#endif // PUSHPULL_SPEC_COUNTERSPEC_H
