//===- spec/CompositeSpec.cpp - Disjoint products of specs ------------------===//

#include "spec/CompositeSpec.h"

#include <cassert>

using namespace pushpull;

// Composite state encoding: sub-states joined with '\x1c' (sub-encodings
// never contain it).

void CompositeSpec::add(std::string Object,
                        std::shared_ptr<const SequentialSpec> Part) {
  assert(Part && "null sub-spec");
  assert(partFor(Object) == npos && "duplicate object in composite");
  Objects.push_back(std::move(Object));
  Parts.push_back(std::move(Part));
}

size_t CompositeSpec::partFor(const std::string &Object) const {
  for (size_t I = 0; I < Objects.size(); ++I)
    if (Objects[I] == Object)
      return I;
  return npos;
}

std::vector<std::string> CompositeSpec::split(const State &S) const {
  std::vector<std::string> Out;
  size_t Start = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == '\x1c') {
      Out.push_back(S.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  assert(Out.size() == Parts.size() && "malformed composite state");
  return Out;
}

State CompositeSpec::joinParts(const std::vector<std::string> &Sub) const {
  State Out;
  for (size_t I = 0; I < Sub.size(); ++I) {
    if (I)
      Out += '\x1c';
    Out += Sub[I];
  }
  return Out;
}

std::string CompositeSpec::name() const {
  std::string Out = "composite(";
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I)
      Out += " x ";
    Out += Parts[I]->name();
  }
  return Out + ")";
}

std::vector<State> CompositeSpec::initialStates() const {
  assert(!Parts.empty() && "empty composite");
  // Cartesian product of the parts' initial states.
  std::vector<std::vector<std::string>> Tuples = {{}};
  for (const auto &Part : Parts) {
    std::vector<std::vector<std::string>> Next;
    for (const State &PS : Part->initialStates())
      for (const auto &T : Tuples) {
        auto Ext = T;
        Ext.push_back(PS);
        Next.push_back(std::move(Ext));
      }
    Tuples = std::move(Next);
  }
  std::vector<State> Out;
  for (const auto &T : Tuples)
    Out.push_back(joinParts(T));
  return Out;
}

std::vector<State> CompositeSpec::successors(const State &S,
                                             const Operation &Op) const {
  size_t P = partFor(Op.Call.Object);
  if (P == npos)
    return {};
  std::vector<std::string> Sub = split(S);
  std::vector<State> Out;
  for (State &N : Parts[P]->successors(Sub[P], Op)) {
    std::vector<std::string> NewSub = Sub;
    NewSub[P] = std::move(N);
    Out.push_back(joinParts(NewSub));
  }
  return Out;
}

std::vector<Completion>
CompositeSpec::completions(const State &S, const ResolvedCall &Call) const {
  size_t P = partFor(Call.Object);
  if (P == npos)
    return {};
  return Parts[P]->completions(split(S)[P], Call);
}

std::vector<Operation> CompositeSpec::probeOps() const {
  std::vector<Operation> Out;
  for (const auto &Part : Parts)
    for (Operation &Op : Part->probeOps())
      Out.push_back(std::move(Op));
  return Out;
}

Tri CompositeSpec::leftMoverHint(const Operation &A,
                                 const Operation &B) const {
  if (A.Call.Object != B.Call.Object)
    return Tri::Yes; // Disjoint components always commute.
  size_t P = partFor(A.Call.Object);
  if (P == npos)
    return Tri::Unknown;
  return Parts[P]->leftMoverHint(A, B);
}

std::vector<MethodSig> CompositeSpec::methods() const {
  std::vector<MethodSig> Out;
  for (const auto &Part : Parts)
    for (MethodSig &S : Part->methods())
      Out.push_back(std::move(S));
  return Out;
}
