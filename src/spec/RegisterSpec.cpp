//===- spec/RegisterSpec.cpp - Word read/write memory ----------------------===//

#include "spec/RegisterSpec.h"

#include "support/Str.h"

#include <cassert>

using namespace pushpull;

RegisterSpec::RegisterSpec(std::string Object, unsigned NumRegs,
                           unsigned NumVals)
    : Object(std::move(Object)), NumRegs(NumRegs), NumVals(NumVals) {
  assert(NumRegs > 0 && NumVals > 0 && "degenerate register bank");
}

std::string RegisterSpec::name() const {
  return "registers(" + Object + ",r=" + std::to_string(NumRegs) +
         ",v=" + std::to_string(NumVals) + ")";
}

std::vector<Value> RegisterSpec::decode(const State &S) const {
  std::vector<Value> Out;
  for (const std::string &Part : splitOn(S, ','))
    Out.push_back(std::stoll(Part));
  assert(Out.size() == NumRegs && "malformed register state");
  return Out;
}

State RegisterSpec::encode(const std::vector<Value> &Regs) const {
  std::vector<std::string> Parts;
  for (Value V : Regs)
    Parts.push_back(std::to_string(V));
  return join(Parts, ",");
}

bool RegisterSpec::validReg(Value R) const {
  return R >= 0 && R < static_cast<Value>(NumRegs);
}

std::vector<State> RegisterSpec::initialStates() const {
  return {encode(std::vector<Value>(NumRegs, 0))};
}

std::vector<State> RegisterSpec::successors(const State &S,
                                            const Operation &Op) const {
  if (Op.Call.Object != Object)
    return {};
  std::vector<Value> Regs = decode(S);
  const ResolvedCall &C = Op.Call;
  if (C.Method == "read") {
    if (C.Args.size() != 1 || !validReg(C.Args[0]))
      return {};
    if (!Op.Result || *Op.Result != Regs[C.Args[0]])
      return {};
    return {S};
  }
  if (C.Method == "write") {
    if (C.Args.size() != 2 || !validReg(C.Args[0]))
      return {};
    Value V = C.Args[1];
    if (V < 0 || V >= static_cast<Value>(NumVals))
      return {};
    if (Op.Result && *Op.Result != V)
      return {};
    Regs[C.Args[0]] = V;
    return {encode(Regs)};
  }
  return {};
}

std::vector<Completion>
RegisterSpec::completions(const State &S, const ResolvedCall &Call) const {
  if (Call.Object != Object)
    return {};
  if (Call.Method == "read") {
    if (Call.Args.size() != 1 || !validReg(Call.Args[0]))
      return {};
    return {Completion{decode(S)[Call.Args[0]]}};
  }
  if (Call.Method == "write") {
    if (Call.Args.size() != 2 || !validReg(Call.Args[0]))
      return {};
    if (Call.Args[1] < 0 || Call.Args[1] >= static_cast<Value>(NumVals))
      return {};
    return {Completion{Call.Args[1]}};
  }
  return {};
}

std::vector<Operation> RegisterSpec::probeOps() const {
  std::vector<Operation> Out;
  for (unsigned R = 0; R < NumRegs; ++R) {
    for (unsigned V = 0; V < NumVals; ++V) {
      Operation Read;
      Read.Call = {Object, "read", {static_cast<Value>(R)}};
      Read.Result = static_cast<Value>(V);
      Out.push_back(Read);

      Operation Write;
      Write.Call = {Object, "write",
                    {static_cast<Value>(R), static_cast<Value>(V)}};
      Write.Result = static_cast<Value>(V);
      Out.push_back(Write);
    }
  }
  return Out;
}

/// Apply \p Op to a single register whose current value is \p Cur.
/// Returns the new value, or nullopt when the operation is not allowed.
static std::optional<Value> applyOneReg(Value Cur, const Operation &Op) {
  if (Op.Call.Method == "read") {
    if (!Op.Result || *Op.Result != Cur)
      return std::nullopt;
    return Cur;
  }
  if (Op.Call.Method == "write" && Op.Call.Args.size() == 2)
    return Op.Call.Args[1];
  return std::nullopt;
}

Tri RegisterSpec::leftMoverHint(const Operation &A, const Operation &B) const {
  if (A.Call.Object != B.Call.Object)
    return Tri::Yes; // Disjoint objects always commute.
  if (A.Call.Object != Object)
    return Tri::Unknown; // Not ours to judge.
  if (A.Call.Args.empty() || B.Call.Args.empty())
    return Tri::Unknown;
  if (A.Call.Args[0] != B.Call.Args[0])
    return Tri::Yes; // Different registers commute.
  if (!validReg(A.Call.Args[0]))
    return Tri::Unknown;

  // Same register: decide exactly by simulating both orders over the
  // register's full (and fully reachable) value domain.  The register is
  // observable (reads exist), so differing final values refute.
  for (Value Cur = 0; Cur < static_cast<Value>(NumVals); ++Cur) {
    auto S1 = applyOneReg(Cur, A);
    if (!S1)
      continue;
    auto S2 = applyOneReg(*S1, B);
    if (!S2)
      continue; // l.A.B not allowed here: vacuous.
    auto T1 = applyOneReg(Cur, B);
    if (!T1)
      return Tri::No;
    auto T2 = applyOneReg(*T1, A);
    if (!T2 || *T2 != *S2)
      return Tri::No;
  }
  return Tri::Yes;
}

std::vector<MethodSig> RegisterSpec::methods() const {
  return {{Object, "read", 1, true}, {Object, "write", 2, true}};
}
