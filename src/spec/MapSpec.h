//===- spec/MapSpec.h - A key/value map (boosted hashtable) -----*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sequential specification of the boosted hashtable of Figure 2
/// (backed in the paper by a ConcurrentSkipListMap).  Methods:
///
///   put(k, v)      -> previous value of k, or Absent
///   get(k)         -> value of k, or Absent
///   remove(k)      -> previous value of k, or Absent
///   containsKey(k) -> 0/1
///
/// `Absent` is the sentinel MapSpec::Absent (-1); values live in
/// {0..NumVals-1}.  Distinct keys commute (the abstract-lock discipline of
/// Figure 2); the inverse operations the boosted abort path executes are
/// exactly the two cases in Figure 2's `catch` blocks:
///
///   put(k,v) returning Absent   ~  remove(k)        ("insert" case)
///   put(k,v) returning old!=Abs ~  put(k, old)      ("update" case)
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SPEC_MAPSPEC_H
#define PUSHPULL_SPEC_MAPSPEC_H

#include "core/Spec.h"

namespace pushpull {

/// A map from {0..NumKeys-1} to {0..NumVals-1}.
class MapSpec : public SequentialSpec {
public:
  /// Result sentinel for "no mapping".
  static constexpr Value Absent = -1;

  MapSpec(std::string Object, unsigned NumKeys, unsigned NumVals);

  std::string name() const override;
  std::vector<State> initialStates() const override;
  std::vector<State> successors(const State &S,
                                const Operation &Op) const override;
  std::vector<Completion> completions(const State &S,
                                      const ResolvedCall &Call)
      const override;
  std::vector<Operation> probeOps() const override;
  std::vector<MethodSig> methods() const override;
  Tri leftMoverHint(const Operation &A, const Operation &B) const override;

  const std::string &object() const { return Object; }
  unsigned numKeys() const { return NumKeys; }
  unsigned numVals() const { return NumVals; }

private:
  std::vector<Value> decode(const State &S) const;
  State encode(const std::vector<Value> &M) const;
  bool validKey(Value K) const;
  bool validVal(Value V) const;

  std::string Object;
  unsigned NumKeys;
  unsigned NumVals;
};

} // namespace pushpull

#endif // PUSHPULL_SPEC_MAPSPEC_H
