//===- spec/QueueSpec.cpp - A FIFO queue (non-commutative) ------------------===//

#include "spec/QueueSpec.h"

#include "support/Str.h"

#include <cassert>

using namespace pushpull;

// State encoding: comma-joined front-to-back values; "" is the empty queue.

QueueSpec::QueueSpec(std::string Object, unsigned Capacity, unsigned NumVals)
    : Object(std::move(Object)), Capacity(Capacity), NumVals(NumVals) {
  assert(Capacity > 0 && NumVals > 0 && "degenerate queue");
}

std::string QueueSpec::name() const {
  return "queue(" + Object + ",cap=" + std::to_string(Capacity) +
         ",v=" + std::to_string(NumVals) + ")";
}

std::vector<Value> QueueSpec::decode(const State &S) const {
  std::vector<Value> Out;
  if (S.empty())
    return Out;
  for (const std::string &Part : splitOn(S, ','))
    Out.push_back(std::stoll(Part));
  return Out;
}

State QueueSpec::encode(const std::vector<Value> &Q) const {
  std::vector<std::string> Parts;
  for (Value V : Q)
    Parts.push_back(std::to_string(V));
  return join(Parts, ",");
}

std::vector<State> QueueSpec::initialStates() const { return {State()}; }

std::vector<State> QueueSpec::successors(const State &S,
                                         const Operation &Op) const {
  if (Op.Call.Object != Object)
    return {};
  const ResolvedCall &C = Op.Call;
  std::vector<Value> Q = decode(S);

  if (C.Method == "enq") {
    if (C.Args.size() != 1 || C.Args[0] < 0 ||
        C.Args[0] >= static_cast<Value>(NumVals) || !Op.Result)
      return {};
    bool Fits = Q.size() < Capacity;
    if (*Op.Result != (Fits ? 1 : 0))
      return {};
    if (Fits)
      Q.push_back(C.Args[0]);
    return {encode(Q)};
  }
  if (C.Method == "deq") {
    if (!C.Args.empty() || !Op.Result)
      return {};
    if (Q.empty()) {
      if (*Op.Result != Empty)
        return {};
      return {S};
    }
    if (*Op.Result != Q.front())
      return {};
    Q.erase(Q.begin());
    return {encode(Q)};
  }
  if (C.Method == "size") {
    if (!C.Args.empty() || !Op.Result ||
        *Op.Result != static_cast<Value>(Q.size()))
      return {};
    return {S};
  }
  return {};
}

std::vector<Completion>
QueueSpec::completions(const State &S, const ResolvedCall &Call) const {
  if (Call.Object != Object)
    return {};
  std::vector<Value> Q = decode(S);
  if (Call.Method == "enq") {
    if (Call.Args.size() != 1 || Call.Args[0] < 0 ||
        Call.Args[0] >= static_cast<Value>(NumVals))
      return {};
    return {Completion{Q.size() < Capacity ? Value(1) : Value(0)}};
  }
  if (Call.Method == "deq" && Call.Args.empty())
    return {Completion{Q.empty() ? Empty : Q.front()}};
  if (Call.Method == "size" && Call.Args.empty())
    return {Completion{static_cast<Value>(Q.size())}};
  return {};
}

std::vector<Operation> QueueSpec::probeOps() const {
  std::vector<Operation> Out;
  for (unsigned V = 0; V < NumVals; ++V)
    for (Value R : {Value(0), Value(1)}) {
      Operation Enq;
      Enq.Call = {Object, "enq", {static_cast<Value>(V)}};
      Enq.Result = R;
      Out.push_back(Enq);
    }
  {
    Operation DeqEmpty;
    DeqEmpty.Call = {Object, "deq", {}};
    DeqEmpty.Result = Empty;
    Out.push_back(DeqEmpty);
  }
  for (unsigned V = 0; V < NumVals; ++V) {
    Operation Deq;
    Deq.Call = {Object, "deq", {}};
    Deq.Result = static_cast<Value>(V);
    Out.push_back(Deq);
  }
  for (unsigned N = 0; N <= Capacity; ++N) {
    Operation Size;
    Size.Call = {Object, "size", {}};
    Size.Result = static_cast<Value>(N);
    Out.push_back(Size);
  }
  return Out;
}

Tri QueueSpec::leftMoverHint(const Operation &A, const Operation &B) const {
  if (A.Call.Object != B.Call.Object)
    return Tri::Yes;
  return Tri::Unknown;
}

std::vector<MethodSig> QueueSpec::methods() const {
  return {{Object, "enq", 1, true},
          {Object, "deq", 0, true},
          {Object, "size", 0, true}};
}
