//===- spec/BankSpec.h - Bank accounts (mixed commutativity) ----*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic transactional-memory motivating example: bank accounts.
/// Its commutativity structure is richer than the set/map specs and
/// exercises the mover machinery's *conditional* cases:
///
///   deposit(a, k)       -> no result; always succeeds (blind, commutes
///                          with every deposit and any-account withdraw
///                          that still succeeds — decided semantically)
///   withdraw(a, k)      -> 1 on success, 0 on insufficient funds
///                          (success/failure is balance-dependent, so two
///                          withdraws on one account commute only in
///                          states where both still succeed)
///   balance(a)          -> current balance (observes; commutes with
///                          nothing that changes a's balance)
///   transfer(a, b, k)   -> 1 on success, 0 on insufficient funds
///
/// Balances are capped (deposits clamp at Cap) to keep the state space
/// finite for the exact coinductive checks.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SPEC_BANKSPEC_H
#define PUSHPULL_SPEC_BANKSPEC_H

#include "core/Spec.h"

namespace pushpull {

/// \p NumAccounts accounts with balances in [0, Cap].
class BankSpec : public SequentialSpec {
public:
  BankSpec(std::string Object, unsigned NumAccounts, unsigned Cap,
           unsigned InitialBalance = 0);

  std::string name() const override;
  std::vector<State> initialStates() const override;
  std::vector<State> successors(const State &S,
                                const Operation &Op) const override;
  std::vector<Completion> completions(const State &S,
                                      const ResolvedCall &Call)
      const override;
  std::vector<Operation> probeOps() const override;
  std::vector<MethodSig> methods() const override;

  /// Hints: different-account single-account ops commute; transfers are
  /// left to the semantic engine (they touch two accounts and their
  /// success is state-dependent); same-account pairs are decided exactly
  /// by per-account simulation when neither side is a transfer.
  Tri leftMoverHint(const Operation &A, const Operation &B) const override;

  const std::string &object() const { return Object; }
  unsigned numAccounts() const { return NumAccounts; }
  unsigned cap() const { return Cap; }

private:
  std::vector<Value> decode(const State &S) const;
  State encode(const std::vector<Value> &B) const;
  bool validAccount(Value A) const;
  bool touchesOneAccount(const Operation &Op) const;
  /// Per-account transition for the single-account methods; nullopt when
  /// disallowed (result contradiction).
  std::optional<Value> applyOneAccount(Value Balance,
                                       const Operation &Op) const;

  std::string Object;
  unsigned NumAccounts;
  unsigned Cap;
  unsigned InitialBalance;
};

} // namespace pushpull

#endif // PUSHPULL_SPEC_BANKSPEC_H
