//===- support/Rng.cpp - Deterministic pseudo-randomness ------------------===//

#include "support/Rng.h"

#include <cmath>

using namespace pushpull;

uint64_t Rng::next() {
  // xorshift64* (Vigna). Good enough statistical quality for schedulers and
  // workload generation; the point is determinism, not cryptography.
  State ^= State >> 12;
  State ^= State << 25;
  State ^= State >> 27;
  return State * 0x2545f4914f6cdd1dull;
}

uint64_t Rng::below(uint64_t Bound) {
  assert(Bound > 0 && "below() with zero bound");
  // Rejection sampling to avoid modulo bias on large bounds.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

int64_t Rng::range(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "range() with empty interval");
  return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo) + 1));
}

bool Rng::chance(uint64_t Num, uint64_t Den) {
  assert(Den > 0 && "chance() with zero denominator");
  if (Num >= Den)
    return true;
  return below(Den) < Num;
}

uint64_t Rng::zipf(uint64_t N, unsigned ThetaHundredths) {
  assert(N > 0 && "zipf() over empty domain");
  if (ThetaHundredths == 0)
    return below(N);
  double Theta = ThetaHundredths / 100.0;
  // Inverse-CDF over the (small) discrete distribution. N is at most a few
  // thousand in our workloads, so the linear scan is fine.
  double Total = 0;
  for (uint64_t R = 0; R < N; ++R)
    Total += 1.0 / std::pow(static_cast<double>(R + 1), Theta);
  double U = static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  double Target = U * Total, Acc = 0;
  for (uint64_t R = 0; R < N; ++R) {
    Acc += 1.0 / std::pow(static_cast<double>(R + 1), Theta);
    if (Acc >= Target)
      return R;
  }
  return N - 1;
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ull); }
