//===- support/Tri.cpp - Three-valued truth -------------------------------===//

#include "support/Tri.h"

using namespace pushpull;

Tri pushpull::triAnd(Tri A, Tri B) {
  if (A == Tri::No || B == Tri::No)
    return Tri::No;
  if (A == Tri::Unknown || B == Tri::Unknown)
    return Tri::Unknown;
  return Tri::Yes;
}

Tri pushpull::triOr(Tri A, Tri B) {
  if (A == Tri::Yes || B == Tri::Yes)
    return Tri::Yes;
  if (A == Tri::Unknown || B == Tri::Unknown)
    return Tri::Unknown;
  return Tri::No;
}

Tri pushpull::triNot(Tri A) {
  switch (A) {
  case Tri::No:
    return Tri::Yes;
  case Tri::Yes:
    return Tri::No;
  case Tri::Unknown:
    return Tri::Unknown;
  }
  return Tri::Unknown;
}

std::string pushpull::toString(Tri A) {
  switch (A) {
  case Tri::No:
    return "no";
  case Tri::Yes:
    return "yes";
  case Tri::Unknown:
    return "unknown";
  }
  return "unknown";
}
