//===- support/Tri.h - Three-valued truth -----------------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Three-valued logic used by the executable versions of the paper's
/// coinductive definitions.  The precongruence (Definition 3.1) and
/// left-mover (Definition 4.1) checks are greatest fixpoints; our decision
/// procedures are exact on finite-state specifications but may exhaust a
/// configured resource bound on large or infinite-state ones, in which case
/// they answer Tri::Unknown rather than guessing.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SUPPORT_TRI_H
#define PUSHPULL_SUPPORT_TRI_H

#include <string>

namespace pushpull {

/// A Kleene three-valued truth value.
enum class Tri {
  No,      ///< Definitely false (a counterexample was found).
  Yes,     ///< Definitely true (the fixpoint closed).
  Unknown, ///< The resource bound was exhausted before an answer was found.
};

/// Three-valued conjunction: No dominates, then Unknown, then Yes.
Tri triAnd(Tri A, Tri B);

/// Three-valued disjunction: Yes dominates, then Unknown, then No.
Tri triOr(Tri A, Tri B);

/// Three-valued negation; Unknown stays Unknown.
Tri triNot(Tri A);

/// Lift a bool into Tri.
inline Tri triOf(bool B) { return B ? Tri::Yes : Tri::No; }

/// True iff \p A is Tri::Yes. Use when Unknown must be treated
/// conservatively as failure (the sound direction for rule criteria).
inline bool definitely(Tri A) { return A == Tri::Yes; }

/// True iff \p A is not Tri::No. Use when Unknown must be treated
/// conservatively as success (the sound direction for refutations).
inline bool possibly(Tri A) { return A != Tri::No; }

/// Human-readable name ("yes", "no", "unknown").
std::string toString(Tri A);

} // namespace pushpull

#endif // PUSHPULL_SUPPORT_TRI_H
