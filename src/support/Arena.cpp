//===- support/Arena.cpp - Bump-pointer arena and memory counters ----------===//

#include "support/Arena.h"

#include <cassert>
#include <cstdlib>
#include <mutex>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define PUSHPULL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PUSHPULL_ASAN 1
#endif
#endif

using namespace pushpull;

namespace pushpull::memstats {
std::atomic<uint64_t> SnapshotBytes{0};
std::atomic<uint64_t> ChunkShares{0};
std::atomic<uint64_t> DeepCopies{0};
std::atomic<uint64_t> MachineCopies{0};
std::atomic<uint64_t> ArenaBytes{0};

Snapshot read() {
  Snapshot S;
  S.SnapshotBytes = SnapshotBytes.load(std::memory_order_relaxed);
  S.ChunkShares = ChunkShares.load(std::memory_order_relaxed);
  S.DeepCopies = DeepCopies.load(std::memory_order_relaxed);
  S.MachineCopies = MachineCopies.load(std::memory_order_relaxed);
  S.ArenaBytes = ArenaBytes.load(std::memory_order_relaxed);
  return S;
}
} // namespace pushpull::memstats

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

struct Arena::Block {
  Block *Prev;
  size_t Size; ///< Payload bytes.
};

static constexpr size_t FirstBlockBytes = 4096;
static constexpr size_t MaxBlockBytes = 256 * 1024;

namespace {
inline unsigned char *blockPayload(void *B) {
  return reinterpret_cast<unsigned char *>(B) + sizeof(Arena::Block);
}
} // namespace

struct Arena::Block *Arena::newBlock(size_t MinBytes) {
  size_t Payload = Current ? static_cast<Block *>(Current)->Size * 2
                           : FirstBlockBytes;
  if (Payload > MaxBlockBytes)
    Payload = MaxBlockBytes;
  if (Payload < MinBytes)
    Payload = MinBytes;
  auto *B = static_cast<Block *>(
      ::operator new(sizeof(Block) + Payload, std::align_val_t(alignof(std::max_align_t))));
  B->Prev = static_cast<Block *>(Current);
  B->Size = Payload;
  Current = B;
  Used = 0;
  return B;
}

void *Arena::allocate(size_t Bytes, size_t Align) {
  assert(Align <= alignof(std::max_align_t) && "over-aligned arena request");
  size_t Aligned = (Used + Align - 1) & ~(Align - 1);
  Block *B = static_cast<Block *>(Current);
  if (!B || Aligned + Bytes > B->Size) {
    B = newBlock(Bytes);
    Aligned = 0;
  }
  Used = Aligned + Bytes;
  Allocated += Bytes;
  memstats::ArenaBytes.fetch_add(Bytes, std::memory_order_relaxed);
  return blockPayload(B) + Aligned;
}

void Arena::rewind(Mark M) {
  Block *B = static_cast<Block *>(Current);
  while (B != M.Block) {
    assert(B && "rewind mark not from this arena");
    Block *Prev = B->Prev;
    ::operator delete(B, std::align_val_t(alignof(std::max_align_t)));
    B = Prev;
  }
  Current = B;
  Used = M.Used;
}

Arena::~Arena() { rewind(Mark{}); }

//===----------------------------------------------------------------------===//
// Chunk pool
//===----------------------------------------------------------------------===//
//
// Power-of-two size classes from 32 bytes to 16 KiB.  Each live thread
// keeps a free list per class; refills carve a slab from a process-wide
// arena under a mutex, and a thread's leftover lists are spliced back into
// the global pool when the thread exits (parallel-explorer workers are
// short-lived).  Chunks freed on a different thread than they were
// allocated on simply land in the freeing thread's list — the backing slab
// memory is never released, so no list ever points into freed storage.

#ifndef PUSHPULL_ASAN

namespace {

constexpr size_t MinClassLog2 = 5;  // 32 B
constexpr size_t MaxClassLog2 = 14; // 16 KiB
constexpr size_t NumClasses = MaxClassLog2 - MinClassLog2 + 1;
constexpr size_t SlabBytes = 64 * 1024;

struct FreeNode {
  FreeNode *Next;
};

struct GlobalPool {
  std::mutex Mutex;
  Arena Slabs;
  FreeNode *Lists[NumClasses] = {};

  static GlobalPool &get() {
    static GlobalPool P;
    return P;
  }
};

/// Size class of \p Bytes, or NumClasses when too large to pool.
inline size_t classOf(size_t Bytes) {
  size_t C = MinClassLog2;
  while (C <= MaxClassLog2 && (size_t{1} << C) < Bytes)
    ++C;
  return C - MinClassLog2;
}

struct ThreadCache {
  FreeNode *Lists[NumClasses] = {};

  ~ThreadCache() {
    // Splice every local list back into the global pool so chunks freed
    // on a dying worker thread stay reusable.
    GlobalPool &G = GlobalPool::get();
    std::lock_guard<std::mutex> Lock(G.Mutex);
    for (size_t C = 0; C < NumClasses; ++C) {
      while (Lists[C]) {
        FreeNode *N = Lists[C];
        Lists[C] = N->Next;
        N->Next = G.Lists[C];
        G.Lists[C] = N;
      }
    }
  }
};

thread_local ThreadCache LocalCache;

} // namespace

void *pushpull::chunkAlloc(size_t Bytes) {
  size_t C = classOf(Bytes);
  if (C >= NumClasses)
    return ::operator new(Bytes);
  FreeNode *&Head = LocalCache.Lists[C];
  if (!Head) {
    size_t ClassBytes = size_t{1} << (C + MinClassLog2);
    GlobalPool &G = GlobalPool::get();
    std::lock_guard<std::mutex> Lock(G.Mutex);
    if (G.Lists[C]) {
      // Adopt the whole global list for this class.
      Head = G.Lists[C];
      G.Lists[C] = nullptr;
    } else {
      size_t Count = SlabBytes / ClassBytes;
      auto *Slab = static_cast<unsigned char *>(
          G.Slabs.allocate(Count * ClassBytes, alignof(std::max_align_t)));
      for (size_t I = 0; I < Count; ++I) {
        auto *N = reinterpret_cast<FreeNode *>(Slab + I * ClassBytes);
        N->Next = Head;
        Head = N;
      }
    }
  }
  FreeNode *N = Head;
  Head = N->Next;
  return N;
}

void pushpull::chunkFree(void *P, size_t Bytes) {
  size_t C = classOf(Bytes);
  if (C >= NumClasses) {
    ::operator delete(P);
    return;
  }
  auto *N = static_cast<FreeNode *>(P);
  N->Next = LocalCache.Lists[C];
  LocalCache.Lists[C] = N;
}

#else // PUSHPULL_ASAN

// Under AddressSanitizer every chunk is an individual heap object so asan
// can poison freed chunks and catch stale CoW references precisely.
void *pushpull::chunkAlloc(size_t Bytes) { return ::operator new(Bytes); }
void pushpull::chunkFree(void *P, size_t) { ::operator delete(P); }

#endif // PUSHPULL_ASAN
