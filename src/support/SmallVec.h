//===- support/SmallVec.h - Small-buffer vector -----------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector with inline storage for the first \p N elements.  The machine's
/// hot structures are short and copied constantly — thread stacks hold a
/// handful of bindings, a rule attempt produces at most four criterion
/// reports, a configuration's candidate frontier fits in a few dozen
/// entries — so the common case should be zero heap traffic.  Only the
/// operations those call sites use are provided; iterators are plain
/// pointers (contiguous, random access).
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SUPPORT_SMALLVEC_H
#define PUSHPULL_SUPPORT_SMALLVEC_H

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <utility>

namespace pushpull {

template <typename T, size_t N> class SmallVec {
public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;

  SmallVec() = default;
  SmallVec(std::initializer_list<T> Init) {
    reserve(Init.size());
    for (const T &V : Init)
      ::new (Ptr + Size) T(V), ++Size;
  }
  SmallVec(const SmallVec &O) {
    reserve(O.Size);
    for (size_t I = 0; I < O.Size; ++I)
      ::new (Ptr + I) T(O.Ptr[I]);
    Size = O.Size;
  }
  SmallVec(SmallVec &&O) noexcept { moveFrom(std::move(O)); }
  SmallVec &operator=(const SmallVec &O) {
    if (this == &O)
      return *this;
    clear();
    reserve(O.Size);
    for (size_t I = 0; I < O.Size; ++I)
      ::new (Ptr + I) T(O.Ptr[I]);
    Size = O.Size;
    return *this;
  }
  SmallVec &operator=(SmallVec &&O) noexcept {
    if (this == &O)
      return *this;
    destroyAll();
    moveFrom(std::move(O));
    return *this;
  }
  ~SmallVec() { destroyAll(); }

  bool empty() const { return Size == 0; }
  size_t size() const { return Size; }
  size_t capacity() const { return Cap; }

  T &operator[](size_t I) {
    assert(I < Size);
    return Ptr[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Size);
    return Ptr[I];
  }
  T &front() { return Ptr[0]; }
  const T &front() const { return Ptr[0]; }
  T &back() { return Ptr[Size - 1]; }
  const T &back() const { return Ptr[Size - 1]; }

  iterator begin() { return Ptr; }
  iterator end() { return Ptr + Size; }
  const_iterator begin() const { return Ptr; }
  const_iterator end() const { return Ptr + Size; }

  void reserve(size_t Want) {
    if (Want <= Cap)
      return;
    size_t NewCap = Cap * 2 < Want ? Want : Cap * 2;
    T *NewPtr = static_cast<T *>(::operator new(NewCap * sizeof(T)));
    for (size_t I = 0; I < Size; ++I) {
      ::new (NewPtr + I) T(std::move(Ptr[I]));
      Ptr[I].~T();
    }
    if (Ptr != inlinePtr())
      ::operator delete(Ptr);
    Ptr = NewPtr;
    Cap = NewCap;
  }

  void push_back(const T &V) { emplace_back(V); }
  void push_back(T &&V) { emplace_back(std::move(V)); }
  template <typename... Args> T &emplace_back(Args &&...A) {
    reserve(Size + 1);
    T *Slot = ::new (Ptr + Size) T(std::forward<Args>(A)...);
    ++Size;
    return *Slot;
  }

  void pop_back() {
    assert(Size && "pop_back on empty SmallVec");
    Ptr[--Size].~T();
  }

  /// Insert \p V before \p Pos (a const_iterator into this vector).
  iterator insert(const_iterator Pos, T V) {
    size_t At = static_cast<size_t>(Pos - Ptr);
    reserve(Size + 1);
    if (At == Size) {
      ::new (Ptr + Size) T(std::move(V));
    } else {
      ::new (Ptr + Size) T(std::move(Ptr[Size - 1]));
      for (size_t I = Size - 1; I > At; --I)
        Ptr[I] = std::move(Ptr[I - 1]);
      Ptr[At] = std::move(V);
    }
    ++Size;
    return Ptr + At;
  }

  iterator erase(const_iterator Pos) {
    size_t At = static_cast<size_t>(Pos - Ptr);
    assert(At < Size && "erase out of range");
    for (size_t I = At + 1; I < Size; ++I)
      Ptr[I - 1] = std::move(Ptr[I]);
    Ptr[--Size].~T();
    return Ptr + At;
  }

  void resize(size_t NewSize) {
    if (NewSize < Size) {
      while (Size > NewSize)
        Ptr[--Size].~T();
      return;
    }
    reserve(NewSize);
    while (Size < NewSize)
      ::new (Ptr + Size) T(), ++Size;
  }

  void clear() {
    while (Size)
      Ptr[--Size].~T();
  }

  bool operator==(const SmallVec &O) const {
    if (Size != O.Size)
      return false;
    for (size_t I = 0; I < Size; ++I)
      if (!(Ptr[I] == O.Ptr[I]))
        return false;
    return true;
  }
  bool operator!=(const SmallVec &O) const { return !(*this == O); }

private:
  T *inlinePtr() { return reinterpret_cast<T *>(Inline); }

  void destroyAll() {
    clear();
    if (Ptr != inlinePtr())
      ::operator delete(Ptr);
  }

  /// Steal O's heap buffer, or move its inline elements; leaves O empty.
  void moveFrom(SmallVec &&O) {
    if (O.Ptr != O.inlinePtr()) {
      Ptr = O.Ptr;
      Size = O.Size;
      Cap = O.Cap;
      O.Ptr = O.inlinePtr();
      O.Size = 0;
      O.Cap = N;
      return;
    }
    Ptr = inlinePtr();
    Cap = N;
    for (Size = 0; Size < O.Size; ++Size)
      ::new (Ptr + Size) T(std::move(O.Ptr[Size]));
    O.clear();
  }

  alignas(T) unsigned char Inline[N * sizeof(T)];
  T *Ptr = inlinePtr();
  size_t Size = 0;
  size_t Cap = N;
};

} // namespace pushpull

#endif // PUSHPULL_SUPPORT_SMALLVEC_H
