//===- support/Cow.h - Copy-on-write chunk chains and vectors ---*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural sharing for the machine's append-mostly state.  The PUSH/PULL
/// semantics is persistent by nature — a rule firing appends to one log and
/// leaves everything else alone — so the explorer's per-successor machine
/// copy should share, not duplicate.
///
/// CowChain<T, Cap> — a refcounted chain of fixed-capacity chunks, newest
/// first (Head->Prev walks toward the oldest entries).  Copying a chain is
/// one atomic increment; the ownership protocol (see DESIGN.md section 11):
///
///  * Append writes in place iff the head chunk is uniquely owned
///    (Refs == 1, acquire load) and has a free slot — the sequential
///    scheduler case, which keeps today's behavior.  Otherwise it opens a
///    fresh head chunk (the shared prefix stays shared).
///  * Truncation is by view: each handle carries its own Size; shrinking
///    only adjusts it (dropping whole chunks when they fall out of view).
///    Entries past every view ("orphans") die with their chunk, or are
///    reclaimed lazily when an append finds the chunk unique again.
///  * Mid-chain mutation (setAt/removeAt) clones the shared chunks on the
///    path from the head down to the target — a bounded deep copy, counted
///    in memstats::DeepCopies.
///
/// Invariants: a non-head chunk is always fully in view of every handle
/// that can reach it; Chunk::PrevCount (entries in older chunks) is the
/// index of the chunk's first entry, so lookup walks newest-to-oldest until
/// PrevCount <= I.  Chunks never change identity under a shared handle —
/// only uniquely owned chunks are written.
///
/// CowVec<T> — a refcounted whole-vector CoW for small, rarely mutated
/// state (committed-transaction history, pending queues): copying is one
/// refcount bump, the first mutation under sharing clones the vector.
///
/// Thread-safety matches shared_ptr: distinct handles to shared structure
/// may be used from distinct threads concurrently; one handle needs
/// external synchronization.  The Refs == 1 uniqueness check is sound
/// because if we observe 1, ours is the only handle left.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SUPPORT_COW_H
#define PUSHPULL_SUPPORT_COW_H

#include "support/Arena.h"
#include "support/SmallVec.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace pushpull {

template <typename T, size_t Cap> class CowChain {
  struct Chunk {
    std::atomic<uint32_t> Refs;
    uint32_t Count;    ///< Constructed entries in Slots.
    size_t PrevCount;  ///< Entries living in older chunks (= first index).
    Chunk *Prev;       ///< Next-older chunk (owning ref), or null.
    alignas(T) unsigned char Slots[Cap * sizeof(T)];

    T *slots() { return reinterpret_cast<T *>(Slots); }
    const T *slots() const { return reinterpret_cast<const T *>(Slots); }
  };

public:
  CowChain() = default;

  CowChain(const CowChain &O) : Head(O.Head), Size(O.Size) {
    if (Head) {
      Head->Refs.fetch_add(1, std::memory_order_relaxed);
      memstats::ChunkShares.fetch_add(1, std::memory_order_relaxed);
    }
  }
  CowChain(CowChain &&O) noexcept : Head(O.Head), Size(O.Size) {
    O.Head = nullptr;
    O.Size = 0;
  }
  CowChain &operator=(const CowChain &O) {
    if (this == &O)
      return *this;
    Chunk *Old = Head;
    Head = O.Head;
    Size = O.Size;
    if (Head) {
      Head->Refs.fetch_add(1, std::memory_order_relaxed);
      memstats::ChunkShares.fetch_add(1, std::memory_order_relaxed);
    }
    releaseChain(Old);
    return *this;
  }
  CowChain &operator=(CowChain &&O) noexcept {
    if (this == &O)
      return *this;
    Chunk *Old = Head;
    Head = O.Head;
    Size = O.Size;
    O.Head = nullptr;
    O.Size = 0;
    releaseChain(Old);
    return *this;
  }
  ~CowChain() { releaseChain(Head); }

  bool empty() const { return Size == 0; }
  size_t size() const { return Size; }

  const T &operator[](size_t I) const {
    assert(I < Size && "CowChain index out of range");
    const Chunk *C = Head;
    while (I < C->PrevCount)
      C = C->Prev;
    return C->slots()[I - C->PrevCount];
  }

  /// Append, in place when the head chunk is uniquely owned and has room.
  void push(T V) {
    if (Head && Head->Refs.load(std::memory_order_acquire) == 1) {
      // Sole owner: first reclaim orphan slots past our view, then fill.
      uint32_t View = static_cast<uint32_t>(Size - Head->PrevCount);
      while (Head->Count > View)
        Head->slots()[--Head->Count].~T();
      if (Head->Count < Cap) {
        ::new (static_cast<void *>(Head->slots() + Head->Count))
            T(std::move(V));
        ++Head->Count;
        ++Size;
        return;
      }
    }
    Chunk *C = newChunk();
    C->PrevCount = Size;
    C->Prev = Head; // Transfer our reference to the new head's Prev link.
    ::new (static_cast<void *>(C->slots())) T(std::move(V));
    C->Count = 1;
    Head = C;
    ++Size;
  }

  /// Shrink the view to \p NewSize.  Never touches shared chunks.
  void truncate(size_t NewSize) {
    assert(NewSize <= Size && "truncate growing a chain");
    Size = NewSize;
    while (Head && Head->PrevCount >= NewSize) {
      Chunk *Prev = Head->Prev;
      if (Prev)
        Prev->Refs.fetch_add(1, std::memory_order_relaxed);
      releaseChain(Head);
      Head = Prev;
    }
    // If we still own the (new) head outright, reclaim orphans eagerly so
    // sequential truncate-then-append reuses the slots.
    if (Head && Head->Refs.load(std::memory_order_acquire) == 1) {
      uint32_t View = static_cast<uint32_t>(Size - Head->PrevCount);
      while (Head->Count > View)
        Head->slots()[--Head->Count].~T();
    }
  }

  void clear() { truncate(0); }

  /// Mutable access to entry \p I; clones shared chunks on the path.
  T &mutableAt(size_t I) {
    assert(I < Size && "CowChain index out of range");
    Chunk *C = ensureUniquePath(I);
    return C->slots()[I - C->PrevCount];
  }

  /// Remove entry \p I, shifting later entries of its chunk left and
  /// re-indexing newer chunks.
  void removeAt(size_t I) {
    assert(I < Size && "removeAt out of range");
    Chunk *Target = ensureUniquePath(I);
    T *S = Target->slots();
    for (size_t K = I - Target->PrevCount + 1; K < Target->Count; ++K)
      S[K - 1] = std::move(S[K]);
    S[--Target->Count].~T();
    // Every chunk newer than the target (all unique after ensureUniquePath)
    // starts one entry earlier now.
    for (Chunk *C = Head; C != Target; C = C->Prev)
      --C->PrevCount;
    --Size;
  }

  /// Forward iterator over the view (oldest first).  The initial descent
  /// from the head records the chunks it passes, so crossing a chunk
  /// boundary pops the recorded path instead of re-walking the chain —
  /// a full sweep is O(entries + chunks) even on the explorer's and the
  /// engines' heavily fragmented post-copy chains (a fresh head chunk per
  /// append), where a per-boundary walk from the head would be quadratic.
  class const_iterator {
  public:
    using value_type = T;
    using reference = const T &;

    const_iterator() = default;
    const_iterator(const CowChain *Chain, size_t Idx) : Chain(Chain), Idx(Idx) {
      refresh();
    }

    const T &operator*() const { return C->slots()[Idx - C->PrevCount]; }
    const T *operator->() const { return &**this; }

    const_iterator &operator++() {
      ++Idx;
      if (Idx >= Chain->Size)
        C = nullptr;
      else if (Idx >= RegionEnd)
        ascend();
      return *this;
    }

    bool operator==(const const_iterator &O) const { return Idx == O.Idx; }
    bool operator!=(const const_iterator &O) const { return Idx != O.Idx; }

  private:
    /// The region of the chunk below the top of \p Path (or of the head
    /// when the path is empty): bounded both by the chunk's own entries
    /// and by the next newer chunk's PrevCount — a post-truncation append
    /// can shadow orphan slots of an older chunk.
    void setRegion() {
      size_t Bound = Path.empty() ? Chain->Size : Path.back()->PrevCount;
      size_t ChunkEnd = C->PrevCount + C->Count;
      RegionEnd = Bound < ChunkEnd ? Bound : ChunkEnd;
    }

    /// Step to the chunk holding Idx after exhausting the current region:
    /// the next newer chunk on the recorded path, skipping chunks with no
    /// entries left in view.
    void ascend() {
      do {
        C = Path.back();
        Path.pop_back();
        setRegion();
      } while (Idx >= RegionEnd);
    }

    void refresh() {
      if (Idx >= Chain->Size) {
        C = nullptr;
        return;
      }
      Path.clear();
      const Chunk *Cur = Chain->Head;
      while (Idx < Cur->PrevCount) {
        Path.push_back(Cur);
        Cur = Cur->Prev;
      }
      C = Cur;
      setRegion();
    }

    const CowChain *Chain = nullptr;
    size_t Idx = 0;
    const Chunk *C = nullptr;
    size_t RegionEnd = 0;
    /// Chunks passed on the descent to C, newest first (back = the chunk
    /// the sweep enters next).
    SmallVec<const Chunk *, 8> Path;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, Size); }

private:
  static Chunk *newChunk() {
    auto *C = static_cast<Chunk *>(chunkAlloc(sizeof(Chunk)));
    C->Refs.store(1, std::memory_order_relaxed);
    C->Count = 0;
    C->PrevCount = 0;
    C->Prev = nullptr;
    memstats::SnapshotBytes.fetch_add(sizeof(Chunk),
                                      std::memory_order_relaxed);
    return C;
  }

  /// Drop one reference to \p C.  A dying chunk destroys its entries,
  /// frees its storage, and drops its own reference on Prev — iteratively,
  /// so multi-thousand-entry chains never recurse.
  static void releaseChain(Chunk *C) {
    while (C) {
      if (C->Refs.fetch_sub(1, std::memory_order_acq_rel) != 1)
        return;
      Chunk *Prev = C->Prev;
      destroyChunk(C);
      C = Prev;
    }
  }

  static void destroyChunk(Chunk *C) {
    T *S = C->slots();
    for (uint32_t I = C->Count; I > 0; --I)
      S[I - 1].~T();
    chunkFree(C, sizeof(Chunk));
  }

  /// Make every chunk from the head down to (and including) the one
  /// holding index \p I uniquely owned and trimmed to this handle's view;
  /// returns the chunk holding \p I.
  Chunk *ensureUniquePath(size_t I) {
    Chunk **Link = &Head;
    size_t End = Size; // View entries below *Link's newer neighbour.
    for (;;) {
      Chunk *C = *Link;
      uint32_t View = static_cast<uint32_t>(End - C->PrevCount);
      if (C->Refs.load(std::memory_order_acquire) != 1) {
        Chunk *N = newChunk();
        N->PrevCount = C->PrevCount;
        N->Prev = C->Prev;
        if (N->Prev)
          N->Prev->Refs.fetch_add(1, std::memory_order_relaxed);
        const T *S = C->slots();
        for (uint32_t K = 0; K < View; ++K)
          ::new (static_cast<void *>(N->slots() + K)) T(S[K]);
        N->Count = View;
        memstats::DeepCopies.fetch_add(1, std::memory_order_relaxed);
        releaseChain(C);
        *Link = N;
        C = N;
      } else if (C->Count > View) {
        T *S = C->slots();
        while (C->Count > View)
          S[--C->Count].~T();
      }
      if (I >= C->PrevCount)
        return C;
      Link = &C->Prev;
      End = C->PrevCount;
    }
  }

  Chunk *Head = nullptr;
  size_t Size = 0;
};

/// Whole-vector copy-on-write: share on copy, clone on first mutation
/// under sharing.  view() keeps the familiar const-vector surface.
template <typename T> class CowVec {
public:
  CowVec() = default;

  bool empty() const { return !Rep || Rep->empty(); }
  size_t size() const { return Rep ? Rep->size() : 0; }
  const T &operator[](size_t I) const { return (*Rep)[I]; }
  const T &front() const { return Rep->front(); }

  const std::vector<T> &view() const {
    static const std::vector<T> Empty;
    return Rep ? *Rep : Empty;
  }
  typename std::vector<T>::const_iterator begin() const {
    return view().begin();
  }
  typename std::vector<T>::const_iterator end() const { return view().end(); }

  void push_back(T V) { own().push_back(std::move(V)); }
  void insertFront(T V) {
    std::vector<T> &M = own();
    M.insert(M.begin(), std::move(V));
  }
  void eraseFront() {
    std::vector<T> &M = own();
    M.erase(M.begin());
  }
  void clear() { Rep.reset(); }

private:
  std::vector<T> &own() {
    if (!Rep) {
      Rep = std::make_shared<std::vector<T>>();
    } else if (Rep.use_count() != 1) {
      Rep = std::make_shared<std::vector<T>>(*Rep);
      memstats::DeepCopies.fetch_add(1, std::memory_order_relaxed);
    }
    return *Rep;
  }

  std::shared_ptr<std::vector<T>> Rep;
};

} // namespace pushpull

#endif // PUSHPULL_SUPPORT_COW_H
