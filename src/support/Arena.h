//===- support/Arena.h - Bump-pointer arena and memory counters -*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation support for the explorer's and fuzzer's hot paths:
///
///  * Arena — a bump-pointer allocator over malloc'd blocks with scoped
///    checkpoints (mark/rewind).  The explorer opens a scope per successor
///    expansion and builds its candidate scratch inside it; rewinding is a
///    pointer reset, so per-expansion allocation cost is amortized to zero.
///    Rewind runs no destructors: only trivially destructible scratch may
///    live in a scoped arena (ArenaVec enforces this).
///
///  * chunkAlloc/chunkFree — the allocator behind the copy-on-write log
///    chunks (support/Cow.h).  Chunks are recycled through thread-local
///    free lists refilled from a process-wide arena (slabs are never
///    returned to the OS; peak usage bounds the footprint).  Chunks may be
///    freed from a different thread than the one that allocated them — the
///    parallel explorer moves machines between workers — so the free lists
///    only cache, never own.  Under AddressSanitizer the pool is bypassed
///    (plain operator new/delete) so poisoning and use-after-free detection
///    see every chunk individually; see DESIGN.md section 11.
///
///  * memstats — process-wide relaxed atomic counters for snapshot/copy
///    traffic (SnapshotBytes, ChunkShares, DeepCopies, MachineCopies),
///    surfaced through sim/Stats into `pprun --stats`, ppfuzz and the
///    benches.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SUPPORT_ARENA_H
#define PUSHPULL_SUPPORT_ARENA_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace pushpull {

/// Process-wide allocation/copy counters.  Monotone; consumers snapshot
/// before and after a run and report the delta.
namespace memstats {

extern std::atomic<uint64_t> SnapshotBytes; ///< Bytes carved into CoW chunks.
extern std::atomic<uint64_t> ChunkShares;   ///< O(1) log sharings (copies).
extern std::atomic<uint64_t> DeepCopies;    ///< Chunks cloned by a CoW write.
extern std::atomic<uint64_t> MachineCopies; ///< Whole-machine copies.
extern std::atomic<uint64_t> ArenaBytes;    ///< Bytes drawn from arenas.

/// One coherent reading of every counter.
struct Snapshot {
  uint64_t SnapshotBytes = 0;
  uint64_t ChunkShares = 0;
  uint64_t DeepCopies = 0;
  uint64_t MachineCopies = 0;
  uint64_t ArenaBytes = 0;

  Snapshot delta(const Snapshot &Before) const {
    return {SnapshotBytes - Before.SnapshotBytes,
            ChunkShares - Before.ChunkShares, DeepCopies - Before.DeepCopies,
            MachineCopies - Before.MachineCopies,
            ArenaBytes - Before.ArenaBytes};
  }
};

Snapshot read();

/// Counts whole-object copies of whatever struct embeds it: copying bumps
/// MachineCopies, moving does not.  Zero-size state, default-everything
/// otherwise, so embedding it never changes copy/move semantics.
struct CopyTick {
  CopyTick() = default;
  CopyTick(const CopyTick &) {
    MachineCopies.fetch_add(1, std::memory_order_relaxed);
  }
  CopyTick(CopyTick &&) noexcept = default;
  CopyTick &operator=(const CopyTick &) = default;
  CopyTick &operator=(CopyTick &&) noexcept = default;
};

} // namespace memstats

/// A bump-pointer arena: allocation is a pointer add within the current
/// block, falling back to a new (geometrically grown) block.  Individual
/// frees do not exist; Scope rewinds to a checkpoint.  Not thread-safe —
/// use one arena per thread (the explorer keeps a thread_local one).
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;
  ~Arena();

  /// One backing block (opaque; exposed so the .cpp's helpers can name it).
  struct Block;

  void *allocate(size_t Bytes, size_t Align);

  template <typename T> T *allocateArray(size_t Count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is rewound without running destructors");
    return static_cast<T *>(allocate(Count * sizeof(T), alignof(T)));
  }

  /// Total bytes handed out since construction (not reduced by rewind).
  uint64_t allocated() const { return Allocated; }

  /// A checkpoint: (block, offset) pair.
  struct Mark {
    void *Block = nullptr;
    size_t Used = 0;
  };
  Mark mark() const { return {Current, Used}; }

  /// Return to \p M, freeing every block opened after it.  Memory allocated
  /// since \p M must no longer be referenced.
  void rewind(Mark M);

  /// RAII rewind-on-exit.
  class Scope {
  public:
    explicit Scope(Arena &A) : A(A), M(A.mark()) {}
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;
    ~Scope() { A.rewind(M); }

  private:
    Arena &A;
    Mark M;
  };

private:
  Block *newBlock(size_t MinBytes);

  void *Current = nullptr; ///< Block being bumped (Block*), null initially.
  size_t Used = 0;         ///< Bytes used within Current's payload.
  uint64_t Allocated = 0;
};

/// A push-only array in a (scoped) arena.  Growth copies into a fresh,
/// doubled allocation and abandons the old one — the scope rewind reclaims
/// both.  Element type must be trivially destructible (see Arena).
template <typename T> class ArenaVec {
public:
  explicit ArenaVec(Arena &A) : A(&A) {}

  bool empty() const { return Count == 0; }
  size_t size() const { return Count; }
  T &operator[](size_t I) { return Ptr[I]; }
  const T &operator[](size_t I) const { return Ptr[I]; }
  T *begin() { return Ptr; }
  T *end() { return Ptr + Count; }
  const T *begin() const { return Ptr; }
  const T *end() const { return Ptr + Count; }

  void push_back(const T &V) {
    if (Count == Cap)
      grow();
    ::new (static_cast<void *>(Ptr + Count)) T(V);
    ++Count;
  }

  /// Drop every element at or after index \p NewSize.
  void truncate(size_t NewSize) {
    if (NewSize < Count)
      Count = NewSize;
  }

private:
  void grow() {
    size_t NewCap = Cap ? Cap * 2 : 16;
    T *NewPtr = A->allocateArray<T>(NewCap);
    for (size_t I = 0; I < Count; ++I)
      ::new (static_cast<void *>(NewPtr + I)) T(Ptr[I]);
    Ptr = NewPtr;
    Cap = NewCap;
  }

  Arena *A;
  T *Ptr = nullptr;
  size_t Count = 0;
  size_t Cap = 0;
};

/// Allocate / recycle one CoW chunk of \p Bytes (see the file comment).
/// All chunks of one size class share a pool; \p Bytes must be the same
/// value at free as at alloc (Cow.h chunks are fixed-size per type).
void *chunkAlloc(size_t Bytes);
void chunkFree(void *P, size_t Bytes);

} // namespace pushpull

#endif // PUSHPULL_SUPPORT_ARENA_H
