//===- support/Str.h - Small string helpers ---------------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formatting helpers shared by the log/trace pretty-printers.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SUPPORT_STR_H
#define PUSHPULL_SUPPORT_STR_H

#include <string>
#include <vector>

namespace pushpull {

/// Join the elements of \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// True iff \p S begins with \p Prefix.
bool startsWith(const std::string &S, const std::string &Prefix);

/// Split \p S on character \p Sep (no empty-trailing suppression).
std::vector<std::string> splitOn(const std::string &S, char Sep);

} // namespace pushpull

#endif // PUSHPULL_SUPPORT_STR_H
