//===- support/Str.cpp - Small string helpers -----------------------------===//

#include "support/Str.h"

using namespace pushpull;

std::string pushpull::join(const std::vector<std::string> &Parts,
                           const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

bool pushpull::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

std::vector<std::string> pushpull::splitOn(const std::string &S, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Sep) {
      Out.push_back(S.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Out;
}
