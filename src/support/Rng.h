//===- support/Rng.h - Deterministic pseudo-randomness ----------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (xorshift64*) used everywhere randomness is
/// needed: schedulers, workload generators, property-test input generation.
/// All experiments are reproducible from a seed.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_SUPPORT_RNG_H
#define PUSHPULL_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pushpull {

/// Deterministic xorshift64* generator with convenience samplers.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t below(uint64_t Bound);

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi);

  /// Bernoulli trial with probability \p Num / \p Den.
  bool chance(uint64_t Num, uint64_t Den);

  /// Uniformly pick an element of a non-empty vector.
  template <typename T> const T &pick(const std::vector<T> &Xs) {
    assert(!Xs.empty() && "pick() from empty vector");
    return Xs[below(Xs.size())];
  }

  /// Zipf-like skewed sample in [0, N): rank r is chosen with weight
  /// proportional to 1/(r+1)^Theta (Theta in hundredths, e.g. 100 => 1.0).
  /// Theta = 0 degenerates to uniform. Used by contention sweeps (E10).
  uint64_t zipf(uint64_t N, unsigned ThetaHundredths);

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &Xs) {
    for (std::size_t I = Xs.size(); I > 1; --I)
      std::swap(Xs[I - 1], Xs[below(I)]);
  }

  /// Fork an independent stream (for per-thread generators).
  Rng split();

private:
  uint64_t State;
};

} // namespace pushpull

#endif // PUSHPULL_SUPPORT_RNG_H
