//===- check/Serializability.cpp - Theorem 5.17 as an oracle ---------------===//

#include "check/Serializability.h"

#include <algorithm>

using namespace pushpull;

SerializabilityChecker::SerializabilityChecker(const SequentialSpec &Spec,
                                               AtomicLimits Limits,
                                               PrecongruenceLimits PreLimits)
    : Spec(Spec), Limits(Limits), Pre(Spec, PreLimits) {}

SerializabilityVerdict SerializabilityChecker::checkOrder(
    const std::vector<CommittedTx> &Txs,
    const std::vector<Operation> &CommittedLog) {
  SerializabilityVerdict Out;

  std::vector<AtomicTx> Serial;
  Serial.reserve(Txs.size());
  for (const CommittedTx &T : Txs)
    Serial.push_back({T.Body, T.Sigma, T.FinalSigma});

  AtomicMachine Atomic(Spec, Limits);
  bool SawUnknown = false;
  bool Found = Atomic.searchSerial(
      Serial, {}, [&](const AtomicOutcome &O) {
        ++Out.OutcomesTried;
        Tri V = Pre.checkLogs(CommittedLog, O.Log);
        if (V == Tri::Unknown)
          SawUnknown = true;
        return V == Tri::Yes;
      });

  if (Found) {
    Out.Serializable = Tri::Yes;
    for (const CommittedTx &T : Txs)
      Out.WitnessOrder.push_back(T.Tid);
    return Out;
  }
  if (SawUnknown || Out.OutcomesTried >= Limits.MaxOutcomes) {
    Out.Serializable = Tri::Unknown;
    Out.Detail = "search exhausted its resource bounds";
    return Out;
  }
  Out.Serializable = Tri::No;
  Out.Detail = "no atomic outcome in this order matches the committed log";
  return Out;
}

SerializabilityVerdict
SerializabilityChecker::checkCommitOrder(const PushPullMachine &M) {
  std::vector<CommittedTx> Txs = M.committed();
  std::sort(Txs.begin(), Txs.end(),
            [](const CommittedTx &A, const CommittedTx &B) {
              return A.CommitSeq < B.CommitSeq;
            });
  return checkOrder(Txs, M.committedLog());
}

SerializabilityVerdict
SerializabilityChecker::checkAnyOrder(const PushPullMachine &M,
                                      size_t MaxTxsForPermutations) {
  std::vector<CommittedTx> Txs = M.committed();
  if (Txs.size() > MaxTxsForPermutations) {
    SerializabilityVerdict Out;
    Out.Serializable = Tri::Unknown;
    Out.Detail = "too many transactions for permutation search";
    return Out;
  }

  std::vector<size_t> Idx(Txs.size());
  for (size_t I = 0; I < Idx.size(); ++I)
    Idx[I] = I;

  std::vector<Operation> CommittedLog = M.committedLog();
  SerializabilityVerdict Last;
  bool SawUnknown = false;
  do {
    std::vector<CommittedTx> Order;
    Order.reserve(Idx.size());
    for (size_t I : Idx)
      Order.push_back(Txs[I]);
    Last = checkOrder(Order, CommittedLog);
    if (Last.Serializable == Tri::Yes)
      return Last;
    if (Last.Serializable == Tri::Unknown)
      SawUnknown = true;
  } while (std::next_permutation(Idx.begin(), Idx.end()));

  SerializabilityVerdict Out;
  Out.Serializable = SawUnknown ? Tri::Unknown : Tri::No;
  Out.Detail = SawUnknown ? "some orders exhausted resource bounds"
                          : "no serial order produces the committed log";
  return Out;
}
