//===- check/Serializability.h - Theorem 5.17 as an oracle ------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An *independent* serializability oracle.  Theorem 5.17 proves every
/// PUSH/PULL run serializable by simulation: the committed projection of
/// the shared log, |G|_gCmt, is precongruent to the log of some atomic
/// execution of the committed transactions.  Instead of trusting the
/// theorem, this checker searches for the witness: it replays the
/// committed transactions (their rewound otx bodies) through the atomic
/// machine of Figure 3 — in commit order, or over all permutations — and
/// asks the precongruence engine whether |G|_gCmt =< atomic log.
///
/// The simulation proof constructs the witness in commit order (the CMT
/// rule is the linearization point), so checkCommitOrder succeeding is the
/// expected outcome for every criteria-respecting run; checkAnyOrder exists
/// to diagnose runs of *broken* engines (tests that deliberately violate
/// criteria) where commit order may fail but some other order — or none —
/// works.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_CHECK_SERIALIZABILITY_H
#define PUSHPULL_CHECK_SERIALIZABILITY_H

#include "core/Atomic.h"
#include "core/Machine.h"
#include "core/Precongruence.h"

#include <string>
#include <vector>

namespace pushpull {

/// Outcome of a serializability query.
struct SerializabilityVerdict {
  Tri Serializable = Tri::Unknown;
  /// Thread ids of the witnessing serial order (when Yes).
  std::vector<TxId> WitnessOrder;
  /// Number of atomic outcomes examined.
  uint64_t OutcomesTried = 0;
  std::string Detail;
};

/// Searches atomic executions for serializability witnesses.
class SerializabilityChecker {
public:
  SerializabilityChecker(const SequentialSpec &Spec,
                         AtomicLimits Limits = {},
                         PrecongruenceLimits PreLimits = {});

  /// Is |G|_gCmt of \p M precongruent to an atomic run of M's committed
  /// transactions *in commit order* (the witness Theorem 5.17's proof
  /// constructs)?
  SerializabilityVerdict checkCommitOrder(const PushPullMachine &M);

  /// Like checkCommitOrder but over every permutation of the committed
  /// transactions (capped at \p MaxTxsForPermutations of them).
  SerializabilityVerdict checkAnyOrder(const PushPullMachine &M,
                                       size_t MaxTxsForPermutations = 7);

  /// Raw form: does some atomic run of \p Txs (in the given order) yield a
  /// log that \p CommittedLog is precongruent to?
  SerializabilityVerdict
  checkOrder(const std::vector<CommittedTx> &Txs,
             const std::vector<Operation> &CommittedLog);

private:
  const SequentialSpec &Spec;
  AtomicLimits Limits;
  PrecongruenceChecker Pre;
};

} // namespace pushpull

#endif // PUSHPULL_CHECK_SERIALIZABILITY_H
