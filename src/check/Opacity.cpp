//===- check/Opacity.cpp - Section 6.1: opacity as a fragment --------------===//

#include "check/Opacity.h"

#include "lang/StepFin.h"

using namespace pushpull;

OpacityReport pushpull::classifyTrace(const RuleTrace &T) {
  OpacityReport Out;
  for (const TraceEvent &E : T) {
    if (E.Rule != RuleKind::Pull)
      continue;
    ++Out.TotalPulls;
    if (E.PulledUncommitted) {
      ++Out.UncommittedPulls;
      Out.InOpaqueFragment = false;
    }
  }
  return Out;
}

Tri pushpull::pullCommutationSafe(const PushPullMachine &M, TxId T,
                                  const Operation &Op) {
  const ThreadState &Th = M.thread(T);
  if (!Th.InTx)
    return Tri::Yes; // Nothing left to execute.

  std::vector<Operation> Probes = M.spec().probeOps();
  MoverChecker &Movers = M.movers();

  Tri Out = Tri::Yes;
  for (const MethodExpr &ME : reachableMethods(Th.Code)) {
    auto Call = ME.resolve(Th.Sigma);
    if (!Call) {
      // Arguments depend on results not yet bound: we cannot enumerate the
      // operations T may perform, so be conservative.
      Out = triAnd(Out, Tri::Unknown);
      continue;
    }
    bool Matched = false;
    for (const Operation &P : Probes) {
      if (P.Call != *Call)
        continue;
      Matched = true;
      // "Commutes" here means movable in both orders.
      Out = triAnd(Out, Movers.leftMover(Op, P));
      Out = triAnd(Out, Movers.leftMover(P, Op));
      if (Out == Tri::No)
        return Out;
    }
    if (!Matched)
      Out = triAnd(Out, Tri::Unknown);
  }
  return Out;
}
