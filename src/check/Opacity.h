//===- check/Opacity.h - Section 6.1: opacity as a fragment -----*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opacity (Guerraoui & Kapalka) characterized as fragments of PUSH/PULL
/// (Section 6.1):
///
///  * the *opaque fragment*: runs whose transactions never PULL an
///    operation that was uncommitted at pull time — classic opaque STMs
///    (TL2, TinySTM) live here by construction;
///
///  * the *commutation relaxation*: a transaction T may PULL an
///    uncommitted operation m' of T' provided T will never execute a
///    method that does not commute with m' — checked against the set of
///    reachable methods of T's remaining code (step()-closure).
///
/// classifyTrace decides fragment membership post hoc from the rule trace;
/// pullCommutationSafe is the online check an engine (or test) consults
/// before performing a relaxed pull.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_CHECK_OPACITY_H
#define PUSHPULL_CHECK_OPACITY_H

#include "core/Machine.h"
#include "core/Trace.h"

namespace pushpull {

/// Post-hoc classification of a run's rule trace.
struct OpacityReport {
  /// True iff no PULL in the trace took an uncommitted operation.
  bool InOpaqueFragment = true;
  size_t TotalPulls = 0;
  size_t UncommittedPulls = 0;
};

/// Classify \p T against the Section 6.1 opaque fragment.
OpacityReport classifyTrace(const RuleTrace &T);

/// The Section 6.1 relaxation, online: may thread \p T pull \p Op —
/// uncommitted or not — while remaining observationally opaque?  Checks
/// that every method reachable in T's remaining code commutes (in both
/// orders) with Op.  Calls whose arguments cannot yet be resolved, or that
/// have no matching probe operations, yield Unknown (conservative).
Tri pullCommutationSafe(const PushPullMachine &M, TxId T,
                        const Operation &Op);

} // namespace pushpull

#endif // PUSHPULL_CHECK_OPACITY_H
