//===- fuzz/Campaign.cpp - Differential fuzzing campaigns -------------------===//

#include "fuzz/Campaign.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>

using namespace pushpull;

namespace {

/// A high-contention map case: two threads writing two keys in opposite
/// orders plus a reading third thread.  Under the fixed schedule seeds
/// below this provokes conflict aborts — and with them the inverse rules
/// (UNAPP/UNPUSH/UNPULL) — in every abort-based engine.
FuzzCase conflictClinic(const std::string &Engine) {
  FuzzCase C;
  C.Specs = {{"map", {{"name", "map"}, {"keys", "2"}, {"vals", "2"}}}};
  C.Engine = Engine;
  C.EngineOpts["seed"] = "1";
  if (Engine == "boosting") {
    C.EngineOpts["keylocks"] = "1";
    C.EngineOpts["deadlock"] = "3";
  }
  if (Engine == "checkpoint")
    C.EngineOpts["every"] = "1";
  C.Policy = SchedulePolicy::RandomUniform;
  // Schedule seed 2 drives every abort-based engine through its whole
  // expected rule set; the checkpoint engine's UNPULL (a full-abort after
  // the committed-snapshot pull, reached only when partial rewinds
  // escalate) needs seed 7.
  C.ScheduleSeed = Engine == "checkpoint" ? 7 : 2;
  auto Put = [](Value K, Value V) {
    return call("map", "put", {K, V});
  };
  auto Get = [](Value K, const char *Var) {
    return call("map", "get", {K}, Var);
  };
  C.Threads = {
      {tx(seq(Put(0, 1), Put(1, 1))), tx(Get(0, "a"))},
      {tx(seq(Put(1, 1), Put(0, 1))), tx(Get(1, "b"))},
      {tx(seq(Get(0, "c"), Put(0, 0)))},
  };
  return C;
}

/// The pessimistic engine's only inverse rule is the commit-phase UNPUSH:
/// an all-or-nothing push sequence rolls itself back when a later push is
/// rejected by a live uncommitted reader.  Under round-robin, thread 1
/// pushes write(2) (no reader), then write(0) is rejected by thread 0's
/// still-uncommitted pushed read of register 0 — rolling back write(2).
FuzzCase pessimisticUnpushClinic() {
  FuzzCase C;
  C.Specs = {{"register", {{"name", "register"}, {"regs", "3"}, {"vals", "2"}}}};
  C.Engine = "pessimistic";
  C.EngineOpts["seed"] = "1";
  C.Policy = SchedulePolicy::RoundRobin;
  C.ScheduleSeed = 1;
  auto Read = [](Value R, const char *Var) {
    return call("register", "read", {R}, Var);
  };
  auto Write = [](Value R, Value V) {
    return call("register", "write", {R, V});
  };
  C.Threads = {
      {tx(seqAll({Read(0, "a"), Read(1, "b"), Read(1, "c")}))},
      {tx(seq(Write(2, 1), Write(0, 1)))},
  };
  return C;
}

/// Boosting's classic deadlock: opposite lock orders on key-granular
/// locks, low deadlock threshold — one thread aborts via inverse
/// operations (UNPUSH) and local rewind (UNAPP).
FuzzCase boostingDeadlockClinic() {
  FuzzCase C;
  C.Specs = {{"map", {{"name", "map"}, {"keys", "4"}, {"vals", "2"}}}};
  C.Engine = "boosting";
  C.EngineOpts = {{"seed", "1"}, {"keylocks", "1"}, {"deadlock", "3"}};
  C.Policy = SchedulePolicy::RoundRobin;
  C.ScheduleSeed = 1;
  auto Put = [](Value K, Value V) {
    return call("map", "put", {K, V});
  };
  C.Threads = {
      {tx(seq(Put(0, 1), Put(1, 1)))},
      {tx(seq(Put(1, 1), Put(0, 1)))},
  };
  return C;
}

/// The deterministic seed corpus run before random generation: one
/// conflict clinic per campaign engine plus the engine-specific rare-rule
/// clinics.  Guarantees the campaign's expected-rule assertion is about
/// the engines, not about random-draw luck.
std::vector<FuzzCase> directedCases(const std::vector<std::string> &Engines) {
  std::vector<FuzzCase> Out;
  for (const std::string &E : Engines) {
    Out.push_back(conflictClinic(E));
    if (E == "pessimistic")
      Out.push_back(pessimisticUnpushClinic());
    if (E == "boosting")
      Out.push_back(boostingDeadlockClinic());
  }
  return Out;
}

} // namespace

uint32_t EngineCoverage::observedMask() const {
  uint32_t Mask = 0;
  for (int K = 0; K < 7; ++K)
    if (RuleCounts[K])
      Mask |= 1u << K;
  return Mask;
}

std::vector<std::string> CampaignReport::uncoveredRules() const {
  std::vector<std::string> Out;
  for (const auto &[Engine, Cov] : PerEngine) {
    uint32_t Missing = expectedRuleMask(Engine) & ~Cov.observedMask();
    if (!Missing)
      continue;
    std::string Line = Engine + ":";
    for (int K = 0; K < 7; ++K)
      if (Missing & (1u << K))
        Line += " " + pushpull::toString(static_cast<RuleKind>(K));
    Out.push_back(std::move(Line));
  }
  return Out;
}

std::string CampaignReport::toString() const {
  std::string Out = "campaign: " + std::to_string(RunsDone) + " runs, " +
                    std::to_string(Discrepancies) + " discrepancies, " +
                    std::to_string(Inconclusive) + " inconclusive, " +
                    std::to_string(NotQuiescent) + " hit the step budget\n";
  Out += "per-engine rule coverage:\n";
  for (const auto &[Engine, Cov] : PerEngine) {
    Out += "  " + Engine + " (" + std::to_string(Cov.Runs) + " runs, " +
           std::to_string(Cov.Commits) + " commits, " +
           std::to_string(Cov.Aborts) + " aborts):";
    for (int K = 0; K < 7; ++K)
      Out += " " + pushpull::toString(static_cast<RuleKind>(K)) + "=" +
             std::to_string(Cov.RuleCounts[K]);
    Out += "\n";
  }
  for (const std::string &Line : uncoveredRules())
    Out += "UNEXERCISED expected rules — " + Line + "\n";
  for (size_t I = 0; I < FailureReports.size(); ++I) {
    Out += "discrepancy #" + std::to_string(I + 1) + ":\n" +
           FailureReports[I];
    if (I < ReproFiles.size() && !ReproFiles[I].empty())
      Out += "  reproducer: " + ReproFiles[I] + "\n  replay: " +
             ReplayCommands[I] + "\n";
  }
  Out += "cache totals:\n" + Caches.toString();
  Out += ok() ? "RESULT: OK\n" : "RESULT: FAIL\n";
  return Out;
}

Campaign::Campaign(CampaignConfig C)
    : Config(std::move(C)), Gen(Config.Gen), Mut(Config.Mut),
      Runner(Config.Diff), R(Config.Gen.Seed ^ 0x9e3779b97f4a7c15ull) {}

void Campaign::runCase(const FuzzCase &Case, CampaignReport &Report) {
  DiffReport D = Runner.run(Case);
  ++Report.RunsDone;

  EngineCoverage &Cov = Report.PerEngine[Case.Engine];
  ++Cov.Runs;
  if (D.Built) {
    Cov.Commits += D.Stats.Commits;
    Cov.Aborts += D.Stats.Aborts;
    for (int K = 0; K < 7; ++K)
      Cov.RuleCounts[K] += D.Stats.RuleCounts[K];
    Report.Caches.Intern.StatesInterned += D.Caches.Intern.StatesInterned;
    Report.Caches.Intern.StateSetsInterned +=
        D.Caches.Intern.StateSetsInterned;
    Report.Caches.Intern.OpKeysInterned += D.Caches.Intern.OpKeysInterned;
    Report.Caches.Intern.TransitionMemoHits +=
        D.Caches.Intern.TransitionMemoHits;
    Report.Caches.Intern.TransitionMemoMisses +=
        D.Caches.Intern.TransitionMemoMisses;
    Report.Caches.MoverMemoHits += D.Caches.MoverMemoHits;
    Report.Caches.MoverMemoMisses += D.Caches.MoverMemoMisses;
    Report.Caches.PrecongruencePairs += D.Caches.PrecongruencePairs;
    Report.Caches.ReachableSets += D.Caches.ReachableSets;
    Report.Caches.Memory.MachineCopies += D.Caches.Memory.MachineCopies;
    Report.Caches.Memory.ChunkShares += D.Caches.Memory.ChunkShares;
    Report.Caches.Memory.DeepCopies += D.Caches.Memory.DeepCopies;
    Report.Caches.Memory.SnapshotBytes += D.Caches.Memory.SnapshotBytes;
    Report.Caches.Memory.ArenaBytes += D.Caches.Memory.ArenaBytes;
    if (!D.Stats.Quiescent)
      ++Report.NotQuiescent;
  }

  if (D.discrepancy()) {
    ++Report.Discrepancies;
    ++Cov.Discrepancies;
    FuzzCase Minimal = Case;
    DiffReport Final = D;
    if (Config.ShrinkFailures) {
      ShrinkOutcome S = Shrinker(Runner, Config.Shrink).shrink(Case);
      if (S.Reproduced) {
        Minimal = std::move(S.Minimized);
        Final = std::move(S.FinalReport);
      }
    }
    std::string ReproFile, Replay;
    if (!Config.ReproDir.empty()) {
      std::error_code EC;
      std::filesystem::create_directories(Config.ReproDir, EC);
      ReproFile = Config.ReproDir + "/ppfuzz-" + Case.Engine + "-run" +
                  std::to_string(Report.RunsDone) + ".pp";
      std::ofstream Os(ReproFile);
      Os << Minimal.toScenarioText();
      Replay = "ppfuzz --replay " + ReproFile;
      // A fault-injected campaign's failures only reproduce under the
      // same injection.
      if (!Config.Diff.DisabledCriterion.empty())
        Replay += " --disable-criterion '" + Config.Diff.DisabledCriterion +
                  "'";
    }
    Report.FailureReports.push_back("  engine: " + Minimal.Engine + " (" +
                                    std::to_string(Minimal.Threads.size()) +
                                    " threads, " +
                                    std::to_string(Minimal.totalOps()) +
                                    " ops after shrinking)\n" +
                                    Final.toString());
    Report.ReproFiles.push_back(ReproFile);
    Report.ReplayCommands.push_back(Replay);
    if (Config.Verbose && !ReproFile.empty())
      std::cerr << "ppfuzz: discrepancy minimized to " << ReproFile << "\n"
                << "ppfuzz: replay with: " << Replay << "\n";
  } else if (D.inconclusive()) {
    ++Report.Inconclusive;
  }

  if (Config.Verbose)
    std::cerr << "ppfuzz: run " << Report.RunsDone << "/" << Config.Runs
              << " engine=" << Case.Engine << " spec=" << Case.Specs[0].Kind
              << (Case.Specs.size() > 1 ? "+" + Case.Specs[1].Kind : "")
              << (D.discrepancy()     ? " DISCREPANCY"
                  : D.inconclusive()  ? " inconclusive"
                  : !D.Built          ? " build-error"
                                      : " ok")
              << "\n";
}

CampaignReport Campaign::run() {
  CampaignReport Report;
  auto Start = std::chrono::steady_clock::now();
  auto Expired = [&] {
    if (Config.MaxSeconds <= 0)
      return false;
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - Start;
    return Elapsed.count() >= Config.MaxSeconds;
  };

  std::vector<FuzzCase> Directed = directedCases(Gen.config().Engines);
  for (uint64_t I = 0; I < Config.Runs && !Expired(); ++I) {
    // The directed seed corpus first, then mostly fresh generation (which
    // cycles the engine × spec-kind grid deterministically), sometimes a
    // structural mutant of a past case.
    if (I < Directed.size()) {
      Corpus.push_back(Directed[I]);
      runCase(Directed[I], Report);
      continue;
    }
    bool Mutate = !Corpus.empty() && R.chance(Config.MutantPct, 100);
    FuzzCase Case = Mutate ? Mut.mutate(Corpus[R.below(Corpus.size())], R)
                           : Gen.next();
    if (!Mutate) {
      if (Corpus.size() < 32)
        Corpus.push_back(Case);
      else
        Corpus[R.below(Corpus.size())] = Case;
    }
    runCase(Case, Report);
  }
  return Report;
}
