//===- fuzz/DiffRunner.h - One differential run ------------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one fuzz case and cross-checks it three ways against independent
/// ground truths:
///
///  1. *Atomic-oracle replay* (Theorem 5.17's witness): the committed
///     transactions are replayed through the Figure 3 atomic machine in
///     commit order and the committed shared log must be precongruent to
///     some replay log.  When the commit-order replay says No, the run is
///     re-checked over every serial order (diagnostic context: does *any*
///     witness exist, or is the run flatly non-serializable?).
///
///  2. *Fragment classification* (Section 6.1): the rule trace is
///     classified against the opaque fragment; engines whose strategy
///     never pulls uncommitted effects must stay inside it.
///
///  3. *Machine invariants* (Section 5.3): the Lemma 5.7-5.12 invariant
///     suite is re-established after every rule firing, via the machine's
///     observation hook — unlike ValidationLevel::Full this records the
///     violation instead of aborting, so the shrinker can minimize it.
///
/// Any No from (1), an unexpected fragment exit in (2), or a violation in
/// (3) is a *discrepancy*: implementation and model disagree.  Reports
/// carry the run's interning/memoization counters so a discrepancy
/// implicating the representation layer (PR 1) is directly auditable.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_FUZZ_DIFFRUNNER_H
#define PUSHPULL_FUZZ_DIFFRUNNER_H

#include "check/Opacity.h"
#include "core/Atomic.h"
#include "core/Mover.h"
#include "core/Precongruence.h"
#include "fuzz/Generator.h"
#include "sim/Scenario.h"
#include "sim/Stats.h"

namespace pushpull {

/// Differential-run knobs.
struct DiffConfig {
  /// Resource bounds for the oracle and the semantic engines.
  AtomicLimits Atomic{64, 20000};
  PrecongruenceLimits Pre;
  MoverLimits Movers;
  /// Re-check the Section 5.3 invariants after every rule firing.
  bool CheckInvariantsEachRule = true;
  /// Stop invariant re-checking after this many rule firings (abort-retry
  /// storms fire tens of thousands of rules; the tail repeats the same
  /// configurations).
  uint64_t MaxInvariantCheckedRules = 4000;
  /// Escalate a commit-order No to an all-orders search (diagnostics).
  bool EscalateToAnyOrder = true;
  /// Test-only fault injection forwarded to MachineConfig: criterion with
  /// this exact name is skipped (see the shrinker self-test).
  std::string DisabledCriterion;
};

/// Everything one differential run observed.
struct DiffReport {
  /// False when the case could not even be built (bad spec/engine); the
  /// reason is in BuildError and no other field is meaningful.
  bool Built = false;
  std::string BuildError;

  RunStats Stats;

  /// (1) Atomic-oracle replay, in commit order.
  Tri Serializable = Tri::Unknown;
  std::string SerializabilityDetail;
  uint64_t OutcomesTried = 0;
  /// Escalation verdict over all serial orders (Unknown when not run).
  Tri SerializableAnyOrder = Tri::Unknown;

  /// (2) Opaque-fragment classification.
  OpacityReport Opacity;
  bool OpacityViolated = false;

  /// (3) First invariant violation observed after a rule firing.
  bool InvariantViolated = false;
  std::string InvariantDetail;
  uint64_t RulesInvariantChecked = 0;

  /// Interned-id / memoization context (PR 1 audit trail).
  CacheStats Caches;

  /// Implementation and model disagree: failed oracle replay, unexpected
  /// opacity-fragment exit, or a broken machine invariant.
  bool discrepancy() const {
    return Built &&
           (Serializable == Tri::No || OpacityViolated || InvariantViolated);
  }

  /// The run could not be fully adjudicated (budget exhaustion, oracle
  /// resource bounds).  Not a discrepancy; campaigns count these.
  bool inconclusive() const {
    return Built && !discrepancy() &&
           (!Stats.Quiescent || Serializable == Tri::Unknown);
  }

  /// Multi-line report rendering (verdicts, stats, cache counters).
  std::string toString() const;
};

/// A case with its spec already built (the form replay and the campaign
/// share; FuzzCase carries the symbolic descriptors, BuiltCase the
/// constructed objects).
struct BuiltCase {
  std::shared_ptr<const SequentialSpec> Spec;
  std::string Engine;
  std::map<std::string, std::string> EngineOpts;
  SchedulePolicy Policy = SchedulePolicy::RandomUniform;
  uint64_t ScheduleSeed = 1;
  uint64_t MaxSteps = 30000;
  unsigned ChangePoints = 3;
  /// For SchedulePolicy::Replay (`.ppsched` reproducers).
  std::vector<uint32_t> ReplayPicks;
  /// Scenario-level fault injection (`inject ...`); the runner applies it
  /// when DiffConfig::DisabledCriterion is empty.
  std::string DisabledCriterion;
  std::vector<std::vector<CodePtr>> Threads;
};

/// Build a FuzzCase's spec (Error + null Spec on bad descriptors).
BuiltCase buildCase(const FuzzCase &Case, std::string &Error);

/// Adapt a parsed scenario (ppfuzz --replay, regress corpus) to a
/// BuiltCase; the scenario's check directives are ignored — the runner
/// always performs the full differential battery.
BuiltCase fromScenario(const Scenario &S);

/// Rules an engine's strategy can ever fire, as a bitmask over RuleKind.
/// Campaigns assert each engine's fuzzed runs actually exercised its whole
/// set; the union over all ten engines covers all seven rules.
uint32_t expectedRuleMask(const std::string &Engine);

/// Must \p Engine stay inside the Section 6.1 opaque fragment?  True for
/// every engine whose strategy only pulls committed effects; false for
/// the dependent-transaction engine, which pulls uncommitted effects by
/// design.
bool engineExpectedOpaque(const std::string &Engine);

/// Executes and cross-checks single cases.
class DiffRunner {
public:
  explicit DiffRunner(DiffConfig Config = {}) : Config(std::move(Config)) {}

  DiffReport run(const BuiltCase &Case) const;
  DiffReport run(const FuzzCase &Case) const;

  const DiffConfig &config() const { return Config; }

private:
  DiffConfig Config;
};

} // namespace pushpull

#endif // PUSHPULL_FUZZ_DIFFRUNNER_H
