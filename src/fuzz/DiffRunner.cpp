//===- fuzz/DiffRunner.cpp - One differential run ---------------------------===//

#include "fuzz/DiffRunner.h"

#include "check/Serializability.h"
#include "core/Invariants.h"
#include "sim/Scheduler.h"
#include "tm/Engine.h"

using namespace pushpull;

static uint32_t bit(RuleKind K) { return 1u << static_cast<int>(K); }

uint32_t pushpull::expectedRuleMask(const std::string &Engine) {
  const uint32_t App = bit(RuleKind::App), UnApp = bit(RuleKind::UnApp),
                 Push = bit(RuleKind::Push), UnPush = bit(RuleKind::UnPush),
                 Pull = bit(RuleKind::Pull), UnPull = bit(RuleKind::UnPull),
                 Cmt = bit(RuleKind::Commit);
  const uint32_t Base = App | Push | Pull | Cmt;
  const uint32_t All = Base | UnApp | UnPush | UnPull;
  // Per-engine strategy signatures, confirmed empirically by fixed-seed
  // campaigns (every listed rule fires for every engine under the smoke
  // campaign's directed seed corpus; see fuzz_smoke_test).  No single
  // engine fires all seven rules, but the union over the ten engines
  // covers the whole rule set:
  //
  //  * optimistic/checkpoint/irrevocable push only *validated* effects in
  //    their commit phase and abort by rewinding unpushed+pulled entries,
  //    so UNPUSH is unreachable for them;
  //  * pessimistic never aborts (writers wait instead), so UNAPP/UNPULL
  //    never fire — but its all-or-nothing commit phase rolls back
  //    partially-pushed writes with UNPUSH when a later push is rejected;
  //  * every eager-publication engine (boosting, dependent,
  //    early-release, htm, htm-word, hybrid) aborts by inverse operations
  //    and so exercises all seven.
  if (Engine == "optimistic" || Engine == "checkpoint" ||
      Engine == "irrevocable")
    return Base | UnApp | UnPull;
  if (Engine == "pessimistic")
    return Base | UnPush;
  if (Engine == "boosting" || Engine == "dependent" ||
      Engine == "early-release" || Engine == "htm" || Engine == "htm-word" ||
      Engine == "hybrid")
    return All;
  return 0;
}

bool pushpull::engineExpectedOpaque(const std::string &Engine) {
  // The dependent-transaction engine pulls uncommitted effects by design
  // (that is its whole point); everything else only ever pulls committed
  // entries and must therefore stay inside the Section 6.1 fragment.
  return Engine != "dependent";
}

BuiltCase pushpull::buildCase(const FuzzCase &Case, std::string &Error) {
  BuiltCase B;
  B.Spec = Case.buildSpec(Error);
  B.Engine = Case.Engine;
  B.EngineOpts = Case.EngineOpts;
  B.Policy = Case.Policy;
  B.ScheduleSeed = Case.ScheduleSeed;
  B.MaxSteps = Case.MaxSteps;
  B.ChangePoints = Case.ChangePoints;
  B.Threads = Case.Threads;
  return B;
}

BuiltCase pushpull::fromScenario(const Scenario &S) {
  BuiltCase B;
  B.Spec = S.Spec;
  B.Engine = S.Engine;
  B.EngineOpts = S.EngineOpts;
  B.Policy = S.Policy;
  B.ScheduleSeed = S.ScheduleSeed;
  B.MaxSteps = S.MaxSteps;
  B.ChangePoints = S.ChangePoints;
  B.ReplayPicks = S.ReplayPicks;
  B.DisabledCriterion = S.DisabledCriterion;
  B.Threads = S.Threads;
  return B;
}

DiffReport DiffRunner::run(const FuzzCase &Case) const {
  std::string Error;
  BuiltCase B = buildCase(Case, Error);
  if (!B.Spec) {
    DiffReport R;
    R.BuildError = Error;
    return R;
  }
  return run(B);
}

DiffReport DiffRunner::run(const BuiltCase &Case) const {
  DiffReport Report;
  if (!Case.Spec) {
    Report.BuildError = "case has no spec";
    return Report;
  }
  if (Case.Threads.empty()) {
    Report.BuildError = "case has no threads";
    return Report;
  }

  memstats::Snapshot MemBefore = memstats::read();
  MoverChecker Movers(*Case.Spec, Config.Movers, Config.Pre);

  // (3) Invariants after every rule firing, via the observation hook.  The
  // hook receives the machine that fired — engines probe on *copies* of
  // the machine (optimistic validation dry-runs), and those firings are
  // checked against the copy's own configuration.
  MachineConfig MC;
  MC.DisabledCriterion = Config.DisabledCriterion.empty()
                             ? Case.DisabledCriterion
                             : Config.DisabledCriterion;
  if (Config.CheckInvariantsEachRule) {
    MC.OnRuleApplied = [&Report, this](const PushPullMachine &FM, RuleKind K,
                                       TxId T) {
      if (Report.InvariantViolated ||
          Report.RulesInvariantChecked >= Config.MaxInvariantCheckedRules)
        return;
      ++Report.RulesInvariantChecked;
      for (const ThreadState &Th : FM.threads()) {
        InvariantReport R = checkAllInvariants(Th, FM.global(), FM.movers());
        if (!R.Holds) {
          Report.InvariantViolated = true;
          Report.InvariantDetail = "after " + toString(K) + " by thread " +
                                   std::to_string(T) + ": " + R.Which +
                                   " failed for thread " +
                                   std::to_string(Th.Tid) +
                                   (R.Detail.empty() ? "" : " — " + R.Detail);
          return;
        }
      }
    };
  }

  PushPullMachine M(*Case.Spec, Movers, MC);
  for (const auto &P : Case.Threads)
    M.addThread(P);

  std::string EngineError;
  std::unique_ptr<TMEngine> Engine =
      makeEngine(Case.Engine, Case.EngineOpts, M, EngineError);
  if (!Engine) {
    Report.BuildError = EngineError;
    return Report;
  }
  Report.Built = true;

  SchedulerConfig SC;
  SC.Policy = Case.Policy;
  SC.Seed = Case.ScheduleSeed;
  SC.MaxSteps = Case.MaxSteps;
  SC.ChangePoints = Case.ChangePoints;
  SC.ReplayPicks = Case.ReplayPicks;
  Report.Stats = Scheduler(SC).run(*Engine);

  // (1) Atomic-oracle replay in commit order — the witness Theorem 5.17's
  // proof constructs, so anything but Yes is suspect (No: discrepancy;
  // Unknown: oracle budget exhausted, inconclusive).
  SerializabilityChecker Oracle(*Case.Spec, Config.Atomic, Config.Pre);
  SerializabilityVerdict V = Oracle.checkCommitOrder(M);
  Report.Serializable = V.Serializable;
  Report.SerializabilityDetail = V.Detail;
  Report.OutcomesTried = V.OutcomesTried;
  if (Report.Serializable == Tri::No && Config.EscalateToAnyOrder) {
    // Diagnostic context: is some non-commit order a witness (commit-order
    // bookkeeping bug) or is the run flatly non-serializable?
    Report.SerializableAnyOrder = Oracle.checkAnyOrder(M).Serializable;
  }

  // (2) Fragment classification against the engine's declared strategy.
  Report.Opacity = classifyTrace(M.trace());
  Report.OpacityViolated =
      engineExpectedOpaque(Case.Engine) && !Report.Opacity.InOpaqueFragment;

  Report.Caches.Intern = Case.Spec->internStats();
  Report.Caches.MoverMemoHits = Movers.memoHits();
  Report.Caches.MoverMemoMisses = Movers.memoMisses();
  Report.Caches.PrecongruencePairs = Movers.precongruence().pairsVisited();
  Report.Caches.ReachableSets = Movers.reachableComputedCount();
  Report.Caches.Memory = memstats::read().delta(MemBefore);
  return Report;
}

std::string DiffReport::toString() const {
  if (!Built)
    return "build error: " + BuildError + "\n";
  std::string Out;
  Out += "  stats: " + Stats.toString() + "\n";
  Out += "  serializable (commit order): " + pushpull::toString(Serializable);
  if (!SerializabilityDetail.empty())
    Out += " — " + SerializabilityDetail;
  Out += " [" + std::to_string(OutcomesTried) + " outcomes]\n";
  if (Serializable == Tri::No)
    Out += "  serializable (any order): " +
           pushpull::toString(SerializableAnyOrder) + "\n";
  Out += "  opacity: " +
         std::string(Opacity.InOpaqueFragment ? "in" : "OUTSIDE") +
         " the opaque fragment (" + std::to_string(Opacity.UncommittedPulls) +
         "/" + std::to_string(Opacity.TotalPulls) + " uncommitted pulls)" +
         (OpacityViolated ? " — UNEXPECTED for this engine" : "") + "\n";
  Out += "  invariants: ";
  if (InvariantViolated)
    Out += "VIOLATED " + InvariantDetail + "\n";
  else
    Out += "held over " + std::to_string(RulesInvariantChecked) +
           " checked rule firings\n";
  Out += Caches.toString();
  return Out;
}
