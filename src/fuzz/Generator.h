//===- fuzz/Generator.h - Differential fuzz-case generation -----*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random generation of differential test cases.  A FuzzCase is a
/// complete experiment in *symbolic* form — spec descriptors, engine name
/// and options, schedule, and per-thread transaction programs — so every
/// case serializes to a replayable `.pp` scenario file (the reproducer
/// format written by the shrinker and accepted by `ppfuzz --replay` and
/// `pprun`).
///
/// Generation reuses the sim/Workload transaction mixes (the Section 6
/// experiment workloads) over deliberately tiny domains: the atomic oracle
/// of check/Serializability enumerates serial executions, so cases stay
/// small enough that every run is cross-checked exactly.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_FUZZ_GENERATOR_H
#define PUSHPULL_FUZZ_GENERATOR_H

#include "lang/Ast.h"
#include "sim/Scheduler.h"
#include "support/Rng.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pushpull {

class SequentialSpec;

/// One spec part in scenario-directive form (kind plus key=value options).
/// Kept symbolic so cases serialize and so the shrinker can shrink domains.
struct SpecDesc {
  std::string Kind;
  std::map<std::string, std::string> Opts;
};

/// A complete generated test case.
struct FuzzCase {
  /// One part, or several composing into a CompositeSpec.
  std::vector<SpecDesc> Specs;
  std::string Engine = "optimistic";
  std::map<std::string, std::string> EngineOpts;
  SchedulePolicy Policy = SchedulePolicy::RandomUniform;
  uint64_t ScheduleSeed = 1;
  uint64_t MaxSteps = 30000;
  unsigned ChangePoints = 3;
  /// Per-thread transaction sequences (each element a Tx node).
  std::vector<std::vector<CodePtr>> Threads;

  /// Method calls across all threads (the shrinker's size metric).
  size_t totalOps() const;
  size_t totalTxs() const;

  /// Render as a pprun/ppfuzz-replayable scenario file.
  std::string toScenarioText() const;

  /// Build the composed SequentialSpec from the descriptors.  Returns
  /// nullptr and sets \p Error on a bad descriptor.
  std::shared_ptr<const SequentialSpec> buildSpec(std::string &Error) const;
};

/// Generation knobs.
struct GeneratorConfig {
  uint64_t Seed = 1;
  /// Threads per case are drawn from [2, MaxThreads].
  unsigned MaxThreads = 3;
  unsigned MaxTxPerThread = 2;
  unsigned MaxOpsPerTx = 3;
  /// Engines cycled round-robin by case index so campaigns cover all of
  /// them deterministically.  Empty = allEngineNames().
  std::vector<std::string> Engines;
  /// Spec kinds cycled likewise.  Empty = allSpecKinds() + "composite"
  /// (a two-part mix, the Section 7 configuration).
  std::vector<std::string> SpecKinds;
};

/// Seeded random FuzzCase generator over all specs and engines.
class Generator {
public:
  explicit Generator(GeneratorConfig Config);

  /// The next case.  Engine and spec kind cycle deterministically with
  /// the case index; programs, seeds and knobs come from the stream.
  FuzzCase next();

  uint64_t generated() const { return Count; }

  const GeneratorConfig &config() const { return Config; }

private:
  /// Random spec descriptor (small domains) for \p Kind.
  SpecDesc makeSpecDesc(const std::string &Kind, const std::string &Name);

  /// Programs for one part via the sim/Workload mixes.
  std::vector<std::vector<CodePtr>> makePrograms(const SpecDesc &Desc,
                                                 unsigned Threads);

  GeneratorConfig Config;
  Rng R;
  uint64_t Count = 0;
};

} // namespace pushpull

#endif // PUSHPULL_FUZZ_GENERATOR_H
