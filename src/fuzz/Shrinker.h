//===- fuzz/Shrinker.h - Counterexample minimization ------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-debugging over FuzzCases: given a case whose differential run
/// shows a discrepancy, greedily remove structure — whole threads, whole
/// transactions, single operations — and shrink literal arguments toward
/// zero, keeping a candidate only if the discrepancy survives, until a
/// fixpoint.  Runs are seed-deterministic, so "still fails" is a pure
/// predicate and the result is a smallest-by-construction reproducer
/// (1-minimal: removing any single remaining piece makes the failure
/// vanish), ready to serialize under scenarios/regress/.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_FUZZ_SHRINKER_H
#define PUSHPULL_FUZZ_SHRINKER_H

#include "fuzz/DiffRunner.h"

namespace pushpull {

/// Shrinking knobs.
struct ShrinkConfig {
  /// Total differential runs the shrinker may spend.
  uint64_t MaxRuns = 3000;
};

/// Result of a shrink.
struct ShrinkOutcome {
  /// The 1-minimal failing case (the original if it never reproduced).
  FuzzCase Minimized;
  /// The differential report of the minimized case.
  DiffReport FinalReport;
  /// True iff the input case's discrepancy reproduced at all.
  bool Reproduced = false;
  uint64_t RunsUsed = 0;
};

/// Greedy ddmin-style minimizer driven by a DiffRunner.
class Shrinker {
public:
  Shrinker(const DiffRunner &Runner, ShrinkConfig Config = {})
      : Runner(Runner), Config(Config) {}

  /// Minimize \p Case, whose run under the runner is expected to show a
  /// discrepancy.
  ShrinkOutcome shrink(const FuzzCase &Case) const;

private:
  const DiffRunner &Runner;
  ShrinkConfig Config;
};

} // namespace pushpull

#endif // PUSHPULL_FUZZ_SHRINKER_H
