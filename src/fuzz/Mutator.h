//===- fuzz/Mutator.h - Structural program mutation -------------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural mutation of FuzzCases: beyond the workload generators'
/// straight-line mixes, mutation drops/duplicates/swaps operations,
/// perturbs literal arguments, clones transactions across threads (the
/// conflict amplifier), wraps operations in nondeterministic choice, and
/// reseeds the schedule and engine.  A campaign interleaves fresh
/// generation with mutation of previously-run cases, the classic
/// coverage-widening move of differential fuzzers.
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_FUZZ_MUTATOR_H
#define PUSHPULL_FUZZ_MUTATOR_H

#include "fuzz/Generator.h"
#include "support/Rng.h"

namespace pushpull {

/// Mutation knobs.
struct MutatorConfig {
  /// Mutations applied per call to mutate() are drawn from
  /// [1, MaxMutations].
  unsigned MaxMutations = 3;
};

/// Applies random structural mutations to a case (input untouched).
class Mutator {
public:
  explicit Mutator(MutatorConfig Config = {}) : Config(Config) {}

  /// A mutated copy of \p Case.  Never produces a case without threads,
  /// transactions, or operations.
  FuzzCase mutate(const FuzzCase &Case, Rng &R) const;

private:
  /// Apply one random mutation in place; false if the chosen mutation was
  /// not applicable (caller retries with another draw).
  bool mutateOnce(FuzzCase &Case, Rng &R) const;

  MutatorConfig Config;
};

/// Decompose a straight-line transaction body (Seq/Call/Skip tree) into
/// its call nodes.  Empty optional when the body contains choice/loop
/// structure.  Shared with the shrinker.
std::optional<std::vector<CodePtr>> straightLineOps(const CodePtr &TxNode);

/// Rebuild a Tx node from a call list (skip body when empty).
CodePtr txFromOps(const std::vector<CodePtr> &Ops);

/// Clamp engine options that name thread ids (irrevocable=N) back into
/// range after threads were dropped by mutation or shrinking.
void normalizeThreadRefs(FuzzCase &Case);

} // namespace pushpull

#endif // PUSHPULL_FUZZ_MUTATOR_H
