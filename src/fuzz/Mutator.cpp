//===- fuzz/Mutator.cpp - Structural program mutation -----------------------===//

#include "fuzz/Mutator.h"

#include <algorithm>
#include <cstdlib>

using namespace pushpull;

namespace {

void collectOps(const CodePtr &C, std::vector<CodePtr> &Out, bool &Straight) {
  switch (C->kind()) {
  case CodeKind::Call:
    Out.push_back(C);
    return;
  case CodeKind::Seq:
    collectOps(C->lhs(), Out, Straight);
    collectOps(C->rhs(), Out, Straight);
    return;
  case CodeKind::Skip:
    return;
  case CodeKind::Tx:
    collectOps(C->body(), Out, Straight);
    return;
  default: // Choice/Loop: not straight-line.
    Straight = false;
    return;
  }
}

/// Pick a random (thread, tx) pair; nullopt when the case has none.
std::optional<std::pair<size_t, size_t>> pickTx(const FuzzCase &Case,
                                                Rng &R) {
  std::vector<std::pair<size_t, size_t>> All;
  for (size_t T = 0; T < Case.Threads.size(); ++T)
    for (size_t X = 0; X < Case.Threads[T].size(); ++X)
      All.push_back({T, X});
  if (All.empty())
    return std::nullopt;
  return All[R.below(All.size())];
}

} // namespace

std::optional<std::vector<CodePtr>>
pushpull::straightLineOps(const CodePtr &TxNode) {
  std::vector<CodePtr> Ops;
  bool Straight = true;
  collectOps(TxNode, Ops, Straight);
  if (!Straight)
    return std::nullopt;
  return Ops;
}

CodePtr pushpull::txFromOps(const std::vector<CodePtr> &Ops) {
  return tx(seqAll(Ops));
}

bool Mutator::mutateOnce(FuzzCase &Case, Rng &R) const {
  switch (R.below(10)) {
  case 0: { // Drop one operation (but never the case's last one).
    if (Case.totalOps() <= 1)
      return false;
    auto TX = pickTx(Case, R);
    if (!TX)
      return false;
    CodePtr &Tx = Case.Threads[TX->first][TX->second];
    auto Ops = straightLineOps(Tx);
    if (!Ops || Ops->empty())
      return false;
    Ops->erase(Ops->begin() + R.below(Ops->size()));
    if (Ops->empty())
      Case.Threads[TX->first].erase(Case.Threads[TX->first].begin() +
                                    TX->second);
    else
      Tx = txFromOps(*Ops);
    return true;
  }
  case 1: { // Duplicate an operation in place.
    auto TX = pickTx(Case, R);
    if (!TX)
      return false;
    CodePtr &Tx = Case.Threads[TX->first][TX->second];
    auto Ops = straightLineOps(Tx);
    if (!Ops || Ops->empty())
      return false;
    size_t I = R.below(Ops->size());
    Ops->insert(Ops->begin() + I, (*Ops)[I]);
    Tx = txFromOps(*Ops);
    return true;
  }
  case 2: { // Swap two adjacent operations.
    auto TX = pickTx(Case, R);
    if (!TX)
      return false;
    CodePtr &Tx = Case.Threads[TX->first][TX->second];
    auto Ops = straightLineOps(Tx);
    if (!Ops || Ops->size() < 2)
      return false;
    size_t I = R.below(Ops->size() - 1);
    std::swap((*Ops)[I], (*Ops)[I + 1]);
    Tx = txFromOps(*Ops);
    return true;
  }
  case 3: { // Perturb a literal argument by +-1 (clamped to [0, 4]).
    auto TX = pickTx(Case, R);
    if (!TX)
      return false;
    CodePtr &Tx = Case.Threads[TX->first][TX->second];
    auto Ops = straightLineOps(Tx);
    if (!Ops || Ops->empty())
      return false;
    size_t I = R.below(Ops->size());
    MethodExpr M = (*Ops)[I]->call();
    std::vector<size_t> Lits;
    for (size_t A = 0; A < M.Args.size(); ++A)
      if (std::holds_alternative<Value>(M.Args[A]))
        Lits.push_back(A);
    if (Lits.empty())
      return false;
    size_t A = Lits[R.below(Lits.size())];
    Value V = std::get<Value>(M.Args[A]);
    V = R.chance(1, 2) ? V + 1 : V - 1;
    M.Args[A] = std::clamp<Value>(V, 0, 4);
    (*Ops)[I] = Code::makeCall(std::move(M));
    Tx = txFromOps(*Ops);
    return true;
  }
  case 4: { // Drop a whole transaction.
    if (Case.totalTxs() <= 1)
      return false;
    auto TX = pickTx(Case, R);
    if (!TX)
      return false;
    Case.Threads[TX->first].erase(Case.Threads[TX->first].begin() +
                                  TX->second);
    return true;
  }
  case 5: { // Drop a whole thread.
    std::vector<size_t> NonEmpty;
    for (size_t T = 0; T < Case.Threads.size(); ++T)
      if (!Case.Threads[T].empty())
        NonEmpty.push_back(T);
    if (NonEmpty.size() < 2)
      return false;
    Case.Threads.erase(Case.Threads.begin() +
                       NonEmpty[R.below(NonEmpty.size())]);
    return true;
  }
  case 6: { // Clone a transaction onto another thread (conflict amplifier).
    if (Case.Threads.size() < 2)
      return false;
    auto TX = pickTx(Case, R);
    if (!TX)
      return false;
    size_t To = R.below(Case.Threads.size());
    if (To == TX->first)
      To = (To + 1) % Case.Threads.size();
    Case.Threads[To].push_back(Case.Threads[TX->first][TX->second]);
    return true;
  }
  case 7: { // Make one operation optional: op  ~>  (op + skip).
    auto TX = pickTx(Case, R);
    if (!TX)
      return false;
    CodePtr &Tx = Case.Threads[TX->first][TX->second];
    auto Ops = straightLineOps(Tx);
    if (!Ops || Ops->empty())
      return false;
    size_t I = R.below(Ops->size());
    (*Ops)[I] = choice((*Ops)[I], skip());
    Tx = txFromOps(*Ops);
    return true;
  }
  case 8: { // Reseed/flip the schedule.
    Case.ScheduleSeed = R.next() % 1000000;
    switch (R.below(3)) {
    case 0:
      Case.Policy = SchedulePolicy::RandomUniform;
      break;
    case 1:
      Case.Policy = SchedulePolicy::RoundRobin;
      break;
    default:
      Case.Policy = SchedulePolicy::PriorityChangePoints;
      break;
    }
    return true;
  }
  default: // Reseed the engine's own randomness.
    Case.EngineOpts["seed"] = std::to_string(R.next() % 100000);
    return true;
  }
}

FuzzCase Mutator::mutate(const FuzzCase &Case, Rng &R) const {
  FuzzCase Out = Case;
  unsigned N = static_cast<unsigned>(R.range(1, Config.MaxMutations));
  for (unsigned I = 0; I < N;) {
    if (mutateOnce(Out, R))
      ++I;
    else if (mutateOnce(Out, R)) // One retry with a fresh draw, then give up
      ++I;                       // on this slot (tiny cases reject a lot).
    else
      break;
  }
  // Dropping transactions can leave threads empty; prune them so thread
  // ids in the replayed scenario stay dense.
  Out.Threads.erase(std::remove_if(Out.Threads.begin(), Out.Threads.end(),
                                   [](const std::vector<CodePtr> &T) {
                                     return T.empty();
                                   }),
                    Out.Threads.end());
  if (Out.Threads.empty())
    return Case; // Over-aggressive mutation; keep the original.
  normalizeThreadRefs(Out);
  return Out;
}

void pushpull::normalizeThreadRefs(FuzzCase &Case) {
  auto It = Case.EngineOpts.find("irrevocable");
  if (It == Case.EngineOpts.end() || Case.Threads.empty())
    return;
  uint64_t T = std::strtoull(It->second.c_str(), nullptr, 10);
  if (T >= Case.Threads.size())
    It->second = std::to_string(Case.Threads.size() - 1);
}
