//===- fuzz/Campaign.h - Differential fuzzing campaigns ---------*- C++ -*-===//
//
// Part of the pushpull project: an executable semantics for the PUSH/PULL
// model of transactions (Koskinen & Parkinson, PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign loop: generate (or mutate) a case, run it differentially,
/// track per-engine rule coverage, and on a discrepancy shrink to a
/// 1-minimal reproducer and write it as a replayable `.pp` scenario under
/// the repro directory.  A campaign *fails* if any discrepancy was found,
/// or if some engine finished the campaign without exercising its whole
/// expected rule set (the fuzzer was not actually testing that engine).
///
//===----------------------------------------------------------------------===//

#ifndef PUSHPULL_FUZZ_CAMPAIGN_H
#define PUSHPULL_FUZZ_CAMPAIGN_H

#include "fuzz/DiffRunner.h"
#include "fuzz/Generator.h"
#include "fuzz/Mutator.h"
#include "fuzz/Shrinker.h"

#include <map>

namespace pushpull {

/// Campaign knobs.
struct CampaignConfig {
  GeneratorConfig Gen;
  DiffConfig Diff;
  MutatorConfig Mut;
  ShrinkConfig Shrink;
  /// Cases to run.
  uint64_t Runs = 500;
  /// Wall-clock budget in seconds (0 = unlimited); useful for smoke runs.
  double MaxSeconds = 0;
  /// Percentage of runs that mutate a previously-run case instead of
  /// generating a fresh one (the coverage-widening move).
  unsigned MutantPct = 30;
  /// Shrink discrepancies before reporting them.
  bool ShrinkFailures = true;
  /// Where minimized reproducers are written (empty = don't write files).
  std::string ReproDir;
  /// Per-run progress lines on stderr.
  bool Verbose = false;
};

/// What the campaign observed for one engine.
struct EngineCoverage {
  uint64_t Runs = 0;
  uint64_t Commits = 0;
  uint64_t Aborts = 0;
  uint64_t Discrepancies = 0;
  /// Rule-mix histogram summed over the engine's runs.
  uint64_t RuleCounts[7] = {};

  /// Bitmask of rules with a nonzero count.
  uint32_t observedMask() const;
};

/// Aggregated campaign outcome.
struct CampaignReport {
  uint64_t RunsDone = 0;
  uint64_t Discrepancies = 0;
  uint64_t Inconclusive = 0;
  uint64_t NotQuiescent = 0;
  std::map<std::string, EngineCoverage> PerEngine;
  /// Full DiffReport renderings of (shrunken) failures.
  std::vector<std::string> FailureReports;
  /// Paths of written reproducers, aligned with FailureReports.
  std::vector<std::string> ReproFiles;
  /// `ppfuzz --replay <file>` command lines, aligned with ReproFiles.
  std::vector<std::string> ReplayCommands;
  /// Interning/memoization counters summed over all runs.
  CacheStats Caches;

  /// "engine: RULE, RULE" lines for engines that ran but did not exercise
  /// their whole expected rule set (empty = full coverage).
  std::vector<std::string> uncoveredRules() const;

  /// No discrepancies and full expected-rule coverage.
  bool ok() const { return Discrepancies == 0 && uncoveredRules().empty(); }

  /// Multi-line summary (per-engine rule histograms, failures, repros).
  std::string toString() const;
};

/// Drives a whole campaign.
class Campaign {
public:
  explicit Campaign(CampaignConfig Config);

  CampaignReport run();

private:
  /// Run one case end-to-end (diff, account, shrink + write on failure).
  void runCase(const FuzzCase &Case, CampaignReport &Report);

  CampaignConfig Config;
  Generator Gen;
  Mutator Mut;
  DiffRunner Runner;
  Rng R;
  /// Reservoir of past cases for mutation.
  std::vector<FuzzCase> Corpus;
};

} // namespace pushpull

#endif // PUSHPULL_FUZZ_CAMPAIGN_H
