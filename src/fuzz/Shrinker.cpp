//===- fuzz/Shrinker.cpp - Counterexample minimization ----------------------===//

#include "fuzz/Shrinker.h"

#include "fuzz/Mutator.h"

using namespace pushpull;

namespace {

/// Replace the \p Nth Choice node (pre-order) with one of its branches.
/// \p Nth counts down in place; returns null when the tree has fewer
/// choices than requested.
CodePtr replaceChoice(const CodePtr &C, size_t &Nth, bool TakeLhs) {
  switch (C->kind()) {
  case CodeKind::Choice: {
    if (Nth == 0)
      return TakeLhs ? C->lhs() : C->rhs();
    --Nth;
    if (CodePtr L = replaceChoice(C->lhs(), Nth, TakeLhs))
      return Code::makeChoice(L, C->rhs());
    if (CodePtr R = replaceChoice(C->rhs(), Nth, TakeLhs))
      return Code::makeChoice(C->lhs(), R);
    return nullptr;
  }
  case CodeKind::Seq:
    if (CodePtr L = replaceChoice(C->lhs(), Nth, TakeLhs))
      return Code::makeSeq(L, C->rhs());
    if (CodePtr R = replaceChoice(C->rhs(), Nth, TakeLhs))
      return Code::makeSeq(C->lhs(), R);
    return nullptr;
  case CodeKind::Tx:
    if (CodePtr B = replaceChoice(C->body(), Nth, TakeLhs))
      return Code::makeTx(B);
    return nullptr;
  case CodeKind::Loop:
    if (CodePtr B = replaceChoice(C->body(), Nth, TakeLhs))
      return Code::makeLoop(B);
    return nullptr;
  default:
    return nullptr;
  }
}

size_t countChoices(const CodePtr &C) {
  switch (C->kind()) {
  case CodeKind::Choice:
    return 1 + countChoices(C->lhs()) + countChoices(C->rhs());
  case CodeKind::Seq:
    return countChoices(C->lhs()) + countChoices(C->rhs());
  case CodeKind::Tx:
  case CodeKind::Loop:
    return countChoices(C->body());
  default:
    return 0;
  }
}

void pruneEmptyThreads(FuzzCase &Case) {
  for (size_t T = Case.Threads.size(); T-- > 0;)
    if (Case.Threads[T].empty() && Case.Threads.size() > 1)
      Case.Threads.erase(Case.Threads.begin() + T);
  normalizeThreadRefs(Case);
}

} // namespace

ShrinkOutcome Shrinker::shrink(const FuzzCase &Case) const {
  ShrinkOutcome Out;
  Out.Minimized = Case;
  uint64_t Runs = 0;

  // "Still fails" — a pure predicate, since runs are seed-deterministic.
  auto Fails = [&](const FuzzCase &C, DiffReport &Save) {
    if (Runs >= Config.MaxRuns)
      return false;
    ++Runs;
    DiffReport R = Runner.run(C);
    if (!R.discrepancy())
      return false;
    Save = std::move(R);
    return true;
  };
  // Try a candidate; on surviving failure adopt it as the new minimum.
  auto Accept = [&](FuzzCase &&Cand) {
    DiffReport R;
    if (!Fails(Cand, R))
      return false;
    Out.Minimized = std::move(Cand);
    Out.FinalReport = std::move(R);
    return true;
  };

  if (!Fails(Out.Minimized, Out.FinalReport)) {
    Out.RunsUsed = Runs;
    return Out; // Flaky or fixed: nothing to shrink.
  }
  Out.Reproduced = true;

  // Greedy fixpoint: run every pass until a whole sweep makes no progress.
  // Each pass is itself run to saturation, smallest-granularity last.
  bool Progress = true;
  while (Progress && Runs < Config.MaxRuns) {
    Progress = false;

    // Pass 1: drop whole threads.
    for (size_t T = 0; T < Out.Minimized.Threads.size();) {
      if (Out.Minimized.Threads.size() <= 1)
        break;
      FuzzCase Cand = Out.Minimized;
      Cand.Threads.erase(Cand.Threads.begin() + T);
      normalizeThreadRefs(Cand);
      if (Accept(std::move(Cand)))
        Progress = true; // Same index now names the next thread.
      else
        ++T;
    }

    // Pass 2: drop whole transactions.
    for (size_t T = 0; T < Out.Minimized.Threads.size(); ++T)
      for (size_t X = 0; X < Out.Minimized.Threads[T].size();) {
        if (Out.Minimized.totalTxs() <= 1)
          break;
        FuzzCase Cand = Out.Minimized;
        Cand.Threads[T].erase(Cand.Threads[T].begin() + X);
        pruneEmptyThreads(Cand);
        if (Accept(std::move(Cand)))
          Progress = true;
        else
          ++X;
      }

    // Pass 3: resolve nondeterministic choices to a single branch (these
    // come from the (op + skip) mutation; a resolved body exposes its
    // operations to pass 4).
    for (size_t T = 0; T < Out.Minimized.Threads.size(); ++T)
      for (size_t X = 0; X < Out.Minimized.Threads[T].size(); ++X)
        for (size_t N = countChoices(Out.Minimized.Threads[T][X]); N-- > 0;)
          for (bool TakeLhs : {false, true}) { // Prefer the skip branch.
            size_t Nth = N;
            CodePtr B =
                replaceChoice(Out.Minimized.Threads[T][X], Nth, TakeLhs);
            if (!B)
              continue;
            FuzzCase Cand = Out.Minimized;
            Cand.Threads[T][X] = B;
            if (Accept(std::move(Cand))) {
              Progress = true;
              break;
            }
          }

    // Pass 4: drop single operations.
    for (size_t T = 0; T < Out.Minimized.Threads.size(); ++T)
      for (size_t X = 0; X < Out.Minimized.Threads[T].size(); ++X) {
        auto Ops = straightLineOps(Out.Minimized.Threads[T][X]);
        if (!Ops)
          continue;
        for (size_t I = 0; I < Ops->size();) {
          if (Ops->size() <= 1)
            break; // Dropping the last op is pass 2's job.
          std::vector<CodePtr> Fewer = *Ops;
          Fewer.erase(Fewer.begin() + I);
          FuzzCase Cand = Out.Minimized;
          Cand.Threads[T][X] = txFromOps(Fewer);
          if (Accept(std::move(Cand))) {
            *Ops = std::move(Fewer);
            Progress = true;
          } else {
            ++I;
          }
        }
      }

    // Pass 5: shrink literal arguments toward zero (0, then halves).
    for (size_t T = 0; T < Out.Minimized.Threads.size(); ++T)
      for (size_t X = 0; X < Out.Minimized.Threads[T].size(); ++X) {
        auto Ops = straightLineOps(Out.Minimized.Threads[T][X]);
        if (!Ops)
          continue;
        for (size_t I = 0; I < Ops->size(); ++I) {
          MethodExpr M = (*Ops)[I]->call();
          for (size_t A = 0; A < M.Args.size(); ++A) {
            if (!std::holds_alternative<Value>(M.Args[A]))
              continue;
            Value V = std::get<Value>(M.Args[A]);
            for (Value Smaller : {Value(0), V / 2}) {
              if (Smaller >= V || Smaller == std::get<Value>(M.Args[A]))
                continue;
              MethodExpr M2 = M;
              M2.Args[A] = Smaller;
              std::vector<CodePtr> Alt = *Ops;
              Alt[I] = Code::makeCall(M2);
              FuzzCase Cand = Out.Minimized;
              Cand.Threads[T][X] = txFromOps(Alt);
              if (Accept(std::move(Cand))) {
                *Ops = std::move(Alt);
                M = M2;
                Progress = true;
                break;
              }
            }
          }
        }
      }
  }

  Out.RunsUsed = Runs;
  return Out;
}
