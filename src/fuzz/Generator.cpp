//===- fuzz/Generator.cpp - Differential fuzz-case generation ---------------===//

#include "fuzz/Generator.h"

#include "lang/Printer.h"
#include "sim/Scenario.h"
#include "sim/Workload.h"
#include "spec/CompositeSpec.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace pushpull;

size_t FuzzCase::totalOps() const {
  size_t N = 0;
  // Count Call nodes structurally (mutated bodies may contain choices).
  std::function<void(const CodePtr &)> Walk = [&](const CodePtr &C) {
    switch (C->kind()) {
    case CodeKind::Call:
      ++N;
      return;
    case CodeKind::Seq:
    case CodeKind::Choice:
      Walk(C->lhs());
      Walk(C->rhs());
      return;
    case CodeKind::Loop:
    case CodeKind::Tx:
      Walk(C->body());
      return;
    case CodeKind::Skip:
      return;
    }
  };
  for (const auto &Txs : Threads)
    for (const CodePtr &T : Txs)
      Walk(T);
  return N;
}

size_t FuzzCase::totalTxs() const {
  size_t N = 0;
  for (const auto &Txs : Threads)
    N += Txs.size();
  return N;
}

std::string FuzzCase::toScenarioText() const {
  std::string Out = "# ppfuzz case (replay with: ppfuzz --replay <file>)\n";
  for (const SpecDesc &D : Specs) {
    Out += "spec " + D.Kind;
    for (const auto &[K, V] : D.Opts)
      Out += " " + K + (V.empty() ? "" : "=" + V);
    Out += "\n";
  }
  Out += "engine " + Engine;
  for (const auto &[K, V] : EngineOpts)
    Out += " " + K + (V.empty() ? "" : "=" + V);
  Out += "\n";
  const char *PolicyName = Policy == SchedulePolicy::RoundRobin ? "roundrobin"
                           : Policy == SchedulePolicy::RandomUniform
                               ? "random"
                               : "pct";
  Out += "schedule " + std::string(PolicyName) +
         " seed=" + std::to_string(ScheduleSeed) +
         " maxsteps=" + std::to_string(MaxSteps) +
         " changepoints=" + std::to_string(ChangePoints) + "\n";
  for (const auto &Txs : Threads) {
    Out += "thread ";
    for (size_t I = 0; I < Txs.size(); ++I) {
      if (I)
        Out += "; ";
      Out += printCode(Txs[I]);
    }
    Out += "\n";
  }
  // The standard check battery, so reproducers also run under plain pprun.
  Out += "check serializability\ncheck opacity\ncheck invariants\n";
  return Out;
}

std::shared_ptr<const SequentialSpec>
FuzzCase::buildSpec(std::string &Error) const {
  if (Specs.empty()) {
    Error = "fuzz case declares no spec";
    return nullptr;
  }
  std::vector<std::pair<std::string, std::shared_ptr<const SequentialSpec>>>
      Parts;
  for (const SpecDesc &D : Specs) {
    std::string Name;
    auto Part = makeSpecPart(D.Kind, D.Opts, Name, Error);
    if (!Part)
      return nullptr;
    for (const auto &[Existing, _] : Parts)
      if (Existing == Name) {
        Error = "duplicate spec name '" + Name + "'";
        return nullptr;
      }
    Parts.push_back({Name, std::move(Part)});
  }
  if (Parts.size() == 1)
    return Parts[0].second;
  auto Composite = std::make_shared<CompositeSpec>();
  for (auto &[Name, Part] : Parts)
    Composite->add(Name, std::move(Part));
  return Composite;
}

Generator::Generator(GeneratorConfig C) : Config(std::move(C)), R(Config.Seed) {
  if (Config.Engines.empty())
    Config.Engines = allEngineNames();
  if (Config.SpecKinds.empty()) {
    Config.SpecKinds = allSpecKinds();
    Config.SpecKinds.push_back("composite");
  }
  if (Config.MaxThreads < 2)
    Config.MaxThreads = 2;
}

SpecDesc Generator::makeSpecDesc(const std::string &Kind,
                                 const std::string &Name) {
  SpecDesc D;
  D.Kind = Kind;
  D.Opts["name"] = Name;
  // Domains stay tiny: every run is cross-checked against the exact
  // atomic oracle, whose search is exponential in domain and program size.
  if (Kind == "register") {
    D.Opts["regs"] = std::to_string(R.range(1, 3));
    D.Opts["vals"] = std::to_string(R.range(2, 3));
  } else if (Kind == "counter") {
    D.Opts["counters"] = std::to_string(R.range(1, 2));
    D.Opts["mod"] = std::to_string(R.range(4, 8));
  } else if (Kind == "set") {
    D.Opts["keys"] = std::to_string(R.range(2, 4));
  } else if (Kind == "map") {
    D.Opts["keys"] = std::to_string(R.range(2, 4));
    D.Opts["vals"] = std::to_string(R.range(2, 3));
  } else if (Kind == "queue") {
    D.Opts["cap"] = std::to_string(R.range(2, 3));
    D.Opts["vals"] = "2";
  } else if (Kind == "bank") {
    D.Opts["accounts"] = "2";
    D.Opts["cap"] = std::to_string(R.range(3, 4));
    D.Opts["initial"] = std::to_string(R.range(1, 2));
  } else {
    assert(false && "unknown spec kind in generator");
  }
  return D;
}

std::vector<std::vector<CodePtr>>
Generator::makePrograms(const SpecDesc &Desc, unsigned Threads) {
  std::string Name, Error;
  auto Part = makeSpecPart(Desc.Kind, Desc.Opts, Name, Error);
  assert(Part && "generator built an invalid spec descriptor");

  WorkloadConfig WC;
  WC.Threads = Threads;
  WC.TxPerThread = static_cast<unsigned>(R.range(1, Config.MaxTxPerThread));
  WC.OpsPerTx = static_cast<unsigned>(R.range(1, Config.MaxOpsPerTx));
  WC.KeyRange = static_cast<unsigned>(R.range(1, 3));
  WC.ZipfTheta = R.chance(1, 2) ? 100 : 0; // Hot-key contention half the time.
  WC.ReadPct = static_cast<unsigned>(R.range(20, 80));
  WC.Seed = R.next();

  if (const auto *S = dynamic_cast<const MapSpec *>(Part.get()))
    return genMapWorkload(*S, WC);
  if (const auto *S = dynamic_cast<const RegisterSpec *>(Part.get()))
    return genRegisterWorkload(*S, WC);
  if (const auto *S = dynamic_cast<const SetSpec *>(Part.get()))
    return genSetWorkload(*S, WC);
  if (const auto *S = dynamic_cast<const CounterSpec *>(Part.get()))
    return genCounterWorkload(*S, WC);
  if (const auto *S = dynamic_cast<const QueueSpec *>(Part.get()))
    return genQueueWorkload(*S, WC);
  if (const auto *S = dynamic_cast<const BankSpec *>(Part.get()))
    return genBankWorkload(*S, WC);
  assert(false && "no workload mix for spec kind");
  return {};
}

FuzzCase Generator::next() {
  // Engine and spec kind cycle with the case index: a campaign of
  // Engines*Kinds runs visits every (engine, kind) pair exactly once.
  const std::string &Engine = Config.Engines[Count % Config.Engines.size()];
  const std::string &Kind =
      Config.SpecKinds[(Count / Config.Engines.size()) %
                       Config.SpecKinds.size()];
  ++Count;

  FuzzCase Case;
  Case.Engine = Engine;
  unsigned Threads = static_cast<unsigned>(R.range(2, Config.MaxThreads));

  if (Kind == "composite") {
    // A two-part mix of distinct primitive kinds (the Section 7 shape).
    const std::vector<std::string> &Prim = allSpecKinds();
    size_t A = R.below(Prim.size());
    size_t B = (A + 1 + R.below(Prim.size() - 1)) % Prim.size();
    Case.Specs.push_back(makeSpecDesc(Prim[A], Prim[A]));
    Case.Specs.push_back(makeSpecDesc(Prim[B], Prim[B]));
  } else {
    Case.Specs.push_back(makeSpecDesc(Kind, Kind));
  }

  // Per-part programs via the workload mixes, merged per thread so
  // composite transactions from both parts interleave in program order.
  Case.Threads.assign(Threads, {});
  for (const SpecDesc &D : Case.Specs) {
    std::vector<std::vector<CodePtr>> P = makePrograms(D, Threads);
    for (unsigned T = 0; T < Threads; ++T)
      for (CodePtr &Tx : P[T])
        Case.Threads[T].push_back(std::move(Tx));
  }

  // Engine options: a seed always; algorithm-specific knobs sometimes.
  Case.EngineOpts["seed"] = std::to_string(R.next() % 100000);
  if (Engine == "checkpoint")
    Case.EngineOpts["every"] = std::to_string(R.range(1, 3));
  if (Engine == "boosting" || Engine == "hybrid") {
    if (R.chance(1, 2))
      Case.EngineOpts["keylocks"] = R.chance(1, 2) ? "1" : "0";
  }
  if (Engine == "dependent")
    Case.EngineOpts["abortpct"] = std::to_string(R.range(0, 25));
  if (Engine == "irrevocable")
    Case.EngineOpts["irrevocable"] =
        std::to_string(R.below(Threads));
  if (Engine == "hybrid") {
    Case.EngineOpts["conflictpct"] = std::to_string(R.range(0, 25));
    if (R.chance(1, 2))
      Case.EngineOpts["htm"] = Case.Specs[0].Opts.at("name");
  }

  switch (R.below(3)) {
  case 0:
    Case.Policy = SchedulePolicy::RandomUniform;
    break;
  case 1:
    Case.Policy = SchedulePolicy::RoundRobin;
    break;
  default:
    Case.Policy = SchedulePolicy::PriorityChangePoints;
    break;
  }
  Case.ScheduleSeed = R.next() % 1000000;
  Case.MaxSteps = 30000;
  Case.ChangePoints = static_cast<unsigned>(R.range(2, 4));
  return Case;
}
