//===- examples/quickstart.cpp - First contact with the public API ----------===//
//
// Build a sequential specification, write two small transactions in the
// Example 1 language, drive them through the PUSH/PULL machine by hand,
// inspect the criteria the machine checks, and certify the run
// serializable with the independent oracle.
//
//   ./quickstart
//
//===----------------------------------------------------------------------===//

#include "check/Serializability.h"
#include "core/Machine.h"
#include "lang/Parser.h"
#include "spec/SetSpec.h"

#include <cstdio>

using namespace pushpull;

int main() {
  // 1. A sequential specification (Parameter 3.1): a set over {0..7}.
  //    `allowed l` is induced by denoting logs into state sets.
  SetSpec Spec("set", 8);

  // 2. The machinery for the paper's side-conditions: left-movers
  //    (Definition 4.1) decided on top of the coinductive precongruence
  //    (Definition 3.1).
  MoverChecker Movers(Spec);

  // 3. A PUSH/PULL machine.  Criteria validation is on by default: every
  //    rule checks its Figure 5 side-conditions before firing.
  PushPullMachine M(Spec, Movers);

  // 4. Programs in the Example 1 language: c ::= c1+c2 | c1;c2 | (c)* |
  //    skip | tx c | m.  Results bind to thread-local stack variables.
  TxId T0 = M.addThread({parseOrDie("tx { a := set.add(1); b := set.contains(2) }")});
  TxId T1 = M.addThread({parseOrDie("tx { c := set.add(2) }")});

  // 5. Drive the rules by hand (engines in tm/ automate these patterns).
  M.beginTx(T0);
  M.beginTx(T1);

  // T0 applies and publishes its add eagerly (a pessimistic pattern).
  RuleResult R = M.app(T0, 0, 0);
  std::printf("T0 %s\n", R.toString().c_str());
  R = M.push(T0, 0);
  std::printf("T0 %s\n", R.toString().c_str());

  // T1's add(2) commutes with T0's uncommitted add(1) — distinct keys —
  // so its push is allowed while T0 is still running.
  M.app(T1, 0, 0);
  R = M.push(T1, 0);
  std::printf("T1 %s\n", R.toString().c_str());
  M.commit(T1);

  // T0 continues: its contains(2) must reflect the *committed* add(2)
  // when published.  Pull the committed effect first, then apply.
  for (size_t GI = 0; GI < M.global().size(); ++GI)
    if (M.global()[GI].Kind == GlobalKind::Committed &&
        !M.thread(T0).L.contains(M.global()[GI].Op.Id))
      M.pull(T0, GI);
  M.app(T0, 0, 0);
  std::printf("T0 sees b = %lld\n",
              static_cast<long long>(M.thread(T0).Sigma.getOrDie("b")));
  M.push(T0, M.thread(T0).L.size() - 1);
  M.commit(T0);

  // 6. The shared log and the Figure 7-style rule trace.
  std::printf("\nShared log: %s\n", M.global().toString().c_str());
  std::printf("\nRule trace:\n%s", M.trace().toString().c_str());

  // 7. Theorem 5.17, checked rather than trusted: replay the committed
  //    transactions atomically (Figure 3) and compare logs by
  //    precongruence.
  SerializabilityChecker Oracle(Spec);
  SerializabilityVerdict V = Oracle.checkCommitOrder(M);
  std::printf("\nserializable (commit order): %s\n",
              toString(V.Serializable).c_str());
  return V.Serializable == Tri::Yes ? 0 : 1;
}
