//===- examples/htm_boosting.cpp - Section 7 / Figure 7 end-to-end -----------===//
//
// The Section 7 hybrid: one transaction mixes boosted objects (skiplist,
// hashtable) with HTM-controlled counters (size, x, y).  The run injects
// an HTM conflict so the engine performs the exact Figure 7 sequence —
// UNPUSH the HTM batch (out of push order, boosted effects stay in the
// shared log), UNAPP past the conflicting access, march forward down the
// other branch, republish, commit.
//
//   ./htm_boosting
//
//===----------------------------------------------------------------------===//

#include "check/Serializability.h"
#include "lang/Parser.h"
#include "sim/Scheduler.h"
#include "spec/CompositeSpec.h"
#include "spec/CounterSpec.h"
#include "spec/MapSpec.h"
#include "spec/SetSpec.h"
#include "tm/HybridHtmBoostingTM.h"

#include <cstdio>
#include <memory>

using namespace pushpull;

int main() {
  // The Section 7 object mix.
  auto Spec = std::make_shared<CompositeSpec>();
  Spec->add("skiplist", std::make_shared<SetSpec>("skiplist", 4));
  Spec->add("hashT", std::make_shared<MapSpec>("hashT", 4, 4));
  Spec->add("size", std::make_shared<CounterSpec>("size", 1, 16));
  Spec->add("x", std::make_shared<CounterSpec>("x", 1, 16));
  Spec->add("y", std::make_shared<CounterSpec>("y", 1, 16));

  MoverChecker Movers(*Spec);
  PushPullMachine M(*Spec, Movers);

  // atomic { skiplist.insert(foo); size++; hashT.map(foo=>bar);
  //          if (*) x++; else y++; }
  M.addThread({parseOrDie("tx { s := skiplist.add(1); size.inc(0); "
                          "h := hashT.put(1, 2); (x.inc(0) + y.inc(0)) }")});
  // A peer doing the same shape on other keys.
  M.addThread({parseOrDie("tx { s := skiplist.add(2); size.inc(0); "
                          "h := hashT.put(2, 3); (x.inc(0) + y.inc(0)) }")});

  HybridConfig HC;
  HC.HtmObjects = {"size", "x", "y"};
  HC.ConflictChancePct = 100; // Force one HTM abort per transaction.
  HC.MaxInjectedPerTx = 1;
  HybridHtmBoostingTM Engine(M, HC);

  Scheduler Sched({SchedulePolicy::RoundRobin, 1, 100000});
  RunStats St = Sched.run(Engine);

  std::printf("Section 7: boosting/HTM interaction\n");
  std::printf("  %s\n", St.toString().c_str());
  std::printf("  HTM retractions: %llu, boosted ops preserved in G: %llu\n",
              static_cast<unsigned long long>(Engine.htmRetractions()),
              static_cast<unsigned long long>(Engine.boostedOpsPreserved()));
  std::printf("\nRule trace (compare with Figure 7):\n%s",
              M.trace().toString().c_str());

  if (!St.Quiescent)
    return 1;
  SerializabilityChecker Oracle(*Spec);
  SerializabilityVerdict V = Oracle.checkCommitOrder(M);
  std::printf("serializable (commit order): %s\n",
              toString(V.Serializable).c_str());
  return V.Serializable == Tri::Yes ? 0 : 1;
}
