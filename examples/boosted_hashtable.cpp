//===- examples/boosted_hashtable.cpp - Figure 2 end-to-end ------------------===//
//
// The paper's Figure 2: a transactionally boosted hashtable.  Threads run
// put/get transactions through the BoostingTM engine — abstract per-key
// locks, eager PUSH at each linearization point, inverse-operation
// (UNPUSH) aborts on deadlock — and the run is certified serializable.
//
//   ./boosted_hashtable [threads] [txs-per-thread] [seed]
//
//===----------------------------------------------------------------------===//

#include "check/Serializability.h"
#include "sim/Scheduler.h"
#include "sim/Workload.h"
#include "spec/MapSpec.h"
#include "tm/BoostingTM.h"

#include <cstdio>
#include <cstdlib>

using namespace pushpull;

int main(int argc, char **argv) {
  unsigned Threads = argc > 1 ? std::atoi(argv[1]) : 4;
  unsigned TxPerThread = argc > 2 ? std::atoi(argv[2]) : 3;
  uint64_t Seed = argc > 3 ? std::atoll(argv[3]) : 42;

  MapSpec Spec("map", 8, 4);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);

  WorkloadConfig WC;
  WC.Threads = Threads;
  WC.TxPerThread = TxPerThread;
  WC.OpsPerTx = 3;
  WC.KeyRange = 8;
  WC.ZipfTheta = 80; // Skewed keys: some lock contention.
  WC.ReadPct = 40;
  WC.Seed = Seed;
  for (auto &P : genMapWorkload(Spec, WC))
    M.addThread(P);

  BoostingTM Engine(M);
  Scheduler Sched({SchedulePolicy::RandomUniform, Seed, 500000});
  RunStats St = Sched.run(Engine);

  std::printf("Figure 2: boosted hashtable, %u threads x %u txs\n", Threads,
              TxPerThread);
  std::printf("  %s\n", St.toString().c_str());
  std::printf("  deadlock aborts: %llu\n",
              static_cast<unsigned long long>(Engine.deadlockAborts()));
  std::printf("  eager-publication signature: APP=%llu PUSH=%llu (equal "
              "modulo aborted work)\n",
              static_cast<unsigned long long>(St.ruleCount(RuleKind::App)),
              static_cast<unsigned long long>(St.ruleCount(RuleKind::Push)));

  if (!St.Quiescent) {
    std::printf("run did not finish within the step budget\n");
    return 1;
  }

  // Final committed map contents, read off the committed log's denotation.
  StateSet Final = Spec.denote(M.committedLog());
  std::printf("  final map: {");
  bool First = true;
  for (unsigned K = 0; K < 8; ++K) {
    auto Cs = Spec.completionsFrom(Final, {"map", "get", {Value(K)}});
    if (Cs.size() == 1 && Cs[0].Result && *Cs[0].Result != MapSpec::Absent) {
      std::printf("%s%u->%lld", First ? "" : ", ", K,
                  static_cast<long long>(*Cs[0].Result));
      First = false;
    }
  }
  std::printf("}\n");

  SerializabilityChecker Oracle(Spec);
  SerializabilityVerdict V = Oracle.checkCommitOrder(M);
  std::printf("  serializable (commit order): %s\n",
              toString(V.Serializable).c_str());
  return V.Serializable == Tri::Yes ? 0 : 1;
}
