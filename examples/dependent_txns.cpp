//===- examples/dependent_txns.cpp - Section 6.5 dependencies ----------------===//
//
// Dependent transactions (Ramadan et al.): a reader PULLs a writer's
// *uncommitted* write — leaving the opaque fragment — and is then gated
// by CMT criterion (iii) until the writer commits.  A second run injects
// writer aborts, showing the cascade: the reader detangles backwards only
// as far as the dead pull, then re-executes.
//
//   ./dependent_txns
//
//===----------------------------------------------------------------------===//

#include "check/Opacity.h"
#include "check/Serializability.h"
#include "lang/Parser.h"
#include "sim/Scheduler.h"
#include "spec/RegisterSpec.h"
#include "tm/DependentTM.h"

#include <cstdio>

using namespace pushpull;

static int runOnce(unsigned AbortChancePct) {
  RegisterSpec Spec("mem", 2, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  M.addThread({parseOrDie("tx { mem.write(0, 1); mem.write(1, 1) }")});
  M.addThread({parseOrDie("tx { v := mem.read(0); w := mem.read(1) }")});

  DependentConfig DC;
  DC.PullUncommitted = true;
  DC.AbortChancePct = AbortChancePct;
  DC.Seed = 3;
  DependentTM Engine(M, DC);
  Scheduler Sched({SchedulePolicy::RoundRobin, 2, 100000});
  RunStats St = Sched.run(Engine);

  std::printf("  %s\n", St.toString().c_str());
  std::printf("  dependencies formed: %llu, gated commits: %llu, "
              "cascade aborts: %llu\n",
              static_cast<unsigned long long>(Engine.dependenciesFormed()),
              static_cast<unsigned long long>(Engine.cascadeAborts()),
              static_cast<unsigned long long>(Engine.gatedCommits()));

  OpacityReport OR = classifyTrace(M.trace());
  std::printf("  opaque fragment: %s (%zu of %zu pulls took uncommitted "
              "effects)\n",
              OR.InOpaqueFragment ? "yes" : "no", OR.UncommittedPulls,
              OR.TotalPulls);

  if (!St.Quiescent)
    return 1;
  SerializabilityChecker Oracle(Spec);
  SerializabilityVerdict V = Oracle.checkAnyOrder(M);
  std::printf("  serializable: %s\n", toString(V.Serializable).c_str());
  return V.Serializable == Tri::Yes ? 0 : 1;
}

int main() {
  std::printf("Section 6.5: dependent transactions\n");
  std::printf("run 1: writer never aborts (dependency commits in order)\n");
  int Rc1 = runOnce(/*AbortChancePct=*/0);
  std::printf("run 2: writer aborts often (cascading detangle)\n");
  int Rc2 = runOnce(/*AbortChancePct=*/50);
  return Rc1 || Rc2;
}
