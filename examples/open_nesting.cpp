//===- examples/open_nesting.cpp - Open nesting walk-through ------------------===//
//
// Open nested transactions (Ni et al., cited throughout the paper): an
// outer transaction's inner segments commit at the abstract level as
// soon as they finish — their effects are immediately visible to other
// threads — and an outer abort runs *compensating transactions* (remove
// what was added, restore what was overwritten) instead of UNPUSHing the
// committed segments.
//
//   ./open_nesting
//
//===----------------------------------------------------------------------===//

#include "check/Serializability.h"
#include "lang/Parser.h"
#include "sim/Scheduler.h"
#include "spec/MapSpec.h"
#include "tm/OpenNestingTM.h"

#include <cstdio>

using namespace pushpull;

int main() {
  MapSpec Spec("m", 8, 8);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);

  // Two outer transactions, each of two open segments; thread 0's outer
  // is forced to abort once between its segments.
  std::vector<std::vector<OuterTx>> Outer = {
      {OuterTx{{parseOrDie("tx { a := m.put(0, 1) }"),
                parseOrDie("tx { b := m.put(1, 1) }")}}},
      {OuterTx{{parseOrDie("tx { c := m.put(2, 2) }"),
                parseOrDie("tx { d := m.put(3, 2) }")}}},
  };
  OpenNestingConfig OC;
  OC.OuterAbortPct = 100;
  OC.MaxAbortsPerOuter = 1;
  OC.Inverse = mapInverses();
  OpenNestingTM Engine(M, std::move(Outer), OC);

  Scheduler Sched({SchedulePolicy::RoundRobin, 1, 50000});
  RunStats St = Sched.run(Engine);

  std::printf("open nesting: %s\n", St.toString().c_str());
  std::printf("  outer commits: %llu, outer aborts: %llu, compensations "
              "run: %llu\n",
              static_cast<unsigned long long>(Engine.outerCommits()),
              static_cast<unsigned long long>(Engine.outerAborts()),
              static_cast<unsigned long long>(Engine.compensationsRun()));
  std::printf("  UNPUSH count (must be 0 — committed segments are "
              "compensated, not retracted): %llu\n",
              static_cast<unsigned long long>(
                  St.ruleCount(RuleKind::UnPush)));
  std::printf("\nRule trace:\n%s", M.trace().toString().c_str());

  if (!St.Quiescent)
    return 1;
  SerializabilityChecker Oracle(Spec);
  SerializabilityVerdict V = Oracle.checkCommitOrder(M);
  std::printf("serializable (commit order): %s\n",
              toString(V.Serializable).c_str());
  return V.Serializable == Tri::Yes ? 0 : 1;
}
