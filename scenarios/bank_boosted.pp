# Boosted bank accounts: deposits commute, withdrawals commute while
# funds last, balance reads conflict — the conditional-commutativity
# structure the abstract-lock discipline exploits.  keylocks=0 selects
# whole-object locking: transfer touches *two* accounts, so per-account
# (first-argument) locks would be unsound for it.
spec bank name=bank accounts=4 cap=8 initial=4
engine boosting seed=21 keylocks=0
schedule random seed=13 maxsteps=200000
thread tx { bank.deposit(0, 1); r := bank.withdraw(1, 2) }; tx { b := bank.balance(0) }
thread tx { bank.deposit(1, 2) }; tx { s := bank.withdraw(0, 1) }
thread tx { t := bank.transfer(2, 3, 2) }
check serializability
check invariants
