# Section 6.3: fully pessimistic TM (Matveev-Shavit).  Writers buffer to
# an uninterleaved commit point; readers publish eagerly; nobody aborts —
# check the run statistics: the aborts column stays 0.
spec register name=mem regs=2 vals=2
engine pessimistic seed=5
schedule random seed=11 maxsteps=200000
thread tx { v := mem.read(0); w := mem.read(0) }
thread tx { mem.write(0, 1); mem.write(1, 1) }
thread tx { u := mem.read(1); mem.write(0, 0) }
check serializability
check invariants
