# Boosted bank where every thread owns a disjoint set of accounts: all
# cross-thread operation pairs act on distinct first arguments, so the
# certified commutativity table proves them strongly commuting and
# `ppcheck --prove` certifies the whole program conflict-serializable
# for any engine rule surface.  pprun --static-prove then lets the
# explorer skip its per-terminal serializability oracle, and
# --commut-db enables the PUSH x PUSH quotient over the same table.
spec bank name=bank accounts=3 cap=4 initial=2
engine boosting seed=21 keylocks=0
schedule random seed=13 maxsteps=200000
thread tx { bank.deposit(0, 1); b := bank.balance(0) }
thread tx { bank.deposit(1, 1); w := bank.withdraw(1, 1) }
thread tx { v := bank.withdraw(2, 1) }
check serializability
check invariants
check explore
