# Figure 2 of the paper: a transactionally boosted hashtable.
# Run with:  pprun --trace scenarios/fig2_boosting.pp
spec map name=map keys=8 vals=4
engine boosting seed=42
schedule random seed=7 maxsteps=100000
thread tx { a := map.put(1, 2) }; tx { b := map.get(1) }
thread tx { c := map.put(1, 3) }
thread tx { d := map.put(3, 1); e := map.get(1) }
check serializability
check opacity
check invariants
