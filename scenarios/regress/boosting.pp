# Boosting's classic deadlock: opposite lock orders on key-granular locks.
# The loser aborts via inverse operations (UNPUSH) and local rewind (UNAPP).
# Replay: ppfuzz --replay scenarios/regress/boosting.pp
spec map name=map keys=4 vals=2
engine boosting seed=1 keylocks=1 deadlock=3
schedule roundrobin seed=1 maxsteps=30000
thread tx { map.put(0, 1); map.put(1, 1) }
thread tx { map.put(1, 1); map.put(0, 1) }
check serializability
check opacity
check invariants
