# Minimal high-contention clinic for the hybrid engine: opposite-order writers
# plus a reader provoke conflict aborts and the inverse rules.
# Replay: ppfuzz --replay scenarios/regress/hybrid.pp
spec map name=map keys=2 vals=2
engine hybrid seed=1 conflictpct=10
schedule random seed=2 maxsteps=30000
thread tx { map.put(0, 1); map.put(1, 1) }; tx { a := map.get(0) }
thread tx { map.put(1, 1); map.put(0, 1) }; tx { b := map.get(1) }
thread tx { c := map.get(0); map.put(0, 0) }
check serializability
check opacity
check invariants
