# The pessimistic engine's commit-phase rollback: thread 1 pushes
# write(2) (no reader), then write(0) is rejected by thread 0's live
# uncommitted pushed read of register 0 - rolling write(2) back (UNPUSH).
# Replay: ppfuzz --replay scenarios/regress/pessimistic.pp
spec register name=register regs=3 vals=2
engine pessimistic seed=1
schedule roundrobin seed=1 maxsteps=30000
thread tx { a := register.read(0); b := register.read(1); c := register.read(1) }
thread tx { register.write(2, 1); register.write(0, 1) }
check serializability
check opacity
check invariants
