# Section 6.5: dependent transactions.  The reader pulls the writer's
# uncommitted effects (leaving the opaque fragment) and is gated until the
# writer commits.
spec register name=mem regs=2 vals=2
engine dependent seed=3
schedule roundrobin seed=2 maxsteps=100000
thread tx { mem.write(0, 1); mem.write(1, 1) }
thread tx { v := mem.read(0); w := mem.read(1) }
check serializability-any
check opacity
