# The conflicting twin of bank_boosted_distinct.pp: two threads share
# account 0, and a deposit does not strongly commute with a balance
# read of the same account (the read's result differs across the two
# orders).  `ppcheck --prove` must reject this program and report that
# minimal conflicting pair with its counterexample witness.  The run
# itself is still serializable — boosting's locks serialize the
# conflict — the point is that the *static* proof correctly refuses.
spec bank name=bank accounts=3 cap=4 initial=2
engine boosting seed=21 keylocks=0
schedule random seed=13 maxsteps=200000
thread tx { bank.deposit(0, 1) }
thread tx { b := bank.balance(0) }
thread tx { v := bank.withdraw(2, 1) }
check serializability
check invariants
check explore
