# Section 7 / Figure 7: boosted skiplist + hashtable mixed with
# HTM-controlled counters inside one transaction.  conflictpct=100 forces
# one HTM abort per transaction, so the trace shows the Figure 7 sequence:
# UNPUSH of the HTM batch (boosted effects stay), UNAPP past the
# conflicting access, a march forward down the other branch, republish,
# commit.
spec set name=skiplist keys=4
spec map name=hashT keys=4 vals=4
spec counter name=size counters=1 mod=16
spec counter name=x counters=1 mod=16
spec counter name=y counters=1 mod=16
engine hybrid htm=size,x,y conflictpct=100 seed=1
schedule roundrobin seed=1 maxsteps=100000
thread tx { s := skiplist.add(1); size.inc(0); h := hashT.put(1, 2); (x.inc(0) + y.inc(0)) }
thread tx { s := skiplist.add(2); size.inc(0); h := hashT.put(2, 3); (x.inc(0) + y.inc(0)) }
check serializability
check invariants
