//===- tests/spec_bank_test.cpp - BankSpec -----------------------------------===//

#include "spec/BankSpec.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pushpull;
using testutil::hintDisagreements;
using testutil::mkOp;

namespace {

BankSpec spec() { return BankSpec("bank", 2, 4, 2); }

Operation dep(Value A, Value K, OpId Id = 1) {
  return mkOp(Id, "bank", "deposit", {A, K});
}
Operation wd(Value A, Value K, Value R, OpId Id = 1) {
  return mkOp(Id, "bank", "withdraw", {A, K}, R);
}
Operation bal(Value A, Value R, OpId Id = 1) {
  return mkOp(Id, "bank", "balance", {A}, R);
}
Operation xfer(Value From, Value To, Value K, Value R, OpId Id = 1) {
  return mkOp(Id, "bank", "transfer", {From, To, K}, R);
}

} // namespace

TEST(BankSpec, InitialBalances) {
  BankSpec S = spec();
  EXPECT_TRUE(S.allowed({bal(0, 2), bal(1, 2)}));
  EXPECT_FALSE(S.allowed({bal(0, 0)}));
}

TEST(BankSpec, DepositAndWithdraw) {
  BankSpec S = spec();
  EXPECT_TRUE(S.allowed({dep(0, 1, 1), bal(0, 3, 2)}));
  EXPECT_TRUE(S.allowed({wd(0, 2, 1, 1), bal(0, 0, 2)}));
  EXPECT_TRUE(S.allowed({wd(0, 3, 0, 1), bal(0, 2, 2)}))
      << "failed withdraw leaves the balance alone";
  EXPECT_FALSE(S.allowed({wd(0, 3, 1, 1)})) << "insufficient funds";
}

TEST(BankSpec, DepositClampsAtCap) {
  BankSpec S = spec();
  EXPECT_TRUE(S.allowed({dep(0, 4, 1), bal(0, 4, 2)}));
  EXPECT_TRUE(S.allowed({dep(0, 4, 1), dep(0, 4, 2), bal(0, 4, 3)}));
}

TEST(BankSpec, TransferMovesFunds) {
  BankSpec S = spec();
  EXPECT_TRUE(S.allowed({xfer(0, 1, 2, 1, 1), bal(0, 0, 2), bal(1, 4, 3)}));
  EXPECT_TRUE(S.allowed({xfer(0, 1, 3, 0, 1), bal(0, 2, 2)}))
      << "failed transfer is a no-op";
  EXPECT_FALSE(S.allowed({xfer(0, 1, 3, 1, 1)}));
}

TEST(BankSpec, SelfTransferIsNoOp) {
  BankSpec S = spec();
  EXPECT_TRUE(S.allowed({xfer(0, 0, 1, 1, 1), bal(0, 2, 2)}));
}

TEST(BankSpec, PrefixClosed) {
  BankSpec S = spec();
  std::vector<Operation> Log = {dep(0, 1, 1), wd(1, 2, 1, 2),
                                xfer(0, 1, 2, 1, 3), bal(0, 1, 4),
                                bal(1, 2, 5)};
  ASSERT_TRUE(S.allowed(Log));
  for (size_t N = 0; N <= Log.size(); ++N)
    EXPECT_TRUE(S.allowed({Log.begin(), Log.begin() + N}));
}

TEST(BankSpec, Completions) {
  BankSpec S = spec();
  auto W = S.completionsFrom(S.initial(), {"bank", "withdraw", {0, 2}});
  ASSERT_EQ(W.size(), 1u);
  EXPECT_EQ(W[0].Result, Value(1));
  auto W2 = S.completionsFrom(S.initial(), {"bank", "withdraw", {0, 3}});
  ASSERT_EQ(W2.size(), 1u);
  EXPECT_EQ(W2[0].Result, Value(0));
  auto D = S.completionsFrom(S.initial(), {"bank", "deposit", {0, 1}});
  ASSERT_EQ(D.size(), 1u);
  EXPECT_FALSE(D[0].Result.has_value());
}

TEST(BankSpec, DifferentAccountsCommute) {
  BankSpec S = spec();
  EXPECT_EQ(S.leftMoverHint(dep(0, 1), dep(1, 1)), Tri::Yes);
  EXPECT_EQ(S.leftMoverHint(wd(0, 1, 1), bal(1, 2)), Tri::Yes);
}

TEST(BankSpec, SameAccountConditionalCommutativity) {
  BankSpec S = spec();
  // Two successful withdrawals of 1 from the same account commute: in any
  // state where both succeed in one order they succeed in the other.
  EXPECT_EQ(S.leftMoverHint(wd(0, 1, 1, 1), wd(0, 1, 1, 2)), Tri::Yes);
  // Deposit then balance observation does not commute.
  EXPECT_EQ(S.leftMoverHint(dep(0, 1), bal(0, 3)), Tri::No);
  // Deposit at the cap boundary does not commute with a withdraw: the
  // clamp makes the final balances order-dependent.
  EXPECT_EQ(S.leftMoverHint(dep(0, 4), wd(0, 1, 1)), Tri::No);
}

TEST(BankSpec, TransfersLeftToSemanticEngine) {
  BankSpec S = spec();
  EXPECT_EQ(S.leftMoverHint(xfer(0, 1, 1, 1), dep(0, 1)), Tri::Unknown);
  // ...and the semantic engine decides them.
  MoverChecker Movers(S);
  // Transfer then deposit to the source: swapping can change whether the
  // transfer succeeds?  Both succeed from every reachable state where the
  // first order is allowed iff... decided exactly by the engine:
  Tri V = Movers.leftMover(xfer(0, 1, 4, 1, 1), dep(0, 2, 2));
  EXPECT_NE(V, Tri::Unknown) << "small bank: the semantic check is exact";
}

TEST(BankSpec, HintAgreesWithSemantics) {
  // Smaller bank so the semantic cross-validation stays fast.
  BankSpec S("bank", 2, 3, 1);
  EXPECT_EQ(hintDisagreements(S), std::vector<std::string>{});
}

TEST(BankSpec, DomainChecks) {
  BankSpec S = spec();
  EXPECT_TRUE(S.completionsFrom(S.initial(), {"bank", "deposit", {9, 1}})
                  .empty());
  EXPECT_TRUE(
      S.completionsFrom(S.initial(), {"bank", "transfer", {0, 9, 1}})
          .empty());
  EXPECT_TRUE(S.completionsFrom(S.initial(), {"bank", "audit", {0}}).empty());
}

TEST(BankSpec, Name) { EXPECT_EQ(spec().name(), "bank(bank,n=2,cap=4)"); }
