//===- tests/opacity_test.cpp - Section 6.1 opacity fragments ---------------===//

#include "check/Opacity.h"

#include "TestUtil.h"
#include "lang/Parser.h"
#include "sim/Scheduler.h"
#include "sim/Workload.h"
#include "spec/CounterSpec.h"
#include "spec/RegisterSpec.h"
#include "sim/Scheduler.h"
#include "check/Serializability.h"
#include "tm/DependentTM.h"
#include "tm/OptimisticTM.h"

#include <gtest/gtest.h>

using namespace pushpull;

TEST(Opacity, EmptyTraceIsOpaque) {
  RuleTrace T;
  OpacityReport R = classifyTrace(T);
  EXPECT_TRUE(R.InOpaqueFragment);
  EXPECT_EQ(R.TotalPulls, 0u);
}

TEST(Opacity, CommittedPullsStayOpaque) {
  RuleTrace T;
  TraceEvent E;
  E.Rule = RuleKind::Pull;
  E.PulledUncommitted = false;
  T.record(E);
  OpacityReport R = classifyTrace(T);
  EXPECT_TRUE(R.InOpaqueFragment);
  EXPECT_EQ(R.TotalPulls, 1u);
  EXPECT_EQ(R.UncommittedPulls, 0u);
}

TEST(Opacity, UncommittedPullLeavesFragment) {
  RuleTrace T;
  TraceEvent E;
  E.Rule = RuleKind::Pull;
  E.PulledUncommitted = true;
  T.record(E);
  OpacityReport R = classifyTrace(T);
  EXPECT_FALSE(R.InOpaqueFragment);
  EXPECT_EQ(R.UncommittedPulls, 1u);
}

TEST(Opacity, OptimisticRunsAreOpaqueByConstruction) {
  RegisterSpec Spec("mem", 3, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  WorkloadConfig WC;
  WC.Threads = 3;
  WC.TxPerThread = 3;
  WC.OpsPerTx = 2;
  WC.KeyRange = 3;
  WC.Seed = 21;
  for (auto &P : genRegisterWorkload(Spec, WC))
    M.addThread(P);
  OptimisticTM E(M);
  Scheduler Sched({SchedulePolicy::RandomUniform, 21, 50000});
  RunStats St = Sched.run(E);
  ASSERT_TRUE(St.Quiescent);
  EXPECT_TRUE(classifyTrace(M.trace()).InOpaqueFragment);
}

TEST(Opacity, DependentRunsLeaveTheFragment) {
  RegisterSpec Spec("mem", 2, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  // A writer and a reader with overlapping lifetimes: the reader pulls
  // the writer's uncommitted write.
  M.addThread({parseOrDie("tx { mem.write(0, 1); mem.write(1, 1) }")});
  M.addThread({parseOrDie("tx { v := mem.read(0); w := mem.read(1) }")});
  DependentConfig DC;
  DC.PullUncommitted = true;
  DependentTM E(M, DC);
  // Round-robin interleaves the two transactions deterministically.
  Scheduler Sched({SchedulePolicy::RoundRobin, 1, 50000});
  RunStats St = Sched.run(E);
  ASSERT_TRUE(St.Quiescent);
  OpacityReport R = classifyTrace(M.trace());
  EXPECT_FALSE(R.InOpaqueFragment);
  EXPECT_GT(R.UncommittedPulls, 0u);
  EXPECT_GT(E.dependenciesFormed(), 0u);
}

TEST(Opacity, CommutationRelaxationAcceptsCommutingFuture) {
  // Thread still has to run only blind increments; pulling an uncommitted
  // increment is safe by commutation (Section 6.1's relaxation).
  CounterSpec Spec("c", 1, 4);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  TxId T0 = M.addThread({parseOrDie("tx { c.inc(0) }")});
  TxId T1 = M.addThread({parseOrDie("tx { c.inc(0); c.dec(0) }")});
  ASSERT_TRUE(M.beginTx(T0));
  ASSERT_TRUE(M.beginTx(T1));
  ASSERT_TRUE(M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(M.push(T0, 0).Applied);
  const Operation &Pushed = M.global()[0].Op;
  EXPECT_EQ(pullCommutationSafe(M, T1, Pushed), Tri::Yes);
}

TEST(Opacity, CommutationRelaxationRejectsObservingFuture) {
  CounterSpec Spec("c", 1, 4);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  TxId T0 = M.addThread({parseOrDie("tx { c.inc(0) }")});
  TxId T1 = M.addThread({parseOrDie("tx { v := c.read(0) }")});
  ASSERT_TRUE(M.beginTx(T0));
  ASSERT_TRUE(M.beginTx(T1));
  ASSERT_TRUE(M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(M.push(T0, 0).Applied);
  const Operation &Pushed = M.global()[0].Op;
  // T1 will read the counter: reads do not commute with the increment.
  EXPECT_EQ(pullCommutationSafe(M, T1, Pushed), Tri::No);
}

TEST(Opacity, CommutationRelaxationConservativeOnUnresolvable) {
  RegisterSpec Spec("mem", 2, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  TxId T0 = M.addThread({parseOrDie("tx { mem.write(1, 1) }")});
  // T1's second op's argument depends on the first op's result: the
  // reachable-operation set cannot be enumerated yet.
  TxId T1 =
      M.addThread({parseOrDie("tx { v := mem.read(0); mem.write(1, v) }")});
  ASSERT_TRUE(M.beginTx(T0));
  ASSERT_TRUE(M.beginTx(T1));
  ASSERT_TRUE(M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(M.push(T0, 0).Applied);
  const Operation &Pushed = M.global()[0].Op;
  EXPECT_EQ(pullCommutationSafe(M, T1, Pushed), Tri::Unknown);
}

TEST(Opacity, IdleThreadIsVacuouslySafe) {
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  TxId T = M.addThread({parseOrDie("tx { mem.write(0, 1) }")});
  Operation Op;
  Op.Call = {"mem", "write", {0, 1}};
  Op.Result = 1;
  EXPECT_EQ(pullCommutationSafe(M, T, Op), Tri::Yes) << "not in tx yet";
}

TEST(Opacity, CommutationGuardedEngineStaysObservationallyOpaque) {
  // Section 6.1's refinement as an engine mode: with
  // OnlyCommutationSafePulls the dependent engine pulls an uncommitted
  // blind increment (all its remaining methods commute with it) but
  // refuses uncommitted effects its future observes.
  CounterSpec Spec("c", 1, 8);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  M.addThread({parseOrDie("tx { c.inc(0); c.inc(0) }")});
  M.addThread({parseOrDie("tx { c.inc(0); c.dec(0) }")});
  DependentConfig DC;
  DC.PullUncommitted = true;
  DC.OnlyCommutationSafePulls = true;
  DependentTM E(M, DC);
  Scheduler Sched({SchedulePolicy::RoundRobin, 1, 100000});
  RunStats St = Sched.run(E);
  ASSERT_TRUE(St.Quiescent);
  // Uncommitted pulls happened (we left the syntactic fragment)...
  OpacityReport R = classifyTrace(M.trace());
  EXPECT_GT(R.UncommittedPulls, 0u);
  EXPECT_FALSE(R.InOpaqueFragment);
  // ...but every one of them was commutation-safe at pull time, so the
  // run is observationally opaque; and it is serializable.
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkAnyOrder(M).Serializable, Tri::Yes);
}

TEST(Opacity, CommutationGuardRefusesObservingFutures) {
  // A reader thread (its future observes the counter) never pulls the
  // writer's uncommitted increment under the guard.
  CounterSpec Spec("c", 1, 8);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  M.addThread({parseOrDie("tx { c.inc(0); c.inc(0) }")});
  M.addThread({parseOrDie("tx { v := c.read(0) }")});
  DependentConfig DC;
  DC.PullUncommitted = true;
  DC.OnlyCommutationSafePulls = true;
  DependentTM E(M, DC);
  Scheduler Sched({SchedulePolicy::RoundRobin, 1, 100000});
  RunStats St = Sched.run(E);
  ASSERT_TRUE(St.Quiescent);
  // Thread 1 (the reader) performed no uncommitted pull.
  for (const TraceEvent &Ev : M.trace().events())
    if (Ev.Tid == 1 && Ev.Rule == RuleKind::Pull)
      EXPECT_FALSE(Ev.PulledUncommitted);
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkAnyOrder(M).Serializable, Tri::Yes);
}
