//===- tests/stress_test.cpp - The ppstress runtime, checked ------------------===//
//
// The stress subsystem's own battery: the SPSC rings and the sharded
// arbiter as units (including under real concurrency), the shadow
// window checker against faithful and tampered recordings, and the
// end-to-end contract of the whole runtime — a planted Figure 5
// criterion bug must be caught by the window oracle, dumped as a
// `.ppsched` reproducer, and that reproducer must replay to the
// identical failure, twice.
//
//===----------------------------------------------------------------------===//

#include "stress/StressRunner.h"

#include "fuzz/DiffRunner.h"
#include "lang/Printer.h"
#include "sim/Scenario.h"
#include "stress/Arbiter.h"
#include "stress/RingTrace.h"
#include "tm/Engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <thread>

using namespace pushpull;

namespace {

constexpr const char *InjectedBug = "PUSH criterion (ii)";

// -- RingTrace ---------------------------------------------------------------

TEST(RingTrace, FifoOrderAndFullRejection) {
  RingTrace Ring(4);
  StressRecord R;
  EXPECT_FALSE(Ring.tryPop(R));
  for (uint64_t I = 0; I < 4; ++I) {
    R.Order = I;
    EXPECT_TRUE(Ring.tryPush(R));
  }
  R.Order = 99;
  EXPECT_FALSE(Ring.tryPush(R)) << "full ring must reject, not overwrite";
  for (uint64_t I = 0; I < 4; ++I) {
    ASSERT_TRUE(Ring.tryPop(R));
    EXPECT_EQ(R.Order, I);
  }
  EXPECT_FALSE(Ring.tryPop(R));

  // Wraparound: interleaved push/pop far past the capacity.
  for (uint64_t I = 0; I < 100; ++I) {
    R.Order = I;
    ASSERT_TRUE(Ring.tryPush(R));
    ASSERT_TRUE(Ring.tryPop(R));
    EXPECT_EQ(R.Order, I);
  }
}

TEST(RingTrace, SpscAcrossRealThreads) {
  RingTrace Ring(64);
  constexpr uint64_t N = 20000;
  std::thread Producer([&Ring] {
    StressRecord R;
    for (uint64_t I = 0; I < N; ++I) {
      R.Order = I;
      R.GSize = static_cast<uint32_t>(I * 2654435761u);
      while (!Ring.tryPush(R))
        std::this_thread::yield();
    }
  });
  uint64_t Seen = 0;
  bool Intact = true;
  while (Seen < N) {
    StressRecord R;
    if (!Ring.tryPop(R)) {
      std::this_thread::yield();
      continue;
    }
    Intact = Intact && R.Order == Seen &&
             R.GSize == static_cast<uint32_t>(Seen * 2654435761u);
    ++Seen;
  }
  Producer.join();
  EXPECT_TRUE(Intact) << "records crossed the ring reordered or torn";
  EXPECT_EQ(Ring.size(), 0u);
}

// -- CommitArbiter -----------------------------------------------------------

TEST(CommitArbiter, ConcurrentSequencesAreUniqueAndTotal) {
  constexpr unsigned Threads = 4;
  constexpr uint64_t PerThread = 2000;
  CommitArbiter Arbiter(3, 16);
  std::vector<std::vector<uint64_t>> Seqs(Threads);
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&Arbiter, &Seqs, T] {
      for (uint64_t I = 0; I < PerThread; ++I)
        Seqs[T].push_back(Arbiter.admitCommit(T * 7919 + I));
    });
  for (auto &T : Ts)
    T.join();

  std::set<uint64_t> All;
  for (const auto &S : Seqs) {
    // Per admitter, sequence numbers arrive strictly increasing.
    EXPECT_TRUE(std::is_sorted(S.begin(), S.end()));
    All.insert(S.begin(), S.end());
  }
  EXPECT_EQ(All.size(), Threads * PerThread) << "duplicate sequence issued";
  EXPECT_EQ(*All.rbegin(), Threads * PerThread) << "sequence has gaps";
  EXPECT_EQ(Arbiter.commits(), Threads * PerThread);
  EXPECT_EQ(Arbiter.epoch(), Threads * PerThread / 16);
  EXPECT_TRUE(Arbiter.monotonic());
}

// -- Round configuration determinism -----------------------------------------

StressConfig smallConfig(const std::string &Engine, const std::string &Spec) {
  StressConfig C;
  C.Engine = Engine;
  C.SpecKind = Spec;
  C.SpecOpts["name"] = Spec;
  C.Workers = 2;
  C.ThreadsPerWorker = 2;
  C.TxPerThread = 3;
  C.OpsPerTx = 3;
  C.Rounds = 2;
  C.WindowCommits = 4;
  C.Seed = 1;
  return C;
}

std::string renderPrograms(const WindowCheckConfig &RC) {
  std::string Out;
  for (const auto &Txs : RC.Threads)
    for (const CodePtr &Tx : Txs)
      Out += printCode(Tx) + "\n";
  return Out;
}

TEST(StressRunner, RoundConfigIsAPureFunctionOfSeedWorkerRound) {
  StressConfig C = smallConfig("boosting", "counter");
  std::string Error, Name;
  auto Spec = makeSpecPart("counter", C.SpecOpts, Name, Error);
  ASSERT_TRUE(Spec) << Error;

  WindowCheckConfig A = buildRoundConfig(C, Spec, 1, 3, Error);
  ASSERT_TRUE(Error.empty()) << Error;
  WindowCheckConfig B = buildRoundConfig(C, Spec, 1, 3, Error);
  ASSERT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(A.EngineOpts.at("seed"), B.EngineOpts.at("seed"));
  EXPECT_EQ(renderPrograms(A), renderPrograms(B));

  // Different (worker, round) means a different workload stream.
  WindowCheckConfig Other = buildRoundConfig(C, Spec, 0, 0, Error);
  ASSERT_TRUE(Error.empty()) << Error;
  EXPECT_NE(renderPrograms(A), renderPrograms(Other));
}

// -- WindowChecker -----------------------------------------------------------

/// Drive one round inline, exactly as a worker does, feeding the checker
/// \p Tamper-ed records.  Returns the checker's failure ("" = clean).
std::string shadowOneRound(
    const std::function<void(StressRecord &, uint64_t)> &Tamper) {
  StressConfig C = smallConfig("optimistic", "counter");
  std::string Error, Name;
  auto Spec = makeSpecPart("counter", C.SpecOpts, Name, Error);
  EXPECT_TRUE(Spec) << Error;
  WindowCheckConfig RC = buildRoundConfig(C, Spec, 0, 0, Error);
  EXPECT_TRUE(Error.empty()) << Error;

  WindowChecker Checker(RC, Error);
  EXPECT_TRUE(Checker.ok()) << Error;

  // The live side, inline: same spec, same programs, same engine seed.
  MoverChecker Movers(*Spec, RC.Movers, RC.Pre);
  MachineConfig MC;
  MC.RecordTrace = false;
  PushPullMachine M(*Spec, Movers, MC);
  for (const auto &P : RC.Threads)
    M.addThread(P);
  std::unique_ptr<TMEngine> E = makeEngine(RC.Engine, RC.EngineOpts, M, Error);
  EXPECT_TRUE(E) << Error;

  Rng PickRng(7);
  uint64_t Order = 0;
  while (Order < 10000) {
    std::vector<TxId> Runnable;
    for (const ThreadState &Th : M.threads())
      if (!Th.done())
        Runnable.push_back(Th.Tid);
    if (Runnable.empty())
      break;
    TxId Pick = Runnable[PickRng.below(Runnable.size())];
    StepStatus St = E->step(Pick);
    StressRecord R;
    R.Order = Order;
    stampFingerprint(R, M, static_cast<uint32_t>(Pick), St);
    Tamper(R, Order);
    ++Order;
    if (!Checker.feed(R))
      break;
  }
  Checker.closeWindow();
  return Checker.failure();
}

TEST(WindowChecker, AcceptsAFaithfulRecording) {
  EXPECT_EQ(shadowOneRound([](StressRecord &, uint64_t) {}), "");
}

TEST(WindowChecker, FlagsATamperedFingerprint) {
  // Corrupt one record's shared-log size mid-stream: the shadow replay
  // must notice at exactly that step.
  std::string Failure = shadowOneRound([](StressRecord &R, uint64_t Order) {
    if (Order == 5)
      R.GSize += 1;
  });
  EXPECT_NE(Failure.find("diverged at step 5"), std::string::npos) << Failure;
}

// -- End to end: fault injection, dump, deterministic replay -----------------

StressOutcome runInjected(uint64_t Seed) {
  StressConfig C = smallConfig("pessimistic", "register");
  C.Rounds = 4;
  C.Seed = Seed;
  C.DisabledCriterion = InjectedBug;
  return StressRunner(C).run();
}

TEST(StressRunner, InjectedCriterionBugIsCaughtByTheWindowOracle) {
  StressOutcome O;
  // The pick streams are seed-deterministic, so some seed in this small
  // range reliably drives the two logical threads into the bad
  // interleaving; iterating keeps the test about detection, not about
  // one schedule.
  for (uint64_t Seed = 1; Seed <= 4 && O.Failures.empty(); ++Seed)
    O = runInjected(Seed);
  ASSERT_FALSE(O.Failures.empty())
      << "planted " << InjectedBug << " was never detected";
  EXPECT_FALSE(O.ok());
  EXPECT_GE(O.Stats.WindowFailures, 1u);
  bool OracleConvicted = false;
  for (const std::string &F : O.Failures)
    OracleConvicted =
        OracleConvicted || F.find("atomic oracle") != std::string::npos;
  EXPECT_TRUE(OracleConvicted) << O.Failures.front();
  ASSERT_FALSE(O.Dumps.empty()) << "failing window produced no reproducer";
  EXPECT_NE(O.Dumps.front().find("schedule replay picks="),
            std::string::npos);
  EXPECT_NE(O.Dumps.front().find(std::string("inject ") + InjectedBug),
            std::string::npos);
}

TEST(StressRunner, DumpedScheduleReplaysToTheIdenticalFailureTwice) {
  StressOutcome O;
  for (uint64_t Seed = 1; Seed <= 4 && O.Dumps.empty(); ++Seed)
    O = runInjected(Seed);
  ASSERT_FALSE(O.Dumps.empty());

  ScenarioParseResult PR = parseScenario(O.Dumps.front());
  ASSERT_TRUE(PR.ok()) << PR.Error;
  EXPECT_EQ(PR.Parsed->Policy, SchedulePolicy::Replay);
  EXPECT_FALSE(PR.Parsed->ReplayPicks.empty());
  EXPECT_EQ(PR.Parsed->DisabledCriterion, InjectedBug);

  BuiltCase Case = fromScenario(*PR.Parsed);
  DiffReport First = DiffRunner().run(Case);
  ASSERT_TRUE(First.Built) << First.BuildError;
  EXPECT_TRUE(First.discrepancy())
      << "reproducer did not reproduce:\n" << First.toString();

  // Byte-identical adjudication on a second replay: the `.ppsched` pins
  // the run completely (engine seed + pick sequence).  Only the semantic
  // part is compared — the trailing cache counters report the process-
  // global interning tables, which the first replay warms.
  DiffReport Second = DiffRunner().run(Case);
  auto Semantic = [](const std::string &S) {
    return S.substr(0, S.find("  states interned:"));
  };
  EXPECT_EQ(Semantic(First.toString()), Semantic(Second.toString()));
  EXPECT_EQ(First.Stats.SchedulerSteps, Second.Stats.SchedulerSteps);
  EXPECT_TRUE(Second.discrepancy());
}

TEST(StressRunner, CleanRunStaysCleanWithoutInjection) {
  StressConfig C = smallConfig("pessimistic", "register");
  C.Rounds = 3;
  StressOutcome O = StressRunner(C).run();
  EXPECT_TRUE(O.ok()) << O.Failures.front();
  EXPECT_GT(O.Stats.Commits, 0u);
  EXPECT_GE(O.Stats.Windows, 1u);
  EXPECT_EQ(O.Stats.WindowFailures, 0u);
}

TEST(StressRunner, AllTenEnginesSurviveAWindowCheckedRun) {
  for (const std::string &Engine : allEngineNames()) {
    StressConfig C = smallConfig(Engine, "counter");
    C.Rounds = 1;
    StressOutcome O = StressRunner(C).run();
    EXPECT_TRUE(O.ok()) << Engine << ": " << O.Failures.front();
    EXPECT_GT(O.Stats.Commits, 0u) << Engine;
  }
}

} // namespace
