//===- tests/sim_test.cpp - Scheduler / Workload / Stats ----------------------===//

#include "sim/Scheduler.h"
#include "sim/Stats.h"
#include "sim/Workload.h"

#include "check/Serializability.h"
#include "lang/Parser.h"
#include "lang/StepFin.h"
#include "spec/MapSpec.h"
#include "spec/RegisterSpec.h"
#include "tm/OptimisticTM.h"

#include <gtest/gtest.h>

#include <set>

using namespace pushpull;

TEST(Stats, Derived) {
  RunStats St;
  EXPECT_EQ(St.committedOpsPerStep(), 0.0);
  EXPECT_EQ(St.abortRatio(), 0.0);
  St.SchedulerSteps = 10;
  St.CommittedOps = 5;
  St.Commits = 3;
  St.Aborts = 1;
  EXPECT_DOUBLE_EQ(St.committedOpsPerStep(), 0.5);
  EXPECT_DOUBLE_EQ(St.abortRatio(), 0.25);
}

TEST(Stats, AbsorbTraceFillsHistogram) {
  RuleTrace T;
  for (RuleKind K : {RuleKind::App, RuleKind::App, RuleKind::Push,
                     RuleKind::Commit}) {
    TraceEvent E;
    E.Rule = K;
    T.record(E);
  }
  RunStats St;
  St.absorbTrace(T);
  EXPECT_EQ(St.ruleCount(RuleKind::App), 2u);
  EXPECT_EQ(St.ruleCount(RuleKind::Push), 1u);
  EXPECT_EQ(St.ruleCount(RuleKind::Commit), 1u);
  EXPECT_EQ(St.ruleCount(RuleKind::UnPull), 0u);
  std::string S = St.toString();
  EXPECT_NE(S.find("APP=2"), std::string::npos);
}

TEST(Scheduler, StepBudgetBoundsRun) {
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  M.addThread({parseOrDie("tx { mem.write(0, 1) }")});
  OptimisticTM E(M);
  Scheduler Sched({SchedulePolicy::RandomUniform, 1, /*MaxSteps=*/2});
  RunStats St = Sched.run(E);
  EXPECT_FALSE(St.Quiescent) << "2 steps cannot finish begin+run+commit";
  EXPECT_EQ(St.SchedulerSteps, 2u);
}

TEST(Scheduler, RoundRobinIsDeterministic) {
  auto Run = [] {
    RegisterSpec Spec("mem", 2, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    M.addThread({parseOrDie("tx { mem.write(0, 1) }")});
    M.addThread({parseOrDie("tx { v := mem.read(1) }")});
    OptimisticTM E(M);
    Scheduler Sched({SchedulePolicy::RoundRobin, 9, 10000});
    Sched.run(E);
    return E.machine().trace().toString();
  };
  EXPECT_EQ(Run(), Run());
}

TEST(Scheduler, RandomSeedReproducible) {
  auto Run = [](uint64_t Seed) {
    RegisterSpec Spec("mem", 2, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 3;
    WC.TxPerThread = 2;
    WC.Seed = 4;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    OptimisticTM E(M);
    Scheduler Sched({SchedulePolicy::RandomUniform, Seed, 100000});
    Sched.run(E);
    return E.machine().trace().toString();
  };
  EXPECT_EQ(Run(5), Run(5));
  EXPECT_NE(Run(5), Run(6)) << "different schedules should differ";
}

TEST(Workload, ShapesMatchConfig) {
  MapSpec Spec("map", 8, 4);
  WorkloadConfig WC;
  WC.Threads = 3;
  WC.TxPerThread = 4;
  WC.OpsPerTx = 5;
  WC.Seed = 10;
  ThreadPrograms P = genMapWorkload(Spec, WC);
  ASSERT_EQ(P.size(), 3u);
  for (const auto &Thread : P) {
    ASSERT_EQ(Thread.size(), 4u);
    for (const CodePtr &Tx : Thread) {
      EXPECT_EQ(Tx->kind(), CodeKind::Tx);
      EXPECT_EQ(reachableMethods(Tx).size(), 5u);
    }
  }
}

TEST(Workload, DeterministicPerSeed) {
  RegisterSpec Spec("mem", 4, 4);
  WorkloadConfig WC;
  WC.Seed = 123;
  auto A = genRegisterWorkload(Spec, WC);
  auto B = genRegisterWorkload(Spec, WC);
  ASSERT_EQ(A.size(), B.size());
  for (size_t T = 0; T < A.size(); ++T)
    for (size_t X = 0; X < A[T].size(); ++X)
      EXPECT_TRUE(codeEquals(A[T][X], B[T][X]));
}

TEST(Workload, KeysStayInDomain) {
  MapSpec Spec("map", 4, 4);
  WorkloadConfig WC;
  WC.KeyRange = 100; // Deliberately larger than the spec's domain.
  WC.Threads = 2;
  WC.TxPerThread = 3;
  WC.OpsPerTx = 4;
  WC.Seed = 5;
  for (const auto &Thread : genMapWorkload(Spec, WC))
    for (const CodePtr &Tx : Thread)
      for (const MethodExpr &ME : reachableMethods(Tx)) {
        ASSERT_FALSE(ME.Args.empty());
        Value K = std::get<Value>(ME.Args[0]);
        EXPECT_GE(K, 0);
        EXPECT_LT(K, 4);
      }
}

TEST(Workload, ZipfSkewConcentratesKeys) {
  MapSpec Spec("map", 8, 4);
  WorkloadConfig Uniform, Skewed;
  Uniform.Threads = Skewed.Threads = 4;
  Uniform.TxPerThread = Skewed.TxPerThread = 8;
  Uniform.OpsPerTx = Skewed.OpsPerTx = 4;
  Uniform.Seed = Skewed.Seed = 6;
  Skewed.ZipfTheta = 250;
  auto CountKeyZero = [&](const ThreadPrograms &P) {
    int N = 0;
    for (const auto &Thread : P)
      for (const CodePtr &Tx : Thread)
        for (const MethodExpr &ME : reachableMethods(Tx))
          if (std::get<Value>(ME.Args[0]) == 0)
            ++N;
    return N;
  };
  EXPECT_GT(CountKeyZero(genMapWorkload(Spec, Skewed)),
            CountKeyZero(genMapWorkload(Spec, Uniform)) * 2);
}

TEST(Workload, RegisterWorkloadsRunEndToEnd) {
  RegisterSpec Spec("mem", 3, 3);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  WorkloadConfig WC;
  WC.Threads = 3;
  WC.TxPerThread = 2;
  WC.OpsPerTx = 3;
  WC.KeyRange = 3;
  WC.Seed = 8;
  for (auto &P : genRegisterWorkload(Spec, WC))
    M.addThread(P);
  OptimisticTM E(M);
  Scheduler Sched({SchedulePolicy::RandomUniform, 8, 100000});
  RunStats St = Sched.run(E);
  ASSERT_TRUE(St.Quiescent);
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);
}

TEST(Scheduler, PriorityChangePointsSerializable) {
  for (uint64_t Seed : {1u, 2u, 3u, 4u}) {
    RegisterSpec Spec("mem", 2, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 3;
    WC.TxPerThread = 2;
    WC.OpsPerTx = 2;
    WC.KeyRange = 2;
    WC.Seed = Seed;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    OptimisticTM E(M);
    SchedulerConfig SC;
    SC.Policy = SchedulePolicy::PriorityChangePoints;
    SC.Seed = Seed;
    SC.MaxSteps = 200000;
    SC.ChangePoints = 3;
    RunStats St = Scheduler(SC).run(E);
    ASSERT_TRUE(St.Quiescent) << "seed " << Seed;
    SerializabilityChecker Oracle(Spec);
    EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);
  }
}

TEST(Scheduler, PriorityScheduleDiffersFromUniform) {
  auto TraceOf = [](SchedulePolicy P) {
    RegisterSpec Spec("mem", 2, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 3;
    WC.TxPerThread = 2;
    WC.Seed = 4;
    for (auto &Prog : genRegisterWorkload(Spec, WC))
      M.addThread(Prog);
    OptimisticTM E(M);
    SchedulerConfig SC;
    SC.Policy = P;
    SC.Seed = 5;
    SC.MaxSteps = 100000;
    Scheduler(SC).run(E);
    return E.machine().trace().toString();
  };
  EXPECT_NE(TraceOf(SchedulePolicy::PriorityChangePoints),
            TraceOf(SchedulePolicy::RandomUniform));
}
