//===- tests/support_test.cpp - Tri / Rng / Str unit tests ------------------===//

#include "support/Rng.h"
#include "support/Str.h"
#include "support/Tri.h"

#include <gtest/gtest.h>

#include <map>

using namespace pushpull;

TEST(Tri, AndTruthTable) {
  EXPECT_EQ(triAnd(Tri::Yes, Tri::Yes), Tri::Yes);
  EXPECT_EQ(triAnd(Tri::Yes, Tri::No), Tri::No);
  EXPECT_EQ(triAnd(Tri::No, Tri::Yes), Tri::No);
  EXPECT_EQ(triAnd(Tri::No, Tri::No), Tri::No);
  EXPECT_EQ(triAnd(Tri::Yes, Tri::Unknown), Tri::Unknown);
  EXPECT_EQ(triAnd(Tri::Unknown, Tri::Yes), Tri::Unknown);
  EXPECT_EQ(triAnd(Tri::No, Tri::Unknown), Tri::No);
  EXPECT_EQ(triAnd(Tri::Unknown, Tri::No), Tri::No);
  EXPECT_EQ(triAnd(Tri::Unknown, Tri::Unknown), Tri::Unknown);
}

TEST(Tri, OrTruthTable) {
  EXPECT_EQ(triOr(Tri::No, Tri::No), Tri::No);
  EXPECT_EQ(triOr(Tri::No, Tri::Yes), Tri::Yes);
  EXPECT_EQ(triOr(Tri::Unknown, Tri::Yes), Tri::Yes);
  EXPECT_EQ(triOr(Tri::Unknown, Tri::No), Tri::Unknown);
  EXPECT_EQ(triOr(Tri::Unknown, Tri::Unknown), Tri::Unknown);
}

TEST(Tri, NotInvolutiveOnDefinite) {
  EXPECT_EQ(triNot(Tri::Yes), Tri::No);
  EXPECT_EQ(triNot(Tri::No), Tri::Yes);
  EXPECT_EQ(triNot(Tri::Unknown), Tri::Unknown);
}

TEST(Tri, Predicates) {
  EXPECT_TRUE(definitely(Tri::Yes));
  EXPECT_FALSE(definitely(Tri::Unknown));
  EXPECT_FALSE(definitely(Tri::No));
  EXPECT_TRUE(possibly(Tri::Yes));
  EXPECT_TRUE(possibly(Tri::Unknown));
  EXPECT_FALSE(possibly(Tri::No));
  EXPECT_EQ(triOf(true), Tri::Yes);
  EXPECT_EQ(triOf(false), Tri::No);
}

TEST(Tri, ToString) {
  EXPECT_EQ(toString(Tri::Yes), "yes");
  EXPECT_EQ(toString(Tri::No), "no");
  EXPECT_EQ(toString(Tri::Unknown), "unknown");
}

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDiff = false;
  for (int I = 0; I < 10; ++I)
    AnyDiff |= A.next() != B.next();
  EXPECT_TRUE(AnyDiff);
}

TEST(Rng, BelowInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(13), 13u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng R(7);
  std::map<uint64_t, int> Seen;
  for (int I = 0; I < 2000; ++I)
    ++Seen[R.below(5)];
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(Rng, RangeInclusive) {
  Rng R(3);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.range(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, ChanceExtremes) {
  Rng R(9);
  for (int I = 0; I < 100; ++I) {
    EXPECT_TRUE(R.chance(100, 100));
    EXPECT_FALSE(R.chance(0, 100));
  }
}

TEST(Rng, ZipfUniformWhenThetaZero) {
  Rng R(11);
  std::map<uint64_t, int> Seen;
  for (int I = 0; I < 3000; ++I)
    ++Seen[R.zipf(6, 0)];
  EXPECT_EQ(Seen.size(), 6u);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng R(13);
  int Low = 0, High = 0;
  for (int I = 0; I < 5000; ++I) {
    uint64_t V = R.zipf(16, 150);
    if (V < 2)
      ++Low;
    if (V >= 14)
      ++High;
  }
  EXPECT_GT(Low, High * 3);
}

TEST(Rng, ZipfStaysInDomain) {
  Rng R(17);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.zipf(7, 99), 7u);
}

TEST(Rng, ShufflePermutes) {
  Rng R(19);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::vector<int> Sorted = V;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(Sorted, Orig);
}

TEST(Rng, SplitIndependentStreams) {
  Rng A(23);
  Rng B = A.split();
  EXPECT_NE(A.next(), B.next());
}

TEST(Str, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_TRUE(startsWith("foo", ""));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_FALSE(startsWith("xfoo", "foo"));
}

TEST(Str, SplitOn) {
  EXPECT_EQ(splitOn("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(splitOn("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(splitOn("a,", ','), (std::vector<std::string>{"a", ""}));
  EXPECT_EQ(splitOn(",a", ','), (std::vector<std::string>{"", "a"}));
}
