//===- tests/support_test.cpp - Tri / Rng / Str unit tests ------------------===//

#include "support/Rng.h"
#include "support/Str.h"
#include "support/Tri.h"

#include <gtest/gtest.h>

#include <map>

using namespace pushpull;

TEST(Tri, AndTruthTable) {
  EXPECT_EQ(triAnd(Tri::Yes, Tri::Yes), Tri::Yes);
  EXPECT_EQ(triAnd(Tri::Yes, Tri::No), Tri::No);
  EXPECT_EQ(triAnd(Tri::No, Tri::Yes), Tri::No);
  EXPECT_EQ(triAnd(Tri::No, Tri::No), Tri::No);
  EXPECT_EQ(triAnd(Tri::Yes, Tri::Unknown), Tri::Unknown);
  EXPECT_EQ(triAnd(Tri::Unknown, Tri::Yes), Tri::Unknown);
  EXPECT_EQ(triAnd(Tri::No, Tri::Unknown), Tri::No);
  EXPECT_EQ(triAnd(Tri::Unknown, Tri::No), Tri::No);
  EXPECT_EQ(triAnd(Tri::Unknown, Tri::Unknown), Tri::Unknown);
}

TEST(Tri, OrTruthTable) {
  EXPECT_EQ(triOr(Tri::No, Tri::No), Tri::No);
  EXPECT_EQ(triOr(Tri::No, Tri::Yes), Tri::Yes);
  EXPECT_EQ(triOr(Tri::Unknown, Tri::Yes), Tri::Yes);
  EXPECT_EQ(triOr(Tri::Unknown, Tri::No), Tri::Unknown);
  EXPECT_EQ(triOr(Tri::Unknown, Tri::Unknown), Tri::Unknown);
}

TEST(Tri, NotInvolutiveOnDefinite) {
  EXPECT_EQ(triNot(Tri::Yes), Tri::No);
  EXPECT_EQ(triNot(Tri::No), Tri::Yes);
  EXPECT_EQ(triNot(Tri::Unknown), Tri::Unknown);
}

TEST(Tri, Predicates) {
  EXPECT_TRUE(definitely(Tri::Yes));
  EXPECT_FALSE(definitely(Tri::Unknown));
  EXPECT_FALSE(definitely(Tri::No));
  EXPECT_TRUE(possibly(Tri::Yes));
  EXPECT_TRUE(possibly(Tri::Unknown));
  EXPECT_FALSE(possibly(Tri::No));
  EXPECT_EQ(triOf(true), Tri::Yes);
  EXPECT_EQ(triOf(false), Tri::No);
}

TEST(Tri, ToString) {
  EXPECT_EQ(toString(Tri::Yes), "yes");
  EXPECT_EQ(toString(Tri::No), "no");
  EXPECT_EQ(toString(Tri::Unknown), "unknown");
}

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDiff = false;
  for (int I = 0; I < 10; ++I)
    AnyDiff |= A.next() != B.next();
  EXPECT_TRUE(AnyDiff);
}

TEST(Rng, BelowInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(13), 13u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng R(7);
  std::map<uint64_t, int> Seen;
  for (int I = 0; I < 2000; ++I)
    ++Seen[R.below(5)];
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(Rng, RangeInclusive) {
  Rng R(3);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.range(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, ChanceExtremes) {
  Rng R(9);
  for (int I = 0; I < 100; ++I) {
    EXPECT_TRUE(R.chance(100, 100));
    EXPECT_FALSE(R.chance(0, 100));
  }
}

TEST(Rng, ZipfUniformWhenThetaZero) {
  Rng R(11);
  std::map<uint64_t, int> Seen;
  for (int I = 0; I < 3000; ++I)
    ++Seen[R.zipf(6, 0)];
  EXPECT_EQ(Seen.size(), 6u);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng R(13);
  int Low = 0, High = 0;
  for (int I = 0; I < 5000; ++I) {
    uint64_t V = R.zipf(16, 150);
    if (V < 2)
      ++Low;
    if (V >= 14)
      ++High;
  }
  EXPECT_GT(Low, High * 3);
}

TEST(Rng, ZipfStaysInDomain) {
  Rng R(17);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.zipf(7, 99), 7u);
}

TEST(Rng, ShufflePermutes) {
  Rng R(19);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::vector<int> Sorted = V;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(Sorted, Orig);
}

TEST(Rng, SplitIndependentStreams) {
  Rng A(23);
  Rng B = A.split();
  EXPECT_NE(A.next(), B.next());
}

TEST(Str, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Str, StartsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_TRUE(startsWith("foo", ""));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_FALSE(startsWith("xfoo", "foo"));
}

TEST(Str, SplitOn) {
  EXPECT_EQ(splitOn("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(splitOn("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(splitOn("a,", ','), (std::vector<std::string>{"a", ""}));
  EXPECT_EQ(splitOn(",a", ','), (std::vector<std::string>{"", "a"}));
}

//===----------------------------------------------------------------------===//
// Arena / SmallVec / CowChain / CowVec — the snapshot layer's primitives.
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Cow.h"
#include "support/SmallVec.h"

#if defined(__SANITIZE_ADDRESS__)
#define PUSHPULL_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PUSHPULL_TEST_ASAN 1
#endif
#endif

#include <string>

TEST(Arena, AllocatesAlignedAndCounts) {
  Arena A;
  EXPECT_EQ(A.allocated(), 0u);
  auto *P = static_cast<char *>(A.allocate(13, 1));
  ASSERT_NE(P, nullptr);
  auto *Q = A.allocateArray<uint64_t>(4);
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Q) % alignof(uint64_t), 0u);
  Q[0] = 1;
  Q[3] = 4;
  EXPECT_GE(A.allocated(), 13u + 4 * sizeof(uint64_t));
}

TEST(Arena, ScopeRewindReusesMemory) {
  Arena A;
  void *First = nullptr;
  {
    Arena::Scope S(A);
    First = A.allocate(64, 8);
  }
  void *Second = nullptr;
  {
    Arena::Scope S(A);
    Second = A.allocate(64, 8);
  }
  // After a rewind the bump pointer is back where it was, so the same
  // block satisfies the same-size request at the same address.  Under
  // AddressSanitizer the arena intentionally degrades to one heap
  // object per allocation (so poisoning catches stale references) and
  // reuse is not guaranteed — only assert it for the real allocator.
#ifndef PUSHPULL_TEST_ASAN
  EXPECT_EQ(First, Second);
#else
  (void)First;
  EXPECT_NE(Second, nullptr);
#endif
}

TEST(Arena, NestedScopesRewindToTheirOwnMarks) {
  Arena A;
  A.allocate(32, 8);
  Arena::Mark Outer = A.mark();
  A.allocate(1 << 12, 8);
  {
    Arena::Scope S(A);
    // Force block growth inside the scope.
    for (int I = 0; I < 64; ++I)
      A.allocate(1 << 12, 8);
  }
  void *P = A.allocate(16, 8);
  ASSERT_NE(P, nullptr);
  A.rewind(Outer);
  // The arena is usable after rewinding across freed blocks.
  EXPECT_NE(A.allocate(64, 8), nullptr);
}

TEST(ArenaVec, GrowsWithinScope) {
  Arena A;
  Arena::Scope S(A);
  ArenaVec<int> V(A);
  for (int I = 0; I < 100; ++I)
    V.push_back(I);
  ASSERT_EQ(V.size(), 100u);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(V[I], I);
  V.truncate(3);
  EXPECT_EQ(V.size(), 3u);
  EXPECT_EQ(V[2], 2);
}

TEST(SmallVec, StaysInlineUpToN) {
  SmallVec<int, 4> V;
  const void *InlineAddr = V.begin();
  for (int I = 0; I < 4; ++I)
    V.push_back(I);
  EXPECT_EQ(static_cast<const void *>(V.begin()), InlineAddr);
  V.push_back(4); // Spills to the heap.
  EXPECT_NE(static_cast<const void *>(V.begin()), InlineAddr);
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(V[I], I);
}

TEST(SmallVec, CopyAndMovePreserveElements) {
  SmallVec<std::string, 2> V;
  V.push_back("a");
  V.push_back("b");
  V.push_back("c"); // heap
  SmallVec<std::string, 2> C(V);
  EXPECT_EQ(C, V);
  SmallVec<std::string, 2> M(std::move(V));
  EXPECT_EQ(M, C);
  EXPECT_TRUE(V.empty());
  M.erase(M.begin() + 1);
  ASSERT_EQ(M.size(), 2u);
  EXPECT_EQ(M[0], "a");
  EXPECT_EQ(M[1], "c");
  M.insert(M.begin() + 1, "b");
  EXPECT_EQ(M, C);
}

TEST(CowChain, SharingIsObservationallyImmutable) {
  CowChain<int, 4> A;
  for (int I = 0; I < 10; ++I)
    A.push(I);
  CowChain<int, 4> B(A); // O(1) share.
  B.push(10);
  B.mutableAt(0) = 99; // Clones the shared path, not A's chunks.
  ASSERT_EQ(A.size(), 10u);
  ASSERT_EQ(B.size(), 11u);
  EXPECT_EQ(A[0], 0);
  EXPECT_EQ(B[0], 99);
  for (int I = 1; I < 10; ++I) {
    EXPECT_EQ(A[I], I);
    EXPECT_EQ(B[I], I);
  }
  EXPECT_EQ(B[10], 10);
}

TEST(CowChain, CopyBumpsSharesNotBytes) {
  memstats::Snapshot Before = memstats::read();
  CowChain<int, 8> A;
  for (int I = 0; I < 64; ++I)
    A.push(I);
  uint64_t BytesAfterBuild = memstats::read().SnapshotBytes;
  CowChain<int, 8> B(A);
  CowChain<int, 8> C(B);
  memstats::Snapshot After = memstats::read();
  EXPECT_EQ(After.SnapshotBytes, BytesAfterBuild); // Shares allocate nothing.
  EXPECT_EQ(After.delta(Before).ChunkShares, 2u);
  EXPECT_EQ(C[63], 63);
}

TEST(CowChain, TruncateIsByViewAndAppendDiverges) {
  CowChain<int, 4> A;
  for (int I = 0; I < 6; ++I)
    A.push(I);
  CowChain<int, 4> B(A);
  B.truncate(2);
  B.push(77); // Writes into a fresh head, never A's shared chunk.
  ASSERT_EQ(A.size(), 6u);
  for (int I = 0; I < 6; ++I)
    EXPECT_EQ(A[I], I);
  ASSERT_EQ(B.size(), 3u);
  EXPECT_EQ(B[0], 0);
  EXPECT_EQ(B[1], 1);
  EXPECT_EQ(B[2], 77);
}

TEST(CowChain, UniqueOwnerAppendsInPlace) {
  CowChain<int, 4> A;
  A.push(0);
  memstats::Snapshot Before = memstats::read();
  A.push(1);
  A.push(2);
  A.push(3); // Fills the head chunk: no new chunk, no share, no clone.
  memstats::Snapshot D = memstats::read().delta(Before);
  EXPECT_EQ(D.SnapshotBytes, 0u);
  EXPECT_EQ(D.ChunkShares, 0u);
  EXPECT_EQ(D.DeepCopies, 0u);
  EXPECT_EQ(A.size(), 4u);
}

TEST(CowChain, RemoveAtReindexesNewerChunks) {
  CowChain<int, 2> A;
  for (int I = 0; I < 7; ++I)
    A.push(I);
  CowChain<int, 2> B(A);
  B.removeAt(1);
  ASSERT_EQ(B.size(), 6u);
  int Expect[] = {0, 2, 3, 4, 5, 6};
  size_t K = 0;
  for (int V : B)
    EXPECT_EQ(V, Expect[K++]);
  EXPECT_EQ(K, 6u);
  // A is untouched.
  ASSERT_EQ(A.size(), 7u);
  for (int I = 0; I < 7; ++I)
    EXPECT_EQ(A[I], I);
}

TEST(CowChain, IteratorSweepsFragmentedChains) {
  // Build a maximally fragmented chain: every append lands after a share,
  // so every entry opens its own head chunk.
  CowChain<int, 4> A;
  for (int I = 0; I < 200; ++I) {
    CowChain<int, 4> Pin(A); // Keeps the head shared.
    A.push(I);
  }
  int Want = 0;
  for (int V : A)
    EXPECT_EQ(V, Want++);
  EXPECT_EQ(Want, 200);
}

TEST(CowVec, SharesUntilMutation) {
  CowVec<int> A;
  A.push_back(1);
  A.push_back(2);
  CowVec<int> B(A);
  EXPECT_EQ(&A.view(), &B.view()); // Same representation while shared.
  B.push_back(3);
  EXPECT_NE(&A.view(), &B.view());
  EXPECT_EQ(A.size(), 2u);
  ASSERT_EQ(B.size(), 3u);
  EXPECT_EQ(B[2], 3);
  B.insertFront(0);
  EXPECT_EQ(B.front(), 0);
  B.eraseFront();
  EXPECT_EQ(B.front(), 1);
}
