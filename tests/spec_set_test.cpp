//===- tests/spec_set_test.cpp - SetSpec ------------------------------------===//

#include "spec/SetSpec.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pushpull;
using testutil::hintDisagreements;
using testutil::mkOp;

namespace {

SetSpec spec() { return SetSpec("set", 3); }

Operation add(Value K, Value R, OpId Id = 1) {
  return mkOp(Id, "set", "add", {K}, R);
}
Operation rem(Value K, Value R, OpId Id = 1) {
  return mkOp(Id, "set", "remove", {K}, R);
}
Operation has(Value K, Value R, OpId Id = 1) {
  return mkOp(Id, "set", "contains", {K}, R);
}

} // namespace

TEST(SetSpec, EmptyInitially) {
  SetSpec S = spec();
  EXPECT_TRUE(S.allowed({has(0, 0), has(1, 0), has(2, 0)}));
  EXPECT_FALSE(S.allowed({has(0, 1)}));
}

TEST(SetSpec, AddReportsInsertion) {
  SetSpec S = spec();
  EXPECT_TRUE(S.allowed({add(1, 1, 1), add(1, 0, 2)}));
  EXPECT_FALSE(S.allowed({add(1, 1, 1), add(1, 1, 2)}));
}

TEST(SetSpec, RemoveUndoesAdd) {
  SetSpec S = spec();
  EXPECT_TRUE(S.allowed({add(1, 1, 1), rem(1, 1, 2), has(1, 0, 3)}));
  EXPECT_FALSE(S.allowed({rem(1, 1, 1)}));
  EXPECT_TRUE(S.allowed({rem(1, 0, 1)}));
}

TEST(SetSpec, PrefixClosed) {
  SetSpec S = spec();
  std::vector<Operation> Log = {add(0, 1, 1), add(1, 1, 2), rem(0, 1, 3),
                                has(0, 0, 4), has(1, 1, 5)};
  ASSERT_TRUE(S.allowed(Log));
  for (size_t N = 0; N <= Log.size(); ++N)
    EXPECT_TRUE(S.allowed({Log.begin(), Log.begin() + N}));
}

TEST(SetSpec, CompletionsFollowState) {
  SetSpec S = spec();
  auto C0 = S.completionsFrom(S.initial(), {"set", "add", {1}});
  ASSERT_EQ(C0.size(), 1u);
  EXPECT_EQ(C0[0].Result, Value(1));
  StateSet After = S.denote({add(1, 1, 1)});
  auto C1 = S.completionsFrom(After, {"set", "add", {1}});
  ASSERT_EQ(C1.size(), 1u);
  EXPECT_EQ(C1[0].Result, Value(0));
}

TEST(SetSpec, OutOfUniverseRejected) {
  SetSpec S = spec();
  EXPECT_TRUE(S.completionsFrom(S.initial(), {"set", "add", {7}}).empty());
  EXPECT_TRUE(S.completionsFrom(S.initial(), {"set", "union", {0}}).empty());
}

TEST(SetSpec, DistinctKeysCommute) {
  SetSpec S = spec();
  EXPECT_EQ(S.leftMoverHint(add(0, 1), add(1, 1)), Tri::Yes);
  EXPECT_EQ(S.leftMoverHint(rem(0, 1), has(2, 0)), Tri::Yes);
}

TEST(SetSpec, SameKeyTable) {
  SetSpec S = spec();
  // Two successful adds of the same key cannot both report insertion in
  // either order... the second one must report 0, so add=1;add=0 is the
  // allowed sequence and its swap add=0;add=1 is not.
  EXPECT_EQ(S.leftMoverHint(add(1, 1), add(1, 0)), Tri::No);
  // contains=1 after add=1 does not move left of it.
  EXPECT_EQ(S.leftMoverHint(add(1, 1), has(1, 1)), Tri::No);
  // contains on an untouched key commutes with itself.
  EXPECT_EQ(S.leftMoverHint(has(1, 0), has(1, 0)), Tri::Yes);
  // add=1 then remove=1: swapping gives remove=1 first, which needs the
  // key present — refutable from the empty state.
  EXPECT_EQ(S.leftMoverHint(add(1, 1), rem(1, 1)), Tri::No);
}

TEST(SetSpec, HintAgreesWithSemantics) {
  EXPECT_EQ(hintDisagreements(spec()), std::vector<std::string>{});
}

TEST(SetSpec, ProbeAlphabetSize) {
  // 3 keys x 3 methods x 2 results.
  EXPECT_EQ(spec().probeOps().size(), 18u);
}

TEST(SetSpec, SuccessorsCheckResult) {
  SetSpec S = spec();
  EXPECT_FALSE(S.successors("000", add(1, 1)).empty());
  EXPECT_TRUE(S.successors("000", add(1, 0)).empty());
  EXPECT_EQ(S.successors("000", add(1, 1))[0], "010");
}
