//===- tests/shrinker_test.cpp - Delta-debugging the differential harness -----===//
//
// End-to-end proof that the harness catches and minimizes a planted bug:
// disable one Figure 5 commit-safety criterion ("PUSH criterion (ii)" —
// pushed effects must serialize after the effects they depend on), find a
// case the three-way check flags, and delta-debug it down to a
// two-thread, few-op reproducer whose scenario text round-trips.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Shrinker.h"

#include "fuzz/Generator.h"
#include "fuzz/Mutator.h"

#include <gtest/gtest.h>

using namespace pushpull;

namespace {

constexpr const char *InjectedBug = "PUSH criterion (ii)";

/// The pessimistic commit-phase clinic: thread 0 holds uncommitted pushed
/// reads of register 0 while thread 1 pushes write(2) then write(0) —
/// with criterion (ii) disabled the second push is wrongly admitted.
FuzzCase unpushClinic() {
  FuzzCase C;
  C.Specs = {
      {"register", {{"name", "register"}, {"regs", "3"}, {"vals", "2"}}}};
  C.Engine = "pessimistic";
  C.EngineOpts["seed"] = "1";
  C.Policy = SchedulePolicy::RoundRobin;
  C.ScheduleSeed = 1;
  auto Read = [](Value R, const char *Var) {
    return call("register", "read", {R}, Var);
  };
  auto Write = [](Value R, Value V) {
    return call("register", "write", {R, V});
  };
  C.Threads = {
      {tx(seqAll({Read(0, "a"), Read(1, "b"), Read(1, "c")}))},
      {tx(seq(Write(2, 1), Write(0, 1)))},
  };
  return C;
}

/// A case that fails under the injected bug: the clinic if it does, else
/// the first failing generated pessimistic/register case.  The fallback
/// keeps the test about the *shrinker* rather than about one schedule.
FuzzCase failingSeedCase(const DiffRunner &Runner) {
  FuzzCase Clinic = unpushClinic();
  if (Runner.run(Clinic).discrepancy())
    return Clinic;
  GeneratorConfig GC;
  GC.Seed = 1;
  GC.Engines = {"pessimistic", "htm", "early-release"};
  GC.SpecKinds = {"register"};
  Generator G(GC);
  for (int I = 0; I < 80; ++I) {
    FuzzCase C = G.next();
    if (Runner.run(C).discrepancy())
      return C;
  }
  ADD_FAILURE() << "no case failed under the injected bug";
  return Clinic;
}

} // namespace

TEST(Shrinker, MinimizesAnInjectedCriterionBug) {
  DiffConfig D;
  D.DisabledCriterion = InjectedBug;
  DiffRunner Buggy(D);

  FuzzCase Seed = failingSeedCase(Buggy);
  ShrinkOutcome S = Shrinker(Buggy).shrink(Seed);
  ASSERT_TRUE(S.Reproduced);
  EXPECT_GT(S.RunsUsed, 1u);

  // Converged to a minimal counterexample: at most two threads and a
  // handful of operations, still flagged by the differential check.
  EXPECT_LE(S.Minimized.Threads.size(), 2u);
  EXPECT_LE(S.Minimized.totalOps(), 4u);
  EXPECT_TRUE(S.FinalReport.discrepancy()) << S.FinalReport.toString();

  // 1-minimality at the granularity the passes work at: no single thread
  // can be dropped without losing the failure.
  for (size_t T = 0; T < S.Minimized.Threads.size(); ++T) {
    if (S.Minimized.Threads.size() <= 1)
      break;
    FuzzCase Cand = S.Minimized;
    Cand.Threads.erase(Cand.Threads.begin() + T);
    normalizeThreadRefs(Cand);
    EXPECT_FALSE(Buggy.run(Cand).discrepancy())
        << "thread " << T << " was droppable";
  }

  // The written reproducer is faithful: its scenario text re-parses and
  // still fails under the injection...
  ScenarioParseResult PR = parseScenario(S.Minimized.toScenarioText());
  ASSERT_TRUE(PR.ok()) << PR.Error << "\n" << S.Minimized.toScenarioText();
  DiffReport Replayed = Buggy.run(fromScenario(*PR.Parsed));
  ASSERT_TRUE(Replayed.Built) << Replayed.BuildError;
  EXPECT_TRUE(Replayed.discrepancy()) << Replayed.toString();

  // ...and passes clean without it — the failure is the planted bug, not
  // an artifact of the minimized program.
  DiffReport Clean = DiffRunner().run(fromScenario(*PR.Parsed));
  ASSERT_TRUE(Clean.Built) << Clean.BuildError;
  EXPECT_FALSE(Clean.discrepancy()) << Clean.toString();
}

TEST(Shrinker, LeavesAPassingCaseAlone) {
  DiffRunner Clean;
  FuzzCase C = unpushClinic();
  ASSERT_FALSE(Clean.run(C).discrepancy());

  ShrinkOutcome S = Shrinker(Clean).shrink(C);
  EXPECT_FALSE(S.Reproduced);
  EXPECT_EQ(S.RunsUsed, 1u) << "a passing case costs exactly one probe run";
  EXPECT_EQ(S.Minimized.Threads.size(), C.Threads.size());
  EXPECT_EQ(S.Minimized.totalOps(), C.totalOps());
}

TEST(Shrinker, RespectsItsRunBudget) {
  DiffConfig D;
  D.DisabledCriterion = InjectedBug;
  DiffRunner Buggy(D);

  ShrinkConfig SC;
  SC.MaxRuns = 3;
  ShrinkOutcome S = Shrinker(Buggy, SC).shrink(failingSeedCase(Buggy));
  EXPECT_LE(S.RunsUsed, 3u);
  // Even a budget-starved shrink reports a genuine failure.
  EXPECT_TRUE(S.Reproduced);
  EXPECT_TRUE(S.FinalReport.discrepancy());
}
