//===- tests/trace_criteria_test.cpp - RuleTrace / RuleResult -----------------===//

#include "core/Criteria.h"
#include "core/Trace.h"

#include <gtest/gtest.h>

using namespace pushpull;

TEST(RuleKindNames, AllSeven) {
  EXPECT_EQ(toString(RuleKind::App), "APP");
  EXPECT_EQ(toString(RuleKind::UnApp), "UNAPP");
  EXPECT_EQ(toString(RuleKind::Push), "PUSH");
  EXPECT_EQ(toString(RuleKind::UnPush), "UNPUSH");
  EXPECT_EQ(toString(RuleKind::Pull), "PULL");
  EXPECT_EQ(toString(RuleKind::UnPull), "UNPULL");
  EXPECT_EQ(toString(RuleKind::Commit), "CMT");
}

TEST(RuleResult, FirstFailurePicksEarliestNonYes) {
  RuleResult R = RuleResult::rejected(
      RuleKind::Push,
      {criterion("PUSH criterion (i)", Tri::Yes),
       criterion("PUSH criterion (ii)", Tri::Unknown, "bound hit"),
       criterion("PUSH criterion (iii)", Tri::No, "disallowed")});
  ASSERT_NE(R.firstFailure(), nullptr);
  EXPECT_EQ(R.firstFailure()->Name, "PUSH criterion (ii)");
  EXPECT_FALSE(R.Applied);
}

TEST(RuleResult, AppliedHasNoFailure) {
  RuleResult R = RuleResult::applied(
      RuleKind::Commit, {criterion("CMT criterion (i)", Tri::Yes)});
  EXPECT_TRUE(R.Applied);
  EXPECT_EQ(R.firstFailure(), nullptr);
}

TEST(RuleResult, RenderingMentionsEverything) {
  RuleResult R = RuleResult::rejected(
      RuleKind::Pull, {criterion("PULL criterion (ii)", Tri::No, "why")},
      "context");
  std::string S = R.toString();
  EXPECT_NE(S.find("PULL"), std::string::npos);
  EXPECT_NE(S.find("rejected"), std::string::npos);
  EXPECT_NE(S.find("context"), std::string::npos);
  EXPECT_NE(S.find("PULL criterion (ii)"), std::string::npos);
  EXPECT_NE(S.find("why"), std::string::npos);
}

TEST(RuleResult, MalformedCarriesMessageOnly) {
  RuleResult R = RuleResult::malformed(RuleKind::UnApp, "local log empty");
  EXPECT_FALSE(R.Applied);
  EXPECT_TRUE(R.Criteria.empty());
  EXPECT_EQ(R.Message, "local log empty");
}

TEST(RuleTrace, SequenceNumbersMonotone) {
  RuleTrace T;
  for (int I = 0; I < 5; ++I) {
    TraceEvent E;
    E.Tid = static_cast<TxId>(I % 2);
    E.Rule = RuleKind::App;
    T.record(E);
  }
  ASSERT_EQ(T.size(), 5u);
  for (size_t I = 1; I < T.events().size(); ++I)
    EXPECT_LT(T.events()[I - 1].Seq, T.events()[I].Seq);
}

TEST(RuleTrace, CountAndFilter) {
  RuleTrace T;
  auto Add = [&](TxId Tid, RuleKind K) {
    TraceEvent E;
    E.Tid = Tid;
    E.Rule = K;
    T.record(E);
  };
  Add(0, RuleKind::App);
  Add(0, RuleKind::Push);
  Add(1, RuleKind::App);
  Add(0, RuleKind::Commit);
  EXPECT_EQ(T.countOf(RuleKind::App), 2u);
  EXPECT_EQ(T.countOf(RuleKind::UnPush), 0u);
  EXPECT_EQ(T.byThread(0).size(), 3u);
  EXPECT_EQ(T.byThread(1).size(), 1u);
  EXPECT_EQ(T.byThread(7).size(), 0u);
}

TEST(RuleTrace, RenderingMarksUncommittedPulls) {
  RuleTrace T;
  TraceEvent E;
  E.Tid = 3;
  E.Rule = RuleKind::Pull;
  E.OpText = "#9:mem.read(0)=1";
  E.PulledUncommitted = true;
  T.record(E);
  std::string S = T.toString();
  EXPECT_NE(S.find("t3: PULL(#9:mem.read(0)=1) [uncommitted]"),
            std::string::npos);
}

TEST(RuleTrace, ClearEmpties) {
  RuleTrace T;
  T.record(TraceEvent{});
  EXPECT_FALSE(T.empty());
  T.clear();
  EXPECT_TRUE(T.empty());
}
